# Tier-1 verification in one command: build every target (libraries,
# executables, tests, benches) and run the full test suite.
.PHONY: check build test bench clean

check: build test

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

clean:
	dune clean
