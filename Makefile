# Tier-1 verification in one command: build every target (libraries,
# executables, tests, benches) and run the full test suite.
.PHONY: check build test loopback nemesis certify-check query-plane race-smoke bench bench-smoke bench-check fed-determinism clean

check: build test

build:
	dune build @all

test:
	dune runtest

# Just the real-TCP integration tests: the transport unit suite and the
# 3-replica loopback chain with a mid-run replica kill.
loopback: build
	dune exec test/test_main.exe -- test transport
	dune exec test/test_main.exe -- test loopback

# Nemesis gate (DESIGN.md §16): the real-TCP fault schedule — partitions
# through drop proxies, clean kills with planted legacy-format snapshots,
# machine crashes over a lying/torn disk — under the incremental snapshot
# policy.  KRONOS_NEMESIS_ITERS scales the schedule (default 3; CI's PR
# lane uses 2, the nightly lane 12).
nemesis: build
	dune exec test/test_main.exe -- test '^nemesis'

# Verifiable-causality gate (DESIGN.md §13): commitment chains,
# prover/verifier roundtrips, the tamper-injection suite (flipped digest,
# truncated path, spliced proof, reordered suffix — all rejected),
# snapshot v1/v2 upgrades, verified reads over simnet and real TCP, and
# audit pinning against a history rewrite.
certify-check: build
	dune exec test/test_main.exe -- test certify

# Multicore query plane (DESIGN.md §14): frozen-view differential suites
# and the real-TCP chain with 4 reader domains per node under a mid-run
# kill/restart — the `kronosd --query-domains 4` configuration.
query-plane: build
	dune exec test/test_main.exe -- test view
	dune exec test/test_main.exe -- test query_plane

# Publish/read race hammer: one writer domain mutating and publishing as
# fast as it can while reader domains chase the latest view.  A small
# minor heap (s=4k) forces frequent minor collections, so unpublished
# mutable state leaking into a frozen view would be caught as a torn
# read rather than hidden by generous heap slack.
race-smoke: build
	OCAMLRUNPARAM="s=4k" dune exec test/test_main.exe -- test view_race

bench:
	dune exec bench/main.exe

# Quick performance snapshot: writes BENCH_smoke.json in the repo root
# (CI runs this and uploads the file as an artifact).
bench-smoke: build
	dune exec bench/main.exe -- smoke

# Regression gate: re-measure the engine hot paths and fail when any
# engine.* series in a fresh run is more than 2.5x slower than the
# committed BENCH_smoke.json.  Service-level series are not gated (they
# track machine load, not code).
bench-check: build
	dune exec bench/main.exe -- smoke-check

# Federation determinism gate: the scripted simnet federation run (two
# shards, a replica crash and a partition mid-workload) must replay
# bit-identically from the same seed.
fed-determinism: build
	dune exec bench/main.exe -- fedsim > .fedsim-a.trace
	dune exec bench/main.exe -- fedsim > .fedsim-b.trace
	cmp .fedsim-a.trace .fedsim-b.trace
	rm -f .fedsim-a.trace .fedsim-b.trace
	@echo "fedsim: trace is deterministic"

clean:
	dune clean
