(* The live stats plane: Get_stats/Stats_is codec round trips, the
   one-shot TCP metrics exposition server, and an end-to-end check that a
   replicated workload leaves nonzero counters in every instrumented
   layer. *)

open Kronos
open Kronos_simnet
open Kronos_service
module M = Kronos_metrics
module Chain = Kronos_replication.Chain
module Chain_codec = Kronos_replication.Chain_codec
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Metrics_server = Kronos_transport.Metrics_server
module Storage = Kronos_durability.Storage

(* {1 Codec} *)

let prop_stats_codec_roundtrip =
  let open QCheck2 in
  let gen_samples =
    Gen.(
      list_size (int_bound 25)
        (pair (string_size (int_bound 40)) (float_range (-1e12) 1e12)))
  in
  Test.make ~name:"stats codec roundtrip" ~count:300
    Gen.(pair (int_bound 5000) gen_samples)
    (fun (client, samples) ->
      Chain_codec.decode (Chain_codec.encode (Chain.Get_stats { client }))
      = Chain.Get_stats { client }
      && Chain_codec.decode (Chain_codec.encode (Chain.Stats_is { samples }))
         = Chain.Stats_is { samples })

(* {1 One-shot TCP exposition} *)

let test_metrics_server_one_shot () =
  let c = M.counter (M.scope "statstest") "served_total" in
  M.Counter.add c 42;
  let loop = Event_loop.create () in
  let server = Metrics_server.start ~loop ~port:0 () in
  let fetch () =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.set_nonblock sock;
    (try
       Unix.connect sock
         (Unix.ADDR_INET (Unix.inet_addr_loopback, Metrics_server.port server))
     with Unix.Unix_error (Unix.EINPROGRESS, _, _) -> ());
    (* single-threaded: interleave serving (the event loop) with reading *)
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let closed = ref false in
    let deadline = Unix.gettimeofday () +. 5.0 in
    while (not !closed) && Unix.gettimeofday () < deadline do
      Event_loop.run_for loop 0.005;
      match Unix.read sock chunk 0 (Bytes.length chunk) with
      | 0 -> closed := true
      | n -> Buffer.add_subbytes buf chunk 0 n
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOTCONN), _, _)
        -> ()
    done;
    Unix.close sock;
    Alcotest.(check bool) "server closed the connection" true !closed;
    Buffer.contents buf
  in
  let contains page needle =
    let n = String.length needle and len = String.length page in
    let rec at i = i + n <= len && (String.sub page i n = needle || at (i + 1)) in
    at 0
  in
  let page = fetch () in
  Alcotest.(check bool) "page has the counter" true
    (contains page "kronos_statstest_served_total 42");
  Alcotest.(check bool) "page has TYPE comments" true
    (contains page "# TYPE kronos_statstest_served_total counter");
  (* one-shot: a second connection gets a fresh page *)
  M.Counter.incr c;
  let page2 = fetch () in
  Alcotest.(check bool) "second scrape sees the new value" true
    (contains page2 "kronos_statstest_served_total 43");
  Metrics_server.stop server

(* {1 End to end: every layer's counters move under a real workload} *)

let test_workload_moves_every_layer () =
  let sim = Sim.create ~seed:11L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let durability =
    Server.durability
      ~storage_of:(fun _ -> Storage.Memory.storage (Storage.Memory.create ()))
      ()
  in
  let _cluster =
    Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ] ~durability
      ~ping_interval:0.1 ~failure_timeout:0.5 ()
  in
  let client =
    Client.create ~net ~addr:2000 ~coordinator:1000 ~request_timeout:0.4 ()
  in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    let deadline = Sim.now sim +. 30.0 in
    while !result = None && Sim.now sim < deadline && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some x -> x
    | None -> Alcotest.fail "service call did not complete"
  in
  let ok = function
    | Ok x -> x
    | Error e -> Alcotest.failf "unexpected error: %a" Error.pp e
  in
  let watched =
    [
      "kronos_engine_events_created_total";
      "kronos_engine_assigns_total";
      "kronos_chain_entries_applied_total";
      "kronos_chain_acks_total";
      "kronos_proxy_requests_total";
      "kronos_server_ops_total{op=\"create_event\"}";
      "kronos_server_ops_total{op=\"assign_order\"}";
      "kronos_server_ops_total{op=\"query_order\"}";
      "kronos_client_op_seconds_count{op=\"create_event\"}";
      "kronos_wal_appends_total";
      "kronos_wal_fsyncs_total";
    ]
  in
  let value samples name = Option.value ~default:0. (List.assoc_opt name samples) in
  let baseline = M.samples () in
  (* the workload: mint events, order them, query the order *)
  let a = ok (await (Client.create_event client)) in
  let b = ok (await (Client.create_event client)) in
  let c = ok (await (Client.create_event client)) in
  ignore (ok (await (Client.assign_order client [ Order.must_before a b ])));
  (* (a, c) is concurrent, hence uncached: the query reaches the server *)
  ignore (ok (await (Client.query_order client [ (a, c) ])));
  (* fetch the registry through the admin RPC rather than locally: the
     reply proves the Stats plane works end to end *)
  let got = ref None in
  Transport.register net 3000 (fun ~src:_ msg ->
      match (msg : Chain.msg) with
      | Chain.Stats_is { samples } -> got := Some samples
      | _ -> ());
  Transport.send net ~src:3000 ~dst:0 (Chain.Get_stats { client = 3000 });
  let deadline = Sim.now sim +. 10.0 in
  while !got = None && Sim.now sim < deadline && Sim.pending sim > 0 do
    ignore (Sim.step sim)
  done;
  let samples =
    match !got with
    | Some s -> s
    | None -> Alcotest.fail "no Stats_is reply"
  in
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%s moved" name)
        true
        (value samples name > value baseline name))
    watched

let suites =
  [ ( "stats",
      [
        QCheck_alcotest.to_alcotest prop_stats_codec_roundtrip;
        Alcotest.test_case "metrics server one-shot" `Quick
          test_metrics_server_one_shot;
        Alcotest.test_case "workload moves every layer" `Quick
          test_workload_moves_every_layer;
      ] );
  ]
