(* Failure-injection tests beyond single crashes: partitions, double
   failures, and fuzzed wire input. *)

open Kronos_simnet
open Kronos_replication
module Sim_transport = Kronos_transport.Sim_transport

(* These tests never set per-call deadlines, so a timeout is a failure. *)
let ok = function
  | Ok r -> r
  | Error `Timeout -> Alcotest.fail "unexpected proxy timeout"

let register_sm () =
  let value = ref 0 in
  fun cmd ->
    match String.split_on_char ':' cmd with
    | [ "add"; n ] ->
      value := !value + int_of_string n;
      string_of_int !value
    | [ "get" ] -> string_of_int !value
    | _ -> "error"

let coordinator_addr = 1000

type cluster = {
  sim : Sim.t;
  raw_net : Chain.msg Net.t;  (* for partition/heal *)
  net : Chain.msg Kronos_transport.Transport.t;
  replicas : Chain.Replica.t array;
  coordinator : Chain.Coordinator.t;
}

let make_cluster ?(n = 3) ?(seed = 7L) () =
  let sim = Sim.create ~seed () in
  let raw_net = Net.create sim in
  let net = Sim_transport.of_net raw_net in
  let chain = List.init n (fun i -> i) in
  let config = { Chain.version = 0; chain = [] } in
  let replicas =
    Array.init n (fun i ->
        Chain.Replica.create ~net ~addr:i ~apply:(register_sm ()) ~config ())
  in
  let coordinator =
    Chain.Coordinator.create ~net ~addr:coordinator_addr ~chain
      ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  { sim; raw_net; net; replicas; coordinator }

let make_proxy ?(addr = 2000) cluster =
  Proxy.create ~net:cluster.net ~addr ~coordinator:coordinator_addr
    ~request_timeout:0.4 ()

(* A replica partitioned away is removed from the chain; writes keep
   committing on the majority side, and the client never observes an
   error. *)
let test_partitioned_replica_removed () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  let done1 = ref None in
  Proxy.write proxy "add:1" (fun r -> done1 := Some (ok r));
  Sim.run ~until:1.0 c.sim;
  Alcotest.(check (option string)) "first write" (Some "1") !done1;
  (* cut replica 1 off from everyone, including the coordinator *)
  Net.partition c.raw_net [ 1 ] [ 0; 2; coordinator_addr; 2000 ];
  Sim.run ~until:3.0 c.sim;
  let cfg = Chain.Coordinator.config c.coordinator in
  Alcotest.(check (list int)) "partitioned replica removed" [ 0; 2 ]
    cfg.Chain.chain;
  let done2 = ref None in
  Proxy.write proxy "add:10" (fun r -> done2 := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "write after partition" (Some "11") !done2;
  (* healing does not bring the removed replica back into the chain (it
     must rejoin explicitly), and does not disturb the survivors *)
  Net.heal c.raw_net;
  let done3 = ref None in
  Proxy.write proxy "add:100" (fun r -> done3 := Some (ok r));
  Sim.run ~until:9.0 c.sim;
  Alcotest.(check (option string)) "write after heal" (Some "111") !done3;
  Alcotest.(check (list int)) "chain unchanged" [ 0; 2 ]
    (Chain.Coordinator.config c.coordinator).Chain.chain

(* Two of three replicas fail (the design point: f+1 replicas tolerate f):
   the last replica carries the service alone. *)
let test_double_failure () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:5" ignore;
  Sim.run ~until:1.0 c.sim;
  Chain.Replica.crash c.replicas.(0);
  Chain.Replica.crash c.replicas.(2);
  Sim.run ~until:3.0 c.sim;
  Alcotest.(check (list int)) "one survivor" [ 1 ]
    (Chain.Coordinator.config c.coordinator).Chain.chain;
  let result = ref None in
  Proxy.write proxy "add:2" (fun r -> result := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "single-replica chain serves" (Some "7") !result;
  (* reads too *)
  let answer = ref None in
  Proxy.read proxy "get" (fun r -> answer := Some (ok r));
  Sim.run ~until:8.0 c.sim;
  Alcotest.(check (option string)) "read" (Some "7") !answer

(* Simultaneous crash + rejoin churn: the service must converge. *)
let test_churn () =
  let c = make_cluster ~n:3 ~seed:15L () in
  let proxy = make_proxy c in
  let completed = ref 0 in
  let target = 30 in
  let rec loop i =
    if i < target then
      Proxy.write proxy "add:1" (fun _ ->
          incr completed;
          loop (i + 1))
  in
  loop 0;
  ignore
    (Sim.schedule c.sim ~delay:0.5 (fun () -> Chain.Replica.crash c.replicas.(2)));
  ignore
    (Sim.schedule c.sim ~delay:2.5 (fun () ->
         let fresh =
           Chain.Replica.create ~net:c.net ~addr:9 ~apply:(register_sm ())
             ~config:{ Chain.version = 0; chain = [] } ()
         in
         Chain.Coordinator.join c.coordinator fresh));
  Sim.run ~until:30.0 c.sim;
  Alcotest.(check int) "all writes completed" target !completed;
  let answer = ref None in
  Proxy.read proxy "get" (fun r -> answer := Some (ok r));
  Sim.run ~until:32.0 c.sim;
  Alcotest.(check (option string)) "exactly-once through churn"
    (Some (string_of_int target)) !answer

(* Proxy behaviours not covered elsewhere. *)
let test_proxy_nth_clamping () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:4" ignore;
  Sim.run ~until:1.0 c.sim;
  let answers = ref [] in
  (* out-of-range Nth must clamp, not crash *)
  Proxy.read proxy ~target:(Proxy.Nth 99) "get" (fun r -> answers := ok r :: !answers);
  Proxy.read proxy ~target:(Proxy.Nth (-5)) "get" (fun r -> answers := ok r :: !answers);
  Proxy.read proxy ~target:Proxy.Any "get" (fun r -> answers := ok r :: !answers);
  Sim.run ~until:3.0 c.sim;
  Alcotest.(check (list string)) "all clamped reads answered" [ "4"; "4"; "4" ]
    !answers;
  Alcotest.(check int) "config learned" 1 (Proxy.config_version proxy)

(* {1 Crash-restart with durable storage}

   A durable Kronos cluster: each replica keeps an in-memory "disk" that
   survives its process crash, so a restarted replica recovers from its own
   snapshot + WAL instead of needing a full state transfer. *)

open Kronos
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Storage = Kronos_durability.Storage

type durable_env = {
  dsim : Sim.t;
  cluster : Server.cluster;
  client : Client.t;
  writes : int ref;  (** completed write acknowledgements *)
  disks : (Net.addr, Storage.Memory.dir) Hashtbl.t;
}

let make_durable_env ?(seed = 21L) ?wal_config ?snapshot_every () =
  let sim = Sim.create ~seed () in
  let net = Sim_transport.of_net (Net.create sim) in
  let disks : (Net.addr, Storage.Memory.dir) Hashtbl.t = Hashtbl.create 8 in
  let storage_of addr =
    let dir =
      match Hashtbl.find_opt disks addr with
      | Some dir -> dir
      | None ->
        let dir = Storage.Memory.create () in
        Hashtbl.add disks addr dir;
        dir
    in
    Storage.Memory.storage dir
  in
  let durability = Server.durability ?wal_config ?snapshot_every ~storage_of () in
  let cluster =
    Server.deploy ~net ~coordinator:coordinator_addr ~replicas:[ 0; 1; 2 ]
      ~durability ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  let client =
    Client.create ~net ~addr:2000 ~coordinator:coordinator_addr
      ~cache_capacity:0 ~request_timeout:0.4 ()
  in
  { dsim = sim; cluster; client; writes = ref 0; disks }

(* A write-only workload (reads are not sequenced, so they would skew the
   per-replica stats we compare): create [n] events, then chain them with
   assign_order. *)
let run_write_workload ?(on_write = fun _ -> ()) env ~n k =
  let ids = ref [] in
  let ack () =
    incr env.writes;
    on_write !(env.writes)
  in
  let rec create i =
    if i = n then link (List.rev !ids)
    else
      Client.create_event env.client (function
          | Error _ -> assert false  (* no deadline: the client retries *)
          | Ok id ->
          ids := id :: !ids;
          ack ();
          create (i + 1))
  and link = function
    | a :: (b :: _ as rest) ->
      Client.assign_order env.client [ Order.must_before a b ]
        (fun _ ->
          ack ();
          link rest)
    | _ -> k (List.rev !ids)
  in
  create 0

let engines_identical what cluster =
  match cluster.Server.replicas with
  | [] -> Alcotest.fail "no replicas"
  | (_, first) :: rest ->
    List.iter
      (fun (replica, engine) ->
        let addr = Chain.Replica.addr replica in
        Alcotest.(check bool)
          (Printf.sprintf "%s: replica %d stats identical" what addr)
          true
          (Engine.stats !first = Engine.stats !engine);
        Alcotest.(check int)
          (Printf.sprintf "%s: replica %d live events" what addr)
          (Engine.live_events !first) (Engine.live_events !engine))
      rest

(* Kill the mid-chain replica during a write workload; restart it from its
   own WAL + snapshot.  It rejoins via tail integration — the predecessor
   ships only the missing log suffix, never a snapshot — and the chain
   reconverges with no lost or duplicated commands. *)
let test_durable_restart_via_wal_tail () =
  let env = make_durable_env () in
  let total_writes = 39 in (* 20 creates + 19 assigns *)
  let finished = ref false in
  (* kill the mid-chain replica partway through the workload *)
  run_write_workload env ~n:20
    ~on_write:(fun done_ -> if done_ = 15 then Server.crash env.cluster 1)
    (fun _ids -> finished := true);
  Sim.run ~until:4.0 env.dsim;
  Alcotest.(check bool) "workload survived the crash" true !finished;
  Alcotest.(check int) "every write acknowledged exactly once" total_writes
    !(env.writes);
  Alcotest.(check (list int)) "crashed replica removed" [ 0; 2 ]
    (Chain.Coordinator.config env.cluster.Server.coordinator).Chain.chain;
  (* the crashed replica's disk holds a strict, non-empty prefix of the
     workload: restart recovers it locally, and the tail ships the rest *)
  let durable_seq =
    let storage = Storage.Memory.storage (Hashtbl.find env.disks 1) in
    let _, records = Kronos_durability.Wal.open_ storage in
    List.fold_left
      (fun acc (r : Kronos_durability.Wal.record) -> max acc r.seq)
      0 records
  in
  Alcotest.(check bool) "durable local prefix" true
    (durable_seq > 0 && durable_seq < total_writes);
  Server.restart_replica env.cluster 1 ();
  Sim.run ~until:(Sim.now env.dsim +. 2.0) env.dsim;
  Alcotest.(check (list int)) "restarted replica rejoined at the tail" [ 0; 2; 1 ]
    (Chain.Coordinator.config env.cluster.Server.coordinator).Chain.chain;
  (match Server.replica_of env.cluster 1 with
   | Some replica ->
     Alcotest.(check int) "caught up" total_writes
       (Chain.Replica.last_applied replica);
     Alcotest.(check int) "no snapshot transfer needed" 0
       (Chain.Replica.snapshot_installs replica)
   | None -> Alcotest.fail "restarted replica missing");
  engines_identical "after restart" env.cluster

(* Same crash, but the survivors snapshot aggressively and truncate their
   logs while the replica is down: its missing range is gone, so rejoin must
   fall back to shipping a snapshot plus the log above it. *)
let test_durable_restart_far_behind_installs_snapshot () =
  let env =
    make_durable_env
      ~wal_config:{ Kronos_durability.Wal.segment_bytes = 256; sync = Always }
      ~snapshot_every:4 ()
  in
  let finished = ref false in
  run_write_workload env ~n:6 (fun _ -> finished := true);
  Sim.run ~until:2.0 env.dsim;
  Alcotest.(check bool) "first workload done" true !finished;
  Server.crash env.cluster 1;
  (* a second workload runs entirely while the replica is down, pushing the
     survivors through several snapshots and segment truncations *)
  let finished2 = ref false in
  run_write_workload env ~n:12 (fun _ -> finished2 := true);
  Sim.run ~until:(Sim.now env.dsim +. 4.0) env.dsim;
  Alcotest.(check bool) "second workload done" true !finished2;
  Server.restart_replica env.cluster 1 ();
  Sim.run ~until:(Sim.now env.dsim +. 2.0) env.dsim;
  (match Server.replica_of env.cluster 1 with
   | Some replica ->
     Alcotest.(check int) "snapshot transfer used" 1
       (Chain.Replica.snapshot_installs replica);
     Alcotest.(check int) "caught up" !(env.writes)
       (Chain.Replica.last_applied replica)
   | None -> Alcotest.fail "restarted replica missing");
  engines_identical "after snapshot install" env.cluster;
  (* and the restarted replica keeps serving: more writes reconverge *)
  let finished3 = ref false in
  run_write_workload env ~n:4 (fun _ -> finished3 := true);
  Sim.run ~until:(Sim.now env.dsim +. 2.0) env.dsim;
  Alcotest.(check bool) "writes after rejoin" true !finished3;
  engines_identical "after further writes" env.cluster

(* Fuzz: decoding arbitrary bytes must never raise anything except
   Codec.Decode_error, and valid encodings always survive a re-encode. *)
let prop_decode_fuzz =
  let open QCheck2 in
  Test.make ~name:"wire decode never crashes on garbage" ~count:500
    Gen.(string_size (int_bound 60))
    (fun bytes ->
      let safe decode =
        match decode bytes with
        | (_ : Kronos_wire.Message.request) -> true
        | exception Kronos_wire.Codec.Decode_error _ -> true
      in
      let safe_resp () =
        match Kronos_wire.Message.decode_response bytes with
        | (_ : Kronos_wire.Message.response) -> true
        | exception Kronos_wire.Codec.Decode_error _ -> true
      in
      safe Kronos_wire.Message.decode_request && safe_resp ())

let suites =
  [ ( "fault_injection",
      [
        Alcotest.test_case "partitioned replica removed" `Quick
          test_partitioned_replica_removed;
        Alcotest.test_case "double failure" `Quick test_double_failure;
        Alcotest.test_case "churn" `Quick test_churn;
        Alcotest.test_case "proxy nth clamping" `Quick test_proxy_nth_clamping;
        Alcotest.test_case "durable restart via wal tail" `Quick
          test_durable_restart_via_wal_tail;
        Alcotest.test_case "durable restart far behind" `Quick
          test_durable_restart_far_behind_installs_snapshot;
        QCheck_alcotest.to_alcotest prop_decode_fuzz;
      ] );
  ]
