(* The durability layer: WAL framing and recovery semantics, snapshot
   round-trips, and full crash-restart recovery checked against a reference
   engine at every workload prefix. *)

open Kronos
open Kronos_simnet
module Storage = Kronos_durability.Storage
module Wal = Kronos_durability.Wal
module Snapshot = Kronos_durability.Snapshot
module Recovery = Kronos_durability.Recovery
module Graph_gen = Kronos_workload.Graph_gen
module Message = Kronos_wire.Message

let mem () =
  let dir = Storage.Memory.create () in
  (dir, Storage.Memory.storage dir)

let payload_of seq = Printf.sprintf "cmd-%04d" seq

let append_range wal lo hi =
  for seq = lo to hi do
    Wal.append wal ~seq ~payload:(payload_of seq)
  done

let check_records what expected records =
  Alcotest.(check (list (pair int string)))
    what
    (List.map (fun seq -> (seq, payload_of seq)) expected)
    (List.map (fun (r : Wal.record) -> (r.seq, r.payload)) records)

(* {1 WAL} *)

let test_wal_round_trip () =
  let _dir, storage = mem () in
  let wal, recovered = Wal.open_ storage in
  check_records "fresh log empty" [] recovered;
  append_range wal 1 20;
  Wal.sync wal;
  let wal2, recovered = Wal.open_ storage in
  check_records "all records recovered" (List.init 20 (fun i -> i + 1)) recovered;
  Alcotest.(check int) "last seq" 20 (Wal.last_seq wal2);
  (match Wal.read_from wal2 ~since:5 with
   | Some records ->
     check_records "suffix from 6" (List.init 15 (fun i -> i + 6)) records
   | None -> Alcotest.fail "contiguous suffix unavailable");
  match Wal.read_from wal2 ~since:25 with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected an empty suffix past the end"
  | None -> Alcotest.fail "a suffix past the end is trivially contiguous"

let test_wal_crash_drops_unsynced () =
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Never } in
  let wal, _ = Wal.open_ ~config storage in
  append_range wal 1 5;
  Wal.sync wal;
  append_range wal 6 8;
  Wal.flush wal;
  (* flushed but never fsynced: a crash loses exactly that suffix *)
  Storage.Memory.crash dir;
  let wal2, recovered = Wal.open_ ~config storage in
  check_records "synced prefix survives" [ 1; 2; 3; 4; 5 ] recovered;
  Alcotest.(check int) "positioned after prefix" 5 (Wal.last_seq wal2)

let test_wal_torn_tail_truncated () =
  let _dir, storage = mem () in
  let wal, _ = Wal.open_ storage in
  append_range wal 1 3;
  Wal.sync wal;
  (* simulate a torn write: half a record's worth of garbage at the tail *)
  let segment =
    match Wal.segment_files wal with
    | [ name ] -> name
    | files -> Alcotest.failf "expected one segment, got %d" (List.length files)
  in
  let w = storage.Storage.open_append segment in
  w.Storage.append "\x00\x00\x00\x20torn";
  w.Storage.sync ();
  w.Storage.close ();
  let wal2, recovered = Wal.open_ storage in
  check_records "valid prefix survives the torn tail" [ 1; 2; 3 ] recovered;
  (* the torn bytes were truncated away: appending works and re-opens clean *)
  Wal.append wal2 ~seq:4 ~payload:(payload_of 4);
  Wal.sync wal2;
  let _, recovered = Wal.open_ storage in
  check_records "appends continue past the repair" [ 1; 2; 3; 4 ] recovered

let test_wal_rotation_and_truncation () =
  let _dir, storage = mem () in
  let config = { Wal.segment_bytes = 64; sync = Wal.Always } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 10 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check bool) "log rotated" true (List.length (Wal.segment_files wal) > 2);
  (match Wal.read_from wal ~since:0 with
   | Some records ->
     check_records "rotation preserves records" (List.init 10 (fun i -> i + 1)) records
   | None -> Alcotest.fail "full log should be readable before truncation");
  Wal.truncate_before wal ~seq:4;
  (match Wal.read_from wal ~since:4 with
   | Some records -> check_records "tail above the snapshot" [ 5; 6; 7; 8; 9; 10 ] records
   | None -> Alcotest.fail "tail above the snapshot must remain readable");
  (match Wal.read_from wal ~since:0 with
   | None -> ()
   | Some _ -> Alcotest.fail "truncated range must be reported unreadable");
  (* truncation works on whole segments: record 4 shares a segment with 5
     and 6, so it legitimately survives *)
  let _, recovered = Wal.open_ ~config storage in
  check_records "reopen sees only surviving segments" [ 4; 5; 6; 7; 8; 9; 10 ]
    recovered

let test_wal_sync_policies () =
  (* Always: one fsync per group commit *)
  let _dir, storage = mem () in
  let wal, _ = Wal.open_ ~config:{ Wal.segment_bytes = 1 lsl 20; sync = Wal.Always } storage in
  for seq = 1 to 5 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "always: fsync per commit" 5 (Wal.sync_count wal);
  (* Every_n: one fsync per n records, crash loses at most the window *)
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Every_n 3 } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 8 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "every_n: fsync per window" 2 (Wal.sync_count wal);
  Storage.Memory.crash dir;
  let _, recovered = Wal.open_ ~config storage in
  check_records "every_n: loss bounded by the window" [ 1; 2; 3; 4; 5; 6 ] recovered;
  (* Never: no fsyncs; a crash can lose everything since open *)
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Never } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 4 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "never: no fsyncs" 0 (Wal.sync_count wal);
  Storage.Memory.crash dir;
  let _, recovered = Wal.open_ ~config storage in
  check_records "never: crash loses the lot" [] recovered

(* {1 Workloads}

   A deterministic write-only command stream derived from a random graph:
   create the vertices, add the edges low->high (acyclic by construction),
   then release a few references to exercise garbage collection and slot
   reuse. *)

let workload ~seed ~n ~m =
  let rng = Rng.create ~seed:(Int64.of_int seed) in
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m in
  let scratch = Engine.create () in
  let ids = Array.init n (fun _ -> Engine.create_event scratch) in
  let cmds = ref [] in
  let push c = cmds := Message.encode_request c :: !cmds in
  for _ = 1 to n do
    push Message.Create_event
  done;
  Array.iter
    (fun (u, v) ->
      let u, v = (min u v, max u v) in
      push (Message.Assign_order [ Order.must_before ids.(u) ids.(v) ]))
    g.Graph_gen.edges;
  for i = 0 to n - 1 do
    if i mod 7 = 3 then push (Message.Release_ref ids.(i))
  done;
  (ids, List.rev !cmds)

let check_engines_agree what ids reference candidate =
  Alcotest.(check bool) (what ^ ": stats") true
    (Engine.stats reference = Engine.stats candidate);
  Alcotest.(check int) (what ^ ": live events")
    (Engine.live_events reference) (Engine.live_events candidate);
  Alcotest.(check int) (what ^ ": edges")
    (Engine.edges reference) (Engine.edges candidate);
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i <> j then
            let expected = Engine.query_order reference [ (a, b) ] in
            let got = Engine.query_order candidate [ (a, b) ] in
            if expected <> got then
              Alcotest.failf "%s: query (%d, %d) diverges" what i j)
        ids)
    ids

let prop_snapshot_round_trip =
  let open QCheck2 in
  Test.make ~name:"snapshot round trip preserves behaviour" ~count:25
    Gen.(int_range 0 10_000)
    (fun seed ->
      let ids, cmds = workload ~seed ~n:24 ~m:48 in
      let reference = Engine.create () in
      List.iter (fun c -> ignore (Kronos_service.Server.apply reference c)) cmds;
      let restored = Engine.of_snapshot (Engine.to_snapshot reference) in
      check_engines_agree "round trip" ids reference restored;
      (* behavioural identity extends to future commands: slot reuse and
         fresh ids must match too *)
      let a = Engine.create_event reference and b = Engine.create_event restored in
      if not (Event_id.equal a b) then
        Alcotest.fail "fresh ids diverge after restore";
      check_engines_agree "after more commands" ids reference restored;
      true)

(* Snapshot files written before the rank index (format version 1) must
   stay loadable.  A v1 file is the v2 body without the rank suffix under a
   version-1 header; the decoder surfaces it as [snap_rank = None] and
   [Graph.of_snapshot] rebuilds an equivalent rank assignment with Kahn's
   algorithm, so every query answer and counter is preserved. *)
let test_snapshot_v1_compat () =
  let module Codec = Kronos_wire.Codec in
  let module Crc32 = Kronos_durability.Crc32 in
  let ids, cmds = workload ~seed:17 ~n:12 ~m:20 in
  let engine = Engine.create () in
  List.iter (fun c -> ignore (Kronos_service.Server.apply engine c)) cmds;
  let s = Engine.to_snapshot engine in
  let g = s.Engine.snap_graph in
  let e = Codec.encoder () in
  let put_arr a =
    Codec.put_u32 e (Array.length a);
    Array.iter (fun x -> Codec.put_u32 e x) a
  in
  Codec.put_i64 e 42L;
  Codec.put_u32 e g.Graph.snap_next_slot;
  Codec.put_u32 e (Array.length g.Graph.snap_refcount);
  Array.iter (fun rc -> Codec.put_u32 e (rc + 1)) g.Graph.snap_refcount;
  put_arr g.Graph.snap_gen;
  Codec.put_u32 e (Array.length g.Graph.snap_succ);
  Array.iter put_arr g.Graph.snap_succ;
  put_arr g.Graph.snap_free;
  Codec.put_i64 e (Int64.of_int g.Graph.snap_traversals);
  Codec.put_i64 e (Int64.of_int g.Graph.snap_visited_total);
  List.iter
    (fun v -> Codec.put_i64 e (Int64.of_int v))
    [
      s.Engine.snap_creates; s.Engine.snap_queries; s.Engine.snap_assigns;
      s.Engine.snap_aborted_batches; s.Engine.snap_reversals;
      s.Engine.snap_collected;
    ];
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + 10) in
  Buffer.add_string b "KSNP";
  Buffer.add_uint16_be b 1;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  (* [encode_at ~fmt:1] must reproduce this independently constructed v1
     file bit-for-bit — the cross-version matrix and the nemesis harness
     rely on it writing genuine old-format files. *)
  Alcotest.(check bool) "encode_at reproduces the hand-rolled v1 bytes" true
    (String.equal (Buffer.contents b) (Snapshot.encode_at ~fmt:1 ~seq:42 s));
  let seq, snap = Snapshot.decode (Buffer.contents b) in
  Alcotest.(check int) "v1 seq" 42 seq;
  Alcotest.(check bool) "v1 decodes without ranks" true
    (snap.Engine.snap_graph.Graph.snap_rank = None);
  let restored = Engine.of_snapshot snap in
  check_engines_agree "v1 snapshot" ids engine restored;
  (* the rebuilt ranks must satisfy the index invariant on every edge *)
  let rg = Engine.graph restored in
  Graph.fold_edges rg
    (fun () u v ->
      match (Graph.rank rg u, Graph.rank rg v) with
      | Some ru, Some rv ->
        if ru >= rv then Alcotest.fail "rebuilt ranks violate edge invariant"
      | _ -> Alcotest.fail "live event without rank")
    ()

(* Version-5 snapshots persist the chain decomposition behind the label
   index.  The restore must install exactly the captured chains (labels are
   recomputed, never stored), so index-only answers are identical before
   and after; a chain-less body (what a v4 file decodes to) must rebuild a
   decomposition deterministically; and a corrupted chain section must be
   rejected rather than installed as an over-approximating index. *)
let test_snapshot_v5_chains () =
  let ids, cmds = workload ~seed:23 ~n:12 ~m:20 in
  let engine = Engine.create () in
  List.iter (fun c -> ignore (Kronos_service.Server.apply engine c)) cmds;
  let bytes = Snapshot.encode ~seq:7 (Engine.to_snapshot engine) in
  let seq, snap = Snapshot.decode bytes in
  Alcotest.(check int) "seq" 7 seq;
  Alcotest.(check bool) "v5 carries chains" true
    (snap.Engine.snap_graph.Graph.snap_chains <> None);
  let restored = Engine.of_snapshot snap in
  check_engines_agree "v5 snapshot" ids engine restored;
  Alcotest.(check int) "chain count preserved" (Engine.chain_count engine)
    (Engine.chain_count restored);
  Alcotest.(check int) "restore recomputed labels once" 1
    (Engine.label_rebuilds restored);
  let g0 = Engine.graph engine and g1 = Engine.graph restored in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if not (Event_id.equal u v) then
            Alcotest.(check (option bool)) "index answers identical"
              (Graph.label_reachable g0 u v) (Graph.label_reachable g1 u v))
        ids)
    ids;
  (* chain-less restore (the v4 decode surface) rebuilds and still agrees;
     recapture so the counters reflect the queries just issued above *)
  let snap2 = Engine.to_snapshot engine in
  let chainless =
    { snap2 with
      Engine.snap_graph =
        { snap2.Engine.snap_graph with Graph.snap_chains = None } }
  in
  check_engines_agree "chainless restore" ids engine
    (Engine.of_snapshot chainless);
  (* a corrupt chain section must raise, not load *)
  (match snap.Engine.snap_graph.Graph.snap_chains with
   | None -> ()
   | Some cs ->
     let bad_of = Array.copy cs.Graph.cs_chain_of in
     (try
        ignore bad_of.(0);
        bad_of.(0) <- 9999;
        let bad =
          { snap with
            Engine.snap_graph =
              { snap.Engine.snap_graph with
                Graph.snap_chains = Some { cs with Graph.cs_chain_of = bad_of } } }
        in
        ignore (Engine.of_snapshot bad);
        Alcotest.fail "corrupt chain section accepted"
      with Invalid_argument _ -> ()))

let test_snapshot_files () =
  let _dir, storage = mem () in
  let ids, cmds = workload ~seed:7 ~n:12 ~m:18 in
  let engine = Engine.create () in
  List.iteri
    (fun i c ->
      ignore (Kronos_service.Server.apply engine c);
      if (i + 1) mod 10 = 0 then Snapshot.write storage ~seq:(i + 1) engine)
    cmds;
  let final = List.length cmds in
  Snapshot.write storage ~seq:final engine;
  (match Snapshot.load_latest storage with
   | Some (seq, restored) ->
     Alcotest.(check int) "newest snapshot wins" final seq;
     check_engines_agree "loaded snapshot" ids engine restored
   | None -> Alcotest.fail "snapshot missing");
  (* corrupt the newest file: readers must fall back to the next older *)
  let newest = Snapshot.filename ~seq:final in
  storage.Storage.remove_file newest;
  let w = storage.Storage.open_append newest in
  w.Storage.append "KSNPgarbage";
  w.Storage.sync ();
  w.Storage.close ();
  (match Snapshot.load_latest storage with
   | Some (seq, _) ->
     Alcotest.(check bool) "fell back past corruption" true (seq < final)
   | None -> Alcotest.fail "no fallback snapshot");
  Snapshot.truncate_old storage ~keep:1;
  let snaps =
    List.filter
      (fun n -> Filename.check_suffix n ".snap")
      (storage.Storage.list_files ())
  in
  Alcotest.(check int) "truncate_old keeps one" 1 (List.length snaps)

(* Crash-restart recovery must reproduce the reference engine at {e every}
   prefix of the workload, across snapshot cadences and segment rotations. *)
let test_recovery_every_prefix () =
  let ids, cmds = workload ~seed:11 ~n:12 ~m:16 in
  let cmds = Array.of_list cmds in
  let total = Array.length cmds in
  let wal_config = { Wal.segment_bytes = 128; sync = Wal.Always } in
  for prefix = 0 to total do
    (* reference: a replica that never crashed *)
    let reference = Engine.create () in
    for i = 0 to prefix - 1 do
      ignore (Kronos_service.Server.apply reference cmds.(i))
    done;
    (* durable run: log every command, snapshot every 5, then "crash" *)
    let _dir, storage = mem () in
    let wal, _ = Wal.open_ ~config:wal_config storage in
    let engine = Engine.create () in
    for i = 0 to prefix - 1 do
      let seq = i + 1 in
      ignore (Kronos_service.Server.apply engine cmds.(i));
      Wal.append wal ~seq ~payload:cmds.(i);
      Wal.flush wal;
      if seq mod 5 = 0 then begin
        Snapshot.write storage ~seq engine;
        Wal.truncate_before wal ~seq;
        Snapshot.truncate_old storage ~keep:2
      end
    done;
    Wal.sync wal;
    let outcome =
      Recovery.run ~wal_config
        ~replay:(fun e (r : Wal.record) ->
          ignore (Kronos_service.Server.apply e r.payload))
        storage
    in
    Alcotest.(check int)
      (Printf.sprintf "prefix %d: next seq" prefix)
      (prefix + 1) outcome.Recovery.next_seq;
    if prefix >= 5 then
      Alcotest.(check bool)
        (Printf.sprintf "prefix %d: recovered from a snapshot" prefix)
        true
        (outcome.Recovery.snapshot_seq > 0);
    check_engines_agree
      (Printf.sprintf "prefix %d" prefix)
      ids reference outcome.Recovery.engine
  done

let test_recovery_after_crash_loses_only_unsynced () =
  let ids, cmds = workload ~seed:3 ~n:10 ~m:12 in
  let cmds = Array.of_list cmds in
  let wal_config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Every_n 4 } in
  let dir, storage = mem () in
  let wal, _ = Wal.open_ ~config:wal_config storage in
  let engine = Engine.create () in
  let applied = 10 in
  for i = 0 to applied - 1 do
    ignore (Kronos_service.Server.apply engine cmds.(i));
    Wal.append wal ~seq:(i + 1) ~payload:cmds.(i);
    Wal.flush wal
  done;
  (* fsyncs landed after records 4 and 8: the crash rolls back to 8 *)
  Storage.Memory.crash dir;
  let outcome =
    Recovery.run ~wal_config
      ~replay:(fun e (r : Wal.record) ->
        ignore (Kronos_service.Server.apply e r.payload))
      storage
  in
  Alcotest.(check int) "rolled back to last fsync" 9 outcome.Recovery.next_seq;
  let reference = Engine.create () in
  for i = 0 to 7 do
    ignore (Kronos_service.Server.apply reference cmds.(i))
  done;
  check_engines_agree "recovered at the fsync boundary" ids reference
    outcome.Recovery.engine

(* {1 Incremental snapshots (DESIGN.md §16)} *)

(* Every supported snapshot format must encode, decode and restore to a
   behaviourally identical engine, with exactly the sections its era
   carried; out-of-range formats are refused at encode time. *)
let test_snapshot_version_matrix () =
  let ids, cmds = workload ~seed:41 ~n:14 ~m:24 in
  let engine = Engine.create () in
  List.iter (fun c -> ignore (Kronos_service.Server.apply engine c)) cmds;
  for fmt = 1 to Snapshot.version do
    (* recapture per format: [check_engines_agree] issues queries, so the
       reference's counters move between iterations *)
    let snap = Engine.to_snapshot engine in
    let bytes = Snapshot.encode_at ~fmt ~seq:fmt snap in
    let seq, decoded = Snapshot.decode bytes in
    Alcotest.(check int) (Printf.sprintf "v%d seq" fmt) fmt seq;
    Alcotest.(check bool)
      (Printf.sprintf "v%d rank section" fmt)
      (fmt >= 2)
      (decoded.Engine.snap_graph.Graph.snap_rank <> None);
    Alcotest.(check bool)
      (Printf.sprintf "v%d chain section" fmt)
      (fmt >= 5)
      (decoded.Engine.snap_graph.Graph.snap_chains <> None);
    check_engines_agree
      (Printf.sprintf "v%d restore" fmt)
      ids engine
      (Engine.of_snapshot decoded)
  done;
  let snap = Engine.to_snapshot engine in
  (try
     ignore (Snapshot.encode_at ~fmt:0 ~seq:1 snap);
     Alcotest.fail "format 0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Snapshot.encode_at ~fmt:(Snapshot.version + 1) ~seq:1 snap);
    Alcotest.fail "future format accepted"
  with Invalid_argument _ -> ()

(* Files of every vintage coexisting in one directory: recovery resolves
   the newest head (a delta chained on a current full), and when the
   newest links are corrupted it falls back across the version boundary
   to a legacy file — restoring exactly that prefix's state. *)
let test_mixed_version_recovery () =
  let ids, cmds = workload ~seed:41 ~n:14 ~m:24 in
  let cmds = Array.of_list cmds in
  let total = Array.length cmds in
  Alcotest.(check int) "workload length" 40 total;
  let _dir, storage = mem () in
  let engine = Engine.create () in
  let legacy = [ (8, 1); (16, 2); (24, 3); (32, 4) ] in
  Array.iteri
    (fun i c ->
      ignore (Kronos_service.Server.apply engine c);
      let seq = i + 1 in
      (match List.assoc_opt seq legacy with
       | Some fmt ->
         Snapshot.write_bytes storage ~seq
           (Snapshot.encode_at ~fmt ~seq (Engine.to_snapshot engine))
       | None -> ());
      if seq = 36 then begin
        Snapshot.write storage ~seq engine;
        Engine.snapshot_written engine
      end)
    cmds;
  Snapshot.write_delta storage ~base_seq:36 ~seq:total engine;
  Engine.snapshot_written engine;
  (match Snapshot.load_chain storage with
   | Some (seq, restored, applied) ->
     Alcotest.(check int) "newest head wins over legacy files" total seq;
     Alcotest.(check int) "one delta composed" 1 applied;
     check_engines_agree "mixed directory restore" ids engine restored
   | None -> Alcotest.fail "mixed directory did not resolve");
  (* corrupt the delta head and its full base: the resolver must cross
     back into the legacy files and land on the v4 state at 32 *)
  List.iter
    (fun name ->
      storage.Storage.remove_file name;
      let w = storage.Storage.open_append name in
      w.Storage.append "KSNPbitrot";
      w.Storage.sync ();
      w.Storage.close ())
    [ Snapshot.delta_filename ~seq:total; Snapshot.filename ~seq:36 ];
  let reference = Engine.create () in
  for i = 0 to 31 do
    ignore (Kronos_service.Server.apply reference cmds.(i))
  done;
  match Snapshot.load_chain storage with
  | Some (seq, restored, applied) ->
    Alcotest.(check int) "fell back to the v4 file" 32 seq;
    Alcotest.(check int) "no deltas on the legacy path" 0 applied;
    check_engines_agree "legacy fallback restore" ids reference restored
  | None -> Alcotest.fail "legacy fallback did not resolve"

(* A delta captures exactly the slots dirtied since the base was written:
   composing it back onto the base reproduces the live engine, the wire
   encoding round-trips, and bases missing the sections deltas overlay
   (legacy decodes) are refused rather than silently mis-composed. *)
let test_delta_round_trip () =
  let ids, cmds = workload ~seed:29 ~n:12 ~m:18 in
  let cmds = Array.of_list cmds in
  let half = Array.length cmds / 2 in
  let engine = Engine.create () in
  for i = 0 to half - 1 do
    ignore (Kronos_service.Server.apply engine cmds.(i))
  done;
  let base = Engine.to_snapshot engine in
  Engine.snapshot_written engine;
  Alcotest.(check int) "dirty set cleared after capture" 0
    (Engine.dirty_slot_count engine);
  for i = half to Array.length cmds - 1 do
    ignore (Kronos_service.Server.apply engine cmds.(i))
  done;
  Alcotest.(check bool) "mutations re-dirty the engine" true
    (Engine.dirty_slot_count engine > 0);
  let d = Engine.to_delta engine in
  let bytes = Snapshot.encode_delta ~base_seq:half ~seq:(Array.length cmds) d in
  let base_seq, seq, decoded = Snapshot.decode_delta bytes in
  Alcotest.(check int) "delta base seq" half base_seq;
  Alcotest.(check int) "delta seq" (Array.length cmds) seq;
  let composed = Engine.of_snapshot (Engine.apply_delta base decoded) in
  check_engines_agree "base + delta equals live engine" ids engine composed;
  (* a base that decoded without ranks (a legacy file) cannot anchor a
     delta chain *)
  let crippled =
    { base with
      Engine.snap_graph =
        { base.Engine.snap_graph with Graph.snap_rank = None } }
  in
  (try
     ignore (Engine.apply_delta crippled decoded);
     Alcotest.fail "delta composed onto a rank-less base"
   with Invalid_argument _ -> ());
  (* corrupting the encoding must be detected by the checksum *)
  let flipped = Bytes.of_string bytes in
  Bytes.set flipped (Bytes.length flipped - 1)
    (Char.chr (Char.code (Bytes.get flipped (Bytes.length flipped - 1)) lxor 1));
  try
    ignore (Snapshot.decode_delta (Bytes.to_string flipped));
    Alcotest.fail "corrupt delta decoded"
  with Kronos_wire.Codec.Decode_error _ -> ()

(* Restart over a full + delta-chain + WAL-tail directory: recovery walks
   the chain, replays exactly the uncovered suffix, and reports how much
   work that took through the outcome and the recovery metrics. *)
let test_delta_chain_recovery () =
  let ids, cmds = workload ~seed:31 ~n:14 ~m:22 in
  let cmds = Array.of_list cmds in
  let total = Array.length cmds in
  Alcotest.(check int) "workload length" 38 total;
  let wal_config = { Wal.segment_bytes = 256; sync = Wal.Always } in
  let _dir, storage = mem () in
  let wal, _ = Wal.open_ ~config:wal_config storage in
  let engine = Engine.create () in
  let last_snap = ref 0 in
  Array.iteri
    (fun i c ->
      let seq = i + 1 in
      ignore (Kronos_service.Server.apply engine c);
      Wal.append wal ~seq ~payload:c;
      Wal.flush wal;
      if seq mod 6 = 0 then begin
        (if !last_snap = 0 then Snapshot.write storage ~seq engine
         else Snapshot.write_delta storage ~base_seq:!last_snap ~seq engine);
        Engine.snapshot_written engine;
        last_snap := seq;
        Wal.truncate_before wal ~seq
      end)
    cmds;
  Wal.sync wal;
  let outcome =
    Recovery.run ~wal_config
      ~replay:(fun e (r : Wal.record) ->
        ignore (Kronos_service.Server.apply e r.payload))
      storage
  in
  (* full at 6, deltas at 12..36 chained on it, records 37-38 replayed *)
  Alcotest.(check int) "recovered head" 36 outcome.Recovery.snapshot_seq;
  Alcotest.(check int) "deltas composed" 5 outcome.Recovery.deltas_applied;
  Alcotest.(check int) "next seq" (total + 1) outcome.Recovery.next_seq;
  Alcotest.(check int) "bounded tail replayed" 2 outcome.Recovery.replayed;
  Alcotest.(check bool) "replayed bytes accounted" true
    (outcome.Recovery.wal_bytes_replayed > 0);
  Alcotest.(check bool) "timings are sane" true
    (outcome.Recovery.replay_ms >= 0.
     && outcome.Recovery.recovery_ms >= outcome.Recovery.replay_ms);
  check_engines_agree "delta chain recovery" ids engine
    outcome.Recovery.engine;
  (* the run is visible through the metrics registry *)
  let cval scope name =
    Kronos_metrics.Counter.value
      (Kronos_metrics.counter (Kronos_metrics.scope scope) name)
  in
  Alcotest.(check bool) "wal bytes counter advanced" true
    (cval "recovery" "wal_bytes_replayed_total" > 0);
  Alcotest.(check bool) "deltas counter advanced" true
    (cval "recovery" "deltas_applied_total" >= 5)

(* A torn delta write at the head of the chain: recovery falls back to
   the previous link, and compaction retires strays while auditing the
   head it can actually resolve — never the torn file's. *)
let test_delta_torn_write_compaction () =
  let ids, cmds = workload ~seed:43 ~n:12 ~m:18 in
  let cmds = Array.of_list cmds in
  let total = Array.length cmds in
  Alcotest.(check int) "workload length" 32 total;
  let _dir, storage = mem () in
  let engine = Engine.create () in
  let last_snap = ref 0 in
  Array.iteri
    (fun i c ->
      ignore (Kronos_service.Server.apply engine c);
      let seq = i + 1 in
      if seq mod 8 = 0 then begin
        (if !last_snap = 0 then Snapshot.write storage ~seq engine
         else Snapshot.write_delta storage ~base_seq:!last_snap ~seq engine);
        Engine.snapshot_written engine;
        last_snap := seq
      end)
    cmds;
  (* full at 8; deltas at 16, 24, 32.  Tear the head delta and leave the
     stray tmp of the interrupted write behind. *)
  let torn = Snapshot.delta_filename ~seq:32 in
  storage.Storage.remove_file torn;
  let w = storage.Storage.open_append torn in
  w.Storage.append "KSNDtorn";
  w.Storage.sync ();
  w.Storage.close ();
  let w = storage.Storage.open_append "delta-0000000032.tmp" in
  w.Storage.append "interrupted";
  w.Storage.sync ();
  w.Storage.close ();
  let reference = Engine.create () in
  for i = 0 to 23 do
    ignore (Kronos_service.Server.apply reference cmds.(i))
  done;
  (match Snapshot.load_chain storage with
   | Some (seq, restored, applied) ->
     Alcotest.(check int) "fell back past the torn head" 24 seq;
     Alcotest.(check int) "surviving chain composed" 2 applied;
     check_engines_agree "torn-head fallback" ids reference restored
   | None -> Alcotest.fail "torn head destroyed the chain");
  let removed = Snapshot.compact storage ~keep:2 in
  Alcotest.(check bool) "stray tmp retired" true (removed >= 1);
  Alcotest.(check bool) "tmp really gone" true
    (not (List.mem "delta-0000000032.tmp" (storage.Storage.list_files ())));
  (match Snapshot.read_manifest storage with
   | None -> Alcotest.fail "compaction wrote no manifest"
   | Some (head, kept) ->
     Alcotest.(check int) "manifest audits the resolvable head" 24 head;
     let files = storage.Storage.list_files () in
     List.iter
       (fun n ->
         Alcotest.(check bool)
           (Printf.sprintf "manifest entry %s exists" n)
           true (List.mem n files))
       kept);
  (* compaction must not have hurt recoverability *)
  match Snapshot.load_chain storage with
  | Some (seq, _, _) ->
    Alcotest.(check int) "head unchanged by compaction" 24 seq
  | None -> Alcotest.fail "compaction destroyed the chain"

let suites =
  [ ( "durability",
      [
        Alcotest.test_case "wal round trip" `Quick test_wal_round_trip;
        Alcotest.test_case "wal crash drops unsynced" `Quick
          test_wal_crash_drops_unsynced;
        Alcotest.test_case "wal torn tail truncated" `Quick
          test_wal_torn_tail_truncated;
        Alcotest.test_case "wal rotation and truncation" `Quick
          test_wal_rotation_and_truncation;
        Alcotest.test_case "wal sync policies" `Quick test_wal_sync_policies;
        QCheck_alcotest.to_alcotest prop_snapshot_round_trip;
        Alcotest.test_case "snapshot v1 compatibility" `Quick
          test_snapshot_v1_compat;
        Alcotest.test_case "snapshot v5 chains" `Quick test_snapshot_v5_chains;
        Alcotest.test_case "snapshot files" `Quick test_snapshot_files;
        Alcotest.test_case "recovery at every prefix" `Quick
          test_recovery_every_prefix;
        Alcotest.test_case "recovery after crash" `Quick
          test_recovery_after_crash_loses_only_unsynced;
        Alcotest.test_case "snapshot version matrix" `Quick
          test_snapshot_version_matrix;
        Alcotest.test_case "mixed-version recovery" `Quick
          test_mixed_version_recovery;
        Alcotest.test_case "delta round trip" `Quick test_delta_round_trip;
        Alcotest.test_case "delta chain recovery" `Quick
          test_delta_chain_recovery;
        Alcotest.test_case "torn delta write + compaction" `Quick
          test_delta_torn_write_compaction;
      ] );
  ]
