(* The durability layer: WAL framing and recovery semantics, snapshot
   round-trips, and full crash-restart recovery checked against a reference
   engine at every workload prefix. *)

open Kronos
open Kronos_simnet
module Storage = Kronos_durability.Storage
module Wal = Kronos_durability.Wal
module Snapshot = Kronos_durability.Snapshot
module Recovery = Kronos_durability.Recovery
module Graph_gen = Kronos_workload.Graph_gen
module Message = Kronos_wire.Message

let mem () =
  let dir = Storage.Memory.create () in
  (dir, Storage.Memory.storage dir)

let payload_of seq = Printf.sprintf "cmd-%04d" seq

let append_range wal lo hi =
  for seq = lo to hi do
    Wal.append wal ~seq ~payload:(payload_of seq)
  done

let check_records what expected records =
  Alcotest.(check (list (pair int string)))
    what
    (List.map (fun seq -> (seq, payload_of seq)) expected)
    (List.map (fun (r : Wal.record) -> (r.seq, r.payload)) records)

(* {1 WAL} *)

let test_wal_round_trip () =
  let _dir, storage = mem () in
  let wal, recovered = Wal.open_ storage in
  check_records "fresh log empty" [] recovered;
  append_range wal 1 20;
  Wal.sync wal;
  let wal2, recovered = Wal.open_ storage in
  check_records "all records recovered" (List.init 20 (fun i -> i + 1)) recovered;
  Alcotest.(check int) "last seq" 20 (Wal.last_seq wal2);
  (match Wal.read_from wal2 ~since:5 with
   | Some records ->
     check_records "suffix from 6" (List.init 15 (fun i -> i + 6)) records
   | None -> Alcotest.fail "contiguous suffix unavailable");
  match Wal.read_from wal2 ~since:25 with
  | Some [] -> ()
  | Some _ -> Alcotest.fail "expected an empty suffix past the end"
  | None -> Alcotest.fail "a suffix past the end is trivially contiguous"

let test_wal_crash_drops_unsynced () =
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Never } in
  let wal, _ = Wal.open_ ~config storage in
  append_range wal 1 5;
  Wal.sync wal;
  append_range wal 6 8;
  Wal.flush wal;
  (* flushed but never fsynced: a crash loses exactly that suffix *)
  Storage.Memory.crash dir;
  let wal2, recovered = Wal.open_ ~config storage in
  check_records "synced prefix survives" [ 1; 2; 3; 4; 5 ] recovered;
  Alcotest.(check int) "positioned after prefix" 5 (Wal.last_seq wal2)

let test_wal_torn_tail_truncated () =
  let _dir, storage = mem () in
  let wal, _ = Wal.open_ storage in
  append_range wal 1 3;
  Wal.sync wal;
  (* simulate a torn write: half a record's worth of garbage at the tail *)
  let segment =
    match Wal.segment_files wal with
    | [ name ] -> name
    | files -> Alcotest.failf "expected one segment, got %d" (List.length files)
  in
  let w = storage.Storage.open_append segment in
  w.Storage.append "\x00\x00\x00\x20torn";
  w.Storage.sync ();
  w.Storage.close ();
  let wal2, recovered = Wal.open_ storage in
  check_records "valid prefix survives the torn tail" [ 1; 2; 3 ] recovered;
  (* the torn bytes were truncated away: appending works and re-opens clean *)
  Wal.append wal2 ~seq:4 ~payload:(payload_of 4);
  Wal.sync wal2;
  let _, recovered = Wal.open_ storage in
  check_records "appends continue past the repair" [ 1; 2; 3; 4 ] recovered

let test_wal_rotation_and_truncation () =
  let _dir, storage = mem () in
  let config = { Wal.segment_bytes = 64; sync = Wal.Always } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 10 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check bool) "log rotated" true (List.length (Wal.segment_files wal) > 2);
  (match Wal.read_from wal ~since:0 with
   | Some records ->
     check_records "rotation preserves records" (List.init 10 (fun i -> i + 1)) records
   | None -> Alcotest.fail "full log should be readable before truncation");
  Wal.truncate_before wal ~seq:4;
  (match Wal.read_from wal ~since:4 with
   | Some records -> check_records "tail above the snapshot" [ 5; 6; 7; 8; 9; 10 ] records
   | None -> Alcotest.fail "tail above the snapshot must remain readable");
  (match Wal.read_from wal ~since:0 with
   | None -> ()
   | Some _ -> Alcotest.fail "truncated range must be reported unreadable");
  (* truncation works on whole segments: record 4 shares a segment with 5
     and 6, so it legitimately survives *)
  let _, recovered = Wal.open_ ~config storage in
  check_records "reopen sees only surviving segments" [ 4; 5; 6; 7; 8; 9; 10 ]
    recovered

let test_wal_sync_policies () =
  (* Always: one fsync per group commit *)
  let _dir, storage = mem () in
  let wal, _ = Wal.open_ ~config:{ Wal.segment_bytes = 1 lsl 20; sync = Wal.Always } storage in
  for seq = 1 to 5 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "always: fsync per commit" 5 (Wal.sync_count wal);
  (* Every_n: one fsync per n records, crash loses at most the window *)
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Every_n 3 } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 8 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "every_n: fsync per window" 2 (Wal.sync_count wal);
  Storage.Memory.crash dir;
  let _, recovered = Wal.open_ ~config storage in
  check_records "every_n: loss bounded by the window" [ 1; 2; 3; 4; 5; 6 ] recovered;
  (* Never: no fsyncs; a crash can lose everything since open *)
  let dir, storage = mem () in
  let config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Never } in
  let wal, _ = Wal.open_ ~config storage in
  for seq = 1 to 4 do
    Wal.append wal ~seq ~payload:(payload_of seq);
    Wal.flush wal
  done;
  Alcotest.(check int) "never: no fsyncs" 0 (Wal.sync_count wal);
  Storage.Memory.crash dir;
  let _, recovered = Wal.open_ ~config storage in
  check_records "never: crash loses the lot" [] recovered

(* {1 Workloads}

   A deterministic write-only command stream derived from a random graph:
   create the vertices, add the edges low->high (acyclic by construction),
   then release a few references to exercise garbage collection and slot
   reuse. *)

let workload ~seed ~n ~m =
  let rng = Rng.create ~seed:(Int64.of_int seed) in
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m in
  let scratch = Engine.create () in
  let ids = Array.init n (fun _ -> Engine.create_event scratch) in
  let cmds = ref [] in
  let push c = cmds := Message.encode_request c :: !cmds in
  for _ = 1 to n do
    push Message.Create_event
  done;
  Array.iter
    (fun (u, v) ->
      let u, v = (min u v, max u v) in
      push (Message.Assign_order [ Order.must_before ids.(u) ids.(v) ]))
    g.Graph_gen.edges;
  for i = 0 to n - 1 do
    if i mod 7 = 3 then push (Message.Release_ref ids.(i))
  done;
  (ids, List.rev !cmds)

let check_engines_agree what ids reference candidate =
  Alcotest.(check bool) (what ^ ": stats") true
    (Engine.stats reference = Engine.stats candidate);
  Alcotest.(check int) (what ^ ": live events")
    (Engine.live_events reference) (Engine.live_events candidate);
  Alcotest.(check int) (what ^ ": edges")
    (Engine.edges reference) (Engine.edges candidate);
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i <> j then
            let expected = Engine.query_order reference [ (a, b) ] in
            let got = Engine.query_order candidate [ (a, b) ] in
            if expected <> got then
              Alcotest.failf "%s: query (%d, %d) diverges" what i j)
        ids)
    ids

let prop_snapshot_round_trip =
  let open QCheck2 in
  Test.make ~name:"snapshot round trip preserves behaviour" ~count:25
    Gen.(int_range 0 10_000)
    (fun seed ->
      let ids, cmds = workload ~seed ~n:24 ~m:48 in
      let reference = Engine.create () in
      List.iter (fun c -> ignore (Kronos_service.Server.apply reference c)) cmds;
      let restored = Engine.of_snapshot (Engine.to_snapshot reference) in
      check_engines_agree "round trip" ids reference restored;
      (* behavioural identity extends to future commands: slot reuse and
         fresh ids must match too *)
      let a = Engine.create_event reference and b = Engine.create_event restored in
      if not (Event_id.equal a b) then
        Alcotest.fail "fresh ids diverge after restore";
      check_engines_agree "after more commands" ids reference restored;
      true)

(* Snapshot files written before the rank index (format version 1) must
   stay loadable.  A v1 file is the v2 body without the rank suffix under a
   version-1 header; the decoder surfaces it as [snap_rank = None] and
   [Graph.of_snapshot] rebuilds an equivalent rank assignment with Kahn's
   algorithm, so every query answer and counter is preserved. *)
let test_snapshot_v1_compat () =
  let module Codec = Kronos_wire.Codec in
  let module Crc32 = Kronos_durability.Crc32 in
  let ids, cmds = workload ~seed:17 ~n:12 ~m:20 in
  let engine = Engine.create () in
  List.iter (fun c -> ignore (Kronos_service.Server.apply engine c)) cmds;
  let s = Engine.to_snapshot engine in
  let g = s.Engine.snap_graph in
  let e = Codec.encoder () in
  let put_arr a =
    Codec.put_u32 e (Array.length a);
    Array.iter (fun x -> Codec.put_u32 e x) a
  in
  Codec.put_i64 e 42L;
  Codec.put_u32 e g.Graph.snap_next_slot;
  Codec.put_u32 e (Array.length g.Graph.snap_refcount);
  Array.iter (fun rc -> Codec.put_u32 e (rc + 1)) g.Graph.snap_refcount;
  put_arr g.Graph.snap_gen;
  Codec.put_u32 e (Array.length g.Graph.snap_succ);
  Array.iter put_arr g.Graph.snap_succ;
  put_arr g.Graph.snap_free;
  Codec.put_i64 e (Int64.of_int g.Graph.snap_traversals);
  Codec.put_i64 e (Int64.of_int g.Graph.snap_visited_total);
  List.iter
    (fun v -> Codec.put_i64 e (Int64.of_int v))
    [
      s.Engine.snap_creates; s.Engine.snap_queries; s.Engine.snap_assigns;
      s.Engine.snap_aborted_batches; s.Engine.snap_reversals;
      s.Engine.snap_collected;
    ];
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + 10) in
  Buffer.add_string b "KSNP";
  Buffer.add_uint16_be b 1;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  let seq, snap = Snapshot.decode (Buffer.contents b) in
  Alcotest.(check int) "v1 seq" 42 seq;
  Alcotest.(check bool) "v1 decodes without ranks" true
    (snap.Engine.snap_graph.Graph.snap_rank = None);
  let restored = Engine.of_snapshot snap in
  check_engines_agree "v1 snapshot" ids engine restored;
  (* the rebuilt ranks must satisfy the index invariant on every edge *)
  let rg = Engine.graph restored in
  Graph.fold_edges rg
    (fun () u v ->
      match (Graph.rank rg u, Graph.rank rg v) with
      | Some ru, Some rv ->
        if ru >= rv then Alcotest.fail "rebuilt ranks violate edge invariant"
      | _ -> Alcotest.fail "live event without rank")
    ()

(* Version-5 snapshots persist the chain decomposition behind the label
   index.  The restore must install exactly the captured chains (labels are
   recomputed, never stored), so index-only answers are identical before
   and after; a chain-less body (what a v4 file decodes to) must rebuild a
   decomposition deterministically; and a corrupted chain section must be
   rejected rather than installed as an over-approximating index. *)
let test_snapshot_v5_chains () =
  let ids, cmds = workload ~seed:23 ~n:12 ~m:20 in
  let engine = Engine.create () in
  List.iter (fun c -> ignore (Kronos_service.Server.apply engine c)) cmds;
  let bytes = Snapshot.encode ~seq:7 (Engine.to_snapshot engine) in
  let seq, snap = Snapshot.decode bytes in
  Alcotest.(check int) "seq" 7 seq;
  Alcotest.(check bool) "v5 carries chains" true
    (snap.Engine.snap_graph.Graph.snap_chains <> None);
  let restored = Engine.of_snapshot snap in
  check_engines_agree "v5 snapshot" ids engine restored;
  Alcotest.(check int) "chain count preserved" (Engine.chain_count engine)
    (Engine.chain_count restored);
  Alcotest.(check int) "restore recomputed labels once" 1
    (Engine.label_rebuilds restored);
  let g0 = Engine.graph engine and g1 = Engine.graph restored in
  Array.iter
    (fun u ->
      Array.iter
        (fun v ->
          if not (Event_id.equal u v) then
            Alcotest.(check (option bool)) "index answers identical"
              (Graph.label_reachable g0 u v) (Graph.label_reachable g1 u v))
        ids)
    ids;
  (* chain-less restore (the v4 decode surface) rebuilds and still agrees;
     recapture so the counters reflect the queries just issued above *)
  let snap2 = Engine.to_snapshot engine in
  let chainless =
    { snap2 with
      Engine.snap_graph =
        { snap2.Engine.snap_graph with Graph.snap_chains = None } }
  in
  check_engines_agree "chainless restore" ids engine
    (Engine.of_snapshot chainless);
  (* a corrupt chain section must raise, not load *)
  (match snap.Engine.snap_graph.Graph.snap_chains with
   | None -> ()
   | Some cs ->
     let bad_of = Array.copy cs.Graph.cs_chain_of in
     (try
        ignore bad_of.(0);
        bad_of.(0) <- 9999;
        let bad =
          { snap with
            Engine.snap_graph =
              { snap.Engine.snap_graph with
                Graph.snap_chains = Some { cs with Graph.cs_chain_of = bad_of } } }
        in
        ignore (Engine.of_snapshot bad);
        Alcotest.fail "corrupt chain section accepted"
      with Invalid_argument _ -> ()))

let test_snapshot_files () =
  let _dir, storage = mem () in
  let ids, cmds = workload ~seed:7 ~n:12 ~m:18 in
  let engine = Engine.create () in
  List.iteri
    (fun i c ->
      ignore (Kronos_service.Server.apply engine c);
      if (i + 1) mod 10 = 0 then Snapshot.write storage ~seq:(i + 1) engine)
    cmds;
  let final = List.length cmds in
  Snapshot.write storage ~seq:final engine;
  (match Snapshot.load_latest storage with
   | Some (seq, restored) ->
     Alcotest.(check int) "newest snapshot wins" final seq;
     check_engines_agree "loaded snapshot" ids engine restored
   | None -> Alcotest.fail "snapshot missing");
  (* corrupt the newest file: readers must fall back to the next older *)
  let newest = Snapshot.filename ~seq:final in
  storage.Storage.remove_file newest;
  let w = storage.Storage.open_append newest in
  w.Storage.append "KSNPgarbage";
  w.Storage.sync ();
  w.Storage.close ();
  (match Snapshot.load_latest storage with
   | Some (seq, _) ->
     Alcotest.(check bool) "fell back past corruption" true (seq < final)
   | None -> Alcotest.fail "no fallback snapshot");
  Snapshot.truncate_old storage ~keep:1;
  let snaps =
    List.filter
      (fun n -> Filename.check_suffix n ".snap")
      (storage.Storage.list_files ())
  in
  Alcotest.(check int) "truncate_old keeps one" 1 (List.length snaps)

(* Crash-restart recovery must reproduce the reference engine at {e every}
   prefix of the workload, across snapshot cadences and segment rotations. *)
let test_recovery_every_prefix () =
  let ids, cmds = workload ~seed:11 ~n:12 ~m:16 in
  let cmds = Array.of_list cmds in
  let total = Array.length cmds in
  let wal_config = { Wal.segment_bytes = 128; sync = Wal.Always } in
  for prefix = 0 to total do
    (* reference: a replica that never crashed *)
    let reference = Engine.create () in
    for i = 0 to prefix - 1 do
      ignore (Kronos_service.Server.apply reference cmds.(i))
    done;
    (* durable run: log every command, snapshot every 5, then "crash" *)
    let _dir, storage = mem () in
    let wal, _ = Wal.open_ ~config:wal_config storage in
    let engine = Engine.create () in
    for i = 0 to prefix - 1 do
      let seq = i + 1 in
      ignore (Kronos_service.Server.apply engine cmds.(i));
      Wal.append wal ~seq ~payload:cmds.(i);
      Wal.flush wal;
      if seq mod 5 = 0 then begin
        Snapshot.write storage ~seq engine;
        Wal.truncate_before wal ~seq;
        Snapshot.truncate_old storage ~keep:2
      end
    done;
    Wal.sync wal;
    let outcome =
      Recovery.run ~wal_config
        ~replay:(fun e (r : Wal.record) ->
          ignore (Kronos_service.Server.apply e r.payload))
        storage
    in
    Alcotest.(check int)
      (Printf.sprintf "prefix %d: next seq" prefix)
      (prefix + 1) outcome.Recovery.next_seq;
    if prefix >= 5 then
      Alcotest.(check bool)
        (Printf.sprintf "prefix %d: recovered from a snapshot" prefix)
        true
        (outcome.Recovery.snapshot_seq > 0);
    check_engines_agree
      (Printf.sprintf "prefix %d" prefix)
      ids reference outcome.Recovery.engine
  done

let test_recovery_after_crash_loses_only_unsynced () =
  let ids, cmds = workload ~seed:3 ~n:10 ~m:12 in
  let cmds = Array.of_list cmds in
  let wal_config = { Wal.segment_bytes = 1 lsl 20; sync = Wal.Every_n 4 } in
  let dir, storage = mem () in
  let wal, _ = Wal.open_ ~config:wal_config storage in
  let engine = Engine.create () in
  let applied = 10 in
  for i = 0 to applied - 1 do
    ignore (Kronos_service.Server.apply engine cmds.(i));
    Wal.append wal ~seq:(i + 1) ~payload:cmds.(i);
    Wal.flush wal
  done;
  (* fsyncs landed after records 4 and 8: the crash rolls back to 8 *)
  Storage.Memory.crash dir;
  let outcome =
    Recovery.run ~wal_config
      ~replay:(fun e (r : Wal.record) ->
        ignore (Kronos_service.Server.apply e r.payload))
      storage
  in
  Alcotest.(check int) "rolled back to last fsync" 9 outcome.Recovery.next_seq;
  let reference = Engine.create () in
  for i = 0 to 7 do
    ignore (Kronos_service.Server.apply reference cmds.(i))
  done;
  check_engines_agree "recovered at the fsync boundary" ids reference
    outcome.Recovery.engine

let suites =
  [ ( "durability",
      [
        Alcotest.test_case "wal round trip" `Quick test_wal_round_trip;
        Alcotest.test_case "wal crash drops unsynced" `Quick
          test_wal_crash_drops_unsynced;
        Alcotest.test_case "wal torn tail truncated" `Quick
          test_wal_torn_tail_truncated;
        Alcotest.test_case "wal rotation and truncation" `Quick
          test_wal_rotation_and_truncation;
        Alcotest.test_case "wal sync policies" `Quick test_wal_sync_policies;
        QCheck_alcotest.to_alcotest prop_snapshot_round_trip;
        Alcotest.test_case "snapshot v1 compatibility" `Quick
          test_snapshot_v1_compat;
        Alcotest.test_case "snapshot v5 chains" `Quick test_snapshot_v5_chains;
        Alcotest.test_case "snapshot files" `Quick test_snapshot_files;
        Alcotest.test_case "recovery at every prefix" `Quick
          test_recovery_every_prefix;
        Alcotest.test_case "recovery after crash" `Quick
          test_recovery_after_crash_loses_only_unsynced;
      ] );
  ]
