(* The multicore query plane end to end (DESIGN.md §14): a real-TCP
   3-replica chain where every node offloads its reads to a 4-domain
   {!Kronos_service.Query_pool}, exercised through the typed client —
   including a mid-run kill and restart of one node (pool and all), the
   [`At_least] read-your-writes demand, and per-connection epoch
   monotonicity.  Plus the event-loop self-pipe in isolation: a notify
   from another domain must cut a long select short. *)

open Kronos
module Chain = Kronos_replication.Chain
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Query_pool = Kronos_service.Query_pool
module Storage = Kronos_durability.Storage
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Tcp = Kronos_transport.Tcp_transport

(* {1 Event-loop wakeup} *)

let test_notify_interrupts_select () =
  let loop = Event_loop.create () in
  let fired = ref 0 in
  Event_loop.on_notify loop (fun () -> incr fired);
  (* Pending notify: the loop must not block at all. *)
  Event_loop.notify loop;
  let t0 = Unix.gettimeofday () in
  Event_loop.run_once loop ~max_wait:5.0 ();
  Alcotest.(check int) "pending notify delivered" 1 !fired;
  Alcotest.(check bool) "no blocking on pending notify" true
    (Unix.gettimeofday () -. t0 < 1.0);
  (* Cross-domain notify must interrupt an idle 5 s select promptly. *)
  let d =
    Domain.spawn (fun () ->
        Unix.sleepf 0.1;
        Event_loop.notify loop)
  in
  let t0 = Unix.gettimeofday () in
  Event_loop.run_once loop ~max_wait:5.0 ();
  let elapsed = Unix.gettimeofday () -. t0 in
  Domain.join d;
  Alcotest.(check int) "cross-domain notify delivered" 2 !fired;
  Alcotest.(check bool)
    (Printf.sprintf "woke in %.3fs, not the full 5s" elapsed)
    true (elapsed < 2.0);
  (* Coalescing: many notifies before one iteration, one callback run. *)
  Event_loop.notify loop;
  Event_loop.notify loop;
  Event_loop.notify loop;
  Event_loop.run_once loop ~max_wait:0.2 ();
  Alcotest.(check int) "burst coalesced" 3 !fired

(* Regression stress for the drain/notify latch: a notify racing the
   loop's pipe drain must never wedge the latch (flag set, pipe already
   drained) — that state made every later notify skip its wakeup byte, so
   queued completions sat undelivered until stop.  Hammer notifies from
   another domain while the loop drains as fast as it can, then require
   one final notify to still cut a long select short. *)
let test_notify_drain_race () =
  let loop = Event_loop.create () in
  let delivered = ref 0 in
  Event_loop.on_notify loop (fun () -> incr delivered);
  let stop = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Event_loop.notify loop;
          Domain.cpu_relax ()
        done)
  in
  for _ = 1 to 2000 do
    Event_loop.run_once loop ~max_wait:0.0005 ()
  done;
  Atomic.set stop true;
  Domain.join d;
  (* settle: deliver whatever the last pre-stop notify produced *)
  Event_loop.run_once loop ~max_wait:0.05 ();
  let before = !delivered in
  Event_loop.notify loop;
  let t0 = Unix.gettimeofday () in
  Event_loop.run_once loop ~max_wait:5.0 ();
  Alcotest.(check bool) "post-race notify still delivered" true
    (!delivered > before);
  Alcotest.(check bool) "woke promptly, latch not wedged" true
    (Unix.gettimeofday () -. t0 < 2.0)

(* {1 TCP loopback with 4 reader domains per node} *)

let tcp_config =
  { Tcp.default_config with backoff_min = 0.02; backoff_max = 0.2 }

let chain_tcp loop =
  Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
    ~decode:Kronos_replication.Chain_codec.decode ~config:tcp_config ()

let coordinator_addr = 1000

let test_kill_restart_with_pools () =
  let loop = Event_loop.create () in
  let wait ~what ?(secs = 30.) pred =
    if
      not (Event_loop.run_until loop ~deadline:(Event_loop.now loop +. secs) pred)
    then Alcotest.fail ("timed out waiting for " ^ what)
  in

  let dirs = Hashtbl.create 4 in
  let dir_of a =
    match Hashtbl.find_opt dirs a with
    | Some d -> d
    | None ->
        let d = Storage.Memory.create () in
        Hashtbl.replace dirs a d;
        d
  in
  let durability =
    Server.durability ~snapshot_every:16
      ~storage_of:(fun a -> Storage.Memory.storage (dir_of a))
      ()
  in

  let t1 = chain_tcp loop and t2 = chain_tcp loop and t3 = chain_tcp loop in
  let p1 = Tcp.listen t1 ~port:0 () in
  let p2 = Tcp.listen t2 ~port:0 () in
  let p3 = Tcp.listen t3 ~port:0 () in
  let endpoints = [ (coordinator_addr, p1); (1, p1); (2, p2); (3, p3) ] in
  let add_mesh t =
    List.iter (fun (a, p) -> Tcp.add_peer t a ~host:"127.0.0.1" ~port:p) endpoints
  in
  List.iter add_mesh [ t1; t2; t3 ];

  (* One 4-domain query pool per node — exactly what
     [kronosd --query-domains 4] wires up. *)
  let pool1 = Query_pool.create ~loop ~domains:4 () in
  let pool2 = Query_pool.create ~loop ~domains:4 () in
  let pool3 = Query_pool.create ~loop ~domains:4 () in
  Alcotest.(check int) "pool size" 4 (Query_pool.domains pool1);

  let r1, _e1 =
    Server.start_node ~net:(Tcp.transport t1) ~addr:1 ~durability
      ~query_pool:pool1 ()
  in
  let coord =
    Chain.Coordinator.create ~net:(Tcp.transport t1) ~addr:coordinator_addr
      ~chain:[ 1 ] ~ping_interval:0.1 ~failure_timeout:0.5 ()
  in
  let chain_length () =
    List.length (Chain.Coordinator.config coord).Chain.chain
  in
  let join net replica =
    let timer = ref None in
    let joined () =
      List.mem (Chain.Replica.addr replica)
        (Chain.Replica.config replica).Chain.chain
    in
    Chain.Replica.announce_join replica ~coordinator:coordinator_addr;
    timer :=
      Some
        (Transport.every net ~period:0.1 (fun () ->
             if joined () then Option.iter Transport.cancel !timer
             else
               Chain.Replica.announce_join replica
                 ~coordinator:coordinator_addr))
  in
  let r2, _ =
    Server.start_node ~net:(Tcp.transport t2) ~addr:2 ~durability
      ~query_pool:pool2 ()
  in
  join (Tcp.transport t2) r2;
  wait ~what:"replica 2 to join" (fun () -> chain_length () = 2);
  let r3, _ =
    Server.start_node ~net:(Tcp.transport t3) ~addr:3 ~durability
      ~query_pool:pool3 ()
  in
  join (Tcp.transport t3) r3;
  wait ~what:"replica 3 to join" (fun () -> chain_length () = 3);

  let ct = chain_tcp loop in
  add_mesh ct;
  Tcp.connect_peers ct;
  (* Cache capacity 0: every query really crosses the wire and lands on a
     reader domain. *)
  let client =
    Client.create ~net:(Tcp.transport ct) ~addr:9001
      ~coordinator:coordinator_addr ~cache_capacity:0 ~request_timeout:0.25 ()
  in

  (* Phase 1: build a chain of acked orders, querying as we go so the
     pools serve traffic while the writer is active.  Epochs reported on
     this connection must never go backwards. *)
  let total = 30 in
  let acked = ref [] in
  let epochs = ref [] in
  let finished = ref false in
  let rec step prev n =
    if n = 0 then finished := true
    else
      Client.create_event client (function
        | Error _ -> Alcotest.fail "create_event failed"
        | Ok e -> (
            match prev with
            | None -> step (Some e) (n - 1)
            | Some p ->
                Client.assign_order client
                  [ Order.must_before p e ]
                  (function
                    | Error _ -> Alcotest.fail "acyclic assign rejected"
                    | Ok _ ->
                        acked := (p, e) :: !acked;
                        Client.query_order_e client
                          [ (p, e) ]
                          (function
                            | Error _ -> Alcotest.fail "query failed"
                            | Ok (rels, epoch) ->
                                Alcotest.(check int) "one answer" 1
                                  (List.length rels);
                                epochs := epoch :: !epochs;
                                step (Some e) (n - 1)))))
  in
  step None total;
  wait ~what:"workload phase 1" ~secs:60. (fun () -> !finished);
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a >= b && non_decreasing rest
    | _ -> true
  in
  (* [epochs] is newest-first. *)
  Alcotest.(check bool) "per-connection epochs monotonic" true
    (non_decreasing !epochs);
  Alcotest.(check bool) "epochs are stamped" true
    (List.for_all (fun e -> e > 0L) !epochs);
  Alcotest.(check bool) "client tracked the high-water epoch" true
    (Client.last_epoch client >= List.hd !epochs);

  (* Read-your-writes: demand at least the epoch of the last ack, from a
     stale (random) replica.  A behind replica forces a tail retry; the
     answer must reflect the write either way. *)
  let e_demand = Client.last_epoch client in
  let ryw = ref None in
  Client.query_order_e client ~stale:true
    ~consistency:(`At_least e_demand)
    [ List.hd !acked ]
    (fun r -> ryw := Some r);
  wait ~what:"read-your-writes query" (fun () -> !ryw <> None);
  (match Option.get !ryw with
  | Error _ -> Alcotest.fail "at-least query failed"
  | Ok (rels, epoch) ->
      Alcotest.(check bool) "reply epoch meets the demand" true
        (epoch >= e_demand);
      List.iter
        (fun rel ->
          Alcotest.(check bool) "write visible" true
            (Order.relation_equal rel Order.Before))
        rels);

  (* Phase 2: kill replica 2 — runtime and pool — mid-deployment, keep
     writing through the reconfiguration. *)
  Tcp.shutdown t2;
  Query_pool.stop pool2;
  let more = ref [] in
  let finished2 = ref false in
  let rec step2 prev n =
    if n = 0 then finished2 := true
    else
      Client.create_event client (function
        | Error _ -> Alcotest.fail "create_event failed after kill"
        | Ok e -> (
            match prev with
            | None -> step2 (Some e) (n - 1)
            | Some p ->
                Client.assign_order client
                  [ Order.must_before p e ]
                  (function
                    | Error _ -> Alcotest.fail "assign rejected after kill"
                    | Ok _ ->
                        more := (p, e) :: !more;
                        step2 (Some e) (n - 1))))
  in
  step2 None 10;
  wait ~what:"workload phase 2 over the kill" ~secs:60. (fun () ->
      !finished2 && chain_length () = 2);

  (* Restart node 2 on the same port with a fresh pool; it recovers from
     its storage and rejoins at the tail. *)
  let t2b = chain_tcp loop in
  let (_ : int) = Tcp.listen t2b ~port:p2 () in
  add_mesh t2b;
  let pool2b = Query_pool.create ~loop ~domains:4 () in
  let r2b, _ =
    Server.start_node ~net:(Tcp.transport t2b) ~addr:2 ~durability
      ~query_pool:pool2b ()
  in
  Alcotest.(check bool) "recovered from local storage" true
    (Chain.Replica.last_applied r2b > 0);
  join (Tcp.transport t2b) r2b;
  wait ~what:"replica 2 to rejoin" (fun () -> chain_length () = 3);
  wait ~what:"replicas to converge" (fun () ->
      Chain.Replica.last_applied r2b = Chain.Replica.last_applied r1);

  (* Every acked order — before and after the kill — is still queryable;
     the tail is now the restarted node, answering from its reader
     domains over a view recovered through snapshot + WAL. *)
  let pairs = List.rev_append !acked (List.rev !more) in
  let answer = ref None in
  Client.query_order_e client pairs (fun r -> answer := Some r);
  wait ~what:"query through the restarted tail" (fun () -> !answer <> None);
  (match Option.get !answer with
  | Error _ -> Alcotest.fail "final query failed"
  | Ok (rels, epoch) ->
      Alcotest.(check int) "every acked pair answered" (List.length pairs)
        (List.length rels);
      Alcotest.(check bool) "restarted tail stamps a live epoch" true
        (epoch > 0L);
      List.iteri
        (fun i rel ->
          Alcotest.(check bool)
            (Printf.sprintf "acked order %d survives the kill" i)
            true
            (Order.relation_equal rel Order.Before))
        rels);

  List.iter Query_pool.stop [ pool1; pool2b; pool3 ];
  List.iter Tcp.shutdown [ ct; t1; t2b; t3 ]

let suites =
  [
    ( "query_plane",
      [
        Alcotest.test_case "notify interrupts select" `Quick
          test_notify_interrupts_select;
        Alcotest.test_case "notify/drain race never wedges" `Quick
          test_notify_drain_race;
        Alcotest.test_case "4-domain pools survive kill/restart" `Slow
          test_kill_restart_with_pools;
      ] );
  ]
