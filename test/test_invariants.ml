(* Cross-cutting structural invariants of the engine under random operation
   sequences, checked against the introspection API. *)

open Kronos

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" Order.pp_assign_error e

let test_empty_batches () =
  let t = Engine.create () in
  Alcotest.(check int) "empty query" 0
    (List.length (ok (Engine.query_order t [])));
  Alcotest.(check int) "empty assign" 0
    (List.length (ok (Engine.assign_order t [])))

let test_growth_under_load () =
  (* a tiny initial capacity must be invisible to behaviour *)
  let t =
    Engine.create ~config:{ Engine.default_config with Engine.initial_capacity = 2 } ()
  in
  let ids = Array.init 500 (fun _ -> Engine.create_event t) in
  for i = 0 to 498 do
    ignore
      (ok (Engine.assign_order t
             [ Order.must_before ids.(i) ids.(i + 1) ]))
  done;
  Alcotest.(check (list Alcotest.int)) "long chain holds" []
    (List.filter_map
       (fun i ->
         match ok (Engine.query_order t [ (ids.(0), ids.(i)) ]) with
         | [ Order.Before ] -> None
         | _ -> Some i)
       (List.init 499 (fun i -> i + 1)))

(* Structural invariants after random programs:
   - every edge endpoint is a live event;
   - in_degree of each vertex equals the number of edges pointing at it;
   - live_count matches the number of events iter_live visits;
   - edge_count matches fold_edges. *)
let prop_structural_invariants =
  let open QCheck2 in
  let n = 12 in
  let gen_op =
    Gen.(frequency
           [ (4, map2 (fun u v -> `Assign (u, v)) (int_bound (n - 1)) (int_bound (n - 1)));
             (2, map (fun u -> `Release u) (int_bound (n - 1)));
             (1, map (fun u -> `Acquire u) (int_bound (n - 1)));
             (1, return `Create);
           ])
  in
  Test.make ~name:"graph structural invariants under random programs" ~count:150
    Gen.(list_size (int_bound 80) gen_op)
    (fun ops ->
      let t = Engine.create () in
      let ids = ref (Array.to_list (Array.init n (fun _ -> Engine.create_event t))) in
      let pick i = List.nth !ids (i mod List.length !ids) in
      List.iter
        (fun op ->
          match op with
          | `Assign (u, v) ->
            ignore
              (Engine.assign_order t
                 [ Order.prefer_before (pick u) (pick v) ])
          | `Release u -> ignore (Engine.release_ref t (pick u))
          | `Acquire u -> ignore (Engine.acquire_ref t (pick u))
          | `Create -> ids := Engine.create_event t :: !ids)
        ops;
      let g = Engine.graph t in
      (* collect live events *)
      let live = ref [] in
      Graph.iter_live g (fun e -> live := e :: !live);
      let live_ok = List.length !live = Graph.live_count g in
      (* edges *)
      let edge_list = Graph.fold_edges g (fun acc u v -> (u, v) :: acc) [] in
      let edges_ok = List.length edge_list = Graph.edge_count g in
      let endpoints_ok =
        List.for_all
          (fun (u, v) -> Graph.is_live g u && Graph.is_live g v)
          edge_list
      in
      let indeg_ok =
        List.for_all
          (fun e ->
            let expected =
              List.length (List.filter (fun (_, v) -> Event_id.equal v e) edge_list)
            in
            Graph.in_degree g e = Some expected)
          !live
      in
      let outdeg_ok =
        List.for_all
          (fun e ->
            let expected =
              List.length (List.filter (fun (u, _) -> Event_id.equal u e) edge_list)
            in
            Graph.out_degree g e = Some expected)
          !live
      in
      live_ok && edges_ok && endpoints_ok && indeg_ok && outdeg_ok)

(* Refcount bookkeeping: acquire/release must be exactly inverse, and an
   event with k extra acquires needs k+1 releases to die. *)
let prop_refcounts =
  let open QCheck2 in
  Test.make ~name:"refcount acquire/release inverse" ~count:200
    Gen.(int_bound 10)
    (fun k ->
      let t = Engine.create () in
      let e = Engine.create_event t in
      for _ = 1 to k do
        match Engine.acquire_ref t e with
        | Ok () -> ()
        | Error _ -> failwith "acquire failed"
      done;
      (* k + 1 releases: the first k keep it alive *)
      let alive_through =
        List.for_all
          (fun _ ->
            match Engine.release_ref t e with
            | Ok 0 -> Engine.live_events t = 1
            | Ok _ | Error _ -> false)
          (List.init k Fun.id)
      in
      let died =
        match Engine.release_ref t e with
        | Ok 1 -> Engine.live_events t = 0
        | Ok _ | Error _ -> false
      in
      alive_through && died)

(* GC and slot reuse interact with ordering: recycled slots must never
   resurrect old relationships. *)
let test_slot_reuse_no_ghost_edges () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ Order.must_before a b ]));
  ignore (Engine.release_ref t b);
  ignore (Engine.release_ref t a);
  Alcotest.(check int) "collected" 0 (Engine.live_events t);
  (* new events reuse the same slots *)
  let a' = Engine.create_event t in
  let b' = Engine.create_event t in
  Alcotest.(check bool) "slots recycled" true
    (Event_id.slot a' = Event_id.slot b || Event_id.slot a' = Event_id.slot a);
  Alcotest.(check (list (Alcotest.testable Order.pp_relation Order.relation_equal)))
    "no ghost order" [ Order.Concurrent ]
    (ok (Engine.query_order t [ (a', b') ]))

(* Differential test: an engine with the Section 2.5 traversal-result memo
   must answer every query identically to an uncached one, across random
   programs including batch aborts (which roll edges back) and GC. *)
let prop_traversal_cache_transparent =
  let open QCheck2 in
  let n = 10 in
  let gen_op =
    Gen.(frequency
           [ (4, map2 (fun u v -> `Prefer (u, v)) (int_bound (n - 1)) (int_bound (n - 1)));
             (2, map3 (fun a b c -> `Must2 (a, b, c))
                (int_bound (n - 1)) (int_bound (n - 1)) (int_bound (n - 1)));
             (4, map2 (fun u v -> `Query (u, v)) (int_bound (n - 1)) (int_bound (n - 1)));
             (1, map (fun u -> `Release u) (int_bound (n - 1)));
           ])
  in
  Test.make ~name:"traversal cache is semantically transparent" ~count:200
    Gen.(list_size (int_bound 80) gen_op)
    (fun ops ->
      let cached =
        Engine.create ~config:{ Engine.default_config with Engine.initial_capacity = 16; traversal_cache = 64 } ()
      in
      let plain = Engine.create () in
      let ids_c = Array.init n (fun _ -> Engine.create_event cached) in
      let ids_p = Array.init n (fun _ -> Engine.create_event plain) in
      List.for_all
        (fun op ->
          match op with
          | `Prefer (u, v) ->
            let r1 =
              Engine.assign_order cached
                [ Order.prefer_before ids_c.(u) ids_c.(v) ]
            and r2 =
              Engine.assign_order plain
                [ Order.prefer_before ids_p.(u) ids_p.(v) ]
            in
            r1 = r2
          | `Must2 (a, b, c) ->
            (* two musts: the second may violate, forcing a rollback of the
               first — the dangerous path for a stale memo *)
            let batch ids =
              [ Order.must_before ids.(a) ids.(b);
                Order.must_before ids.(b) ids.(c) ]
            in
            Engine.assign_order cached (batch ids_c)
            = Engine.assign_order plain (batch ids_p)
          | `Query (u, v) ->
            Engine.query_order cached [ (ids_c.(u), ids_c.(v)) ]
            = Engine.query_order plain [ (ids_p.(u), ids_p.(v)) ]
          | `Release u ->
            Engine.release_ref cached ids_c.(u) = Engine.release_ref plain ids_p.(u))
        ops)

let test_traversal_cache_hits () =
  (* the label index would answer these queries before the memo is even
     consulted, so turn it off to exercise the memo path *)
  let t =
    Engine.create
      ~config:{ Engine.default_config with Engine.initial_capacity = 16;
                traversal_cache = 128; max_chains = 0 } ()
  in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ Order.must_before a b ]));
  for _ = 1 to 10 do
    ignore (ok (Engine.query_order t [ (a, b) ]))
  done;
  Alcotest.(check bool) "memo hit" true
    (Graph.traversal_cache_hits (Engine.graph t) > 0)

let test_label_hits () =
  (* with the default config the chain-label compare answers positive
     queries with zero traversals *)
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ Order.must_before a b ]));
  for _ = 1 to 10 do
    ignore (ok (Engine.query_order t [ (a, b) ]))
  done;
  Alcotest.(check bool) "label hits" true (Engine.label_hits t >= 10);
  Alcotest.(check int) "no traversals" 0 (Engine.stats t).traversals;
  Alcotest.(check bool) "chains live" true (Engine.chain_count t > 0)

let suites =
  [ ( "invariants",
      [
        Alcotest.test_case "empty batches" `Quick test_empty_batches;
        Alcotest.test_case "growth under load" `Quick test_growth_under_load;
        Alcotest.test_case "slot reuse has no ghosts" `Quick
          test_slot_reuse_no_ghost_edges;
        Alcotest.test_case "traversal cache hits" `Quick test_traversal_cache_hits;
        Alcotest.test_case "label hits" `Quick test_label_hits;
        QCheck_alcotest.to_alcotest prop_structural_invariants;
        QCheck_alcotest.to_alcotest prop_refcounts;
        QCheck_alcotest.to_alcotest prop_traversal_cache_transparent;
      ] );
  ]
