open Kronos
open Kronos_wire

let test_codec_roundtrip () =
  let b = Codec.encoder () in
  Codec.put_u8 b 200;
  Codec.put_u16 b 60000;
  Codec.put_u32 b 123_456_789;
  Codec.put_i64 b (-42L);
  Codec.put_bool b true;
  Codec.put_float b 3.5;
  Codec.put_string b "hello";
  Codec.put_list b Codec.put_u8 [ 1; 2; 3 ];
  let d = Codec.decoder (Codec.to_string b) in
  Alcotest.(check int) "u8" 200 (Codec.get_u8 d);
  Alcotest.(check int) "u16" 60000 (Codec.get_u16 d);
  Alcotest.(check int) "u32" 123_456_789 (Codec.get_u32 d);
  Alcotest.(check int64) "i64" (-42L) (Codec.get_i64 d);
  Alcotest.(check bool) "bool" true (Codec.get_bool d);
  Alcotest.(check (float 0.0)) "float" 3.5 (Codec.get_float d);
  Alcotest.(check string) "string" "hello" (Codec.get_string d);
  Alcotest.(check (list int)) "list" [ 1; 2; 3 ] (Codec.get_list d Codec.get_u8);
  Alcotest.(check bool) "end" true (Codec.at_end d);
  Codec.expect_end d

let test_codec_truncated () =
  let raises f =
    match f () with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.fail "expected Decode_error"
  in
  raises (fun () -> Codec.get_u32 (Codec.decoder "ab"));
  raises (fun () -> Codec.get_i64 (Codec.decoder "1234567"));
  raises (fun () -> Codec.get_string (Codec.decoder "\x00\x00\x00\x05ab"));
  raises (fun () -> Codec.get_bool (Codec.decoder "\x07"));
  raises (fun () -> Codec.expect_end (Codec.decoder "x"))

let sample_requests =
  let e n = Event_id.make ~slot:n ~gen:(n mod 3) in
  [
    Message.Create_event;
    Message.Acquire_ref (e 7);
    Message.Release_ref (e 0);
    Message.Query_order [];
    Message.Query_order [ (e 1, e 2); (e 3, e 3) ];
    Message.Assign_order
      [ Order.must_before (e 1) (e 2); Order.prefer_after (e 2) (e 3) ];
  ]

let sample_responses =
  let e n = Event_id.make ~slot:n ~gen:0 in
  [
    Message.Event_created (e 9);
    Message.Ref_acquired;
    Message.Ref_released 17;
    Message.Orders [ Order.Before; Order.After; Order.Concurrent; Order.Same ];
    Message.Outcomes [ Order.Applied; Order.Already; Order.Reversed ];
    Message.Rejected (Order.Must_violated 3);
    Message.Rejected (Order.Must_self 0);
    Message.Rejected (Order.Unknown_event (e 5));
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      let r' = Message.decode_request (Message.encode_request r) in
      if not (Message.request_equal r r') then
        Alcotest.failf "request mismatch: %a" Message.pp_request r)
    sample_requests

let test_response_roundtrip () =
  List.iter
    (fun r ->
      let r' = Message.decode_response (Message.encode_response r) in
      if not (Message.response_equal r r') then
        Alcotest.failf "response mismatch: %a" Message.pp_response r)
    sample_responses

let test_bad_tags () =
  let raises s f =
    match f () with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.failf "expected Decode_error for %s" s
  in
  raises "request" (fun () -> Message.decode_request "\x09");
  raises "response" (fun () -> Message.decode_response "\x09");
  raises "trailing" (fun () ->
      Message.decode_request (Message.encode_request Message.Create_event ^ "x"))

let test_read_only () =
  Alcotest.(check bool) "query ro" true (Message.is_read_only (Message.Query_order []));
  Alcotest.(check bool) "create rw" false (Message.is_read_only Message.Create_event);
  Alcotest.(check bool) "assign rw" false (Message.is_read_only (Message.Assign_order []))

let test_frame_roundtrip () =
  let r = Frame.Reassembler.create () in
  let framed = Frame.encode "abc" ^ Frame.encode "" ^ Frame.encode "defg" in
  (* feed byte by byte to exercise partial reads *)
  let out = ref [] in
  String.iter
    (fun ch ->
      out := !out @ Frame.Reassembler.feed r (String.make 1 ch))
    framed;
  Alcotest.(check (list string)) "frames" [ "abc"; ""; "defg" ] !out;
  Alcotest.(check int) "no pending" 0 (Frame.Reassembler.pending_bytes r)

let test_frame_oversized () =
  let r = Frame.Reassembler.create () in
  let b = Codec.encoder () in
  Codec.put_u32 b (Frame.max_frame + 1);
  match Frame.Reassembler.feed r (Codec.to_string b) with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected oversized frame rejection"

let prop_request_roundtrip =
  let open QCheck2 in
  let gen_event = Gen.(map2 (fun s g -> Event_id.make ~slot:s ~gen:g) (int_bound 10_000) (int_bound 50)) in
  let gen_dir = Gen.(map (fun b -> if b then Order.Happens_before else Order.Happens_after) bool) in
  let gen_kind = Gen.(map (fun b -> if b then Order.Must else Order.Prefer) bool) in
  let gen_req =
    Gen.(frequency
           [ (1, return Message.Create_event);
             (1, map (fun e -> Message.Acquire_ref e) gen_event);
             (1, map (fun e -> Message.Release_ref e) gen_event);
             (2, map (fun ps -> Message.Query_order ps)
                (list_size (int_bound 20) (pair gen_event gen_event)));
             (2, map (fun rs -> Message.Assign_order rs)
                (list_size (int_bound 20)
                   (map2
                      (fun (e1, e2) (d, k) ->
                        Order.constrain ~kind:k ~direction:d e1 e2)
                      (pair gen_event gen_event) (pair gen_dir gen_kind))));
           ])
  in
  Test.make ~name:"wire request roundtrip" ~count:300 gen_req (fun r ->
      Message.request_equal r (Message.decode_request (Message.encode_request r)))

let prop_frames_any_chunking =
  let open QCheck2 in
  Test.make ~name:"frame reassembly under random chunking" ~count:200
    Gen.(pair (list_size (int_bound 8) (string_size (int_bound 50)))
           (list_size (int_bound 30) (int_range 1 7)))
    (fun (payloads, chunk_sizes) ->
      let stream = String.concat "" (List.map Frame.encode payloads) in
      let r = Frame.Reassembler.create () in
      let out = ref [] in
      let pos = ref 0 in
      let sizes = ref chunk_sizes in
      while !pos < String.length stream do
        let n =
          match !sizes with
          | [] -> String.length stream - !pos
          | s :: rest ->
            sizes := rest;
            min s (String.length stream - !pos)
        in
        out := !out @ Frame.Reassembler.feed r (String.sub stream !pos n);
        pos := !pos + n
      done;
      !out = payloads)

let suites =
  [ ( "wire",
      [
        Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
        Alcotest.test_case "codec truncated" `Quick test_codec_truncated;
        Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
        Alcotest.test_case "response roundtrip" `Quick test_response_roundtrip;
        Alcotest.test_case "bad tags" `Quick test_bad_tags;
        Alcotest.test_case "read-only classification" `Quick test_read_only;
        Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
        Alcotest.test_case "frame oversized" `Quick test_frame_oversized;
        QCheck_alcotest.to_alcotest prop_request_roundtrip;
        QCheck_alcotest.to_alcotest prop_frames_any_chunking;
      ] );
  ]
