open Kronos

let relation = Alcotest.testable Order.pp_relation Order.relation_equal

let query_exn g a b =
  match Graph.query g a b with
  | Ok r -> r
  | Error e -> Alcotest.failf "stale event %a" Event_id.pp e

let test_create_refcount () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  Alcotest.(check (option int)) "initial ref" (Some 1) (Graph.refcount g a);
  Alcotest.(check bool) "acquire" true (Graph.acquire_ref g a);
  Alcotest.(check (option int)) "ref 2" (Some 2) (Graph.refcount g a);
  Alcotest.(check (option int)) "release keeps" (Some 0) (Graph.release_ref g a);
  Alcotest.(check (option int)) "ref 1" (Some 1) (Graph.refcount g a);
  Alcotest.(check (option int)) "release collects" (Some 1) (Graph.release_ref g a);
  Alcotest.(check bool) "dead" false (Graph.is_live g a);
  Alcotest.(check int) "live" 0 (Graph.live_count g)

let test_query_relations () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  Alcotest.check relation "same" Order.Same (query_exn g a a);
  Alcotest.check relation "concurrent" Order.Concurrent (query_exn g a b);
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Alcotest.check relation "direct" Order.Before (query_exn g a b);
  Alcotest.check relation "flipped" Order.After (query_exn g b a);
  Alcotest.check relation "transitive" Order.Before (query_exn g a c);
  Alcotest.check relation "transitive flipped" Order.After (query_exn g c a)

let test_stale_query () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  ignore (Graph.release_ref g a);
  (match Graph.query g a b with
   | Error e -> Alcotest.(check bool) "stale is a" true (Event_id.equal e a)
   | Ok _ -> Alcotest.fail "expected stale error");
  Alcotest.(check bool) "reachable false on stale" false (Graph.reachable g a b)

let test_slot_reuse_generation () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  ignore (Graph.release_ref g a);
  let b = Graph.create_event g in
  (* b reuses a's slot but has a new generation: a must stay invalid. *)
  Alcotest.(check int) "slot reused" (Event_id.slot a) (Event_id.slot b);
  Alcotest.(check bool) "different ids" false (Event_id.equal a b);
  Alcotest.(check bool) "old id dead" false (Graph.is_live g a);
  Alcotest.(check bool) "new id live" true (Graph.is_live g b);
  Alcotest.(check bool) "acquire stale" false (Graph.acquire_ref g a);
  Alcotest.(check (option int)) "release stale" None (Graph.release_ref g a)

(* Figure 4 of the paper: A -> {B, D}, B -> C, D -> C, refs held only on A
   and E (standalone).  Releasing unrelated E collects only E; releasing A
   collects the whole pinned component. *)
let test_gc_pinning_figure4 () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  let d = Graph.create_event g in
  let e = Graph.create_event g in
  Graph.add_edge g a b;
  Graph.add_edge g a d;
  Graph.add_edge g b c;
  Graph.add_edge g d c;
  (* Drop the refs on B, C, D: they stay pinned by A. *)
  List.iter (fun x -> ignore (Graph.release_ref g x)) [ b; c; d ];
  Alcotest.(check int) "still live" 5 (Graph.live_count g);
  Alcotest.(check bool) "b pinned" true (Graph.is_live g b);
  Alcotest.check relation "a before c" Order.Before (query_exn g a c);
  (* Releasing E collects just E. *)
  Alcotest.(check (option int)) "e collected" (Some 1) (Graph.release_ref g e);
  Alcotest.(check int) "four live" 4 (Graph.live_count g);
  (* Releasing A cascades through the whole component. *)
  Alcotest.(check (option int)) "cascade" (Some 4) (Graph.release_ref g a);
  Alcotest.(check int) "none live" 0 (Graph.live_count g);
  Alcotest.(check int) "no edges" 0 (Graph.edge_count g)

let test_gc_waits_for_predecessor () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  Graph.add_edge g a b;
  (* b's refcount drops to zero but a still points at it. *)
  Alcotest.(check (option int)) "b pinned" (Some 0) (Graph.release_ref g b);
  Alcotest.(check bool) "b live" true (Graph.is_live g b);
  (* once a goes away, b follows *)
  Alcotest.(check (option int)) "both" (Some 2) (Graph.release_ref g a)

let test_gc_chain_linear () =
  (* Collecting a chain a1 -> a2 -> ... -> an by one release. *)
  let g = Graph.create () in
  let n = 1000 in
  let ids = Array.init n (fun _ -> Graph.create_event g) in
  for i = 0 to n - 2 do
    Graph.add_edge g ids.(i) ids.(i + 1)
  done;
  for i = 1 to n - 1 do
    ignore (Graph.release_ref g ids.(i))
  done;
  Alcotest.(check int) "all live" n (Graph.live_count g);
  Alcotest.(check (option int)) "collect whole chain" (Some n)
    (Graph.release_ref g ids.(0));
  Alcotest.(check int) "empty" 0 (Graph.live_count g)

let test_gc_diamond_partial () =
  (* a -> b, c -> b: b waits for both predecessors. *)
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  Graph.add_edge g a b;
  Graph.add_edge g c b;
  ignore (Graph.release_ref g b);
  Alcotest.(check (option int)) "a out, b waits on c" (Some 1)
    (Graph.release_ref g a);
  Alcotest.(check bool) "b still pinned by c" true (Graph.is_live g b);
  Alcotest.(check (option int)) "c releases b too" (Some 2)
    (Graph.release_ref g c)

let test_rollback () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  Graph.add_edge g a b;
  Alcotest.(check int) "one edge" 1 (Graph.edge_count g);
  Graph.remove_last_edge g a b;
  Alcotest.(check int) "rolled back" 0 (Graph.edge_count g);
  Alcotest.check relation "concurrent again" Order.Concurrent (query_exn g a b);
  Alcotest.(check (option int)) "in-degree restored" (Some 0)
    (Graph.in_degree g b);
  Alcotest.check_raises "wrong rollback"
    (Invalid_argument "Graph.remove_last_edge: not the last edge") (fun () ->
      Graph.remove_last_edge g a b)

let test_growth () =
  let g = Graph.create ~initial_capacity:16 () in
  let ids = Array.init 200 (fun _ -> Graph.create_event g) in
  for i = 0 to 198 do
    Graph.add_edge g ids.(i) ids.(i + 1)
  done;
  Alcotest.(check int) "live" 200 (Graph.live_count g);
  Alcotest.check relation "long path" Order.Before
    (query_exn g ids.(0) ids.(199));
  Alcotest.(check bool) "capacity grew" true (Graph.capacity g >= 200)

let test_introspection () =
  let g = Graph.create () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  Graph.add_edge g a b;
  Graph.add_edge g a c;
  Alcotest.(check (option int)) "out" (Some 2) (Graph.out_degree g a);
  Alcotest.(check (option int)) "in" (Some 1) (Graph.in_degree g b);
  Alcotest.(check int) "successors" 2 (List.length (Graph.successors g a));
  let live = ref 0 in
  Graph.iter_live g (fun _ -> incr live);
  Alcotest.(check int) "iter_live" 3 !live;
  let edges = Graph.fold_edges g (fun acc _ _ -> acc + 1) 0 in
  Alcotest.(check int) "fold_edges" 2 edges;
  Alcotest.(check bool) "memory positive" true (Graph.memory_bytes g > 0)

(* Work accounting of the traversal counters.  The chain is built in
   creation order, so the rank index admits every edge in O(1) without a
   single traversal; each positive query then counts every distinct slot
   inserted into a visited set, endpoints included (the destination used to
   be dropped when the search ended in Found), and rank-refuted queries
   count nothing at all.  The label index is disabled here so the queries
   actually pay the BFS whose accounting we are asserting. *)
let test_visited_accounting () =
  let g = Graph.create ~max_chains:0 () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  Graph.add_edge g a b;
  Graph.add_edge g b c;
  Alcotest.(check int) "creation-order edges traverse nothing" 0
    (Graph.traversal_count g);
  Alcotest.(check bool) "a->b" true (Graph.reachable g a b);
  Alcotest.(check int) "one traversal" 1 (Graph.traversal_count g);
  Alcotest.(check int) "direct hit counts both endpoints" 2
    (Graph.visited_total g);
  (* two-hop: forward side visits {a, b}, backward side seeds {c}; the
     meeting vertex belongs to exactly one side, so nothing double-counts *)
  Alcotest.(check bool) "a->c" true (Graph.reachable g a c);
  Alcotest.(check int) "two traversals" 2 (Graph.traversal_count g);
  Alcotest.(check int) "chain visit accounting" (2 + 3)
    (Graph.visited_total g);
  (* wrong direction: refuted by rank comparison alone *)
  let pruned0 = Graph.rank_pruned_count g in
  Alcotest.(check bool) "c->a refuted" false (Graph.reachable g c a);
  Alcotest.(check int) "no extra traversal" 2 (Graph.traversal_count g);
  Alcotest.(check int) "no extra visits" 5 (Graph.visited_total g);
  Alcotest.(check int) "refuted by rank" (pruned0 + 1)
    (Graph.rank_pruned_count g);
  (* an out-of-order edge pays one bounded cycle probe plus a relabel *)
  let x = Graph.create_event g in
  let y = Graph.create_event g in
  let relabels0 = Graph.rank_relabel_count g in
  Graph.add_edge g y x;
  Alcotest.(check int) "out-of-order edge relabels" (relabels0 + 1)
    (Graph.rank_relabel_count g);
  Alcotest.(check int) "cycle probe counted as traversal" 3
    (Graph.traversal_count g);
  Alcotest.(check int) "cycle probe visits its seed" 6
    (Graph.visited_total g);
  (match (Graph.rank g y, Graph.rank g x) with
   | Some ry, Some rx ->
     Alcotest.(check bool) "ranks repaired" true (ry < rx)
   | _ -> Alcotest.fail "live events must have ranks")

(* Differential property for the rank index: drive a random interleaving of
   create / add_edge / release / rollback / snapshot operations against
   both the real graph and a naive reference model (adjacency lists,
   refcounts and the same strict-GC rule), and after every single step
   check that liveness, GC counts and pairwise reachability agree with the
   model and that rank u < rank v holds for every live edge — through slot
   reuse, GC cascades, edge rollback and snapshot round-trips (including
   legacy rank-less snapshots, which force the Kahn rebuild path, and
   chain-less ones, which force the label rebuild path).  The same program
   also exercises the chain-label index: whenever [Graph.label_reachable]
   commits to an answer it must bit-match the model — over-approximation
   is as much a bug as under-approximation.  Instantiated three times:
   with the default chain cap (labels answer nearly everything), with a
   cap of 2 (constant saturation, so label answers and BFS fallbacks
   interleave) and with the index disabled outright. *)
let make_rank_differential ~max_chains name =
  let open QCheck2 in
  let gen_op =
    Gen.frequency
      [
        (4, Gen.return `Create);
        (6, Gen.map2 (fun a b -> `Edge (a, b)) (Gen.int_bound 999) (Gen.int_bound 999));
        (2, Gen.map (fun a -> `Release a) (Gen.int_bound 999));
        (1, Gen.return `Rollback);
        (1, Gen.return `Snapshot);
        (1, Gen.return `Legacy_snapshot);
        (1, Gen.return `Chainless_snapshot);
      ]
  in
  Test.make ~name ~count:120
    (Gen.list_size (Gen.int_bound 70) gen_op)
    (fun ops ->
      let g = ref (Graph.create ~initial_capacity:4 ~max_chains ()) in
      let max_n = 20 in
      let ids = Array.make max_n Event_id.none in
      let rc = Array.make max_n 0 in
      let live = Array.make max_n false in
      let succs = Array.make max_n [] in
      let indeg = Array.make max_n 0 in
      let created = ref 0 in
      (* the one edge remove_last_edge may legally undo right now *)
      let last_edge = ref None in
      let model_reach u v =
        let seen = Array.make max_n false in
        let rec dfs x =
          List.exists
            (fun y ->
              y = v
              || ((not seen.(y))
                  && begin
                    seen.(y) <- true;
                    dfs y
                  end))
            succs.(x)
        in
        dfs u
      in
      let rec collect i killed =
        if live.(i) && rc.(i) = 0 && indeg.(i) = 0 then begin
          live.(i) <- false;
          incr killed;
          let out = succs.(i) in
          succs.(i) <- [];
          List.iter (fun j -> indeg.(j) <- indeg.(j) - 1) out;
          List.iter (fun j -> collect j killed) out
        end
      in
      let check_agree step =
        for i = 0 to !created - 1 do
          if Graph.is_live !g ids.(i) <> live.(i) then
            Test.fail_reportf "step %d: liveness mismatch on event %d" step i
        done;
        for u = 0 to !created - 1 do
          if live.(u) then
            List.iter
              (fun v ->
                match (Graph.rank !g ids.(u), Graph.rank !g ids.(v)) with
                | Some ru, Some rv ->
                  if ru >= rv then
                    Test.fail_reportf
                      "step %d: rank invariant broken on edge %d->%d (%d >= %d)"
                      step u v ru rv
                | _ -> Test.fail_reportf "step %d: live event without rank" step)
              succs.(u)
        done;
        for u = 0 to !created - 1 do
          for v = 0 to !created - 1 do
            if u <> v && live.(u) && live.(v) then begin
              if Graph.reachable !g ids.(u) ids.(v) <> model_reach u v then
                Test.fail_reportf "step %d: reachability mismatch %d -> %d"
                  step u v;
              match Graph.label_reachable !g ids.(u) ids.(v) with
              | Some ans ->
                if max_chains = 0 && ans then
                  Test.fail_reportf
                    "step %d: disabled label index claimed %d -> %d" step u v;
                if ans <> model_reach u v then
                  Test.fail_reportf "step %d: label mismatch %d -> %d" step u v
              | None -> ()
            end
          done
        done
      in
      List.iteri
        (fun step op ->
          (match op with
           | `Create ->
             if !created < max_n then begin
               let e = Graph.create_event !g in
               ids.(!created) <- e;
               rc.(!created) <- 1;
               live.(!created) <- true;
               succs.(!created) <- [];
               indeg.(!created) <- 0;
               incr created;
               last_edge := None
             end
           | `Edge (a, b) ->
             if !created > 0 then begin
               let u = a mod !created and v = b mod !created in
               if live.(u) && live.(v) && not (List.mem v succs.(u)) then begin
                 let expect = (u <> v) && not (model_reach v u) in
                 let admitted = Graph.try_add_edge !g ids.(u) ids.(v) in
                 if admitted <> expect then
                   Test.fail_reportf
                     "step %d: edge %d->%d admitted=%b, model expects %b" step
                     u v admitted expect;
                 if admitted then begin
                   succs.(u) <- v :: succs.(u);
                   indeg.(v) <- indeg.(v) + 1;
                   last_edge := Some (u, v)
                 end
               end
             end
           | `Release a ->
             if !created > 0 then begin
               let i = a mod !created in
               let expected =
                 if (not live.(i)) || rc.(i) = 0 then None
                 else begin
                   rc.(i) <- rc.(i) - 1;
                   let killed = ref 0 in
                   collect i killed;
                   Some !killed
                 end
               in
               let got = Graph.release_ref !g ids.(i) in
               if got <> expected then
                 Test.fail_reportf "step %d: release %d disagrees with model"
                   step i;
               last_edge := None
             end
           | `Rollback -> (
               match !last_edge with
               | None -> ()
               | Some (u, v) ->
                 Graph.remove_last_edge !g ids.(u) ids.(v);
                 succs.(u) <- List.filter (fun x -> x <> v) succs.(u);
                 indeg.(v) <- indeg.(v) - 1;
                 last_edge := None)
           | `Snapshot ->
             g := Graph.of_snapshot ~max_chains (Graph.to_snapshot !g);
             last_edge := None
           | `Legacy_snapshot ->
             (* v1–v3 on disk: no rank index, no chains — both rebuild *)
             let s = Graph.to_snapshot !g in
             g :=
               Graph.of_snapshot ~max_chains
                 { s with Graph.snap_rank = None; snap_next_rank = 0;
                   snap_chains = None };
             last_edge := None
           | `Chainless_snapshot ->
             (* v4 on disk: rank survives, chains rebuilt deterministically *)
             let s = Graph.to_snapshot !g in
             g :=
               Graph.of_snapshot ~max_chains
                 { s with Graph.snap_chains = None };
             last_edge := None);
          check_agree step)
        ops;
      true)

let prop_rank_index_differential =
  make_rank_differential ~max_chains:64
    "rank index matches reference model under interleavings"

let prop_label_saturated_differential =
  make_rank_differential ~max_chains:2
    "chain labels stay exact under cap saturation"

let prop_label_disabled_differential =
  make_rank_differential ~max_chains:0
    "disabled label index never answers"

(* Model-based property: build a random graph through cycle-checked edge
   additions; the graph must agree with a reference transitive closure and
   must never contain a cycle. *)
let prop_matches_closure =
  let open QCheck2 in
  let n = 12 in
  let gen_edges = Gen.(list_size (int_bound 60) (pair (int_bound (n - 1)) (int_bound (n - 1)))) in
  Test.make ~name:"graph matches reference transitive closure" ~count:150
    gen_edges
    (fun edges ->
      let g = Graph.create () in
      let ids = Array.init n (fun _ -> Graph.create_event g) in
      let closure = Array.make_matrix n n false in
      let reach u v =
        let visited = Array.make n false in
        let rec dfs x =
          x = v
          || (not visited.(x)
              && begin
                visited.(x) <- true;
                let found = ref false in
                for y = 0 to n - 1 do
                  if closure.(x).(y) && dfs y then found := true
                done;
                !found
              end)
        in
        dfs u
      in
      List.iter
        (fun (u, v) ->
          (* mimic the engine: add only when coherent and not implied *)
          if u <> v && not (Graph.reachable g ids.(v) ids.(u))
             && not (Graph.reachable g ids.(u) ids.(v))
          then begin
            Graph.add_edge g ids.(u) ids.(v);
            closure.(u).(v) <- true
          end)
        edges;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let expected = reach u v in
            if Graph.reachable g ids.(u) ids.(v) <> expected then ok := false;
            (* acyclicity: never both directions *)
            if expected && reach v u then ok := false
          end
        done
      done;
      !ok)

(* Property: GC never breaks an ordering between two still-referenced
   events. *)
let prop_gc_preserves_order =
  let open QCheck2 in
  let n = 10 in
  let gen =
    Gen.(pair
           (list_size (int_bound 40) (pair (int_bound (n - 1)) (int_bound (n - 1))))
           (list_size (int_bound 6) (int_bound (n - 1))))
  in
  Test.make ~name:"gc preserves order among live events" ~count:150 gen
    (fun (edges, releases) ->
      let g = Graph.create () in
      let ids = Array.init n (fun _ -> Graph.create_event g) in
      List.iter
        (fun (u, v) ->
          if u <> v && not (Graph.reachable g ids.(v) ids.(u)) then
            if not (Graph.reachable g ids.(u) ids.(v)) then
              Graph.add_edge g ids.(u) ids.(v))
        edges;
      (* record orders among all pairs *)
      let before = Array.make_matrix n n false in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          before.(u).(v) <- Graph.reachable g ids.(u) ids.(v)
        done
      done;
      let released = Array.make n false in
      List.iter
        (fun i ->
          if not released.(i) then begin
            released.(i) <- true;
            ignore (Graph.release_ref g ids.(i))
          end)
        releases;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if (not released.(u)) && not released.(v) then
            if before.(u).(v)
               && not (Graph.reachable g ids.(u) ids.(v))
            then ok := false
        done
      done;
      !ok)

(* Chain-cap saturation: with a cap of 1 only the first chain gets label
   coverage; queries into off-chain events must fall back to the BFS (a
   label miss), and every answer must stay correct either way. *)
let test_chain_cap_saturation () =
  let g = Graph.create ~max_chains:1 () in
  let a = Graph.create_event g in
  let b = Graph.create_event g in
  let c = Graph.create_event g in
  let d = Graph.create_event g in
  Graph.add_edge g a b;
  (* c->d needs a second chain: the cap leaves d unassigned *)
  Graph.add_edge g c d;
  Alcotest.(check int) "one chain" 1 (Graph.chain_count g);
  Alcotest.(check (option bool)) "on-chain pair answered" (Some true)
    (Graph.label_reachable g a b);
  Alcotest.(check (option bool)) "off-chain pair undecided" None
    (Graph.label_reachable g c d);
  let misses0 = Graph.label_miss_count g in
  Alcotest.(check bool) "fallback still correct" true (Graph.reachable g c d);
  Alcotest.(check bool) "fallback counted as miss" true
    (Graph.label_miss_count g > misses0);
  Alcotest.(check bool) "negative fallback correct" false
    (Graph.reachable g d c);
  (* a disabled index never claims anything and keeps no chains *)
  let g0 = Graph.create ~max_chains:0 () in
  let x = Graph.create_event g0 in
  let y = Graph.create_event g0 in
  Graph.add_edge g0 x y;
  Alcotest.(check int) "no chains" 0 (Graph.chain_count g0);
  Alcotest.(check bool) "bfs answers" true (Graph.reachable g0 x y);
  Alcotest.(check int) "no label hits" 0 (Graph.label_hit_count g0)

let suites =
  [ ( "graph",
      [
        Alcotest.test_case "create/refcount" `Quick test_create_refcount;
        Alcotest.test_case "query relations" `Quick test_query_relations;
        Alcotest.test_case "stale query" `Quick test_stale_query;
        Alcotest.test_case "slot reuse generation" `Quick test_slot_reuse_generation;
        Alcotest.test_case "gc pinning (fig 4)" `Quick test_gc_pinning_figure4;
        Alcotest.test_case "gc waits for predecessor" `Quick test_gc_waits_for_predecessor;
        Alcotest.test_case "gc chain" `Quick test_gc_chain_linear;
        Alcotest.test_case "gc diamond" `Quick test_gc_diamond_partial;
        Alcotest.test_case "edge rollback" `Quick test_rollback;
        Alcotest.test_case "growth" `Quick test_growth;
        Alcotest.test_case "introspection" `Quick test_introspection;
        Alcotest.test_case "visited accounting" `Quick test_visited_accounting;
        Alcotest.test_case "chain cap saturation" `Quick test_chain_cap_saturation;
        QCheck_alcotest.to_alcotest prop_rank_index_differential;
        QCheck_alcotest.to_alcotest prop_label_saturated_differential;
        QCheck_alcotest.to_alcotest prop_label_disabled_differential;
        QCheck_alcotest.to_alcotest prop_matches_closure;
        QCheck_alcotest.to_alcotest prop_gc_preserves_order;
      ] );
  ]
