(* Loopback integration test: a durable 3-replica chain over real TCP on
   127.0.0.1 ephemeral ports, all runtimes sharing one event loop in this
   process.  A closed-loop workload creates and orders events while the
   middle replica's entire TCP runtime is shut down mid-run; the chain
   reconfigures around it, the replica restarts on the same port from its
   own (in-memory) WAL + snapshots, rejoins at the tail, and every
   acknowledged order must still be queryable — no acked write is lost. *)

open Kronos
module Chain = Kronos_replication.Chain
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Storage = Kronos_durability.Storage
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Tcp = Kronos_transport.Tcp_transport

(* Fast reconnects keep the post-restart redial latency well under the
   coordinator's failure timeout. *)
let tcp_config =
  { Tcp.default_config with backoff_min = 0.02; backoff_max = 0.2 }

let chain_tcp loop =
  Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
    ~decode:Kronos_replication.Chain_codec.decode ~config:tcp_config ()

let coordinator_addr = 1000

let test_kill_and_rejoin () =
  let loop = Event_loop.create () in
  let wait ~what ?(secs = 30.) pred =
    if not (Event_loop.run_until loop ~deadline:(Event_loop.now loop +. secs) pred)
    then Alcotest.fail ("timed out waiting for " ^ what)
  in

  (* Per-replica in-memory storage, stable across the restart. *)
  let dirs = Hashtbl.create 4 in
  let dir_of a =
    match Hashtbl.find_opt dirs a with
    | Some d -> d
    | None ->
      let d = Storage.Memory.create () in
      Hashtbl.replace dirs a d;
      d
  in
  let durability =
    Server.durability ~snapshot_every:16
      ~storage_of:(fun a -> Storage.Memory.storage (dir_of a))
      ()
  in

  (* One TCP runtime per daemon-equivalent, each with its own listener. *)
  let t1 = chain_tcp loop and t2 = chain_tcp loop and t3 = chain_tcp loop in
  let p1 = Tcp.listen t1 ~port:0 () in
  let p2 = Tcp.listen t2 ~port:0 () in
  let p3 = Tcp.listen t3 ~port:0 () in
  (* Full static mesh, as kronosd requires: the coordinator shares replica
     1's endpoint. *)
  let endpoints = [ (coordinator_addr, p1); (1, p1); (2, p2); (3, p3) ] in
  let add_mesh t =
    List.iter (fun (a, p) -> Tcp.add_peer t a ~host:"127.0.0.1" ~port:p) endpoints
  in
  List.iter add_mesh [ t1; t2; t3 ];

  let r1, e1 = Server.start_node ~net:(Tcp.transport t1) ~addr:1 ~durability () in
  let coord =
    Chain.Coordinator.create ~net:(Tcp.transport t1) ~addr:coordinator_addr
      ~chain:[ 1 ] ~ping_interval:0.1 ~failure_timeout:0.5 ()
  in
  let chain_length () = List.length (Chain.Coordinator.config coord).Chain.chain in

  (* Replicas join over the wire, retrying exactly as kronosd does. *)
  let join net replica =
    let timer = ref None in
    let joined () =
      List.mem (Chain.Replica.addr replica)
        (Chain.Replica.config replica).Chain.chain
    in
    Chain.Replica.announce_join replica ~coordinator:coordinator_addr;
    timer :=
      Some
        (Transport.every net ~period:0.1 (fun () ->
             if joined () then Option.iter Transport.cancel !timer
             else
               Chain.Replica.announce_join replica ~coordinator:coordinator_addr))
  in
  let _r2, _e2 = Server.start_node ~net:(Tcp.transport t2) ~addr:2 ~durability () in
  join (Tcp.transport t2) _r2;
  wait ~what:"replica 2 to join" (fun () -> chain_length () = 2);
  let r3, e3 = Server.start_node ~net:(Tcp.transport t3) ~addr:3 ~durability () in
  join (Tcp.transport t3) r3;
  wait ~what:"replica 3 to join" (fun () -> chain_length () = 3);

  (* The client runtime has no listener: replies reach it through learned
     return routes on the connections it dials. *)
  let ct = chain_tcp loop in
  add_mesh ct;
  Tcp.connect_peers ct;
  let client =
    Client.create ~net:(Tcp.transport ct) ~addr:9001
      ~coordinator:coordinator_addr ~request_timeout:0.25 ()
  in

  (* Closed-loop workload: create events, chain each after the previous
     one.  No per-call timeout, so the proxy retries through the failure
     and an acknowledgement is a promise.  After 12 acked orders, kill the
     middle replica's whole runtime (listener + connections). *)
  let total = 40 in
  let acked = ref [] in
  let finished = ref false in
  let killed = ref false in
  let rec step prev n =
    if n = 0 then finished := true
    else
      Client.create_event client (function
        | Error _ -> Alcotest.fail "create_event failed without a deadline"
        | Ok e -> (
          match prev with
          | None -> step (Some e) (n - 1)
          | Some p ->
            Client.assign_order client
              [ Order.must_before p e ]
              (function
                | Error _ -> Alcotest.fail "acyclic assign_order rejected"
                | Ok _ ->
                  acked := (p, e) :: !acked;
                  if (not !killed) && List.length !acked >= 12 then begin
                    killed := true;
                    Tcp.shutdown t2
                  end;
                  step (Some e) (n - 1))))
  in
  step None total;
  wait ~what:"workload to finish over the kill" ~secs:60. (fun () -> !finished);
  Alcotest.(check bool) "replica 2 was killed mid-run" true !killed;
  Alcotest.(check int) "every order acked" (total - 1) (List.length !acked);
  Alcotest.(check int) "chain reconfigured without replica 2" 2 (chain_length ());

  (* Restart: same port (the listener socket is SO_REUSEADDR), same
     storage.  The replica recovers locally, then rejoins at the tail with
     only the missing suffix shipped. *)
  let t2b = chain_tcp loop in
  let (_ : int) = Tcp.listen t2b ~port:p2 () in
  add_mesh t2b;
  let r2b, e2b = Server.start_node ~net:(Tcp.transport t2b) ~addr:2 ~durability () in
  Alcotest.(check bool) "recovered state from local storage" true
    (Chain.Replica.last_applied r2b > 0);
  join (Tcp.transport t2b) r2b;
  wait ~what:"replica 2 to rejoin" (fun () -> chain_length () = 3);
  wait ~what:"replicas to converge" (fun () ->
      Chain.Replica.last_applied r2b = Chain.Replica.last_applied r1
      && Chain.Replica.last_applied r3 = Chain.Replica.last_applied r1);
  Alcotest.(check bool) "restarted engine identical to head" true
    (Engine.stats !e1 = Engine.stats !e2b);
  Alcotest.(check bool) "surviving engine identical to head" true
    (Engine.stats !e1 = Engine.stats !e3);

  (* No lost acknowledged orders: every acked pair is still Before — the
     read goes to the tail, which is now the restarted replica. *)
  let pairs = List.rev !acked in
  let answer = ref None in
  Client.query_order client pairs (fun r -> answer := Some r);
  wait ~what:"query through the restarted tail" (fun () -> !answer <> None);
  (match Option.get !answer with
   | Error _ -> Alcotest.fail "query_order failed"
   | Ok rels ->
     Alcotest.(check int) "every acked pair answered" (List.length pairs)
       (List.length rels);
     List.iteri
       (fun i rel ->
         Alcotest.(check bool)
           (Printf.sprintf "acked order %d survives the kill" i)
           true
           (Order.relation_equal rel Order.Before))
       rels);

  List.iter Tcp.shutdown [ ct; t1; t2b; t3 ]

let suites =
  [ ( "loopback",
      [ Alcotest.test_case "3-replica TCP chain survives replica kill" `Slow
          test_kill_and_rejoin ] );
  ]
