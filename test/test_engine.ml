open Kronos

let relation = Alcotest.testable Order.pp_relation Order.relation_equal
let outcome = Alcotest.testable Order.pp_outcome Order.outcome_equal
let assign_error = Alcotest.testable Order.pp_assign_error Order.assign_error_equal

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" Order.pp_assign_error e

let err = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error e -> e

let before e1 e2 kind = Order.constrain ~kind ~direction:Order.Happens_before e1 e2
let after e1 e2 kind = Order.constrain ~kind ~direction:Order.Happens_after e1 e2

let test_create_and_query () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let rels = ok (Engine.query_order t [ (a, b); (a, a) ]) in
  Alcotest.(check (list relation)) "initial" [ Order.Concurrent; Order.Same ] rels

let test_assign_then_query () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let c = Engine.create_event t in
  let out = ok (Engine.assign_order t [ before a b Order.Must; before b c Order.Must ]) in
  Alcotest.(check (list outcome)) "applied" [ Order.Applied; Order.Applied ] out;
  let rels = ok (Engine.query_order t [ (a, c); (c, a); (a, b) ]) in
  Alcotest.(check (list relation)) "query"
    [ Order.Before; Order.After; Order.Before ] rels

let test_direction_happens_after () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  (* a <- b means b happens before a *)
  let out = ok (Engine.assign_order t [ after a b Order.Must ]) in
  Alcotest.(check (list outcome)) "applied" [ Order.Applied ] out;
  Alcotest.(check (list relation)) "b before a" [ Order.After ]
    (ok (Engine.query_order t [ (a, b) ]))

let test_must_violation_aborts_batch () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let c = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ before a b Order.Must ]));
  let edges_before = Engine.edges t in
  (* Batch: c -> a is fine, b -> a contradicts a -> b.  Whole batch aborts;
     the c -> a edge must be rolled back. *)
  let e = err (Engine.assign_order t
                 [ before c a Order.Must; before b a Order.Must ]) in
  Alcotest.check assign_error "violated at index 1" (Order.Must_violated 1) e;
  Alcotest.(check int) "no side effects" edges_before (Engine.edges t);
  Alcotest.(check (list relation)) "c still concurrent with a"
    [ Order.Concurrent ]
    (ok (Engine.query_order t [ (c, a) ]))

let test_must_self_aborts () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let e = err (Engine.assign_order t
                 [ before a b Order.Must; before b b Order.Must ]) in
  Alcotest.check assign_error "self at 1" (Order.Must_self 1) e;
  Alcotest.(check int) "nothing applied" 0 (Engine.edges t)

let test_prefer_reversal () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ before a b Order.Must ]));
  let out = ok (Engine.assign_order t [ before b a Order.Prefer ]) in
  Alcotest.(check (list outcome)) "reversed" [ Order.Reversed ] out;
  (* the committed order stands *)
  Alcotest.(check (list relation)) "a before b" [ Order.Before ]
    (ok (Engine.query_order t [ (a, b) ]))

let test_prefer_self_is_noop () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let out = ok (Engine.assign_order t [ before a a Order.Prefer ]) in
  Alcotest.(check (list outcome)) "already" [ Order.Already ] out

let test_musts_apply_before_prefers () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  (* The prefer (b -> a) appears first in the batch; if applied naively in
     order it would make the must (a -> b) impossible.  Kronos applies the
     must first, so the batch succeeds and the prefer reverses. *)
  let out = ok (Engine.assign_order t
                  [ before b a Order.Prefer; before a b Order.Must ]) in
  Alcotest.(check (list outcome)) "prefer reversed, must applied"
    [ Order.Reversed; Order.Applied ] out

let test_already_implied_adds_no_edge () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let c = Engine.create_event t in
  ignore (ok (Engine.assign_order t
                [ before a b Order.Must; before b c Order.Must ]));
  let edges = Engine.edges t in
  let out = ok (Engine.assign_order t [ before a c Order.Must ]) in
  Alcotest.(check (list outcome)) "already" [ Order.Already ] out;
  Alcotest.(check int) "no new edge" edges (Engine.edges t);
  let out = ok (Engine.assign_order t [ before a b Order.Prefer ]) in
  Alcotest.(check (list outcome)) "prefer already" [ Order.Already ] out;
  Alcotest.(check int) "still no new edge" edges (Engine.edges t)

let test_unknown_event () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  ignore (Engine.release_ref t a);
  let b = Engine.create_event t in
  (match Engine.query_order t [ (b, a) ] with
   | Error (Order.Unknown_event e) ->
     Alcotest.(check bool) "stale a" true (Event_id.equal e a)
   | Error e -> Alcotest.failf "wrong error %a" Order.pp_assign_error e
   | Ok _ -> Alcotest.fail "expected error");
  (match Engine.assign_order t [ before a b Order.Must ] with
   | Error (Order.Unknown_event e) ->
     Alcotest.(check bool) "stale a" true (Event_id.equal e a)
   | Error e -> Alcotest.failf "wrong error %a" Order.pp_assign_error e
   | Ok _ -> Alcotest.fail "expected error")

let test_acquire_release_api () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  Alcotest.(check bool) "acquire ok" true
    (Result.is_ok (Engine.acquire_ref t a));
  Alcotest.(check (result int assign_error)) "release" (Ok 0)
    (Engine.release_ref t a);
  Alcotest.(check (result int assign_error)) "final release" (Ok 1)
    (Engine.release_ref t a);
  Alcotest.(check bool) "stale acquire" true
    (Result.is_error (Engine.acquire_ref t a))

let test_batch_atomicity_mixed () =
  (* Conditional test-and-set (Section 2.2): musts act as the condition for
     the prefers in the same batch. *)
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  let c = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ before b a Order.Must ]));
  let e = err (Engine.assign_order t
                 [ before a b Order.Must; before a c Order.Prefer ]) in
  Alcotest.check assign_error "condition failed" (Order.Must_violated 0) e;
  (* the prefer must not have been applied *)
  Alcotest.(check (list relation)) "a/c untouched" [ Order.Concurrent ]
    (ok (Engine.query_order t [ (a, c) ]))

let test_stats () =
  let t = Engine.create () in
  let a = Engine.create_event t in
  let b = Engine.create_event t in
  ignore (ok (Engine.assign_order t [ before a b Order.Must ]));
  ignore (ok (Engine.query_order t [ (a, b) ]));
  ignore (ok (Engine.assign_order t [ before b a Order.Prefer ]));
  ignore (Engine.release_ref t b);
  let s = Engine.stats t in
  Alcotest.(check int) "creates" 2 s.Engine.creates;
  Alcotest.(check int) "queries" 1 s.Engine.queries;
  Alcotest.(check int) "assigns" 2 s.Engine.assigns;
  Alcotest.(check int) "reversals" 1 s.Engine.reversals;
  Alcotest.(check bool) "traversals counted" true (s.Engine.traversals > 0);
  Alcotest.(check bool) "memory" true (Engine.memory_bytes t > 0)

(* Monotonicity property: answers of Before/After never change across any
   sequence of further successful operations. *)
let prop_monotonicity =
  let open QCheck2 in
  let n = 10 in
  let gen_op =
    Gen.(frequency
           [ (5, map2 (fun u v -> `Assign (u, v, Order.Must))
                (int_bound (n - 1)) (int_bound (n - 1)));
             (5, map2 (fun u v -> `Assign (u, v, Order.Prefer))
                (int_bound (n - 1)) (int_bound (n - 1)));
             (1, map (fun u -> `Release u) (int_bound (n - 1)));
           ])
  in
  Test.make ~name:"monotonicity: committed orders never change" ~count:200
    Gen.(list_size (int_bound 60) gen_op)
    (fun ops ->
      let t = Engine.create () in
      let ids = Array.init n (fun _ -> Engine.create_event t) in
      let released = Array.make n false in
      (* committed.(u).(v) = true once a query answered "u before v" *)
      let committed = Array.make_matrix n n false in
      let record_queries () =
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if u <> v && (not released.(u)) && not released.(v) then
              match Engine.query_order t [ (ids.(u), ids.(v)) ] with
              | Ok [ Order.Before ] -> committed.(u).(v) <- true
              | Ok _ -> ()
              | Error _ -> ()
          done
        done
      in
      let check_committed () =
        let ok = ref true in
        for u = 0 to n - 1 do
          for v = 0 to n - 1 do
            if committed.(u).(v) && (not released.(u)) && not released.(v)
            then
              match Engine.query_order t [ (ids.(u), ids.(v)) ] with
              | Ok [ Order.Before ] -> ()
              | Ok _ | Error _ -> ok := false
          done
        done;
        !ok
      in
      record_queries ();
      List.for_all
        (fun op ->
          (match op with
           | `Assign (u, v, kind) ->
             if u <> v && (not released.(u)) && not released.(v) then
               ignore (Engine.assign_order t
                         [ Order.constrain ~kind ~direction:Order.Happens_before ids.(u) ids.(v) ])
           | `Release u ->
             if not released.(u) then begin
               released.(u) <- true;
               ignore (Engine.release_ref t ids.(u))
             end);
          let good = check_committed () in
          record_queries ();
          good)
        ops)

(* Coherency property: after arbitrary assign batches, no pair is ordered in
   both directions and the graph has no cycle through any live vertex. *)
let prop_coherency =
  let open QCheck2 in
  let n = 8 in
  let gen_batch =
    Gen.(list_size (int_bound 5)
           (map3 (fun u v k ->
                (u, v, (if k then Order.Must else Order.Prefer)))
              (int_bound (n - 1)) (int_bound (n - 1)) bool))
  in
  Test.make ~name:"coherency: never ordered both ways" ~count:200
    Gen.(list_size (int_bound 20) gen_batch)
    (fun batches ->
      let t = Engine.create () in
      let ids = Array.init n (fun _ -> Engine.create_event t) in
      List.iter
        (fun batch ->
          let reqs =
            List.map
              (fun (u, v, k) -> Order.constrain ~kind:k ~direction:Order.Happens_before ids.(u) ids.(v))
              batch
          in
          ignore (Engine.assign_order t reqs))
        batches;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let fwd = Graph.reachable (Engine.graph t) ids.(u) ids.(v) in
            let bwd = Graph.reachable (Engine.graph t) ids.(v) ids.(u) in
            if fwd && bwd then ok := false
          end
        done
      done;
      !ok)

let suites =
  [ ( "engine",
      [
        Alcotest.test_case "create and query" `Quick test_create_and_query;
        Alcotest.test_case "assign then query" `Quick test_assign_then_query;
        Alcotest.test_case "happens-after direction" `Quick test_direction_happens_after;
        Alcotest.test_case "must violation aborts batch" `Quick test_must_violation_aborts_batch;
        Alcotest.test_case "must self aborts" `Quick test_must_self_aborts;
        Alcotest.test_case "prefer reversal" `Quick test_prefer_reversal;
        Alcotest.test_case "prefer self noop" `Quick test_prefer_self_is_noop;
        Alcotest.test_case "musts before prefers" `Quick test_musts_apply_before_prefers;
        Alcotest.test_case "implied order adds no edge" `Quick test_already_implied_adds_no_edge;
        Alcotest.test_case "unknown event" `Quick test_unknown_event;
        Alcotest.test_case "acquire/release api" `Quick test_acquire_release_api;
        Alcotest.test_case "conditional batch" `Quick test_batch_atomicity_mixed;
        Alcotest.test_case "stats" `Quick test_stats;
        QCheck_alcotest.to_alcotest prop_monotonicity;
        QCheck_alcotest.to_alcotest prop_coherency;
      ] );
  ]
