(* Transport layer tests: chain-message wire codec under arbitrary stream
   re-chunking, the select-based event loop, and the real TCP runtime on
   loopback sockets. *)

open Kronos
open Kronos_wire
module Chain = Kronos_replication.Chain
module Chain_codec = Kronos_replication.Chain_codec
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Tcp = Kronos_transport.Tcp_transport

(* {1 Chain.msg streaming round trips} *)

let sample_entry = (4, 2000, 17, "cmd:payload")

(* One value of every constructor, so the deterministic stream tests cover
   the full message surface. *)
let all_msgs : Chain.msg list =
  [
    Client_write { client = 2000; req_id = 1; cmd = "add:1" };
    Client_read { client = 2001; req_id = 2; cmd = "get" };
    Forward { seq = 3; client = 2000; req_id = 1; cmd = "add:1" };
    Ack { seq = 3 };
    Reply { req_id = 1; resp = "ok" };
    Get_config { client = 2000 };
    Config_is { version = 4; chain = [ 0; 1; 2 ] };
    New_config { config = { version = 5; chain = [ 0; 2 ] }; fresh = None };
    New_config
      { config = { version = 6; chain = [ 0; 2; 9 ] }; fresh = Some (9, 42) };
    Ping;
    Pong { last_applied = 17 };
    Sync_state { entries = [ sample_entry; (5, 2001, 18, "") ] };
    Sync_snapshot { seq = 9; snapshot = "\x00\x01snapbytes"; entries = [ sample_entry ] };
    Join { addr = 9; last_applied = 7 };
  ]

let feed_stream r stream sizes =
  let out = ref [] in
  let pos = ref 0 in
  let sizes = ref sizes in
  while !pos < String.length stream do
    let n =
      match !sizes with
      | [] -> String.length stream - !pos
      | s :: rest ->
        sizes := rest;
        min s (String.length stream - !pos)
    in
    out := !out @ Frame.Reassembler.feed r (String.sub stream !pos n);
    pos := !pos + n
  done;
  !out

(* Every message type, framed back-to-back and delivered one byte at a
   time: the reassembler must hand back exactly the original sequence. *)
let test_stream_one_byte_feeds () =
  let stream =
    String.concat ""
      (List.map (fun m -> Frame.encode (Chain_codec.encode m)) all_msgs)
  in
  let r = Frame.Reassembler.create () in
  let out = ref [] in
  String.iter (fun c -> out := !out @ Frame.Reassembler.feed r (String.make 1 c)) stream;
  let decoded = List.map Chain_codec.decode !out in
  Alcotest.(check bool) "all message types survive 1-byte feeds" true
    (decoded = all_msgs);
  Alcotest.(check int) "nothing left over" 0 (Frame.Reassembler.pending_bytes r)

(* A chunk boundary inside the length prefix itself. *)
let test_stream_split_header () =
  let msg = List.nth all_msgs 2 in
  let framed = Frame.encode (Chain_codec.encode msg) in
  let r = Frame.Reassembler.create () in
  let first = Frame.Reassembler.feed r (String.sub framed 0 2) in
  Alcotest.(check int) "no frame from half a header" 0 (List.length first);
  let rest =
    Frame.Reassembler.feed r (String.sub framed 2 (String.length framed - 2))
  in
  Alcotest.(check bool) "completes across the split" true
    (List.map Chain_codec.decode rest = [ msg ])

let test_oversized_length_prefix_rejected () =
  let r = Frame.Reassembler.create ~max_frame:1024 () in
  let b = Codec.encoder () in
  Codec.put_u32 b 1025;
  (match Frame.Reassembler.feed r (Codec.to_string b) with
   | exception Codec.Decode_error _ -> ()
   | _ -> Alcotest.fail "expected oversized frame rejection");
  (* a length prefix of garbage bytes announces ~4 GiB: also rejected *)
  let r = Frame.Reassembler.create () in
  match Frame.Reassembler.feed r "\xff\xff\xff\xff" with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected corrupt prefix rejection"

let test_corrupt_payload_rejected () =
  match Chain_codec.decode "\x63garbage" with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "expected decode error on bad tag"

let prop_chain_msg_roundtrip_rechunked =
  let open QCheck2 in
  let gen_addr = Gen.int_bound 5000 in
  let gen_str = Gen.string_size (Gen.int_bound 40) in
  let gen_entry =
    Gen.(
      map2
        (fun (seq, client) (req_id, cmd) -> (seq, client, req_id, cmd))
        (pair (int_bound 100_000) gen_addr)
        (pair (int_bound 10_000) gen_str))
  in
  let gen_config =
    Gen.(
      map2
        (fun version chain -> { Chain.version; chain })
        (int_bound 1000)
        (list_size (int_bound 6) gen_addr))
  in
  let gen_msg =
    Gen.(
      frequency
        [
          ( 2,
            map2
              (fun (client, req_id) cmd -> Chain.Client_write { client; req_id; cmd })
              (pair gen_addr (int_bound 10_000))
              gen_str );
          ( 1,
            map2
              (fun (client, req_id) cmd -> Chain.Client_read { client; req_id; cmd })
              (pair gen_addr (int_bound 10_000))
              gen_str );
          ( 2,
            map
              (fun (seq, client, req_id, cmd) ->
                Chain.Forward { seq; client; req_id; cmd })
              gen_entry );
          (1, map (fun seq -> Chain.Ack { seq }) (int_bound 100_000));
          ( 1,
            map2
              (fun req_id resp -> Chain.Reply { req_id; resp })
              (int_bound 10_000) gen_str );
          (1, map (fun client -> Chain.Get_config { client }) gen_addr);
          (1, map (fun c -> Chain.Config_is c) gen_config);
          ( 2,
            map2
              (fun config fresh -> Chain.New_config { config; fresh })
              gen_config
              (option (pair gen_addr (int_bound 100_000))) );
          (1, return Chain.Ping);
          (1, map (fun n -> Chain.Pong { last_applied = n }) (int_bound 100_000));
          ( 1,
            map
              (fun entries -> Chain.Sync_state { entries })
              (list_size (int_bound 8) gen_entry) );
          ( 1,
            map2
              (fun (seq, snapshot) entries ->
                Chain.Sync_snapshot { seq; snapshot; entries })
              (pair (int_bound 100_000) gen_str)
              (list_size (int_bound 8) gen_entry) );
          ( 1,
            map2
              (fun addr last_applied -> Chain.Join { addr; last_applied })
              gen_addr (int_bound 100_000) );
        ])
  in
  Test.make ~name:"chain msg roundtrip through re-chunked streams" ~count:300
    Gen.(
      pair
        (list_size (int_bound 8) gen_msg)
        (list_size (int_bound 40) (int_range 1 7)))
    (fun (msgs, sizes) ->
      let stream =
        String.concat ""
          (List.map (fun m -> Frame.encode (Chain_codec.encode m)) msgs)
      in
      let out = feed_stream (Frame.Reassembler.create ()) stream sizes in
      List.map Chain_codec.decode out = msgs)

(* The service-level request/response codec must survive the same streaming
   treatment (kronosd carries them as chain command/response payloads). *)
let prop_service_payload_roundtrip_rechunked =
  let open QCheck2 in
  let gen_event =
    Gen.(
      map2
        (fun s g -> Event_id.make ~slot:s ~gen:g)
        (int_bound 10_000) (int_bound 50))
  in
  let gen_req =
    Gen.(
      frequency
        [
          (1, return Message.Create_event);
          (1, map (fun e -> Message.Acquire_ref e) gen_event);
          (1, map (fun e -> Message.Release_ref e) gen_event);
          ( 2,
            map
              (fun ps -> Message.Query_order ps)
              (list_size (int_bound 10) (pair gen_event gen_event)) );
        ])
  in
  Test.make ~name:"service requests roundtrip through re-chunked streams"
    ~count:200
    Gen.(
      pair
        (list_size (int_bound 6) gen_req)
        (list_size (int_bound 30) (int_range 1 5)))
    (fun (reqs, sizes) ->
      let stream =
        String.concat ""
          (List.map (fun r -> Frame.encode (Message.encode_request r)) reqs)
      in
      let out = feed_stream (Frame.Reassembler.create ()) stream sizes in
      List.length out = List.length reqs
      && List.for_all2
           (fun bytes req -> Message.request_equal (Message.decode_request bytes) req)
           out reqs)

(* {1 Event loop} *)

let test_event_loop_timer_order () =
  let loop = Event_loop.create () in
  let fired = ref [] in
  ignore (Event_loop.schedule loop ~delay:0.03 (fun () -> fired := "c" :: !fired));
  ignore (Event_loop.schedule loop ~delay:0.01 (fun () -> fired := "a" :: !fired));
  ignore (Event_loop.schedule loop ~delay:0.02 (fun () -> fired := "b" :: !fired));
  Event_loop.run_for loop 0.08;
  Alcotest.(check (list string)) "deadline order" [ "a"; "b"; "c" ]
    (List.rev !fired)

let test_event_loop_every_cancel () =
  let loop = Event_loop.create () in
  let count = ref 0 in
  let timer = ref None in
  timer :=
    Some
      (Event_loop.every loop ~period:0.005 (fun () ->
           incr count;
           if !count = 3 then Option.iter Event_loop.cancel !timer));
  Event_loop.run_for loop 0.05;
  Alcotest.(check int) "stopped after self-cancel" 3 !count;
  Alcotest.(check int) "no timers left" 0 (Event_loop.pending_timers loop)

let test_event_loop_fd_readiness () =
  let loop = Event_loop.create () in
  let r, w = Unix.pipe () in
  Unix.set_nonblock r;
  let got = ref "" in
  Event_loop.watch_read loop r (fun () ->
      let buf = Bytes.create 16 in
      let n = Unix.read r buf 0 16 in
      got := Bytes.sub_string buf 0 n);
  ignore (Unix.write_substring w "ping" 0 4);
  let ok = Event_loop.run_until loop ~deadline:(Event_loop.now loop +. 1.0)
      (fun () -> !got <> "") in
  Event_loop.forget loop r;
  Unix.close r;
  Unix.close w;
  Alcotest.(check bool) "read callback ran" true ok;
  Alcotest.(check string) "bytes seen" "ping" !got

(* {1 TCP runtime on loopback sockets} *)

let string_tcp loop = Tcp.create ~loop ~encode:Fun.id ~decode:Fun.id ()

(* Client/server round trip where the client has no listener: the reply
   must follow the learned return route of the client's own connection. *)
let test_tcp_round_trip_learned_route () =
  let loop = Event_loop.create () in
  let server = string_tcp loop in
  let client = string_tcp loop in
  let port = Tcp.listen server ~port:0 () in
  Tcp.add_peer client 1 ~host:"127.0.0.1" ~port;
  let snet = Tcp.transport server and cnet = Tcp.transport client in
  let got = ref None and reply = ref None in
  Transport.register snet 1 (fun ~src m ->
      got := Some (src, m);
      Transport.send snet ~src:1 ~dst:src ("re:" ^ m));
  Transport.register cnet 2 (fun ~src m -> reply := Some (src, m));
  Transport.send cnet ~src:2 ~dst:1 "hello";
  let ok =
    Event_loop.run_until loop ~deadline:(Event_loop.now loop +. 5.0) (fun () ->
        !reply <> None)
  in
  Alcotest.(check bool) "completed" true ok;
  Alcotest.(check (option (pair int string))) "server got" (Some (2, "hello")) !got;
  Alcotest.(check (option (pair int string))) "client got reply" (Some (1, "re:hello"))
    !reply;
  Tcp.shutdown client;
  Tcp.shutdown server

(* A payload far larger than the 64 KiB read buffer exercises partial reads
   (and usually short writes) on both sides. *)
let test_tcp_large_message () =
  let loop = Event_loop.create () in
  let server = string_tcp loop in
  let client = string_tcp loop in
  let port = Tcp.listen server ~port:0 () in
  Tcp.add_peer client 1 ~host:"127.0.0.1" ~port;
  let snet = Tcp.transport server and cnet = Tcp.transport client in
  let big = String.init 300_000 (fun i -> Char.chr (i land 0xff)) in
  let got = ref None in
  Transport.register snet 1 (fun ~src:_ m -> got := Some m);
  Transport.register cnet 2 (fun ~src:_ _ -> ());
  Transport.send cnet ~src:2 ~dst:1 big;
  let ok =
    Event_loop.run_until loop ~deadline:(Event_loop.now loop +. 5.0) (fun () ->
        !got <> None)
  in
  Alcotest.(check bool) "completed" true ok;
  Alcotest.(check bool) "payload intact" true (!got = Some big);
  Tcp.shutdown client;
  Tcp.shutdown server

let test_tcp_local_short_circuit_and_unroutable () =
  let loop = Event_loop.create () in
  let t = string_tcp loop in
  let net = Tcp.transport t in
  let got = ref None in
  Transport.register net 5 (fun ~src m -> got := Some (src, m));
  Transport.send net ~src:9 ~dst:5 "local";
  Alcotest.(check (option (pair int string))) "not delivered re-entrantly" None !got;
  Event_loop.run_for loop 0.02;
  Alcotest.(check (option (pair int string))) "delivered via loop" (Some (9, "local"))
    !got;
  let dropped_before = Tcp.dropped t in
  Transport.send net ~src:9 ~dst:404 "nowhere";
  Alcotest.(check int) "unroutable send counted as dropped" (dropped_before + 1)
    (Tcp.dropped t);
  Tcp.shutdown t

let suites =
  [ ( "transport",
      [
        Alcotest.test_case "stream 1-byte feeds, all msg types" `Quick
          test_stream_one_byte_feeds;
        Alcotest.test_case "stream split header" `Quick test_stream_split_header;
        Alcotest.test_case "oversized length prefix" `Quick
          test_oversized_length_prefix_rejected;
        Alcotest.test_case "corrupt payload" `Quick test_corrupt_payload_rejected;
        QCheck_alcotest.to_alcotest prop_chain_msg_roundtrip_rechunked;
        QCheck_alcotest.to_alcotest prop_service_payload_roundtrip_rechunked;
        Alcotest.test_case "event loop timer order" `Quick
          test_event_loop_timer_order;
        Alcotest.test_case "event loop every/cancel" `Quick
          test_event_loop_every_cancel;
        Alcotest.test_case "event loop fd readiness" `Quick
          test_event_loop_fd_readiness;
        Alcotest.test_case "tcp round trip via learned route" `Quick
          test_tcp_round_trip_learned_route;
        Alcotest.test_case "tcp large message" `Quick test_tcp_large_message;
        Alcotest.test_case "tcp local short-circuit" `Quick
          test_tcp_local_short_circuit_and_unroutable;
      ] );
  ]
