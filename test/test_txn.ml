open Kronos
open Kronos_simnet
open Kronos_kvstore
open Kronos_txn
module Bank = Kronos_workload.Bank

(* A full transactional deployment: sharded KV store plus (for Kronos mode)
   a replicated Kronos service, all on one simulation. *)
type env = {
  sim : Sim.t;
  shards : Shard.t array;
  shard_addrs : Net.addr array;
  kv_net : Kv_msg.msg Net.t;
  chain_net : Kronos_replication.Chain.msg Kronos_transport.Transport.t option;
  cluster : Kronos_service.Server.cluster option;
  ids : Executor.id_source;
}

let make_env ?(seed = 11L) ?(shards = 4) ~kronos () =
  let sim = Sim.create ~seed () in
  let kv_net = Net.create sim in
  let shard_addrs = Array.init shards (fun i -> i) in
  let shard_servers = Array.map (fun a -> Shard.create ~net:kv_net ~addr:a ()) shard_addrs in
  let chain_net, cluster =
    if kronos then begin
      let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
      let cluster =
        Kronos_service.Server.deploy ~net ~coordinator:1000
          ~replicas:[ 0; 1; 2 ] ~ping_interval:0.2 ~failure_timeout:2.0 ()
      in
      (Some net, Some cluster)
    end
    else (None, None)
  in
  { sim; shards = shard_servers; shard_addrs; kv_net; chain_net; cluster;
    ids = Executor.id_source () }

let make_executor env ~mode ~client_addr =
  let kv = Kv_client.create ~net:env.kv_net ~addr:client_addr in
  let kronos =
    match mode with
    | Executor.Kronos_ordered ->
      let net = Option.get env.chain_net in
      Some
        (Kronos_service.Client.create ~net ~addr:(5000 + client_addr)
           ~coordinator:1000 ~request_timeout:1.0 ())
    | Executor.Put_and_pray | Executor.Locking -> None
  in
  Executor.create ~mode ~sim:env.sim ~kv ~shards:env.shard_addrs ~ids:env.ids
    ?kronos ()

let seed_accounts env ~accounts ~balance =
  let client = Kv_client.create ~net:env.kv_net ~addr:900 in
  for i = 0 to accounts - 1 do
    let key = Bank.account_key i in
    let shard =
      env.shard_addrs.(Router.shard_of ~shards:(Array.length env.shard_addrs) key)
    in
    Kv_client.request client ~shard
      (Kv_msg.Put { key; value = string_of_int balance })
      (fun _ -> ())
  done;
  Sim.run ~until:(Sim.now env.sim +. 5.0) env.sim

let balances_total env ~accounts =
  let total = ref 0 in
  for i = 0 to accounts - 1 do
    let key = Bank.account_key i in
    Array.iter
      (fun shard ->
        match Shard.peek shard key with
        | Some v -> total := !total + int_of_string v
        | None -> ())
      env.shards
  done;
  !total

(* Drive [clients] concurrent closed-loop clients, each running transfers
   back to back until [ops] transactions have been issued in total. *)
let run_bank env ~mode ~clients ~ops ~accounts =
  let bank =
    Bank.create ~rng:(Rng.split (Sim.rng env.sim)) ~accounts ~skew:0.9 ()
  in
  let executors =
    Array.init clients (fun i -> make_executor env ~mode ~client_addr:(100 + i))
  in
  let issued = ref 0 in
  let completed = ref 0 in
  let rec client_loop exec =
    if !issued < ops then begin
      incr issued;
      Executor.transfer exec (Bank.next_transfer bank) (fun _ ->
          incr completed;
          client_loop exec)
    end
  in
  Array.iter client_loop executors;
  Sim.run ~until:(Sim.now env.sim +. 600.0) env.sim;
  Alcotest.(check int) "all transactions finished" ops !completed;
  executors

let test_put_and_pray_loses_money () =
  (* With many contended concurrent read-modify-writes and no coordination,
     lost updates are essentially guaranteed; the deterministic seed makes
     the outcome reproducible. *)
  let env = make_env ~kronos:false () in
  let accounts = 4 in
  seed_accounts env ~accounts ~balance:1000;
  ignore (run_bank env ~mode:Executor.Put_and_pray ~clients:16 ~ops:400 ~accounts);
  let total = balances_total env ~accounts in
  Alcotest.(check bool)
    (Printf.sprintf "conservation violated (total = %d)" total)
    true (total <> 4000)

let test_locking_conserves_money () =
  let env = make_env ~kronos:false () in
  let accounts = 8 in
  seed_accounts env ~accounts ~balance:1000;
  let executors =
    run_bank env ~mode:Executor.Locking ~clients:16 ~ops:300 ~accounts
  in
  Alcotest.(check int) "total conserved" 8000 (balances_total env ~accounts);
  Array.iter
    (fun e -> Alcotest.(check int) "no aborts" 0 (Executor.aborted e))
    executors;
  Alcotest.(check int) "no stuck locks" 0
    (Array.fold_left (fun acc s -> acc + Shard.lock_queue_length s) 0 env.shards)

let test_kronos_conserves_and_serializes () =
  let env = make_env ~kronos:true () in
  let accounts = 8 in
  seed_accounts env ~accounts ~balance:1000;
  let executors =
    run_bank env ~mode:Executor.Kronos_ordered ~clients:16 ~ops:300 ~accounts
  in
  Alcotest.(check int) "total conserved" 8000 (balances_total env ~accounts);
  let retries = Array.fold_left (fun acc e -> acc + Executor.retries e) 0 executors in
  ignore retries;
  (* serializability: read chains and Kronos order per key *)
  let log = List.concat_map Executor.txn_log (Array.to_list executors) in
  let tail_engine =
    Option.get (Kronos_service.Server.engine_of (Option.get env.cluster) 2)
  in
  let query e1 e2 =
    match Engine.query_order tail_engine [ (e1, e2) ] with
    | Ok [ r ] -> r
    | Ok _ | Error _ -> Alcotest.fail "query on tail engine failed"
  in
  (match
     Checker.serializable ~shards:(Array.to_list env.shards) ~log ~query ()
   with
   | Ok () -> ()
   | Error reason -> Alcotest.fail reason);
  (* every committed event is live in the service (refs still held) *)
  Alcotest.(check bool) "events recorded" true (List.length log = 300)

let test_checker_detects_violation () =
  (* Construct a fake log where a transaction claims to have read a value
     other than its predecessor's write. *)
  let env = make_env ~kronos:false () in
  let e1 = Event_id.make ~slot:1 ~gen:0 in
  let e2 = Event_id.make ~slot:2 ~gen:0 in
  (* apply two committed writes through the pin protocol *)
  let client = Kv_client.create ~net:env.kv_net ~addr:900 in
  let key = "k" in
  let shard_id = Router.shard_of ~shards:(Array.length env.shard_addrs) key in
  let call body =
    let result = ref None in
    Kv_client.request client ~shard:env.shard_addrs.(shard_id) body (fun r ->
        result := Some r);
    Sim.run ~until:(Sim.now env.sim +. 5.0) env.sim;
    Option.get !result
  in
  ignore (call (Kv_msg.Prepare { txn = 1; event = e1; reads = [ key ]; writes = [ key ] }));
  ignore (call (Kv_msg.Decide { txn = 1; commit = true; writes = [ (key, "10") ] }));
  ignore (call (Kv_msg.Prepare { txn = 2; event = e2; reads = [ key ]; writes = [ key ] }));
  ignore (call (Kv_msg.Decide { txn = 2; commit = true; writes = [ (key, "20") ] }));
  let good_log =
    [ (e1, [ (key, None) ], [ (key, "10") ]);
      (e2, [ (key, Some "10") ], [ (key, "20") ]) ]
  in
  (match Checker.serializable ~shards:(Array.to_list env.shards) ~log:good_log () with
   | Ok () -> ()
   | Error reason -> Alcotest.failf "good log rejected: %s" reason);
  let bad_log =
    [ (e1, [ (key, None) ], [ (key, "10") ]);
      (e2, [ (key, Some "999") ], [ (key, "20") ]) ]
  in
  match Checker.serializable ~shards:(Array.to_list env.shards) ~log:bad_log () with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "checker must flag stale read"

let test_conservation_checker () =
  let env = make_env ~kronos:false () in
  seed_accounts env ~accounts:3 ~balance:100;
  let keys = List.init 3 Bank.account_key in
  (match
     Checker.conservation ~shards:(Array.to_list env.shards) ~keys
       ~expected_total:300
   with
   | Ok () -> ()
   | Error reason -> Alcotest.fail reason);
  match
    Checker.conservation ~shards:(Array.to_list env.shards) ~keys
      ~expected_total:999
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "wrong total must be flagged"

let suites =
  [ ( "txn",
      [
        Alcotest.test_case "put-and-pray loses money" `Quick test_put_and_pray_loses_money;
        Alcotest.test_case "locking conserves money" `Quick test_locking_conserves_money;
        Alcotest.test_case "kronos conserves and serializes" `Quick
          test_kronos_conserves_and_serializes;
        Alcotest.test_case "checker detects violations" `Quick test_checker_detects_violation;
        Alcotest.test_case "conservation checker" `Quick test_conservation_checker;
      ] );
  ]
