let () =
  Alcotest.run "kronos"
    (Test_sparse_set.suites
     @ Test_vec.suites
     @ Test_event_id.suites
     @ Test_graph.suites
     @ Test_engine.suites
     @ Test_order_cache.suites
     @ Test_invariants.suites
     @ Test_wire.suites
     @ Test_metrics.suites
     @ Test_simnet.suites
     @ Test_service_queue.suites
     @ Test_replication.suites
     @ Test_service.suites
     @ Test_kvstore.suites
     @ Test_txn.suites
     @ Test_workload.suites
     @ Test_vclock.suites
     @ Test_graphstore.suites
     @ Test_catocs.suites
     @ Test_timeline.suites
     @ Test_durability.suites
     @ Test_fault_injection.suites
     @ Test_transport.suites
     @ Test_loopback.suites
     @ Test_stats.suites
     @ Test_federation.suites)
