(* Unit and property tests for the observability primitives: instrument
   behaviour, the no-op gate, histogram bucket geometry and quantile
   extraction, registry idempotence and the text exposition. *)

module M = Kronos_metrics

let test_counter_gauge () =
  let c = M.Counter.make () in
  M.Counter.incr c;
  M.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (M.Counter.value c);
  let g = M.Gauge.make () in
  M.Gauge.set g 7;
  M.Gauge.add g (-3);
  Alcotest.(check int) "gauge" 4 (M.Gauge.value g)

let test_noop_gate () =
  let c = M.Counter.make () in
  let g = M.Gauge.make () in
  let h = M.Histogram.make () in
  M.set_enabled false;
  Fun.protect ~finally:(fun () -> M.set_enabled true) (fun () ->
      Alcotest.(check bool) "disabled" false (M.enabled ());
      M.Counter.incr c;
      M.Gauge.set g 9;
      M.Histogram.observe h 0.5;
      Alcotest.(check int) "counter frozen" 0 (M.Counter.value c);
      Alcotest.(check int) "gauge frozen" 0 (M.Gauge.value g);
      Alcotest.(check int) "histogram frozen" 0 (M.Histogram.count h));
  Alcotest.(check bool) "re-enabled" true (M.enabled ());
  M.Counter.incr c;
  Alcotest.(check int) "records again" 1 (M.Counter.value c)

let test_bucket_geometry () =
  (* values in bucket [i] lie in [bucket_upper i / 2, bucket_upper i) *)
  List.iter
    (fun v ->
      let i = M.Histogram.bucket_of v in
      let upper = M.Histogram.bucket_upper i in
      if i > 0 && i < M.Histogram.bucket_count - 1 then begin
        Alcotest.(check bool)
          (Printf.sprintf "%g < upper %g" v upper)
          true (v < upper);
        Alcotest.(check bool)
          (Printf.sprintf "%g >= lower %g" v (upper /. 2.))
          true (v >= upper /. 2.)
      end)
    [ 1e-9; 3e-7; 1e-4; 0.001; 0.004; 0.3; 1.0; 17.0; 3600.0 ];
  (* clamped ends *)
  Alcotest.(check int) "zero -> lowest" 0 (M.Histogram.bucket_of 0.);
  Alcotest.(check int) "negative -> lowest" 0 (M.Histogram.bucket_of (-3.));
  Alcotest.(check int) "tiny -> lowest" 0 (M.Histogram.bucket_of 1e-30);
  Alcotest.(check int) "huge -> highest"
    (M.Histogram.bucket_count - 1)
    (M.Histogram.bucket_of 1e12);
  (* exact powers of two start a new bucket *)
  Alcotest.(check int) "1.0 above 0.5"
    (M.Histogram.bucket_of 0.75 + 1)
    (M.Histogram.bucket_of 1.0)

let test_histogram_quantiles () =
  let h = M.Histogram.make () in
  Alcotest.(check (float 0.)) "empty quantile" 0. (M.Histogram.quantile h 0.5);
  Alcotest.(check (float 0.)) "empty max" 0. (M.Histogram.max_value h);
  (* 90 fast observations and 10 slow ones: p50 tracks the fast mode, p99
     the slow one, within the factor-sqrt(2) bucket resolution *)
  for _ = 1 to 90 do
    M.Histogram.observe h 0.001
  done;
  for _ = 1 to 10 do
    M.Histogram.observe h 0.1
  done;
  Alcotest.(check int) "count" 100 (M.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" (90. *. 0.001 +. 10. *. 0.1)
    (M.Histogram.sum h);
  Alcotest.(check (float 1e-12)) "max exact" 0.1 (M.Histogram.max_value h);
  let p50 = M.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 in fast bucket" true (p50 >= 0.0005 && p50 < 0.002);
  let p99 = M.Histogram.quantile h 0.99 in
  Alcotest.(check bool) "p99 in slow bucket" true (p99 >= 0.05 && p99 <= 0.1);
  Alcotest.(check (float 1e-12)) "q>=1 is exact max" 0.1
    (M.Histogram.quantile h 1.0);
  (* a single observation: every quantile collapses to (about) it *)
  let h1 = M.Histogram.make () in
  M.Histogram.observe h1 0.02;
  let p = M.Histogram.quantile h1 0.5 in
  Alcotest.(check bool) "single obs" true (p >= 0.01 && p <= 0.02)

let test_registry_idempotent () =
  let s = M.scope "testmetrics" in
  let c1 = M.counter s "hits_total" in
  M.Counter.incr c1;
  let c2 = M.counter s "hits_total" in
  Alcotest.(check int) "same instrument" 1 (M.Counter.value c2);
  (* distinct labels are distinct series *)
  let l1 = M.counter s ~labels:[ ("op", "a") ] "labeled_total" in
  let l2 = M.counter s ~labels:[ ("op", "b") ] "labeled_total" in
  M.Counter.incr l1;
  Alcotest.(check int) "label isolation" 0 (M.Counter.value l2);
  (* re-registering under another kind is a programming error *)
  match M.gauge s "hits_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected kind mismatch to raise"

let test_samples_and_render () =
  let s = M.scope "testrender" in
  let c = M.counter s "ops_total" in
  M.Counter.add c 3;
  let h = M.histogram s ~labels:[ ("op", "q") ] "lat_seconds" in
  M.Histogram.observe h 0.25;
  let samples = M.samples () in
  let v name = List.assoc name samples in
  Alcotest.(check (float 0.)) "counter sample" 3. (v "kronos_testrender_ops_total");
  Alcotest.(check (float 0.)) "hist count" 1.
    (v "kronos_testrender_lat_seconds_count{op=\"q\"}");
  Alcotest.(check (float 1e-12)) "hist max" 0.25
    (v "kronos_testrender_lat_seconds_max{op=\"q\"}");
  Alcotest.(check bool) "quantile series present" true
    (List.mem_assoc "kronos_testrender_lat_seconds{op=\"q\",quantile=\"0.5\"}" samples);
  (* names come out sorted *)
  let names = List.map fst samples in
  Alcotest.(check bool) "sorted" true (List.sort compare names = names);
  let page = M.render () in
  let has needle =
    let n = String.length needle and len = String.length page in
    let rec at i =
      i + n <= len && (String.sub page i n = needle || at (i + 1))
    in
    at 0
  in
  Alcotest.(check bool) "TYPE counter" true
    (has "# TYPE kronos_testrender_ops_total counter");
  Alcotest.(check bool) "TYPE summary" true
    (has "# TYPE kronos_testrender_lat_seconds summary");
  Alcotest.(check bool) "counter line" true (has "kronos_testrender_ops_total 3");
  M.reset ();
  Alcotest.(check int) "reset zeroes" 0 (M.Counter.value c);
  Alcotest.(check int) "reset zeroes histograms" 0 (M.Histogram.count h)

let prop_bucket_invariant =
  let open QCheck2 in
  Test.make ~name:"histogram bucket geometry" ~count:500
    Gen.(float_range 1e-10 1e5)
    (fun v ->
      let i = M.Histogram.bucket_of v in
      i >= 0
      && i < M.Histogram.bucket_count
      && (i = 0 || v >= M.Histogram.bucket_upper i /. 2.)
      && (i = M.Histogram.bucket_count - 1 || v < M.Histogram.bucket_upper i))

let prop_quantile_bounds =
  let open QCheck2 in
  Test.make ~name:"quantiles bounded by max and monotone" ~count:200
    Gen.(list_size (int_range 1 50) (float_range 1e-7 100.))
    (fun vs ->
      let h = M.Histogram.make () in
      List.iter (M.Histogram.observe h) vs;
      let qs = List.map (M.Histogram.quantile h) [ 0.1; 0.5; 0.9; 0.99; 1.0 ] in
      List.for_all (fun q -> q <= M.Histogram.max_value h && q >= 0.) qs
      && List.sort compare qs = qs
      && M.Histogram.quantile h 1.0 = M.Histogram.max_value h)

let suites =
  [ ( "metrics",
      [
        Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
        Alcotest.test_case "no-op gate" `Quick test_noop_gate;
        Alcotest.test_case "bucket geometry" `Quick test_bucket_geometry;
        Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
        Alcotest.test_case "registry idempotent" `Quick test_registry_idempotent;
        Alcotest.test_case "samples and render" `Quick test_samples_and_render;
        QCheck_alcotest.to_alcotest prop_bucket_invariant;
        QCheck_alcotest.to_alcotest prop_quantile_bounds;
      ] );
  ]
