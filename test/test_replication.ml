open Kronos_simnet
open Kronos_replication
module Sim_transport = Kronos_transport.Sim_transport

(* Proxy callbacks now yield results; these tests never set deadlines, so a
   timeout error is a test failure. *)
let ok = function
  | Ok r -> r
  | Error `Timeout -> Alcotest.fail "unexpected proxy timeout"

(* Test state machine: an integer register with deterministic commands.
   "add:<n>" adds n and returns the new value; "get" returns the value. *)
let register_sm () =
  let value = ref 0 in
  fun cmd ->
    match String.split_on_char ':' cmd with
    | [ "add"; n ] ->
      value := !value + int_of_string n;
      string_of_int !value
    | [ "get" ] -> string_of_int !value
    | _ -> "error"

type cluster = {
  sim : Sim.t;
  net : Chain.msg Kronos_transport.Transport.t;
  replicas : Chain.Replica.t array;
  coordinator : Chain.Coordinator.t;
}

let coordinator_addr = 1000

let make_cluster ?(n = 3) ?(seed = 7L) () =
  let sim = Sim.create ~seed () in
  let net = Sim_transport.of_net (Net.create sim) in
  let chain = List.init n (fun i -> i) in
  let config = { Chain.version = 0; chain = [] } in
  let replicas =
    Array.init n (fun i ->
        Chain.Replica.create ~net ~addr:i ~apply:(register_sm ()) ~config ())
  in
  let coordinator =
    Chain.Coordinator.create ~net ~addr:coordinator_addr ~chain
      ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  { sim; net; replicas; coordinator }

let make_proxy ?(addr = 2000) cluster =
  Proxy.create ~net:cluster.net ~addr ~coordinator:coordinator_addr
    ~request_timeout:0.4 ()

let test_basic_write_read () =
  let c = make_cluster () in
  let proxy = make_proxy c in
  let results = ref [] in
  Proxy.write proxy "add:5" (fun r -> results := ("w1", ok r) :: !results);
  Proxy.write proxy "add:7" (fun r -> results := ("w2", ok r) :: !results);
  Sim.run ~until:2.0 c.sim;
  Proxy.read proxy "get" (fun r -> results := ("r", ok r) :: !results);
  Sim.run ~until:4.0 c.sim;
  let find k = List.assoc k !results in
  Alcotest.(check string) "first write" "5" (find "w1");
  Alcotest.(check string) "second write" "12" (find "w2");
  Alcotest.(check string) "tail read" "12" (find "r");
  Alcotest.(check int) "no outstanding" 0 (Proxy.outstanding proxy)

let test_all_replicas_converge () =
  let c = make_cluster ~n:4 () in
  let proxy = make_proxy c in
  for i = 1 to 10 do
    Proxy.write proxy (Printf.sprintf "add:%d" i) ignore
  done;
  Sim.run ~until:5.0 c.sim;
  Array.iter
    (fun r ->
      Alcotest.(check int) "log length" 10 (Chain.Replica.log_length r);
      Alcotest.(check int) "applied" 10 (Chain.Replica.last_applied r))
    c.replicas;
  (* all pending entries acknowledged *)
  Array.iter
    (fun r -> Alcotest.(check int) "no pending" 0 (Chain.Replica.pending_count r))
    c.replicas

let test_read_any_replica () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:3" ignore;
  Sim.run ~until:2.0 c.sim;
  let answers = ref [] in
  Proxy.read proxy ~target:(Proxy.Nth 0) "get" (fun r -> answers := ok r :: !answers);
  Proxy.read proxy ~target:(Proxy.Nth 1) "get" (fun r -> answers := ok r :: !answers);
  Proxy.read proxy ~target:Proxy.Tail "get" (fun r -> answers := ok r :: !answers);
  Sim.run ~until:4.0 c.sim;
  Alcotest.(check (list string)) "replicas agree" [ "3"; "3"; "3" ] !answers

let test_middle_failure_recovery () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:1" ignore;
  Sim.run ~until:1.0 c.sim;
  (* kill the middle replica *)
  Chain.Replica.crash c.replicas.(1);
  Sim.run ~until:3.0 c.sim;
  (* coordinator must have removed it *)
  let cfg = Chain.Coordinator.config c.coordinator in
  Alcotest.(check (list int)) "chain shrank" [ 0; 2 ] cfg.Chain.chain;
  (* writes keep working *)
  let result = ref None in
  Proxy.write proxy "add:10" (fun r -> result := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "write after failure" (Some "11") !result;
  Alcotest.(check int) "survivor tail applied" 2
    (Chain.Replica.last_applied c.replicas.(2))

let test_head_failure_recovery () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:1" ignore;
  Sim.run ~until:1.0 c.sim;
  Chain.Replica.crash c.replicas.(0);
  Sim.run ~until:3.0 c.sim;
  let cfg = Chain.Coordinator.config c.coordinator in
  Alcotest.(check (list int)) "new head" [ 1; 2 ] cfg.Chain.chain;
  let result = ref None in
  Proxy.write proxy "add:20" (fun r -> result := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "write served by new head" (Some "21") !result

let test_tail_failure_recovery () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:1" ignore;
  Sim.run ~until:1.0 c.sim;
  Chain.Replica.crash c.replicas.(2);
  (* a write racing with the failure must still complete (via retry) *)
  let result = ref None in
  Proxy.write proxy "add:2" (fun r -> result := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  let cfg = Chain.Coordinator.config c.coordinator in
  Alcotest.(check (list int)) "tail removed" [ 0; 1 ] cfg.Chain.chain;
  Alcotest.(check (option string)) "write completed" (Some "3") !result;
  Alcotest.(check string) "new tail reads" "3"
    (let answer = ref "" in
     Proxy.read proxy "get" (fun r -> answer := ok r);
     Sim.run ~until:8.0 c.sim;
     !answer)

let test_join_fresh_replica () =
  let c = make_cluster ~n:2 () in
  let proxy = make_proxy c in
  for i = 1 to 5 do
    Proxy.write proxy (Printf.sprintf "add:%d" i) ignore
  done;
  Sim.run ~until:2.0 c.sim;
  (* bring in a fresh replica; it must receive the full history *)
  let fresh =
    Chain.Replica.create ~net:c.net ~addr:9 ~apply:(register_sm ())
      ~config:{ Chain.version = 0; chain = [] } ()
  in
  Chain.Coordinator.join c.coordinator fresh;
  Sim.run ~until:4.0 c.sim;
  Alcotest.(check int) "history transferred" 5 (Chain.Replica.last_applied fresh);
  (* new writes flow through the extended chain and the fresh tail replies *)
  let result = ref None in
  Proxy.write proxy "add:100" (fun r -> result := Some (ok r));
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "write via new tail" (Some "115") !result;
  Alcotest.(check int) "fresh tail applied" 6 (Chain.Replica.last_applied fresh);
  (* reads from the fresh tail see everything *)
  let answer = ref "" in
  Proxy.read proxy "get" (fun r -> answer := ok r);
  Sim.run ~until:8.0 c.sim;
  Alcotest.(check string) "read from fresh tail" "115" !answer

let test_exactly_once_writes () =
  (* Lossy links force retransmissions; dedup must keep each write applied
     exactly once. *)
  let sim = Sim.create ~seed:21L () in
  let net =
    Sim_transport.of_net
      (Net.create ~latency:{ Net.base = 1e-3; jitter = 1e-3; drop = 0.15 } sim)
  in
  let chain = [ 0; 1; 2 ] in
  let config = { Chain.version = 0; chain = [] } in
  let replicas =
    Array.init 3 (fun i ->
        Chain.Replica.create ~net ~addr:i ~apply:(register_sm ()) ~config ())
  in
  ignore
    (Chain.Coordinator.create ~net ~addr:coordinator_addr ~chain
       ~ping_interval:0.1 ~failure_timeout:5.0 ());
  let proxy =
    Proxy.create ~net ~addr:2000 ~coordinator:coordinator_addr
      ~request_timeout:0.25 ()
  in
  let completed = ref 0 in
  for _ = 1 to 20 do
    Proxy.write proxy "add:1" (fun _ -> incr completed)
  done;
  Sim.run ~until:60.0 sim;
  Alcotest.(check int) "all writes acknowledged" 20 !completed;
  Alcotest.(check bool) "retries happened" true (Proxy.retries proxy > 0);
  (* exactly-once: the register holds exactly 20 at every replica *)
  let answer = ref "" in
  Proxy.read proxy ~target:Proxy.Tail "get" (fun r -> answer := ok r);
  Sim.run ~until:70.0 sim;
  Alcotest.(check string) "exactly once" "20" !answer;
  Array.iter
    (fun r -> Alcotest.(check int) "log" 20 (Chain.Replica.last_applied r))
    replicas

let test_deterministic_runs () =
  let run () =
    let c = make_cluster ~seed:33L () in
    let proxy = make_proxy c in
    let log = ref [] in
    for i = 1 to 8 do
      Proxy.write proxy (Printf.sprintf "add:%d" i) (fun r ->
          log := (Sim.now c.sim, ok r) :: !log)
    done;
    Sim.run ~until:3.0 c.sim;
    List.rev !log
  in
  Alcotest.(check bool) "identical" true (run () = run ())

let suites =
  [ ( "replication",
      [
        Alcotest.test_case "basic write/read" `Quick test_basic_write_read;
        Alcotest.test_case "replicas converge" `Quick test_all_replicas_converge;
        Alcotest.test_case "read any replica" `Quick test_read_any_replica;
        Alcotest.test_case "middle failure" `Quick test_middle_failure_recovery;
        Alcotest.test_case "head failure" `Quick test_head_failure_recovery;
        Alcotest.test_case "tail failure" `Quick test_tail_failure_recovery;
        Alcotest.test_case "join fresh replica" `Quick test_join_fresh_replica;
        Alcotest.test_case "exactly-once under loss" `Quick test_exactly_once_writes;
        Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
      ] );
  ]
