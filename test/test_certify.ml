(* Verifiable causality (DESIGN.md §13): the SHA-256 primitive, the
   commitment chains the graph maintains, prover/verifier roundtrips over
   random DAGs, the tamper-injection suite (flipped digests, truncated and
   spliced paths, reordered suffixes — all rejected), snapshot v3 and the
   v1/v2 upgrade differential, the verified read end-to-end on the simnet
   service and over real loopback TCP, and audit pinning against a
   byzantine replica that rewrote history. *)

open Kronos
module Certificate = Kronos_certify.Certificate
module Prover = Kronos_certify.Prover
module Verifier = Kronos_certify.Verifier
module Audit = Kronos_certify.Audit

let relation = Alcotest.testable Order.pp_relation Order.relation_equal

let ok_assign = function
  | Ok outs -> outs
  | Error e -> Alcotest.failf "assign failed: %a" Order.pp_assign_error e

let must engine a b = ignore (ok_assign (Engine.assign_order engine [ Order.must_before a b ]))

let rel engine a b =
  match Engine.query_order engine [ (a, b) ] with
  | Ok [ r ] -> r
  | Ok _ | Error _ -> Alcotest.fail "query failed"

let commit engine e =
  match Engine.commitment engine e with
  | Some c -> c
  | None -> Alcotest.fail "commitment missing"

(* ---------- sha256 ---------- *)

let test_nist_vectors () =
  let check_hex msg input expected =
    Alcotest.(check string) msg expected (Sha256.hex (Sha256.digest_string input))
  in
  check_hex "empty" ""
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
  check_hex "abc" "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
  check_hex "two blocks" "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
  (* one million 'a's, the long NIST vector *)
  check_hex "million a" (String.make 1_000_000 'a')
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"

let test_compress_pair_args () =
  let d = Sha256.digest_string "x" in
  let expect_invalid msg f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (msg ^ ": bad argument accepted")
  in
  expect_invalid "short left" (fun () -> Sha256.compress_pair "short" d);
  expect_invalid "short right" (fun () -> Sha256.compress_pair d "short")

(* ---------- commitment chains ---------- *)

let test_chain_maintenance () =
  let engine = Engine.create () in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  Alcotest.(check string) "identity digest before any edge"
    (Chain_digest.to_hex (Chain_digest.init b))
    (Chain_digest.to_hex (commit engine b));
  let g = Engine.graph engine in
  let folds0 = Graph.digest_fold_count g in
  must engine a b;
  Alcotest.(check int) "2 compressions per edge" (folds0 + 2)
    (Graph.digest_fold_count g);
  (* the head is exactly the documented fold *)
  let expected =
    Chain_digest.fold_link (Chain_digest.init b)
      (Chain_digest.link_partner a (Chain_digest.init a))
  in
  Alcotest.(check string) "fold matches construction"
    (Chain_digest.to_hex expected)
    (Chain_digest.to_hex (commit engine b));
  (* the predecessor's commitment is untouched by its out-edge *)
  Alcotest.(check string) "out-edges don't move the predecessor"
    (Chain_digest.to_hex (Chain_digest.init a))
    (Chain_digest.to_hex (commit engine a));
  Alcotest.(check (option int)) "chain length" (Some 1) (Graph.chain_length g b);
  match Graph.chain_link g b 0 with
  | None -> Alcotest.fail "missing link"
  | Some l ->
    Alcotest.(check bool) "link names the predecessor" true
      (Event_id.equal l.Graph.l_pred a)

let test_rollback_restores_chain () =
  let engine = Engine.create () in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  must engine a b;
  let before = commit engine b in
  (* an aborted batch must roll its partial folds back *)
  let c = Engine.create_event engine in
  (match
     Engine.assign_order engine
       [ Order.must_before b c; Order.must_before c a ]
   with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "cyclic batch must abort");
  Alcotest.(check string) "aborted batch leaves commitments untouched"
    (Chain_digest.to_hex before)
    (Chain_digest.to_hex (commit engine b));
  Alcotest.(check string) "partial fold into c rolled back"
    (Chain_digest.to_hex (Chain_digest.init c))
    (Chain_digest.to_hex (commit engine c))

let test_digests_off () =
  let engine =
    Engine.create ~config:{ Engine.default_config with digests = false } ()
  in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  must engine a b;
  Alcotest.(check bool) "no commitment" true (Engine.commitment engine b = None);
  Alcotest.(check relation) "ordering still works" Order.Before (rel engine a b);
  Alcotest.(check bool) "no proofs" true
    (Prover.prove (Engine.current_view engine) ~source:a ~target:b = None)

(* ---------- prove / verify ---------- *)

let prove_exn engine a b =
  match Prover.prove (Engine.current_view engine) ~source:a ~target:b with
  | Some c -> c
  | None -> Alcotest.fail "expected a certificate"

let verify_ok msg cert =
  match Verifier.verify cert with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: %s" msg m

let test_direct_edge () =
  let engine = Engine.create () in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  must engine a b;
  let cert = prove_exn engine a b in
  verify_ok "direct edge" cert;
  Alcotest.(check int) "one edge" 1 (Certificate.path_length cert);
  (* the proof ties to the live commitments *)
  (match
     Verifier.verify_against cert ~source_commit:(commit engine a)
       ~target_commit:(commit engine b)
   with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  (match
     Verifier.verify_against cert ~source_commit:(commit engine b)
       ~target_commit:(commit engine b)
   with
   | Ok () -> Alcotest.fail "wrong pinned commitment accepted"
   | Error _ -> ())

let test_chain_path () =
  let engine = Engine.create () in
  let n = 24 in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  for i = 0 to n - 2 do
    must engine ids.(i) ids.(i + 1)
  done;
  let cert = prove_exn engine ids.(0) ids.(n - 1) in
  verify_ok "chain" cert;
  Alcotest.(check int) "full path" (n - 1) (Certificate.path_length cert);
  (* every claimed path edge is a real committed edge *)
  List.iter
    (fun (p, e) ->
      Alcotest.(check relation) "path edge holds" Order.Before (rel engine p e))
    (Certificate.path_edges cert)

(* Only commitment-closed paths are provable: a predecessor linked into the
   path *after* the downstream fold recorded its head is out of reach.
   [x -> a] is admitted after [a -> b], so [a]'s head inside [b]'s link
   predates the [x] link — the relation holds but has no certificate. *)
let test_unprovable_is_none () =
  let engine = Engine.create () in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  must engine a b;
  let x = Engine.create_event engine in
  must engine x a;
  Alcotest.(check relation) "relation holds" Order.Before (rel engine x b);
  Alcotest.(check bool) "but is unprovable" true
    (Prover.prove (Engine.current_view engine) ~source:x ~target:b = None);
  (* while the closed path is still provable *)
  verify_ok "closed path stays provable" (prove_exn engine a b)

let prop_random_dag_roundtrip =
  let open QCheck2 in
  Test.make ~name:"certify: random DAG proofs verify" ~count:40
    Gen.(pair (int_range 0 10_000) (int_range 8 24))
    (fun (seed, n) ->
      let rng = Kronos_simnet.Rng.create ~seed:(Int64.of_int seed) in
      let engine = Engine.create () in
      let ids = Array.init n (fun _ -> Engine.create_event engine) in
      let m = 3 * n in
      for _ = 1 to m do
        let i = Kronos_simnet.Rng.int rng (n - 1) in
        let j = i + 1 + Kronos_simnet.Rng.int rng (n - i - 1) in
        ignore (Engine.assign_order engine [ Order.must_before ids.(i) ids.(j) ])
      done;
      let proofs = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j && rel engine ids.(i) ids.(j) = Order.Before then begin
            match Prover.prove (Engine.current_view engine) ~source:ids.(i) ~target:ids.(j) with
            | None -> () (* true but not commitment-closed: allowed *)
            | Some cert ->
              incr proofs;
              (match Verifier.verify cert with
               | Ok () -> ()
               | Error m -> Test.fail_reportf "proof rejected: %s" m);
              (match
                 Verifier.verify_against cert
                   ~source_commit:(commit engine ids.(i))
                   ~target_commit:(commit engine ids.(j))
               with
               | Ok () -> ()
               | Error m -> Test.fail_reportf "live commitments rejected: %s" m);
              List.iter
                (fun (p, e) ->
                  if rel engine p e <> Order.Before then
                    Test.fail_report "certificate claims a non-edge")
                (Certificate.path_edges cert)
          end
        done
      done;
      (* edges admitted in topological batches are closed: some must prove *)
      !proofs > 0)

(* ---------- tamper injection ---------- *)

(* A diamond on top of a chain gives certificates with non-empty suffixes
   (several predecessors folded into one event after the path link). *)
let tamper_fixture () =
  let engine = Engine.create () in
  let a = Engine.create_event engine in
  let b = Engine.create_event engine in
  let c = Engine.create_event engine in
  let d = Engine.create_event engine in
  let t = Engine.create_event engine in
  must engine a b;
  must engine b t;
  must engine c t;
  must engine d t;
  let cert = prove_exn engine a t in
  verify_ok "fixture" cert;
  (engine, a, t, cert)

let flip_byte s i =
  let b = Bytes.of_string s in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 1));
  Bytes.to_string b

let expect_reject msg cert =
  match Verifier.verify cert with
  | Ok () -> Alcotest.fail (msg ^ ": tampered certificate accepted")
  | Error _ -> ()

let test_tamper_flipped_digest () =
  let _, _, _, cert = tamper_fixture () in
  expect_reject "target commit"
    { cert with Certificate.target_commit = flip_byte cert.Certificate.target_commit 3 };
  expect_reject "source commit"
    { cert with Certificate.source_commit = flip_byte cert.Certificate.source_commit 3 };
  let steps =
    List.mapi
      (fun i (s : Certificate.step) ->
        if i = 0 then { s with Certificate.pre = flip_byte s.Certificate.pre 0 } else s)
      cert.Certificate.steps
  in
  expect_reject "step pre" { cert with Certificate.steps = steps };
  let steps =
    List.mapi
      (fun i (s : Certificate.step) ->
        if i = 0 then
          { s with Certificate.pred_head = flip_byte s.Certificate.pred_head 7 }
        else s)
      cert.Certificate.steps
  in
  expect_reject "step pred_head" { cert with Certificate.steps = steps }

let test_tamper_truncated_path () =
  let _, _, _, cert = tamper_fixture () in
  (match cert.Certificate.steps with
   | [] -> Alcotest.fail "fixture has no steps"
   | _ :: tl -> expect_reject "dropped first step" { cert with Certificate.steps = tl });
  expect_reject "no steps at all" { cert with Certificate.steps = [] };
  match List.rev cert.Certificate.steps with
  | [] -> assert false
  | _ :: rtl ->
    expect_reject "dropped last step"
      { cert with Certificate.steps = List.rev rtl }

(* Splicing: graft a step or an endpoint commitment from a *different*
   (individually valid) certificate. *)
let test_tamper_spliced_proof () =
  let engine, a, t, cert = tamper_fixture () in
  let x = Engine.create_event engine in
  let y = Engine.create_event engine in
  must engine x y;
  let other = prove_exn engine x y in
  verify_ok "other" other;
  expect_reject "foreign steps" { cert with Certificate.steps = other.Certificate.steps };
  expect_reject "foreign source commitment"
    { cert with Certificate.source_commit = other.Certificate.source_commit };
  expect_reject "foreign step grafted on"
    { cert with Certificate.steps = other.Certificate.steps @ cert.Certificate.steps };
  (* endpoints renamed to foreign events, commitments kept *)
  expect_reject "renamed source" { cert with Certificate.source = x };
  ignore a;
  ignore t

let test_tamper_reordered_suffix () =
  let _, _, _, cert = tamper_fixture () in
  let reordered = ref false in
  let steps =
    List.map
      (fun (s : Certificate.step) ->
        match s.Certificate.suffix with
        | p :: q :: rest ->
          reordered := true;
          { s with Certificate.suffix = q :: p :: rest }
        | _ -> s)
      cert.Certificate.steps
  in
  if not !reordered then Alcotest.fail "fixture produced no multi-link suffix";
  expect_reject "reordered suffix" { cert with Certificate.steps = steps }

let test_codec_roundtrip () =
  let _, _, _, cert = tamper_fixture () in
  (match Certificate.decode (Certificate.encode cert) with
   | Ok c ->
     Alcotest.(check bool) "roundtrip equal" true (c = cert);
     verify_ok "decoded" c
   | Error m -> Alcotest.fail m);
  (match Certificate.decode "garbage" with
   | Ok _ -> Alcotest.fail "garbage decoded"
   | Error _ -> ());
  let enc = Certificate.encode cert in
  (match Certificate.decode (String.sub enc 0 (String.length enc - 3)) with
   | Ok _ -> Alcotest.fail "truncated bytes decoded"
   | Error _ -> ());
  match Certificate.decode (enc ^ "x") with
  | Ok _ -> Alcotest.fail "trailing bytes accepted"
  | Error _ -> ()

(* ---------- snapshots ---------- *)

module Snapshot = Kronos_durability.Snapshot

(* A deterministic engine with slot reuse: random must-edges over n events,
   then a few releases so restores exercise collected slots. *)
let build_engine ~seed ~n =
  let rng = Kronos_simnet.Rng.create ~seed:(Int64.of_int seed) in
  let engine = Engine.create () in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  for _ = 1 to 3 * n do
    let i = Kronos_simnet.Rng.int rng (n - 1) in
    let j = i + 1 + Kronos_simnet.Rng.int rng (n - i - 1) in
    ignore (Engine.assign_order engine [ Order.must_before ids.(i) ids.(j) ])
  done;
  Array.iteri
    (fun i e -> if i mod 7 = 3 then ignore (Engine.release_ref engine e))
    ids;
  (engine, ids)

let live_commitments engine ids =
  Array.to_list ids
  |> List.filter_map (fun e ->
         Option.map (fun c -> (e, c)) (Engine.commitment engine e))

let check_same_commitments msg expected candidate =
  List.iter
    (fun (e, c) ->
      match Engine.commitment candidate e with
      | Some c' when Chain_digest.equal c c' -> ()
      | Some _ -> Alcotest.failf "%s: commitment diverges" msg
      | None -> Alcotest.failf "%s: commitment lost" msg)
    expected

let test_snapshot_v3_roundtrip () =
  let engine, ids = build_engine ~seed:5 ~n:24 in
  let data = Snapshot.encode ~seq:9 (Engine.to_snapshot engine) in
  let seq, snap = Snapshot.decode data in
  Alcotest.(check int) "seq" 9 seq;
  Alcotest.(check bool) "v3 carries links" true
    (snap.Engine.snap_graph.Graph.snap_links <> None);
  let restored = Engine.of_snapshot snap in
  (* exact chains restored: every live commitment is bit-identical *)
  check_same_commitments "v3 roundtrip" (live_commitments engine ids) restored;
  (* and proofs generated on the restored engine still verify (released
     events are gone on both sides: prove only over the live ones) *)
  let g = Engine.current_view restored in
  let live = List.map fst (live_commitments restored ids) in
  let proved = ref 0 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if (not (Event_id.equal a b)) && rel restored a b = Order.Before then
            match Prover.prove g ~source:a ~target:b with
            | Some cert ->
              incr proved;
              verify_ok "restored proof" cert
            | None -> ())
        live)
    live;
  Alcotest.(check bool) "restored engine proves" true (!proved > 0)

(* Re-encode a v3 snapshot as the byte-exact v1 and v2 formats (the same
   construction test_durability uses for v1). *)
let downgrade_bytes ~version:v (s : Engine.snapshot) =
  let module Codec = Kronos_wire.Codec in
  let module Crc32 = Kronos_durability.Crc32 in
  let g = s.Engine.snap_graph in
  let e = Codec.encoder () in
  let put_arr a =
    Codec.put_u32 e (Array.length a);
    Array.iter (fun x -> Codec.put_u32 e x) a
  in
  Codec.put_i64 e 7L;
  Codec.put_u32 e g.Graph.snap_next_slot;
  Codec.put_u32 e (Array.length g.Graph.snap_refcount);
  Array.iter (fun rc -> Codec.put_u32 e (rc + 1)) g.Graph.snap_refcount;
  put_arr g.Graph.snap_gen;
  Codec.put_u32 e (Array.length g.Graph.snap_succ);
  Array.iter put_arr g.Graph.snap_succ;
  put_arr g.Graph.snap_free;
  Codec.put_i64 e (Int64.of_int g.Graph.snap_traversals);
  Codec.put_i64 e (Int64.of_int g.Graph.snap_visited_total);
  if v >= 2 then begin
    match g.Graph.snap_rank with
    | Some ranks ->
      Codec.put_bool e true;
      Codec.put_u32 e (Array.length ranks);
      Array.iter (fun r -> Codec.put_i64 e (Int64.of_int r)) ranks;
      Codec.put_i64 e (Int64.of_int g.Graph.snap_next_rank)
    | None -> Codec.put_bool e false
  end;
  List.iter
    (fun x -> Codec.put_i64 e (Int64.of_int x))
    [
      s.Engine.snap_creates; s.Engine.snap_queries; s.Engine.snap_assigns;
      s.Engine.snap_aborted_batches; s.Engine.snap_reversals;
      s.Engine.snap_collected;
    ];
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + 10) in
  Buffer.add_string b "KSNP";
  Buffer.add_uint16_be b v;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

let prop_upgrade_chain =
  let open QCheck2 in
  Test.make ~name:"certify: v1/v2 snapshots upgrade to identical chains"
    ~count:25
    Gen.(int_range 0 10_000)
    (fun seed ->
      let engine, ids = build_engine ~seed ~n:20 in
      let snap = Engine.to_snapshot engine in
      let restore v =
        let _, decoded = Snapshot.decode (downgrade_bytes ~version:v snap) in
        if v >= 2 && decoded.Engine.snap_graph.Graph.snap_rank = None then
          Test.fail_report "v2 bytes lost the rank index";
        if decoded.Engine.snap_graph.Graph.snap_links <> None then
          Test.fail_reportf "v%d bytes carry links" v;
        Engine.of_snapshot decoded
      in
      let r1 = restore 1 in
      let r2 = restore 2 in
      (* both rebuilds answer exactly like the original... *)
      Array.iter
        (fun a ->
          Array.iter
            (fun b ->
              if not (Event_id.equal a b) then begin
                let expect = Engine.query_order engine [ (a, b) ] in
                if Engine.query_order r1 [ (a, b) ] <> expect then
                  Test.fail_report "v1 restore diverges on a query";
                if Engine.query_order r2 [ (a, b) ] <> expect then
                  Test.fail_report "v2 restore diverges on a query"
              end)
            ids)
        ids;
      (* ...and rebuild the *same* canonical commitments, even though v1
         re-derives ranks with Kahn's algorithm while v2 restores the
         original index: the canonical fold order is rank-independent. *)
      let c1 = live_commitments r1 ids in
      let c2 = live_commitments r2 ids in
      if List.length c1 = 0 then Test.fail_report "no live commitments";
      if
        not
          (List.for_all2
             (fun (e, a) (e', b) ->
               Event_id.equal e e' && Chain_digest.equal a b)
             c1 c2)
      then Test.fail_report "v1 and v2 upgrades disagree on commitments";
      (* a links-stripped v3 snapshot rebuilds the same canonical chains *)
      let stripped =
        {
          snap with
          Engine.snap_graph =
            { snap.Engine.snap_graph with Graph.snap_links = None };
        }
      in
      let r3 = Engine.of_snapshot stripped in
      if
        not
          (List.for_all
             (fun (e, a) ->
               match Engine.commitment r3 e with
               | Some b -> Chain_digest.equal a b
               | None -> false)
             c1)
      then Test.fail_report "stripped v3 rebuild disagrees";
      true)

(* ---------- verified reads on the simnet service ---------- *)

module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Error = Kronos_service.Error

type env = { sim : Sim.t; client : Client.t }

let make_env ?(seed = 5L) () =
  let sim = Sim.create ~seed () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  ignore
    (Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ]
       ~ping_interval:0.1 ~failure_timeout:0.35 ());
  let client =
    Client.create ~net ~addr:2000 ~coordinator:1000 ~request_timeout:0.4 ()
  in
  { sim; client }

let await env f =
  let result = ref None in
  f (fun x -> result := Some x);
  let deadline = Sim.now env.sim +. 30.0 in
  while !result = None && Sim.now env.sim < deadline && Sim.pending env.sim > 0 do
    ignore (Sim.step env.sim)
  done;
  match !result with
  | Some x -> x
  | None -> Alcotest.fail "service call did not complete"

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" Error.pp e

let test_verified_read_service () =
  let env = make_env () in
  let n = 6 in
  let ids = Array.init n (fun _ -> ok (await env (Client.create_event env.client))) in
  for i = 0 to n - 2 do
    ignore
      (ok
         (await env
            (Client.assign_order env.client
               [ Order.must_before ids.(i) ids.(i + 1) ])))
  done;
  (* drop everything assign_order itself cached so the prefill is visible *)
  Option.iter Order_cache.clear (Client.cache env.client);
  let queries0 = Client.server_queries env.client in
  (match await env (Client.query_verified env.client ids.(0) ids.(n - 1)) with
   | Ok (r, Some cert) ->
     Alcotest.(check relation) "verified before" Order.Before r;
     Alcotest.(check int) "whole chain proven" (n - 1)
       (Certificate.path_length cert)
   | Ok (_, None) -> Alcotest.fail "chain head-to-tail must be provable"
   | Error e -> Alcotest.failf "verified read failed: %a" Error.pp e);
  (* flipped endpoints answer After, also verified *)
  (match await env (Client.query_verified env.client ids.(n - 1) ids.(0)) with
   | Ok (r, Some _) -> Alcotest.(check relation) "verified after" Order.After r
   | Ok (_, None) -> Alcotest.fail "after must be provable too"
   | Error e -> Alcotest.failf "verified read failed: %a" Error.pp e);
  (* the verified path pre-filled the cache: inner pairs answer locally *)
  let stats = Option.get (Client.cache_stats env.client) in
  Alcotest.(check bool) "prefills recorded" true
    (stats.Order_cache.stat_prefills > 0);
  let queries1 = Client.server_queries env.client in
  let r = ok (await env (Client.query_order env.client [ (ids.(1), ids.(4)) ])) in
  Alcotest.(check (list relation)) "inner pair" [ Order.Before ] r;
  Alcotest.(check int) "inner pair came from the cache" queries1
    (Client.server_queries env.client);
  Alcotest.(check bool) "hit counter moved" true
    ((Option.get (Client.cache_stats env.client)).Order_cache.stat_hits
     > stats.Order_cache.stat_hits);
  ignore queries0;
  (* a concurrent pair carries no certificate *)
  let x = ok (await env (Client.create_event env.client)) in
  match await env (Client.query_verified env.client x ids.(0)) with
  | Ok (r, cert) ->
    Alcotest.(check relation) "concurrent" Order.Concurrent r;
    Alcotest.(check bool) "no certificate" true (cert = None)
  | Error e -> Alcotest.failf "concurrent verified read failed: %a" Error.pp e

(* ---------- verified read over real loopback TCP ---------- *)

module Chain = Kronos_replication.Chain
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Tcp = Kronos_transport.Tcp_transport

let test_verified_read_tcp () =
  let loop = Event_loop.create () in
  let chain_tcp () =
    Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
      ~decode:Kronos_replication.Chain_codec.decode ()
  in
  let ts = chain_tcp () in
  let port = Tcp.listen ts ~port:0 () in
  let tc = chain_tcp () in
  List.iter
    (fun t ->
      List.iter
        (fun a -> Tcp.add_peer t a ~host:"127.0.0.1" ~port)
        [ 1000; 1 ])
    [ ts; tc ];
  let _replica = Server.start_node ~net:(Tcp.transport ts) ~addr:1 () in
  let _coord =
    Chain.Coordinator.create ~net:(Tcp.transport ts) ~addr:1000 ~chain:[ 1 ]
      ~ping_interval:0.1 ~failure_timeout:0.5 ()
  in
  let client =
    Client.create ~net:(Tcp.transport tc) ~addr:5000 ~coordinator:1000
      ~request_timeout:0.2 ()
  in
  Tcp.connect_peers tc;
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    if not
         (Event_loop.run_until loop
            ~deadline:(Event_loop.now loop +. 30.)
            (fun () -> !result <> None))
    then Alcotest.fail "TCP call did not complete";
    Option.get !result
  in
  let a = ok (await (Client.create_event client ~timeout:10.)) in
  let b = ok (await (Client.create_event client ~timeout:10.)) in
  let c = ok (await (Client.create_event client ~timeout:10.)) in
  ignore (ok (await (Client.assign_order client ~timeout:10. [ Order.must_before a b ])));
  ignore (ok (await (Client.assign_order client ~timeout:10. [ Order.must_before b c ])));
  (match await (Client.query_verified client ~timeout:10. a c) with
   | Ok (r, Some cert) ->
     Alcotest.(check relation) "verified over TCP" Order.Before r;
     Alcotest.(check int) "two-edge path" 2 (Certificate.path_length cert);
     verify_ok "TCP certificate" cert
   | Ok (_, None) -> Alcotest.fail "TCP verified read returned no certificate"
   | Error e -> Alcotest.failf "TCP verified read failed: %a" Error.pp e);
  Tcp.shutdown tc;
  Tcp.shutdown ts

(* ---------- audit pinning ---------- *)

let test_audit_detects_rewrite () =
  (* honest history: a -> b -> c *)
  let honest = Engine.create () in
  let a = Engine.create_event honest in
  let b = Engine.create_event honest in
  let c = Engine.create_event honest in
  must honest a b;
  must honest b c;
  let audit = Audit.create () in
  (match Audit.check audit (prove_exn honest b c) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "honest certificate rejected");
  (* append-only growth never disturbs existing pins *)
  let d = Engine.create_event honest in
  must honest c d;
  (match Audit.check audit (prove_exn honest a d) with
   | Ok () -> ()
   | Error _ -> Alcotest.fail "append-only growth flagged");
  Alcotest.(check int) "no conflicts yet" 0 (Audit.conflict_count audit);
  (* byzantine rewrite: same event ids, b -> c replaced by a -> c *)
  let byz = Engine.create () in
  let a' = Engine.create_event byz in
  let b' = Engine.create_event byz in
  let c' = Engine.create_event byz in
  Alcotest.(check bool) "same identifiers" true (Event_id.equal c c');
  must byz a' b';
  must byz a' c';
  let forged = prove_exn byz a' c' in
  (* internally consistent on its own... *)
  verify_ok "forged cert verifies standalone" forged;
  (* ...but conflicts with the pinned history *)
  (match Audit.check audit forged with
   | Error (`Conflict conflict) ->
     Alcotest.(check bool) "conflict names the rewritten event" true
       (Event_id.equal conflict.Audit.event c)
   | Ok () -> Alcotest.fail "rewrite not detected"
   | Error (`Invalid m) -> Alcotest.failf "unexpected invalid: %s" m);
  Alcotest.(check int) "conflict counted" 1 (Audit.conflict_count audit);
  (* tampered certificates report `Invalid, not `Conflict *)
  let cert = prove_exn honest c d in
  match
    Audit.check audit
      { cert with Certificate.target_commit = flip_byte cert.Certificate.target_commit 2 }
  with
  | Error (`Conflict _) | Error (`Invalid _) -> ()
  | Ok () -> Alcotest.fail "tampered certificate accepted by audit"

let suites =
  [
    ( "certify.sha256",
      [
        Alcotest.test_case "NIST vectors" `Quick test_nist_vectors;
        Alcotest.test_case "compress_pair arguments" `Quick
          test_compress_pair_args;
      ] );
    ( "certify.chain",
      [
        Alcotest.test_case "incremental maintenance" `Quick
          test_chain_maintenance;
        Alcotest.test_case "abort rolls folds back" `Quick
          test_rollback_restores_chain;
        Alcotest.test_case "digests off" `Quick test_digests_off;
      ] );
    ( "certify.proof",
      [
        Alcotest.test_case "direct edge" `Quick test_direct_edge;
        Alcotest.test_case "chain path" `Quick test_chain_path;
        Alcotest.test_case "unprovable answers None" `Quick
          test_unprovable_is_none;
        QCheck_alcotest.to_alcotest prop_random_dag_roundtrip;
      ] );
    ( "certify.tamper",
      [
        Alcotest.test_case "flipped digest" `Quick test_tamper_flipped_digest;
        Alcotest.test_case "truncated path" `Quick test_tamper_truncated_path;
        Alcotest.test_case "spliced proof" `Quick test_tamper_spliced_proof;
        Alcotest.test_case "reordered suffix" `Quick
          test_tamper_reordered_suffix;
        Alcotest.test_case "wire roundtrip and garbage" `Quick
          test_codec_roundtrip;
      ] );
    ( "certify.snapshot",
      [
        Alcotest.test_case "v3 roundtrip" `Quick test_snapshot_v3_roundtrip;
        QCheck_alcotest.to_alcotest prop_upgrade_chain;
      ] );
    ( "certify.service",
      [
        Alcotest.test_case "verified read + cache prefill" `Quick
          test_verified_read_service;
        Alcotest.test_case "verified read over TCP" `Quick
          test_verified_read_tcp;
      ] );
    ( "certify.audit",
      [ Alcotest.test_case "byzantine rewrite detected" `Quick
          test_audit_detects_rewrite ] );
  ]
