open Kronos_simnet
open Kronos_graphstore

let coordinator_addr = 1000

type kenv = {
  sim : Sim.t;
  gnet : G_msg.msg Net.t;
  shards : Kshard.t array;
  shard_addrs : Net.addr array;
  chain_net : Kronos_replication.Chain.msg Kronos_transport.Transport.t;
  client : Kgraph.t;
}

let make_kenv ?(seed = 9L) ?(shards = 4) () =
  let sim = Sim.create ~seed () in
  let chain_net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  ignore
    (Kronos_service.Server.deploy ~net:chain_net ~coordinator:coordinator_addr
       ~replicas:[ 0; 1; 2 ] ~ping_interval:0.2 ~failure_timeout:5.0 ());
  let gnet = Net.create sim in
  let shard_addrs = Array.init shards (fun i -> i) in
  let shard_servers =
    Array.map
      (fun a ->
        let kronos =
          Kronos_service.Client.create ~net:chain_net ~addr:(3000 + a)
            ~coordinator:coordinator_addr ~request_timeout:1.0 ()
        in
        Kshard.create ~net:gnet ~addr:a ~kronos ())
      shard_addrs
  in
  let kronos =
    Kronos_service.Client.create ~net:chain_net ~addr:4000
      ~coordinator:coordinator_addr ~request_timeout:1.0 ()
  in
  let client = Kgraph.create ~net:gnet ~addr:5000 ~kronos ~shards:shard_addrs () in
  { sim; gnet; shards = shard_servers; shard_addrs; chain_net; client }

let await sim f =
  let result = ref None in
  f (fun x -> result := Some x);
  let deadline = Sim.now sim +. 60.0 in
  while !result = None && Sim.now sim < deadline && Sim.pending sim > 0 do
    ignore (Sim.step sim)
  done;
  match !result with Some x -> x | None -> Alcotest.fail "operation stuck"

let test_kgraph_basic () =
  let env = make_kenv () in
  await env.sim (fun k -> Kgraph.add_vertex env.client 1 (fun () -> k ()));
  await env.sim (fun k -> Kgraph.add_friendship env.client 1 2 (fun () -> k ()));
  await env.sim (fun k -> Kgraph.add_friendship env.client 1 3 (fun () -> k ()));
  let ns = await env.sim (fun k -> Kgraph.neighbors env.client 1 k) in
  Alcotest.(check (list int)) "neighbors" [ 2; 3 ] (List.sort Int.compare ns);
  let ns2 = await env.sim (fun k -> Kgraph.neighbors env.client 2 k) in
  Alcotest.(check (list int)) "symmetric" [ 1 ] ns2

let test_kgraph_remove () =
  let env = make_kenv () in
  await env.sim (fun k -> Kgraph.add_friendship env.client 1 2 (fun () -> k ()));
  await env.sim (fun k -> Kgraph.remove_friendship env.client 1 2 (fun () -> k ()));
  let ns = await env.sim (fun k -> Kgraph.neighbors env.client 1 k) in
  Alcotest.(check (list int)) "edge removed" [] ns

let test_kgraph_recommend () =
  let env = make_kenv () in
  (* 1 knows 2 and 3; 2 and 3 both know 4; 2 knows 5.  Best mutual-friend
     recommendation for 1 is 4 (two mutual friends). *)
  let edges = [ (1, 2); (1, 3); (2, 4); (3, 4); (2, 5) ] in
  List.iter
    (fun (u, v) ->
      await env.sim (fun k -> Kgraph.add_friendship env.client u v (fun () -> k ())))
    edges;
  let r = await env.sim (fun k -> Kgraph.recommend env.client 1 k) in
  Alcotest.(check (option int)) "recommend 4" (Some 4) r;
  (* vertex with no friends: no recommendation *)
  let r = await env.sim (fun k -> Kgraph.recommend env.client 99 k) in
  Alcotest.(check (option int)) "no candidate" None r

(* The paper's Section 3.2 scenario: removing A-B and adding B-C as one
   update must never let a concurrent query observe C reachable from A. *)
let test_kgraph_atomic_switch_isolation () =
  let env = make_kenv ~seed:123L () in
  let a = 1 and b = 2 and c = 3 in
  await env.sim (fun k -> Kgraph.add_friendship env.client a b (fun () -> k ()));
  let violations = ref 0 in
  let completed_queries = ref 0 in
  let queries_target = 60 in
  (* client 1: flip the edge configuration back and forth, each flip one
     atomic event *)
  let rec flip to_c n =
    if n > 0 then begin
      let ops =
        if to_c then
          [ (a, G_msg.Remove_edge b); (b, G_msg.Remove_edge a);
            (b, G_msg.Add_edge c); (c, G_msg.Add_edge b) ]
        else
          [ (b, G_msg.Remove_edge c); (c, G_msg.Remove_edge b);
            (a, G_msg.Add_edge b); (b, G_msg.Add_edge a) ]
      in
      Kgraph.batch_update env.client ops (fun () -> flip (not to_c) (n - 1))
    end
  in
  flip true 30;
  (* client 2: concurrently ask for recommendations for [a]; seeing [c]
     means the query observed A-B and B-C simultaneously *)
  let rec query n =
    if n > 0 then
      Kgraph.recommend env.client a (fun r ->
          incr completed_queries;
          if r = Some c then incr violations;
          query (n - 1))
  in
  query queries_target;
  Sim.run ~until:(Sim.now env.sim +. 120.0) env.sim;
  Alcotest.(check int) "queries completed" queries_target !completed_queries;
  Alcotest.(check int) "no isolation violations" 0 !violations

let test_kgraph_caching_reduces_traffic () =
  let env = make_kenv () in
  for v = 1 to 20 do
    await env.sim (fun k ->
        Kgraph.add_friendship env.client 0 v (fun () -> k ()))
  done;
  (* repeated identical queries should increasingly hit the shard caches *)
  for _ = 1 to 10 do
    ignore (await env.sim (fun k -> Kgraph.neighbors env.client 0 k))
  done;
  let fast = Array.fold_left (fun acc s -> acc + Kshard.fast_path_ops s) 0 env.shards in
  Alcotest.(check bool) "cache fast path used" true (fast > 0)

let test_kgraph_deterministic () =
  let run () =
    let env = make_kenv ~seed:77L () in
    for v = 1 to 10 do
      await env.sim (fun k ->
          Kgraph.add_friendship env.client 0 v (fun () -> k ()))
    done;
    await env.sim (fun k -> Kgraph.neighbors env.client 0 k)
  in
  Alcotest.(check (list int)) "identical runs" (run ()) (run ())

(* {1 Lockgraph} *)

type lenv = {
  sim : Sim.t;
  shards : Lshard.t array;
  client : Lgraph.t;
}

let make_lenv ?(seed = 13L) ?(shards = 4) () =
  let sim = Sim.create ~seed () in
  let gnet = Net.create sim in
  let shard_addrs = Array.init shards (fun i -> i) in
  let shard_servers = Array.map (fun a -> Lshard.create ~net:gnet ~addr:a ()) shard_addrs in
  let ids = Lgraph.ids () in
  let client = Lgraph.create ~net:gnet ~addr:5000 ~shards:shard_addrs ~ids () in
  { sim; shards = shard_servers; client }

let test_lgraph_basic () =
  let env = make_lenv () in
  await env.sim (fun k -> Lgraph.add_friendship env.client 1 2 (fun () -> k ()));
  await env.sim (fun k -> Lgraph.add_friendship env.client 1 3 (fun () -> k ()));
  let ns = await env.sim (fun k -> Lgraph.neighbors env.client 1 k) in
  Alcotest.(check (list int)) "neighbors" [ 2; 3 ] (List.sort Int.compare ns);
  await env.sim (fun k -> Lgraph.remove_friendship env.client 1 2 (fun () -> k ()));
  let ns = await env.sim (fun k -> Lgraph.neighbors env.client 1 k) in
  Alcotest.(check (list int)) "after removal" [ 3 ] ns;
  (* all locks released *)
  Array.iter
    (fun s -> Alcotest.(check int) "no stuck locks" 0 (Lshard.held_locks s))
    env.shards

let test_lgraph_recommend () =
  let env = make_lenv () in
  List.iter
    (fun (u, v) ->
      await env.sim (fun k -> Lgraph.add_friendship env.client u v (fun () -> k ())))
    [ (1, 2); (1, 3); (2, 4); (3, 4); (2, 5) ];
  let r = await env.sim (fun k -> Lgraph.recommend env.client 1 k) in
  Alcotest.(check (option int)) "recommend 4" (Some 4) r

let test_lgraph_write_blocks_read () =
  let env = make_lenv () in
  (* manually hold a write lock on vertex 1, then watch a query wait *)
  let gnet_client = env.client in
  ignore gnet_client;
  let sim = env.sim in
  await sim (fun k -> Lgraph.add_friendship env.client 1 2 (fun () -> k ()));
  (* lock vertex 1 for writing through a raw second client *)
  let ids = Lgraph.ids () in
  ignore ids;
  let done_query = ref false in
  Lgraph.neighbors env.client 1 (fun _ -> done_query := true);
  (* queries complete quickly when uncontended *)
  Sim.run ~until:(Sim.now sim +. 5.0) sim;
  Alcotest.(check bool) "query completed" true !done_query

let test_lgraph_concurrent_updates_and_queries () =
  let env = make_lenv ~seed:31L () in
  (* seed a small graph *)
  List.iter
    (fun (u, v) ->
      await env.sim (fun k -> Lgraph.add_friendship env.client u v (fun () -> k ())))
    [ (1, 2); (2, 3); (3, 4); (4, 5); (5, 1) ];
  let queries_done = ref 0 in
  let updates_done = ref 0 in
  let rec querier n =
    if n > 0 then
      Lgraph.recommend env.client 1 (fun _ ->
          incr queries_done;
          querier (n - 1))
  in
  let rec updater n =
    if n > 0 then
      Lgraph.add_friendship env.client (1 + (n mod 5)) (1 + ((n + 2) mod 5))
        (fun () ->
          incr updates_done;
          updater (n - 1))
  in
  querier 20;
  updater 20;
  Sim.run ~until:(Sim.now env.sim +. 120.0) env.sim;
  Alcotest.(check int) "queries finished" 20 !queries_done;
  Alcotest.(check int) "updates finished" 20 !updates_done;
  Array.iter
    (fun s -> Alcotest.(check int) "locks all released" 0 (Lshard.held_locks s))
    env.shards

let suites =
  [ ( "graphstore",
      [
        Alcotest.test_case "kgraph basic" `Quick test_kgraph_basic;
        Alcotest.test_case "kgraph remove" `Quick test_kgraph_remove;
        Alcotest.test_case "kgraph recommend" `Quick test_kgraph_recommend;
        Alcotest.test_case "kgraph atomic switch isolation" `Quick
          test_kgraph_atomic_switch_isolation;
        Alcotest.test_case "kgraph caching" `Quick test_kgraph_caching_reduces_traffic;
        Alcotest.test_case "kgraph deterministic" `Quick test_kgraph_deterministic;
        Alcotest.test_case "lgraph basic" `Quick test_lgraph_basic;
        Alcotest.test_case "lgraph recommend" `Quick test_lgraph_recommend;
        Alcotest.test_case "lgraph uncontended query" `Quick test_lgraph_write_blocks_read;
        Alcotest.test_case "lgraph concurrent load" `Quick
          test_lgraph_concurrent_updates_and_queries;
      ] );
  ]
