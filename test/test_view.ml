(* Engine.View: frozen views must be indistinguishable from the live
   engine at the same epoch, deeply immutable afterwards, and safe to
   query from many domains at once (DESIGN.md §14).  The [view_race]
   suite is also the target of [make race-smoke]. *)

open Kronos
module View = Engine.View

let relation = Alcotest.testable Order.pp_relation ( = )

(* Pull every pairwise relation out of a view. *)
let all_relations view ids =
  let n = Array.length ids in
  let out = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then
        match View.query view ids.(u) ids.(v) with
        | Ok r -> out := ((u, v), r) :: !out
        | Error _ -> ()
    done
  done;
  List.rev !out

let test_frozen_matches_live () =
  let t = Engine.create () in
  let ids = Array.init 6 (fun _ -> Engine.create_event t) in
  let ok =
    Engine.assign_order t
      [
        Order.must_before ids.(0) ids.(1);
        Order.must_before ids.(1) ids.(2);
        Order.prefer_before ids.(3) ids.(4);
      ]
  in
  (match ok with Ok _ -> () | Error _ -> Alcotest.fail "assign failed");
  let live = Engine.current_view t in
  let frozen = Engine.publish t in
  Alcotest.(check int64) "same epoch" (View.epoch live) (View.epoch frozen);
  Alcotest.(check (list (pair (pair int int) relation)))
    "same relations" (all_relations live ids) (all_relations frozen ids);
  Alcotest.(check int) "live_events" (View.live_events live)
    (View.live_events frozen);
  Alcotest.(check int) "edges" (View.edges live) (View.edges frozen)

let test_frozen_immutable_under_mutation () =
  let t = Engine.create () in
  let ids = Array.init 4 (fun _ -> Engine.create_event t) in
  ignore (Engine.assign_order t [ Order.must_before ids.(0) ids.(1) ]);
  let frozen = Engine.publish t in
  let before = all_relations frozen ids in
  let epoch0 = View.epoch frozen in
  (* Mutate heavily: new edges, new events (capacity growth), GC. *)
  ignore (Engine.assign_order t [ Order.must_before ids.(2) ids.(3) ]);
  for _ = 1 to 100 do
    ignore (Engine.create_event t)
  done;
  ignore (Engine.release_ref t ids.(0));
  Alcotest.(check (list (pair (pair int int) relation)))
    "frozen view unchanged" before (all_relations frozen ids);
  Alcotest.(check int64) "frozen epoch unchanged" epoch0 (View.epoch frozen);
  Alcotest.(check bool) "engine epoch advanced" true
    (Engine.epoch t > epoch0);
  (* The released event is gone from the live engine but still answers in
     the old view. *)
  Alcotest.(check bool) "old view still sees released event" true
    (View.is_live frozen ids.(0));
  Alcotest.(check bool) "new publish drops it" false
    (View.is_live (Engine.publish t) ids.(0))

let test_publish_cached_when_clean () =
  let t = Engine.create () in
  let a = Engine.create_event t and b = Engine.create_event t in
  ignore (Engine.assign_order t [ Order.must_before a b ]);
  let v1 = Engine.publish t in
  let v2 = Engine.publish t in
  Alcotest.(check int64) "no mutation, same epoch" (View.epoch v1)
    (View.epoch v2);
  (* Reads must not dirty the view: query then republish. *)
  ignore (View.query v2 a b);
  ignore (Engine.query_order t [ (a, b) ]);
  Alcotest.(check int64) "queries don't bump the epoch" (View.epoch v1)
    (Engine.epoch t)

let test_prover_on_frozen_view () =
  let t = Engine.create () in
  let ids = Array.init 5 (fun _ -> Engine.create_event t) in
  ignore
    (Engine.assign_order t
       [
         Order.must_before ids.(0) ids.(1);
         Order.must_before ids.(1) ids.(2);
         Order.must_before ids.(2) ids.(3);
       ]);
  let frozen = Engine.publish t in
  (* Mutate after publishing: the proof must still verify — it is built
     from the frozen commitment chains. *)
  ignore (Engine.assign_order t [ Order.must_before ids.(3) ids.(4) ]);
  match
    Kronos_certify.Prover.prove frozen ~source:ids.(0) ~target:ids.(3)
  with
  | None -> Alcotest.fail "no certificate from frozen view"
  | Some cert -> (
      match Kronos_certify.Verifier.verify cert with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("certificate failed: " ^ e))

(* Differential stress: a random op stream applied to one engine; frozen
   checkpoints taken along the way must answer exactly like a
   single-threaded reference at the matching epoch — verified from N
   reader domains running concurrently. *)

type op =
  | Create
  | Assign of int * int * bool  (* u, v, must? *)
  | Release of int

let gen_ops =
  let open QCheck2.Gen in
  let gen_op =
    frequency
      [
        (3, return Create);
        ( 6,
          map3 (fun u v m -> Assign (u, v, m)) (int_bound 30) (int_bound 30)
            bool );
        (2, map (fun u -> Release u) (int_bound 30));
      ]
  in
  list_size (int_range 10 40) gen_op

(* Apply one op; [ids] grows as Create executes. *)
let apply_op t ids op =
  match op with
  | Create -> ids := Engine.create_event t :: !ids
  | Assign (u, v, must) ->
      let a = Array.of_list !ids in
      let n = Array.length a in
      if n >= 2 then
        let x = a.(u mod n) and y = a.(v mod n) in
        let spec =
          if must then Order.must_before x y else Order.prefer_before x y
        in
        ignore (Engine.assign_order t [ spec ])
  | Release u ->
      let a = Array.of_list !ids in
      let n = Array.length a in
      if n > 0 then ignore (Engine.release_ref t a.(u mod n))

let prop_domains_match_reference =
  let open QCheck2 in
  Test.make ~name:"reader domains match single-threaded reference at epoch"
    ~count:1000 gen_ops (fun ops ->
      let t = Engine.create () in
      let ids = ref [ Engine.create_event t; Engine.create_event t ] in
      (* Checkpoints: (frozen view, reference answers at that epoch). *)
      let checkpoints = ref [] in
      List.iteri
        (fun i op ->
          apply_op t ids op;
          if i mod 7 = 0 then begin
            let v = Engine.publish t in
            let sample = Array.of_list !ids in
            let reference = all_relations (Engine.current_view t) sample in
            checkpoints := (v, sample, reference) :: !checkpoints
          end)
        ops;
      let checkpoints = !checkpoints in
      (* Epochs along the stream must be monotonic (newest first here). *)
      let rec mono = function
        | (a, _, _) :: ((b, _, _) :: _ as rest) ->
            View.epoch a >= View.epoch b && mono rest
        | _ -> true
      in
      if not (mono checkpoints) then false
      else begin
        let readers =
          Array.init 2 (fun _ ->
              Domain.spawn (fun () ->
                  List.for_all
                    (fun (v, sample, reference) ->
                      all_relations v sample = reference)
                    checkpoints))
        in
        Array.for_all (fun d -> Domain.join d) readers
      end)

(* Race smoke: one writer domain mutating and publishing as fast as it
   can, several reader domains chasing the latest view through an atomic
   slot.  Stable facts (edges assigned before the first publish) must
   hold in every view ever observed, and the epochs each reader observes
   must never go backwards. *)
let test_publish_race () =
  let t = Engine.create () in
  let ids = Array.init 8 (fun _ -> Engine.create_event t) in
  ignore
    (Engine.assign_order t
       [ Order.must_before ids.(0) ids.(1); Order.must_before ids.(1) ids.(2) ]);
  let slot = Atomic.make (Engine.publish t) in
  let stop = Atomic.make false in
  let readers =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let last = ref 0L in
            let checks = ref 0 in
            let ok = ref true in
            while not (Atomic.get stop) do
              let v = Atomic.get slot in
              let e = View.epoch v in
              if e < !last then ok := false;
              last := e;
              (match View.query v ids.(0) ids.(2) with
              | Ok Order.Before -> ()
              | _ -> ok := false);
              incr checks
            done;
            (!ok, !checks)))
  in
  (* Writer: keep growing and publishing. *)
  let extra = ref [] in
  for i = 1 to 2_000 do
    let e = Engine.create_event t in
    extra := e :: !extra;
    (match !extra with
    | a :: b :: _ -> ignore (Engine.assign_order t [ Order.must_before b a ])
    | _ -> ());
    if i mod 50 = 0 then
      match !extra with e :: _ -> ignore (Engine.release_ref t e) | [] -> ();
    Atomic.set slot (Engine.publish t)
  done;
  Atomic.set stop true;
  Array.iter
    (fun d ->
      let ok, checks = Domain.join d in
      Alcotest.(check bool) "reader saw consistent views" true ok;
      Alcotest.(check bool) "reader made progress" true (checks > 0))
    readers

let suites =
  [
    ( "view",
      [
        Alcotest.test_case "frozen matches live" `Quick test_frozen_matches_live;
        Alcotest.test_case "frozen immutable under mutation" `Quick
          test_frozen_immutable_under_mutation;
        Alcotest.test_case "publish cached when clean" `Quick
          test_publish_cached_when_clean;
        Alcotest.test_case "prover on frozen view" `Quick
          test_prover_on_frozen_view;
        QCheck_alcotest.to_alcotest prop_domains_match_reference;
      ] );
    ("view_race", [ Alcotest.test_case "publish race" `Quick test_publish_race ]);
  ]
