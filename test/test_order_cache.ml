open Kronos

let relation = Alcotest.testable Order.pp_relation Order.relation_equal

let ids n = Array.init n (fun slot -> Event_id.make ~slot ~gen:0)

let test_insert_find () =
  let c = Order_cache.create ~capacity:16 () in
  let e = ids 3 in
  Order_cache.insert c e.(0) e.(1) Order.Before;
  Alcotest.(check (option relation)) "hit" (Some Order.Before)
    (Order_cache.find c e.(0) e.(1));
  Alcotest.(check (option relation)) "flipped" (Some Order.After)
    (Order_cache.find c e.(1) e.(0));
  Alcotest.(check (option relation)) "miss" None
    (Order_cache.find c e.(0) e.(2))

let test_after_normalized () =
  let c = Order_cache.create ~capacity:16 () in
  let e = ids 2 in
  Order_cache.insert c e.(0) e.(1) Order.After;
  Alcotest.(check (option relation)) "stored as before of flipped pair"
    (Some Order.Before)
    (Order_cache.find c e.(1) e.(0))

let test_same_identity () =
  let c = Order_cache.create ~capacity:16 () in
  let e = ids 1 in
  Alcotest.(check (option relation)) "same for free" (Some Order.Same)
    (Order_cache.find c e.(0) e.(0))

let test_concurrent_not_cached () =
  let c = Order_cache.create ~capacity:16 () in
  let e = ids 2 in
  Order_cache.insert c e.(0) e.(1) Order.Concurrent;
  Alcotest.(check (option relation)) "not cached" None
    (Order_cache.find c e.(0) e.(1));
  Alcotest.(check int) "size 0" 0 (Order_cache.size c)

let test_transitive_prefill () =
  let c = Order_cache.create ~capacity:64 () in
  let e = ids 4 in
  (* cache v -> w first; then learn u -> v; u -> w should be inferred *)
  Order_cache.insert c e.(1) e.(2) Order.Before;
  Order_cache.insert c e.(0) e.(1) Order.Before;
  Alcotest.(check (option relation)) "u -> w inferred" (Some Order.Before)
    (Order_cache.find c e.(0) e.(2));
  Alcotest.(check bool) "prefill counted" true (Order_cache.prefills c > 0);
  (* backward direction: t -> u cached, insert u -> x, infer t -> x *)
  Order_cache.insert c e.(1) e.(3) Order.Before;
  Alcotest.(check (option relation)) "t -> x inferred" (Some Order.Before)
    (Order_cache.find c e.(0) e.(3))

let test_lru_eviction () =
  let c = Order_cache.create ~capacity:2 () in
  let e = ids 6 in
  Order_cache.insert c e.(0) e.(1) Order.Before;
  Order_cache.insert c e.(2) e.(3) Order.Before;
  (* touch the first entry so the second is evicted *)
  ignore (Order_cache.find c e.(0) e.(1));
  Order_cache.insert c e.(4) e.(5) Order.Before;
  Alcotest.(check int) "bounded" 2 (Order_cache.size c);
  Alcotest.(check (option relation)) "lru kept" (Some Order.Before)
    (Order_cache.find c e.(0) e.(1));
  Alcotest.(check (option relation)) "evicted" None
    (Order_cache.find c e.(2) e.(3))

(* Regression: with no lookups at all, hit_rate must be 0.0, not NaN
   (0/0) — `kronos_cli stats` renders it as a percentage. *)
let test_hit_rate_no_lookups () =
  let c = Order_cache.create ~capacity:8 () in
  let r = Order_cache.hit_rate (Order_cache.stats c) in
  Alcotest.(check bool) "not NaN" false (Float.is_nan r);
  Alcotest.(check (float 0.0)) "exactly zero" 0.0 r

let test_eviction_counter () =
  let c = Order_cache.create ~capacity:2 () in
  let e = ids 8 in
  Alcotest.(check int) "starts at zero" 0 (Order_cache.evictions c);
  Order_cache.insert c e.(0) e.(1) Order.Before;
  Order_cache.insert c e.(2) e.(3) Order.Before;
  Alcotest.(check int) "no eviction while under capacity" 0
    (Order_cache.evictions c);
  Order_cache.insert c e.(4) e.(5) Order.Before;
  Order_cache.insert c e.(6) e.(7) Order.Before;
  Alcotest.(check int) "one eviction per overflow" 2 (Order_cache.evictions c);
  Alcotest.(check int) "stats field agrees" 2
    (Order_cache.stats c).Order_cache.stat_evictions;
  (* re-inserting a resident pair evicts nothing *)
  Order_cache.insert c e.(6) e.(7) Order.Before;
  Alcotest.(check int) "update in place" 2 (Order_cache.evictions c)

let test_counters_and_clear () =
  let c = Order_cache.create ~capacity:8 () in
  let e = ids 2 in
  ignore (Order_cache.find c e.(0) e.(1));
  Order_cache.insert c e.(0) e.(1) Order.Before;
  ignore (Order_cache.find c e.(0) e.(1));
  Alcotest.(check int) "hits" 1 (Order_cache.hits c);
  Alcotest.(check int) "misses" 1 (Order_cache.misses c);
  Order_cache.clear c;
  Alcotest.(check int) "empty" 0 (Order_cache.size c);
  Alcotest.(check (option relation)) "cleared" None
    (Order_cache.find c e.(0) e.(1))

(* Property: the cache never returns an answer that contradicts the engine
   it was fed from, under random workloads. *)
let prop_cache_consistent_with_engine =
  let open QCheck2 in
  let n = 8 in
  let gen_op =
    Gen.(frequency
           [ (3, map2 (fun u v -> `Assign (u, v)) (int_bound (n - 1)) (int_bound (n - 1)));
             (5, map2 (fun u v -> `Query (u, v)) (int_bound (n - 1)) (int_bound (n - 1)));
           ])
  in
  Test.make ~name:"cache agrees with engine" ~count:200
    Gen.(list_size (int_bound 80) gen_op)
    (fun ops ->
      let t = Engine.create () in
      let ids = Array.init n (fun _ -> Engine.create_event t) in
      let c = Order_cache.create ~capacity:32 () in
      List.for_all
        (function
          | `Assign (u, v) ->
            ignore (Engine.assign_order t
                      [ Order.prefer_before ids.(u) ids.(v) ]);
            true
          | `Query (u, v) -> (
              match Order_cache.find c ids.(u) ids.(v) with
              | Some cached ->
                (* cached stable answers must match the engine *)
                (match Engine.query_order t [ (ids.(u), ids.(v)) ] with
                 | Ok [ live ] -> Order.relation_equal cached live
                 | Ok _ | Error _ -> false)
              | None -> (
                  match Engine.query_order t [ (ids.(u), ids.(v)) ] with
                  | Ok [ live ] -> Order_cache.insert c ids.(u) ids.(v) live; true
                  | Ok _ | Error _ -> false)))
        ops)

let suites =
  [ ( "order_cache",
      [
        Alcotest.test_case "insert/find" `Quick test_insert_find;
        Alcotest.test_case "after normalized" `Quick test_after_normalized;
        Alcotest.test_case "same identity" `Quick test_same_identity;
        Alcotest.test_case "concurrent not cached" `Quick test_concurrent_not_cached;
        Alcotest.test_case "transitive prefill" `Quick test_transitive_prefill;
        Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
        Alcotest.test_case "hit rate without lookups" `Quick
          test_hit_rate_no_lookups;
        Alcotest.test_case "eviction counter" `Quick test_eviction_counter;
        Alcotest.test_case "counters and clear" `Quick test_counters_and_clear;
        QCheck_alcotest.to_alcotest prop_cache_consistent_with_engine;
      ] );
  ]
