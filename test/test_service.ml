open Kronos
open Kronos_simnet
open Kronos_service

let relation = Alcotest.testable Order.pp_relation Order.relation_equal
let outcome = Alcotest.testable Order.pp_outcome Order.outcome_equal

let coordinator_addr = 1000

type env = {
  sim : Sim.t;
  cluster : Server.cluster;
  client : Client.t;
}

let make_env ?(replicas = 3) ?(seed = 5L) ?cache_capacity () =
  let sim = Sim.create ~seed () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let cluster =
    Server.deploy ~net ~coordinator:coordinator_addr
      ~replicas:(List.init replicas (fun i -> i))
      ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  let client =
    Client.create ~net ~addr:2000 ~coordinator:coordinator_addr ?cache_capacity
      ~request_timeout:0.4 ()
  in
  { sim; cluster; client }

(* Run the simulation until the callback has produced a value. *)
let await env f =
  let result = ref None in
  f (fun x -> result := Some x);
  let deadline = Sim.now env.sim +. 30.0 in
  while !result = None && Sim.now env.sim < deadline && Sim.pending env.sim > 0 do
    ignore (Sim.step env.sim)
  done;
  match !result with
  | Some x -> x
  | None -> Alcotest.fail "service call did not complete"

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" Error.pp e

let test_end_to_end () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  let c = ok (await env (Client.create_event env.client)) in
  Alcotest.(check bool) "distinct events" true (not (Event_id.equal a b));
  let outs =
    ok (await env
          (Client.assign_order env.client
             [ Order.must_before a b; Order.must_before b c ]))
  in
  Alcotest.(check (list outcome)) "applied" [ Order.Applied; Order.Applied ] outs;
  let rels = ok (await env (Client.query_order env.client [ (a, c); (c, b) ])) in
  Alcotest.(check (list relation)) "order seen" [ Order.Before; Order.After ] rels

let test_replicas_identical () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  ignore
    (ok (await env
           (Client.assign_order env.client
              [ Order.must_before a b ])));
  Sim.run ~until:(Sim.now env.sim +. 2.0) env.sim;
  (* every replica's engine holds the same graph *)
  List.iter
    (fun (_, engine) ->
      Alcotest.(check int) "events" 2 (Engine.live_events !engine);
      Alcotest.(check int) "edges" 1 (Engine.edges !engine))
    env.cluster.Server.replicas

let test_cache_short_circuits () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  ignore
    (ok (await env
           (Client.assign_order env.client
              [ Order.must_before a b ])));
  (* the assign primed the cache: this query never reaches the service *)
  let before = Client.server_queries env.client in
  let rels = ok (await env (Client.query_order env.client [ (a, b); (b, a) ])) in
  Alcotest.(check (list relation)) "cached" [ Order.Before; Order.After ] rels;
  Alcotest.(check int) "no server round trip" before
    (Client.server_queries env.client)

let test_cache_disabled () =
  let env = make_env ~cache_capacity:0 () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  ignore
    (ok (await env
           (Client.assign_order env.client
              [ Order.must_before a b ])));
  let before = Client.server_queries env.client in
  ignore (ok (await env (Client.query_order env.client [ (a, b) ])));
  Alcotest.(check int) "server consulted" (before + 1)
    (Client.server_queries env.client);
  Alcotest.(check bool) "no cache" true (Client.cache env.client = None)

let test_stale_reads () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  let c = ok (await env (Client.create_event env.client)) in
  ignore
    (ok (await env
           (Client.assign_order env.client
              [ Order.must_before a b ])));
  Sim.run ~until:(Sim.now env.sim +. 1.0) env.sim;
  (* ordered pair via stale replica: no revalidation *)
  let rels = ok (await env (Client.query_order env.client ~stale:true [ (a, b) ])) in
  Alcotest.(check (list relation)) "stale ordered" [ Order.Before ] rels;
  Alcotest.(check int) "no revalidation" 0 (Client.stale_revalidations env.client);
  (* concurrent pair via stale replica: must be revalidated at the tail *)
  let rels = ok (await env (Client.query_order env.client ~stale:true [ (a, c) ])) in
  Alcotest.(check (list relation)) "still concurrent" [ Order.Concurrent ] rels;
  Alcotest.(check int) "revalidated" 1 (Client.stale_revalidations env.client)

let test_error_propagation () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  let collected = ok (await env (Client.release_ref env.client a)) in
  Alcotest.(check int) "collected" 1 collected;
  (match await env (Client.query_order env.client [ (a, b) ]) with
   | Error (Error.Rejected (Order.Unknown_event e)) ->
     Alcotest.(check bool) "names stale event" true (Event_id.equal e a)
   | Error e -> Alcotest.failf "wrong error: %a" Error.pp e
   | Ok _ -> Alcotest.fail "expected unknown event");
  match await env (Client.acquire_ref env.client a) with
  | Error (Error.Rejected (Order.Unknown_event _)) -> ()
  | Error e -> Alcotest.failf "wrong error: %a" Error.pp e
  | Ok () -> Alcotest.fail "expected unknown event"

let test_survives_replica_failure () =
  let env = make_env () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  Server.crash env.cluster 1;
  Sim.run ~until:(Sim.now env.sim +. 2.0) env.sim;
  let outs =
    ok (await env
          (Client.assign_order env.client
             [ Order.must_before a b ]))
  in
  Alcotest.(check (list outcome)) "applied after crash" [ Order.Applied ] outs;
  let rels = ok (await env (Client.query_order env.client [ (a, b) ])) in
  Alcotest.(check (list relation)) "readable after crash" [ Order.Before ] rels

let test_join_catches_up () =
  let env = make_env ~replicas:2 () in
  let a = ok (await env (Client.create_event env.client)) in
  let b = ok (await env (Client.create_event env.client)) in
  ignore
    (ok (await env
           (Client.assign_order env.client
              [ Order.must_before a b ])));
  Server.join env.cluster 7 ();
  Sim.run ~until:(Sim.now env.sim +. 2.0) env.sim;
  (match Server.engine_of env.cluster 7 with
   | Some engine ->
     Alcotest.(check int) "fresh engine synced" 2 (Engine.live_events engine);
     Alcotest.(check int) "fresh engine edges" 1 (Engine.edges engine)
   | None -> Alcotest.fail "fresh replica missing");
  (* reads from the fresh tail work *)
  let rels = ok (await env (Client.query_order env.client [ (a, b) ])) in
  Alcotest.(check (list relation)) "reads via new tail" [ Order.Before ] rels

let test_malformed_command_rejected () =
  let engine = Engine.create () in
  let resp = Server.apply engine "\xff\xff" in
  match Kronos_wire.Message.decode_response resp with
  | Kronos_wire.Message.Rejected (Order.Unknown_event _) -> ()
  | _ -> Alcotest.fail "expected rejection of malformed command"

(* Mixed-version cluster: a current client against a server predating the
   epoch-stamped wire tags.  The "old server" applies everything like
   today's [Server.apply] except that the stamped requests draw the
   canonical unparseable rejection — exactly what a pre-epoch decoder's
   [Decode_error] turned into.  The client's first assign must fall back
   to the legacy encoding (the old server applied nothing for the stamped
   attempt), and the downgrade is latched: later batches skip the stamped
   attempt entirely. *)
let test_assign_legacy_fallback () =
  let module Message = Kronos_wire.Message in
  let module Chain = Kronos_replication.Chain in
  let sim = Sim.create ~seed:11L () in
  let net = Kronos_transport.Sim_transport.of_net (Net.create sim) in
  let engine = Engine.create () in
  let stamped = ref 0 and legacy = ref 0 in
  let old_apply cmd =
    match Message.decode_request cmd with
    | Message.Assign_order_at _ | Message.Query_order_at _ ->
      incr stamped;
      Message.encode_response
        (Message.Rejected (Order.Unknown_event Event_id.none))
    | Message.Assign_order _ ->
      incr legacy;
      Server.apply engine cmd
    | _ -> Server.apply engine cmd
    | exception _ -> Server.apply engine cmd
  in
  let (_ : Chain.Replica.t) =
    Chain.Replica.create ~net ~addr:1 ~apply:old_apply
      ~config:{ Chain.version = 0; chain = [] } ()
  in
  let (_ : Chain.Coordinator.t) =
    Chain.Coordinator.create ~net ~addr:coordinator_addr ~chain:[ 1 ]
      ~ping_interval:0.1 ~failure_timeout:1.0 ()
  in
  let client =
    Client.create ~net ~addr:2000 ~coordinator:coordinator_addr
      ~request_timeout:0.4 ()
  in
  let await f =
    let result = ref None in
    f (fun x -> result := Some x);
    let deadline = Sim.now sim +. 30.0 in
    while !result = None && Sim.now sim < deadline && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    match !result with
    | Some x -> x
    | None -> Alcotest.fail "service call did not complete"
  in
  let a = ok (await (Client.create_event client)) in
  let b = ok (await (Client.create_event client)) in
  let outs = ok (await (Client.assign_order client [ Order.must_before a b ])) in
  Alcotest.(check (list outcome)) "applied via legacy fallback"
    [ Order.Applied ] outs;
  Alcotest.(check int) "one stamped attempt" 1 !stamped;
  Alcotest.(check int) "one legacy apply" 1 !legacy;
  let c = ok (await (Client.create_event client)) in
  let outs2 =
    ok (await (Client.assign_order client [ Order.must_before b c ]))
  in
  Alcotest.(check (list outcome)) "second batch applied" [ Order.Applied ] outs2;
  Alcotest.(check int) "downgrade latched: no new stamped attempt" 1 !stamped;
  Alcotest.(check int) "second batch went legacy" 2 !legacy;
  Alcotest.(check int64) "legacy acks carry no epoch" 0L
    (Client.last_epoch client);
  let rels = ok (await (Client.query_order client [ (a, c) ])) in
  Alcotest.(check (list relation)) "orders visible" [ Order.Before ] rels

let suites =
  [ ( "service",
      [
        Alcotest.test_case "end to end" `Quick test_end_to_end;
        Alcotest.test_case "replicas identical" `Quick test_replicas_identical;
        Alcotest.test_case "cache short-circuits" `Quick test_cache_short_circuits;
        Alcotest.test_case "cache disabled" `Quick test_cache_disabled;
        Alcotest.test_case "stale reads" `Quick test_stale_reads;
        Alcotest.test_case "error propagation" `Quick test_error_propagation;
        Alcotest.test_case "survives replica failure" `Quick test_survives_replica_failure;
        Alcotest.test_case "join catches up" `Quick test_join_catches_up;
        Alcotest.test_case "malformed command" `Quick test_malformed_command_rejected;
        Alcotest.test_case "assign falls back on old servers" `Quick
          test_assign_legacy_fallback;
      ] );
  ]
