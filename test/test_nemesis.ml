(* Nemesis harness (DESIGN.md §16): a durable 3-replica chain over real TCP
   on 127.0.0.1, driven through a schedule of injected faults while a
   closed-loop workload keeps creating and ordering events:

   - {b partition}: every TCP connection between replica 2 and the rest of
     the cluster runs through byte-level drop proxies; partitioning closes
     the live connections and refuses new ones until healed;
   - {b clean kill + mixed snapshot versions}: replica 2's runtime is shut
     down and a legacy-format snapshot (v1..v5, cycling per iteration) is
     planted in its storage, so recovery must read old formats that
     coexist with current full snapshots and deltas;
   - {b machine crash + lying disk}: replica 2's storage wrapper silently
     drops fsyncs, then the "machine" crashes (un-synced bytes vanish) and
     a torn half-record is appended to the WAL tail — recovery must
     truncate the tear and rejoin from whatever really reached the disk.

   Replicas run the incremental snapshot policy with tiny thresholds, so
   full snapshots, delta chains, WAL segment retirement and compaction all
   churn constantly underneath the faults.  The checker asserts that no
   acknowledged order is ever lost (every acked pair still answers
   [Before] through the tail), that the replicas that never crashed
   converge bit-identically, that the restarted replica's engine matches
   the head, and that an offline re-recovery of the victim's storage
   resolves a snapshot chain plus a bounded WAL tail.

   Iteration count: KRONOS_NEMESIS_ITERS (default 3; CI's PR lane runs a
   reduced count, the nightly lane the full schedule). *)

open Kronos
module Chain = Kronos_replication.Chain
module Server = Kronos_service.Server
module Client = Kronos_service.Client
module Storage = Kronos_durability.Storage
module Wal = Kronos_durability.Wal
module Snapshot = Kronos_durability.Snapshot
module Recovery = Kronos_durability.Recovery
module Transport = Kronos_transport.Transport
module Event_loop = Kronos_transport.Event_loop
module Tcp = Kronos_transport.Tcp_transport

let iters () =
  match Sys.getenv_opt "KRONOS_NEMESIS_ITERS" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | _ -> 3)
  | None -> 3

(* Fault-injecting storage wrapper: a real disk that misbehaves.
   [torn_next_append] writes only the first half of one append (a crash
   mid-write leaving a durable prefix); [drop_syncs] acknowledges fsyncs
   without performing them (a lying disk), so a later [Memory.crash]
   loses everything "synced" since the flag was set. *)
module Faults = struct
  type t = { mutable torn_next_append : bool; mutable drop_syncs : bool }

  let create () = { torn_next_append = false; drop_syncs = false }

  let storage f (base : Storage.t) : Storage.t =
    let open_append name =
      let w = base.Storage.open_append name in
      {
        w with
        Storage.append =
          (fun s ->
            if f.torn_next_append && String.length s > 1 then begin
              f.torn_next_append <- false;
              w.Storage.append (String.sub s 0 (String.length s / 2))
            end
            else w.Storage.append s);
        sync = (fun () -> if not f.drop_syncs then w.Storage.sync ());
      }
    in
    { base with Storage.open_append }
end

(* Byte-transparent TCP drop proxy on the shared event loop.  Partitioning
   closes every live connection pair and rejects new accepts, so learned
   return routes die with their sockets — both directions of any link
   through the proxy are severed at once. *)
module Proxy = struct
  type t = {
    loop : Event_loop.t;
    lsock : Unix.file_descr;
    port : int;
    upstream : int;
    mutable conns : (Unix.file_descr * Unix.file_descr) list;
    mutable partitioned : bool;
  }

  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

  let write_all fd buf n =
    let off = ref 0 in
    while !off < n do
      off := !off + Unix.write fd buf !off (n - !off)
    done

  let drop_conn t fd =
    match List.find_opt (fun (a, b) -> a == fd || b == fd) t.conns with
    | None -> ()
    | Some (a, b) ->
      t.conns <- List.filter (fun (x, _) -> x != a) t.conns;
      Event_loop.forget t.loop a;
      Event_loop.forget t.loop b;
      close_fd a;
      close_fd b

  let pump t src dst =
    let buf = Bytes.create 65536 in
    Event_loop.watch_read t.loop src (fun () ->
        match Unix.read src buf 0 (Bytes.length buf) with
        | 0 -> drop_conn t src
        | n -> (
          try write_all dst buf n
          with Unix.Unix_error _ -> drop_conn t src)
        | exception Unix.Unix_error _ -> drop_conn t src)

  let create ~loop ~upstream =
    let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt lsock Unix.SO_REUSEADDR true;
    Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
    Unix.listen lsock 16;
    let port =
      match Unix.getsockname lsock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> assert false
    in
    let t = { loop; lsock; port; upstream; conns = []; partitioned = false } in
    Event_loop.watch_read loop lsock (fun () ->
        match Unix.accept lsock with
        | exception Unix.Unix_error _ -> ()
        | c, _ ->
          if t.partitioned then close_fd c
          else begin
            let u = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            match
              Unix.connect u
                (Unix.ADDR_INET (Unix.inet_addr_loopback, t.upstream))
            with
            | exception Unix.Unix_error _ ->
              close_fd c;
              close_fd u
            | () ->
              Unix.setsockopt c Unix.TCP_NODELAY true;
              Unix.setsockopt u Unix.TCP_NODELAY true;
              t.conns <- (c, u) :: t.conns;
              pump t c u;
              pump t u c
          end);
    t

  let set_partitioned t flag =
    t.partitioned <- flag;
    if flag then List.iter (fun fd -> drop_conn t fd) (List.map fst t.conns)

  let close t =
    set_partitioned t true;
    Event_loop.forget t.loop t.lsock;
    close_fd t.lsock
end

let tcp_config =
  { Tcp.default_config with backoff_min = 0.02; backoff_max = 0.2 }

let chain_tcp loop =
  Tcp.create ~loop ~encode:Kronos_replication.Chain_codec.encode
    ~decode:Kronos_replication.Chain_codec.decode ~config:tcp_config ()

let coordinator_addr = 1000

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | x :: rest when k > 0 -> take (k - 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let head, rest = take n [] l in
    head :: chunks n rest

let test_nemesis_schedule () =
  let iterations = iters () in
  let loop = Event_loop.create () in
  let wait ~what ?(secs = 60.) pred =
    if
      not
        (Event_loop.run_until loop ~deadline:(Event_loop.now loop +. secs) pred)
    then Alcotest.fail ("timed out waiting for " ^ what)
  in

  (* Per-replica in-memory storage; replica 2's goes through the fault
     wrapper so the nemesis can tear writes and drop fsyncs. *)
  let dir1 = Storage.Memory.create () in
  let dir2 = Storage.Memory.create () in
  let dir3 = Storage.Memory.create () in
  let faults = Faults.create () in
  let storage2_raw = Storage.Memory.storage dir2 in
  let storage_of = function
    | 1 -> Storage.Memory.storage dir1
    | 2 -> Faults.storage faults storage2_raw
    | 3 -> Storage.Memory.storage dir3
    | a -> Alcotest.fail (Printf.sprintf "unexpected storage for addr %d" a)
  in
  (* Tiny thresholds so the incremental snapshot machinery — deltas, full
     re-anchors, WAL segment retirement, compaction — churns constantly. *)
  let durability =
    Server.durability
      ~wal_config:{ Wal.segment_bytes = 512; sync = Wal.Always }
      ~policy:
        (Server.snapshot_policy ~wal_bytes_per_snapshot:400 ~max_delta_chain:3
           ())
      ~snapshots_kept:3 ~storage_of ()
  in

  (* Real listeners first, then the proxies that front them. *)
  let t1 = chain_tcp loop and t3 = chain_tcp loop in
  let t2 = chain_tcp loop in
  let p1 = Tcp.listen t1 ~port:0 () in
  let p2 = Tcp.listen t2 ~port:0 () in
  let p3 = Tcp.listen t3 ~port:0 () in
  (* px2 fronts replica 2 for everyone else; px1/px3 front the rest of the
     cluster for replica 2 — so every 2<->rest link crosses a proxy. *)
  let px1 = Proxy.create ~loop ~upstream:p1 in
  let px2 = Proxy.create ~loop ~upstream:p2 in
  let px3 = Proxy.create ~loop ~upstream:p3 in
  let partition flag =
    List.iter (fun p -> Proxy.set_partitioned p flag) [ px1; px2; px3 ]
  in
  let mesh_main =
    [ (coordinator_addr, p1); (1, p1); (2, px2.Proxy.port); (3, p3) ]
  in
  let mesh_r2 =
    [
      (coordinator_addr, px1.Proxy.port);
      (1, px1.Proxy.port);
      (2, p2);
      (3, px3.Proxy.port);
    ]
  in
  let add_mesh t endpoints =
    List.iter
      (fun (a, p) -> Tcp.add_peer t a ~host:"127.0.0.1" ~port:p)
      endpoints
  in
  add_mesh t1 mesh_main;
  add_mesh t3 mesh_main;
  add_mesh t2 mesh_r2;

  let r1, e1 = Server.start_node ~net:(Tcp.transport t1) ~addr:1 ~durability () in
  let coord =
    Chain.Coordinator.create ~net:(Tcp.transport t1) ~addr:coordinator_addr
      ~chain:[ 1 ] ~ping_interval:0.1 ~failure_timeout:0.5 ()
  in
  let chain_length () =
    List.length (Chain.Coordinator.config coord).Chain.chain
  in
  let join net replica =
    let timer = ref None in
    let joined () =
      List.mem (Chain.Replica.addr replica)
        (Chain.Replica.config replica).Chain.chain
    in
    Chain.Replica.announce_join replica ~coordinator:coordinator_addr;
    timer :=
      Some
        (Transport.every net ~period:0.1 (fun () ->
             if joined () then Option.iter Transport.cancel !timer
             else
               Chain.Replica.announce_join replica
                 ~coordinator:coordinator_addr))
  in
  let r2, e2 = Server.start_node ~net:(Tcp.transport t2) ~addr:2 ~durability () in
  join (Tcp.transport t2) r2;
  wait ~what:"replica 2 to join" (fun () -> chain_length () = 2);
  let r3, e3 = Server.start_node ~net:(Tcp.transport t3) ~addr:3 ~durability () in
  join (Tcp.transport t3) r3;
  wait ~what:"replica 3 to join" (fun () -> chain_length () = 3);

  let ct = chain_tcp loop in
  add_mesh ct mesh_main;
  Tcp.connect_peers ct;
  let client =
    Client.create ~net:(Tcp.transport ct) ~addr:9001
      ~coordinator:coordinator_addr ~request_timeout:0.25 ()
  in

  let t2cur = ref t2 and r2cur = ref r2 and e2cur = ref e2 in
  let acked = ref [] in

  (* Closed-loop workload: create events, chain each after the previous.
     No per-call deadline, so requests retry through reconfigurations and
     an acknowledgement is a promise.  [nemesis] fires after [at] acks. *)
  let run_workload ~total ~at ~nemesis () =
    let finished = ref false in
    let fired = ref false in
    let count = ref 0 in
    let rec step prev n =
      if n = 0 then finished := true
      else
        Client.create_event client (function
          | Error _ -> Alcotest.fail "create_event failed without a deadline"
          | Ok e -> (
            match prev with
            | None -> step (Some e) (n - 1)
            | Some p ->
              Client.assign_order client
                [ Order.must_before p e ]
                (function
                  | Error _ -> Alcotest.fail "acyclic assign_order rejected"
                  | Ok _ ->
                    acked := (p, e) :: !acked;
                    incr count;
                    if (not !fired) && !count >= at then begin
                      fired := true;
                      nemesis ()
                    end;
                    step (Some e) (n - 1))))
    in
    step None total;
    wait ~what:"workload to finish over the fault" (fun () -> !finished);
    Alcotest.(check bool) "nemesis fired mid-workload" true !fired
  in

  (* Restart replica 2 from its (possibly damaged) storage on the same
     port, rejoin at the tail and wait for full convergence. *)
  let restart_r2 () =
    let t = chain_tcp loop in
    let (_ : int) = Tcp.listen t ~port:p2 () in
    add_mesh t mesh_r2;
    let r, e = Server.start_node ~net:(Tcp.transport t) ~addr:2 ~durability () in
    t2cur := t;
    r2cur := r;
    e2cur := e;
    join (Tcp.transport t) r;
    wait ~what:"replica 2 to rejoin" (fun () -> chain_length () = 3);
    wait ~what:"replicas to converge" (fun () ->
        Chain.Replica.last_applied r = Chain.Replica.last_applied r1
        && Chain.Replica.last_applied r3 = Chain.Replica.last_applied r1)
  in

  for iter = 1 to iterations do
    (match (iter - 1) mod 3 with
     | 0 ->
       (* Partition replica 2 mid-workload; the chain stalls until the
          coordinator removes it, then drains through [1;3].  Heal, shut
          the isolated runtime down and restart it from storage — with the
          next storage append torn, so a later recovery must skip the
          damaged file. *)
       run_workload ~total:30 ~at:8 ~nemesis:(fun () -> partition true) ();
       Alcotest.(check int) "chain reconfigured around the partition" 2
         (chain_length ());
       partition false;
       Tcp.shutdown !t2cur;
       faults.Faults.torn_next_append <- true;
       restart_r2 ()
     | 1 ->
       (* Clean kill, then plant a legacy-format snapshot (cycling v1..v5)
          at the replica's applied sequence: recovery must prefer it and
          read the old format alongside current fulls and deltas. *)
       run_workload ~total:30 ~at:10
         ~nemesis:(fun () -> Tcp.shutdown !t2cur)
         ();
       Alcotest.(check int) "chain reconfigured around the kill" 2
         (chain_length ());
       let fmt = 1 + ((iter - 1) mod Snapshot.version) in
       let seq = Chain.Replica.last_applied !r2cur in
       Snapshot.write_bytes storage2_raw ~seq
         (Snapshot.encode_at ~fmt ~seq (Engine.to_snapshot !(!e2cur)));
       restart_r2 ()
     | _ ->
       (* Lying disk: fsyncs silently dropped from here on, then the
          machine crashes (un-synced bytes vanish) and the WAL tail gets a
          torn half-record.  The replica recovers whatever truly reached
          the disk; the chain re-ships the rest on rejoin. *)
       faults.Faults.drop_syncs <- true;
       run_workload ~total:30 ~at:10
         ~nemesis:(fun () -> Tcp.shutdown !t2cur)
         ();
       Alcotest.(check int) "chain reconfigured around the crash" 2
         (chain_length ());
       faults.Faults.drop_syncs <- false;
       Storage.Memory.crash dir2;
       (match
          List.filter
            (fun n -> String.length n >= 4 && String.sub n 0 4 = "wal-")
            (storage2_raw.Storage.list_files ())
        with
        | [] -> ()
        | files ->
          let last = List.nth files (List.length files - 1) in
          let w = storage2_raw.Storage.open_append last in
          (* length prefix claims 32 bytes; only one follows: a torn
             mid-append frame the next open must truncate away. *)
          w.Storage.append "\x00\x00\x00\x20\xde";
          w.Storage.sync ();
          w.Storage.close ());
       restart_r2 ());
    (* After every iteration the restarted engine must match the head. *)
    Alcotest.(check bool)
      (Printf.sprintf "iteration %d: restarted engine matches head" iter)
      true
      (Engine.stats !e1 = Engine.stats !(!e2cur))
  done;

  (* The replicas that never crashed must be bit-identical: same commands,
     same code, same bytes. *)
  let canon e = Snapshot.encode ~seq:0 (Engine.to_snapshot e) in
  Alcotest.(check bool) "surviving replicas converge bit-identically" true
    (String.equal (canon !e1) (canon !e3));

  (* No lost acknowledged orders: every acked pair still answers Before
     through the tail — the most recently restarted replica. *)
  List.iter
    (fun pairs ->
      let answer = ref None in
      Client.query_order client pairs (fun r -> answer := Some r);
      wait ~what:"acked-pair query through the tail" (fun () ->
          !answer <> None);
      match Option.get !answer with
      | Error _ -> Alcotest.fail "query_order failed"
      | Ok rels ->
        Alcotest.(check int) "every acked pair answered" (List.length pairs)
          (List.length rels);
        List.iter
          (fun rel ->
            Alcotest.(check bool) "acked order survives the nemesis" true
              (Order.relation_equal rel Order.Before))
          rels)
    (chunks 32 (List.rev !acked));

  (* The snapshot-policy machinery must have actually churned. *)
  let cval scope name =
    Kronos_metrics.Counter.value
      (Kronos_metrics.counter (Kronos_metrics.scope scope) name)
  in
  Alcotest.(check bool) "incremental deltas were written" true
    (cval "snapshot" "delta_writes_total" > 0);
  Alcotest.(check bool) "WAL segments were retired" true
    (cval "durability" "segments_retired_total" > 0);

  (* Crash-safe compaction on the victim's storage: plant a stray tmp and
     compact around the live replica — redundant files go, the resolvable
     state does not, and the manifest only ever names files that exist. *)
  let before =
    match Snapshot.load_chain storage2_raw with
    | Some (seq, _, _) -> seq
    | None -> Alcotest.fail "victim storage lost its snapshot chain"
  in
  let w = storage2_raw.Storage.open_append "snap-0000000001.tmp" in
  w.Storage.append "interrupted";
  w.Storage.sync ();
  w.Storage.close ();
  let removed = Snapshot.compact storage2_raw ~keep:3 in
  Alcotest.(check bool) "compaction retired the stray tmp" true (removed >= 1);
  Alcotest.(check bool) "snapshots retired counted" true
    (cval "durability" "snapshots_retired_total" > 0);
  (match Snapshot.load_chain storage2_raw with
   | Some (seq, _, _) ->
     Alcotest.(check int) "compaction preserved the recoverable head" before
       seq
   | None -> Alcotest.fail "compaction destroyed the snapshot chain");
  (match Snapshot.read_manifest storage2_raw with
   | None -> Alcotest.fail "compaction left no manifest"
   | Some (head, kept) ->
     Alcotest.(check int) "manifest head matches the recoverable head" before
       head;
     let files = storage2_raw.Storage.list_files () in
     List.iter
       (fun n ->
         Alcotest.(check bool)
           (Printf.sprintf "manifest entry %s exists" n)
           true (List.mem n files))
       kept);

  (* Offline re-recovery of the victim's storage (on a copy, so the live
     replica keeps running): the snapshot chain must resolve and the
     replayed WAL tail must stay within what the replica actually
     acknowledged — recovery never invents state. *)
  let copy = Storage.Memory.storage (Storage.Memory.create ()) in
  List.iter
    (fun (name, contents) ->
      let w = copy.Storage.open_append name in
      w.Storage.append contents;
      w.Storage.sync ();
      w.Storage.close ())
    (Storage.Memory.files dir2);
  let oc = Recovery.run ~replay:(fun _ _ -> ()) copy in
  Alcotest.(check bool) "offline recovery resolves the snapshot chain" true
    (oc.Recovery.snapshot_seq > 0);
  Alcotest.(check bool) "offline recovery stays within acked state" true
    (oc.Recovery.next_seq - 1 <= Chain.Replica.last_applied !r2cur
     && oc.Recovery.next_seq - 1 >= oc.Recovery.snapshot_seq);

  List.iter Proxy.close [ px1; px2; px3 ];
  List.iter Tcp.shutdown [ ct; t1; !t2cur; t3 ]

let suites =
  [ ( "nemesis",
      [ Alcotest.test_case "3-replica TCP chain survives a fault schedule"
          `Slow test_nemesis_schedule ] );
  ]
