(* Federation tests: consistent-hash ring properties, the two-shard
   cross-edge commit with fault injection at every step, the reflection
   closure, frontier-short-circuit queries, merged stats, the
   deterministic crash/partition nemesis harness.  Write scaling lives in
   the smoke bench as [fed.write_scaling]. *)

open Kronos
open Kronos_simnet
open Kronos_service
module Fed = Kronos_federation.Deploy
module Router = Kronos_federation.Router
module Fid = Kronos_federation.Fid
module Ring = Kronos_federation.Ring

let relation = Alcotest.testable Order.pp_relation Order.relation_equal
let outcome = Alcotest.testable Order.pp_outcome Order.outcome_equal

type env = { sim : Sim.t; raw : Kronos_replication.Chain.msg Net.t; fed : Fed.t }

let make_env ?(shards = [ 0; 1 ]) ?(replicas = 3) ?(seed = 7L) ?service () =
  let sim = Sim.create ~seed () in
  let raw = Net.create sim in
  let net = Kronos_transport.Sim_transport.of_net raw in
  let fed =
    Fed.deploy ~net ~shards ~replicas_per_shard:replicas ?service
      ~request_timeout:0.4 ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  { sim; raw; fed }

let await env f =
  let result = ref None in
  f (fun x -> result := Some x);
  let deadline = Sim.now env.sim +. 60.0 in
  while !result = None && Sim.now env.sim < deadline && Sim.pending env.sim > 0 do
    ignore (Sim.step env.sim)
  done;
  match !result with
  | Some x -> x
  | None -> Alcotest.fail "federated call did not complete"

let ok = function
  | Ok x -> x
  | Error e -> Alcotest.failf "unexpected error: %a" Error.pp e

let router env = env.fed.Fed.router

(* Mint an event pinned to [shard] through that shard's own client, so
   tests control placement regardless of the router's round-robin. *)
let mint_on env shard =
  let c = Option.get (Router.client_of (router env) shard) in
  Fid.make ~shard (ok (await env (Client.create_event c)))

let assign env specs = await env (Router.assign_order (router env) specs)
let query env pairs = await env (Router.query_order (router env) pairs)

(* ---------- ring ---------- *)

let test_ring_basics () =
  let ring = Ring.create [ 0; 1; 2 ] in
  Alcotest.(check (list int)) "members" [ 0; 1; 2 ] (Ring.shards ring);
  Alcotest.(check int) "size" 3 (Ring.size ring);
  let counts = Array.make 3 0 in
  for k = 0 to 2999 do
    let s = Ring.lookup ring (Int64.of_int k) in
    Alcotest.(check bool) "member" true (List.mem s [ 0; 1; 2 ]);
    Alcotest.(check int) "stable" s (Ring.lookup ring (Int64.of_int k));
    counts.(s) <- counts.(s) + 1
  done;
  (* each shard owns a non-trivial share of 3000 keys *)
  Array.iter
    (fun c -> Alcotest.(check bool) "balanced" true (c > 300))
    counts;
  Alcotest.(check bool) "string lookup member" true
    (List.mem (Ring.lookup_string ring "some/key") [ 0; 1; 2 ])

let prop_ring_remap =
  QCheck2.Test.make ~name:"ring join moves ~K/N keys, all to the joiner"
    ~count:50
    QCheck2.Gen.(pair (int_range 1 8) (int_range 1 10_000))
    (fun (n, salt) ->
      let keys = List.init 512 (fun i -> Int64.of_int ((i * 7919) + salt)) in
      let before = Ring.create (List.init n (fun i -> i)) in
      let after = Ring.add before n in
      let moved =
        List.filter (fun k -> Ring.lookup before k <> Ring.lookup after k) keys
      in
      (* consistency: a key only ever moves to the joining shard *)
      List.for_all (fun k -> Ring.lookup after k = n) moved
      (* volume: expected K/(N+1) with generous statistical slack *)
      && List.length moved <= (3 * 512 / (n + 1)) + 32
      && List.length moved >= 1
      (* removing the joiner restores every placement *)
      && List.for_all
           (fun k -> Ring.lookup (Ring.remove after n) k = Ring.lookup before k)
           keys)

(* ---------- cross-shard commit ---------- *)

let test_cross_edge_commit () =
  let env = make_env () in
  let a = mint_on env 0 and b = mint_on env 1 in
  Alcotest.(check (list relation)) "initially concurrent"
    [ Order.Concurrent ]
    (ok (query env [ (a, b) ]));
  Alcotest.(check (list outcome)) "applied" [ Order.Applied ]
    (ok (assign env [ Router.must_before a b ]));
  Alcotest.(check (list relation)) "ordered both ways"
    [ Order.Before; Order.After ]
    (ok (query env [ (a, b); (b, a) ]));
  Alcotest.(check (list outcome)) "re-assign is implied" [ Order.Already ]
    (ok (assign env [ Router.must_before a b ]));
  Alcotest.(check int) "one witness edge" 1 (Router.cross_edges (router env));
  Alcotest.(check (list (pair int int))) "frontier counts egress"
    [ (0, 1); (1, 0) ]
    (Router.frontier (router env));
  Alcotest.(check int) "consistent" 0 (Router.inconsistencies (router env))

let test_cross_edge_conflict () =
  let env = make_env () in
  let a = mint_on env 0 and b = mint_on env 1 in
  ignore (ok (assign env [ Router.must_before a b ]));
  (match assign env [ Router.must_after a b ] with
  | Error (Error.Rejected (Order.Must_violated 0)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "conflicting must was not refused");
  Alcotest.(check (list outcome)) "conflicting prefer reverses"
    [ Order.Reversed ]
    (ok (assign env [ Router.prefer_after a b ]));
  Alcotest.(check (list relation)) "original order stands" [ Order.Before ]
    (ok (query env [ (a, b) ]));
  Alcotest.(check int) "only the first edge" 1 (Router.cross_edges (router env))

let test_concurrent_conflicting_edges () =
  let env = make_env () in
  let a = mint_on env 0 and b = mint_on env 1 in
  let r1 = ref None and r2 = ref None in
  Router.assign_order (router env) [ Router.must_before a b ] (fun x ->
      r1 := Some x);
  Router.assign_order (router env) [ Router.must_before b a ] (fun x ->
      r2 := Some x);
  Sim.run ~until:(Sim.now env.sim +. 30.0) env.sim;
  let applied = function Some (Ok [ Order.Applied ]) -> true | _ -> false in
  let refused = function
    | Some (Error (Error.Rejected (Order.Must_violated _))) -> true
    | _ -> false
  in
  Alcotest.(check bool) "exactly one of the two racing edges wins" true
    ((applied !r1 && refused !r2) || (applied !r2 && refused !r1));
  Alcotest.(check int) "one witness edge" 1 (Router.cross_edges (router env));
  Alcotest.(check int) "consistent" 0 (Router.inconsistencies (router env))

let test_mixed_batch_atomiclike () =
  (* a batch mixing an intra pair and a cross pair: outcomes keep request
     order, and a conflicting cross constraint reports its own index *)
  let env = make_env () in
  let a = mint_on env 0 and b = mint_on env 0 and c = mint_on env 1 in
  Alcotest.(check (list outcome)) "mixed batch"
    [ Order.Applied; Order.Applied ]
    (ok (assign env [ Router.must_before a b; Router.must_before b c ]));
  (match assign env [ Router.prefer_before a b; Router.must_before c a ] with
  | Error (Error.Rejected (Order.Must_violated 1)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "cycle-closing cross edge not refused at 1");
  Alcotest.(check (list relation)) "transitive across the portal"
    [ Order.Before ]
    (ok (query env [ (a, c) ]))

(* A successor router (a later kronos_cli invocation, a standby taking
   over) inherits the edge table via dump/restore; without it a fresh
   router would answer this pair Concurrent and admit the reversing
   edge. *)
let test_dump_restore_handoff () =
  let env = make_env () in
  let a = mint_on env 0 and b = mint_on env 1 in
  Alcotest.(check (list outcome)) "applied" [ Order.Applied ]
    (ok (assign env [ Router.must_before a b ]));
  let state = Router.dump (router env) in
  let net = Kronos_transport.Sim_transport.of_net env.raw in
  let r2 =
    Router.create ~net ~addr:3000
      ~shards:
        (List.map (fun s -> { Router.shard = s; coordinator = 1000 + s }) [ 0; 1 ])
      ~request_timeout:0.4 ()
  in
  (match Router.restore r2 state with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "edge table carried over"
    (Router.cross_edges (router env))
    (Router.cross_edges r2);
  Alcotest.(check string) "dump roundtrips" state (Router.dump r2);
  Alcotest.(check (list relation)) "successor sees the order"
    [ Order.Before; Order.After ]
    (ok (await env (Router.query_order r2 [ (a, b); (b, a) ])));
  (match await env (Router.assign_order r2 [ Router.must_before b a ]) with
  | Error (Error.Rejected (Order.Must_violated 0)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "successor admitted the reversing edge");
  (match Router.restore r2 state with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "restore into a non-empty router must fail")

(* ---------- reflection closure ---------- *)

let test_reflection_transitivity () =
  let env = make_env ~shards:[ 0; 1; 2 ] () in
  let a = mint_on env 0 and b = mint_on env 1 and c = mint_on env 2 in
  ignore (ok (assign env [ Router.must_before a b ]));
  ignore (ok (assign env [ Router.must_before b c ]));
  (* the closure materializes a direct 0 -> 2 witness, so the cross query
     resolves transitively with one probe per side *)
  Alcotest.(check bool) "derived witness recorded" true
    (Router.internal_edges (router env) >= 1);
  Alcotest.(check (list relation)) "transitive order"
    [ Order.Before; Order.After ]
    (ok (query env [ (a, c); (c, a) ]));
  (match assign env [ Router.must_before c a ] with
  | Error (Error.Rejected (Order.Must_violated 0)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "three-shard cycle not refused");
  Alcotest.(check int) "consistent" 0 (Router.inconsistencies (router env))

let test_intra_assign_connects_portals () =
  (* a -> x on shard 1, y -> c back to shard 0; the local edge x -> y on
     the bi-portal shard must compose both cross edges, giving a -> c on
     shard 0 and refusing the cycle c -> a *)
  let env = make_env () in
  let a = mint_on env 0 and c = mint_on env 0 in
  let x = mint_on env 1 and y = mint_on env 1 in
  ignore (ok (assign env [ Router.must_before a x ]));
  ignore (ok (assign env [ Router.must_before y c ]));
  Alcotest.(check (list relation)) "not yet ordered" [ Order.Concurrent ]
    (ok (query env [ (a, c) ]));
  Alcotest.(check (list outcome)) "local edge applied" [ Order.Applied ]
    (ok (assign env [ Router.must_before x y ]));
  Alcotest.(check (list relation)) "composed through shard 1"
    [ Order.Before; Order.After ]
    (ok (query env [ (a, c); (c, a) ]));
  (match assign env [ Router.must_before c a ] with
  | Error (Error.Rejected (Order.Must_violated 0)) -> ()
  | Ok _ | Error _ -> Alcotest.fail "portal-composed cycle not refused");
  (* the composition a -> c is local to shard 0 (a portal-to-portal edge),
     so no extra cross edge is recorded *)
  Alcotest.(check int) "still two cross edges" 2 (Router.cross_edges (router env));
  Alcotest.(check int) "consistent" 0 (Router.inconsistencies (router env))

(* ---------- frontier short-circuit ---------- *)

let test_frontier_short_circuit () =
  let env = make_env () in
  let rt = router env in
  let a = mint_on env 0 and b = mint_on env 1 in
  let c0 = Option.get (Router.client_of rt 0)
  and c1 = Option.get (Router.client_of rt 1) in
  let q0 = Client.server_queries c0 and q1 = Client.server_queries c1 in
  Alcotest.(check (list relation)) "no witnesses, no order"
    [ Order.Concurrent ]
    (ok (query env [ (a, b) ]));
  (* no cross edges between the shards: answered from the frontier alone *)
  Alcotest.(check int) "no probe on shard 0" q0 (Client.server_queries c0);
  Alcotest.(check int) "no probe on shard 1" q1 (Client.server_queries c1);
  let d = mint_on env 0 and e = mint_on env 1 in
  ignore (ok (assign env [ Router.must_before d e ]));
  Alcotest.(check (list relation)) "still concurrent" [ Order.Concurrent ]
    (ok (query env [ (a, b) ]));
  (* now there is a witness edge, so the pair needed a real probe *)
  Alcotest.(check bool) "probed once witnesses exist" true
    (Client.server_queries c0 > q0 && Client.server_queries c1 > q1)

(* ---------- fault injection: no observable half-edge ---------- *)

let fault_steps : Router.fault array =
  [|
    `Probe;
    `Prepare_create;
    `Prepare_apply;
    `Apply_create;
    `Apply_apply;
    `Record;
    `Reflect;
  |]

(* Abort a cross-edge commit at step [step]; whatever was already applied
   must be rolled back so that no constraint is observable, and the same
   edge must commit cleanly on a later attempt. *)
let check_abort_invariant step seed =
  let env = make_env ~seed () in
  let rt = router env in
  let a = mint_on env 0 and b = mint_on env 1 in
  (* a pre-existing cross edge makes probes and guards non-trivial *)
  let d = mint_on env 0 and e = mint_on env 1 in
  ignore (ok (assign env [ Router.must_before d e ]));
  let fired = ref false in
  Router.set_fault_injection rt
    (Some
       (fun s ->
         if s = fault_steps.(step) && not !fired then begin
           fired := true;
           true
         end
         else false));
  (match assign env [ Router.must_before a b ] with
  | Error Error.Timeout -> ()
  | Ok _ -> Alcotest.fail "faulted commit reported success"
  | Error e -> Alcotest.failf "faulted commit: unexpected %a" Error.pp e);
  Alcotest.(check bool) "fault step reached" true !fired;
  Router.set_fault_injection rt None;
  (* the aborted commit left nothing behind *)
  Alcotest.(check int) "only the pre-existing edge" 1 (Router.cross_edges rt);
  Alcotest.(check (list relation)) "no observable half-edge"
    [ Order.Concurrent; Order.Concurrent ]
    (ok (query env [ (a, b); (b, a) ]));
  Alcotest.(check (list (pair int int))) "frontier restored"
    [ (0, 1); (1, 0) ]
    (Router.frontier rt);
  (* and the edge still commits once the fault is gone *)
  Alcotest.(check (list outcome)) "retry applies" [ Order.Applied ]
    (ok (assign env [ Router.must_before a b ]));
  Alcotest.(check (list relation)) "retry ordered" [ Order.Before ]
    (ok (query env [ (a, b) ]));
  Alcotest.(check int) "consistent" 0 (Router.inconsistencies rt)

let test_abort_every_step () =
  Array.iteri (fun step _ -> check_abort_invariant step 11L) fault_steps

let prop_abort_no_half_edge =
  QCheck2.Test.make
    ~name:"aborted two-shard commit leaves no dangling half-edge" ~count:14
    QCheck2.Gen.(pair (int_bound 6) (int_range 1 1000))
    (fun (step, salt) ->
      check_abort_invariant step (Int64.of_int ((2 * salt) + 1));
      true)

(* ---------- merged stats ---------- *)

let test_merged_stats () =
  Kronos_metrics.set_enabled true;
  let env = make_env () in
  let rt = router env in
  let a = mint_on env 0 and b = mint_on env 1 in
  ignore (ok (assign env [ Router.must_before a b ]));
  let per_shard =
    await env (fun k ->
        Router.merged_stats rt ~timeout:5.0
          ~targets:(Fed.stats_targets env.fed) k)
  in
  Alcotest.(check (list int)) "both shards answered" [ 0; 1 ]
    (List.map fst per_shard);
  let merged = Router.merge_samples per_shard in
  let value name = List.assoc_opt name merged in
  Alcotest.(check (option (float 0.0))) "shard count" (Some 2.0)
    (value "fed.shards");
  let has prefix =
    List.exists (fun (n, _) -> String.starts_with ~prefix n) merged
  in
  Alcotest.(check bool) "per-shard series" true (has "shard0." && has "shard1.");
  Alcotest.(check bool) "summed aggregates" true (has "fed.");
  (* every per-shard series has a summed counterpart under fed. *)
  List.iter
    (fun (n, _) ->
      if String.starts_with ~prefix:"shard0." n then
        let base = String.sub n 7 (String.length n - 7) in
        Alcotest.(check bool) ("fed aggregate for " ^ base) true
          (List.mem_assoc ("fed." ^ base) merged))
    merged

(* ---------- the nemesis harness ---------- *)

(* One scripted federated run under crash and partition nemeses.  Returns
   a textual trace (virtual timestamps included) for the determinism gate
   and asserts the ordering invariants:

   - every acked cross or intra edge is queryable as [Before] afterwards
     (nothing acked is lost, despite a replica crash and a partition);
   - [Before] answers are explainable: they lie within the closure of
     acked plus possibly-applied (timed-out intra) constraints — a
     half-applied cross commit would show up as an unexplainable order;
   - antisymmetry holds for every pair (no cycle was ever admitted);
   - the router observed no inconsistency. *)
let run_nemesis ~seed =
  let env = make_env ~seed () in
  let rt = router env in
  let trace = ref [] in
  let emit fmt =
    Printf.ksprintf
      (fun s ->
        trace := Printf.sprintf "%8.4f %s" (Sim.now env.sim) s :: !trace)
      fmt
  in
  let per_shard = 10 in
  let ev =
    Array.init 2 (fun s -> Array.init per_shard (fun _ -> mint_on env s))
  in
  let node fid =
    (* dense node id for the closure matrix *)
    let s = Fid.shard fid in
    let arr = ev.(s) in
    let rec idx i = if Fid.equal arr.(i) fid then i else idx (i + 1) in
    (s * per_shard) + idx 0
  in
  let n = 2 * per_shard in
  let acked = Array.make_matrix n n false in
  let maybe = Array.make_matrix n n false in
  let ops =
    List.init 30 (fun i ->
        match i mod 3 with
        | 0 -> (ev.(0).(i / 3 mod per_shard), ev.(1).((7 * i / 3) mod per_shard))
        | 1 ->
          (ev.(1).(((5 * i) + 1) mod per_shard), ev.(0).(((11 * i) + 2) mod per_shard))
        | _ ->
          let s = i / 3 mod 2 in
          (ev.(s).((3 * i) mod per_shard), ev.(s).(((3 * i) + 4) mod per_shard)))
  in
  let everyone_else =
    [ 100; 101; 102; 200; 202; 1000; 1001; 2000; 2001; 2002 ]
  in
  List.iteri
    (fun i (x, y) ->
      (match i with
      | 8 ->
        emit "nemesis: crash replica 101 (shard 0)";
        Server.crash (Option.get (Fed.cluster_of env.fed 0)) 101
      | 14 ->
        emit "nemesis: partition replica 201 (shard 1)";
        Net.partition env.raw [ 201 ] everyone_else
      | 20 ->
        emit "nemesis: heal";
        Net.heal env.raw
      | _ -> ());
      let u = node x and v = node y in
      match
        await env (Router.assign_order rt ~timeout:3.0 [ Router.must_before x y ])
      with
      | Ok [ o ] ->
        acked.(u).(v) <- true;
        maybe.(u).(v) <- true;
        emit "op %02d %s->%s: %s" i (Fid.to_string x) (Fid.to_string y)
          (Format.asprintf "%a" Order.pp_outcome o)
      | Ok _ -> Alcotest.fail "single-spec batch returned a non-singleton"
      | Error (Error.Rejected r) ->
        emit "op %02d %s->%s: rejected %s" i (Fid.to_string x) (Fid.to_string y)
          (Format.asprintf "%a" Order.pp_assign_error r)
      | Error Error.Timeout ->
        (* an intra-shard assign that timed out may still have applied on
           the chain; a cross commit rolls back, so it may not *)
        if Fid.shard x = Fid.shard y then maybe.(u).(v) <- true;
        emit "op %02d %s->%s: timeout" i (Fid.to_string x) (Fid.to_string y)
      | Error (Error.Proof_invalid _) ->
        Alcotest.fail "assign cannot fail proof verification")
    ops;
  Sim.run ~until:(Sim.now env.sim +. 5.0) env.sim;
  (* transitive closures of the acked (lower bound) and possibly-applied
     (upper bound) edge sets *)
  let close m =
    for k = 0 to n - 1 do
      for i = 0 to n - 1 do
        if m.(i).(k) then
          for j = 0 to n - 1 do
            if m.(k).(j) then m.(i).(j) <- true
          done
      done
    done
  in
  close acked;
  close maybe;
  let fid_of id = ev.(id / per_shard).(id mod per_shard) in
  let pairs = ref [] in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then pairs := (u, v) :: !pairs
    done
  done;
  let pairs = List.rev !pairs in
  let rels =
    ok
      (await env
         (Router.query_order rt ~timeout:10.0
            (List.map (fun (u, v) -> (fid_of u, fid_of v)) pairs)))
  in
  let rel = Hashtbl.create (n * n) in
  List.iter2 (fun (u, v) r -> Hashtbl.replace rel (u, v) r) pairs rels;
  List.iter2
    (fun (u, v) r ->
      let name = Printf.sprintf "pair %d,%d" u v in
      (* acked order is never lost *)
      if acked.(u).(v) then Alcotest.check relation name Order.Before r;
      (* observed order is always explainable *)
      (match r with
      | Order.Before ->
        Alcotest.(check bool) (name ^ " explainable") true maybe.(u).(v)
      | Order.After ->
        Alcotest.(check bool) (name ^ " explainable") true maybe.(v).(u)
      | Order.Concurrent | Order.Same -> ());
      (* antisymmetry: the reverse pair answers the flipped relation *)
      Alcotest.check relation (name ^ " antisymmetric")
        (Order.flip_relation r)
        (Hashtbl.find rel (v, u)))
    pairs rels;
  Alcotest.(check int) "router saw no inconsistency" 0
    (Router.inconsistencies rt);
  emit "final: %d cross edges (%d internal)" (Router.cross_edges rt)
    (Router.internal_edges rt);
  List.rev !trace

let test_nemesis_harness () =
  let trace = run_nemesis ~seed:42L in
  Alcotest.(check bool) "trace recorded" true (List.length trace > 30)

let test_nemesis_determinism () =
  Alcotest.(check (list string)) "bit-identical reruns"
    (run_nemesis ~seed:42L) (run_nemesis ~seed:42L)

(* Write scaling graduated to the smoke bench: `make bench-smoke` records
   the deterministic 4-vs-1-shard ratio as [fed.write_scaling] and
   `make bench-check` holds it above a hard 2x floor. *)

let suites =
  [
    ( "federation.ring",
      [
        Alcotest.test_case "basics" `Quick test_ring_basics;
        QCheck_alcotest.to_alcotest prop_ring_remap;
      ] );
    ( "federation.commit",
      [
        Alcotest.test_case "cross edge commit" `Quick test_cross_edge_commit;
        Alcotest.test_case "conflict refused" `Quick test_cross_edge_conflict;
        Alcotest.test_case "racing conflicting edges" `Quick
          test_concurrent_conflicting_edges;
        Alcotest.test_case "mixed batch" `Quick test_mixed_batch_atomiclike;
        Alcotest.test_case "abort at every step" `Quick test_abort_every_step;
        Alcotest.test_case "dump/restore handoff" `Quick
          test_dump_restore_handoff;
        QCheck_alcotest.to_alcotest prop_abort_no_half_edge;
      ] );
    ( "federation.closure",
      [
        Alcotest.test_case "three-shard transitivity" `Quick
          test_reflection_transitivity;
        Alcotest.test_case "intra assign connects portals" `Quick
          test_intra_assign_connects_portals;
        Alcotest.test_case "frontier short-circuit" `Quick
          test_frontier_short_circuit;
      ] );
    ( "federation.stats",
      [ Alcotest.test_case "merged registry view" `Quick test_merged_stats ] );
    ( "federation.nemesis",
      [
        Alcotest.test_case "crash and partition invariants" `Slow
          test_nemesis_harness;
        Alcotest.test_case "deterministic reruns" `Slow
          test_nemesis_determinism;
      ] );
  ]
