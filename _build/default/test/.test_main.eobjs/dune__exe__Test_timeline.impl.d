test/test_timeline.ml: Alcotest Array Engine Gen Kronos Kronos_timeline List Option Order QCheck2 QCheck_alcotest String Test Timeline
