test/test_simnet.ml: Alcotest Fun Heap Int64 Kronos_simnet List Net Rng Sim
