test/test_catocs.ml: Alcotest Fail_safe Fire_alarm Int64 Kronos_catocs Printf Shop_floor
