test/test_service.ml: Alcotest Client Engine Event_id Kronos Kronos_service Kronos_simnet Kronos_wire List Net Order Server Sim
