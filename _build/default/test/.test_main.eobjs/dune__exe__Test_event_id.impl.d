test/test_event_id.ml: Alcotest Event_id Gen Int64 Kronos List QCheck2 QCheck_alcotest Test
