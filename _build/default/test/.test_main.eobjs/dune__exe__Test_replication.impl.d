test/test_replication.ml: Alcotest Array Chain Kronos_replication Kronos_simnet List Net Printf Proxy Sim String
