test/test_service_queue.ml: Alcotest Kronos_simnet List Printf Service_queue Sim Unix
