test/test_engine.ml: Alcotest Array Engine Event_id Gen Graph Kronos List Order QCheck2 QCheck_alcotest Result Test
