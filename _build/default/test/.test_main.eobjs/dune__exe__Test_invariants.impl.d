test/test_invariants.ml: Alcotest Array Engine Event_id Fun Gen Graph Kronos List Order QCheck2 QCheck_alcotest Test
