test/test_kvstore.ml: Alcotest Event_id Kronos Kronos_kvstore Kronos_simnet Kv_client Kv_msg List Net Router Shard Sim
