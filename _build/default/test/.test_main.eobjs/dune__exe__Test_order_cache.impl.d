test/test_order_cache.ml: Alcotest Array Engine Event_id Gen Kronos List Order Order_cache QCheck2 QCheck_alcotest Test
