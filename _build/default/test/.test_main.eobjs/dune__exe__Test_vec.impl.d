test/test_vec.ml: Alcotest Gen Int_vec Kronos List QCheck2 QCheck_alcotest Test Vec
