test/test_graphstore.ml: Alcotest Array G_msg Int Kgraph Kronos_graphstore Kronos_replication Kronos_service Kronos_simnet Kshard Lgraph List Lshard Net Sim
