test/test_vclock.ml: Alcotest Array Format Kronos_vclock Lamport Vector_clock
