test/test_graph.ml: Alcotest Array Event_id Gen Graph Kronos List Order QCheck2 QCheck_alcotest Test
