test/test_fault_injection.ml: Alcotest Array Chain Gen Kronos_replication Kronos_simnet Kronos_wire List Net Proxy QCheck2 QCheck_alcotest Sim String Test
