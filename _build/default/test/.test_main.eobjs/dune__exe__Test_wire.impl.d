test/test_wire.ml: Alcotest Codec Event_id Frame Gen Kronos Kronos_wire List Message Order QCheck2 QCheck_alcotest String Test
