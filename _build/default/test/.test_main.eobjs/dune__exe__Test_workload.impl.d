test/test_workload.ml: Alcotest Array Bank Float Graph_gen Hashtbl Int64 Kronos_simnet Kronos_workload List Printf QCheck2 QCheck_alcotest Rng Zipf
