test/test_sparse_set.ml: Alcotest Gen Int Kronos List Printf QCheck2 QCheck_alcotest Set Sparse_set Test
