open Kronos
open Kronos_timeline

let texts messages = List.map (fun m -> m.Timeline.text) messages

let make_network () =
  let t = Timeline.create () in
  Timeline.add_friendship t "alice" "bob";
  Timeline.add_friendship t "alice" "carol";
  t

let test_post_fanout () =
  let t = make_network () in
  ignore (Timeline.post t ~author:"alice" ~text:"hi");
  Alcotest.(check (list string)) "alice sees it" [ "hi" ]
    (texts (Timeline.render t ~user:"alice"));
  Alcotest.(check (list string)) "bob sees it" [ "hi" ]
    (texts (Timeline.render t ~user:"bob"));
  Alcotest.(check (list string)) "carol sees it" [ "hi" ]
    (texts (Timeline.render t ~user:"carol"));
  Alcotest.(check (list string)) "stranger sees nothing" []
    (texts (Timeline.render t ~user:"mallory"))

let test_reply_ordering () =
  let t = make_network () in
  let question = Timeline.post t ~author:"alice" ~text:"brunch?" in
  let answer = Timeline.reply t ~author:"bob" ~text:"yes!" ~in_reply_to:question in
  ignore (Timeline.reply t ~author:"alice" ~text:"11am" ~in_reply_to:answer);
  Alcotest.(check (list string)) "conversation in order"
    [ "brunch?"; "yes!"; "11am" ]
    (texts (Timeline.render t ~user:"alice"));
  (* the conversation is pinned in Kronos *)
  match
    Engine.query_order (Timeline.engine t)
      [ (question.Timeline.event, answer.Timeline.event) ]
  with
  | Ok [ Order.Before ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "reply must be ordered after its message"

let test_unrelated_posts_stay_concurrent () =
  let t = make_network () in
  let a = Timeline.post t ~author:"alice" ~text:"A" in
  let b = Timeline.post t ~author:"carol" ~text:"B" in
  match
    Engine.query_order (Timeline.engine t)
      [ (a.Timeline.event, b.Timeline.event) ]
  with
  | Ok [ Order.Concurrent ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "independent posts must remain concurrent"

(* The paper's motivating bug: a reply whose message arrives later in the
   inbox must still render below it. *)
let test_out_of_order_arrival () =
  (* build the conversation on a timeline where the reply lands first by
     constructing the arrival order explicitly: carol is only friends with
     alice, bob's messages reach carol only via... use a direct scenario:
     post, reply, then verify rendering is by order, not id, when we reverse
     the raw arrival by posting to a fresh observer *)
  let t = Timeline.create () in
  Timeline.add_friendship t "alice" "bob";
  let m1 = Timeline.post t ~author:"alice" ~text:"first" in
  let m2 = Timeline.reply t ~author:"bob" ~text:"second" ~in_reply_to:m1 in
  let m3 = Timeline.reply t ~author:"alice" ~text:"third" ~in_reply_to:m2 in
  ignore m3;
  (* the raw arrival order is already m1 m2 m3 here; check the sort is
     stable and correct *)
  Alcotest.(check (list string)) "sorted" [ "first"; "second"; "third" ]
    (texts (Timeline.render t ~user:"bob"))

let test_interleaved_conversations () =
  let t = make_network () in
  let q1 = Timeline.post t ~author:"alice" ~text:"Q1" in
  let q2 = Timeline.post t ~author:"carol" ~text:"Q2" in
  ignore (Timeline.reply t ~author:"bob" ~text:"A1" ~in_reply_to:q1);
  ignore (Timeline.reply t ~author:"alice" ~text:"A2" ~in_reply_to:q2);
  let rendered = texts (Timeline.render t ~user:"alice") in
  let index x = Option.get (List.find_index (String.equal x) rendered) in
  Alcotest.(check bool) "Q1 before A1" true (index "Q1" < index "A1");
  Alcotest.(check bool) "Q2 before A2" true (index "Q2" < index "A2");
  (* arrival order preserved among unordered messages *)
  Alcotest.(check bool) "Q1 before Q2 (arrival)" true (index "Q1" < index "Q2")

let prop_render_respects_order =
  let open QCheck2 in
  (* random mixes of posts and replies; rendering must always respect the
     committed order for every user *)
  let gen_ops =
    Gen.(list_size (int_bound 25)
           (pair (int_bound 2) (option (int_bound 30))))
  in
  Test.make ~name:"timeline render is a valid topological order" ~count:100
    gen_ops
    (fun ops ->
      let t = Timeline.create () in
      let users = [| "u0"; "u1"; "u2" |] in
      Timeline.add_friendship t "u0" "u1";
      Timeline.add_friendship t "u1" "u2";
      Timeline.add_friendship t "u0" "u2";
      let posted = ref [] in
      List.iter
        (fun (author_index, reply_to) ->
          let author = users.(author_index) in
          let message =
            match reply_to with
            | Some i when List.length !posted > 0 ->
              let target = List.nth !posted (i mod List.length !posted) in
              Timeline.reply t ~author ~text:"m" ~in_reply_to:target
            | Some _ | None -> Timeline.post t ~author ~text:"m"
          in
          posted := message :: !posted)
        ops;
      let engine = Timeline.engine t in
      List.for_all
        (fun user ->
          let rendered = Timeline.render t ~user in
          (* for every pair in rendered order, the later one must never be
             committed-before the earlier one *)
          let rec check = function
            | [] -> true
            | m :: rest ->
              List.for_all
                (fun later ->
                  match
                    Engine.query_order engine
                      [ (later.Timeline.event, m.Timeline.event) ]
                  with
                  | Ok [ Order.Before ] -> false
                  | Ok _ -> true
                  | Error _ -> false)
                rest
              && check rest
          in
          check rendered)
        (Array.to_list users))

let suites =
  [ ( "timeline",
      [
        Alcotest.test_case "post fanout" `Quick test_post_fanout;
        Alcotest.test_case "reply ordering" `Quick test_reply_ordering;
        Alcotest.test_case "unrelated stay concurrent" `Quick
          test_unrelated_posts_stay_concurrent;
        Alcotest.test_case "conversation renders in order" `Quick
          test_out_of_order_arrival;
        Alcotest.test_case "interleaved conversations" `Quick
          test_interleaved_conversations;
        QCheck_alcotest.to_alcotest prop_render_respects_order;
      ] );
  ]
