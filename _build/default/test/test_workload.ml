open Kronos_simnet
open Kronos_workload

let rng () = Rng.create ~seed:17L

let test_gnm_exact () =
  let g = Graph_gen.erdos_renyi_gnm ~rng:(rng ()) ~n:50 ~m:200 in
  Alcotest.(check int) "vertex count" 50 g.Graph_gen.n;
  Alcotest.(check int) "edge count" 200 (Array.length g.Graph_gen.edges);
  (* no self loops, no duplicates, canonical orientation *)
  let seen = Hashtbl.create 256 in
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "no self loop" true (u <> v);
      Alcotest.(check bool) "canonical" true (u < v);
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen (u, v));
      Hashtbl.add seen (u, v) ())
    g.Graph_gen.edges

let test_gnm_bounds () =
  Alcotest.check_raises "too many edges"
    (Invalid_argument "Graph_gen.erdos_renyi_gnm: m out of range") (fun () ->
      ignore (Graph_gen.erdos_renyi_gnm ~rng:(rng ()) ~n:3 ~m:4))

let test_gnp_expected_density () =
  let n = 200 in
  let p = 0.05 in
  let g = Graph_gen.erdos_renyi_gnp ~rng:(rng ()) ~n ~p in
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let got = float_of_int (Array.length g.Graph_gen.edges) in
  Alcotest.(check bool)
    (Printf.sprintf "edge count near expectation (%f vs %f)" got expected)
    true
    (Float.abs (got -. expected) < 0.25 *. expected)

let test_preferential_attachment () =
  let g = Graph_gen.preferential_attachment ~rng:(rng ()) ~n:2000 ~edges_per_vertex:5 in
  Alcotest.(check int) "vertices" 2000 g.Graph_gen.n;
  let avg = Graph_gen.average_degree g in
  Alcotest.(check bool)
    (Printf.sprintf "average degree ~10 (got %f)" avg)
    true
    (avg > 8.0 && avg < 12.0);
  (* heavy tail: hubs should greatly exceed the average degree *)
  Alcotest.(check bool) "hubs exist" true
    (float_of_int (Graph_gen.max_degree g) > 4.0 *. avg)

let test_twitter_like_scaled () =
  let g = Graph_gen.twitter_like ~rng:(rng ()) ~scale:0.02 () in
  Alcotest.(check bool) "scaled size" true (g.Graph_gen.n > 1000 && g.Graph_gen.n < 2000);
  let avg = Graph_gen.average_degree g in
  Alcotest.(check bool)
    (Printf.sprintf "average degree near paper's 21.7 (got %f)" avg)
    true
    (avg > 17.0 && avg < 26.0)

let test_adjacency_consistent () =
  let g = Graph_gen.erdos_renyi_gnm ~rng:(rng ()) ~n:30 ~m:60 in
  let adj = Graph_gen.adjacency g in
  let degree_sum = Array.fold_left (fun acc l -> acc + List.length l) 0 adj in
  Alcotest.(check int) "degree sum = 2m" 120 degree_sum;
  Array.iter
    (fun (u, v) ->
      Alcotest.(check bool) "u lists v" true (List.mem v adj.(u));
      Alcotest.(check bool) "v lists u" true (List.mem u adj.(v)))
    g.Graph_gen.edges

let test_zipf_skew () =
  let z = Zipf.create ~n:100 ~exponent:1.0 () in
  let r = rng () in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let k = Zipf.sample z r in
    Alcotest.(check bool) "in range" true (k >= 0 && k < 100);
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(50));
  Alcotest.(check bool) "skew roughly harmonic" true
    (float_of_int counts.(0) > 5.0 *. float_of_int (max 1 counts.(20)))

let test_zipf_uniform () =
  let z = Zipf.create ~n:10 ~exponent:0.0 () in
  let r = rng () in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    counts.(Zipf.sample z r) <- counts.(Zipf.sample z r) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 500 && c < 1500))
    counts

let test_bank_transfers () =
  let bank = Bank.create ~rng:(rng ()) ~accounts:10 ~initial_balance:500 () in
  Alcotest.(check int) "total" 5000 (Bank.total_money bank);
  for _ = 1 to 1000 do
    let t = Bank.next_transfer bank in
    Alcotest.(check bool) "distinct accounts" true
      (t.Bank.from_account <> t.Bank.to_account);
    Alcotest.(check bool) "accounts in range" true
      (t.Bank.from_account >= 0 && t.Bank.from_account < 10
       && t.Bank.to_account >= 0 && t.Bank.to_account < 10);
    Alcotest.(check bool) "amount positive" true (t.Bank.amount > 0)
  done;
  Alcotest.(check string) "key format" "acct-000003" (Bank.account_key 3)

let prop_generators_deterministic =
  QCheck2.Test.make ~name:"generators deterministic under seed" ~count:20
    QCheck2.Gen.(int_range 1 1000)
    (fun seed ->
      let seed = Int64.of_int seed in
      let g1 =
        Graph_gen.erdos_renyi_gnm ~rng:(Rng.create ~seed) ~n:40 ~m:100
      in
      let g2 =
        Graph_gen.erdos_renyi_gnm ~rng:(Rng.create ~seed) ~n:40 ~m:100
      in
      g1.Graph_gen.edges = g2.Graph_gen.edges)

let suites =
  [ ( "workload",
      [
        Alcotest.test_case "gnm exact" `Quick test_gnm_exact;
        Alcotest.test_case "gnm bounds" `Quick test_gnm_bounds;
        Alcotest.test_case "gnp density" `Quick test_gnp_expected_density;
        Alcotest.test_case "preferential attachment" `Quick test_preferential_attachment;
        Alcotest.test_case "twitter-like scaled" `Quick test_twitter_like_scaled;
        Alcotest.test_case "adjacency consistent" `Quick test_adjacency_consistent;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform;
        Alcotest.test_case "bank transfers" `Quick test_bank_transfers;
        QCheck_alcotest.to_alcotest prop_generators_deterministic;
      ] );
  ]
