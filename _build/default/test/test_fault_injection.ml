(* Failure-injection tests beyond single crashes: partitions, double
   failures, and fuzzed wire input. *)

open Kronos_simnet
open Kronos_replication

let register_sm () =
  let value = ref 0 in
  fun cmd ->
    match String.split_on_char ':' cmd with
    | [ "add"; n ] ->
      value := !value + int_of_string n;
      string_of_int !value
    | [ "get" ] -> string_of_int !value
    | _ -> "error"

let coordinator_addr = 1000

type cluster = {
  sim : Sim.t;
  net : Chain.msg Net.t;
  replicas : Chain.Replica.t array;
  coordinator : Chain.Coordinator.t;
}

let make_cluster ?(n = 3) ?(seed = 7L) () =
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let chain = List.init n (fun i -> i) in
  let config = { Chain.version = 0; chain = [] } in
  let replicas =
    Array.init n (fun i ->
        Chain.Replica.create ~net ~addr:i ~apply:(register_sm ()) ~config ())
  in
  let coordinator =
    Chain.Coordinator.create ~net ~addr:coordinator_addr ~chain
      ~ping_interval:0.1 ~failure_timeout:0.35 ()
  in
  { sim; net; replicas; coordinator }

let make_proxy ?(addr = 2000) cluster =
  Proxy.create ~net:cluster.net ~addr ~coordinator:coordinator_addr
    ~request_timeout:0.4 ()

(* A replica partitioned away is removed from the chain; writes keep
   committing on the majority side, and the client never observes an
   error. *)
let test_partitioned_replica_removed () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  let done1 = ref None in
  Proxy.write proxy "add:1" (fun r -> done1 := Some r);
  Sim.run ~until:1.0 c.sim;
  Alcotest.(check (option string)) "first write" (Some "1") !done1;
  (* cut replica 1 off from everyone, including the coordinator *)
  Net.partition c.net [ 1 ] [ 0; 2; coordinator_addr; 2000 ];
  Sim.run ~until:3.0 c.sim;
  let cfg = Chain.Coordinator.config c.coordinator in
  Alcotest.(check (list int)) "partitioned replica removed" [ 0; 2 ]
    cfg.Chain.chain;
  let done2 = ref None in
  Proxy.write proxy "add:10" (fun r -> done2 := Some r);
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "write after partition" (Some "11") !done2;
  (* healing does not bring the removed replica back into the chain (it
     must rejoin explicitly), and does not disturb the survivors *)
  Net.heal c.net;
  let done3 = ref None in
  Proxy.write proxy "add:100" (fun r -> done3 := Some r);
  Sim.run ~until:9.0 c.sim;
  Alcotest.(check (option string)) "write after heal" (Some "111") !done3;
  Alcotest.(check (list int)) "chain unchanged" [ 0; 2 ]
    (Chain.Coordinator.config c.coordinator).Chain.chain

(* Two of three replicas fail (the design point: f+1 replicas tolerate f):
   the last replica carries the service alone. *)
let test_double_failure () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:5" ignore;
  Sim.run ~until:1.0 c.sim;
  Chain.Replica.crash c.replicas.(0);
  Chain.Replica.crash c.replicas.(2);
  Sim.run ~until:3.0 c.sim;
  Alcotest.(check (list int)) "one survivor" [ 1 ]
    (Chain.Coordinator.config c.coordinator).Chain.chain;
  let result = ref None in
  Proxy.write proxy "add:2" (fun r -> result := Some r);
  Sim.run ~until:6.0 c.sim;
  Alcotest.(check (option string)) "single-replica chain serves" (Some "7") !result;
  (* reads too *)
  let answer = ref None in
  Proxy.read proxy "get" (fun r -> answer := Some r);
  Sim.run ~until:8.0 c.sim;
  Alcotest.(check (option string)) "read" (Some "7") !answer

(* Simultaneous crash + rejoin churn: the service must converge. *)
let test_churn () =
  let c = make_cluster ~n:3 ~seed:15L () in
  let proxy = make_proxy c in
  let completed = ref 0 in
  let target = 30 in
  let rec loop i =
    if i < target then
      Proxy.write proxy "add:1" (fun _ ->
          incr completed;
          loop (i + 1))
  in
  loop 0;
  ignore
    (Sim.schedule c.sim ~delay:0.5 (fun () -> Chain.Replica.crash c.replicas.(2)));
  ignore
    (Sim.schedule c.sim ~delay:2.5 (fun () ->
         let fresh =
           Chain.Replica.create ~net:c.net ~addr:9 ~apply:(register_sm ())
             ~config:{ Chain.version = 0; chain = [] } ()
         in
         Chain.Coordinator.join c.coordinator fresh));
  Sim.run ~until:30.0 c.sim;
  Alcotest.(check int) "all writes completed" target !completed;
  let answer = ref None in
  Proxy.read proxy "get" (fun r -> answer := Some r);
  Sim.run ~until:32.0 c.sim;
  Alcotest.(check (option string)) "exactly-once through churn"
    (Some (string_of_int target)) !answer

(* Proxy behaviours not covered elsewhere. *)
let test_proxy_nth_clamping () =
  let c = make_cluster ~n:3 () in
  let proxy = make_proxy c in
  Proxy.write proxy "add:4" ignore;
  Sim.run ~until:1.0 c.sim;
  let answers = ref [] in
  (* out-of-range Nth must clamp, not crash *)
  Proxy.read proxy ~target:(Proxy.Nth 99) "get" (fun r -> answers := r :: !answers);
  Proxy.read proxy ~target:(Proxy.Nth (-5)) "get" (fun r -> answers := r :: !answers);
  Proxy.read proxy ~target:Proxy.Any "get" (fun r -> answers := r :: !answers);
  Sim.run ~until:3.0 c.sim;
  Alcotest.(check (list string)) "all clamped reads answered" [ "4"; "4"; "4" ]
    !answers;
  Alcotest.(check int) "config learned" 1 (Proxy.config_version proxy)

(* Fuzz: decoding arbitrary bytes must never raise anything except
   Codec.Decode_error, and valid encodings always survive a re-encode. *)
let prop_decode_fuzz =
  let open QCheck2 in
  Test.make ~name:"wire decode never crashes on garbage" ~count:500
    Gen.(string_size (int_bound 60))
    (fun bytes ->
      let safe decode =
        match decode bytes with
        | (_ : Kronos_wire.Message.request) -> true
        | exception Kronos_wire.Codec.Decode_error _ -> true
      in
      let safe_resp () =
        match Kronos_wire.Message.decode_response bytes with
        | (_ : Kronos_wire.Message.response) -> true
        | exception Kronos_wire.Codec.Decode_error _ -> true
      in
      safe Kronos_wire.Message.decode_request && safe_resp ())

let suites =
  [ ( "fault_injection",
      [
        Alcotest.test_case "partitioned replica removed" `Quick
          test_partitioned_replica_removed;
        Alcotest.test_case "double failure" `Quick test_double_failure;
        Alcotest.test_case "churn" `Quick test_churn;
        Alcotest.test_case "proxy nth clamping" `Quick test_proxy_nth_clamping;
        QCheck_alcotest.to_alcotest prop_decode_fuzz;
      ] );
  ]
