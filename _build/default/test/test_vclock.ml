open Kronos_vclock

let test_lamport_monotone () =
  let c = Lamport.create ~process:0 in
  let s1 = Lamport.tick c in
  let s2 = Lamport.tick c in
  Alcotest.(check bool) "monotone" true (Lamport.before s1 s2)

let test_lamport_message_order () =
  let a = Lamport.create ~process:0 in
  let b = Lamport.create ~process:1 in
  let sent = Lamport.send a in
  let received = Lamport.receive b sent in
  Alcotest.(check bool) "send before receive" true (Lamport.before sent received)

let test_lamport_total_order () =
  (* two stamps are never equal in the induced total order *)
  let a = Lamport.create ~process:0 in
  let b = Lamport.create ~process:1 in
  let sa = Lamport.tick a in
  let sb = Lamport.tick b in
  Alcotest.(check bool) "tie broken by process" true
    (Lamport.compare_stamp sa sb <> 0)

(* The false-positive the paper describes: two causally unrelated events get
   ordered anyway by Lamport clocks. *)
let test_lamport_false_positive () =
  let a = Lamport.create ~process:0 in
  let b = Lamport.create ~process:1 in
  let sa = Lamport.tick a in
  ignore (Lamport.tick b);
  let sb = Lamport.tick b in
  (* no communication happened, yet Lamport orders sa before sb *)
  Alcotest.(check bool) "spurious order" true (Lamport.before sa sb)

let relation =
  Alcotest.testable
    (fun ppf -> function
      | Vector_clock.Before -> Format.pp_print_string ppf "before"
      | Vector_clock.After -> Format.pp_print_string ppf "after"
      | Vector_clock.Concurrent -> Format.pp_print_string ppf "concurrent"
      | Vector_clock.Equal -> Format.pp_print_string ppf "equal")
    ( = )

let test_vector_concurrent () =
  let a = Vector_clock.create ~processes:2 ~process:0 in
  let b = Vector_clock.create ~processes:2 ~process:1 in
  let sa = Vector_clock.tick a in
  let sb = Vector_clock.tick b in
  Alcotest.check relation "independent ticks concurrent" Vector_clock.Concurrent
    (Vector_clock.compare_stamp sa sb)

let test_vector_happens_before () =
  let a = Vector_clock.create ~processes:2 ~process:0 in
  let b = Vector_clock.create ~processes:2 ~process:1 in
  let sent = Vector_clock.send a in
  let received = Vector_clock.receive b sent in
  Alcotest.check relation "send before receive" Vector_clock.Before
    (Vector_clock.compare_stamp sent received);
  Alcotest.check relation "flipped" Vector_clock.After
    (Vector_clock.compare_stamp received sent);
  Alcotest.check relation "self equal" Vector_clock.Equal
    (Vector_clock.compare_stamp sent sent)

(* The early-assignment / false-positive weakness relative to Kronos: once a
   process receives ANY message, everything it later does is ordered after
   that message, even if causally unrelated at the application level. *)
let test_vector_overapproximates () =
  let a = Vector_clock.create ~processes:2 ~process:0 in
  let b = Vector_clock.create ~processes:2 ~process:1 in
  let sent = Vector_clock.send a in
  ignore (Vector_clock.receive b sent);
  (* an unrelated local event on b after the receive *)
  let unrelated = Vector_clock.tick b in
  Alcotest.check relation "spuriously ordered" Vector_clock.Before
    (Vector_clock.compare_stamp sent unrelated)

let test_vector_transitivity () =
  let n = 3 in
  let clocks = Array.init n (fun p -> Vector_clock.create ~processes:n ~process:p) in
  let s0 = Vector_clock.send clocks.(0) in
  let s1 = Vector_clock.receive clocks.(1) s0 in
  let s1' = Vector_clock.send clocks.(1) in
  let s2 = Vector_clock.receive clocks.(2) s1' in
  Alcotest.check relation "transitive chain" Vector_clock.Before
    (Vector_clock.compare_stamp s0 s2);
  ignore s1

let test_vector_dimension_mismatch () =
  let a = Vector_clock.create ~processes:2 ~process:0 in
  let b = Vector_clock.create ~processes:3 ~process:0 in
  let sa = Vector_clock.tick a in
  let sb = Vector_clock.tick b in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Vector_clock.compare_stamp: dimension mismatch")
    (fun () -> ignore (Vector_clock.compare_stamp sa sb))

let suites =
  [ ( "vclock",
      [
        Alcotest.test_case "lamport monotone" `Quick test_lamport_monotone;
        Alcotest.test_case "lamport message order" `Quick test_lamport_message_order;
        Alcotest.test_case "lamport total order" `Quick test_lamport_total_order;
        Alcotest.test_case "lamport false positive" `Quick test_lamport_false_positive;
        Alcotest.test_case "vector concurrent" `Quick test_vector_concurrent;
        Alcotest.test_case "vector happens-before" `Quick test_vector_happens_before;
        Alcotest.test_case "vector over-approximates" `Quick test_vector_overapproximates;
        Alcotest.test_case "vector transitivity" `Quick test_vector_transitivity;
        Alcotest.test_case "vector dimension mismatch" `Quick test_vector_dimension_mismatch;
      ] );
  ]
