open Kronos

let test_empty () =
  let s = Sparse_set.create 8 in
  Alcotest.(check int) "cardinal" 0 (Sparse_set.cardinal s);
  for i = 0 to 7 do
    Alcotest.(check bool) "mem" false (Sparse_set.mem s i)
  done

let test_add_mem () =
  let s = Sparse_set.create 8 in
  Sparse_set.add s 3;
  Sparse_set.add s 5;
  Alcotest.(check bool) "3 in" true (Sparse_set.mem s 3);
  Alcotest.(check bool) "5 in" true (Sparse_set.mem s 5);
  Alcotest.(check bool) "4 out" false (Sparse_set.mem s 4);
  Alcotest.(check int) "cardinal" 2 (Sparse_set.cardinal s)

let test_add_idempotent () =
  let s = Sparse_set.create 4 in
  Sparse_set.add s 2;
  Sparse_set.add s 2;
  Sparse_set.add s 2;
  Alcotest.(check int) "cardinal" 1 (Sparse_set.cardinal s)

let test_clear () =
  let s = Sparse_set.create 4 in
  Sparse_set.add s 0;
  Sparse_set.add s 1;
  Sparse_set.clear s;
  Alcotest.(check int) "cardinal" 0 (Sparse_set.cardinal s);
  Alcotest.(check bool) "0 out" false (Sparse_set.mem s 0);
  (* re-add after clear works and does not see ghosts *)
  Sparse_set.add s 1;
  Alcotest.(check bool) "1 in" true (Sparse_set.mem s 1);
  Alcotest.(check bool) "0 out" false (Sparse_set.mem s 0)

let test_clear_is_constant_state () =
  (* After many fill/clear cycles membership stays exact. *)
  let s = Sparse_set.create 16 in
  for round = 0 to 9 do
    Sparse_set.clear s;
    let member i = (i + round) mod 3 = 0 in
    for i = 0 to 15 do
      if member i then Sparse_set.add s i
    done;
    for i = 0 to 15 do
      Alcotest.(check bool)
        (Printf.sprintf "round %d elem %d" round i)
        (member i) (Sparse_set.mem s i)
    done
  done

let test_grow () =
  let s = Sparse_set.create 4 in
  Sparse_set.add s 1;
  Sparse_set.add s 3;
  Sparse_set.grow s 16;
  Alcotest.(check int) "capacity" 16 (Sparse_set.capacity s);
  Alcotest.(check bool) "1 kept" true (Sparse_set.mem s 1);
  Alcotest.(check bool) "3 kept" true (Sparse_set.mem s 3);
  Sparse_set.add s 12;
  Alcotest.(check bool) "12 in" true (Sparse_set.mem s 12);
  (* shrinking request is a no-op *)
  Sparse_set.grow s 2;
  Alcotest.(check int) "capacity kept" 16 (Sparse_set.capacity s)

let test_iter_insertion_order () =
  let s = Sparse_set.create 8 in
  List.iter (Sparse_set.add s) [ 5; 1; 7; 1; 2 ];
  let seen = ref [] in
  Sparse_set.iter (fun i -> seen := i :: !seen) s;
  Alcotest.(check (list int)) "order" [ 5; 1; 7; 2 ] (List.rev !seen)

let test_out_of_range () =
  let s = Sparse_set.create 4 in
  Alcotest.check_raises "add" (Invalid_argument "Sparse_set: element out of range")
    (fun () -> Sparse_set.add s 4);
  Alcotest.check_raises "mem" (Invalid_argument "Sparse_set: element out of range")
    (fun () -> ignore (Sparse_set.mem s (-1)))

(* Model-based property: a sparse set behaves like a Set of ints under a
   random program of add/clear operations. *)
let prop_model =
  let open QCheck2 in
  let cap = 64 in
  let op = Gen.(frequency [ (8, map (fun i -> `Add i) (int_bound (cap - 1)));
                            (1, return `Clear) ]) in
  Test.make ~name:"sparse_set matches Set model" ~count:300
    Gen.(list_size (int_bound 200) op)
    (fun ops ->
      let s = Sparse_set.create cap in
      let module IS = Set.Make (Int) in
      let model = ref IS.empty in
      List.iter
        (function
          | `Add i -> Sparse_set.add s i; model := IS.add i !model
          | `Clear -> Sparse_set.clear s; model := IS.empty)
        ops;
      let ok = ref (Sparse_set.cardinal s = IS.cardinal !model) in
      for i = 0 to cap - 1 do
        if Sparse_set.mem s i <> IS.mem i !model then ok := false
      done;
      !ok)

let suites =
  [ ( "sparse_set",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "add/mem" `Quick test_add_mem;
        Alcotest.test_case "add idempotent" `Quick test_add_idempotent;
        Alcotest.test_case "clear" `Quick test_clear;
        Alcotest.test_case "repeated clear cycles" `Quick test_clear_is_constant_state;
        Alcotest.test_case "grow" `Quick test_grow;
        Alcotest.test_case "iter insertion order" `Quick test_iter_insertion_order;
        Alcotest.test_case "out of range" `Quick test_out_of_range;
        QCheck_alcotest.to_alcotest prop_model;
      ] );
  ]
