open Kronos_simnet

let test_heap_order () =
  let h = Heap.create () in
  Heap.push h ~time:3.0 ~seq:1 "c";
  Heap.push h ~time:1.0 ~seq:2 "a";
  Heap.push h ~time:2.0 ~seq:3 "b";
  Heap.push h ~time:1.0 ~seq:4 "a2";
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | Some (_, _, v) -> popped := v :: !popped; drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string)) "order" [ "a"; "a2"; "b"; "c" ] (List.rev !popped)

let test_heap_tie_break_fifo () =
  let h = Heap.create () in
  for i = 0 to 99 do
    Heap.push h ~time:1.0 ~seq:i i
  done;
  for i = 0 to 99 do
    match Heap.pop h with
    | Some (_, _, v) -> Alcotest.(check int) "fifo" i v
    | None -> Alcotest.fail "heap exhausted early"
  done

let test_sim_ordering () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore (Sim.schedule sim ~delay:2.0 (fun () -> log := "b" :: !log));
  ignore (Sim.schedule sim ~delay:1.0 (fun () -> log := "a" :: !log));
  ignore (Sim.schedule sim ~delay:3.0 (fun () -> log := "c" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let log = ref [] in
  ignore
    (Sim.schedule sim ~delay:1.0 (fun () ->
         log := "outer" :: !log;
         ignore (Sim.schedule sim ~delay:0.5 (fun () -> log := "inner" :: !log))));
  Sim.run sim;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Sim.now sim)

let test_sim_cancel () =
  let sim = Sim.create () in
  let fired = ref false in
  let timer = Sim.schedule sim ~delay:1.0 (fun () -> fired := true) in
  Sim.cancel timer;
  Sim.cancel timer;
  Alcotest.(check int) "pending" 0 (Sim.pending sim);
  Sim.run sim;
  Alcotest.(check bool) "not fired" false !fired

let test_sim_run_until () =
  let sim = Sim.create () in
  let count = ref 0 in
  ignore (Sim.every sim ~period:1.0 (fun () -> incr count));
  Sim.run ~until:5.5 sim;
  Alcotest.(check int) "five ticks" 5 !count;
  Alcotest.(check (float 1e-9)) "clock advanced to until" 5.5 (Sim.now sim);
  Sim.run ~until:7.0 sim;
  (* ticks at t=6.0 and t=7.0 both fire *)
  Alcotest.(check int) "continues" 7 !count

let test_sim_every_cancel () =
  let sim = Sim.create () in
  let count = ref 0 in
  let handle = Sim.every sim ~period:1.0 (fun () -> incr count) in
  Sim.run ~until:3.5 sim;
  Sim.cancel handle;
  Sim.run ~until:10.0 sim;
  Alcotest.(check int) "stopped" 3 !count

let test_rng_determinism () =
  let a = Rng.create ~seed:42L in
  let b = Rng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:43L in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 (Rng.create ~seed:42L) <> Rng.next_int64 c)

let test_rng_split_independence () =
  let root = Rng.create ~seed:7L in
  let s1 = Rng.split root in
  let s2 = Rng.split root in
  Alcotest.(check bool) "streams differ" true (Rng.next_int64 s1 <> Rng.next_int64 s2)

let test_rng_ranges () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let i = Rng.int r 10 in
    Alcotest.(check bool) "int range" true (i >= 0 && i < 10);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 2.0);
    let e = Rng.exponential r ~mean:1.0 in
    Alcotest.(check bool) "exponential positive" true (e >= 0.0)
  done;
  Alcotest.check_raises "bad bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_net_delivery () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let received = ref [] in
  Net.register net 1 (fun ~src msg -> received := (src, msg) :: !received);
  Net.send net ~src:0 ~dst:1 "hello";
  Net.send net ~src:0 ~dst:1 "world";
  Sim.run sim;
  Alcotest.(check (list (pair int string))) "in order"
    [ (0, "hello"); (0, "world") ] (List.rev !received);
  Alcotest.(check int) "sent" 2 (Net.sent net);
  Alcotest.(check int) "delivered" 2 (Net.delivered net)

let test_net_fifo_under_jitter () =
  let sim = Sim.create ~seed:99L () in
  let net = Net.create ~latency:{ Net.base = 1e-3; jitter = 10e-3; drop = 0.0 } sim in
  let received = ref [] in
  Net.register net 1 (fun ~src:_ msg -> received := msg :: !received);
  for i = 0 to 49 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "fifo preserved" (List.init 50 Fun.id) (List.rev !received)

let test_net_no_fifo_can_reorder () =
  let sim = Sim.create ~seed:1L () in
  let net = Net.create ~fifo:false ~latency:{ Net.base = 0.0; jitter = 10e-3; drop = 0.0 } sim in
  let received = ref [] in
  Net.register net 1 (fun ~src:_ msg -> received := msg :: !received);
  for i = 0 to 49 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Sim.run sim;
  Alcotest.(check bool) "reordering observed" true
    (List.rev !received <> List.init 50 Fun.id)

let test_net_crash_drops () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Net.send net ~src:0 ~dst:1 "a";
  Net.unregister net 1;
  Sim.run sim;
  Alcotest.(check int) "in-flight dropped" 0 !received;
  Alcotest.(check int) "dropped counted" 1 (Net.dropped net);
  Alcotest.(check bool) "not registered" false (Net.is_registered net 1)

let test_net_partition_heal () =
  let sim = Sim.create () in
  let net = Net.create sim in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  Net.partition net [ 0 ] [ 1 ];
  Net.send net ~src:0 ~dst:1 "lost";
  Sim.run sim;
  Alcotest.(check int) "partitioned" 0 !received;
  Net.heal net;
  Net.send net ~src:0 ~dst:1 "found";
  Sim.run sim;
  Alcotest.(check int) "healed" 1 !received

let test_net_drop_probability () =
  let sim = Sim.create ~seed:3L () in
  let net = Net.create ~latency:{ Net.base = 1e-3; jitter = 0.0; drop = 0.5 } sim in
  let received = ref 0 in
  Net.register net 1 (fun ~src:_ _ -> incr received);
  for _ = 1 to 1000 do
    Net.send net ~src:0 ~dst:1 ()
  done;
  Sim.run sim;
  Alcotest.(check bool) "some dropped" true (!received < 1000);
  Alcotest.(check bool) "some delivered" true (!received > 0);
  Alcotest.(check bool) "roughly half" true (!received > 350 && !received < 650)

(* Determinism: the same seed yields the identical delivery trace. *)
let test_net_determinism () =
  let trace seed =
    let sim = Sim.create ~seed () in
    let net = Net.create ~latency:{ Net.base = 1e-3; jitter = 5e-3; drop = 0.1 } sim in
    let log = ref [] in
    for a = 0 to 3 do
      Net.register net a (fun ~src msg ->
          log := (Sim.now sim, src, a, msg) :: !log)
    done;
    let rng = Rng.create ~seed:(Int64.add seed 1L) in
    for i = 0 to 199 do
      Net.send net ~src:(Rng.int rng 4) ~dst:(Rng.int rng 4) i
    done;
    Sim.run sim;
    List.rev !log
  in
  Alcotest.(check bool) "identical traces" true (trace 11L = trace 11L);
  Alcotest.(check bool) "seed changes trace" true (trace 11L <> trace 12L)

let suites =
  [ ( "simnet",
      [
        Alcotest.test_case "heap order" `Quick test_heap_order;
        Alcotest.test_case "heap fifo ties" `Quick test_heap_tie_break_fifo;
        Alcotest.test_case "sim ordering" `Quick test_sim_ordering;
        Alcotest.test_case "sim nested schedule" `Quick test_sim_nested_schedule;
        Alcotest.test_case "sim cancel" `Quick test_sim_cancel;
        Alcotest.test_case "sim run until" `Quick test_sim_run_until;
        Alcotest.test_case "sim every cancel" `Quick test_sim_every_cancel;
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng split independence" `Quick test_rng_split_independence;
        Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
        Alcotest.test_case "net delivery" `Quick test_net_delivery;
        Alcotest.test_case "net fifo under jitter" `Quick test_net_fifo_under_jitter;
        Alcotest.test_case "net non-fifo reorders" `Quick test_net_no_fifo_can_reorder;
        Alcotest.test_case "net crash drops" `Quick test_net_crash_drops;
        Alcotest.test_case "net partition/heal" `Quick test_net_partition_heal;
        Alcotest.test_case "net drop probability" `Quick test_net_drop_probability;
        Alcotest.test_case "net determinism" `Quick test_net_determinism;
      ] );
  ]
