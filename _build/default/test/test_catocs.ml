open Kronos_catocs

(* With Kronos, the shop-floor machine must end in the commanded state for
   every seed; without it, the reordering channel breaks at least one. *)
let test_shop_floor_kronos_always_correct () =
  for seed = 1 to 20 do
    let outcome =
      Shop_floor.run ~kronos:true ~seed:(Int64.of_int seed) ~commands:25
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d correct" seed)
      true
      (Shop_floor.correct outcome)
  done

let test_shop_floor_baseline_fails_somewhere () =
  let failures = ref 0 in
  let reordering_observed = ref 0 in
  for seed = 1 to 20 do
    let outcome =
      Shop_floor.run ~kronos:false ~seed:(Int64.of_int seed) ~commands:25
    in
    if not (Shop_floor.correct outcome) then incr failures;
    reordering_observed := !reordering_observed + outcome.Shop_floor.reordered_deliveries
  done;
  Alcotest.(check bool) "channel reorders" true (!reordering_observed > 0);
  Alcotest.(check bool) "baseline misbehaves on some seed" true (!failures > 0)

let test_shop_floor_discards_stale () =
  let outcome = Shop_floor.run ~kronos:true ~seed:5L ~commands:40 in
  (* with heavy jitter, stale commands must actually have been discarded *)
  Alcotest.(check bool) "stale commands discarded" true
    (outcome.Shop_floor.commands_discarded > 0)

let test_fire_alarm_kronos_always_correct () =
  for seed = 1 to 20 do
    let outcome =
      Fire_alarm.run ~kronos:true ~seed:(Int64.of_int seed) ~locations:6 ~rounds:4
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d belief matches truth" seed)
      true
      (Fire_alarm.correct outcome);
    Alcotest.(check int) "no misattributions" 0 outcome.Fire_alarm.misattributions
  done

let test_fire_alarm_baseline_fails_somewhere () =
  let failures = ref 0 in
  for seed = 1 to 20 do
    let outcome =
      Fire_alarm.run ~kronos:false ~seed:(Int64.of_int seed) ~locations:6 ~rounds:4
    in
    if not (Fire_alarm.correct outcome) then incr failures
  done;
  Alcotest.(check bool) "baseline monitor loses fires on some seed" true
    (!failures > 0)

let test_fail_safe () =
  for seed = 1 to 20 do
    let outcome = Fail_safe.run ~seed:(Int64.of_int seed) ~cycles:8 in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d fail-safe correct" seed)
      true
      (Fail_safe.correct outcome);
    Alcotest.(check int) "one stop per cycle" 8 outcome.Fail_safe.stops_issued;
    Alcotest.(check int) "one start per cycle" 8 outcome.Fail_safe.starts_issued
  done

let suites =
  [ ( "catocs",
      [
        Alcotest.test_case "shop floor with kronos" `Quick
          test_shop_floor_kronos_always_correct;
        Alcotest.test_case "shop floor baseline fails" `Quick
          test_shop_floor_baseline_fails_somewhere;
        Alcotest.test_case "shop floor discards stale" `Quick
          test_shop_floor_discards_stale;
        Alcotest.test_case "fire alarm with kronos" `Quick
          test_fire_alarm_kronos_always_correct;
        Alcotest.test_case "fire alarm baseline fails" `Quick
          test_fire_alarm_baseline_fails_somewhere;
        Alcotest.test_case "fail-safe" `Quick test_fail_safe;
      ] );
  ]
