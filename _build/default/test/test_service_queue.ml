open Kronos_simnet

let test_fixed_serializes () =
  let sim = Sim.create () in
  let q = Service_queue.create sim in
  let log = ref [] in
  Service_queue.submit_fixed q ~cost:1.0 (fun () -> log := ("a", Sim.now sim) :: !log);
  Service_queue.submit_fixed q ~cost:2.0 (fun () -> log := ("b", Sim.now sim) :: !log);
  Service_queue.submit_fixed q ~cost:1.0 (fun () -> log := ("c", Sim.now sim) :: !log);
  Sim.run sim;
  (* a starts at 0, b after a's cost (t=1), c after b's (t=3) *)
  Alcotest.(check (list (pair string (float 1e-9)))) "start times"
    [ ("a", 0.0); ("b", 1.0); ("c", 3.0) ]
    (List.rev !log);
  Alcotest.(check (float 1e-9)) "total busy" 4.0 (Service_queue.total_busy q);
  Alcotest.(check int) "jobs" 3 (Service_queue.jobs q)

let test_idle_server_runs_immediately () =
  let sim = Sim.create () in
  let q = Service_queue.create sim in
  let ran_at = ref nan in
  ignore
    (Sim.schedule sim ~delay:5.0 (fun () ->
         Service_queue.submit_fixed q ~cost:1.0 (fun () -> ran_at := Sim.now sim)));
  Sim.run sim;
  Alcotest.(check (float 1e-9)) "no queueing when idle" 5.0 !ran_at

let test_throughput_bounded_by_cost () =
  let sim = Sim.create () in
  let q = Service_queue.create sim in
  let completed = ref 0 in
  (* offer 1000 jobs instantly; at 10 ms each, only ~100 fit in 1 s *)
  for _ = 1 to 1000 do
    Service_queue.submit_fixed q ~cost:10e-3 (fun () -> incr completed)
  done;
  Sim.run ~until:1.0 sim;
  Alcotest.(check bool)
    (Printf.sprintf "~100 jobs in 1s (got %d)" !completed)
    true
    (!completed >= 99 && !completed <= 101)

let test_measured_charges_real_time () =
  let sim = Sim.create () in
  let q = Service_queue.create sim in
  let spin () =
    (* a job that takes real wall-clock time *)
    let t0 = Unix.gettimeofday () in
    while Unix.gettimeofday () -. t0 < 2e-3 do
      ()
    done
  in
  Service_queue.submit_measured q spin;
  Service_queue.submit_measured q spin;
  Sim.run sim;
  Alcotest.(check bool) "busy time reflects measured work" true
    (Service_queue.total_busy q >= 3e-3);
  Alcotest.(check bool) "virtual clock advanced by the charges" true
    (Sim.now sim >= 3e-3)

let test_negative_cost_rejected () =
  let sim = Sim.create () in
  let q = Service_queue.create sim in
  Alcotest.check_raises "negative"
    (Invalid_argument "Service_queue.submit_fixed: negative cost") (fun () ->
      Service_queue.submit_fixed q ~cost:(-1.0) ignore)

let suites =
  [ ( "service_queue",
      [
        Alcotest.test_case "fixed serializes" `Quick test_fixed_serializes;
        Alcotest.test_case "idle runs immediately" `Quick test_idle_server_runs_immediately;
        Alcotest.test_case "throughput bounded" `Quick test_throughput_bounded_by_cost;
        Alcotest.test_case "measured charges real time" `Quick test_measured_charges_real_time;
        Alcotest.test_case "negative cost rejected" `Quick test_negative_cost_rejected;
      ] );
  ]
