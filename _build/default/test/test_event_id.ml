open Kronos

let test_pack_roundtrip () =
  let cases = [ (0, 0); (1, 0); (0, 1); (12345, 678); (Event_id.max_slot, 7) ] in
  List.iter
    (fun (slot, gen) ->
      let id = Event_id.make ~slot ~gen in
      Alcotest.(check int) "slot" slot (Event_id.slot id);
      Alcotest.(check int) "gen" gen (Event_id.gen id))
    cases

let test_invalid_make () =
  Alcotest.check_raises "neg slot" (Invalid_argument "Event_id.make: bad slot")
    (fun () -> ignore (Event_id.make ~slot:(-1) ~gen:0));
  Alcotest.check_raises "big slot" (Invalid_argument "Event_id.make: bad slot")
    (fun () -> ignore (Event_id.make ~slot:(Event_id.max_slot + 1) ~gen:0));
  Alcotest.check_raises "neg gen"
    (Invalid_argument "Event_id.make: bad generation") (fun () ->
      ignore (Event_id.make ~slot:0 ~gen:(-1)))

let test_int64_roundtrip () =
  let id = Event_id.make ~slot:42 ~gen:17 in
  let id' = Event_id.of_int64 (Event_id.to_int64 id) in
  Alcotest.(check bool) "equal" true (Event_id.equal id id');
  let none' = Event_id.of_int64 (Event_id.to_int64 Event_id.none) in
  Alcotest.(check bool) "none" true (Event_id.equal Event_id.none none')

let test_int64_invalid () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Event_id.of_int64: out of range") (fun () ->
      ignore (Event_id.of_int64 (-2L)));
  Alcotest.check_raises "too large"
    (Invalid_argument "Event_id.of_int64: out of range") (fun () ->
      ignore (Event_id.of_int64 Int64.max_int))

let test_compare_equal () =
  let a = Event_id.make ~slot:1 ~gen:0 in
  let b = Event_id.make ~slot:1 ~gen:1 in
  Alcotest.(check bool) "neq" false (Event_id.equal a b);
  Alcotest.(check bool) "eq" true (Event_id.equal a a);
  Alcotest.(check bool) "ordered" true (Event_id.compare a b < 0);
  Alcotest.(check bool) "hash eq" true (Event_id.hash a = Event_id.hash a)

let test_pp () =
  let id = Event_id.make ~slot:3 ~gen:2 in
  Alcotest.(check string) "pp" "e3.2" (Event_id.to_string id);
  Alcotest.(check string) "none" "<none>" (Event_id.to_string Event_id.none)

let prop_roundtrip =
  let open QCheck2 in
  Test.make ~name:"event_id int64 roundtrip" ~count:500
    Gen.(pair (int_bound 1_000_000) (int_bound 4_000_000))
    (fun (slot, gen) ->
      let id = Event_id.make ~slot ~gen in
      Event_id.equal id (Event_id.of_int64 (Event_id.to_int64 id))
      && Event_id.slot id = slot
      && Event_id.gen id = gen)

let suites =
  [ ( "event_id",
      [
        Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
        Alcotest.test_case "invalid make" `Quick test_invalid_make;
        Alcotest.test_case "int64 roundtrip" `Quick test_int64_roundtrip;
        Alcotest.test_case "int64 invalid" `Quick test_int64_invalid;
        Alcotest.test_case "compare/equal" `Quick test_compare_equal;
        Alcotest.test_case "pp" `Quick test_pp;
        QCheck_alcotest.to_alcotest prop_roundtrip;
      ] );
  ]
