open Kronos

let test_push_get () =
  let v = Int_vec.create () in
  for i = 0 to 99 do
    Int_vec.push v (i * i)
  done;
  Alcotest.(check int) "length" 100 (Int_vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "get" (i * i) (Int_vec.get v i)
  done

let test_pop_lifo () =
  let v = Int_vec.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "pop" 3 (Int_vec.pop v);
  Alcotest.(check int) "last" 2 (Int_vec.last v);
  Alcotest.(check int) "pop" 2 (Int_vec.pop v);
  Alcotest.(check int) "pop" 1 (Int_vec.pop v);
  Alcotest.check_raises "empty pop" (Invalid_argument "Int_vec.pop: empty")
    (fun () -> ignore (Int_vec.pop v))

let test_set_bounds () =
  let v = Int_vec.of_list [ 7 ] in
  Int_vec.set v 0 9;
  Alcotest.(check int) "set" 9 (Int_vec.get v 0);
  Alcotest.check_raises "oob" (Invalid_argument "Int_vec: index out of bounds")
    (fun () -> Int_vec.set v 1 0)

let test_remove_first () =
  let v = Int_vec.of_list [ 4; 5; 6; 5 ] in
  Alcotest.(check bool) "found" true (Int_vec.remove_first v 5);
  Alcotest.(check int) "length" 3 (Int_vec.length v);
  (* one 5 remains *)
  Alcotest.(check bool) "still mem" true (Int_vec.mem v 5);
  Alcotest.(check bool) "found again" true (Int_vec.remove_first v 5);
  Alcotest.(check bool) "gone" false (Int_vec.mem v 5);
  Alcotest.(check bool) "missing" false (Int_vec.remove_first v 42)

let test_clear_reuse () =
  let v = Int_vec.of_list [ 1; 2 ] in
  Int_vec.clear v;
  Alcotest.(check bool) "empty" true (Int_vec.is_empty v);
  Int_vec.push v 9;
  Alcotest.(check (list int)) "contents" [ 9 ] (Int_vec.to_list v)

let prop_matches_list =
  let open QCheck2 in
  let op =
    Gen.(frequency
           [ (6, map (fun i -> `Push i) small_int);
             (2, return `Pop);
             (1, return `Clear) ])
  in
  Test.make ~name:"int_vec matches list model" ~count:300
    Gen.(list_size (int_bound 100) op)
    (fun ops ->
      let v = Int_vec.create () in
      let model = ref [] in
      List.iter
        (function
          | `Push i -> Int_vec.push v i; model := i :: !model
          | `Pop -> (
              match !model with
              | [] -> ()
              | x :: rest ->
                if Int_vec.pop v <> x then failwith "pop mismatch";
                model := rest)
          | `Clear -> Int_vec.clear v; model := [])
        ops;
      Int_vec.to_list v = List.rev !model)

let test_poly_vec () =
  let v = Vec.create ~dummy:"" () in
  Vec.push v "a";
  Vec.push v "b";
  Vec.push v "c";
  Alcotest.(check (list string)) "contents" [ "a"; "b"; "c" ] (Vec.to_list v);
  Alcotest.(check string) "pop" "c" (Vec.pop v);
  Vec.set v 0 "z";
  Alcotest.(check string) "set" "z" (Vec.get v 0);
  let collected = ref [] in
  Vec.iteri (fun i x -> collected := (i, x) :: !collected) v;
  Alcotest.(check (list (pair int string))) "iteri" [ (0, "z"); (1, "b") ]
    (List.rev !collected);
  Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Vec.length v)

let suites =
  [ ( "vec",
      [
        Alcotest.test_case "push/get" `Quick test_push_get;
        Alcotest.test_case "pop lifo" `Quick test_pop_lifo;
        Alcotest.test_case "set bounds" `Quick test_set_bounds;
        Alcotest.test_case "remove_first" `Quick test_remove_first;
        Alcotest.test_case "clear and reuse" `Quick test_clear_reuse;
        Alcotest.test_case "polymorphic vec" `Quick test_poly_vec;
        QCheck_alcotest.to_alcotest prop_matches_list;
      ] );
  ]
