open Kronos
open Kronos_simnet
open Kronos_kvstore

type env = {
  sim : Sim.t;
  net : Kv_msg.msg Net.t;
  shard : Shard.t;
  client : Kv_client.t;
}

let make_env ?(seed = 3L) () =
  let sim = Sim.create ~seed () in
  let net = Net.create sim in
  let shard = Shard.create ~net ~addr:0 () in
  let client = Kv_client.create ~net ~addr:100 in
  { sim; net; shard; client }

let await env f =
  let result = ref None in
  f (fun x -> result := Some x);
  Sim.run ~until:(Sim.now env.sim +. 10.0) env.sim;
  match !result with Some x -> x | None -> Alcotest.fail "no response"

let request env body = await env (Kv_client.request env.client ~shard:0 body)

let test_get_put () =
  let env = make_env () in
  (match request env (Kv_msg.Get { key = "a" }) with
   | Kv_msg.Value { value = None } -> ()
   | _ -> Alcotest.fail "expected empty value");
  (match request env (Kv_msg.Put { key = "a"; value = "1" }) with
   | Kv_msg.Put_done -> ()
   | _ -> Alcotest.fail "expected put_done");
  match request env (Kv_msg.Get { key = "a" }) with
  | Kv_msg.Value { value = Some "1" } -> ()
  | _ -> Alcotest.fail "expected value 1"

let test_history () =
  let env = make_env () in
  ignore (request env (Kv_msg.Put { key = "k"; value = "1" }));
  ignore (request env (Kv_msg.Put { key = "k"; value = "2" }));
  let history = Shard.history env.shard "k" in
  Alcotest.(check (list string)) "values in order" [ "1"; "2" ]
    (List.map snd history);
  Alcotest.(check (option string)) "peek" (Some "2") (Shard.peek env.shard "k")

let test_lock_fifo () =
  let env = make_env () in
  let order = ref [] in
  let lock txn k =
    Kv_client.request env.client ~shard:0 (Kv_msg.Lock { txn; keys = [ "x" ] })
      (fun _ -> order := txn :: !order; k ())
  in
  lock 1 (fun () -> ());
  lock 2 (fun () -> ());
  lock 3 (fun () -> ());
  Sim.run ~until:1.0 env.sim;
  (* only txn 1 holds the lock *)
  Alcotest.(check (list int)) "first granted" [ 1 ] (List.rev !order);
  Alcotest.(check int) "two waiting" 2 (Shard.lock_queue_length env.shard);
  ignore (request env (Kv_msg.Unlock { txn = 1; keys = [ "x" ] }));
  Sim.run ~until:2.0 env.sim;
  Alcotest.(check (list int)) "fifo grant" [ 1; 2 ] (List.rev !order);
  ignore (request env (Kv_msg.Unlock { txn = 2; keys = [ "x" ] }));
  ignore (request env (Kv_msg.Unlock { txn = 3; keys = [ "x" ] }));
  Sim.run ~until:3.0 env.sim;
  Alcotest.(check (list int)) "all granted" [ 1; 2; 3 ] (List.rev !order);
  Alcotest.(check int) "queue empty" 0 (Shard.lock_queue_length env.shard)

let test_lock_multi_key () =
  let env = make_env () in
  let granted = ref false in
  Kv_client.request env.client ~shard:0
    (Kv_msg.Lock { txn = 1; keys = [ "a"; "b"; "c" ] })
    (fun _ -> granted := true);
  Sim.run ~until:1.0 env.sim;
  Alcotest.(check bool) "atomic multi-key grant" true !granted

let event n = Event_id.make ~slot:n ~gen:0

let prepare env ~txn ~event:e keys =
  request env (Kv_msg.Prepare { txn; event = e; reads = keys; writes = keys })

let decide env ~txn ~commit writes =
  request env (Kv_msg.Decide { txn; commit; writes })

let test_prepare_constraints_and_values () =
  let env = make_env () in
  ignore (request env (Kv_msg.Put { key = "k"; value = "seed" }));
  (* first transaction: no prior writer, no constraints *)
  (match prepare env ~txn:1 ~event:(event 1) [ "k" ] with
   | Kv_msg.Prepared { constraints = []; values = [ ("k", Some "seed") ] } -> ()
   | Kv_msg.Prepared _ -> Alcotest.fail "unexpected prepared contents"
   | _ -> Alcotest.fail "expected prepared");
  ignore (decide env ~txn:1 ~commit:true [ ("k", "v1") ]);
  Alcotest.(check (option string)) "committed" (Some "v1") (Shard.peek env.shard "k");
  (* second transaction must be ordered after the first *)
  (match prepare env ~txn:2 ~event:(event 2) [ "k" ] with
   | Kv_msg.Prepared { constraints = [ (before, after) ]; values = [ ("k", Some "v1") ] } ->
     Alcotest.(check bool) "after first event" true
       (Event_id.equal before (event 1) && Event_id.equal after (event 2))
   | _ -> Alcotest.fail "expected one constraint");
  ignore (decide env ~txn:2 ~commit:true [ ("k", "v2") ]);
  let history = Shard.history env.shard "k" in
  Alcotest.(check int) "three writes (seed + 2 txns)" 3 (List.length history)

let test_abort_leaves_no_trace () =
  let env = make_env () in
  ignore (prepare env ~txn:1 ~event:(event 1) [ "k" ]);
  ignore (decide env ~txn:1 ~commit:false [ ("k", "evil") ]);
  Alcotest.(check (option string)) "no write" None (Shard.peek env.shard "k");
  Alcotest.(check int) "nothing pinned" 0 (Shard.pinned_keys env.shard);
  (* next transaction sees no constraint from the aborted event *)
  match prepare env ~txn:2 ~event:(event 2) [ "k" ] with
  | Kv_msg.Prepared { constraints = []; _ } -> ()
  | _ -> Alcotest.fail "aborted txn must leave no ordering trace"

let test_conflicting_prepare_parks () =
  let env = make_env () in
  (* txn 5 pins k *)
  ignore (prepare env ~txn:5 ~event:(event 5) [ "k" ]);
  (* a conflicting prepare parks instead of answering *)
  let parked_reply = ref None in
  Kv_client.request env.client ~shard:0
    (Kv_msg.Prepare { txn = 9; event = event 9; reads = [ "k" ]; writes = [ "k" ] })
    (fun r -> parked_reply := Some r);
  Sim.run ~until:(Sim.now env.sim +. 2e-3) env.sim;
  Alcotest.(check bool) "still parked" true (!parked_reply = None);
  Alcotest.(check int) "one parked" 1 (Shard.parked_prepares env.shard);
  (* the decision admits the parked prepare with the right constraint *)
  ignore (decide env ~txn:5 ~commit:true [ ("k", "v5") ]);
  Sim.run ~until:(Sim.now env.sim +. 1.0) env.sim;
  (match !parked_reply with
   | Some (Kv_msg.Prepared { constraints = [ (before, _) ]; values = [ (_, Some "v5") ] }) ->
     Alcotest.(check bool) "ordered after decided txn" true
       (Event_id.equal before (event 5))
   | _ -> Alcotest.fail "parked prepare should have been admitted");
  Alcotest.(check int) "none parked" 0 (Shard.parked_prepares env.shard)

let test_parked_prepare_times_out () =
  let env = make_env () in
  ignore (prepare env ~txn:5 ~event:(event 5) [ "k" ]);
  (* a conflicting prepare parks; the holder never decides *)
  let reply = ref None in
  Kv_client.request env.client ~shard:0
    (Kv_msg.Prepare { txn = 9; event = event 9; reads = [ "k" ]; writes = [ "k" ] })
    (fun r -> reply := Some r);
  Sim.run ~until:(Sim.now env.sim +. 1.0) env.sim;
  (match !reply with
   | Some Kv_msg.Prepare_rejected -> ()
   | _ -> Alcotest.fail "parked prepare should time out");
  Alcotest.(check int) "rejection counted" 1 (Shard.rejections env.shard);
  Alcotest.(check int) "no longer parked" 0 (Shard.parked_prepares env.shard);
  (* age order: with two parked prepares, the older is admitted first *)
  let order = ref [] in
  let submit txn =
    Kv_client.request env.client ~shard:0
      (Kv_msg.Prepare { txn; event = event txn; reads = [ "k" ]; writes = [ "k" ] })
      (function
        | Kv_msg.Prepared _ -> order := txn :: !order
        | _ -> ())
  in
  submit 20;
  submit 12;
  Sim.run ~until:(Sim.now env.sim +. 2e-3) env.sim;
  ignore (decide env ~txn:5 ~commit:false []);
  Sim.run ~until:(Sim.now env.sim +. 2e-3) env.sim;
  Alcotest.(check (list int)) "older admitted first" [ 12 ] (List.rev !order)

let test_reader_constraints () =
  let env = make_env () in
  (* txn 1 reads k only (no write) *)
  ignore
    (request env
       (Kv_msg.Prepare { txn = 1; event = event 1; reads = [ "k" ]; writes = [] }));
  ignore (decide env ~txn:1 ~commit:true []);
  (* txn 2 writes k: must be ordered after the reader *)
  match
    request env
      (Kv_msg.Prepare { txn = 2; event = event 2; reads = []; writes = [ "k" ] })
  with
  | Kv_msg.Prepared { constraints = [ (before, after) ]; _ } ->
    Alcotest.(check bool) "write after reader" true
      (Event_id.equal before (event 1) && Event_id.equal after (event 2))
  | _ -> Alcotest.fail "expected reader constraint"

let test_router () =
  Alcotest.(check bool) "stable" true
    (Router.shard_of ~shards:4 "abc" = Router.shard_of ~shards:4 "abc");
  Alcotest.(check bool) "in range" true
    (List.for_all
       (fun k ->
         let s = Router.shard_of ~shards:5 k in
         s >= 0 && s < 5)
       [ "a"; "b"; "c"; "d"; "e"; "f"; "g" ]);
  let groups = Router.partition ~shards:3 [ "a"; "b"; "c"; "d" ] in
  let total = List.fold_left (fun acc (_, ks) -> acc + List.length ks) 0 groups in
  Alcotest.(check int) "partition covers all keys" 4 total;
  Alcotest.check_raises "bad shards"
    (Invalid_argument "Router.shard_of: shards must be positive") (fun () ->
      ignore (Router.shard_of ~shards:0 "x"))

let suites =
  [ ( "kvstore",
      [
        Alcotest.test_case "get/put" `Quick test_get_put;
        Alcotest.test_case "history" `Quick test_history;
        Alcotest.test_case "lock fifo" `Quick test_lock_fifo;
        Alcotest.test_case "lock multi-key" `Quick test_lock_multi_key;
        Alcotest.test_case "prepare constraints" `Quick test_prepare_constraints_and_values;
        Alcotest.test_case "abort leaves no trace" `Quick test_abort_leaves_no_trace;
        Alcotest.test_case "conflicting prepare parks" `Quick test_conflicting_prepare_parks;
        Alcotest.test_case "parked prepare times out" `Quick test_parked_prepare_times_out;
        Alcotest.test_case "reader constraints" `Quick test_reader_constraints;
        Alcotest.test_case "router" `Quick test_router;
      ] );
  ]
