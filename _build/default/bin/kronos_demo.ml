(* End-to-end demo: a replicated Kronos deployment on the simulated network,
   driven through the typed client, with a mid-run failure to show the chain
   reconfiguring — a miniature of the whole system.

   Run with: dune exec bin/kronos_demo.exe *)

open Kronos
open Kronos_simnet

let () =
  Format.printf "== Kronos service demo: 3-replica chain + failure ==@.";
  let sim = Sim.create ~seed:2026L () in
  let net = Net.create sim in
  let cluster =
    Kronos_service.Server.deploy ~net ~coordinator:1000 ~replicas:[ 0; 1; 2 ]
      ~ping_interval:0.2 ~failure_timeout:0.8 ()
  in
  let client =
    Kronos_service.Client.create ~net ~addr:2000 ~coordinator:1000
      ~request_timeout:0.5 ()
  in
  let await f =
    let r = ref None in
    f (fun x -> r := Some x);
    while !r = None && Sim.pending sim > 0 do
      ignore (Sim.step sim)
    done;
    Option.get !r
  in
  let a = await (Kronos_service.Client.create_event client) in
  let b = await (Kronos_service.Client.create_event client) in
  Format.printf "created %a and %a (t=%.3fs virtual)@." Event_id.pp a Event_id.pp b
    (Sim.now sim);
  (match
     await
       (Kronos_service.Client.assign_order client
          [ (a, Order.Happens_before, Order.Must, b) ])
   with
   | Ok _ -> Format.printf "ordered %a -> %a@." Event_id.pp a Event_id.pp b
   | Error e -> Format.printf "assign failed: %a@." Order.pp_assign_error e);
  (* kill the middle replica; the coordinator reconfigures the chain *)
  Format.printf "killing replica 1...@.";
  Kronos_service.Server.crash cluster 1;
  Sim.run ~until:(Sim.now sim +. 3.0) sim;
  (match await (Kronos_service.Client.query_order client [ (a, b); (b, a) ]) with
   | Ok rels ->
     Format.printf "order survives the failure: %a@."
       (Format.pp_print_list ~pp_sep:Format.pp_print_space Order.pp_relation)
       rels
   | Error e -> Format.printf "query failed: %a@." Order.pp_assign_error e);
  (* bring a fresh replica in; state transfer restores fault tolerance *)
  Format.printf "joining fresh replica 7...@.";
  Kronos_service.Server.join cluster 7 ();
  Sim.run ~until:(Sim.now sim +. 3.0) sim;
  (match Kronos_service.Server.engine_of cluster 7 with
   | Some engine ->
     Format.printf "fresh replica synced: %d events, %d edges@."
       (Engine.live_events engine) (Engine.edges engine)
   | None -> ());
  let c = await (Kronos_service.Client.create_event client) in
  (match
     await
       (Kronos_service.Client.assign_order client
          [ (b, Order.Happens_before, Order.Must, c) ])
   with
   | Ok _ ->
     Format.printf "new writes flow through the healed chain: %a -> %a@."
       Event_id.pp b Event_id.pp c
   | Error e -> Format.printf "assign failed: %a@." Order.pp_assign_error e);
  Format.printf "done (%.3fs of virtual time)@." (Sim.now sim)
