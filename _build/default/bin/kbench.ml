(* Command-line front end for the benchmark harness: run any single
   experiment with explicit parameters.

     dune exec bin/kbench.exe -- run fig12
     dune exec bin/kbench.exe -- run all --full
     dune exec bin/kbench.exe -- list *)

open Cmdliner

let experiments =
  [ ("fig6", Kronos_bench.Fig6.run);
    ("fig7", Kronos_bench.Fig7.run);
    ("fig8", Kronos_bench.Fig8.run);
    ("fig9", Kronos_bench.Fig9.run);
    ("fig10", Kronos_bench.Fig10.run);
    ("fig11", Kronos_bench.Fig11.run);
    ("fig12", Kronos_bench.Fig12.run);
    ("fig13", Kronos_bench.Fig13.run);
    ("micro", Kronos_bench.Micro.run);
    ("ablation", Kronos_bench.Ablation.run);
  ]

let list_cmd =
  let doc = "List available experiments." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(
      const (fun () ->
          List.iter (fun (name, _) -> print_endline name) experiments)
      $ const ())

let run_experiments names full =
  Kronos_bench.Bench_util.full_scale := full;
  let selected =
    if names = [] || List.mem "all" names then List.map fst experiments
    else names
  in
  let unknown = List.filter (fun n -> not (List.mem_assoc n experiments)) selected in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\n" (String.concat ", " unknown);
    exit 2
  end;
  Printf.printf "Kronos benchmark harness (%s scale)\n"
    (if full then "full" else "quick");
  List.iter (fun n -> (List.assoc n experiments) ()) selected

let run_cmd =
  let doc = "Run one or more experiments (or 'all')." in
  let names =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"experiment name")
  in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"use paper-scale parameters")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run_experiments $ names $ full)

let main =
  let doc = "Kronos reproduction benchmark driver" in
  Cmd.group (Cmd.info "kbench" ~doc ~version:"1.0") [ list_cmd; run_cmd ]

let () = exit (Cmd.eval main)
