(* Ablation: the shard-side order cache with transitive pre-fill
   (Section 3.2).  Re-runs the Figure 6 KronoGraph workload on the
   Twitter-like graph with the cache effectively disabled (capacity 1), so
   every per-vertex ordering requires a Kronos round trip. *)

module Rng = Kronos_simnet.Rng
module Graph_gen = Kronos_workload.Graph_gen

let run () =
  Bench_util.section "Ablation: KronoGraph shard order-cache on vs off";
  let rng = Rng.create ~seed:21L in
  let quick = not !Bench_util.full_scale in
  let graph = Graph_gen.twitter_like ~rng ~scale:(if quick then 0.05 else 0.5) () in
  let ops = Bench_util.scaled 400 2_000 in
  let with_cache, _, frac_with =
    Fig6.run_kronograph ~seed:3L ~graph ~ops ()
  in
  let without_cache, _, frac_without =
    Fig6.run_kronograph ~shard_cache_capacity:1 ~seed:3L ~graph ~ops ()
  in
  Printf.printf "  cache on:   %8.0f ops/s  (traversal fraction %.1f%%)\n" with_cache
    (100.0 *. frac_with);
  Printf.printf "  cache off:  %8.0f ops/s  (traversal fraction %.1f%%)\n%!"
    without_cache (100.0 *. frac_without);
  Bench_util.ours "caching yields %.2fx throughput on the Twitter-like workload"
    (with_cache /. without_cache)
