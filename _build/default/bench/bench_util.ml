(* Shared helpers for the benchmark harness. *)

let section title =
  Printf.printf "\n======================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "======================================================================\n%!"

let note fmt = Printf.printf (fmt ^^ "\n%!")

let paper fmt =
  Printf.printf "  paper:    ";
  Printf.printf (fmt ^^ "\n%!")

let ours fmt =
  Printf.printf "  measured: ";
  Printf.printf (fmt ^^ "\n%!")

(* Full-scale runs are opt-in: `main.exe --full` or KRONOS_BENCH_FULL=1. *)
let full_scale = ref false

let scaled quick full = if !full_scale then full else quick

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else begin
    let idx = int_of_float (p *. float_of_int (n - 1)) in
    sorted.(max 0 (min (n - 1) idx))
  end

let time_s f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* Nanoseconds per operation via Bechamel's OLS estimator. *)
let bechamel_ns_per_op ?(quota = 0.5) ~name f =
  let open Bechamel in
  let test = Test.make ~name (Staged.stage f) in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:3000 ~quota:(Time.second quota) ~kde:None () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with
      | Some (e :: _) -> e
      | Some [] | None -> acc)
    results nan

let pp_ns ns =
  if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.2f µs" (ns /. 1e3)
  else Printf.sprintf "%.2f ms" (ns /. 1e6)

let pp_ops ops =
  if ops >= 1e6 then Printf.sprintf "%.2f M ops/s" (ops /. 1e6)
  else if ops >= 1e3 then Printf.sprintf "%.1f k ops/s" (ops /. 1e3)
  else Printf.sprintf "%.0f ops/s" ops
