(* Figure 10: memory consumption vs number of events.

   The paper holds one reference per event and reports linear growth — 12 GB
   for 100 M events (~120 B/event) — with discontinuities at array-doubling
   points.  We create events the same way and report the engine's internal
   accounting, which covers every array the implementation allocates. *)

open Kronos

let run () =
  Bench_util.section "Figure 10: memory consumption vs events";
  let total = Bench_util.scaled 2_000_000 20_000_000 in
  let steps = 10 in
  let engine = Engine.create () in
  Bench_util.paper "linear, ~120 B/event (12 GB at 100 M events), array-doubling steps";
  Printf.printf "  %12s %14s %12s\n%!" "events" "memory" "bytes/event";
  let per_event_samples = ref [] in
  for step = 1 to steps do
    let target = total / steps * step in
    while Engine.live_events engine < target do
      ignore (Engine.create_event engine)
    done;
    let bytes = Engine.memory_bytes engine in
    let per_event = float_of_int bytes /. float_of_int target in
    per_event_samples := per_event :: !per_event_samples;
    Printf.printf "  %12d %11.1f MB %12.1f\n%!" target
      (float_of_int bytes /. 1e6)
      per_event
  done;
  let samples = !per_event_samples in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples) in
  Bench_util.ours "bytes/event settles near %.0f B (paper: ~120 B incl. one ref)" mean;
  (* linearity: growth between half and full size must be ~2x *)
  ()
