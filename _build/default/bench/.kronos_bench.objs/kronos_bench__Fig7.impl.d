bench/fig7.ml: Array Bench_util Executor Kronos_kvstore Kronos_service Kronos_simnet Kronos_txn Kronos_workload Kv_client Kv_msg Net Printf Rng Router Shard Sim
