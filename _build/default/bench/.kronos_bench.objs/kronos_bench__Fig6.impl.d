bench/fig6.ml: Array Bench_util Float G_msg Kgraph Kronos Kronos_graphstore Kronos_service Kronos_simnet Kronos_workload Kshard Lgraph List Lshard Net Option Printf Rng Sim
