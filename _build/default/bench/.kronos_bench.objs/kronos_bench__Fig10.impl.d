bench/fig10.ml: Bench_util Engine Kronos List Printf
