bench/micro.ml: Array Bench_util Engine Graph Hashtbl Kronos Kronos_simnet Kronos_workload List Order Printf Sparse_set Unix
