bench/fig9.ml: Array Bench_util Engine Kronos Unix
