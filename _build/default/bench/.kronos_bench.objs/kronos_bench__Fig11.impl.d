bench/fig11.ml: Array Bench_util Engine Gc Kronos List Order Printf
