bench/fig12.ml: Array Bench_util Engine Graph Int64 Kronos Kronos_simnet Kronos_workload List Printf Unix
