bench/fig8.ml: Array Bench_util Engine Gc Graph Kronos Kronos_service Kronos_simnet Kronos_wire Kronos_workload List Net Printf Rng Sim Unix
