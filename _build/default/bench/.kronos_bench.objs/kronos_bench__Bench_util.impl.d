bench/bench_util.ml: Analyze Array Bechamel Benchmark Hashtbl Measure Printf Staged Test Time Toolkit Unix
