bench/fig13.ml: Array Bench_util Kronos Kronos_service Kronos_simnet Net Order Printf Rng Sim String
