bench/ablation.ml: Bench_util Fig6 Kronos_simnet Kronos_workload Printf
