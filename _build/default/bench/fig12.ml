(* Figure 12: query_order throughput vs graph density.

   Erdős–Rényi event dependency graphs over 10,000 vertices with expected
   edge counts swept from 5e2 to 5e6.  The paper reports hundreds of
   thousands of queries per second on sparse graphs, dropping with density
   to a plateau once most vertices share one giant component. *)

open Kronos
module Rng = Kronos_simnet.Rng
module Graph_gen = Kronos_workload.Graph_gen

(* Load an undirected ER graph as a DAG by orienting every edge from the
   lower to the higher vertex id, which guarantees acyclicity.  The bulk
   load bypasses assign_order's per-edge coherency BFS (provably redundant
   under this orientation) so the dense configurations build in seconds. *)
let load_er engine ~rng ~n ~m =
  let g = Graph_gen.erdos_renyi_gnm ~rng ~n ~m in
  let ids = Array.init n (fun _ -> Engine.create_event engine) in
  let graph = Engine.graph engine in
  Array.iter
    (fun (u, v) ->
      let u, v = if u < v then (u, v) else (v, u) in
      Graph.add_edge graph ids.(u) ids.(v))
    g.Graph_gen.edges;
  ids

let measure_queries engine ids ~rng ~duration =
  let n = Array.length ids in
  let ops = ref 0 in
  let t0 = Unix.gettimeofday () in
  while Unix.gettimeofday () -. t0 < duration do
    (* batch of 100 random pairs per wall-clock check *)
    for _ = 1 to 100 do
      let a = ids.(Rng.int rng n) and b = ids.(Rng.int rng n) in
      match Engine.query_order engine [ (a, b) ] with
      | Ok _ -> incr ops
      | Error _ -> assert false
    done
  done;
  float_of_int !ops /. (Unix.gettimeofday () -. t0)

let run () =
  Bench_util.section "Figure 12: query_order throughput vs Erdos-Renyi density";
  Bench_util.paper
    "10k vertices; ~1e5-1e6 q/s below ~3 edges/vertex, falling to a plateau ~1e3-1e4 q/s";
  let n = 10_000 in
  let duration = if !Bench_util.full_scale then 2.0 else 0.5 in
  Printf.printf "  %14s %12s %16s\n%!" "edges" "edges/vertex" "throughput";
  let edge_counts = [ 500; 5_000; 50_000; 500_000; 5_000_000 ] in
  List.iter
    (fun m ->
      let m = min m (n * (n - 1) / 2) in
      let rng = Rng.create ~seed:(Int64.of_int (1000 + m)) in
      let engine = Engine.create () in
      let ids = load_er engine ~rng ~n ~m in
      let throughput = measure_queries engine ids ~rng ~duration in
      Printf.printf "  %14d %12.1f %16s\n%!" m
        (float_of_int m /. float_of_int n)
        (Bench_util.pp_ops throughput))
    edge_counts;
  Bench_util.ours
    "shape check: sparse graphs orders of magnitude faster than dense; plateau at high density"
