(* Figure 9: event creation latency CDF.

   The paper measures 44 µs median / <57 µs p99 through the full RPC stack
   (client and server co-located).  Our engine call is in-process, so the
   absolute numbers are nanoseconds, but the figure's claim — creation is
   constant-time with a tight distribution, independent of how many events
   already exist — is what we reproduce. *)

open Kronos

let run () =
  Bench_util.section "Figure 9: event creation latency CDF";
  let total = Bench_util.scaled 200_000 2_000_000 in
  let batch = 1_000 in
  let engine = Engine.create () in
  let samples = Array.make (total / batch) 0.0 in
  for i = 0 to (total / batch) - 1 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      ignore (Engine.create_event engine)
    done;
    samples.(i) <- (Unix.gettimeofday () -. t0) /. float_of_int batch *. 1e9
  done;
  Array.sort compare samples;
  let p v = Bench_util.percentile samples v in
  Bench_util.paper "p50 = 44 µs, p99 < 57 µs (through RPC; constant-time)";
  Bench_util.ours
    "per-op (batch-averaged, in-process): p50 = %s, p90 = %s, p99 = %s, p99.9 = %s"
    (Bench_util.pp_ns (p 0.50)) (Bench_util.pp_ns (p 0.90))
    (Bench_util.pp_ns (p 0.99))
    (Bench_util.pp_ns (p 0.999));
  (* constant (amortized) time: creation must not slow down as the graph
     grows.  Compare the median batch cost of the first and last tenth of
     the run — medians exclude the occasional array-doubling copy. *)
  let batches = total / batch in
  let engine2 = Engine.create () in
  let chrono = Array.make batches 0.0 in
  for i = 0 to batches - 1 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to batch do
      ignore (Engine.create_event engine2)
    done;
    chrono.(i) <- (Unix.gettimeofday () -. t0) /. float_of_int batch *. 1e9
  done;
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    Bench_util.percentile a 0.5
  in
  let tenth = batches / 10 in
  Bench_util.ours "constant-time check: first-decile median %s vs last-decile median %s"
    (Bench_util.pp_ns (median (Array.sub chrono 0 tenth)))
    (Bench_util.pp_ns (median (Array.sub chrono (9 * tenth) tenth)));
  let engine2 = Engine.create () in
  let ns =
    Bench_util.bechamel_ns_per_op ~name:"create_event"
      (fun () -> ignore (Engine.create_event engine2))
  in
  Bench_util.ours "bechamel OLS estimate: %s per create_event" (Bench_util.pp_ns ns)
