exception Decode_error of string

type encoder = Buffer.t

let encoder () = Buffer.create 64
let to_string = Buffer.contents

let put_u8 b v =
  if v < 0 || v > 0xff then invalid_arg "Codec.put_u8";
  Buffer.add_char b (Char.chr v)

let put_u16 b v =
  if v < 0 || v > 0xffff then invalid_arg "Codec.put_u16";
  Buffer.add_char b (Char.chr (v lsr 8));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  if v < 0 || v > 0xffff_ffff then invalid_arg "Codec.put_u32";
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let put_i64 b v =
  for shift = 7 downto 0 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * shift)) 0xffL)))
  done

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_float b v = put_i64 b (Int64.bits_of_float v)

let put_string b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b f xs =
  put_u32 b (List.length xs);
  List.iter (f b) xs

type decoder = { data : string; mutable pos : int }

let decoder data = { data; pos = 0 }
let remaining d = String.length d.data - d.pos
let at_end d = remaining d = 0

let need d n what =
  if remaining d < n then
    raise (Decode_error (Printf.sprintf "truncated %s: need %d, have %d" what n (remaining d)))

let get_u8 d =
  need d 1 "u8";
  let v = Char.code d.data.[d.pos] in
  d.pos <- d.pos + 1;
  v

let get_u16 d =
  need d 2 "u16";
  let v = (Char.code d.data.[d.pos] lsl 8) lor Char.code d.data.[d.pos + 1] in
  d.pos <- d.pos + 2;
  v

let get_u32 d =
  need d 4 "u32";
  let byte i = Char.code d.data.[d.pos + i] in
  let v = (byte 0 lsl 24) lor (byte 1 lsl 16) lor (byte 2 lsl 8) lor byte 3 in
  d.pos <- d.pos + 4;
  v

let get_i64 d =
  need d 8 "i64";
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code d.data.[d.pos + i]))
  done;
  d.pos <- d.pos + 8;
  !v

let get_bool d =
  match get_u8 d with
  | 0 -> false
  | 1 -> true
  | n -> raise (Decode_error (Printf.sprintf "bad bool %d" n))

let get_float d = Int64.float_of_bits (get_i64 d)

let get_string d =
  let n = get_u32 d in
  need d n "string";
  let s = String.sub d.data d.pos n in
  d.pos <- d.pos + n;
  s

let get_list d f =
  let n = get_u32 d in
  let rec loop i acc = if i = n then List.rev acc else loop (i + 1) (f d :: acc) in
  loop 0 []

let expect_end d =
  if not (at_end d) then
    raise (Decode_error (Printf.sprintf "%d trailing bytes" (remaining d)))
