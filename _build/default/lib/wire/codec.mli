(** Minimal binary codec: big-endian fixed-width integers and
    length-prefixed strings over [Buffer]/[string].

    Decoding is performed through a {!decoder} cursor; all decode functions
    raise {!Decode_error} on truncated or malformed input, never an
    out-of-bounds exception. *)

exception Decode_error of string

(** {1 Encoding} *)

type encoder = Buffer.t

val encoder : unit -> encoder
val to_string : encoder -> string

val put_u8 : encoder -> int -> unit
(** @raise Invalid_argument unless [0 <= v < 256]. *)

val put_u16 : encoder -> int -> unit
val put_u32 : encoder -> int -> unit
(** @raise Invalid_argument unless the value fits. *)

val put_i64 : encoder -> int64 -> unit
val put_bool : encoder -> bool -> unit
val put_float : encoder -> float -> unit
val put_string : encoder -> string -> unit
(** u32 length prefix followed by the bytes. *)

val put_list : encoder -> (encoder -> 'a -> unit) -> 'a list -> unit
(** u32 count prefix followed by each element. *)

(** {1 Decoding} *)

type decoder

val decoder : string -> decoder
val remaining : decoder -> int
val at_end : decoder -> bool

val get_u8 : decoder -> int
val get_u16 : decoder -> int
val get_u32 : decoder -> int
val get_i64 : decoder -> int64
val get_bool : decoder -> bool
val get_float : decoder -> float
val get_string : decoder -> string
val get_list : decoder -> (decoder -> 'a) -> 'a list

val expect_end : decoder -> unit
(** @raise Decode_error if trailing bytes remain. *)
