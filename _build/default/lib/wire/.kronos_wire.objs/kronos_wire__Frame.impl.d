lib/wire/frame.ml: Buffer Codec List Printf String
