lib/wire/codec.mli: Buffer
