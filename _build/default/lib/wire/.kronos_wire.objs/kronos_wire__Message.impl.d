lib/wire/message.ml: Codec Event_id Format Kronos List Order Printf
