lib/wire/frame.mli:
