lib/wire/codec.ml: Buffer Char Int64 List Printf String
