lib/wire/message.mli: Event_id Format Kronos Order
