(** Growable vector of unboxed integers.

    Used throughout the event dependency graph for adjacency lists and work
    stacks.  Growth follows array doubling, which is what produces the
    memory-consumption discontinuities the paper notes under Figure 10. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty vector.  [capacity] is a hint for the
    initial allocation (default 4). *)

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> int
(** [get v i] is the [i]-th element.  @raise Invalid_argument if out of
    bounds. *)

val set : t -> int -> int -> unit
(** [set v i x] overwrites the [i]-th element.  @raise Invalid_argument if out
    of bounds. *)

val push : t -> int -> unit
(** [push v x] appends [x], growing the backing array if needed. *)

val pop : t -> int
(** [pop v] removes and returns the last element.
    @raise Invalid_argument if [v] is empty. *)

val last : t -> int
(** [last v] is the last element without removing it.
    @raise Invalid_argument if [v] is empty. *)

val clear : t -> unit
(** [clear v] resets the length to zero without shrinking the allocation. *)

val mem : t -> int -> bool
(** [mem v x] is true iff [x] occurs in [v].  Linear scan. *)

val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list

val of_list : int list -> t

val remove_first : t -> int -> bool
(** [remove_first v x] removes the first occurrence of [x] by swapping the
    last element into its slot (order is not preserved).  Returns whether an
    occurrence was found. *)

val capacity_bytes : t -> int
(** Approximate heap footprint of the backing array, in bytes. *)
