(* Layout within a 63-bit OCaml int: low 40 bits slot, next 22 bits
   generation.  A packed value of -1 is the [none] sentinel. *)

type t = int

let slot_bits = 40
let gen_bits = 22
let max_slot = (1 lsl slot_bits) - 1
let max_gen = (1 lsl gen_bits) - 1

let none = -1

let make ~slot ~gen =
  if slot < 0 || slot > max_slot then invalid_arg "Event_id.make: bad slot";
  if gen < 0 || gen > max_gen then invalid_arg "Event_id.make: bad generation";
  (gen lsl slot_bits) lor slot

let slot t = t land max_slot
let gen t = (t lsr slot_bits) land max_gen
let equal = Int.equal
let compare = Int.compare
let hash t = Hashtbl.hash t

let to_int64 t = Int64.of_int t

let of_int64 i =
  if Int64.equal i (-1L) then none
  else begin
    if Int64.compare i 0L < 0 || Int64.compare i (Int64.of_int max_int) > 0 then
      invalid_arg "Event_id.of_int64: out of range";
    let t = Int64.to_int i in
    if t lsr (slot_bits + gen_bits) <> 0 then
      invalid_arg "Event_id.of_int64: out of range";
    t
  end

let pp ppf t =
  if t = none then Format.fprintf ppf "<none>"
  else Format.fprintf ppf "e%d.%d" (slot t) (gen t)

let to_string t = Format.asprintf "%a" pp t
