type 'a t = { dummy : 'a; mutable data : 'a array; mutable len : int }

let create ~dummy ?(capacity = 4) () =
  { dummy; data = Array.make (max capacity 1) dummy; len = 0 }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Vec: index out of bounds"

let get v i = check v i; v.data.(i)
let set v i x = check v i; v.data.(i) <- x

let grow v =
  let data = Array.make (2 * Array.length v.data) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []
