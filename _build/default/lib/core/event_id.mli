(** Globally unique event identifiers.

    An identifier packs a graph slot index with a generation counter.  Slots
    are reused after garbage collection; the generation lets the engine detect
    (and reject) uses of a collected event's identifier instead of silently
    resolving it to an unrelated newer event. *)

type t

val none : t
(** A sentinel identifier that never names a live event. *)

val make : slot:int -> gen:int -> t
(** @raise Invalid_argument if [slot] or [gen] is out of range. *)

val slot : t -> int

val gen : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val to_int64 : t -> int64
(** Stable wire representation. *)

val of_int64 : int64 -> t
(** @raise Invalid_argument if the value is not a valid packed identifier. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val max_slot : int
(** Largest representable slot index. *)
