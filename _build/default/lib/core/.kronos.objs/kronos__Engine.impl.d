lib/core/engine.ml: Array Event_id Format Graph List Order
