lib/core/sparse_set.mli:
