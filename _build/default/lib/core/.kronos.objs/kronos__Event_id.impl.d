lib/core/event_id.ml: Format Hashtbl Int Int64
