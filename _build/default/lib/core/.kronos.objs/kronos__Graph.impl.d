lib/core/graph.ml: Array Event_id Hashtbl Int_vec List Order Sparse_set Sys
