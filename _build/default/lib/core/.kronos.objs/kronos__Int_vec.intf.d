lib/core/int_vec.mli:
