lib/core/graph.mli: Event_id Order
