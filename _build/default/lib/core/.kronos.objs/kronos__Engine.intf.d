lib/core/engine.mli: Event_id Format Graph Order
