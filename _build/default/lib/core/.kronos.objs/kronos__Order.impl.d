lib/core/order.ml: Event_id Format
