lib/core/int_vec.ml: Array List Sys
