lib/core/event_id.mli: Format
