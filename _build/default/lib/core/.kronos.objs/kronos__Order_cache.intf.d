lib/core/order_cache.mli: Event_id Order
