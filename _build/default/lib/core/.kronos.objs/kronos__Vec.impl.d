lib/core/vec.ml: Array
