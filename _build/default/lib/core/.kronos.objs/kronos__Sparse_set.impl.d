lib/core/sparse_set.ml: Array Sys
