lib/core/vec.mli:
