lib/core/order_cache.ml: Event_id Hashtbl List Option Order
