lib/core/order.mli: Event_id Format
