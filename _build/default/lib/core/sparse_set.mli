(** Briggs–Torczon sparse set over the integers [0, capacity).

    This is the visited-set structure from Section 2.2 / Figure 3 of the
    Kronos paper.  Membership of [i] holds iff
    [sparse.(i) < ptr && dense.(sparse.(i)) = i]; insertion writes one slot of
    each array and bumps [ptr]; {!clear} resets [ptr] to zero in constant
    time.  The arrays need no initialization, so a traversal touches memory
    proportional only to the number of vertices visited. *)

type t

val create : int -> t
(** [create capacity] supports members in [0, capacity). *)

val capacity : t -> int

val cardinal : t -> int
(** Number of members currently in the set. *)

val mem : t -> int -> bool
(** @raise Invalid_argument if the element is out of range. *)

val add : t -> int -> unit
(** [add s i] inserts [i].  No-op when already present.
    @raise Invalid_argument if out of range. *)

val clear : t -> unit
(** Constant-time reset. *)

val grow : t -> int -> unit
(** [grow s capacity] raises the capacity, preserving current members.
    No-op if [capacity] is not larger than the current one. *)

val iter : (int -> unit) -> t -> unit
(** Iterate over members in insertion order. *)

val memory_bytes : t -> int
(** Approximate heap footprint in bytes. *)
