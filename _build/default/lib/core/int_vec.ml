type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 4) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let length v = v.len
let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Int_vec: index out of bounds"

let get v i = check v i; Array.unsafe_get v.data i
let set v i x = check v i; Array.unsafe_set v.data i x

let grow v =
  let data = Array.make (2 * Array.length v.data) 0 in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Int_vec.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let last v =
  if v.len = 0 then invalid_arg "Int_vec.last: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v = v.len <- 0

let mem v x =
  let rec loop i = i < v.len && (Array.unsafe_get v.data i = x || loop (i + 1)) in
  loop 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (get v i :: acc) in
  loop (v.len - 1) []

let of_list xs =
  let v = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push v) xs;
  v

let remove_first v x =
  let rec find i = if i >= v.len then -1 else if get v i = x then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    v.len <- v.len - 1;
    if i < v.len then Array.unsafe_set v.data i (Array.unsafe_get v.data v.len);
    true
  end

let capacity_bytes v = (Array.length v.data + 2) * (Sys.word_size / 8)
