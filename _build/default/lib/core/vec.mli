(** Growable polymorphic vector.

    The caller supplies a [dummy] element used to fill unused slots of the
    backing array; elements past the length are reset to [dummy] so no stale
    pointer is retained. *)

type 'a t

val create : dummy:'a -> ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** @raise Invalid_argument if empty. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val to_list : 'a t -> 'a list
