lib/catocs/fail_safe.mli:
