lib/catocs/fire_alarm.mli:
