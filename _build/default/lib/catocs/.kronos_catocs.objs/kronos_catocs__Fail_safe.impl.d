lib/catocs/fail_safe.ml: Engine Event_id Hashtbl Kronos Kronos_simnet Order
