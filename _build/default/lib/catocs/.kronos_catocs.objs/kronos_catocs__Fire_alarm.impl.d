lib/catocs/fire_alarm.ml: Engine Event_id Hashtbl Kronos Kronos_simnet List Option Order
