lib/catocs/shop_floor.ml: Engine Event_id Kronos Kronos_simnet Order
