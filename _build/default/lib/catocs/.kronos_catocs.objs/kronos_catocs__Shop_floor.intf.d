lib/catocs/shop_floor.mli:
