(** The Cheriton–Skeen fire-alarm scenario (Section 3.4).

    Sensors report FIRE and FIRE-OUT per location; each pair is connected by
    one happens-before edge in Kronos (fire -> fire-out).  A monitor
    receives the reports over an order-destroying channel and must always
    know which fires still burn.

    - With Kronos, the monitor matches a FIRE-OUT to exactly the fire
      ordered before it, so a delayed FIRE-OUT can never extinguish a later
      fire.
    - Without Kronos, the monitor applies the CATOCS-paper failure mode: a
      FIRE-OUT is taken to extinguish whatever fire at that location it
      currently believes is burning. *)

type outcome = {
  burning_truth : int;     (** fires genuinely still burning at the end *)
  burning_believed : int;  (** fires the monitor believes are burning *)
  misattributions : int;   (** FIRE-OUTs matched to the wrong fire *)
}

val run : kronos:bool -> seed:int64 -> locations:int -> rounds:int -> outcome
(** Each location goes through [rounds] fire / fire-out cycles; the last
    fire of each odd-numbered location is left burning. *)

val correct : outcome -> bool
(** Monitor's belief matches ground truth. *)
