(** The fail-safe kill-switch of Section 3.4: a component that couples the
    fire alarm with the shop-floor control units {e only} through the event
    dependency graph, without modifying either.

    For every fire cycle the fail-safe:
    - on FIRE [f]: issues STOP [s] with [f -> s];
    - on FIRE-OUT [o] (where the alarm recorded [f -> o]): records
      [s -> o], then issues START [st] with [o -> st].

    The machine applies commands with last-ordered-wins semantics, so it is
    stopped during each fire and running after the last extinguishing, no
    matter how the channel reorders deliveries. *)

type outcome = {
  machine_running_at_end : bool;
  ordering_correct : bool;
      (** every cycle satisfies fire -> stop -> fire-out -> start in the
          event dependency graph *)
  stops_issued : int;
  starts_issued : int;
}

val run : seed:int64 -> cycles:int -> outcome

val correct : outcome -> bool
