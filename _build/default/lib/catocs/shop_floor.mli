(** The Cheriton–Skeen shop-floor control scenario (Section 3.4).

    A control unit issues alternating START/STOP commands to a machine
    through a channel that does not preserve order (the "common database" of
    the CATOCS paper).  Each command is a Kronos event, [must]-ordered after
    the previous command.

    - With Kronos, the machine discards any command whose event is ordered
      before the last command it applied, so its final state always matches
      the last command {e issued}.
    - Without Kronos (the CATOCS baseline), the machine applies commands in
      arrival order and can end up running when it should be stopped. *)

type machine_state = Running | Stopped

type outcome = {
  final_state : machine_state;
  expected_state : machine_state;  (** per the last command issued *)
  commands_discarded : int;        (** stale commands ignored (Kronos mode) *)
  reordered_deliveries : int;      (** deliveries out of issue order *)
}

val run : kronos:bool -> seed:int64 -> commands:int -> outcome
(** Simulate [commands] alternating commands over a reordering channel. *)

val correct : outcome -> bool
(** Did the machine end in the state the control unit last commanded? *)
