module Rng = Kronos_simnet.Rng

type transfer = { from_account : int; to_account : int; amount : int }

type t = {
  rng : Rng.t;
  accounts : int;
  initial_balance : int;
  zipf : Zipf.t option;
}

let create ~rng ~accounts ?(initial_balance = 1000) ?(skew = 0.0) () =
  if accounts < 2 then invalid_arg "Bank.create: need at least two accounts";
  let zipf = if skew > 0.0 then Some (Zipf.create ~n:accounts ~exponent:skew ()) else None in
  { rng; accounts; initial_balance; zipf }

let accounts t = t.accounts
let initial_balance t = t.initial_balance
let total_money t = t.accounts * t.initial_balance

let pick_account t =
  match t.zipf with
  | Some z -> Zipf.sample z t.rng
  | None -> Rng.int t.rng t.accounts

let next_transfer t =
  let from_account = pick_account t in
  let rec pick_other () =
    let a = pick_account t in
    if a = from_account then pick_other () else a
  in
  let to_account = pick_other () in
  { from_account; to_account; amount = 1 + Rng.int t.rng 100 }

let account_key i = Printf.sprintf "acct-%06d" i
