type t = { n : int; cdf : float array }

let create ~n ?(exponent = 0.99) () =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if exponent < 0.0 then invalid_arg "Zipf.create: exponent must be >= 0";
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (i + 1)) exponent);
    cdf.(i) <- !total
  done;
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. !total
  done;
  { n; cdf }

let n t = t.n

let sample t rng =
  let u = Kronos_simnet.Rng.float rng 1.0 in
  (* first index whose cdf >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (t.n - 1)
