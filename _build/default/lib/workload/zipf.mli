(** Zipf-distributed sampling over [0, n), used to generate skewed key
    popularity in the key-value store workloads. *)

type t

val create : n:int -> ?exponent:float -> unit -> t
(** [exponent] (default 0.99, YCSB-style) controls the skew; 0 is uniform.
    @raise Invalid_argument if [n <= 0] or [exponent < 0]. *)

val sample : t -> Kronos_simnet.Rng.t -> int
(** Draw a rank in [0, n); rank 0 is the most popular. *)

val n : t -> int
