(** Random graph generators for the paper's workloads.

    - {!erdos_renyi_gnm} / {!erdos_renyi_gnp}: the Erdős–Rényi model used to
      pre-load the event dependency graph (Figures 8 and 12);
    - {!preferential_attachment}: a Barabási–Albert graph standing in for
      the Twitter ego-network subset of Figure 6 (81,306 vertices,
      1,768,149 friendship links, heavy-tailed degrees) — the real dataset
      is not redistributable, and the experiment depends on the degree
      distribution, not on vertex identities. *)

type t = {
  n : int;                    (** number of vertices, labelled 0..n-1 *)
  edges : (int * int) array;  (** undirected unless stated otherwise *)
}

val erdos_renyi_gnm : rng:Kronos_simnet.Rng.t -> n:int -> m:int -> t
(** Exactly [m] distinct edges chosen uniformly (no self-loops).
    @raise Invalid_argument if [m] exceeds the number of possible edges. *)

val erdos_renyi_gnp : rng:Kronos_simnet.Rng.t -> n:int -> p:float -> t
(** Each possible edge present independently with probability [p];
    implemented by sampling a binomial edge count then delegating to
    {!erdos_renyi_gnm}, which is equivalent and fast for small [p]. *)

val preferential_attachment :
  rng:Kronos_simnet.Rng.t -> n:int -> edges_per_vertex:int -> t
(** Barabási–Albert: each arriving vertex attaches to [edges_per_vertex]
    existing vertices chosen proportionally to their degree.  Average degree
    approaches [2 * edges_per_vertex]. *)

val twitter_like : rng:Kronos_simnet.Rng.t -> ?scale:float -> unit -> t
(** The Figure 6 "Twitter" stand-in: preferential attachment sized to the
    paper's dataset (81,306 vertices, average degree ~21.7), optionally
    scaled down by [scale] in (0, 1] for faster runs. *)

(** {1 Statistics} *)

val degrees : t -> int array
val average_degree : t -> float
val max_degree : t -> int

val adjacency : t -> int list array
(** Undirected adjacency lists. *)
