(** The banking workload of Figure 7: accounts with balances and random
    transfers between account pairs, optionally skewed so popular accounts
    contend. *)

type transfer = { from_account : int; to_account : int; amount : int }

type t

val create :
  rng:Kronos_simnet.Rng.t ->
  accounts:int ->
  ?initial_balance:int ->
  ?skew:float ->
  unit ->
  t
(** [skew] is the Zipf exponent over accounts (default 0.0 = uniform,
    matching independent random transfers). *)

val accounts : t -> int
val initial_balance : t -> int
val total_money : t -> int
(** [accounts * initial_balance] — conserved by correct transfers. *)

val next_transfer : t -> transfer
(** A random transfer between two distinct accounts, amount in [1, 100]. *)

val account_key : int -> string
(** Key under which an account's balance is stored. *)
