module Rng = Kronos_simnet.Rng

type t = { n : int; edges : (int * int) array }

let max_edges n = n * (n - 1) / 2

(* Normalize an undirected edge so (u, v) with u < v is canonical. *)
let canon u v = if u < v then (u, v) else (v, u)

let erdos_renyi_gnm ~rng ~n ~m =
  if n < 2 then invalid_arg "Graph_gen.erdos_renyi_gnm: need n >= 2";
  if m < 0 || m > max_edges n then
    invalid_arg "Graph_gen.erdos_renyi_gnm: m out of range";
  let seen = Hashtbl.create (2 * m) in
  let edges = Array.make m (0, 0) in
  let count = ref 0 in
  while !count < m do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let e = canon u v in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.add seen e ();
        edges.(!count) <- e;
        incr count
      end
    end
  done;
  { n; edges }

(* Binomial(max_edges, p) sampled as a sum of Bernoullis for small inputs and
   by normal approximation for large ones; the Figure 12 sweep only needs the
   expected edge count to be right. *)
let binomial rng trials p =
  if trials <= 10_000 then begin
    let k = ref 0 in
    for _ = 1 to trials do
      if Rng.bernoulli rng p then incr k
    done;
    !k
  end
  else begin
    let mean = float_of_int trials *. p in
    let sigma = sqrt (mean *. (1.0 -. p)) in
    (* Box–Muller *)
    let u1 = max epsilon_float (Rng.float rng 1.0) in
    let u2 = Rng.float rng 1.0 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let k = int_of_float (Float.round (mean +. (sigma *. z))) in
    max 0 (min trials k)
  end

let erdos_renyi_gnp ~rng ~n ~p =
  if p < 0.0 || p > 1.0 then invalid_arg "Graph_gen.erdos_renyi_gnp: bad p";
  let m = binomial rng (max_edges n) p in
  erdos_renyi_gnm ~rng ~n ~m

let preferential_attachment ~rng ~n ~edges_per_vertex =
  let m = edges_per_vertex in
  if m < 1 then invalid_arg "Graph_gen.preferential_attachment: need m >= 1";
  if n <= m then invalid_arg "Graph_gen.preferential_attachment: need n > m";
  (* endpoint pool: each vertex appears once per incident edge, so a uniform
     draw from the pool is degree-proportional *)
  let pool = ref (Array.make (2 * m * n) 0) in
  let pool_len = ref 0 in
  let push x =
    if !pool_len = Array.length !pool then begin
      let bigger = Array.make (2 * Array.length !pool) 0 in
      Array.blit !pool 0 bigger 0 !pool_len;
      pool := bigger
    end;
    !pool.(!pool_len) <- x;
    incr pool_len
  in
  let edges = ref [] in
  let n_edges = ref 0 in
  (* seed: a clique-ish core of m+1 vertices connected in a ring *)
  for v = 0 to m do
    let u = (v + 1) mod (m + 1) in
    edges := canon u v :: !edges;
    incr n_edges;
    push u;
    push v
  done;
  for v = m + 1 to n - 1 do
    let targets = Hashtbl.create m in
    while Hashtbl.length targets < m do
      let u = !pool.(Rng.int rng !pool_len) in
      if u <> v then Hashtbl.replace targets u ()
    done;
    Hashtbl.iter
      (fun u () ->
        edges := canon u v :: !edges;
        incr n_edges;
        push u;
        push v)
      targets
  done;
  { n; edges = Array.of_list !edges }

let twitter_like ~rng ?(scale = 1.0) () =
  if scale <= 0.0 || scale > 1.0 then
    invalid_arg "Graph_gen.twitter_like: scale must be in (0, 1]";
  let n = max 100 (int_of_float (81_306.0 *. scale)) in
  (* paper's dataset: 1,768,149 links / 81,306 users ~ 21.7 average degree,
     so ~11 attachments per arriving vertex *)
  preferential_attachment ~rng ~n ~edges_per_vertex:11

let degrees t =
  let d = Array.make t.n 0 in
  Array.iter
    (fun (u, v) ->
      d.(u) <- d.(u) + 1;
      d.(v) <- d.(v) + 1)
    t.edges;
  d

let average_degree t =
  if t.n = 0 then 0.0 else 2.0 *. float_of_int (Array.length t.edges) /. float_of_int t.n

let max_degree t = Array.fold_left max 0 (degrees t)

let adjacency t =
  let adj = Array.make t.n [] in
  Array.iter
    (fun (u, v) ->
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    t.edges;
  adj
