lib/workload/bank.ml: Kronos_simnet Printf Zipf
