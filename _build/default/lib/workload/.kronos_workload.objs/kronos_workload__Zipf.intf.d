lib/workload/zipf.mli: Kronos_simnet
