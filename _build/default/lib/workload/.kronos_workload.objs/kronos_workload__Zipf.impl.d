lib/workload/zipf.ml: Array Float Kronos_simnet
