lib/workload/graph_gen.mli: Kronos_simnet
