lib/workload/bank.mli: Kronos_simnet
