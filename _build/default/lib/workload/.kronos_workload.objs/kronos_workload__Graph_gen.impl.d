lib/workload/graph_gen.ml: Array Float Hashtbl Kronos_simnet
