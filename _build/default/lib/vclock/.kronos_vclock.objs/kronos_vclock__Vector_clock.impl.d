lib/vclock/vector_clock.ml: Array Format String
