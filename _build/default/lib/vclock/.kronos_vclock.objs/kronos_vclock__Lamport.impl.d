lib/vclock/lamport.ml: Format Int
