lib/vclock/lamport.mli: Format
