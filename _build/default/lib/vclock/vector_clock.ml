type t = { process : int; clock : int array }

type stamp = int array

let create ~processes ~process =
  if process < 0 || process >= processes then
    invalid_arg "Vector_clock.create: process out of range";
  { process; clock = Array.make processes 0 }

let tick t =
  t.clock.(t.process) <- t.clock.(t.process) + 1;
  Array.copy t.clock

let send = tick

let receive t stamp =
  if Array.length stamp <> Array.length t.clock then
    invalid_arg "Vector_clock.receive: dimension mismatch";
  Array.iteri (fun i v -> if v > t.clock.(i) then t.clock.(i) <- v) stamp;
  tick t

type relation = Before | After | Concurrent | Equal

let compare_stamp a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.compare_stamp: dimension mismatch";
  let le = ref true and ge = ref true in
  Array.iteri
    (fun i av ->
      if av > b.(i) then le := false;
      if av < b.(i) then ge := false)
    a;
  match !le, !ge with
  | true, true -> Equal
  | true, false -> Before
  | false, true -> After
  | false, false -> Concurrent

let dimension = Array.length
let component s i = s.(i)

let pp_stamp ppf s =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int s)))
