(** Vector clocks (Fidge/Mattern) — the finer-grained ordering baseline.

    Vector clocks capture the happens-before relation of a message-passing
    execution exactly, but (a) cost one entry per process, (b) relate every
    message a process received to everything it later sends (false positives
    with respect to {e application-level} causality), and (c) assign the
    order at timestamping time (the "early assignment" problem of
    Section 1).  Kronos's event dependency graph avoids all three. *)

type t
(** Per-process clock state. *)

type stamp
(** An immutable vector timestamp. *)

val create : processes:int -> process:int -> t
(** @raise Invalid_argument unless [0 <= process < processes]. *)

val tick : t -> stamp
val send : t -> stamp
val receive : t -> stamp -> stamp

type relation = Before | After | Concurrent | Equal

val compare_stamp : stamp -> stamp -> relation

val dimension : stamp -> int
val component : stamp -> int -> int

val pp_stamp : Format.formatter -> stamp -> unit
