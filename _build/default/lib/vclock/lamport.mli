(** Lamport logical clocks (Lamport 1978) — the coarsest of the ordering
    baselines the paper compares against.

    A Lamport clock totally orders events by [(counter, process)] but can
    only witness, never refute, happens-before: [a -> b] implies
    [timestamp a < timestamp b], while the converse fails (the "false
    positive" problem of Section 1). *)

type t
(** Per-process clock state. *)

type stamp = { counter : int; process : int }

val create : process:int -> t

val tick : t -> stamp
(** Local event: advance and return the new timestamp. *)

val send : t -> stamp
(** Timestamp for an outgoing message (advances the clock). *)

val receive : t -> stamp -> stamp
(** Merge an incoming message's timestamp (advances past it). *)

val compare_stamp : stamp -> stamp -> int
(** Total order: counter, then process id. *)

val before : stamp -> stamp -> bool
(** [before a b] in the induced total order.  NOTE: this is an
    over-approximation of happens-before — see module description. *)

val pp_stamp : Format.formatter -> stamp -> unit
