type t = { process : int; mutable counter : int }

type stamp = { counter : int; process : int }

let create ~process : t = { process; counter = 0 }

let tick (t : t) =
  t.counter <- t.counter + 1;
  { counter = t.counter; process = t.process }

let send = tick

let receive (t : t) stamp =
  t.counter <- max t.counter stamp.counter;
  tick t

let compare_stamp a b =
  match Int.compare a.counter b.counter with
  | 0 -> Int.compare a.process b.process
  | c -> c

let before a b = compare_stamp a b < 0

let pp_stamp ppf s = Format.fprintf ppf "%d@%d" s.counter s.process
