open Kronos
module Shard = Kronos_kvstore.Shard

type txn_record = Event_id.t * (string * string option) list * (string * string) list

let serializable ~shards ~log ?query () =
  let by_event = Hashtbl.create (List.length log) in
  List.iter
    (fun ((event, _, _) as record) -> Hashtbl.replace by_event event record)
    log;
  let check_key shard key =
    let history = Shard.history shard key in
    let committed =
      List.filter (fun (e, _) -> not (Event_id.equal e Event_id.none)) history
    in
    (* seed value = last plain Put before any transactional write *)
    let seed =
      List.fold_left
        (fun acc (e, v) -> if Event_id.equal e Event_id.none then Some v else acc)
        None history
    in
    let rec walk prev_value prev_event = function
      | [] -> Ok ()
      | (event, value) :: rest ->
        let reads_ok =
          match Hashtbl.find_opt by_event event with
          | None -> Ok () (* transaction from another executor: skip read check *)
          | Some (_, reads, _) -> (
              match List.assoc_opt key reads with
              | None | Some None when prev_value = None -> Ok ()
              | Some observed when observed = prev_value -> Ok ()
              | Some observed ->
                Error
                  (Printf.sprintf
                     "key %s: txn %s read %s but previous committed value was %s"
                     key (Event_id.to_string event)
                     (Option.value ~default:"<none>" observed)
                     (Option.value ~default:"<none>" prev_value))
              | None -> Ok ())
        in
        (match reads_ok with
         | Error _ as e -> e
         | Ok () -> (
             match query, prev_event with
             | Some query, Some prev
               when not (Order.relation_equal (query prev event) Order.Before) ->
               Error
                 (Printf.sprintf
                    "key %s: writers %s and %s not ordered in Kronos" key
                    (Event_id.to_string prev) (Event_id.to_string event))
             | _ -> walk (Some value) (Some event) rest))
    in
    walk seed None committed
  in
  let keys_of shard =
    (* every key with at least one committed transactional write *)
    List.concat_map
      (fun ((_, _, writes) : txn_record) -> List.map fst writes)
      log
    |> List.sort_uniq String.compare
    |> List.filter (fun key -> Shard.history shard key <> [])
  in
  List.fold_left
    (fun acc shard ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        List.fold_left
          (fun acc key ->
            match acc with Error _ -> acc | Ok () -> check_key shard key)
          (Ok ()) (keys_of shard))
    (Ok ()) shards

let conservation ~shards ~keys ~expected_total =
  let total =
    List.fold_left
      (fun acc key ->
        let value =
          List.fold_left
            (fun found shard ->
              match found with
              | Some _ -> found
              | None -> Shard.peek shard key)
            None shards
        in
        acc + (match value with Some v -> int_of_string v | None -> 0))
      0 keys
  in
  if total = expected_total then Ok ()
  else
    Error
      (Printf.sprintf "conservation violated: expected %d, found %d"
         expected_total total)
