(** Serializability checking for Kronos-ordered transaction runs.

    For every key, the shard's committed write history defines the key's
    version chain.  A run is serializable in our protocol iff:

    - every transaction that read a key observed exactly the value written
      by that key's immediately preceding committed writer (or the seed
      value when none);
    - consecutive writers of a key are ordered [Before] in the event
      dependency graph (the Kronos chain mirrors the applied order).

    Atomicity of the banking workload is checked separately with
    {!conservation}. *)

open Kronos

type txn_record = Event_id.t * (string * string option) list * (string * string) list
(** (event, reads-with-values, writes) of a committed transaction. *)

val serializable :
  shards:Kronos_kvstore.Shard.t list ->
  log:txn_record list ->
  ?query:(Event_id.t -> Event_id.t -> Order.relation) ->
  unit ->
  (unit, string) result
(** [Error reason] pinpoints the first violation found.  [query], when
    given, additionally verifies the Kronos ordering of consecutive
    writers. *)

val conservation :
  shards:Kronos_kvstore.Shard.t list ->
  keys:string list ->
  expected_total:int ->
  (unit, string) result
(** Sum the integer values of [keys] across [shards] and compare. *)
