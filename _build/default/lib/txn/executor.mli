(** Transactional clients for the sharded key-value store — the three
    disciplines compared in Figure 7 of the paper.

    - {!Put_and_pray}: uncoordinated reads and writes (the MongoDB
      stand-in).  Fast, but non-atomic and non-serializable: concurrent
      transfers can lose money.
    - {!Locking}: Percolator-style two-phase locking.  Locks are acquired
      key by key in global key order (deadlock-free), held across the
      read-compute-write round trips, then released.  Serializable but
      slow: every transaction holds its locks for several network round
      trips.
    - {!Kronos_ordered}: the paper's Section 3.3 design.  Each transaction
      is a Kronos event; shards pin the keys only for the prepare→decide
      window and report "happens-after the last writer/readers" constraints,
      which the client commits in a single atomic [assign_order] batch.
      Conflicting prepares park at the shard (admitted oldest-first when the
      pin clears) and time out if a cross-shard deadlock arises, in which
      case the transaction aborts and retries — so there are no long-held
      locks.

    All executors are asynchronous over the simulated network; transaction
    ids must be drawn from one shared {!id_source} per simulation so that
    transaction ages (used for queueing order) are globally consistent. *)

open Kronos

type mode = Put_and_pray | Locking | Kronos_ordered

type id_source = int ref

val id_source : unit -> id_source

type result =
  | Committed of {
      event : Event_id.t option;  (** the transaction's event (Kronos mode) *)
      reads : (string * string option) list;
    }
  | Aborted  (** gave up after [max_retries] prepare rejections *)

type t

val create :
  mode:mode ->
  sim:Kronos_simnet.Sim.t ->
  kv:Kronos_kvstore.Kv_client.t ->
  shards:Kronos_simnet.Net.addr array ->
  ids:id_source ->
  ?kronos:Kronos_service.Client.t ->
  ?max_retries:int ->
  unit ->
  t
(** [kronos] is required for (and only used by) [Kronos_ordered].
    [max_retries] (default 50) bounds prepare-timeout retry loops.
    @raise Invalid_argument if [Kronos_ordered] without [kronos]. *)

val execute :
  t ->
  reads:string list ->
  writes_of:((string * string option) list -> (string * string) list) ->
  (result -> unit) ->
  unit
(** Run one transaction: read [reads], derive the write set with
    [writes_of] from the values read, apply.  [writes_of] may only write
    keys in [reads] (the pin protocol pins the read set). *)

val transfer : t -> Kronos_workload.Bank.transfer -> (result -> unit) -> unit
(** The banking transaction: move money between two account keys. *)

(** {1 Statistics} *)

val committed : t -> int
val aborted : t -> int
val retries : t -> int
(** Wait-die rejections that led to a retry. *)

val txn_log : t -> (Event_id.t * (string * string option) list * (string * string) list) list
(** Committed Kronos-mode transactions: (event, reads, writes), oldest
    first — input for {!Checker.serializable}. *)
