lib/txn/checker.mli: Event_id Kronos Kronos_kvstore Order
