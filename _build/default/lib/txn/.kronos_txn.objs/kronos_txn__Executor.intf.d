lib/txn/executor.mli: Event_id Kronos Kronos_kvstore Kronos_service Kronos_simnet Kronos_workload
