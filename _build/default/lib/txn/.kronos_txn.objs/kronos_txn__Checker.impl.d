lib/txn/checker.ml: Event_id Hashtbl Kronos Kronos_kvstore List Option Order Printf String
