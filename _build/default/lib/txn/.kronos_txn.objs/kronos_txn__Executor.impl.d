lib/txn/executor.ml: Array Event_id Hashtbl Kronos Kronos_kvstore Kronos_service Kronos_simnet Kronos_workload List Option Order String
