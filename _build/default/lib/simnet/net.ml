type addr = int

type latency = { base : float; jitter : float; drop : float }

let default_latency = { base = 100e-6; jitter = 50e-6; drop = 0.0 }

type 'm t = {
  sim : Sim.t;
  rng : Rng.t;
  fifo : bool;
  default : latency;
  handlers : (addr, src:addr -> 'm -> unit) Hashtbl.t;
  links : (addr * addr, latency) Hashtbl.t;
  last_delivery : (addr * addr, float) Hashtbl.t;
  mutable partitions : (addr list * addr list) list;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(latency = default_latency) ?(fifo = true) sim =
  {
    sim;
    rng = Rng.split (Sim.rng sim);
    fifo;
    default = latency;
    handlers = Hashtbl.create 64;
    links = Hashtbl.create 64;
    last_delivery = Hashtbl.create 64;
    partitions = [];
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let sim t = t.sim
let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped

let register t a handler = Hashtbl.replace t.handlers a handler
let unregister t a = Hashtbl.remove t.handlers a
let is_registered t a = Hashtbl.mem t.handlers a

let set_link t ~src ~dst latency = Hashtbl.replace t.links (src, dst) latency

let partition t a b = t.partitions <- (a, b) :: t.partitions
let heal t = t.partitions <- []

let partitioned t src dst =
  List.exists
    (fun (a, b) ->
      (List.mem src a && List.mem dst b) || (List.mem src b && List.mem dst a))
    t.partitions

let link_latency t src dst =
  match Hashtbl.find_opt t.links (src, dst) with
  | Some l -> l
  | None -> t.default

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  let l = link_latency t src dst in
  if partitioned t src dst || (l.drop > 0.0 && Rng.bernoulli t.rng l.drop) then
    t.dropped <- t.dropped + 1
  else begin
    let delay = l.base +. (if l.jitter > 0.0 then Rng.float t.rng l.jitter else 0.0) in
    let deliver_at =
      let nominal = Sim.now t.sim +. delay in
      if not t.fifo then nominal
      else begin
        let key = (src, dst) in
        let prev = Option.value ~default:neg_infinity (Hashtbl.find_opt t.last_delivery key) in
        let at = if nominal <= prev then prev +. 1e-9 else nominal in
        Hashtbl.replace t.last_delivery key at;
        at
      end
    in
    ignore
      (Sim.schedule_at t.sim ~time:deliver_at (fun () ->
           match Hashtbl.find_opt t.handlers dst with
           | Some handler ->
             t.delivered <- t.delivered + 1;
             handler ~src msg
           | None -> t.dropped <- t.dropped + 1))
  end
