type t = {
  heap : timer Heap.t;
  root_rng : Rng.t;
  mutable clock : float;
  mutable seq : int;
  mutable live : int;  (* scheduled and not cancelled *)
}

and timer = {
  mutable cancelled : bool;
  mutable action : unit -> unit;
  mutable in_heap : bool;  (* counted in [live]? *)
  owner : t;
}

let create ?(seed = 1L) () =
  { heap = Heap.create (); root_rng = Rng.create ~seed; clock = 0.0;
    seq = 0; live = 0 }

let rng t = t.root_rng
let now t = t.clock
let pending t = t.live

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  let timer = { cancelled = false; action; in_heap = true; owner = t } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap ~time ~seq:t.seq timer;
  timer

let schedule t ~delay action = schedule_at t ~time:(t.clock +. delay) action

(* Cancellation is lazy in the heap (the entry is skipped when popped) but
   eager in the [live] count. *)
let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    timer.action <- ignore;
    if timer.in_heap then timer.owner.live <- timer.owner.live - 1
  end

let every t ~period action =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  (* The handle outlives each underlying one-shot timer: cancelling it stops
     the recurrence because each tick checks the shared flag. *)
  let handle = { cancelled = false; action = ignore; in_heap = false; owner = t } in
  let rec tick () =
    if not handle.cancelled then begin
      action ();
      if not handle.cancelled then ignore (schedule t ~delay:period tick)
    end
  in
  ignore (schedule t ~delay:period tick);
  handle

let step t =
  match Heap.pop t.heap with
  | None -> false
  | Some (time, _, timer) ->
    t.clock <- max t.clock time;
    if not timer.cancelled then begin
      t.live <- t.live - 1;
      timer.in_heap <- false;
      timer.action ()
    end;
    true

let run ?until t =
  let continue () =
    match until, Heap.peek_time t.heap with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit -> if t.clock < limit then t.clock <- limit
  | None -> ()
