type job =
  | Fixed of float * (unit -> unit)
  | Measured of float * (unit -> unit)

type t = {
  sim : Sim.t;
  queue : job Queue.t;
  mutable running : bool;
  mutable total_busy : float;
  mutable jobs : int;
}

let create sim =
  { sim; queue = Queue.create (); running = false; total_busy = 0.0; jobs = 0 }

let total_busy t = t.total_busy
let jobs t = t.jobs

let busy_until t = if t.running then Sim.now t.sim else neg_infinity

(* Serve jobs one at a time: a job runs when the server reaches it, then the
   server stays busy for the job's cost before taking the next one. *)
let rec pump t =
  if (not t.running) && not (Queue.is_empty t.queue) then begin
    t.running <- true;
    let finish cost =
      t.total_busy <- t.total_busy +. cost;
      ignore
        (Sim.schedule t.sim ~delay:cost (fun () ->
             t.running <- false;
             pump t))
    in
    match Queue.pop t.queue with
    | Fixed (cost, run) ->
      run ();
      finish cost
    | Measured (scale, run) ->
      let t0 = Unix.gettimeofday () in
      run ();
      finish (scale *. (Unix.gettimeofday () -. t0))
  end

let submit_fixed t ~cost job =
  if cost < 0.0 then invalid_arg "Service_queue.submit_fixed: negative cost";
  t.jobs <- t.jobs + 1;
  Queue.push (Fixed (cost, job)) t.queue;
  pump t

let submit_measured t ?(scale = 1.0) job =
  t.jobs <- t.jobs + 1;
  Queue.push (Measured (scale, job)) t.queue;
  pump t
