type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty h = h.len = 0
let size h = h.len

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && less h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.len && less h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h ~time ~seq value =
  let entry = { time; seq; value } in
  if h.len = Array.length h.data then begin
    let cap = max 8 (2 * Array.length h.data) in
    let data = Array.make cap entry in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- entry;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some (top.time, top.seq, top.value)
  end

let peek_time h = if h.len = 0 then None else Some h.data.(0).time
