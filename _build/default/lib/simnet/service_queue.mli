(** Single-server work queue: models the CPU capacity of a simulated server.

    Link latency alone cannot reproduce capacity effects (saturation,
    queueing delay, load-dependent throughput).  A [Service_queue] serializes
    jobs and charges each one a busy period, so a server's throughput is
    bounded by [1 / cost] regardless of how many clients hit it.

    Jobs run at the moment the server gets to them (queueing delay
    included); their cost is either declared up front ({!submit_fixed}) or
    measured as the scaled wall-clock time the job actually took
    ({!submit_measured}) — the latter lets a simulated server charge the
    {e real} computation of the Kronos engine it hosts. *)

type t

val create : Sim.t -> t

val submit_fixed : t -> cost:float -> (unit -> unit) -> unit
(** Run the job when the server is free and keep the server busy for
    [cost] virtual seconds afterwards.  @raise Invalid_argument if [cost]
    is negative. *)

val submit_measured : t -> ?scale:float -> (unit -> unit) -> unit
(** Run the job when the server is free; its busy period is the job's
    measured wall-clock duration times [scale] (default 1.0). *)

val busy_until : t -> float
(** Current virtual time when the server is mid-job, [neg_infinity] when
    idle. *)

val total_busy : t -> float
(** Accumulated busy time — divide by elapsed time for utilization. *)

val jobs : t -> int
