lib/simnet/net.mli: Sim
