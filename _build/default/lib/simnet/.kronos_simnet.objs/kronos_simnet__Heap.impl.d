lib/simnet/heap.ml: Array
