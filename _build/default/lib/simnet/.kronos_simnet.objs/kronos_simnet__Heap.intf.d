lib/simnet/heap.mli:
