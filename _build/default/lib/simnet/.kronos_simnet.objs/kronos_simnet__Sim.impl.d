lib/simnet/sim.ml: Heap Rng
