lib/simnet/rng.ml: Array Int64
