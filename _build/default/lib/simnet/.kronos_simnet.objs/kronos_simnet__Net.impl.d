lib/simnet/net.ml: Hashtbl List Option Rng Sim
