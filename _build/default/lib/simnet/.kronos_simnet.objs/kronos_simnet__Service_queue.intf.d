lib/simnet/service_queue.mli: Sim
