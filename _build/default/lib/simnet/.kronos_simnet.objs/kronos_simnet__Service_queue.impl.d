lib/simnet/service_queue.ml: Queue Sim Unix
