lib/simnet/rng.mli:
