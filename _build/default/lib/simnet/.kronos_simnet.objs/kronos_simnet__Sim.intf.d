lib/simnet/sim.mli: Rng
