(** Discrete-event scheduler with a virtual clock.

    Actions are thunks scheduled at absolute or relative virtual times;
    {!run} executes them in (time, scheduling-order) order.  The whole
    simulation is single-threaded and, given a fixed seed for the attached
    {!Rng}, bit-for-bit reproducible. *)

type t

type timer
(** Handle for cancelling a scheduled action. *)

val create : ?seed:int64 -> unit -> t
(** [seed] (default 1) initializes the simulation's root PRNG. *)

val rng : t -> Rng.t
(** The root PRNG; components should take {!Rng.split}s of it. *)

val now : t -> float
(** Current virtual time, in seconds. *)

val schedule : t -> delay:float -> (unit -> unit) -> timer
(** Run a thunk [delay] seconds from now (clamped to now for negative
    delays). *)

val schedule_at : t -> time:float -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Cancelled actions are skipped when their time arrives.  Idempotent. *)

val every : t -> period:float -> (unit -> unit) -> timer
(** Run a thunk periodically, starting one period from now.  Cancelling the
    returned timer stops the recurrence. *)

val step : t -> bool
(** Execute the earliest pending action.  [false] when nothing is pending. *)

val run : ?until:float -> t -> unit
(** Execute actions until the queue empties or virtual time would exceed
    [until].  With [until], the clock is advanced to exactly [until] before
    returning. *)

val pending : t -> int
(** Number of scheduled (uncancelled) actions. *)
