(** Binary min-heap keyed by [(time, sequence)].

    The sequence number breaks ties deterministically in insertion order, so
    two actions scheduled for the same instant always run in the order they
    were scheduled — a requirement for reproducible simulation. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> seq:int -> 'a -> unit

val pop : 'a t -> (float * int * 'a) option
(** Remove and return the minimum element. *)

val peek_time : 'a t -> float option
(** Earliest scheduled time without removing. *)
