(** Deterministic splittable PRNG (SplitMix64).

    Every stochastic component of the simulator owns its own stream obtained
    with {!split}, so adding randomness to one component never perturbs the
    draws of another — a property plain [Random.State] sharing lacks. *)

type t

val create : seed:int64 -> t

val split : t -> t
(** A statistically independent stream derived from (and advancing) [t]. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on an
    empty array. *)
