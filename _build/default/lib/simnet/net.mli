(** Simulated message network.

    Processes are integer addresses with a delivery handler.  Messages are
    delivered asynchronously after a per-link latency draw; links are FIFO by
    default (like a TCP connection).  Crashes ({!unregister}), partitions and
    probabilistic drops let tests and benchmarks inject the failures the
    paper's fault-tolerance experiment needs. *)

type addr = int

type latency = {
  base : float;   (** fixed one-way delay, seconds *)
  jitter : float; (** additional uniform [0, jitter) delay *)
  drop : float;   (** probability a message is silently lost *)
}

val default_latency : latency
(** 100 µs base, 50 µs jitter, no drops — a LAN-ish link. *)

type 'm t

val create : ?latency:latency -> ?fifo:bool -> Sim.t -> 'm t
(** [fifo] (default true) forces per-link in-order delivery by pushing each
    delivery after the previously scheduled one on the same link. *)

val sim : 'm t -> Sim.t

val register : 'm t -> addr -> (src:addr -> 'm -> unit) -> unit
(** Attach a handler; replaces any previous handler for the address. *)

val unregister : 'm t -> addr -> unit
(** Crash the process: in-flight and future messages to it are dropped. *)

val is_registered : 'm t -> addr -> bool

val send : 'm t -> src:addr -> dst:addr -> 'm -> unit
(** Queue a message.  Self-sends are delivered (after latency) too. *)

val set_link : 'm t -> src:addr -> dst:addr -> latency -> unit
(** Override the latency model of one directed link. *)

val partition : 'm t -> addr list -> addr list -> unit
(** Drop all traffic between the two groups (both directions) until
    {!heal}. *)

val heal : 'm t -> unit
(** Remove all partitions. *)

(** Delivery accounting, for tests and experiment reporting. *)
val sent : 'm t -> int
val delivered : 'm t -> int
val dropped : 'm t -> int
