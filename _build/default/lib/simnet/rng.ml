type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = create ~seed:(next_int64 t)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* 62 bits of entropy (fits OCaml's 63-bit int) vs small bounds, so the
     modulo bias is negligible *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))
