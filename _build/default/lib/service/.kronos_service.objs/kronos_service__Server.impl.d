lib/service/server.ml: Codec Engine Event_id Kronos Kronos_replication Kronos_simnet Kronos_wire List Message Order
