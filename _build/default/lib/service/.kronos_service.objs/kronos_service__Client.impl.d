lib/service/client.ml: Array Event_id Kronos Kronos_replication Kronos_wire List Message Order Order_cache
