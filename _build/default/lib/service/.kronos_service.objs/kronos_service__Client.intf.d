lib/service/client.mli: Event_id Kronos Kronos_replication Kronos_simnet Order Order_cache
