lib/service/server.mli: Engine Kronos Kronos_replication Kronos_simnet
