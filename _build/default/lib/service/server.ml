open Kronos
open Kronos_wire
module Net = Kronos_simnet.Net
module Chain = Kronos_replication.Chain

let apply engine cmd =
  let response =
    match Message.decode_request cmd with
    | exception Codec.Decode_error _ ->
      (* a malformed command can never name a live event *)
      Message.Rejected (Order.Unknown_event Event_id.none)
    | Message.Create_event -> Message.Event_created (Engine.create_event engine)
    | Message.Acquire_ref e -> (
        match Engine.acquire_ref engine e with
        | Ok () -> Message.Ref_acquired
        | Error err -> Message.Rejected err)
    | Message.Release_ref e -> (
        match Engine.release_ref engine e with
        | Ok n -> Message.Ref_released n
        | Error err -> Message.Rejected err)
    | Message.Query_order pairs -> (
        match Engine.query_order engine pairs with
        | Ok rels -> Message.Orders rels
        | Error err -> Message.Rejected err)
    | Message.Assign_order reqs -> (
        match Engine.assign_order engine reqs with
        | Ok outs -> Message.Outcomes outs
        | Error err -> Message.Rejected err)
  in
  Message.encode_response response

type cluster = {
  net : Chain.msg Net.t;
  coordinator : Chain.Coordinator.t;
  mutable replicas : (Chain.Replica.t * Engine.t) list;
}

let start_replica ~net ~addr ~engine_config ~service =
  let engine = Engine.create ?config:engine_config () in
  let replica =
    Chain.Replica.create ~net ~addr ~apply:(apply engine)
      ~config:{ Chain.version = 0; chain = [] } ?service ()
  in
  (replica, engine)

let deploy ~net ~coordinator ~replicas ?engine_config ?service
    ?(ping_interval = 0.2) ?(failure_timeout = 1.0) () =
  let started =
    List.map (fun addr -> start_replica ~net ~addr ~engine_config ~service) replicas
  in
  let coordinator =
    Chain.Coordinator.create ~net ~addr:coordinator ~chain:replicas
      ~ping_interval ~failure_timeout ()
  in
  { net; coordinator; replicas = started }

let crash cluster addr =
  List.iter
    (fun (replica, _) ->
      if Chain.Replica.addr replica = addr then Chain.Replica.crash replica)
    cluster.replicas

let join cluster addr ?engine_config ?service () =
  let replica, engine =
    start_replica ~net:cluster.net ~addr ~engine_config ~service
  in
  Chain.Coordinator.join cluster.coordinator replica;
  cluster.replicas <- cluster.replicas @ [ (replica, engine) ]

let engine_of cluster addr =
  List.find_map
    (fun (replica, engine) ->
      if Chain.Replica.addr replica = addr then Some engine else None)
    cluster.replicas
