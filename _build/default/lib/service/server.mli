(** Kronos as a replicated service.

    Each replica hosts a deterministic {!Kronos.Engine} and applies wire
    commands to it; because every API call is deterministic, replicas stay
    identical under chain replication (Section 2.4 of the paper). *)

open Kronos

val apply : Engine.t -> string -> string
(** [apply engine cmd] decodes a {!Kronos_wire.Message.request}, executes it
    on [engine] and returns the encoded response.  Malformed commands yield
    an encoded [Rejected] response rather than raising. *)

(** A running replicated Kronos deployment on a simulated network. *)
type cluster = {
  net : Kronos_replication.Chain.msg Kronos_simnet.Net.t;
  coordinator : Kronos_replication.Chain.Coordinator.t;
  mutable replicas : (Kronos_replication.Chain.Replica.t * Engine.t) list;
}

val deploy :
  net:Kronos_replication.Chain.msg Kronos_simnet.Net.t ->
  coordinator:Kronos_simnet.Net.addr ->
  replicas:Kronos_simnet.Net.addr list ->
  ?engine_config:Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  ?ping_interval:float ->
  ?failure_timeout:float ->
  unit ->
  cluster
(** Start one engine-backed replica per address plus the coordinator.
    [service] models replica CPU capacity (see
    {!Kronos_replication.Chain.Replica.create}); [`Measured scale] charges
    the real wall-clock cost of each engine call as virtual busy time, so
    throughput experiments reflect genuine graph-traversal work. *)

val crash : cluster -> Kronos_simnet.Net.addr -> unit
(** Crash the replica with the given address (no-op if absent). *)

val join :
  cluster ->
  Kronos_simnet.Net.addr ->
  ?engine_config:Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  unit ->
  unit
(** Start a fresh engine-backed replica and integrate it at the tail. *)

val engine_of : cluster -> Kronos_simnet.Net.addr -> Engine.t option
(** Direct handle on a replica's engine, for tests and experiments. *)
