(** Chain replication (van Renesse & Schneider, OSDI'04) over the simulated
    network, replicating an arbitrary deterministic state machine whose
    commands and responses are byte strings.

    Topology and roles:
    - writes enter at the {e head}, which assigns sequence numbers, applies
      the command, and forwards down the chain; the {e tail} applies and
      replies to the client, then acknowledges back up the chain so
      predecessors can drop their pending entries;
    - reads may be served locally by {e any} replica ([Client_read]); the
      Kronos service layer exploits this for stale-replica queries
      (Section 2.5 of the paper) because monotonicity makes ordered answers
      from stale replicas indistinguishable from tail answers;
    - a {e coordinator} process (standing in for the coordination service of
      Section 2.4, e.g. ZooKeeper/Chubby) pings replicas, removes silent
      ones from the chain, broadcasts new configurations, and integrates
      fresh replicas at the tail with full state transfer.

    Failure handling follows the standard protocol: on reconfiguration a
    replica that gained a new successor re-sends its unacknowledged pending
    entries (duplicates are discarded by sequence number); a replica that
    became tail replies to the clients of its pending entries. *)

type addr = Kronos_simnet.Net.addr

type config = { version : int; chain : addr list }

(** Messages exchanged by proxies, replicas and the coordinator. *)
type msg =
  | Client_write of { client : addr; req_id : int; cmd : string }
  | Client_read of { client : addr; req_id : int; cmd : string }
  | Forward of { seq : int; client : addr; req_id : int; cmd : string }
  | Ack of { seq : int }
  | Reply of { req_id : int; resp : string }
  | Get_config of { client : addr }
  | Config_is of config
  | New_config of { config : config; fresh : addr option }
  | Ping
  | Pong of { last_applied : int }
  | Sync_state of { entries : (int * addr * int * string) list }
      (** (seq, client, req_id, cmd) log prefix for a joining replica *)

(** {1 Chain position helpers} *)

val head_of : config -> addr option
val successor_of : config -> addr -> addr option
val predecessor_of : config -> addr -> addr option
val is_tail : config -> addr -> bool

(** {1 Replicas} *)

module Replica : sig
  type t

  val create :
    net:msg Kronos_simnet.Net.t ->
    addr:addr ->
    apply:(string -> string) ->
    ?config:config ->
    ?service:[ `Fixed of float | `Measured of float ] ->
    unit ->
    t
  (** Create a replica and register it on the network.  [apply] must be
      deterministic.  [config] seeds the initial chain configuration (all
      replicas and the coordinator must agree on it).

      [service] models the replica's CPU: each non-heartbeat message
      occupies the server for a fixed virtual duration, or — with
      [`Measured scale] — for the scaled wall-clock time the handler
      actually took, which charges the {e real} cost of the hosted state
      machine (used by the scalability benchmark). *)

  val addr : t -> addr
  val last_applied : t -> int
  val config : t -> config
  val pending_count : t -> int
  val log_length : t -> int

  val crash : t -> unit
  (** Unregister from the network; in-flight and future messages drop. *)
end

(** {1 Coordinator} *)

module Coordinator : sig
  type t

  val create :
    net:msg Kronos_simnet.Net.t ->
    addr:addr ->
    chain:addr list ->
    ?ping_interval:float ->
    ?failure_timeout:float ->
    unit ->
    t
  (** Start the coordinator.  It immediately broadcasts the initial
      configuration and begins pinging replicas.  A replica missing
      [failure_timeout] seconds of pongs (default 1.0) is removed from the
      chain. *)

  val addr : t -> addr
  val config : t -> config

  val join : t -> Replica.t -> unit
  (** Integrate a fresh replica at the tail: the current tail transfers its
      log, then the coordinator broadcasts the extended chain. *)
end
