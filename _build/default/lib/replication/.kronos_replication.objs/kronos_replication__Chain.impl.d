lib/replication/chain.ml: Hashtbl Kronos Kronos_simnet List Logs Net Service_queue Sim String
