lib/replication/proxy.ml: Chain Hashtbl Kronos_simnet List Net Rng Sim
