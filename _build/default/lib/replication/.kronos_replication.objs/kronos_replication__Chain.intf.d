lib/replication/chain.mli: Kronos_simnet
