lib/replication/proxy.mli: Chain Kronos_simnet
