(** The social-network timeline application of Section 3.1 (Figure 5).

    Every post is a Kronos event; a reply is [must]-ordered after the
    message it answers.  Rendering a user's timeline topologically sorts the
    messages against the committed partial order, so a reply can never
    appear above the message it replies to, while unrelated posts keep
    their arrival order — no total order is imposed.

    The module is parameterized only by the ordering engine, so the same
    code runs against a local {!Kronos.Engine} (as here) or any transport
    exposing the Table-1 API. *)

open Kronos

type t

type message = {
  id : int;            (** per-network sequence, reflects arrival order *)
  author : string;
  text : string;
  event : Event_id.t;
}

val create : ?engine:Engine.t -> unit -> t
(** A fresh network (optionally sharing an existing engine). *)

val engine : t -> Engine.t

val add_friendship : t -> string -> string -> unit
(** Make two users see each other's posts.  Idempotent. *)

val friends_of : t -> string -> string list

val post : t -> author:string -> text:string -> message
(** [post_message] from Figure 5: the message lands on the author's and all
    friends' timelines. *)

val reply : t -> author:string -> text:string -> in_reply_to:message -> message
(** [reply_to_message] from Figure 5: also records
    [in_reply_to.event -> (new message).event] as a [must] constraint.
    @raise Invalid_argument if the constraint is rejected (can only happen
    if the caller forged an ordering in the opposite direction). *)

val render : t -> user:string -> message list
(** [render_timeline] from Figure 5: all messages on the user's timeline in
    a stable topological order of the committed happens-before relation —
    ties (concurrent messages) resolve to arrival order. *)

val timeline_raw : t -> user:string -> message list
(** The unsorted timeline, in arrival order (for tests). *)
