lib/timeline/timeline.mli: Engine Event_id Kronos
