(** Messages of the sharded graph stores.

    The [K_*] family serves KronoGraph (Section 3.2): every update and query
    carries its Kronos event; shards order operations against each touched
    vertex's most recent operation with batched [prefer] constraints and
    reconcile reversals by sorted insertion (updates) or version masking
    (queries).

    The [L_*] family serves Lockgraph, the Titan stand-in: isolation comes
    from per-vertex reader/writer locks; lock waits can time out so clients
    can break deadlocks by restarting. *)

open Kronos

(** A vertex-local mutation. *)
type vop =
  | Add_vertex
  | Add_edge of int     (** neighbour vertex id *)
  | Remove_edge of int

type request =
  | K_update of { event : Event_id.t; vertex : int; op : vop }
  | K_neighbors of { event : Event_id.t; vertices : int list }
      (** adjacency of each vertex as visible at the query's event *)
  | L_lock of { txn : int; vertex : int; write : bool }
  | L_unlock_all of { txn : int }
  | L_update of { vertex : int; op : vop }
  | L_neighbors of { vertices : int list }

type response =
  | K_update_done
  | K_neighbors_are of (int * int list) list
  | L_granted
  | L_lock_timeout
  | L_update_done
  | L_unlocked
  | L_neighbors_are of (int * int list) list

type msg =
  | Request of { client : Kronos_simnet.Net.addr; req_id : int; body : request }
  | Response of { req_id : int; body : response }

val pp_request : Format.formatter -> request -> unit
