open Kronos

type vop =
  | Add_vertex
  | Add_edge of int
  | Remove_edge of int

type request =
  | K_update of { event : Event_id.t; vertex : int; op : vop }
  | K_neighbors of { event : Event_id.t; vertices : int list }
  | L_lock of { txn : int; vertex : int; write : bool }
  | L_unlock_all of { txn : int }
  | L_update of { vertex : int; op : vop }
  | L_neighbors of { vertices : int list }

type response =
  | K_update_done
  | K_neighbors_are of (int * int list) list
  | L_granted
  | L_lock_timeout
  | L_update_done
  | L_unlocked
  | L_neighbors_are of (int * int list) list

type msg =
  | Request of { client : Kronos_simnet.Net.addr; req_id : int; body : request }
  | Response of { req_id : int; body : response }

let pp_vop ppf = function
  | Add_vertex -> Format.pp_print_string ppf "add_vertex"
  | Add_edge v -> Format.fprintf ppf "add_edge(%d)" v
  | Remove_edge v -> Format.fprintf ppf "remove_edge(%d)" v

let pp_request ppf = function
  | K_update { vertex; op; _ } ->
    Format.fprintf ppf "k_update(%d,%a)" vertex pp_vop op
  | K_neighbors { vertices; _ } ->
    Format.fprintf ppf "k_neighbors(%d vertices)" (List.length vertices)
  | L_lock { txn; vertex; write } ->
    Format.fprintf ppf "l_lock(t%d,%d,%s)" txn vertex (if write then "w" else "r")
  | L_unlock_all { txn } -> Format.fprintf ppf "l_unlock_all(t%d)" txn
  | L_update { vertex; op } -> Format.fprintf ppf "l_update(%d,%a)" vertex pp_vop op
  | L_neighbors { vertices } ->
    Format.fprintf ppf "l_neighbors(%d vertices)" (List.length vertices)
