(** KronoGraph shard server (Section 3.2).

    Each vertex carries a version list of (event, mutation) entries kept in
    Kronos order, plus the event of the most recent operation that touched
    it.  An incoming operation is ordered after each touched vertex's most
    recent event with a {e single batched} [prefer] call; pairs whose order
    the shard's client-side cache already knows are resolved locally with no
    Kronos traffic (the paper's batching + caching, which left only 13.4 %
    of operations requiring a traversal in its Twitter experiment).

    Reversals are handled per the paper:
    - a reversed {e update} is inserted at its sorted position in the
      version list;
    - a reversed {e query} masks the version entries ordered after it,
      reconstructing the older graph it logically ran against.

    Operations are serialized {e per vertex} (arrival order), but operations
    on disjoint vertex sets are processed concurrently, so one outstanding
    Kronos batch never stalls the whole shard. *)

open Kronos

type t

val create :
  net:G_msg.msg Kronos_simnet.Net.t ->
  addr:Kronos_simnet.Net.addr ->
  kronos:Kronos_service.Client.t ->
  ?cost:(G_msg.request -> float) ->
  unit ->
  t
(** [kronos] must have caching enabled; the shard's fast path depends on
    it.  [cost], when given, models the shard's CPU: each request occupies
    the server for [cost request] virtual seconds (capacity benchmarks). *)

val addr : t -> Kronos_simnet.Net.addr

val preload : t -> vertex:int -> neighbors:int list -> event:Kronos.Event_id.t -> unit
(** Bulk-load adjacency directly (benchmark setup): the entries are recorded
    under [event], which becomes the vertex's most recent operation.  Not
    part of the online protocol. *)

(** {1 Inspection for tests} *)

val adjacency_now : t -> int -> int list
(** Current adjacency of a vertex (all versions applied), sorted. *)

val version_events : t -> int -> Event_id.t list
(** Events of the vertex's version entries, oldest first. *)

(** {1 Statistics} *)

val operations : t -> int
(** Operations processed (updates + queries). *)

val vertex_touches : t -> int
(** Total vertex-level orderings performed (a query over k vertices counts
    k) — the denominator of the paper's "operations requiring a Kronos
    traversal" metric. *)

val kronos_batches : t -> int
(** assign_order batches actually sent to Kronos. *)

val fast_path_ops : t -> int
(** Operations resolved entirely from the order cache (no Kronos call). *)

val reversals : t -> int
