module Net = Kronos_simnet.Net
module Sim = Kronos_simnet.Sim
module Rng = Kronos_simnet.Rng

type ids = int ref

let ids () = ref 0

type t = {
  net : G_msg.msg Net.t;
  addr : Net.addr;
  sim : Sim.t;
  rng : Rng.t;
  shards : Net.addr array;
  ids : ids;
  max_retries : int;
  mutable next_req : int;
  pending : (int, G_msg.response -> unit) Hashtbl.t;
  mutable retries : int;
}

let retries t = t.retries

let handle t ~src:_ msg =
  match (msg : G_msg.msg) with
  | G_msg.Request _ -> ()
  | G_msg.Response { req_id; body } -> (
      match Hashtbl.find_opt t.pending req_id with
      | Some callback ->
        Hashtbl.remove t.pending req_id;
        callback body
      | None -> ())

let create ~net ~addr ~shards ~ids ?(max_retries = 100) () =
  let sim = Net.sim net in
  let t =
    { net; addr; sim; rng = Rng.split (Sim.rng sim); shards; ids; max_retries;
      next_req = 0; pending = Hashtbl.create 64; retries = 0 }
  in
  Net.register net addr (fun ~src msg -> handle t ~src msg);
  t

let request t ~shard body callback =
  t.next_req <- t.next_req + 1;
  Hashtbl.replace t.pending t.next_req callback;
  Net.send t.net ~src:t.addr ~dst:shard
    (G_msg.Request { client = t.addr; req_id = t.next_req; body })

let shard_of t v = t.shards.(v mod Array.length t.shards)

let fresh_txn t =
  incr t.ids;
  !(t.ids)

(* Release every lock the transaction holds on the given shards, then
   continue. *)
let unlock_all t txn shards k =
  let shards = List.sort_uniq Int.compare shards in
  let remaining = ref (List.length shards) in
  if shards = [] then k ()
  else
    List.iter
      (fun s ->
        request t ~shard:t.shards.(s) (G_msg.L_unlock_all { txn }) (fun _ ->
            decr remaining;
            if !remaining = 0 then k ()))
      shards

(* Acquire locks on [vertices] one at a time (they must be pre-sorted by the
   caller's deadlock-avoidance policy).  On timeout: [on_fail] with the
   shards already touched. *)
let lock_vertices t txn ~write vertices ~on_fail k =
  let rec loop touched = function
    | [] -> k touched
    | v :: rest ->
      let s = v mod Array.length t.shards in
      request t ~shard:(shard_of t v)
        (G_msg.L_lock { txn; vertex = v; write })
        (function
          | G_msg.L_granted -> loop (s :: touched) rest
          | G_msg.L_lock_timeout -> on_fail (s :: touched)
          | _ -> invalid_arg "Lgraph: unexpected lock response")
  in
  loop [] vertices

(* Run [body] as a 2PL transaction with timeout-retry.  [body] receives the
   transaction id, a list of already-touched shards, and completion
   continuations. *)
let with_retries t body k =
  let rec attempt n =
    let txn = fresh_txn t in
    body txn
      ~abort:(fun touched ->
        unlock_all t txn touched (fun () ->
            if n >= t.max_retries then
              invalid_arg "Lgraph: too many lock-timeout retries"
            else begin
              t.retries <- t.retries + 1;
              let backoff = 1e-3 +. Rng.float t.rng (4e-3 *. float_of_int (n + 1)) in
              ignore (Sim.schedule t.sim ~delay:backoff (fun () -> attempt (n + 1)))
            end))
      ~commit:(fun touched result ->
        unlock_all t txn touched (fun () -> k result))
  in
  attempt 0

let apply_updates t ops k =
  let remaining = ref (List.length ops) in
  List.iter
    (fun (vertex, op) ->
      request t ~shard:(shard_of t vertex) (G_msg.L_update { vertex; op })
        (fun _ ->
          decr remaining;
          if !remaining = 0 then k ()))
    ops

let update_edge t u v op_of k =
  with_retries t
    (fun txn ~abort ~commit ->
      let vertices = List.sort_uniq Int.compare [ u; v ] in
      lock_vertices t txn ~write:true vertices ~on_fail:abort (fun touched ->
          apply_updates t [ (u, op_of v); (v, op_of u) ] (fun () ->
              commit touched ())))
    k

let add_friendship t u v k = update_edge t u v (fun w -> G_msg.Add_edge w) k

let remove_friendship t u v k = update_edge t u v (fun w -> G_msg.Remove_edge w) k

let add_vertex t v k =
  with_retries t
    (fun txn ~abort ~commit ->
      lock_vertices t txn ~write:true [ v ] ~on_fail:abort (fun touched ->
          apply_updates t [ (v, G_msg.Add_vertex) ] (fun () -> commit touched ())))
    k

(* Batched adjacency fetch (the caller already holds read locks). *)
let fetch_neighbors t vertices k =
  let by_shard = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let s = v mod Array.length t.shards in
      Hashtbl.replace by_shard s
        (v :: Option.value ~default:[] (Hashtbl.find_opt by_shard s)))
    vertices;
  let groups = Hashtbl.fold (fun s vs acc -> (s, vs) :: acc) by_shard [] in
  let remaining = ref (List.length groups) in
  let collected = ref [] in
  if groups = [] then k []
  else
    List.iter
      (fun (s, vs) ->
        request t ~shard:t.shards.(s) (G_msg.L_neighbors { vertices = vs })
          (function
            | G_msg.L_neighbors_are answers ->
              collected := answers @ !collected;
              decr remaining;
              if !remaining = 0 then k !collected
            | _ -> invalid_arg "Lgraph: unexpected neighbors response"))
      groups

let neighbors t v k =
  with_retries t
    (fun txn ~abort ~commit ->
      lock_vertices t txn ~write:false [ v ] ~on_fail:abort (fun touched ->
          fetch_neighbors t [ v ] (fun answers ->
              commit touched (match answers with [ (_, ns) ] -> ns | _ -> []))))
    k

let recommend t v k =
  with_retries t
    (fun txn ~abort ~commit ->
      lock_vertices t txn ~write:false [ v ] ~on_fail:abort (fun touched ->
          fetch_neighbors t [ v ] (fun answers ->
              let friends = match answers with [ (_, ns) ] -> ns | _ -> [] in
              if friends = [] then commit touched None
              else
                (* read-lock the whole 1-hop set: its adjacency is read *)
                lock_vertices t txn ~write:false
                  (List.sort_uniq Int.compare friends)
                  ~on_fail:(fun more -> abort (more @ touched))
                  (fun touched2 ->
                    fetch_neighbors t friends (fun hop2 ->
                        let module IM = Map.Make (Int) in
                        let friend_set = List.sort_uniq Int.compare friends in
                        let is_friend w = List.mem w friend_set in
                        let counts =
                          List.fold_left
                            (fun acc (_, ns) ->
                              List.fold_left
                                (fun acc w ->
                                  if w = v || is_friend w then acc
                                  else
                                    IM.update w
                                      (fun c -> Some (1 + Option.value ~default:0 c))
                                      acc)
                                acc ns)
                            IM.empty hop2
                        in
                        let best =
                          IM.fold
                            (fun w c best ->
                              match best with
                              | Some (_, bc) when bc >= c -> best
                              | _ -> Some (w, c))
                            counts None
                        in
                        commit (touched2 @ touched) (Option.map fst best))))))
    k
