(** Lockgraph client — two-phase-locked graph operations over {!Lshard}.

    Queries read-lock every vertex whose adjacency they read ({e v} and its
    whole 1-hop neighbourhood), hold the locks across the traversal, and
    release at the end; updates write-lock both endpoints.  Locks are
    acquired one vertex at a time (sorted within each phase), so a query
    pays one lock round trip per vertex it reads — precisely the
    concurrency-inhibiting cost the paper attributes to Titan.  Lock
    timeouts abort the operation, release everything, and retry. *)

type t

type ids = int ref
(** Shared transaction-id source (one per simulation). *)

val ids : unit -> ids

val create :
  net:G_msg.msg Kronos_simnet.Net.t ->
  addr:Kronos_simnet.Net.addr ->
  shards:Kronos_simnet.Net.addr array ->
  ids:ids ->
  ?max_retries:int ->
  unit ->
  t

val add_vertex : t -> int -> (unit -> unit) -> unit
val add_friendship : t -> int -> int -> (unit -> unit) -> unit
val remove_friendship : t -> int -> int -> (unit -> unit) -> unit

val neighbors : t -> int -> (int list -> unit) -> unit

val recommend : t -> int -> (int option -> unit) -> unit
(** Same recommendation semantics as {!Kgraph.recommend}, isolated by read
    locks instead of event ordering. *)

val retries : t -> int
(** Operations restarted after a lock timeout. *)
