(** KronoGraph client: the application-facing API of the Kronos-backed graph
    store (Section 3.2).

    Every operation creates one Kronos event on entry and is then processed
    by the shard servers without locking; isolation comes from late time
    binding.  A friendship update touches both endpoint shards; a
    recommendation query fans out over the 1-hop neighbourhood in one
    batched request per shard, so its cost is bounded by shards touched, not
    vertices touched. *)

type t

val create :
  net:G_msg.msg Kronos_simnet.Net.t ->
  addr:Kronos_simnet.Net.addr ->
  kronos:Kronos_service.Client.t ->
  shards:Kronos_simnet.Net.addr array ->
  unit ->
  t

val add_vertex : t -> int -> (unit -> unit) -> unit

val add_friendship : t -> int -> int -> (unit -> unit) -> unit
(** Add the undirected edge (u, v) as one atomic event applied on both
    endpoint shards. *)

val remove_friendship : t -> int -> int -> (unit -> unit) -> unit

val batch_update : t -> (int * G_msg.vop) list -> (unit -> unit) -> unit
(** Apply several vertex-local mutations as {e one} event — e.g. the
    paper's "remove A−B and add B−C as one update" scenario.  Queries
    observe all of the batch or none of it. *)

val neighbors : t -> int -> (int list -> unit) -> unit
(** 1-hop adjacency, isolated at the query's event. *)

val recommend : t -> int -> (int option -> unit) -> unit
(** Friend recommendation by maximal mutual friendship: among
    non-neighbours, the vertex sharing the most friends with the argument
    (Figure 6's workload).  [None] when no candidate exists.  The whole
    2-hop traversal runs at a single query event, so it observes a
    consistent snapshot even under concurrent updates. *)

val queries : t -> int
val updates : t -> int
