lib/graphstore/kshard.ml: Event_id G_msg Hashtbl Int Kronos Kronos_service Kronos_simnet List Option Order Order_cache Set
