lib/graphstore/kgraph.mli: G_msg Kronos_service Kronos_simnet
