lib/graphstore/kgraph.ml: Array G_msg Hashtbl Int Kronos_service Kronos_simnet List Map Option
