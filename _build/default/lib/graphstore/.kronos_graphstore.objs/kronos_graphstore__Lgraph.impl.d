lib/graphstore/lgraph.ml: Array G_msg Hashtbl Int Kronos_simnet List Map Option
