lib/graphstore/kshard.mli: Event_id G_msg Kronos Kronos_service Kronos_simnet
