lib/graphstore/g_msg.mli: Event_id Format Kronos Kronos_simnet
