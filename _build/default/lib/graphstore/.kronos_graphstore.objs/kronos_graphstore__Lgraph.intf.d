lib/graphstore/lgraph.mli: G_msg Kronos_simnet
