lib/graphstore/lshard.ml: G_msg Hashtbl Int Kronos_simnet List Option
