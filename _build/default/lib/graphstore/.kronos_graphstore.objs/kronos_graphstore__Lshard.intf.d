lib/graphstore/lshard.mli: G_msg Kronos_simnet
