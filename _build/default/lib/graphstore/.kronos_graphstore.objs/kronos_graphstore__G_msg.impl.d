lib/graphstore/g_msg.ml: Event_id Format Kronos Kronos_simnet List
