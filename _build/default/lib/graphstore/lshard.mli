(** Lockgraph shard server — the Titan stand-in of Figure 6.

    Plain adjacency storage guarded by per-vertex reader/writer locks with
    FIFO queueing.  A lock request that waits longer than [lock_timeout]
    (virtual seconds) is answered with [L_lock_timeout] so the client can
    break potential deadlocks by releasing everything and retrying — the
    classical timeout-based 2PL discipline online graph databases use. *)

type t

val create :
  net:G_msg.msg Kronos_simnet.Net.t ->
  addr:Kronos_simnet.Net.addr ->
  ?lock_timeout:float ->
  ?cost:(G_msg.request -> float) ->
  unit ->
  t
(** [lock_timeout] defaults to 20 ms of virtual time.  [cost], when given,
    models the shard's CPU (capacity benchmarks): each request occupies the
    server for [cost request] virtual seconds. *)

val addr : t -> Kronos_simnet.Net.addr

val adjacency_now : t -> int -> int list
(** Current adjacency of a vertex, sorted (test hook). *)

val preload : t -> vertex:int -> neighbors:int list -> unit
(** Bulk-load adjacency directly (benchmark setup). *)

val held_locks : t -> int
(** Vertices currently locked (read or write). *)

val waiting : t -> int

val timeouts : t -> int
(** Lock requests answered with [L_lock_timeout]. *)
