module Net = Kronos_simnet.Net
module Sim = Kronos_simnet.Sim

type waiter = {
  w_txn : int;
  w_write : bool;
  w_grant : unit -> unit;    (* reply L_granted *)
  w_timeout : unit -> unit;  (* reply L_lock_timeout *)
  mutable w_timer : Sim.timer option;
  mutable w_live : bool;
}

type lock_state = {
  mutable readers : int list;      (* transaction ids holding read locks *)
  mutable writer : int option;
  mutable waiters : waiter list;   (* FIFO, head first *)
}

type t = {
  net : G_msg.msg Net.t;
  addr : Net.addr;
  sim : Sim.t;
  lock_timeout : float;
  service : Kronos_simnet.Service_queue.t option;
  cost : G_msg.request -> float;
  adjacency : (int, (int, unit) Hashtbl.t) Hashtbl.t;
  locks : (int, lock_state) Hashtbl.t;
  held_by : (int, int list) Hashtbl.t;  (* txn -> vertices locked here *)
  mutable timeouts : int;
}

let addr t = t.addr
let timeouts t = t.timeouts

let adjacency_now t v =
  match Hashtbl.find_opt t.adjacency v with
  | None -> []
  | Some set -> List.sort Int.compare (Hashtbl.fold (fun w () acc -> w :: acc) set [])

let preload t ~vertex ~neighbors =
  let set =
    match Hashtbl.find_opt t.adjacency vertex with
    | Some set -> set
    | None ->
      let set = Hashtbl.create (List.length neighbors) in
      Hashtbl.replace t.adjacency vertex set;
      set
  in
  List.iter (fun w -> Hashtbl.replace set w ()) neighbors

let lock_state t v =
  match Hashtbl.find_opt t.locks v with
  | Some ls -> ls
  | None ->
    let ls = { readers = []; writer = None; waiters = [] } in
    Hashtbl.replace t.locks v ls;
    ls

let held_locks t =
  Hashtbl.fold
    (fun _ ls n -> if ls.readers <> [] || ls.writer <> None then n + 1 else n)
    t.locks 0

let waiting t =
  Hashtbl.fold (fun _ ls n -> n + List.length ls.waiters) t.locks 0

let respond t ~client ~req_id body =
  Net.send t.net ~src:t.addr ~dst:client (G_msg.Response { req_id; body })

let note_held t txn v =
  Hashtbl.replace t.held_by txn
    (v :: Option.value ~default:[] (Hashtbl.find_opt t.held_by txn))

(* Grant as many queued waiters as compatibility allows, in FIFO order. *)
let rec drain t v ls =
  match ls.waiters with
  | [] -> ()
  | w :: rest ->
    if not w.w_live then begin
      ls.waiters <- rest;
      drain t v ls
    end
    else begin
      let compatible =
        if w.w_write then ls.writer = None && ls.readers = []
        else ls.writer = None
      in
      if compatible then begin
        ls.waiters <- rest;
        w.w_live <- false;
        (match w.w_timer with Some timer -> Sim.cancel timer | None -> ());
        if w.w_write then ls.writer <- Some w.w_txn
        else ls.readers <- w.w_txn :: ls.readers;
        note_held t w.w_txn v;
        w.w_grant ();
        if not w.w_write then drain t v ls
      end
    end

let handle_lock t ~client ~req_id ~txn ~vertex ~write =
  let ls = lock_state t vertex in
  let already_held =
    ls.writer = Some txn || (not write && List.mem txn ls.readers)
  in
  if already_held then respond t ~client ~req_id G_msg.L_granted
  else begin
    let compatible =
      (if write then ls.writer = None && ls.readers = [] else ls.writer = None)
      && ls.waiters = []
    in
    if compatible then begin
      if write then ls.writer <- Some txn else ls.readers <- txn :: ls.readers;
      note_held t txn vertex;
      respond t ~client ~req_id G_msg.L_granted
    end
    else begin
      let w =
        {
          w_txn = txn;
          w_write = write;
          w_grant = (fun () -> respond t ~client ~req_id G_msg.L_granted);
          w_timeout =
            (fun () ->
              t.timeouts <- t.timeouts + 1;
              respond t ~client ~req_id G_msg.L_lock_timeout);
          w_timer = None;
          w_live = true;
        }
      in
      w.w_timer <-
        Some
          (Sim.schedule t.sim ~delay:t.lock_timeout (fun () ->
               if w.w_live then begin
                 w.w_live <- false;
                 w.w_timeout ()
               end));
      ls.waiters <- ls.waiters @ [ w ]
    end
  end

let handle_unlock_all t ~client ~req_id ~txn =
  (match Hashtbl.find_opt t.held_by txn with
   | None -> ()
   | Some vertices ->
     Hashtbl.remove t.held_by txn;
     List.iter
       (fun v ->
         let ls = lock_state t v in
         if ls.writer = Some txn then ls.writer <- None;
         ls.readers <- List.filter (fun r -> r <> txn) ls.readers;
         drain t v ls)
       (List.sort_uniq Int.compare vertices));
  respond t ~client ~req_id G_msg.L_unlocked

let adjacency_set t v =
  match Hashtbl.find_opt t.adjacency v with
  | Some set -> set
  | None ->
    let set = Hashtbl.create 8 in
    Hashtbl.replace t.adjacency v set;
    set

let handle_update t ~client ~req_id ~vertex ~op =
  (match (op : G_msg.vop) with
   | G_msg.Add_vertex -> ignore (adjacency_set t vertex)
   | G_msg.Add_edge w -> Hashtbl.replace (adjacency_set t vertex) w ()
   | G_msg.Remove_edge w -> Hashtbl.remove (adjacency_set t vertex) w);
  respond t ~client ~req_id G_msg.L_update_done

let handle t ~src:_ msg =
  match (msg : G_msg.msg) with
  | G_msg.Response _ -> ()
  | G_msg.Request { client; req_id; body } -> (
      match body with
      | G_msg.L_lock { txn; vertex; write } ->
        handle_lock t ~client ~req_id ~txn ~vertex ~write
      | G_msg.L_unlock_all { txn } -> handle_unlock_all t ~client ~req_id ~txn
      | G_msg.L_update { vertex; op } -> handle_update t ~client ~req_id ~vertex ~op
      | G_msg.L_neighbors { vertices } ->
        respond t ~client ~req_id
          (G_msg.L_neighbors_are
             (List.map (fun v -> (v, adjacency_now t v)) vertices))
      | G_msg.K_update _ | G_msg.K_neighbors _ ->
        invalid_arg "Lshard: KronoGraph message sent to a lock-based shard")

let create ~net ~addr ?(lock_timeout = 20e-3) ?cost () =
  let service =
    match cost with
    | Some _ -> Some (Kronos_simnet.Service_queue.create (Net.sim net))
    | None -> None
  in
  let t =
    {
      net;
      addr;
      sim = Net.sim net;
      lock_timeout;
      service;
      cost = Option.value ~default:(fun _ -> 0.0) cost;
      adjacency = Hashtbl.create 4096;
      locks = Hashtbl.create 4096;
      held_by = Hashtbl.create 256;
      timeouts = 0;
    }
  in
  let deliver ~src msg =
    match t.service with
    | None -> handle t ~src msg
    | Some queue ->
      let cost =
        match (msg : G_msg.msg) with
        | G_msg.Request { body; _ } -> t.cost body
        | G_msg.Response _ -> 0.0
      in
      Kronos_simnet.Service_queue.submit_fixed queue ~cost (fun () ->
          handle t ~src msg)
  in
  Net.register net addr deliver;
  t
