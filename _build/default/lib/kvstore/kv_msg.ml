open Kronos

type request =
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Lock of { txn : int; keys : string list }
  | Unlock of { txn : int; keys : string list }
  | Prepare of {
      txn : int;
      event : Event_id.t;
      reads : string list;
      writes : string list;
    }
  | Decide of { txn : int; commit : bool; writes : (string * string) list }

type response =
  | Value of { value : string option }
  | Put_done
  | Lock_granted
  | Unlocked
  | Prepared of {
      constraints : (Event_id.t * Event_id.t) list;
      values : (string * string option) list;
    }
  | Prepare_rejected
  | Decided

type msg =
  | Request of { client : Kronos_simnet.Net.addr; req_id : int; body : request }
  | Response of { req_id : int; body : response }

let pp_request ppf = function
  | Get { key } -> Format.fprintf ppf "get(%s)" key
  | Put { key; _ } -> Format.fprintf ppf "put(%s)" key
  | Lock { txn; keys } -> Format.fprintf ppf "lock(t%d,%d keys)" txn (List.length keys)
  | Unlock { txn; keys } ->
    Format.fprintf ppf "unlock(t%d,%d keys)" txn (List.length keys)
  | Prepare { txn; reads; writes; _ } ->
    Format.fprintf ppf "prepare(t%d,%dr/%dw)" txn (List.length reads)
      (List.length writes)
  | Decide { txn; commit; _ } ->
    Format.fprintf ppf "decide(t%d,%s)" txn (if commit then "commit" else "abort")

let pp_response ppf = function
  | Value { value } ->
    Format.fprintf ppf "value(%s)" (Option.value ~default:"<none>" value)
  | Put_done -> Format.pp_print_string ppf "put_done"
  | Lock_granted -> Format.pp_print_string ppf "lock_granted"
  | Unlocked -> Format.pp_print_string ppf "unlocked"
  | Prepared { constraints; values } ->
    Format.fprintf ppf "prepared(%dc/%dv)" (List.length constraints)
      (List.length values)
  | Prepare_rejected -> Format.pp_print_string ppf "prepare_rejected"
  | Decided -> Format.pp_print_string ppf "decided"
