module Net = Kronos_simnet.Net

type t = {
  net : Kv_msg.msg Net.t;
  addr : Net.addr;
  mutable next_req : int;
  pending : (int, Kv_msg.response -> unit) Hashtbl.t;
}

let addr t = t.addr
let outstanding t = Hashtbl.length t.pending

let handle t ~src:_ msg =
  match (msg : Kv_msg.msg) with
  | Kv_msg.Request _ -> ()
  | Kv_msg.Response { req_id; body } -> (
      match Hashtbl.find_opt t.pending req_id with
      | Some callback ->
        Hashtbl.remove t.pending req_id;
        callback body
      | None -> ())

let create ~net ~addr =
  let t = { net; addr; next_req = 0; pending = Hashtbl.create 64 } in
  Net.register net addr (fun ~src msg -> handle t ~src msg);
  t

let request t ~shard body callback =
  t.next_req <- t.next_req + 1;
  let req_id = t.next_req in
  Hashtbl.replace t.pending req_id callback;
  Net.send t.net ~src:t.addr ~dst:shard (Kv_msg.Request { client = t.addr; req_id; body })
