open Kronos
module Net = Kronos_simnet.Net

type key_state = {
  mutable value : string option;
  mutable last_writer : Event_id.t option;
  mutable last_readers : Event_id.t list;  (* readers since the last write *)
  mutable pinned_by : int option;          (* undecided transaction id *)
  mutable history : (Event_id.t * string) list;  (* newest first *)
  (* lock manager state *)
  mutable lock_owner : int option;
  mutable lock_waiters : (int * (unit -> unit)) list;  (* FIFO, oldest first *)
}

type active_txn = {
  event : Event_id.t;
  reads : string list;
  writes : string list;
}

type parked = {
  p_txn : int;
  p_client : Net.addr;
  p_req_id : int;
  p_event : Event_id.t;
  p_reads : string list;
  p_writes : string list;
  mutable p_live : bool;
  mutable p_timer : Kronos_simnet.Sim.timer option;
}

type t = {
  net : Kv_msg.msg Net.t;
  addr : Net.addr;
  service : Kronos_simnet.Service_queue.t option;
  service_time : float;
  prepare_timeout : float;
  keys : (string, key_state) Hashtbl.t;
  active : (int, active_txn) Hashtbl.t;
  mutable parked : parked list;  (* sorted by transaction id, oldest first *)
  mutable prepares : int;
  mutable rejections : int;
  mutable commits : int;
  mutable aborts : int;
}

let addr t = t.addr

let key_state t key =
  match Hashtbl.find_opt t.keys key with
  | Some ks -> ks
  | None ->
    let ks =
      { value = None; last_writer = None; last_readers = []; pinned_by = None;
        history = []; lock_owner = None; lock_waiters = [] }
    in
    Hashtbl.replace t.keys key ks;
    ks

let peek t key = match Hashtbl.find_opt t.keys key with Some ks -> ks.value | None -> None

let history t key =
  match Hashtbl.find_opt t.keys key with
  | Some ks -> List.rev ks.history
  | None -> []

let last_writer t key =
  match Hashtbl.find_opt t.keys key with Some ks -> ks.last_writer | None -> None

let pinned_keys t =
  Hashtbl.fold (fun _ ks n -> if ks.pinned_by <> None then n + 1 else n) t.keys 0

let parked_prepares t = List.length t.parked

let lock_queue_length t =
  Hashtbl.fold (fun _ ks n -> n + List.length ks.lock_waiters) t.keys 0

let prepares t = t.prepares
let rejections t = t.rejections
let commits t = t.commits
let aborts t = t.aborts

let respond t ~client ~req_id body =
  Net.send t.net ~src:t.addr ~dst:client (Kv_msg.Response { req_id; body })

(* {2 Plain operations} *)

let handle_get t ~client ~req_id key =
  respond t ~client ~req_id (Kv_msg.Value { value = peek t key })

let handle_put t ~client ~req_id key value =
  let ks = key_state t key in
  ks.value <- Some value;
  ks.history <- (Event_id.none, value) :: ks.history;
  respond t ~client ~req_id Kv_msg.Put_done

(* {2 Lock manager} *)

(* Grant the lock on every requested key, queueing behind current owners.
   The reply is sent once all keys are held.  Clients are responsible for a
   global acquisition order (the baseline acquires key by key, sorted). *)
let handle_lock t ~client ~req_id txn keys =
  let remaining = ref (List.length keys) in
  let acquired () =
    decr remaining;
    if !remaining = 0 then respond t ~client ~req_id Kv_msg.Lock_granted
  in
  if keys = [] then respond t ~client ~req_id Kv_msg.Lock_granted
  else
    List.iter
      (fun key ->
        let ks = key_state t key in
        match ks.lock_owner with
        | None ->
          ks.lock_owner <- Some txn;
          acquired ()
        | Some owner when owner = txn -> acquired ()
        | Some _ -> ks.lock_waiters <- ks.lock_waiters @ [ (txn, acquired) ])
      keys

let handle_unlock t ~client ~req_id txn keys =
  List.iter
    (fun key ->
      let ks = key_state t key in
      if ks.lock_owner = Some txn then begin
        match ks.lock_waiters with
        | [] -> ks.lock_owner <- None
        | (next, grant) :: rest ->
          ks.lock_owner <- Some next;
          ks.lock_waiters <- rest;
          grant ()
      end)
    keys;
  respond t ~client ~req_id Kv_msg.Unlocked

(* {2 Kronos transaction pin protocol} *)

let dedup_constraints constraints =
  List.sort_uniq
    (fun (a1, a2) (b1, b2) ->
      match Event_id.compare a1 b1 with
      | 0 -> Event_id.compare a2 b2
      | c -> c)
    constraints

(* Attempt to pin and answer a prepare; [false] means some key is pinned by
   another undecided transaction, so the prepare must park. *)
let try_prepare t ~client ~req_id ~txn ~event ~reads ~writes =
  let keys = List.sort_uniq String.compare (reads @ writes) in
  let blocked =
    List.exists
      (fun key ->
        match (key_state t key).pinned_by with
        | Some holder -> holder <> txn
        | None -> false)
      keys
  in
  if blocked then false
  else begin
    (* pin everything, read, and compute the ordering constraints *)
    List.iter (fun key -> (key_state t key).pinned_by <- Some txn) keys;
    Hashtbl.replace t.active txn { event; reads; writes };
    let values = List.map (fun key -> (key, (key_state t key).value)) reads in
    let constraint_of_read key =
      match (key_state t key).last_writer with
      | Some w when not (Event_id.equal w event) -> [ (w, event) ]
      | Some _ | None -> []
    in
    let constraint_of_write key =
      let ks = key_state t key in
      let after_writer =
        match ks.last_writer with
        | Some w when not (Event_id.equal w event) -> [ (w, event) ]
        | Some _ | None -> []
      in
      let after_readers =
        List.filter_map
          (fun r -> if Event_id.equal r event then None else Some (r, event))
          ks.last_readers
      in
      after_writer @ after_readers
    in
    let constraints =
      dedup_constraints
        (List.concat_map constraint_of_read reads
         @ List.concat_map constraint_of_write writes)
    in
    respond t ~client ~req_id (Kv_msg.Prepared { constraints; values });
    true
  end

(* Park a blocked prepare in transaction-age order, with a timeout that
   rejects it (the client aborts and retries) — the timeout is what breaks
   the rare cross-shard pin deadlocks. *)
let park t p =
  let rec insert = function
    | [] -> [ p ]
    | q :: rest as l -> if p.p_txn < q.p_txn then p :: l else q :: insert rest
  in
  t.parked <- insert t.parked;
  let timer =
    Kronos_simnet.Sim.schedule
      (Net.sim t.net)
      ~delay:t.prepare_timeout
      (fun () ->
        if p.p_live then begin
          p.p_live <- false;
          t.parked <- List.filter (fun q -> q != p) t.parked;
          t.rejections <- t.rejections + 1;
          respond t ~client:p.p_client ~req_id:p.p_req_id Kv_msg.Prepare_rejected
        end)
  in
  p.p_timer <- Some timer

(* After an unpin, admit as many parked prepares as now fit, oldest first. *)
let rec drain_parked t =
  let rec first_ready acc = function
    | [] -> None
    | p :: rest ->
      if
        try_prepare t ~client:p.p_client ~req_id:p.p_req_id ~txn:p.p_txn
          ~event:p.p_event ~reads:p.p_reads ~writes:p.p_writes
      then begin
        p.p_live <- false;
        (match p.p_timer with
         | Some timer -> Kronos_simnet.Sim.cancel timer
         | None -> ());
        Some (List.rev_append acc rest)
      end
      else first_ready (p :: acc) rest
  in
  match first_ready [] t.parked with
  | Some remaining ->
    t.parked <- remaining;
    drain_parked t
  | None -> ()

let handle_prepare t ~client ~req_id ~txn ~event ~reads ~writes =
  t.prepares <- t.prepares + 1;
  if not (try_prepare t ~client ~req_id ~txn ~event ~reads ~writes) then
    park t
      { p_txn = txn; p_client = client; p_req_id = req_id; p_event = event;
        p_reads = reads; p_writes = writes; p_live = true; p_timer = None }

let handle_decide t ~client ~req_id ~txn ~commit ~writes =
  (match Hashtbl.find_opt t.active txn with
   | None -> ()  (* duplicate decide *)
   | Some info ->
     Hashtbl.remove t.active txn;
     if commit then begin
       t.commits <- t.commits + 1;
       List.iter
         (fun key ->
           let ks = key_state t key in
           if not (List.exists (Event_id.equal info.event) ks.last_readers)
           then ks.last_readers <- info.event :: ks.last_readers)
         info.reads;
       List.iter
         (fun (key, value) ->
           let ks = key_state t key in
           ks.value <- Some value;
           ks.last_writer <- Some info.event;
           ks.last_readers <- [];
           ks.history <- (info.event, value) :: ks.history)
         writes
     end
     else t.aborts <- t.aborts + 1;
     let keys = List.sort_uniq String.compare (info.reads @ info.writes) in
     List.iter
       (fun key ->
         let ks = key_state t key in
         if ks.pinned_by = Some txn then ks.pinned_by <- None)
       keys);
  respond t ~client ~req_id Kv_msg.Decided;
  drain_parked t

let handle t ~src:_ msg =
  match (msg : Kv_msg.msg) with
  | Kv_msg.Response _ -> ()  (* shards never await responses *)
  | Kv_msg.Request { client; req_id; body } -> (
      match body with
      | Kv_msg.Get { key } -> handle_get t ~client ~req_id key
      | Kv_msg.Put { key; value } -> handle_put t ~client ~req_id key value
      | Kv_msg.Lock { txn; keys } -> handle_lock t ~client ~req_id txn keys
      | Kv_msg.Unlock { txn; keys } -> handle_unlock t ~client ~req_id txn keys
      | Kv_msg.Prepare { txn; event; reads; writes } ->
        handle_prepare t ~client ~req_id ~txn ~event ~reads ~writes
      | Kv_msg.Decide { txn; commit; writes } ->
        handle_decide t ~client ~req_id ~txn ~commit ~writes)

let create ~net ~addr ?(service_time = 0.0) ?(prepare_timeout = 10e-3) () =
  let service =
    if service_time > 0.0 then
      Some (Kronos_simnet.Service_queue.create (Net.sim net))
    else None
  in
  let t =
    {
      net;
      addr;
      service;
      service_time;
      prepare_timeout;
      keys = Hashtbl.create 1024;
      active = Hashtbl.create 64;
      parked = [];
      prepares = 0;
      rejections = 0;
      commits = 0;
      aborts = 0;
    }
  in
  let deliver ~src msg =
    match t.service with
    | None -> handle t ~src msg
    | Some queue ->
      Kronos_simnet.Service_queue.submit_fixed queue ~cost:t.service_time
        (fun () -> handle t ~src msg)
  in
  Net.register net addr deliver;
  t
