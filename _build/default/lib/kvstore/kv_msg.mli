(** Messages of the sharded key-value store.

    Three families of requests support the three transaction disciplines of
    the Figure 7 comparison:
    - [Get]/[Put]: uncoordinated single-key operations ("put-and-pray", the
      MongoDB stand-in);
    - [Lock]/[Unlock]: a per-shard lock manager for the Percolator-style
      locking baseline;
    - [Prepare]/[Decide]: the Kronos-ordered transaction protocol
      (Section 3.3): prepare pins keys and reports ordering constraints and
      read values; decide applies or discards the writes. *)

open Kronos

type request =
  | Get of { key : string }
  | Put of { key : string; value : string }
  | Lock of { txn : int; keys : string list }
  | Unlock of { txn : int; keys : string list }
  | Prepare of {
      txn : int;
      event : Event_id.t;
      reads : string list;   (** keys this shard should read and pin *)
      writes : string list;  (** keys this shard will later write *)
    }
  | Decide of {
      txn : int;
      commit : bool;
      writes : (string * string) list;  (** applied only when [commit] *)
    }

type response =
  | Value of { value : string option }
  | Put_done
  | Lock_granted
  | Unlocked
  | Prepared of {
      constraints : (Event_id.t * Event_id.t) list;
          (** (before, after) pairs the transaction's event must respect *)
      values : (string * string option) list;  (** reads at pin time *)
    }
  | Prepare_rejected
      (** the prepare parked past its timeout (deadlock suspicion): the
          client aborts and retries *)
  | Decided

type msg =
  | Request of { client : Kronos_simnet.Net.addr; req_id : int; body : request }
  | Response of { req_id : int; body : response }

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
