(** Thin request/response client for shard servers: matches responses to
    callbacks by request id.  The simulated network is reliable (no drops)
    for the application tier, so no retransmission is needed here. *)

type t

val create :
  net:Kv_msg.msg Kronos_simnet.Net.t -> addr:Kronos_simnet.Net.addr -> t

val addr : t -> Kronos_simnet.Net.addr

val request :
  t -> shard:Kronos_simnet.Net.addr -> Kv_msg.request ->
  (Kv_msg.response -> unit) -> unit

val outstanding : t -> int
