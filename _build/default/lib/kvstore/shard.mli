(** A key-value shard server process.

    Serves plain [Get]/[Put], a FIFO lock manager ([Lock]/[Unlock]), and the
    Kronos transaction pin protocol ([Prepare]/[Decide]).

    The pin protocol (our realization of Section 3.3, see DESIGN.md):
    - a [Prepare] pins all its local keys, reads their values, and returns
      the ordering constraints "last writer of k happens-before this
      transaction" (plus "each reader since that write happens-before this
      transaction" for written keys);
    - while pinned, conflicting prepares park (FIFO by transaction age) and
      are admitted when the pin clears; a parked prepare that waits longer
      than [prepare_timeout] is rejected so the client can abort and retry,
      which breaks the rare cross-shard pin deadlocks;
    - [Decide] applies the writes (commit) or discards them (abort), unpins,
      and admits parked prepares, oldest first.

    Per-key write histories are retained so tests can verify
    serializability. *)

open Kronos

type t

val create :
  net:Kv_msg.msg Kronos_simnet.Net.t ->
  addr:Kronos_simnet.Net.addr ->
  ?service_time:float ->
  ?prepare_timeout:float ->
  unit ->
  t
(** [service_time] > 0 models the shard's CPU: each request occupies the
    server for that many virtual seconds, bounding its throughput (used by
    the capacity-sensitive benchmarks).  Default 0 — requests are served
    instantly.  [prepare_timeout] (default 10 ms virtual) bounds how long a
    conflicting prepare may park before being rejected. *)

val addr : t -> Kronos_simnet.Net.addr

(** {1 Direct (non-networked) inspection for tests and checkers} *)

val peek : t -> string -> string option
(** Current value of a key. *)

val history : t -> string -> (Event_id.t * string) list
(** Committed writes to a key, oldest first, with the writing transaction's
    event ([Event_id.none] for plain [Put]s). *)

val last_writer : t -> string -> Event_id.t option

val pinned_keys : t -> int
(** Keys currently pinned by an undecided transaction. *)

val parked_prepares : t -> int

val lock_queue_length : t -> int
(** Total waiters across all lock queues. *)

(** {1 Statistics} *)

val prepares : t -> int
val rejections : t -> int
val commits : t -> int
val aborts : t -> int
