(** Client-side key partitioning: keys are hash-distributed across a fixed
    number of shards. *)

val shard_of : shards:int -> string -> int
(** Index in [0, shards) of the shard owning a key (deterministic).
    @raise Invalid_argument if [shards <= 0]. *)

val partition : shards:int -> string list -> (int * string list) list
(** Group keys by owning shard; shards with no keys are omitted.  Key order
    within a group follows the input. *)
