let shard_of ~shards key =
  if shards <= 0 then invalid_arg "Router.shard_of: shards must be positive";
  Hashtbl.hash key mod shards

let partition ~shards keys =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun key ->
      let s = shard_of ~shards key in
      let existing = Option.value ~default:[] (Hashtbl.find_opt groups s) in
      Hashtbl.replace groups s (key :: existing))
    keys;
  Hashtbl.fold (fun s keys acc -> (s, List.rev keys) :: acc) groups []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
