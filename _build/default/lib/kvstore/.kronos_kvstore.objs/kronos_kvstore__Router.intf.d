lib/kvstore/router.mli:
