lib/kvstore/shard.ml: Event_id Hashtbl Kronos Kronos_simnet Kv_msg List String
