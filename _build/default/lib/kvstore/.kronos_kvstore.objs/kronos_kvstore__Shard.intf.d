lib/kvstore/shard.mli: Event_id Kronos Kronos_simnet Kv_msg
