lib/kvstore/kv_msg.ml: Event_id Format Kronos Kronos_simnet List Option
