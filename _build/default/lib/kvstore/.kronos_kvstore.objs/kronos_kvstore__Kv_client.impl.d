lib/kvstore/kv_client.ml: Hashtbl Kronos_simnet Kv_msg
