lib/kvstore/kv_client.mli: Kronos_simnet Kv_msg
