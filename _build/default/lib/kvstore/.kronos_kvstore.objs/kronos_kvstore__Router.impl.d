lib/kvstore/router.ml: Hashtbl Int List Option
