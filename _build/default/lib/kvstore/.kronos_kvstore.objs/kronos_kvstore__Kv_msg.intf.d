lib/kvstore/kv_msg.mli: Event_id Format Kronos Kronos_simnet
