(* The Cheriton–Skeen scenarios of Section 3.4: shop-floor control, the
   fire alarm, and the fail-safe that couples them through Kronos alone.

   Run with: dune exec examples/fire_alarm.exe *)

open Kronos_catocs

let () =
  Format.printf "== CATOCS scenarios (Section 3.4) ==@.";

  Format.printf "@.-- shop floor: START/STOP over a reordering channel --@.";
  let trials = 25 in
  let correct_with = ref 0 and correct_without = ref 0 in
  for seed = 1 to trials do
    let seed = Int64.of_int seed in
    if Shop_floor.correct (Shop_floor.run ~kronos:true ~seed ~commands:25) then
      incr correct_with;
    if Shop_floor.correct (Shop_floor.run ~kronos:false ~seed ~commands:25) then
      incr correct_without
  done;
  Format.printf "  machine ends in commanded state: %d/%d with Kronos, %d/%d without@."
    !correct_with trials !correct_without trials;

  Format.printf "@.-- fire alarm: which fires still burn? --@.";
  let correct_with = ref 0 and correct_without = ref 0 in
  for seed = 1 to trials do
    let seed = Int64.of_int seed in
    if Fire_alarm.correct (Fire_alarm.run ~kronos:true ~seed ~locations:6 ~rounds:4)
    then incr correct_with;
    if Fire_alarm.correct (Fire_alarm.run ~kronos:false ~seed ~locations:6 ~rounds:4)
    then incr correct_without
  done;
  Format.printf "  monitor belief matches ground truth: %d/%d with Kronos, %d/%d without@."
    !correct_with trials !correct_without trials;

  Format.printf "@.-- fail-safe: stop machines during fires, restart after --@.";
  let all_ok = ref true in
  for seed = 1 to trials do
    let outcome = Fail_safe.run ~seed:(Int64.of_int seed) ~cycles:8 in
    if not (Fail_safe.correct outcome) then all_ok := false
  done;
  Format.printf
    "  fire -> stop -> fire-out -> start upheld on all %d seeds: %b@." trials !all_ok;
  Format.printf
    "  (the fail-safe never talks to the alarm or the control units —@.";
  Format.printf "   the coupling lives entirely in the event dependency graph)@."
