examples/fire_alarm.ml: Fail_safe Fire_alarm Format Int64 Kronos_catocs Shop_floor
