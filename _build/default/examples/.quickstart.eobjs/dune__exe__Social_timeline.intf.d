examples/social_timeline.mli:
