examples/quickstart.mli:
