examples/social_timeline.ml: Engine Event_id Format Hashtbl Kronos List Option Order
