examples/quickstart.ml: Engine Format Kronos List Order
