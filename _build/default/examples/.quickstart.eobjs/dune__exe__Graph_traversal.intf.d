examples/graph_traversal.mli:
