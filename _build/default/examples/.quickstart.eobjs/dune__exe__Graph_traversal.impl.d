examples/graph_traversal.ml: Array Format G_msg Kgraph Kronos_graphstore Kronos_service Kronos_simnet Kshard List Net Option Sim String
