examples/bank_transfer.ml: Array Executor Format Kronos_kvstore Kronos_service Kronos_simnet Kronos_txn Kronos_workload Kv_client Kv_msg Net Rng Router Shard Sim
