open Kronos

type message = {
  id : int;
  author : string;
  text : string;
  event : Event_id.t;
}

type t = {
  engine : Engine.t;
  mutable next_id : int;
  timelines : (string, message list) Hashtbl.t;  (* newest first *)
  friends : (string, string list) Hashtbl.t;
}

let create ?engine () =
  {
    engine = (match engine with Some e -> e | None -> Engine.create ());
    next_id = 0;
    timelines = Hashtbl.create 32;
    friends = Hashtbl.create 32;
  }

let engine t = t.engine

let friends_of t user =
  Option.value ~default:[] (Hashtbl.find_opt t.friends user)

let add_friendship t a b =
  let link x y =
    let fs = friends_of t x in
    if not (List.mem y fs) then Hashtbl.replace t.friends x (y :: fs)
  in
  if a <> b then begin
    link a b;
    link b a
  end

let enqueue t ~timeline message =
  Hashtbl.replace t.timelines timeline
    (message :: Option.value ~default:[] (Hashtbl.find_opt t.timelines timeline))

let post t ~author ~text =
  let event = Engine.create_event t.engine in
  t.next_id <- t.next_id + 1;
  let message = { id = t.next_id; author; text; event } in
  List.iter
    (fun timeline -> enqueue t ~timeline message)
    (author :: friends_of t author);
  message

let reply t ~author ~text ~in_reply_to =
  let message = post t ~author ~text in
  match
    Engine.assign_order t.engine
      [ Order.must_before in_reply_to.event message.event ]
  with
  | Ok _ -> message
  | Error e ->
    invalid_arg
      (Format.asprintf "Timeline.reply: ordering rejected (%a)"
         Order.pp_assign_error e)

let timeline_raw t ~user =
  List.rev (Option.value ~default:[] (Hashtbl.find_opt t.timelines user))

let render t ~user =
  let messages = timeline_raw t ~user in
  (* all-pairs query, as in the paper's pseudocode *)
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b -> if a.id < b.id then Some (a, b) else None)
          messages)
      messages
  in
  let orderings =
    match
      Engine.query_order t.engine
        (List.map (fun (a, b) -> (a.event, b.event)) pairs)
    with
    | Ok rels -> List.combine pairs rels
    | Error _ -> []
  in
  let must_precede a b =
    List.exists
      (fun ((x, y), rel) ->
        match (rel : Order.relation) with
        | Order.Before -> x.id = a.id && y.id = b.id
        | Order.After -> y.id = a.id && x.id = b.id
        | Order.Concurrent | Order.Same -> false)
      orderings
  in
  (* stable topological sort: repeatedly emit the earliest-arrived message
     with no unemitted predecessor *)
  let rec sort remaining acc =
    match
      List.find_opt
        (fun m ->
          not
            (List.exists (fun p -> p.id <> m.id && must_precede p m) remaining))
        remaining
    with
    | None -> List.rev acc @ remaining  (* unreachable: the order is acyclic *)
    | Some m -> sort (List.filter (fun x -> x.id <> m.id) remaining) (m :: acc)
  in
  sort messages []
