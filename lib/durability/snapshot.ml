open Kronos
module Codec = Kronos_wire.Codec

(* Version 2 appends the graph's topological-rank index (per-slot ranks +
   the rank allocator) to the version-1 body.  Version-1 snapshots are still
   decoded: they surface as [snap_rank = None] and [Graph.of_snapshot]
   rebuilds an equivalent rank assignment deterministically with Kahn's
   algorithm, so pre-rank snapshot files stay loadable after an upgrade.

   Version 3 appends the commitment-chain links (DESIGN.md §13): per live
   slot, one [(predecessor id, predecessor head, predecessor position)]
   triple per link; partners and heads are refolded on restore.  Version-1
   and version-2 snapshots surface as [snap_links = None] and
   [Graph.of_snapshot] rebuilds the chains canonically from adjacency, so
   every upgrade of the same logical graph re-anchors to identical
   commitments.

   Version 4 appends the graph mutation version (the view epoch,
   DESIGN.md §14) so epochs continue monotonically across restarts.
   Pre-v4 snapshots surface as [snap_version = 0] and [Graph.of_snapshot]
   seeds the epoch from the rank allocator — deterministic across
   replicas, though not continuous with the captured engine's epoch.

   Version 5 appends the chain-decomposition assignment (DESIGN.md §15):
   per slot its chain id (biased by one to stay unsigned) and position,
   per chain its length, and the free-chain stack.  Labels are not
   persisted — exact labels are a pure function of adjacency + chains and
   are recomputed on restore.  Pre-v5 snapshots surface as
   [snap_chains = None] and [Graph.of_snapshot] rebuilds a canonical
   assignment deterministically, mirroring the v1 rank rebuild. *)
let version = 5

let oldest_supported_version = 1

let magic = "KSNP"

let header_bytes = 10 (* magic + u16 version + u32 crc *)

let put_int_array e a =
  Codec.put_u32 e (Array.length a);
  Array.iter (fun x -> Codec.put_u32 e x) a

let get_int_array d = Array.of_list (Codec.get_list d Codec.get_u32)

(* Encoder for any supported format version.  [encode] always emits the
   newest; older formats exist for the cross-version recovery matrix and
   the nemesis harness's mixed-version chains — a v[k] file written here
   is bit-compatible with what a v[k]-era engine wrote (the sections a
   format lacks are simply absent). *)
let encode_at ~fmt ~seq (s : Engine.snapshot) =
  if fmt < oldest_supported_version || fmt > version then
    invalid_arg (Printf.sprintf "Snapshot.encode_at: unsupported version %d" fmt);
  let e = Codec.encoder () in
  Codec.put_i64 e (Int64.of_int seq);
  let g = s.Engine.snap_graph in
  Codec.put_u32 e g.Graph.snap_next_slot;
  (* refcounts include -1 for free slots: bias by one to stay unsigned *)
  Codec.put_u32 e (Array.length g.Graph.snap_refcount);
  Array.iter (fun rc -> Codec.put_u32 e (rc + 1)) g.Graph.snap_refcount;
  put_int_array e g.Graph.snap_gen;
  Codec.put_u32 e (Array.length g.Graph.snap_succ);
  Array.iter (put_int_array e) g.Graph.snap_succ;
  put_int_array e g.Graph.snap_free;
  Codec.put_i64 e (Int64.of_int g.Graph.snap_traversals);
  Codec.put_i64 e (Int64.of_int g.Graph.snap_visited_total);
  (* v2 suffix: rank index.  Ranks are sparse integers that can exceed the
     u32 range on long-lived engines, so they travel as i64. *)
  if fmt >= 2 then begin
    match g.Graph.snap_rank with
    | Some ranks ->
      Codec.put_bool e true;
      Codec.put_u32 e (Array.length ranks);
      Array.iter (fun r -> Codec.put_i64 e (Int64.of_int r)) ranks;
      Codec.put_i64 e (Int64.of_int g.Graph.snap_next_rank)
    | None -> Codec.put_bool e false
  end;
  Codec.put_i64 e (Int64.of_int s.Engine.snap_creates);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_queries);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_assigns);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_aborted_batches);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_reversals);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_collected);
  (* v3 suffix: commitment-chain links.  Positions travel as i64 like the
     ranks (chain lengths are unbounded ints in principle). *)
  if fmt >= 3 then begin
    match g.Graph.snap_links with
    | Some links ->
      Codec.put_bool e true;
      Codec.put_u32 e (Array.length links);
      Array.iter
        (fun ls ->
          Codec.put_u32 e (Array.length ls);
          Array.iter
            (fun (pred, head, pos) ->
              Codec.put_i64 e pred;
              Codec.put_string e head;
              Codec.put_i64 e (Int64.of_int pos))
            ls)
        links
    | None -> Codec.put_bool e false
  end;
  (* v4 suffix: graph mutation version (view epoch). *)
  if fmt >= 4 then Codec.put_i64 e (Int64.of_int g.Graph.snap_version);
  (* v5 suffix: chain-decomposition assignment.  Chain ids are small (the
     cap bounds them) but positions count members ever appended, so they
     travel as i64 like the ranks; per-slot ids are biased by one so the
     -1 "unassigned" marker stays unsigned. *)
  if fmt >= 5 then begin
    match g.Graph.snap_chains with
    | Some cs ->
      Codec.put_bool e true;
      Codec.put_u32 e (Array.length cs.Graph.cs_chain_of);
      Array.iter (fun c -> Codec.put_u32 e (c + 1)) cs.Graph.cs_chain_of;
      Array.iter (fun p -> Codec.put_i64 e (Int64.of_int p))
        cs.Graph.cs_chain_pos;
      Codec.put_u32 e (Array.length cs.Graph.cs_chain_len);
      Array.iter (fun l -> Codec.put_i64 e (Int64.of_int l))
        cs.Graph.cs_chain_len;
      put_int_array e cs.Graph.cs_free_chains
    | None -> Codec.put_bool e false
  end;
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + header_bytes) in
  Buffer.add_string b magic;
  Buffer.add_uint16_be b fmt;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

let encode ~seq s = encode_at ~fmt:version ~seq s

(* Header check shared by [decode] and [load_latest_bytes]: returns the
   format version and the body on success. *)
let validate data =
  if String.length data < header_bytes then
    raise (Codec.Decode_error "snapshot: truncated header");
  if String.sub data 0 4 <> magic then
    raise (Codec.Decode_error "snapshot: bad magic");
  let v = String.get_uint16_be data 4 in
  if v < oldest_supported_version || v > version then
    raise (Codec.Decode_error (Printf.sprintf "snapshot: unsupported version %d" v));
  let crc = String.get_int32_be data 6 in
  let body = String.sub data header_bytes (String.length data - header_bytes) in
  if Crc32.string body <> crc then
    raise (Codec.Decode_error "snapshot: checksum mismatch");
  (v, body)

let get_int64 d = Int64.to_int (Codec.get_i64 d)

let decode data =
  let v, body = validate data in
  let d = Codec.decoder body in
  let seq = get_int64 d in
  let snap_next_slot = Codec.get_u32 d in
  let snap_refcount =
    Array.map (fun x -> x - 1) (get_int_array d)
  in
  let snap_gen = get_int_array d in
  let n = Codec.get_u32 d in
  if n > String.length body then
    raise (Codec.Decode_error "snapshot: absurd adjacency count");
  let snap_succ = Array.init n (fun _ -> get_int_array d) in
  let snap_free = get_int_array d in
  let snap_traversals = get_int64 d in
  let snap_visited_total = get_int64 d in
  let snap_rank, snap_next_rank =
    if v < 2 then (None, 0)
    else if not (Codec.get_bool d) then (None, 0)
    else begin
      let len = Codec.get_u32 d in
      if len > String.length body then
        raise (Codec.Decode_error "snapshot: absurd rank count");
      let ranks = Array.init len (fun _ -> get_int64 d) in
      let next_rank = get_int64 d in
      (Some ranks, next_rank)
    end
  in
  let snap_creates = get_int64 d in
  let snap_queries = get_int64 d in
  let snap_assigns = get_int64 d in
  let snap_aborted_batches = get_int64 d in
  let snap_reversals = get_int64 d in
  let snap_collected = get_int64 d in
  let snap_links =
    if v < 3 then None
    else if not (Codec.get_bool d) then None
    else begin
      let len = Codec.get_u32 d in
      if len > String.length body then
        raise (Codec.Decode_error "snapshot: absurd link table count");
      Some
        (Array.init len (fun _ ->
             let m = Codec.get_u32 d in
             if m > String.length body then
               raise (Codec.Decode_error "snapshot: absurd link count");
             Array.init m (fun _ ->
                 let pred = Codec.get_i64 d in
                 let head = Codec.get_string d in
                 let pos = get_int64 d in
                 (pred, head, pos))))
    end
  in
  let snap_version = if v < 4 then 0 else get_int64 d in
  let snap_chains =
    if v < 5 then None
    else if not (Codec.get_bool d) then None
    else begin
      let nslots = Codec.get_u32 d in
      if nslots > String.length body then
        raise (Codec.Decode_error "snapshot: absurd chain table count");
      let cs_chain_of = Array.init nslots (fun _ -> Codec.get_u32 d - 1) in
      let cs_chain_pos = Array.init nslots (fun _ -> get_int64 d) in
      let nchains = Codec.get_u32 d in
      if nchains > String.length body then
        raise (Codec.Decode_error "snapshot: absurd chain count");
      let cs_chain_len = Array.init nchains (fun _ -> get_int64 d) in
      let cs_free_chains = get_int_array d in
      Some { Graph.cs_chain_of; cs_chain_pos; cs_chain_len; cs_free_chains }
    end
  in
  Codec.expect_end d;
  ( seq,
    {
      Engine.snap_graph =
        {
          Graph.snap_next_slot;
          snap_refcount;
          snap_gen;
          snap_succ;
          snap_free;
          snap_rank;
          snap_next_rank;
          snap_traversals;
          snap_visited_total;
          snap_links;
          snap_version;
          snap_chains;
        };
      snap_creates;
      snap_queries;
      snap_assigns;
      snap_aborted_batches;
      snap_reversals;
      snap_collected;
    } )

let filename ~seq = Printf.sprintf "snap-%010d.snap" seq

let parse_filename name =
  if String.length name = 20
     && String.sub name 0 5 = "snap-"
     && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 5 10)
  else None

let m_writes =
  Kronos_metrics.counter (Kronos_metrics.scope "snapshot") "writes_total"

let m_bytes =
  Kronos_metrics.counter (Kronos_metrics.scope "snapshot") "bytes_written_total"

let write_bytes storage ~seq data =
  Kronos_metrics.Counter.incr m_writes;
  Kronos_metrics.Counter.add m_bytes (String.length data);
  let final = filename ~seq in
  let tmp = Printf.sprintf "snap-%010d.tmp" seq in
  storage.Storage.remove_file tmp;
  let w = storage.Storage.open_append tmp in
  w.Storage.append data;
  w.Storage.sync ();
  w.Storage.close ();
  storage.Storage.rename_file tmp final

let write storage ~seq engine =
  write_bytes storage ~seq (encode ~seq (Engine.to_snapshot engine))

let list_snapshots storage =
  storage.Storage.list_files ()
  |> List.filter_map (fun n -> Option.map (fun s -> (s, n)) (parse_filename n))
  |> List.sort (fun a b -> compare b a) (* newest first *)

let load_latest_bytes storage =
  List.find_map
    (fun (seq, name) ->
      match storage.Storage.read_file name with
      | None -> None
      | Some data -> (
          match validate data with
          | (_ : int * string) -> Some (seq, data)
          | exception Codec.Decode_error _ -> None))
    (list_snapshots storage)

let load_latest ?config storage =
  List.find_map
    (fun (_, name) ->
      match storage.Storage.read_file name with
      | None -> None
      | Some data -> (
          match decode data with
          | seq, snap -> Some (seq, Engine.of_snapshot ?config snap)
          | exception (Codec.Decode_error _ | Invalid_argument _) -> None))
    (list_snapshots storage)

let truncate_old storage ~keep =
  let keep = max keep 1 in
  list_snapshots storage
  |> List.iteri (fun i (_, name) ->
         if i >= keep then storage.Storage.remove_file name);
  (* stray temporaries from interrupted writes *)
  storage.Storage.list_files ()
  |> List.iter (fun n ->
         if String.length n >= 5
            && String.sub n 0 5 = "snap-"
            && Filename.check_suffix n ".tmp"
         then storage.Storage.remove_file n)

(* ------------------------------------------------------------------ *)
(* Incremental snapshots (DESIGN.md §16).                              *)
(*                                                                     *)
(* A delta file ([delta-<seq>.delta], magic KSND) carries an           *)
(* [Engine.delta] against the snapshot state at [base_seq] — itself a  *)
(* full file or another delta, forming a chain that terminates in a    *)
(* full snapshot.  Recovery resolves the newest head whose whole chain *)
(* is intact; any corrupt or missing link makes the resolver fall back *)
(* to the next older head, exactly like corrupt full snapshots.        *)
(* ------------------------------------------------------------------ *)

let delta_version = 1
let delta_magic = "KSND"

let encode_delta ~base_seq ~seq (d : Engine.delta) =
  let e = Codec.encoder () in
  Codec.put_i64 e (Int64.of_int base_seq);
  Codec.put_i64 e (Int64.of_int seq);
  let gd = d.Engine.delta_graph in
  Codec.put_u32 e (Array.length gd.Graph.d_slots);
  Array.iter
    (fun sd ->
      Codec.put_u32 e sd.Graph.sd_slot;
      Codec.put_u32 e (sd.Graph.sd_refcount + 1);
      Codec.put_u32 e sd.Graph.sd_gen;
      Codec.put_i64 e (Int64.of_int sd.Graph.sd_rank);
      put_int_array e sd.Graph.sd_succ;
      Codec.put_u32 e (Array.length sd.Graph.sd_links);
      Array.iter
        (fun (pred, head, pos) ->
          Codec.put_i64 e pred;
          Codec.put_string e head;
          Codec.put_i64 e (Int64.of_int pos))
        sd.Graph.sd_links;
      Codec.put_u32 e (sd.Graph.sd_chain_of + 1);
      Codec.put_i64 e (Int64.of_int sd.Graph.sd_chain_pos))
    gd.Graph.d_slots;
  Codec.put_u32 e gd.Graph.d_next_slot;
  put_int_array e gd.Graph.d_free;
  Codec.put_i64 e (Int64.of_int gd.Graph.d_next_rank);
  Codec.put_i64 e (Int64.of_int gd.Graph.d_traversals);
  Codec.put_i64 e (Int64.of_int gd.Graph.d_visited_total);
  Codec.put_i64 e (Int64.of_int gd.Graph.d_version);
  Codec.put_u32 e (Array.length gd.Graph.d_chain_len);
  Array.iter (fun l -> Codec.put_i64 e (Int64.of_int l)) gd.Graph.d_chain_len;
  put_int_array e gd.Graph.d_free_chains;
  Codec.put_bool e gd.Graph.d_digests;
  Codec.put_i64 e (Int64.of_int d.Engine.delta_creates);
  Codec.put_i64 e (Int64.of_int d.Engine.delta_queries);
  Codec.put_i64 e (Int64.of_int d.Engine.delta_assigns);
  Codec.put_i64 e (Int64.of_int d.Engine.delta_aborted_batches);
  Codec.put_i64 e (Int64.of_int d.Engine.delta_reversals);
  Codec.put_i64 e (Int64.of_int d.Engine.delta_collected);
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + header_bytes) in
  Buffer.add_string b delta_magic;
  Buffer.add_uint16_be b delta_version;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

let validate_delta data =
  if String.length data < header_bytes then
    raise (Codec.Decode_error "delta: truncated header");
  if String.sub data 0 4 <> delta_magic then
    raise (Codec.Decode_error "delta: bad magic");
  let v = String.get_uint16_be data 4 in
  if v <> delta_version then
    raise (Codec.Decode_error (Printf.sprintf "delta: unsupported version %d" v));
  let crc = String.get_int32_be data 6 in
  let body = String.sub data header_bytes (String.length data - header_bytes) in
  if Crc32.string body <> crc then
    raise (Codec.Decode_error "delta: checksum mismatch");
  body

let decode_delta data =
  let body = validate_delta data in
  let d = Codec.decoder body in
  let base_seq = get_int64 d in
  let seq = get_int64 d in
  let nslots = Codec.get_u32 d in
  if nslots > String.length body then
    raise (Codec.Decode_error "delta: absurd slot count");
  let d_slots =
    Array.init nslots (fun _ ->
        let sd_slot = Codec.get_u32 d in
        let sd_refcount = Codec.get_u32 d - 1 in
        let sd_gen = Codec.get_u32 d in
        let sd_rank = get_int64 d in
        let sd_succ = get_int_array d in
        let nlinks = Codec.get_u32 d in
        if nlinks > String.length body then
          raise (Codec.Decode_error "delta: absurd link count");
        let sd_links =
          Array.init nlinks (fun _ ->
              let pred = Codec.get_i64 d in
              let head = Codec.get_string d in
              let pos = get_int64 d in
              (pred, head, pos))
        in
        let sd_chain_of = Codec.get_u32 d - 1 in
        let sd_chain_pos = get_int64 d in
        {
          Graph.sd_slot;
          sd_refcount;
          sd_gen;
          sd_rank;
          sd_succ;
          sd_links;
          sd_chain_of;
          sd_chain_pos;
        })
  in
  let d_next_slot = Codec.get_u32 d in
  let d_free = get_int_array d in
  let d_next_rank = get_int64 d in
  let d_traversals = get_int64 d in
  let d_visited_total = get_int64 d in
  let d_version = get_int64 d in
  let nchains = Codec.get_u32 d in
  if nchains > String.length body then
    raise (Codec.Decode_error "delta: absurd chain count");
  let d_chain_len = Array.init nchains (fun _ -> get_int64 d) in
  let d_free_chains = get_int_array d in
  let d_digests = Codec.get_bool d in
  let delta_creates = get_int64 d in
  let delta_queries = get_int64 d in
  let delta_assigns = get_int64 d in
  let delta_aborted_batches = get_int64 d in
  let delta_reversals = get_int64 d in
  let delta_collected = get_int64 d in
  Codec.expect_end d;
  ( base_seq,
    seq,
    {
      Engine.delta_graph =
        {
          Graph.d_slots;
          d_next_slot;
          d_free;
          d_next_rank;
          d_traversals;
          d_visited_total;
          d_version;
          d_chain_len;
          d_free_chains;
          d_digests;
        };
      delta_creates;
      delta_queries;
      delta_assigns;
      delta_aborted_batches;
      delta_reversals;
      delta_collected;
    } )

let delta_filename ~seq = Printf.sprintf "delta-%010d.delta" seq

let parse_delta_filename name =
  if String.length name = 22
     && String.sub name 0 6 = "delta-"
     && Filename.check_suffix name ".delta"
  then int_of_string_opt (String.sub name 6 10)
  else None

let m_delta_writes =
  Kronos_metrics.counter (Kronos_metrics.scope "snapshot") "delta_writes_total"

let write_delta_bytes storage ~seq data =
  Kronos_metrics.Counter.incr m_delta_writes;
  Kronos_metrics.Counter.add m_bytes (String.length data);
  let final = delta_filename ~seq in
  let tmp = Printf.sprintf "delta-%010d.tmp" seq in
  storage.Storage.remove_file tmp;
  let w = storage.Storage.open_append tmp in
  w.Storage.append data;
  w.Storage.sync ();
  w.Storage.close ();
  storage.Storage.rename_file tmp final

let write_delta storage ~base_seq ~seq engine =
  write_delta_bytes storage ~seq
    (encode_delta ~base_seq ~seq (Engine.to_delta engine))

let list_deltas storage =
  storage.Storage.list_files ()
  |> List.filter_map (fun n ->
         Option.map (fun s -> (s, n)) (parse_delta_filename n))
  |> List.sort (fun a b -> compare b a) (* newest first *)

(* Fuel for chain resolution: a delta chain longer than this is treated as
   unresolvable (policies cap chains at a handful of links; only corrupt
   base_seq values could approach the bound). *)
let max_chain_depth = 1024

(* Resolve the composed snapshot state at [seq]: a valid full file wins;
   otherwise a valid delta at [seq] recursively resolves its base and
   overlays.  Returns the composed snapshot and the number of deltas
   applied, or [None] when any link of the chain is missing or corrupt. *)
let rec state_at storage ~fuel seq =
  let full =
    match storage.Storage.read_file (filename ~seq) with
    | None -> None
    | Some data -> (
        match decode data with
        | s, snap when s = seq -> Some (snap, 0)
        | _ -> None
        | exception (Codec.Decode_error _ | Invalid_argument _) -> None)
  in
  match full with
  | Some _ -> full
  | None -> (
      if fuel <= 0 then None
      else
        match storage.Storage.read_file (delta_filename ~seq) with
        | None -> None
        | Some data -> (
            match decode_delta data with
            | base_seq, s, d when s = seq && base_seq < seq -> (
                match state_at storage ~fuel:(fuel - 1) base_seq with
                | None -> None
                | Some (base, applied) -> (
                    match Engine.apply_delta base d with
                    | snap -> Some (snap, applied + 1)
                    | exception Invalid_argument _ -> None))
            | _ -> None
            | exception (Codec.Decode_error _ | Invalid_argument _) -> None))

(* Candidate recovery heads: every sequence number holding a full or delta
   file, newest first. *)
let heads storage =
  let seqs =
    List.map fst (list_snapshots storage)
    @ List.map fst (list_deltas storage)
  in
  List.sort_uniq (fun a b -> compare b a) seqs

let load_chain ?config storage =
  List.find_map
    (fun seq ->
      match state_at storage ~fuel:max_chain_depth seq with
      | None -> None
      | Some (snap, applied) -> (
          match Engine.of_snapshot ?config snap with
          | engine -> Some (seq, engine, applied)
          | exception Invalid_argument _ -> None))
    (heads storage)

let load_chain_bytes storage =
  List.find_map
    (fun seq ->
      (* fast path: a checksum-valid full file ships as-is *)
      match storage.Storage.read_file (filename ~seq) with
      | Some data when (match validate data with
                        | (_ : int * string) -> true
                        | exception Codec.Decode_error _ -> false) ->
        Some (seq, data)
      | _ -> (
          match state_at storage ~fuel:max_chain_depth seq with
          | None -> None
          | Some (snap, _) -> Some (seq, encode ~seq snap)))
    (heads storage)

(* ------------------------------------------------------------------ *)
(* Compaction manifest.                                                *)
(*                                                                     *)
(* A small text file naming the current recovery head and the files    *)
(* compaction decided to keep.  It is a {e hint and audit record}, not *)
(* an index: recovery always rescans the directory, so a torn or stale *)
(* manifest can never lose state — the scan-based resolver is the      *)
(* source of truth and the manifest lets operators (and the nemesis    *)
(* checker) verify compaction's crash ordering after the fact.         *)
(* ------------------------------------------------------------------ *)

let manifest_name = "MANIFEST"

let write_manifest storage ~head kept =
  let b = Buffer.create 256 in
  Buffer.add_string b "kronos-manifest 1\n";
  Buffer.add_string b (Printf.sprintf "head %d\n" head);
  List.iter (fun n -> Buffer.add_string b (n ^ "\n")) kept;
  let tmp = manifest_name ^ ".tmp" in
  storage.Storage.remove_file tmp;
  let w = storage.Storage.open_append tmp in
  w.Storage.append (Buffer.contents b);
  w.Storage.sync ();
  w.Storage.close ();
  storage.Storage.rename_file tmp manifest_name

let read_manifest storage =
  match storage.Storage.read_file manifest_name with
  | None -> None
  | Some data -> (
      match String.split_on_char '\n' data with
      | header :: rest when header = "kronos-manifest 1" -> (
          match rest with
          | head_line :: files
            when String.length head_line > 5
                 && String.sub head_line 0 5 = "head " -> (
              match
                int_of_string_opt
                  (String.sub head_line 5 (String.length head_line - 5))
              with
              | Some head ->
                Some (head, List.filter (fun l -> l <> "") files)
              | None -> None)
          | _ -> None)
      | _ -> None)

let m_retired =
  Kronos_metrics.counter
    (Kronos_metrics.scope "durability")
    "snapshots_retired_total"

(* Retire snapshot files made redundant by newer durable state: delta
   files at or below the newest valid full snapshot (the full already
   covers them), full files beyond the newest [keep], and stray
   temporaries.  Crash ordering is the caller's: the covering snapshot is
   written and synced {e before} compact unlinks anything, and unlinking
   is idempotent — a crash mid-compact leaves extra files that the next
   compact retires and recovery happily ignores.  Returns the number of
   files removed. *)
let compact storage ~keep =
  let keep = max keep 1 in
  let removed = ref 0 in
  let remove name =
    storage.Storage.remove_file name;
    incr removed;
    Kronos_metrics.Counter.incr m_retired
  in
  let fulls =
    List.filter
      (fun (_, name) ->
        match storage.Storage.read_file name with
        | None -> false
        | Some data -> (
            match validate data with
            | (_ : int * string) -> true
            | exception Codec.Decode_error _ -> false))
      (list_snapshots storage)
  in
  let newest_full = match fulls with (s, _) :: _ -> s | [] -> min_int in
  List.iter
    (fun (seq, name) -> if seq <= newest_full then remove name)
    (list_deltas storage);
  List.iteri
    (fun i (_, name) -> if i >= keep then remove name)
    (list_snapshots storage);
  (* corrupt fulls older than the newest valid one are unrecoverable
     anyway once a valid newer head exists; leave newer ones (they may be
     mid-write by a concurrent path) *)
  storage.Storage.list_files ()
  |> List.iter (fun n ->
         if Filename.check_suffix n ".tmp"
            && String.length n >= 6
            && (String.sub n 0 5 = "snap-" || String.sub n 0 6 = "delta-")
         then remove n);
  let kept =
    storage.Storage.list_files ()
    |> List.filter (fun n ->
           parse_filename n <> None || parse_delta_filename n <> None)
  in
  (* The manifest records the head recovery would actually resolve, not
     just the newest file name — a torn newest file must not be audited as
     the head it can never be.  Checksum-valid fulls short-circuit the
     chain walk. *)
  let resolvable seq =
    (match storage.Storage.read_file (filename ~seq) with
     | Some data -> (
         match validate data with
         | (_ : int * string) -> true
         | exception Codec.Decode_error _ -> false)
     | None -> false)
    || state_at storage ~fuel:max_chain_depth seq <> None
  in
  (match List.find_opt resolvable (heads storage) with
   | Some head -> write_manifest storage ~head kept
   | None -> storage.Storage.remove_file manifest_name);
  !removed
