open Kronos
module Codec = Kronos_wire.Codec

(* Version 2 appends the graph's topological-rank index (per-slot ranks +
   the rank allocator) to the version-1 body.  Version-1 snapshots are still
   decoded: they surface as [snap_rank = None] and [Graph.of_snapshot]
   rebuilds an equivalent rank assignment deterministically with Kahn's
   algorithm, so pre-rank snapshot files stay loadable after an upgrade.

   Version 3 appends the commitment-chain links (DESIGN.md §13): per live
   slot, one [(predecessor id, predecessor head, predecessor position)]
   triple per link; partners and heads are refolded on restore.  Version-1
   and version-2 snapshots surface as [snap_links = None] and
   [Graph.of_snapshot] rebuilds the chains canonically from adjacency, so
   every upgrade of the same logical graph re-anchors to identical
   commitments.

   Version 4 appends the graph mutation version (the view epoch,
   DESIGN.md §14) so epochs continue monotonically across restarts.
   Pre-v4 snapshots surface as [snap_version = 0] and [Graph.of_snapshot]
   seeds the epoch from the rank allocator — deterministic across
   replicas, though not continuous with the captured engine's epoch.

   Version 5 appends the chain-decomposition assignment (DESIGN.md §15):
   per slot its chain id (biased by one to stay unsigned) and position,
   per chain its length, and the free-chain stack.  Labels are not
   persisted — exact labels are a pure function of adjacency + chains and
   are recomputed on restore.  Pre-v5 snapshots surface as
   [snap_chains = None] and [Graph.of_snapshot] rebuilds a canonical
   assignment deterministically, mirroring the v1 rank rebuild. *)
let version = 5

let oldest_supported_version = 1

let magic = "KSNP"

let header_bytes = 10 (* magic + u16 version + u32 crc *)

let put_int_array e a =
  Codec.put_u32 e (Array.length a);
  Array.iter (fun x -> Codec.put_u32 e x) a

let get_int_array d = Array.of_list (Codec.get_list d Codec.get_u32)

let encode ~seq (s : Engine.snapshot) =
  let e = Codec.encoder () in
  Codec.put_i64 e (Int64.of_int seq);
  let g = s.Engine.snap_graph in
  Codec.put_u32 e g.Graph.snap_next_slot;
  (* refcounts include -1 for free slots: bias by one to stay unsigned *)
  Codec.put_u32 e (Array.length g.Graph.snap_refcount);
  Array.iter (fun rc -> Codec.put_u32 e (rc + 1)) g.Graph.snap_refcount;
  put_int_array e g.Graph.snap_gen;
  Codec.put_u32 e (Array.length g.Graph.snap_succ);
  Array.iter (put_int_array e) g.Graph.snap_succ;
  put_int_array e g.Graph.snap_free;
  Codec.put_i64 e (Int64.of_int g.Graph.snap_traversals);
  Codec.put_i64 e (Int64.of_int g.Graph.snap_visited_total);
  (* v2 suffix: rank index.  Ranks are sparse integers that can exceed the
     u32 range on long-lived engines, so they travel as i64. *)
  (match g.Graph.snap_rank with
   | Some ranks ->
     Codec.put_bool e true;
     Codec.put_u32 e (Array.length ranks);
     Array.iter (fun r -> Codec.put_i64 e (Int64.of_int r)) ranks;
     Codec.put_i64 e (Int64.of_int g.Graph.snap_next_rank)
   | None -> Codec.put_bool e false);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_creates);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_queries);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_assigns);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_aborted_batches);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_reversals);
  Codec.put_i64 e (Int64.of_int s.Engine.snap_collected);
  (* v3 suffix: commitment-chain links.  Positions travel as i64 like the
     ranks (chain lengths are unbounded ints in principle). *)
  (match g.Graph.snap_links with
   | Some links ->
     Codec.put_bool e true;
     Codec.put_u32 e (Array.length links);
     Array.iter
       (fun ls ->
         Codec.put_u32 e (Array.length ls);
         Array.iter
           (fun (pred, head, pos) ->
             Codec.put_i64 e pred;
             Codec.put_string e head;
             Codec.put_i64 e (Int64.of_int pos))
           ls)
       links
   | None -> Codec.put_bool e false);
  (* v4 suffix: graph mutation version (view epoch). *)
  Codec.put_i64 e (Int64.of_int g.Graph.snap_version);
  (* v5 suffix: chain-decomposition assignment.  Chain ids are small (the
     cap bounds them) but positions count members ever appended, so they
     travel as i64 like the ranks; per-slot ids are biased by one so the
     -1 "unassigned" marker stays unsigned. *)
  (match g.Graph.snap_chains with
   | Some cs ->
     Codec.put_bool e true;
     Codec.put_u32 e (Array.length cs.Graph.cs_chain_of);
     Array.iter (fun c -> Codec.put_u32 e (c + 1)) cs.Graph.cs_chain_of;
     Array.iter (fun p -> Codec.put_i64 e (Int64.of_int p))
       cs.Graph.cs_chain_pos;
     Codec.put_u32 e (Array.length cs.Graph.cs_chain_len);
     Array.iter (fun l -> Codec.put_i64 e (Int64.of_int l))
       cs.Graph.cs_chain_len;
     put_int_array e cs.Graph.cs_free_chains
   | None -> Codec.put_bool e false);
  let body = Codec.to_string e in
  let b = Buffer.create (String.length body + header_bytes) in
  Buffer.add_string b magic;
  Buffer.add_uint16_be b version;
  Buffer.add_int32_be b (Crc32.string body);
  Buffer.add_string b body;
  Buffer.contents b

(* Header check shared by [decode] and [load_latest_bytes]: returns the
   format version and the body on success. *)
let validate data =
  if String.length data < header_bytes then
    raise (Codec.Decode_error "snapshot: truncated header");
  if String.sub data 0 4 <> magic then
    raise (Codec.Decode_error "snapshot: bad magic");
  let v = String.get_uint16_be data 4 in
  if v < oldest_supported_version || v > version then
    raise (Codec.Decode_error (Printf.sprintf "snapshot: unsupported version %d" v));
  let crc = String.get_int32_be data 6 in
  let body = String.sub data header_bytes (String.length data - header_bytes) in
  if Crc32.string body <> crc then
    raise (Codec.Decode_error "snapshot: checksum mismatch");
  (v, body)

let get_int64 d = Int64.to_int (Codec.get_i64 d)

let decode data =
  let v, body = validate data in
  let d = Codec.decoder body in
  let seq = get_int64 d in
  let snap_next_slot = Codec.get_u32 d in
  let snap_refcount =
    Array.map (fun x -> x - 1) (get_int_array d)
  in
  let snap_gen = get_int_array d in
  let n = Codec.get_u32 d in
  if n > String.length body then
    raise (Codec.Decode_error "snapshot: absurd adjacency count");
  let snap_succ = Array.init n (fun _ -> get_int_array d) in
  let snap_free = get_int_array d in
  let snap_traversals = get_int64 d in
  let snap_visited_total = get_int64 d in
  let snap_rank, snap_next_rank =
    if v < 2 then (None, 0)
    else if not (Codec.get_bool d) then (None, 0)
    else begin
      let len = Codec.get_u32 d in
      if len > String.length body then
        raise (Codec.Decode_error "snapshot: absurd rank count");
      let ranks = Array.init len (fun _ -> get_int64 d) in
      let next_rank = get_int64 d in
      (Some ranks, next_rank)
    end
  in
  let snap_creates = get_int64 d in
  let snap_queries = get_int64 d in
  let snap_assigns = get_int64 d in
  let snap_aborted_batches = get_int64 d in
  let snap_reversals = get_int64 d in
  let snap_collected = get_int64 d in
  let snap_links =
    if v < 3 then None
    else if not (Codec.get_bool d) then None
    else begin
      let len = Codec.get_u32 d in
      if len > String.length body then
        raise (Codec.Decode_error "snapshot: absurd link table count");
      Some
        (Array.init len (fun _ ->
             let m = Codec.get_u32 d in
             if m > String.length body then
               raise (Codec.Decode_error "snapshot: absurd link count");
             Array.init m (fun _ ->
                 let pred = Codec.get_i64 d in
                 let head = Codec.get_string d in
                 let pos = get_int64 d in
                 (pred, head, pos))))
    end
  in
  let snap_version = if v < 4 then 0 else get_int64 d in
  let snap_chains =
    if v < 5 then None
    else if not (Codec.get_bool d) then None
    else begin
      let nslots = Codec.get_u32 d in
      if nslots > String.length body then
        raise (Codec.Decode_error "snapshot: absurd chain table count");
      let cs_chain_of = Array.init nslots (fun _ -> Codec.get_u32 d - 1) in
      let cs_chain_pos = Array.init nslots (fun _ -> get_int64 d) in
      let nchains = Codec.get_u32 d in
      if nchains > String.length body then
        raise (Codec.Decode_error "snapshot: absurd chain count");
      let cs_chain_len = Array.init nchains (fun _ -> get_int64 d) in
      let cs_free_chains = get_int_array d in
      Some { Graph.cs_chain_of; cs_chain_pos; cs_chain_len; cs_free_chains }
    end
  in
  Codec.expect_end d;
  ( seq,
    {
      Engine.snap_graph =
        {
          Graph.snap_next_slot;
          snap_refcount;
          snap_gen;
          snap_succ;
          snap_free;
          snap_rank;
          snap_next_rank;
          snap_traversals;
          snap_visited_total;
          snap_links;
          snap_version;
          snap_chains;
        };
      snap_creates;
      snap_queries;
      snap_assigns;
      snap_aborted_batches;
      snap_reversals;
      snap_collected;
    } )

let filename ~seq = Printf.sprintf "snap-%010d.snap" seq

let parse_filename name =
  if String.length name = 20
     && String.sub name 0 5 = "snap-"
     && Filename.check_suffix name ".snap"
  then int_of_string_opt (String.sub name 5 10)
  else None

let m_writes =
  Kronos_metrics.counter (Kronos_metrics.scope "snapshot") "writes_total"

let m_bytes =
  Kronos_metrics.counter (Kronos_metrics.scope "snapshot") "bytes_written_total"

let write_bytes storage ~seq data =
  Kronos_metrics.Counter.incr m_writes;
  Kronos_metrics.Counter.add m_bytes (String.length data);
  let final = filename ~seq in
  let tmp = Printf.sprintf "snap-%010d.tmp" seq in
  storage.Storage.remove_file tmp;
  let w = storage.Storage.open_append tmp in
  w.Storage.append data;
  w.Storage.sync ();
  w.Storage.close ();
  storage.Storage.rename_file tmp final

let write storage ~seq engine =
  write_bytes storage ~seq (encode ~seq (Engine.to_snapshot engine))

let list_snapshots storage =
  storage.Storage.list_files ()
  |> List.filter_map (fun n -> Option.map (fun s -> (s, n)) (parse_filename n))
  |> List.sort (fun a b -> compare b a) (* newest first *)

let load_latest_bytes storage =
  List.find_map
    (fun (seq, name) ->
      match storage.Storage.read_file name with
      | None -> None
      | Some data -> (
          match validate data with
          | (_ : int * string) -> Some (seq, data)
          | exception Codec.Decode_error _ -> None))
    (list_snapshots storage)

let load_latest ?config storage =
  List.find_map
    (fun (_, name) ->
      match storage.Storage.read_file name with
      | None -> None
      | Some data -> (
          match decode data with
          | seq, snap -> Some (seq, Engine.of_snapshot ?config snap)
          | exception (Codec.Decode_error _ | Invalid_argument _) -> None))
    (list_snapshots storage)

let truncate_old storage ~keep =
  let keep = max keep 1 in
  list_snapshots storage
  |> List.iteri (fun i (_, name) ->
         if i >= keep then storage.Storage.remove_file name);
  (* stray temporaries from interrupted writes *)
  storage.Storage.list_files ()
  |> List.iter (fun n ->
         if String.length n >= 5
            && String.sub n 0 5 = "snap-"
            && Filename.check_suffix n ".tmp"
         then storage.Storage.remove_file n)
