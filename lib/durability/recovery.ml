open Kronos

type outcome = {
  engine : Engine.t;
  wal : Wal.t;
  snapshot_seq : int;
  next_seq : int;
  replayed : int;
}

let run ?engine_config ?wal_config ~replay storage =
  let wal, records = Wal.open_ ?config:wal_config storage in
  let snapshot_seq, engine =
    match Snapshot.load_latest ?config:engine_config storage with
    | Some (seq, engine) -> (seq, engine)
    | None -> (0, Engine.create ?config:engine_config ())
  in
  let next = ref (snapshot_seq + 1) in
  let replayed = ref 0 in
  (try
     List.iter
       (fun (r : Wal.record) ->
         if r.seq >= !next then begin
           if r.seq > !next then raise Exit; (* gap: stop replay *)
           replay engine r;
           incr next;
           incr replayed
         end)
       records
   with Exit -> ());
  { engine; wal; snapshot_seq; next_seq = !next; replayed = !replayed }
