open Kronos

module M = struct
  let scope = Kronos_metrics.scope "recovery"
  let replay_ms = Kronos_metrics.gauge scope "replay_ms"
  let recovery_ms = Kronos_metrics.gauge scope "recovery_ms"
  let wal_bytes = Kronos_metrics.counter scope "wal_bytes_replayed_total"
  let deltas = Kronos_metrics.counter scope "deltas_applied_total"
end

type outcome = {
  engine : Engine.t;
  wal : Wal.t;
  snapshot_seq : int;
  next_seq : int;
  replayed : int;
  deltas_applied : int;
  replay_ms : float;
  recovery_ms : float;
  wal_bytes_replayed : int;
}

(* One framed record's on-disk footprint, mirroring [Wal.encode_record]. *)
let record_bytes (r : Wal.record) = 16 + String.length r.payload

let run ?engine_config ?wal_config ~replay storage =
  let t0 = Unix.gettimeofday () in
  let wal, records = Wal.open_ ?config:wal_config storage in
  let snapshot_seq, engine, deltas_applied =
    match Snapshot.load_chain ?config:engine_config storage with
    | Some (seq, engine, deltas) -> (seq, engine, deltas)
    | None -> (0, Engine.create ?config:engine_config (), 0)
  in
  let t1 = Unix.gettimeofday () in
  let next = ref (snapshot_seq + 1) in
  let replayed = ref 0 in
  let bytes = ref 0 in
  (try
     List.iter
       (fun (r : Wal.record) ->
         if r.seq >= !next then begin
           if r.seq > !next then raise Exit; (* gap: stop replay *)
           replay engine r;
           bytes := !bytes + record_bytes r;
           incr next;
           incr replayed
         end)
       records
   with Exit -> ());
  let t2 = Unix.gettimeofday () in
  let replay_ms = (t2 -. t1) *. 1000. in
  let recovery_ms = (t2 -. t0) *. 1000. in
  Kronos_metrics.Gauge.set M.replay_ms (int_of_float replay_ms);
  Kronos_metrics.Gauge.set M.recovery_ms (int_of_float recovery_ms);
  Kronos_metrics.Counter.add M.wal_bytes !bytes;
  Kronos_metrics.Counter.add M.deltas deltas_applied;
  {
    engine;
    wal;
    snapshot_seq;
    next_seq = !next;
    replayed = !replayed;
    deltas_applied;
    replay_ms;
    recovery_ms;
    wal_bytes_replayed = !bytes;
  }
