module M = struct
  let scope = Kronos_metrics.scope "wal"
  let appends = Kronos_metrics.counter scope "appends_total"
  let fsyncs = Kronos_metrics.counter scope "fsyncs_total"
  let rotations = Kronos_metrics.counter scope "segment_rotations_total"
  let bytes = Kronos_metrics.counter scope "bytes_written_total"

  let retired =
    Kronos_metrics.counter
      (Kronos_metrics.scope "durability")
      "segments_retired_total"
end

type sync_policy = Always | Every_n of int | Never

type config = { segment_bytes : int; sync : sync_policy }

let default_config = { segment_bytes = 1 lsl 20; sync = Always }

type record = { seq : int; payload : string }

(* Upper bound on one record's seq+payload portion; anything larger in a
   length field is treated as corruption rather than allocated. *)
let max_frame = 1 lsl 26

let header_bytes = 16 (* u32 length + u32 crc + i64 seq *)

type t = {
  storage : Storage.t;
  config : config;
  (* every segment, (first_seq, file name), ascending; the last entry is the
     active segment when [active] is true *)
  mutable segments : (int * string) list;
  mutable active : bool;
  mutable writer : Storage.writer option;
  mutable active_size : int;
  pending : Buffer.t;
  mutable pending_first_seq : int; (* -1 when the buffer is empty *)
  mutable pending_records : int;
  mutable last_seq : int;
  mutable unsynced_records : int;
  mutable appended : int;
  mutable syncs : int;
  (* cumulative framed bytes accepted by [append] (header + payload),
     including bytes still in the group-commit buffer — the snapshot
     policy's WAL-bytes-since-snapshot trigger reads this *)
  mutable logged_bytes : int;
  mutable retired_segments : int;
}

let segment_name seq = Printf.sprintf "wal-%010d.log" seq

let parse_segment_name name =
  if String.length name = 18
     && String.sub name 0 4 = "wal-"
     && Filename.check_suffix name ".log"
  then int_of_string_opt (String.sub name 4 10)
  else None

(* Scan a segment's bytes.  Returns the records of the valid prefix and the
   offset where the first torn/corrupt record starts ([None] = clean). *)
let scan_segment data =
  let len = String.length data in
  let records = ref [] in
  let rec loop off =
    if off = len then None
    else if len - off < header_bytes then Some off
    else begin
      let flen = Int32.to_int (String.get_int32_be data off) in
      if flen < 8 || flen > max_frame || len - off - 8 < flen then Some off
      else begin
        let crc = String.get_int32_be data (off + 4) in
        if Crc32.string ~off:(off + 8) ~len:flen data <> crc then Some off
        else begin
          let seq = Int64.to_int (String.get_int64_be data (off + 8)) in
          let payload = String.sub data (off + 16) (flen - 8) in
          records := { seq; payload } :: !records;
          loop (off + 8 + flen)
        end
      end
    end
  in
  let torn = loop 0 in
  (List.rev !records, torn)

let encode_record buf ~seq ~payload =
  let body = Buffer.create (8 + String.length payload) in
  Buffer.add_int64_be body (Int64.of_int seq);
  Buffer.add_string body payload;
  let body = Buffer.contents body in
  Buffer.add_int32_be buf (Int32.of_int (String.length body));
  Buffer.add_int32_be buf (Crc32.string body);
  Buffer.add_string buf body

let open_ ?(config = default_config) storage =
  let names =
    storage.Storage.list_files ()
    |> List.filter_map (fun n ->
           Option.map (fun seq -> (seq, n)) (parse_segment_name n))
    |> List.sort compare
  in
  (* Scan in order; at the first torn record, truncate that segment and
     discard any later segments (their records would be unreachable past the
     gap anyway). *)
  let records = ref [] in
  let segments = ref [] in
  let active_size = ref 0 in
  let torn_seen = ref false in
  List.iter
    (fun (first_seq, name) ->
      if !torn_seen then storage.Storage.remove_file name
      else begin
        let data = Option.value (storage.Storage.read_file name) ~default:"" in
        let recs, torn = scan_segment data in
        records := List.rev_append recs !records;
        (match torn with
         | Some off ->
           storage.Storage.truncate_file name off;
           active_size := off;
           torn_seen := true
         | None -> active_size := String.length data);
        segments := (first_seq, name) :: !segments
      end)
    names;
  let records = List.rev !records in
  let segments = List.rev !segments in
  let last_seq =
    List.fold_left (fun acc r -> max acc r.seq) 0 records
  in
  let t =
    {
      storage;
      config;
      segments;
      active = segments <> [] && !active_size < config.segment_bytes;
      writer = None;
      active_size = !active_size;
      pending = Buffer.create 4096;
      pending_first_seq = -1;
      pending_records = 0;
      last_seq;
      unsynced_records = 0;
      appended = 0;
      syncs = 0;
      logged_bytes = 0;
      retired_segments = 0;
    }
  in
  (t, records)

let do_sync t =
  match t.writer with
  | Some w ->
    w.Storage.sync ();
    t.syncs <- t.syncs + 1;
    Kronos_metrics.Counter.incr M.fsyncs;
    t.unsynced_records <- 0
  | None -> ()

let rotate t =
  (match t.config.sync with
   | Always | Every_n _ -> if t.unsynced_records > 0 then do_sync t
   | Never -> ());
  (match t.writer with Some w -> w.Storage.close () | None -> ());
  Kronos_metrics.Counter.incr M.rotations;
  t.writer <- None;
  t.active <- false;
  t.active_size <- 0

let ensure_writer t =
  match t.writer with
  | Some w -> w
  | None ->
    let name =
      if t.active then snd (List.nth t.segments (List.length t.segments - 1))
      else begin
        let name = segment_name t.pending_first_seq in
        t.segments <- t.segments @ [ (t.pending_first_seq, name) ];
        t.active <- true;
        name
      end
    in
    let w = t.storage.Storage.open_append name in
    t.writer <- Some w;
    t.active_size <- w.Storage.size ();
    w

let flush t =
  if t.pending_records > 0 then begin
    let w = ensure_writer t in
    let batch = Buffer.contents t.pending in
    w.Storage.append batch;
    t.active_size <- t.active_size + String.length batch;
    Kronos_metrics.Counter.add M.bytes (String.length batch);
    let flushed = t.pending_records in
    Buffer.clear t.pending;
    t.pending_first_seq <- -1;
    t.pending_records <- 0;
    (match t.config.sync with
     | Always -> do_sync t
     | Every_n n ->
       t.unsynced_records <- t.unsynced_records + flushed;
       if t.unsynced_records >= n then do_sync t
     | Never -> ());
    if t.active_size >= t.config.segment_bytes then rotate t
  end

let append t ~seq ~payload =
  if seq <= t.last_seq then invalid_arg "Wal.append: non-increasing seq";
  if t.pending_first_seq < 0 then t.pending_first_seq <- seq;
  encode_record t.pending ~seq ~payload;
  t.pending_records <- t.pending_records + 1;
  t.appended <- t.appended + 1;
  t.logged_bytes <- t.logged_bytes + header_bytes + String.length payload;
  Kronos_metrics.Counter.incr M.appends;
  t.last_seq <- seq;
  (* bound the group-commit buffer: a huge burst still hits storage in
     reasonably sized writes *)
  if Buffer.length t.pending >= 256 * 1024 then flush t

let sync t =
  flush t;
  if t.writer = None && t.active then ignore (ensure_writer t);
  do_sync t

let read_from t ~since =
  flush t;
  if t.last_seq <= since then Some []
  else begin
    let records =
      List.concat_map
        (fun (_, name) ->
          match t.storage.Storage.read_file name with
          | None -> []
          | Some data -> fst (scan_segment data))
        t.segments
      |> List.filter (fun r -> r.seq > since)
    in
    (* the range is usable only if it is contiguous from since+1 upward *)
    let rec contiguous expect = function
      | [] -> expect > t.last_seq
      | r :: rest -> r.seq = expect && contiguous (expect + 1) rest
    in
    if contiguous (since + 1) records then Some records else None
  end

let truncate_before t ~seq =
  let rec drop = function
    | (_, name) :: ((next_first, _) :: _ as rest) when next_first <= seq + 1 ->
      t.storage.Storage.remove_file name;
      t.retired_segments <- t.retired_segments + 1;
      Kronos_metrics.Counter.incr M.retired;
      drop rest
    | segments -> segments
  in
  t.segments <- drop t.segments

let last_seq t = t.last_seq
let segment_files t = List.map snd t.segments
let appended_records t = t.appended
let sync_count t = t.syncs
let logged_bytes t = t.logged_bytes
let retired_segments t = t.retired_segments
