(** Abstract durable storage: a flat directory of named byte files.

    The WAL and snapshot layers are written against this record-of-closures
    interface so the same code runs over real files (for [bin/] processes)
    and over an in-memory directory (for deterministic simnet tests, which
    can also simulate the OS dropping un-fsynced bytes at a crash). *)

(** An open append handle on one file. *)
type writer = {
  append : string -> unit;  (** append bytes at the end (buffered by the OS) *)
  sync : unit -> unit;      (** force appended bytes to durable media (fsync) *)
  size : unit -> int;       (** current file size in bytes *)
  close : unit -> unit;
}

type t = {
  list_files : unit -> string list;  (** sorted file names *)
  read_file : string -> string option;  (** whole contents; [None] if absent *)
  open_append : string -> writer;  (** create the file if needed *)
  remove_file : string -> unit;  (** no-op if absent *)
  rename_file : string -> string -> unit;  (** atomic within the directory *)
  truncate_file : string -> int -> unit;  (** shrink to the given length *)
}

(** {1 In-memory backend} *)

module Memory : sig
  type dir

  val create : unit -> dir
  val storage : dir -> t

  val crash : dir -> unit
  (** Simulate a machine crash: every file loses the bytes appended since
      its last [sync].  (Renames and truncations are treated as durable,
      as the snapshot layer orders them after an explicit sync.) *)

  val files : dir -> (string * string) list
  (** Current contents, sorted by name, for test assertions. *)
end

(** {1 Real-file backend} *)

val files : dir:string -> t
(** Storage rooted at a real directory, created (with parents) if missing.
    File names must be plain names, not paths. *)
