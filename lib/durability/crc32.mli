(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum guarding WAL
    record frames and snapshot bodies against torn writes and bit rot. *)

val string : ?off:int -> ?len:int -> string -> int32
(** Checksum of a substring (defaults: the whole string).
    @raise Invalid_argument if the range is out of bounds. *)

val update : int32 -> ?off:int -> ?len:int -> string -> int32
(** Incremental form: extend a running checksum with more bytes. *)
