type writer = {
  append : string -> unit;
  sync : unit -> unit;
  size : unit -> int;
  close : unit -> unit;
}

type t = {
  list_files : unit -> string list;
  read_file : string -> string option;
  open_append : string -> writer;
  remove_file : string -> unit;
  rename_file : string -> string -> unit;
  truncate_file : string -> int -> unit;
}

module Memory = struct
  type file = { mutable data : Buffer.t; mutable synced : int }

  type dir = (string, file) Hashtbl.t

  let create () : dir = Hashtbl.create 8

  let find_or_create dir name =
    match Hashtbl.find_opt dir name with
    | Some f -> f
    | None ->
      let f = { data = Buffer.create 256; synced = 0 } in
      Hashtbl.add dir name f;
      f

  let storage dir =
    {
      list_files =
        (fun () ->
          Hashtbl.fold (fun name _ acc -> name :: acc) dir []
          |> List.sort String.compare);
      read_file =
        (fun name ->
          Option.map (fun f -> Buffer.contents f.data) (Hashtbl.find_opt dir name));
      open_append =
        (fun name ->
          let f = find_or_create dir name in
          {
            append = (fun s -> Buffer.add_string f.data s);
            sync = (fun () -> f.synced <- Buffer.length f.data);
            size = (fun () -> Buffer.length f.data);
            close = (fun () -> ());
          });
      remove_file = (fun name -> Hashtbl.remove dir name);
      rename_file =
        (fun src dst ->
          match Hashtbl.find_opt dir src with
          | None -> invalid_arg "Storage.Memory.rename_file: no such file"
          | Some f ->
            Hashtbl.remove dir src;
            Hashtbl.replace dir dst f;
            (* a rename is a metadata operation; treat it as durable *)
            f.synced <- Buffer.length f.data);
      truncate_file =
        (fun name len ->
          match Hashtbl.find_opt dir name with
          | None -> invalid_arg "Storage.Memory.truncate_file: no such file"
          | Some f ->
            let keep = min len (Buffer.length f.data) in
            let contents = Buffer.sub f.data 0 keep in
            let data = Buffer.create (max 256 keep) in
            Buffer.add_string data contents;
            f.data <- data;
            f.synced <- min f.synced keep);
    }

  let crash dir =
    Hashtbl.iter
      (fun _ f ->
        if f.synced < Buffer.length f.data then begin
          let contents = Buffer.sub f.data 0 f.synced in
          let data = Buffer.create (max 256 f.synced) in
          Buffer.add_string data contents;
          f.data <- data
        end)
      dir

  let files dir =
    Hashtbl.fold (fun name f acc -> (name, Buffer.contents f.data) :: acc) dir []
    |> List.sort compare
end

let rec mkdir_p path =
  if path <> "/" && path <> "." && not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let check_name name =
  if name = "" || String.contains name '/' then
    invalid_arg "Storage.files: file names must be plain names"

let files ~dir =
  mkdir_p dir;
  let path name = check_name name; Filename.concat dir name in
  {
    list_files =
      (fun () ->
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun n -> not (Sys.is_directory (Filename.concat dir n)))
        |> List.sort String.compare);
    read_file =
      (fun name ->
        let p = path name in
        if not (Sys.file_exists p) then None
        else begin
          let ic = open_in_bin p in
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> Some (really_input_string ic (in_channel_length ic)))
        end);
    open_append =
      (fun name ->
        let fd =
          Unix.openfile (path name) [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
        in
        let write s =
          let b = Bytes.unsafe_of_string s in
          let n = Bytes.length b in
          let written = ref 0 in
          while !written < n do
            written := !written + Unix.write fd b !written (n - !written)
          done
        in
        {
          append = write;
          sync = (fun () -> Unix.fsync fd);
          size = (fun () -> (Unix.fstat fd).Unix.st_size);
          close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ());
        });
    remove_file =
      (fun name -> try Sys.remove (path name) with Sys_error _ -> ());
    rename_file = (fun src dst -> Sys.rename (path src) (path dst));
    truncate_file = (fun name len -> Unix.truncate (path name) len);
  }
