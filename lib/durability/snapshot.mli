(** Versioned binary snapshots of full engine state.

    A snapshot file ([snap-<seq>.snap]) holds the engine as of sequence
    number [seq]: magic, a format version, a CRC-32 of the body, then the
    {!Kronos.Engine.snapshot} encoded with the wire codec.  Files are
    written to a temporary name, synced, then renamed, so a crash mid-write
    never leaves a readable-but-bogus newest snapshot; readers skip corrupt
    files and fall back to the next older one. *)

open Kronos

val version : int

(** {1 Pure encoding} *)

val encode : seq:int -> Engine.snapshot -> string

val decode : string -> int * Engine.snapshot
(** @raise Kronos_wire.Codec.Decode_error on bad magic, unsupported
    version, checksum mismatch or malformed body. *)

(** {1 Snapshot files} *)

val filename : seq:int -> string

val write : Storage.t -> seq:int -> Engine.t -> unit
(** Capture [engine] and persist it atomically as the snapshot for [seq]. *)

val write_bytes : Storage.t -> seq:int -> string -> unit
(** Persist already-encoded snapshot bytes (state transfer receive path). *)

val load_latest : ?config:Engine.config -> Storage.t -> (int * Engine.t) option
(** Decode the newest valid snapshot, skipping corrupt ones. *)

val load_latest_bytes : Storage.t -> (int * string) option
(** The newest checksum-valid snapshot without decoding it (state transfer
    send path). *)

val truncate_old : Storage.t -> keep:int -> unit
(** Delete all but the newest [keep] snapshot files (and stray temporary
    files from interrupted writes). *)
