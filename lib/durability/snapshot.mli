(** Versioned binary snapshots of full engine state.

    A snapshot file ([snap-<seq>.snap]) holds the engine as of sequence
    number [seq]: magic, a format version, a CRC-32 of the body, then the
    {!Kronos.Engine.snapshot} encoded with the wire codec.  Files are
    written to a temporary name, synced, then renamed, so a crash mid-write
    never leaves a readable-but-bogus newest snapshot; readers skip corrupt
    files and fall back to the next older one. *)

open Kronos

val version : int

(** {1 Pure encoding} *)

val encode : seq:int -> Engine.snapshot -> string

val encode_at : fmt:int -> seq:int -> Engine.snapshot -> string
(** Encode in an older format version ([1 <= fmt <= version]) — the
    sections that format lacks are omitted, so the file is bit-compatible
    with what a [fmt]-era engine wrote.  Used by the cross-version
    recovery matrix and the nemesis harness's mixed-version chains.
    @raise Invalid_argument on an unsupported [fmt]. *)

val decode : string -> int * Engine.snapshot
(** @raise Kronos_wire.Codec.Decode_error on bad magic, unsupported
    version, checksum mismatch or malformed body. *)

(** {1 Snapshot files} *)

val filename : seq:int -> string

val write : Storage.t -> seq:int -> Engine.t -> unit
(** Capture [engine] and persist it atomically as the snapshot for [seq]. *)

val write_bytes : Storage.t -> seq:int -> string -> unit
(** Persist already-encoded snapshot bytes (state transfer receive path). *)

val load_latest : ?config:Engine.config -> Storage.t -> (int * Engine.t) option
(** Decode the newest valid snapshot, skipping corrupt ones. *)

val load_latest_bytes : Storage.t -> (int * string) option
(** The newest checksum-valid snapshot without decoding it (state transfer
    send path). *)

val truncate_old : Storage.t -> keep:int -> unit
(** Delete all but the newest [keep] snapshot files (and stray temporary
    files from interrupted writes). *)

(** {1 Incremental snapshots (DESIGN.md §16)}

    A delta file ([delta-<seq>.delta]) holds an {!Kronos.Engine.delta}
    against the snapshot state at [base_seq] — itself a full file or
    another delta, forming a chain terminating in a full snapshot.
    Recovery resolves the newest head whose entire chain is intact and
    falls back to older heads otherwise, exactly as it skips corrupt full
    snapshots. *)

val encode_delta : base_seq:int -> seq:int -> Engine.delta -> string

val decode_delta : string -> int * int * Engine.delta
(** [(base_seq, seq, delta)].
    @raise Kronos_wire.Codec.Decode_error on a malformed file. *)

val delta_filename : seq:int -> string

val write_delta : Storage.t -> base_seq:int -> seq:int -> Engine.t -> unit
(** Capture the engine's dirty-slot delta and persist it atomically
    (tmp → sync → rename) as the delta for [seq] against [base_seq].
    Does {e not} clear the engine's dirty set — call
    {!Kronos.Engine.snapshot_written} after this returns. *)

val load_chain :
  ?config:Engine.config -> Storage.t -> (int * Engine.t * int) option
(** Resolve and restore the newest recoverable snapshot state:
    [(seq, engine, deltas_applied)].  Tries every candidate head newest
    first; a head resolves when its full file is valid or its delta chain
    composes onto a valid full.  [deltas_applied = 0] means a full
    snapshot was used directly. *)

val load_chain_bytes : Storage.t -> (int * string) option
(** The newest recoverable state as {e full-format} snapshot bytes (state
    transfer send path): a valid full file ships as-is, a delta head is
    composed and re-encoded, so the wire format never exposes deltas. *)

val compact : Storage.t -> keep:int -> int
(** Retire snapshot files made redundant by newer durable state: deltas
    at or below the newest valid full snapshot, fulls beyond the newest
    [keep] (min 1), and stray temporaries.  Call {e after} the covering
    snapshot is durably written — unlinking is idempotent and recovery
    ignores missing files, so a crash at any point mid-compact is safe.
    Rewrites the {!read_manifest} audit record.  Returns the number of
    files removed (counted in [durability.snapshots_retired_total]). *)

val read_manifest : Storage.t -> (int * string list) option
(** The compaction audit record: [(head seq, kept file names)] as of the
    last {!compact}.  A hint for operators and checkers only — recovery
    rescans the directory and never trusts the manifest. *)
