(** Crash-restart recovery: rebuild an engine from local storage.

    [run] opens the directory, loads the newest valid snapshot (or starts
    from an empty engine), then replays the WAL records that extend it —
    the contiguous run of sequence numbers starting just after the snapshot.
    Records at or below the snapshot's sequence number are skipped; a gap
    ends replay (everything past a gap is unusable, and cannot occur unless
    storage was tampered with, since segments are only truncated below the
    snapshot). *)

open Kronos

type outcome = {
  engine : Engine.t;
  wal : Wal.t;  (** open, positioned to append at [next_seq] *)
  snapshot_seq : int;  (** 0 when no snapshot was found *)
  next_seq : int;  (** 1 + the last recovered sequence number *)
  replayed : int;  (** WAL records replayed on top of the snapshot *)
}

val run :
  ?engine_config:Engine.config ->
  ?wal_config:Wal.config ->
  replay:(Engine.t -> Wal.record -> unit) ->
  Storage.t ->
  outcome
(** [replay] applies one logged command to the engine; the caller owns the
    payload format (the service layer stores wire-encoded commands plus
    client bookkeeping). *)
