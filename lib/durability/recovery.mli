(** Crash-restart recovery: rebuild an engine from local storage.

    [run] opens the directory, restores the newest recoverable snapshot
    state — a full snapshot, or a base plus its delta chain
    (DESIGN.md §16) — or starts from an empty engine, then replays the WAL
    records that extend it: the contiguous run of sequence numbers
    starting just after the snapshot.  Records at or below the snapshot's
    sequence number are skipped; a gap ends replay (everything past a gap
    is unusable, and cannot occur unless storage was tampered with, since
    segments are only truncated below the snapshot).

    Recovery observability: [recovery.replay_ms] / [recovery.recovery_ms]
    gauges, [recovery.wal_bytes_replayed_total] and
    [recovery.deltas_applied_total] counters are updated on every run and
    surfaced through [Get_stats] / [kronos_cli stats]. *)

open Kronos

type outcome = {
  engine : Engine.t;
  wal : Wal.t;  (** open, positioned to append at [next_seq] *)
  snapshot_seq : int;  (** 0 when no snapshot was found *)
  next_seq : int;  (** 1 + the last recovered sequence number *)
  replayed : int;  (** WAL records replayed on top of the snapshot *)
  deltas_applied : int;  (** delta files composed onto the base snapshot *)
  replay_ms : float;  (** wall time spent replaying the WAL tail *)
  recovery_ms : float;  (** total wall time: scan + snapshot + replay *)
  wal_bytes_replayed : int;  (** framed bytes of the replayed records *)
}

val run :
  ?engine_config:Engine.config ->
  ?wal_config:Wal.config ->
  replay:(Engine.t -> Wal.record -> unit) ->
  Storage.t ->
  outcome
(** [replay] applies one logged command to the engine; the caller owns the
    payload format (the service layer stores wire-encoded commands plus
    client bookkeeping). *)
