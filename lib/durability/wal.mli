(** Append-only write-ahead log of applied commands over a {!Storage}
    directory.

    Each record is framed as

    {v u32 length | u32 crc32 | i64 seq | payload bytes v}

    (big-endian; [length] covers seq + payload, [crc32] guards the same
    range), so a torn tail — a crash mid-append — is detected by length or
    checksum and truncated away on the next open.  Appends are buffered and
    written with a single storage append per {!flush} (group commit); the
    {!sync_policy} decides when the file is additionally fsynced.  The log
    rotates to a new segment file ([wal-<firstseq>.log]) once the active
    segment exceeds [segment_bytes]; whole segments below a snapshot's
    sequence number are deleted by {!truncate_before}. *)

type sync_policy =
  | Always  (** fsync every group commit: no applied command is ever lost *)
  | Every_n of int  (** fsync once per [n] records: bounded loss window *)
  | Never  (** leave durability to the OS page cache: fastest, riskiest *)

type config = { segment_bytes : int; sync : sync_policy }

val default_config : config
(** 1 MiB segments, [Always]. *)

type record = { seq : int; payload : string }

type t

val open_ : ?config:config -> Storage.t -> t * record list
(** Open (or create) the log: scan existing segments in order, truncate the
    first torn or corrupt record and drop any later segments, and return
    the surviving records in append order together with a handle positioned
    to append after them. *)

val append : t -> seq:int -> payload:string -> unit
(** Buffer a record.  Sequence numbers must be appended in increasing
    order.  Buffered records are not readable or durable until {!flush}. *)

val flush : t -> unit
(** Group-commit every buffered record with one storage append, fsyncing
    as the sync policy dictates. *)

val sync : t -> unit
(** {!flush}, then force an fsync regardless of policy. *)

val read_from : t -> since:int -> record list option
(** All records with [seq > since], in order ([flush] is implied).
    [None] when truncation has removed part of that range — the caller must
    fall back to shipping a snapshot. *)

val truncate_before : t -> seq:int -> unit
(** Delete whole segments every record of which has [seq' <= seq]; the
    active segment is always kept.  Retired segments are counted in
    {!retired_segments} and [durability.segments_retired_total]. *)

val last_seq : t -> int
(** Highest sequence number appended or recovered; 0 for an empty log. *)

val segment_files : t -> string list

(** {1 Counters (benchmarks and tests)} *)

val appended_records : t -> int
val sync_count : t -> int

val logged_bytes : t -> int
(** Cumulative framed bytes accepted by {!append} since this handle was
    opened (header + payload, buffered bytes included).  The snapshot
    policy's WAL-bytes-since-snapshot trigger diffs this counter. *)

val retired_segments : t -> int
(** Segments deleted by {!truncate_before} on this handle. *)
