(** Binary wire codec for {!Chain.msg}.

    The simulated network passes messages as OCaml values; a real transport
    needs bytes.  Encoding is the {!Kronos_wire.Codec} convention used by
    the rest of the system (big-endian fixed-width integers,
    length-prefixed strings and lists). *)

val encode : Chain.msg -> string

val decode : string -> Chain.msg
(** @raise Kronos_wire.Codec.Decode_error on malformed bytes, including
    trailing garbage. *)
