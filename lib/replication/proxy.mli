(** Client proxy for a chain-replicated service.

    The proxy discovers the chain configuration from the coordinator, routes
    writes to the head and reads to a chosen replica, matches replies to
    callbacks by request id, and retransmits after a timeout (refreshing the
    configuration first, so it follows reconfigurations).  Requests carry
    stable ids, and replicas deduplicate retransmitted writes, so a retried
    write is applied exactly once.

    Without a per-call [?timeout] a request is retried forever and its
    callback fires exactly once, with [Ok resp].  With one, the proxy keeps
    retrying until the deadline, then fires the callback once with
    [Error `Timeout]; a reply that races in later is discarded.  The
    polymorphic [`Timeout] is the proxy's entire error surface — service
    layers wrap it into their own richer error type (see
    [Kronos_service.Error]). *)

type t

(** Which replica should serve a read. *)
type read_target =
  | Tail  (** linearizable: the committed prefix *)
  | Any   (** possibly stale replica — safe for monotonic answers *)
  | Nth of int  (** specific position in the chain (clamped) *)

val create :
  net:Chain.msg Kronos_transport.Transport.t ->
  addr:Kronos_transport.Transport.addr ->
  coordinator:Kronos_transport.Transport.addr ->
  ?request_timeout:float ->
  unit ->
  t
(** Register the proxy on the transport and fetch the initial configuration.
    [request_timeout] (default 0.5 s) triggers retransmission. *)

val write :
  t -> ?timeout:float -> string -> ((string, [ `Timeout ]) result -> unit) ->
  unit
(** Submit a state-mutating command; the callback fires once, with the
    response computed by the replicated state machine, or [Error `Timeout]
    once [timeout] seconds elapse without one. *)

val read :
  t ->
  ?timeout:float ->
  ?target:read_target ->
  string ->
  ((string, [ `Timeout ]) result -> unit) ->
  unit
(** Submit a read-only command to the chosen replica (default [Tail]). *)

val outstanding : t -> int
(** Requests sent but not yet answered. *)

val retries : t -> int
(** Total retransmissions performed (for tests and reporting). *)

val timeouts : t -> int
(** Requests abandoned at their deadline. *)

val config_version : t -> int
(** Version of the configuration the proxy currently believes in; 0 before
    the first [Config_is] arrives. *)
