open Kronos_wire
open Chain

let put_addr b (a : addr) = Codec.put_i64 b (Int64.of_int a)
let get_addr d : addr = Int64.to_int (Codec.get_i64 d)

let put_config b (c : config) =
  Codec.put_u32 b c.version;
  Codec.put_list b put_addr c.chain

let get_config d =
  let version = Codec.get_u32 d in
  let chain = Codec.get_list d get_addr in
  { version; chain }

let put_entry b (seq, client, req_id, cmd) =
  Codec.put_u32 b seq;
  put_addr b client;
  Codec.put_i64 b (Int64.of_int req_id);
  Codec.put_string b cmd

let get_entry d =
  let seq = Codec.get_u32 d in
  let client = get_addr d in
  let req_id = Int64.to_int (Codec.get_i64 d) in
  let cmd = Codec.get_string d in
  (seq, client, req_id, cmd)

let encode msg =
  let b = Codec.encoder () in
  (match msg with
   | Client_write { client; req_id; cmd } ->
     Codec.put_u8 b 0;
     put_addr b client;
     Codec.put_i64 b (Int64.of_int req_id);
     Codec.put_string b cmd
   | Client_read { client; req_id; cmd } ->
     Codec.put_u8 b 1;
     put_addr b client;
     Codec.put_i64 b (Int64.of_int req_id);
     Codec.put_string b cmd
   | Forward { seq; client; req_id; cmd } ->
     Codec.put_u8 b 2;
     put_entry b (seq, client, req_id, cmd)
   | Ack { seq } ->
     Codec.put_u8 b 3;
     Codec.put_u32 b seq
   | Reply { req_id; resp } ->
     Codec.put_u8 b 4;
     Codec.put_i64 b (Int64.of_int req_id);
     Codec.put_string b resp
   | Get_config { client } ->
     Codec.put_u8 b 5;
     put_addr b client
   | Config_is config ->
     Codec.put_u8 b 6;
     put_config b config
   | New_config { config; fresh } ->
     Codec.put_u8 b 7;
     put_config b config;
     (match fresh with
      | None -> Codec.put_bool b false
      | Some (a, applied) ->
        Codec.put_bool b true;
        put_addr b a;
        Codec.put_u32 b applied)
   | Ping -> Codec.put_u8 b 8
   | Pong { last_applied } ->
     Codec.put_u8 b 9;
     Codec.put_u32 b last_applied
   | Sync_state { entries } ->
     Codec.put_u8 b 10;
     Codec.put_list b put_entry entries
   | Sync_snapshot { seq; snapshot; entries } ->
     Codec.put_u8 b 11;
     Codec.put_u32 b seq;
     Codec.put_string b snapshot;
     Codec.put_list b put_entry entries
   | Join { addr; last_applied } ->
     Codec.put_u8 b 12;
     put_addr b addr;
     Codec.put_u32 b last_applied
   | Get_stats { client } ->
     Codec.put_u8 b 13;
     put_addr b client
   | Stats_is { samples } ->
     Codec.put_u8 b 14;
     Codec.put_list b
       (fun b (name, v) ->
         Codec.put_string b name;
         Codec.put_i64 b (Int64.bits_of_float v))
       samples);
  Codec.to_string b

let decode s =
  let d = Codec.decoder s in
  let msg =
    match Codec.get_u8 d with
    | 0 ->
      let client = get_addr d in
      let req_id = Int64.to_int (Codec.get_i64 d) in
      let cmd = Codec.get_string d in
      Client_write { client; req_id; cmd }
    | 1 ->
      let client = get_addr d in
      let req_id = Int64.to_int (Codec.get_i64 d) in
      let cmd = Codec.get_string d in
      Client_read { client; req_id; cmd }
    | 2 ->
      let seq, client, req_id, cmd = get_entry d in
      Forward { seq; client; req_id; cmd }
    | 3 -> Ack { seq = Codec.get_u32 d }
    | 4 ->
      let req_id = Int64.to_int (Codec.get_i64 d) in
      let resp = Codec.get_string d in
      Reply { req_id; resp }
    | 5 -> Get_config { client = get_addr d }
    | 6 -> Config_is (get_config d)
    | 7 ->
      let config = get_config d in
      let fresh =
        if Codec.get_bool d then begin
          let a = get_addr d in
          let applied = Codec.get_u32 d in
          Some (a, applied)
        end
        else None
      in
      New_config { config; fresh }
    | 8 -> Ping
    | 9 -> Pong { last_applied = Codec.get_u32 d }
    | 10 -> Sync_state { entries = Codec.get_list d get_entry }
    | 11 ->
      let seq = Codec.get_u32 d in
      let snapshot = Codec.get_string d in
      let entries = Codec.get_list d get_entry in
      Sync_snapshot { seq; snapshot; entries }
    | 12 ->
      let addr = get_addr d in
      let last_applied = Codec.get_u32 d in
      Join { addr; last_applied }
    | 13 -> Get_stats { client = get_addr d }
    | 14 ->
      Stats_is
        { samples =
            Codec.get_list d (fun d ->
                let name = Codec.get_string d in
                let v = Int64.float_of_bits (Codec.get_i64 d) in
                (name, v));
        }
    | n -> raise (Codec.Decode_error (Printf.sprintf "bad chain msg tag %d" n))
  in
  Codec.expect_end d;
  msg
