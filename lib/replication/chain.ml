open Kronos_simnet
module Vec = Kronos.Vec
module Transport = Kronos_transport.Transport

type addr = Transport.addr

type config = { version : int; chain : addr list }

type msg =
  | Client_write of { client : addr; req_id : int; cmd : string }
  | Client_read of { client : addr; req_id : int; cmd : string }
  | Forward of { seq : int; client : addr; req_id : int; cmd : string }
  | Ack of { seq : int }
  | Reply of { req_id : int; resp : string }
  | Get_config of { client : addr }
  | Config_is of config
  | New_config of { config : config; fresh : (addr * int) option }
  | Ping
  | Pong of { last_applied : int }
  | Sync_state of { entries : (int * addr * int * string) list }
  | Sync_snapshot of {
      seq : int;
      snapshot : string;
      entries : (int * addr * int * string) list;
    }
  | Join of { addr : addr; last_applied : int }
  | Get_stats of { client : addr }
  | Stats_is of { samples : (string * float) list }

let log_src = Logs.Src.create "kronos.chain" ~doc:"chain replication"

module M = struct
  let scope = Kronos_metrics.scope "chain"
  let applied = Kronos_metrics.counter scope "entries_applied_total"
  let acks = Kronos_metrics.counter scope "acks_total"
  let transfers = Kronos_metrics.counter scope "state_transfers_total"
  let installs = Kronos_metrics.counter scope "snapshot_installs_total"
  let reconfigs = Kronos_metrics.counter scope "reconfigurations_total"
end

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Position helpers over a chain configuration. *)
let head_of cfg = match cfg.chain with a :: _ -> Some a | [] -> None

let successor_of cfg addr =
  let rec loop = function
    | a :: (b :: _ as rest) -> if a = addr then Some b else loop rest
    | [ _ ] | [] -> None
  in
  loop cfg.chain

let predecessor_of cfg addr =
  let rec loop = function
    | a :: (b :: _ as rest) -> if b = addr then Some a else loop rest
    | [ _ ] | [] -> None
  in
  loop cfg.chain

let is_tail cfg addr =
  match List.rev cfg.chain with a :: _ -> a = addr | [] -> false

let encode_entry_payload ~client ~req_id ~cmd =
  let e = Kronos_wire.Codec.encoder () in
  Kronos_wire.Codec.put_i64 e (Int64.of_int client);
  Kronos_wire.Codec.put_i64 e (Int64.of_int req_id);
  Kronos_wire.Codec.put_string e cmd;
  Kronos_wire.Codec.to_string e

let decode_entry_payload s =
  let d = Kronos_wire.Codec.decoder s in
  let client = Int64.to_int (Kronos_wire.Codec.get_i64 d) in
  let req_id = Int64.to_int (Kronos_wire.Codec.get_i64 d) in
  let cmd = Kronos_wire.Codec.get_string d in
  Kronos_wire.Codec.expect_end d;
  (client, req_id, cmd)

module Replica = struct
  type entry = { seq : int; client : addr; req_id : int; cmd : string }

  type persist = {
    log_entry : seq:int -> client:addr -> req_id:int -> cmd:string -> unit;
    commit : upto:int -> unit;
    snapshot : unit -> (int * string) option;
    tail : since:int -> (int * addr * int * string) list option;
    install : seq:int -> string -> unit;
  }

  type t = {
    net : msg Transport.t;
    addr : addr;
    apply : string -> string;
    read_async :
      (client:addr -> req_id:int -> cmd:string -> reply:(string -> unit) ->
       bool)
      option;
    (* offload hook for local reads (DESIGN.md §14): when it returns [true]
       it has taken ownership of the request and will call [reply] later
       (e.g. from a reader-domain completion); [false] falls back to the
       synchronous [apply] path *)
    persist : persist option;
    mutable cfg : config;
    mutable last_applied : int;
    log : entry Vec.t;                       (* full command history *)
    responses : (int, string) Hashtbl.t;     (* seq -> response *)
    dedup : (addr * int, int) Hashtbl.t;     (* (client, req_id) -> seq *)
    mutable pending : entry list;            (* forwarded, unacked; seq asc *)
    stash : (int, entry) Hashtbl.t;          (* out-of-order forwards *)
    mutable removed : bool;
    mutable installs : int;                  (* Sync_snapshot transfers taken *)
  }

  let addr t = t.addr
  let last_applied t = t.last_applied
  let config t = t.cfg
  let pending_count t = List.length t.pending
  let log_length t = Vec.length t.log
  let snapshot_installs t = t.installs

  let is_removed t = t.removed

  let crash t = Transport.unregister t.net t.addr

  let send t dst msg = Transport.send t.net ~src:t.addr ~dst msg

  let announce_join t ~coordinator =
    send t coordinator (Join { addr = t.addr; last_applied = t.last_applied })

  let to_successor t msg =
    match successor_of t.cfg t.addr with
    | Some succ -> send t succ msg
    | None -> ()

  let to_predecessor t msg =
    match predecessor_of t.cfg t.addr with
    | Some pred -> send t pred msg
    | None -> ()

  (* Apply a command locally and record everything needed to re-reply,
     deduplicate, and transfer state later.  With a durability layer, the
     command is also logged at its sequence number (group-committed once the
     current message is fully handled). *)
  let apply_entry t entry =
    let resp = t.apply entry.cmd in
    Kronos_metrics.Counter.incr M.applied;
    t.last_applied <- entry.seq;
    Vec.push t.log entry;
    Hashtbl.replace t.responses entry.seq resp;
    Hashtbl.replace t.dedup (entry.client, entry.req_id) entry.seq;
    (match t.persist with
     | Some p ->
       p.log_entry ~seq:entry.seq ~client:entry.client ~req_id:entry.req_id
         ~cmd:entry.cmd
     | None -> ());
    resp

  (* Post-application propagation: tail replies and acks; others forward and
     track the entry as pending. *)
  let propagate t entry resp =
    if is_tail t.cfg t.addr then begin
      send t entry.client (Reply { req_id = entry.req_id; resp });
      to_predecessor t (Ack { seq = entry.seq })
    end
    else begin
      t.pending <- t.pending @ [ entry ];
      to_successor t
        (Forward { seq = entry.seq; client = entry.client;
                   req_id = entry.req_id; cmd = entry.cmd })
    end

  let rec drain_stash t =
    match Hashtbl.find_opt t.stash (t.last_applied + 1) with
    | None -> ()
    | Some entry ->
      Hashtbl.remove t.stash entry.seq;
      let resp = apply_entry t entry in
      propagate t entry resp;
      drain_stash t

  let handle_duplicate_forward t (entry : entry) =
    if is_tail t.cfg t.addr then begin
      (match Hashtbl.find_opt t.responses entry.seq with
       | Some resp -> send t entry.client (Reply { req_id = entry.req_id; resp })
       | None -> ());
      to_predecessor t (Ack { seq = entry.seq })
    end
    else
      to_successor t
        (Forward { seq = entry.seq; client = entry.client;
                   req_id = entry.req_id; cmd = entry.cmd })

  let handle_forward t entry =
    if entry.seq <= t.last_applied then handle_duplicate_forward t entry
    else if entry.seq = t.last_applied + 1 then begin
      let resp = apply_entry t entry in
      propagate t entry resp;
      drain_stash t
    end
    else Hashtbl.replace t.stash entry.seq entry

  let handle_write t ~client ~req_id ~cmd =
    match head_of t.cfg with
    | None -> ()
    | Some head when head <> t.addr ->
      (* stale client: relay to the real head *)
      send t head (Client_write { client; req_id; cmd })
    | Some _ -> (
        match Hashtbl.find_opt t.dedup (client, req_id) with
        | Some seq ->
          (* retransmission of an already-sequenced request *)
          if is_tail t.cfg t.addr then begin
            match Hashtbl.find_opt t.responses seq with
            | Some resp -> send t client (Reply { req_id; resp })
            | None -> ()
          end
          else to_successor t (Forward { seq; client; req_id; cmd })
        | None ->
          let entry = { seq = t.last_applied + 1; client; req_id; cmd } in
          let resp = apply_entry t entry in
          propagate t entry resp)

  let handle_ack t seq =
    Kronos_metrics.Counter.incr M.acks;
    t.pending <- List.filter (fun e -> e.seq > seq) t.pending;
    to_predecessor t (Ack { seq })

  (* State transfer to a joining successor that has already applied
     [applied] commands.  Preference order: the smallest sufficient log
     tail (from the WAL when one is attached, else the in-memory log);
     otherwise — the needed range was truncated under a snapshot — the
     latest snapshot plus the log above it. *)
  let send_sync t succ ~applied =
    Kronos_metrics.Counter.incr M.transfers;
    let from_memory () =
      Vec.to_list t.log
      |> List.filter_map (fun e ->
             if e.seq > applied then Some (e.seq, e.client, e.req_id, e.cmd)
             else None)
    in
    match t.persist with
    | None -> send t succ (Sync_state { entries = from_memory () })
    | Some p -> (
        match p.tail ~since:applied with
        | Some entries -> send t succ (Sync_state { entries })
        | None -> (
            match p.snapshot () with
            | Some (seq, snapshot) when seq > applied ->
              let entries = Option.value (p.tail ~since:seq) ~default:[] in
              send t succ (Sync_snapshot { seq; snapshot; entries })
            | Some _ | None ->
              (* no snapshot that helps; the in-memory log is the last
                 resort (complete unless this replica itself recovered
                 from a snapshot, which implies one exists) *)
              send t succ (Sync_state { entries = from_memory () })))

  let handle_new_config t new_cfg fresh =
    if new_cfg.version > t.cfg.version then begin
      Kronos_metrics.Counter.incr M.reconfigs;
      let old_succ = successor_of t.cfg t.addr in
      t.cfg <- new_cfg;
      if not (List.mem t.addr new_cfg.chain) then t.removed <- true
      else begin
        let new_succ = successor_of new_cfg t.addr in
        (match new_succ with
         | Some succ when old_succ <> Some succ ->
           (* A fresh tail needs its missing history before anything else
              on this (FIFO) link; a surviving successor only needs our
              unacknowledged entries. *)
           (match fresh with
            | Some (a, applied) when a = succ -> send_sync t succ ~applied
            | Some _ | None -> ());
           List.iter
             (fun e ->
               send t succ
                 (Forward { seq = e.seq; client = e.client;
                            req_id = e.req_id; cmd = e.cmd }))
             t.pending
         | Some _ | None -> ());
        if is_tail new_cfg t.addr && t.pending <> [] then begin
          (* We just became tail: close out the in-flight entries. *)
          List.iter
            (fun e ->
              match Hashtbl.find_opt t.responses e.seq with
              | Some resp -> send t e.client (Reply { req_id = e.req_id; resp })
              | None -> ())
            t.pending;
          (match List.rev t.pending with
           | last :: _ -> to_predecessor t (Ack { seq = last.seq })
           | [] -> ());
          t.pending <- []
        end
      end
    end

  let handle_sync t entries =
    List.iter
      (fun (seq, client, req_id, cmd) ->
        if seq > t.last_applied then
          ignore (apply_entry t { seq; client; req_id; cmd }))
      entries;
    drain_stash t

  (* A snapshot transfer: jump the local state machine to [seq], then apply
     the log entries above it.  Only meaningful with an [install] hook (a
     deployment mixing durable and non-durable replicas would need full-log
     transfer; we log and ignore rather than corrupt state). *)
  let handle_sync_snapshot t ~seq ~snapshot ~entries =
    (match t.persist with
     | Some p when seq > t.last_applied ->
       p.install ~seq snapshot;
       t.installs <- t.installs + 1;
       Kronos_metrics.Counter.incr M.installs;
       t.last_applied <- seq;
       (* bookkeeping for the snapshotted prefix is gone with the old
          engine; it is no longer replayable, so drop it *)
       Vec.clear t.log;
       Hashtbl.reset t.responses;
       Hashtbl.reset t.dedup;
       Hashtbl.reset t.stash;
       handle_sync t entries
     | Some _ -> handle_sync t entries
     | None ->
       Log.err (fun m ->
           m "replica %d: dropped snapshot transfer (no install hook)" t.addr))

  let handle t ~src:_ msg =
    if not t.removed then
      match msg with
      | Client_write { client; req_id; cmd } -> handle_write t ~client ~req_id ~cmd
      | Client_read { client; req_id; cmd } -> (
        let reply resp = send t client (Reply { req_id; resp }) in
        match t.read_async with
        | Some offload when offload ~client ~req_id ~cmd ~reply -> ()
        | Some _ | None -> reply (t.apply cmd))
      | Forward { seq; client; req_id; cmd } ->
        handle_forward t { seq; client; req_id; cmd }
      | Ack { seq } -> handle_ack t seq
      | New_config { config; fresh } -> handle_new_config t config fresh
      | Ping -> () (* answered below, even when removed *)
      | Sync_state { entries } -> handle_sync t entries
      | Sync_snapshot { seq; snapshot; entries } ->
        handle_sync_snapshot t ~seq ~snapshot ~entries
      | Reply _ | Config_is _ | Get_config _ | Pong _ | Join _ | Get_stats _
      | Stats_is _ ->
        Log.debug (fun m -> m "replica %d: unexpected message" t.addr)

  let handle t ~src msg =
    match msg with
    | Ping -> send t src (Pong { last_applied = t.last_applied })
    | Get_stats { client } ->
      (* Answered even when removed, like Ping: stats are an admin plane,
         not part of the replicated state machine.  The registry is
         process-wide, so the reply covers every layer of this daemon. *)
      send t client (Stats_is { samples = Kronos_metrics.samples () })
    | _ ->
      let before = t.last_applied in
      handle t ~src msg;
      (* group commit: one durability flush per delivered message, however
         many commands it applied (forward bursts, stash drains, syncs) *)
      match t.persist with
      | Some p when t.last_applied > before -> p.commit ~upto:t.last_applied
      | Some _ | None -> ()

  let restore t ~last_applied ~entries =
    if t.last_applied <> 0 || Vec.length t.log > 0 then
      invalid_arg "Replica.restore: replica already has state";
    t.last_applied <- last_applied;
    List.iter
      (fun (seq, client, req_id, cmd, resp) ->
        Vec.push t.log { seq; client; req_id; cmd };
        Hashtbl.replace t.responses seq resp;
        Hashtbl.replace t.dedup (client, req_id) seq)
      entries

  let create ~net ~addr ~apply ?read_async
      ?(config = { version = 0; chain = [] }) ?service ?persist () =
    let t =
      {
        net;
        addr;
        apply;
        read_async;
        persist;
        cfg = config;
        last_applied = 0;
        log = Vec.create ~dummy:{ seq = 0; client = 0; req_id = 0; cmd = "" } ();
        responses = Hashtbl.create 1024;
        dedup = Hashtbl.create 1024;
        pending = [];
        stash = Hashtbl.create 16;
        removed = false;
        installs = 0;
      }
    in
    let deliver =
      match service with
      | None -> fun ~src msg -> handle t ~src msg
      | Some kind ->
        let sim =
          match Transport.sim net with
          | Some sim -> sim
          | None ->
            invalid_arg
              "Replica.create: service-time modelling requires a simulated \
               transport"
        in
        let queue = Service_queue.create sim in
        fun ~src msg ->
          (* heartbeats bypass the work queue, as a dedicated heartbeat
             thread would: saturation must not look like a crash *)
          (match (msg : msg) with
           | Ping -> handle t ~src msg
           | _ -> (
               match kind with
               | `Fixed cost ->
                 Service_queue.submit_fixed queue ~cost (fun () ->
                     handle t ~src msg)
               | `Measured scale ->
                 Service_queue.submit_measured queue ~scale (fun () ->
                     handle t ~src msg)))
    in
    Transport.register net addr deliver;
    t
end

module Coordinator = struct
  type t = {
    net : msg Transport.t;
    addr : addr;
    mutable cfg : config;
    (* the fresh-join marker of the latest reconfiguration, kept so the
       periodic re-broadcast stays identical to the original announcement *)
    mutable last_fresh : (addr * int) option;
    last_pong : (addr, float) Hashtbl.t;
    ping_interval : float;
    failure_timeout : float;
  }

  let addr t = t.addr
  let config t = t.cfg

  let broadcast t fresh =
    t.last_fresh <- fresh;
    List.iter
      (fun a ->
        Transport.send t.net ~src:t.addr ~dst:a (New_config { config = t.cfg; fresh }))
      t.cfg.chain

  let check_failures t =
    let now = Transport.now t.net in
    let dead =
      List.filter
        (fun a ->
          match Hashtbl.find_opt t.last_pong a with
          | Some seen -> now -. seen > t.failure_timeout
          | None -> false)
        t.cfg.chain
    in
    if dead <> [] then begin
      Log.info (fun m ->
          m "coordinator: removing %s from chain"
            (String.concat "," (List.map string_of_int dead)));
      t.cfg <-
        { version = t.cfg.version + 1;
          chain = List.filter (fun a -> not (List.mem a dead)) t.cfg.chain };
      List.iter (Hashtbl.remove t.last_pong) dead;
      broadcast t None
    end

  let tick t =
    check_failures t;
    (* Re-announce the configuration every tick: announcements can be lost
       and replicas version-check them, so this is idempotent. *)
    broadcast t t.last_fresh;
    List.iter (fun a -> Transport.send t.net ~src:t.addr ~dst:a Ping) t.cfg.chain

  (* Integrate a replica at the tail, announcing how much it has already
     applied so the current tail ships the smallest sufficient transfer.
     Re-announcing an existing member (a retried [Join]) is answered with a
     plain re-broadcast instead of a reconfiguration. *)
  let integrate t ~addr:a ~last_applied =
    if List.mem a t.cfg.chain then broadcast t t.last_fresh
    else begin
      t.cfg <- { version = t.cfg.version + 1; chain = t.cfg.chain @ [ a ] };
      Hashtbl.replace t.last_pong a (Transport.now t.net);
      broadcast t (Some (a, last_applied))
    end

  let handle t ~src msg =
    match msg with
    | Pong _ -> Hashtbl.replace t.last_pong src (Transport.now t.net)
    | Get_config { client } ->
      Transport.send t.net ~src:t.addr ~dst:client (Config_is t.cfg)
    | Join { addr; last_applied } -> integrate t ~addr ~last_applied
    | Get_stats { client } ->
      Transport.send t.net ~src:t.addr ~dst:client
        (Stats_is { samples = Kronos_metrics.samples () })
    | Client_write _ | Client_read _ | Forward _ | Ack _ | Reply _
    | Config_is _ | New_config _ | Ping | Sync_state _ | Sync_snapshot _
    | Stats_is _ ->
      Log.debug (fun m -> m "coordinator: unexpected message")

  let create ~net ~addr ~chain ?(ping_interval = 0.2) ?(failure_timeout = 1.0) () =
    let t =
      {
        net;
        addr;
        cfg = { version = 1; chain };
        last_fresh = None;
        last_pong = Hashtbl.create 8;
        ping_interval;
        failure_timeout;
      }
    in
    let now = Transport.now net in
    List.iter (fun a -> Hashtbl.replace t.last_pong a now) chain;
    Transport.register net addr (fun ~src msg -> handle t ~src msg);
    broadcast t None;
    ignore (Transport.every net ~period:ping_interval (fun () -> tick t));
    t

  let join t replica =
    let a = Replica.addr replica in
    if List.mem a t.cfg.chain then invalid_arg "Coordinator.join: already a member";
    integrate t ~addr:a ~last_applied:(Replica.last_applied replica)
end
