open Kronos_simnet

type read_target = Tail | Any | Nth of int

type op = {
  req_id : int;
  cmd : string;
  kind : [ `Write | `Read of read_target ];
  callback : string -> unit;
  mutable timer : Sim.timer option;
}

type t = {
  net : Chain.msg Net.t;
  addr : Net.addr;
  coordinator : Net.addr;
  request_timeout : float;
  rng : Rng.t;
  mutable cfg : Chain.config option;
  mutable next_req : int;
  outstanding : (int, op) Hashtbl.t;
  mutable queued : op list;  (* ops waiting for the first configuration *)
  mutable retries : int;
}

let outstanding t = Hashtbl.length t.outstanding
let retries t = t.retries

let config_version t =
  match t.cfg with Some c -> c.Chain.version | None -> 0

let sim t = Net.sim t.net

let read_destination t target (cfg : Chain.config) =
  match cfg.chain with
  | [] -> None
  | chain -> (
      match target with
      | Tail -> Some (List.nth chain (List.length chain - 1))
      | Any -> Some (List.nth chain (Rng.int t.rng (List.length chain)))
      | Nth i ->
        let i = max 0 (min i (List.length chain - 1)) in
        Some (List.nth chain i))

let rec dispatch t op =
  (match t.cfg with
   | None ->
     (* No configuration yet: park the op; the armed timeout below will
        refresh the configuration and retry even if the initial
        [Get_config] was lost. *)
     if not (List.memq op t.queued) then t.queued <- op :: t.queued
   | Some cfg ->
     let destination =
       match op.kind with
       | `Write -> Chain.head_of cfg
       | `Read target -> read_destination t target cfg
     in
     (match destination with
      | None -> ()  (* empty chain: wait for a config with members *)
      | Some dst ->
        let msg =
          match op.kind with
          | `Write ->
            Chain.Client_write { client = t.addr; req_id = op.req_id; cmd = op.cmd }
          | `Read _ ->
            Chain.Client_read { client = t.addr; req_id = op.req_id; cmd = op.cmd }
        in
        Net.send t.net ~src:t.addr ~dst msg));
  arm_timeout t op

and arm_timeout t op =
  (match op.timer with Some timer -> Sim.cancel timer | None -> ());
  let timer =
    Sim.schedule (sim t) ~delay:t.request_timeout (fun () ->
        if Hashtbl.mem t.outstanding op.req_id then begin
          t.retries <- t.retries + 1;
          (* The failure may be a dead replica: refresh the configuration
             before retransmitting. *)
          Net.send t.net ~src:t.addr ~dst:t.coordinator
            (Chain.Get_config { client = t.addr });
          dispatch t op
        end)
  in
  op.timer <- Some timer

let handle t ~src:_ msg =
  match (msg : Chain.msg) with
  | Config_is cfg ->
    let fresh_config =
      match t.cfg with Some old -> cfg.version > old.version | None -> true
    in
    if fresh_config then t.cfg <- Some cfg;
    let queued = List.rev t.queued in
    t.queued <- [];
    List.iter (dispatch t) queued
  | Reply { req_id; resp } -> (
      match Hashtbl.find_opt t.outstanding req_id with
      | Some op ->
        Hashtbl.remove t.outstanding req_id;
        (match op.timer with Some timer -> Sim.cancel timer | None -> ());
        op.callback resp
      | None -> () (* duplicate reply after a retransmission *))
  | Client_write _ | Client_read _ | Forward _ | Ack _ | Get_config _
  | New_config _ | Ping | Pong _ | Sync_state _ | Sync_snapshot _ ->
    ()

let create ~net ~addr ~coordinator ?(request_timeout = 0.5) () =
  let t =
    {
      net;
      addr;
      coordinator;
      request_timeout;
      rng = Rng.split (Sim.rng (Net.sim net));
      cfg = None;
      next_req = 0;
      outstanding = Hashtbl.create 64;
      queued = [];
      retries = 0;
    }
  in
  Net.register net addr (fun ~src msg -> handle t ~src msg);
  Net.send net ~src:addr ~dst:coordinator (Chain.Get_config { client = addr });
  t

let submit t kind cmd callback =
  t.next_req <- t.next_req + 1;
  let op = { req_id = t.next_req; cmd; kind; callback; timer = None } in
  Hashtbl.replace t.outstanding op.req_id op;
  dispatch t op

let write t cmd callback = submit t `Write cmd callback

let read t ?(target = Tail) cmd callback = submit t (`Read target) cmd callback
