module Transport = Kronos_transport.Transport

module M = struct
  let scope = Kronos_metrics.scope "proxy"
  let requests = Kronos_metrics.counter scope "requests_total"
  let retries = Kronos_metrics.counter scope "retries_total"
  let timeouts = Kronos_metrics.counter scope "timeouts_total"
end

type read_target = Tail | Any | Nth of int

type op = {
  req_id : int;
  cmd : string;
  kind : [ `Write | `Read of read_target ];
  callback : (string, [ `Timeout ]) result -> unit;
  deadline : float option;
  mutable timer : Transport.timer option;
}

type t = {
  net : Chain.msg Transport.t;
  addr : Transport.addr;
  coordinator : Transport.addr;
  request_timeout : float;
  mutable cfg : Chain.config option;
  mutable next_req : int;
  outstanding : (int, op) Hashtbl.t;
  mutable queued : op list;  (* ops waiting for the first configuration *)
  mutable retries : int;
  mutable timeouts : int;
}

let outstanding t = Hashtbl.length t.outstanding
let retries t = t.retries
let timeouts t = t.timeouts

let config_version t =
  match t.cfg with Some c -> c.Chain.version | None -> 0

let read_destination t target (cfg : Chain.config) =
  match cfg.chain with
  | [] -> None
  | chain -> (
      match target with
      | Tail -> Some (List.nth chain (List.length chain - 1))
      | Any -> Some (List.nth chain (Transport.random_int t.net (List.length chain)))
      | Nth i ->
        let i = max 0 (min i (List.length chain - 1)) in
        Some (List.nth chain i))

let cancel_timer op =
  match op.timer with
  | Some timer -> Transport.cancel timer; op.timer <- None
  | None -> ()

let expire t op =
  if Hashtbl.mem t.outstanding op.req_id then begin
    Hashtbl.remove t.outstanding op.req_id;
    cancel_timer op;
    t.timeouts <- t.timeouts + 1;
    Kronos_metrics.Counter.incr M.timeouts;
    op.callback (Error `Timeout)
  end

let rec dispatch t op =
  (match t.cfg with
   | None ->
     (* No configuration yet: park the op; the armed timeout below will
        refresh the configuration and retry even if the initial
        [Get_config] was lost. *)
     if not (List.memq op t.queued) then t.queued <- op :: t.queued
   | Some cfg ->
     let destination =
       match op.kind with
       | `Write -> Chain.head_of cfg
       | `Read target -> read_destination t target cfg
     in
     (match destination with
      | None -> ()  (* empty chain: wait for a config with members *)
      | Some dst ->
        let msg =
          match op.kind with
          | `Write ->
            Chain.Client_write { client = t.addr; req_id = op.req_id; cmd = op.cmd }
          | `Read _ ->
            Chain.Client_read { client = t.addr; req_id = op.req_id; cmd = op.cmd }
        in
        Transport.send t.net ~src:t.addr ~dst msg));
  arm_timeout t op

and arm_timeout t op =
  cancel_timer op;
  let now = Transport.now t.net in
  let delay, on_fire =
    match op.deadline with
    | Some d when d -. now <= t.request_timeout ->
      (* The overall deadline lands before the next retransmission would:
         schedule the expiry instead of another retry. *)
      (max 0. (d -. now), fun () -> expire t op)
    | _ ->
      ( t.request_timeout,
        fun () ->
          if Hashtbl.mem t.outstanding op.req_id then begin
            t.retries <- t.retries + 1;
            Kronos_metrics.Counter.incr M.retries;
            (* The failure may be a dead replica: refresh the configuration
               before retransmitting. *)
            Transport.send t.net ~src:t.addr ~dst:t.coordinator
              (Chain.Get_config { client = t.addr });
            dispatch t op
          end )
  in
  op.timer <- Some (Transport.schedule t.net ~delay on_fire)

let handle t ~src:_ msg =
  match (msg : Chain.msg) with
  | Config_is cfg ->
    let fresh_config =
      match t.cfg with Some old -> cfg.version > old.version | None -> true
    in
    if fresh_config then t.cfg <- Some cfg;
    let queued = List.rev t.queued in
    t.queued <- [];
    List.iter (dispatch t) queued
  | Reply { req_id; resp } -> (
      match Hashtbl.find_opt t.outstanding req_id with
      | Some op ->
        Hashtbl.remove t.outstanding req_id;
        cancel_timer op;
        op.callback (Ok resp)
      | None -> () (* duplicate reply after a retransmission, or a reply
                      arriving after the op already timed out *))
  | Client_write _ | Client_read _ | Forward _ | Ack _ | Get_config _
  | New_config _ | Ping | Pong _ | Sync_state _ | Sync_snapshot _ | Join _
  | Get_stats _ | Stats_is _ ->
    ()

let create ~net ~addr ~coordinator ?(request_timeout = 0.5) () =
  let t =
    {
      net;
      addr;
      coordinator;
      request_timeout;
      cfg = None;
      next_req = 0;
      outstanding = Hashtbl.create 64;
      queued = [];
      retries = 0;
      timeouts = 0;
    }
  in
  Transport.register net addr (fun ~src msg -> handle t ~src msg);
  Transport.send net ~src:addr ~dst:coordinator
    (Chain.Get_config { client = addr });
  t

let submit t ?timeout kind cmd callback =
  t.next_req <- t.next_req + 1;
  Kronos_metrics.Counter.incr M.requests;
  let deadline =
    match timeout with
    | Some span -> Some (Transport.now t.net +. span)
    | None -> None
  in
  let op = { req_id = t.next_req; cmd; kind; callback; deadline; timer = None } in
  Hashtbl.replace t.outstanding op.req_id op;
  dispatch t op

let write t ?timeout cmd callback = submit t ?timeout `Write cmd callback

let read t ?timeout ?(target = Tail) cmd callback =
  submit t ?timeout (`Read target) cmd callback
