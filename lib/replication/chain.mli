(** Chain replication (van Renesse & Schneider, OSDI'04) over the simulated
    network, replicating an arbitrary deterministic state machine whose
    commands and responses are byte strings.

    Topology and roles:
    - writes enter at the {e head}, which assigns sequence numbers, applies
      the command, and forwards down the chain; the {e tail} applies and
      replies to the client, then acknowledges back up the chain so
      predecessors can drop their pending entries;
    - reads may be served locally by {e any} replica ([Client_read]); the
      Kronos service layer exploits this for stale-replica queries
      (Section 2.5 of the paper) because monotonicity makes ordered answers
      from stale replicas indistinguishable from tail answers;
    - a {e coordinator} process (standing in for the coordination service of
      Section 2.4, e.g. ZooKeeper/Chubby) pings replicas, removes silent
      ones from the chain, broadcasts new configurations, and integrates
      fresh replicas at the tail with full state transfer.

    Failure handling follows the standard protocol: on reconfiguration a
    replica that gained a new successor re-sends its unacknowledged pending
    entries (duplicates are discarded by sequence number); a replica that
    became tail replies to the clients of its pending entries.

    {b Durability.}  A replica may be given {!Replica.persist} hooks wired
    to the [kronos_durability] WAL/snapshot layer: every applied command is
    logged at its sequence number and group-committed once per delivered
    message, and a periodic snapshot lets old log segments be truncated.
    State transfer then adapts to what the joining replica already has
    (announced in [New_config]): a recovered replica close behind receives
    only the missing WAL tail; one too far behind (its range was truncated
    under a snapshot) receives the latest snapshot plus the WAL tail above
    it, instead of a replay of the entire history. *)

type addr = Kronos_transport.Transport.addr

type config = { version : int; chain : addr list }

(** Messages exchanged by proxies, replicas and the coordinator. *)
type msg =
  | Client_write of { client : addr; req_id : int; cmd : string }
  | Client_read of { client : addr; req_id : int; cmd : string }
  | Forward of { seq : int; client : addr; req_id : int; cmd : string }
  | Ack of { seq : int }
  | Reply of { req_id : int; resp : string }
  | Get_config of { client : addr }
  | Config_is of config
  | New_config of { config : config; fresh : (addr * int) option }
      (** [fresh] identifies a joining replica and the sequence number it
          has already applied (0 for a blank one), so its predecessor can
          ship the smallest sufficient state transfer *)
  | Ping
  | Pong of { last_applied : int }
  | Sync_state of { entries : (int * addr * int * string) list }
      (** (seq, client, req_id, cmd) log suffix for a joining replica *)
  | Sync_snapshot of {
      seq : int;
      snapshot : string;
      entries : (int * addr * int * string) list;
    }
      (** encoded engine snapshot as of [seq] plus the log entries above
          it, for a joining replica whose missing range was truncated *)
  | Join of { addr : addr; last_applied : int }
      (** a replica (possibly in another process) asking the coordinator to
          integrate it at the tail; idempotent, so joiners may retry it *)
  | Get_stats of { client : addr }
      (** admin plane: ask a replica or the coordinator for a snapshot of
          its process-wide metrics registry; answered even by replicas
          removed from the chain, like [Ping] *)
  | Stats_is of { samples : (string * float) list }
      (** flat [(series, value)] snapshot from [Kronos_metrics.samples] *)

(** {1 Chain position helpers} *)

val head_of : config -> addr option
val successor_of : config -> addr -> addr option
val predecessor_of : config -> addr -> addr option
val is_tail : config -> addr -> bool

(** {1 Replicas} *)

module Replica : sig
  type t

  (** Hooks connecting a replica to a local durability layer.  The chain
      stays generic over the hosted state machine: it calls these at the
      protocol points where persistence matters and never interprets the
      snapshot bytes. *)
  type persist = {
    log_entry : seq:int -> client:addr -> req_id:int -> cmd:string -> unit;
        (** called after each command is applied, in sequence order *)
    commit : upto:int -> unit;
        (** called once per delivered message that applied at least one
            command — the group-commit point (WAL flush, snapshot cadence,
            segment truncation live behind this) *)
    snapshot : unit -> (int * string) option;
        (** newest local snapshot as [(seq, bytes)], for state transfer *)
    tail : since:int -> (int * addr * int * string) list option;
        (** logged entries with [seq > since]; [None] once truncation has
            removed part of that range *)
    install : seq:int -> string -> unit;
        (** replace the local state machine with a received snapshot (and
            persist it, so a later restart recovers from it) *)
  }

  val create :
    net:msg Kronos_transport.Transport.t ->
    addr:addr ->
    apply:(string -> string) ->
    ?read_async:
      (client:addr ->
       req_id:int ->
       cmd:string ->
       reply:(string -> unit) ->
       bool) ->
    ?config:config ->
    ?service:[ `Fixed of float | `Measured of float ] ->
    ?persist:persist ->
    unit ->
    t
  (** Create a replica and register it on the network.  [apply] must be
      deterministic.  [config] seeds the initial chain configuration (all
      replicas and the coordinator must agree on it).

      [read_async] offloads local reads ([Client_read]): when it returns
      [true] it has taken ownership and will call [reply] exactly once,
      possibly later and possibly computed on another domain (the
      multicore query plane, DESIGN.md §14); [false] — or no hook — serves
      the read synchronously through [apply].  Only reads go through it;
      replicated writes always apply in sequence on the owning thread.

      [service] models the replica's CPU: each non-heartbeat message
      occupies the server for a fixed virtual duration, or — with
      [`Measured scale] — for the scaled wall-clock time the handler
      actually took, which charges the {e real} cost of the hosted state
      machine (used by the scalability benchmark).  Service-time modelling
      needs a simulator, so it raises [Invalid_argument] over a transport
      whose [sim] is [None]. *)

  val restore :
    t ->
    last_applied:int ->
    entries:(int * addr * int * string * string) list ->
    unit
  (** Pre-load recovered state into a freshly created, not-yet-joined
      replica: set its applied sequence number and re-seed the in-memory
      log, response table and deduplication index from replayed entries
      ((seq, client, req_id, cmd, resp), ascending).  Only the replayed WAL
      suffix is available after a restart; earlier history lives in the
      snapshot the engine was restored from. *)

  val addr : t -> addr
  val last_applied : t -> int
  val config : t -> config
  val pending_count : t -> int
  val log_length : t -> int

  val snapshot_installs : t -> int
  (** Number of [Sync_snapshot] transfers this replica has installed (0
      when every join was satisfied by a log tail). *)

  val is_removed : t -> bool
  (** The coordinator announced a configuration without this replica; it
      drops all traffic and must be restarted to rejoin. *)

  val announce_join : t -> coordinator:addr -> unit
  (** Send a {!msg.Join} to a (possibly remote) coordinator, announcing the
      already-applied sequence number.  Safe to retry until the replica
      appears in {!config}. *)

  val crash : t -> unit
  (** Unregister from the network; in-flight and future messages drop. *)
end

(** {1 Log-entry payloads}

    The byte format used when a chain entry is stored in a WAL record:
    client address, request id and command, so a restart can rebuild the
    deduplication index and re-reply to clients. *)

val encode_entry_payload : client:addr -> req_id:int -> cmd:string -> string

val decode_entry_payload : string -> addr * int * string
(** @raise Kronos_wire.Codec.Decode_error on malformed bytes. *)

(** {1 Coordinator} *)

module Coordinator : sig
  type t

  val create :
    net:msg Kronos_transport.Transport.t ->
    addr:addr ->
    chain:addr list ->
    ?ping_interval:float ->
    ?failure_timeout:float ->
    unit ->
    t
  (** Start the coordinator.  It immediately broadcasts the initial
      configuration and begins pinging replicas.  A replica missing
      [failure_timeout] seconds of pongs (default 1.0) is removed from the
      chain. *)

  val addr : t -> addr
  val config : t -> config

  val join : t -> Replica.t -> unit
  (** Integrate a replica at the tail.  The broadcast announces the
      replica's already-applied sequence number (non-zero when it recovered
      from local storage), and the current tail ships only what is missing:
      a log tail, or — if that range was truncated — its latest snapshot
      plus the log above it. *)
end
