open Kronos
module Sim = Kronos_simnet.Sim
module Rng = Kronos_simnet.Rng
module Net = Kronos_simnet.Net
module Kv_client = Kronos_kvstore.Kv_client
module Kv_msg = Kronos_kvstore.Kv_msg

type mode = Put_and_pray | Locking | Kronos_ordered

type id_source = int ref

let id_source () = ref 0

type result =
  | Committed of {
      event : Event_id.t option;
      reads : (string * string option) list;
    }
  | Aborted

type t = {
  mode : mode;
  sim : Sim.t;
  kv : Kv_client.t;
  shards : Net.addr array;
  ids : id_source;
  kronos : Kronos_service.Client.t option;
  max_retries : int;
  rng : Rng.t;
  mutable committed : int;
  mutable aborted : int;
  mutable retries : int;
  mutable log : (Event_id.t * (string * string option) list * (string * string) list) list;
}

let create ~mode ~sim ~kv ~shards ~ids ?kronos ?(max_retries = 50) () =
  if mode = Kronos_ordered && kronos = None then
    invalid_arg "Executor.create: Kronos_ordered requires a kronos client";
  {
    mode;
    sim;
    kv;
    shards;
    ids;
    kronos;
    max_retries;
    rng = Rng.split (Sim.rng sim);
    committed = 0;
    aborted = 0;
    retries = 0;
    log = [];
  }

let committed t = t.committed
let aborted t = t.aborted
let retries t = t.retries
let txn_log t = List.rev t.log

let shard_addr t key =
  t.shards.(Kronos_kvstore.Router.shard_of ~shards:(Array.length t.shards) key)

let fresh_txn_id t =
  incr t.ids;
  !(t.ids)

(* Read every key in parallel, then hand the assembled list to [k]. *)
let read_all t keys k =
  let n = List.length keys in
  if n = 0 then k []
  else begin
    let results = Hashtbl.create n in
    let remaining = ref n in
    List.iter
      (fun key ->
        Kv_client.request t.kv ~shard:(shard_addr t key) (Kv_msg.Get { key })
          (function
            | Kv_msg.Value { value } ->
              Hashtbl.replace results key value;
              decr remaining;
              if !remaining = 0 then
                k (List.map (fun key -> (key, Hashtbl.find results key)) keys)
            | _ -> invalid_arg "Executor.read_all: unexpected response"))
      keys
  end

let write_all t writes k =
  let n = List.length writes in
  if n = 0 then k ()
  else begin
    let remaining = ref n in
    List.iter
      (fun (key, value) ->
        Kv_client.request t.kv ~shard:(shard_addr t key)
          (Kv_msg.Put { key; value })
          (fun _ ->
            decr remaining;
            if !remaining = 0 then k ()))
      writes
  end

(* {2 Put-and-pray} *)

let execute_put_and_pray t ~reads ~writes_of callback =
  read_all t reads (fun values ->
      write_all t (writes_of values) (fun () ->
          t.committed <- t.committed + 1;
          callback (Committed { event = None; reads = values })))

(* {2 Locking (Percolator-style 2PL)} *)

(* Percolator-style 2PL: locks are acquired one key at a time in global key
   order (deadlock-free), then reads, then writes committed primary-first
   followed by the secondaries, then per-key unlocks — each a full round
   trip, all while the locks are held.  This is the phase structure (and
   cost) of the paper's locking baseline. *)
let execute_locking t ~reads ~writes_of callback =
  let txn = fresh_txn_id t in
  let keys = List.sort_uniq String.compare reads in
  let sequentially f xs k =
    let rec loop = function
      | [] -> k ()
      | x :: rest -> f x (fun () -> loop rest)
    in
    loop xs
  in
  let lock key k =
    Kv_client.request t.kv ~shard:(shard_addr t key)
      (Kv_msg.Lock { txn; keys = [ key ] })
      (function
        | Kv_msg.Lock_granted -> k ()
        | _ -> invalid_arg "Executor.execute_locking: unexpected response")
  in
  let put (key, value) k =
    Kv_client.request t.kv ~shard:(shard_addr t key)
      (Kv_msg.Put { key; value })
      (fun _ -> k ())
  in
  let unlock key k =
    Kv_client.request t.kv ~shard:(shard_addr t key)
      (Kv_msg.Unlock { txn; keys = [ key ] })
      (fun _ -> k ())
  in
  sequentially lock keys (fun () ->
      read_all t reads (fun values ->
          (* primary-first commit: the first write is the commit point, the
             remaining writes follow sequentially (Percolator) *)
          sequentially put (writes_of values) (fun () ->
              sequentially unlock keys (fun () ->
                  t.committed <- t.committed + 1;
                  callback (Committed { event = None; reads = values })))))

(* {2 Kronos-ordered transactions (Section 3.3)} *)

let execute_kronos t ~reads ~writes_of callback =
  let kronos = Option.get t.kronos in
  let shard_count = Array.length t.shards in
  let rec attempt retries_left =
    let txn = fresh_txn_id t in
    Kronos_service.Client.create_event kronos (fun event ->
        (* no ?timeout was given, so the client retries until it succeeds *)
        let event = match event with Ok e -> e | Error _ -> assert false in
        let groups = Kronos_kvstore.Router.partition ~shards:shard_count reads in
        let total = List.length groups in
        let answered = ref 0 in
        let rejected = ref false in
        let prepared_shards = ref [] in
        let all_constraints = ref [] in
        let all_values = ref [] in
        let decide ~commit ~writes k =
          let remaining = ref (List.length !prepared_shards) in
          if !remaining = 0 then k ()
          else
            List.iter
              (fun shard ->
                let shard_writes =
                  List.filter
                    (fun (key, _) ->
                      Kronos_kvstore.Router.shard_of ~shards:shard_count key = shard)
                    writes
                in
                Kv_client.request t.kv ~shard:t.shards.(shard)
                  (Kv_msg.Decide { txn; commit; writes = shard_writes })
                  (fun _ ->
                    decr remaining;
                    if !remaining = 0 then k ()))
              !prepared_shards
        in
        let abort_and_retry () =
          decide ~commit:false ~writes:[] (fun () ->
              (* the abandoned event has no edges; drop our reference *)
              Kronos_service.Client.release_ref kronos event (fun _ ->
                  if retries_left = 0 then begin
                    t.aborted <- t.aborted + 1;
                    callback Aborted
                  end
                  else begin
                    t.retries <- t.retries + 1;
                    let backoff = 0.3e-3 +. Rng.float t.rng 0.7e-3 in
                    ignore
                      (Sim.schedule t.sim ~delay:backoff (fun () ->
                           attempt (retries_left - 1)))
                  end))
        in
        let commit () =
          let values =
            List.map (fun key -> (key, List.assoc key !all_values)) reads
          in
          let writes = writes_of values in
          let musts =
            List.map
              (fun (before, after) -> Order.must_before before after)
              !all_constraints
          in
          Kronos_service.Client.assign_order kronos musts (function
              | Ok _ ->
                decide ~commit:true ~writes (fun () ->
                    t.committed <- t.committed + 1;
                    t.log <- (event, values, writes) :: t.log;
                    callback (Committed { event = Some event; reads = values }))
              | Error _ ->
                (* cannot happen: every constraint points into the fresh
                   event, so no batch is cyclic — but fail safe *)
                abort_and_retry ())
        in
        let on_prepare_reply shard reply =
          incr answered;
          (match (reply : Kv_msg.response) with
           | Kv_msg.Prepared { constraints; values } ->
             prepared_shards := shard :: !prepared_shards;
             all_constraints := constraints @ !all_constraints;
             all_values := values @ !all_values
           | Kv_msg.Prepare_rejected -> rejected := true
           | _ -> invalid_arg "Executor.execute_kronos: unexpected response");
          if !answered = total then
            if !rejected then abort_and_retry () else commit ()
        in
        List.iter
          (fun (shard, shard_keys) ->
            Kv_client.request t.kv ~shard:t.shards.(shard)
              (Kv_msg.Prepare
                 { txn; event; reads = shard_keys; writes = shard_keys })
              (on_prepare_reply shard))
          groups)
  in
  attempt t.max_retries

let execute t ~reads ~writes_of callback =
  match t.mode with
  | Put_and_pray -> execute_put_and_pray t ~reads ~writes_of callback
  | Locking -> execute_locking t ~reads ~writes_of callback
  | Kronos_ordered -> execute_kronos t ~reads ~writes_of callback

let transfer t tr callback =
  let open Kronos_workload.Bank in
  let from_key = account_key tr.from_account in
  let to_key = account_key tr.to_account in
  let writes_of values =
    let balance key =
      match List.assoc key values with
      | Some v -> int_of_string v
      | None -> 0
    in
    [ (from_key, string_of_int (balance from_key - tr.amount));
      (to_key, string_of_int (balance to_key + tr.amount)) ]
  in
  execute t ~reads:[ from_key; to_key ] ~writes_of callback
