type t = {
  mutable sparse : int array;
  mutable dense : int array;
  mutable ptr : int;
}

(* The arrays deliberately start uninitialized in spirit: Array.make fills
   them with 0, but correctness never depends on the fill value, exactly as in
   the paper's uninitialized-memory construction. *)
let create capacity =
  let capacity = max capacity 1 in
  { sparse = Array.make capacity 0; dense = Array.make capacity 0; ptr = 0 }

let capacity s = Array.length s.sparse
let cardinal s = s.ptr

let check s i =
  if i < 0 || i >= Array.length s.sparse then
    invalid_arg "Sparse_set: element out of range"

let mem s i =
  check s i;
  let slot = Array.unsafe_get s.sparse i in
  slot < s.ptr && Array.unsafe_get s.dense slot = i

let add s i =
  check s i;
  if not (mem s i) then begin
    Array.unsafe_set s.sparse i s.ptr;
    Array.unsafe_set s.dense s.ptr i;
    s.ptr <- s.ptr + 1
  end

let clears = Kronos_metrics.counter (Kronos_metrics.scope "engine") "sparse_set_clears_total"

let clear s =
  Kronos_metrics.Counter.incr clears;
  s.ptr <- 0

let grow s capacity =
  if capacity > Array.length s.sparse then begin
    let sparse = Array.make capacity 0 in
    let dense = Array.make capacity 0 in
    Array.blit s.sparse 0 sparse 0 (Array.length s.sparse);
    Array.blit s.dense 0 dense 0 (Array.length s.dense);
    s.sparse <- sparse;
    s.dense <- dense
  end

let iter f s =
  for slot = 0 to s.ptr - 1 do
    f s.dense.(slot)
  done

let memory_bytes s = 2 * (Array.length s.sparse + 2) * (Sys.word_size / 8)
