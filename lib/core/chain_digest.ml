let length = Sha256.digest_length

(* Identity digests are raw injective encodings, not hashes: 16 bytes of
   domain tag, the 8-byte identifier, 8 zero bytes.  Saves a compression
   on every create_event; collision with a hash output would be a second
   preimage into this tagged sparse subspace. *)
let init_tag = "KRONOS-EVENT-v1\000"

let init id =
  let b = Bytes.make length '\000' in
  Bytes.blit_string init_tag 0 b 0 16;
  Bytes.set_int64_be b 16 (Event_id.to_int64 id);
  Bytes.unsafe_to_string b

(* 12-byte tag + 8-byte id + 32-byte head = 52 bytes: one padded SHA-256
   block, so link_partner costs a single compression too. *)
let link_tag = "KRONOS-LNK1\000"

let link_partner id head =
  if String.length head <> length then
    invalid_arg "Chain_digest.link_partner: bad head length";
  let b = Bytes.create (12 + 8 + length) in
  Bytes.blit_string link_tag 0 b 0 12;
  Bytes.set_int64_be b 12 (Event_id.to_int64 id);
  Bytes.blit_string head 0 b 20 length;
  Sha256.digest_string (Bytes.unsafe_to_string b)

let fold_link head partner = Sha256.compress_pair head partner

let fold head partners = List.fold_left fold_link head partners

let equal (a : string) b = String.equal a b

let to_hex = Sha256.hex

let pp ppf d =
  Format.pp_print_string ppf
    (if String.length d >= 4 then Sha256.hex (String.sub d 0 4) else Sha256.hex d)
