type relation = Before | After | Concurrent | Same

type kind = Must | Prefer

type outcome = Applied | Already | Reversed

type assign_error =
  | Must_violated of int
  | Must_self of int
  | Unknown_event of Event_id.t
  | Guard_failed of int

type direction = Happens_before | Happens_after

type spec = {
  left : Event_id.t;
  direction : direction;
  kind : kind;
  right : Event_id.t;
}

let constrain ~kind ~direction left right = { left; direction; kind; right }
let must_before a b = constrain ~kind:Must ~direction:Happens_before a b
let must_after a b = constrain ~kind:Must ~direction:Happens_after a b
let prefer_before a b = constrain ~kind:Prefer ~direction:Happens_before a b
let prefer_after a b = constrain ~kind:Prefer ~direction:Happens_after a b

let flip_relation = function
  | Before -> After
  | After -> Before
  | Concurrent -> Concurrent
  | Same -> Same

let relation_equal (a : relation) b = a = b
let kind_equal (a : kind) b = a = b
let outcome_equal (a : outcome) b = a = b

let spec_equal a b =
  Event_id.equal a.left b.left
  && a.direction = b.direction
  && a.kind = b.kind
  && Event_id.equal a.right b.right

let assign_error_equal a b =
  match a, b with
  | Must_violated i, Must_violated j -> i = j
  | Must_self i, Must_self j -> i = j
  | Unknown_event e, Unknown_event f -> Event_id.equal e f
  | Guard_failed i, Guard_failed j -> i = j
  | (Must_violated _ | Must_self _ | Unknown_event _ | Guard_failed _), _ ->
    false

let pp_relation ppf = function
  | Before -> Format.pp_print_string ppf "before"
  | After -> Format.pp_print_string ppf "after"
  | Concurrent -> Format.pp_print_string ppf "concurrent"
  | Same -> Format.pp_print_string ppf "same"

let pp_kind ppf = function
  | Must -> Format.pp_print_string ppf "must"
  | Prefer -> Format.pp_print_string ppf "prefer"

let pp_outcome ppf = function
  | Applied -> Format.pp_print_string ppf "applied"
  | Already -> Format.pp_print_string ppf "already"
  | Reversed -> Format.pp_print_string ppf "reversed"

let pp_assign_error ppf = function
  | Must_violated i -> Format.fprintf ppf "must-violated@%d" i
  | Must_self i -> Format.fprintf ppf "must-self@%d" i
  | Unknown_event e -> Format.fprintf ppf "unknown-event:%a" Event_id.pp e
  | Guard_failed i -> Format.fprintf ppf "guard-failed@%d" i

let pp_direction ppf = function
  | Happens_before -> Format.pp_print_string ppf "->"
  | Happens_after -> Format.pp_print_string ppf "<-"

let pp_spec ppf s =
  Format.fprintf ppf "%a %a%a %a" Event_id.pp s.left pp_kind s.kind
    pp_direction s.direction Event_id.pp s.right
