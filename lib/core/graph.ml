(* Process-wide mirrors of the per-graph counters, for the metrics plane.
   A process may host several graphs (tests, sim benches) and the counters
   then aggregate across them; the gauges track whichever graph mutated
   last, which in kronosd is the one replica engine. *)
module M = struct
  let scope = Kronos_metrics.scope "engine"
  let traversals = Kronos_metrics.counter scope "bfs_traversals_total"
  let visited = Kronos_metrics.counter scope "bfs_visited_total"
  let cache_hits = Kronos_metrics.counter scope "traversal_cache_hits_total"
  let rank_relabels = Kronos_metrics.counter scope "rank_relabels_total"
  let rank_pruned = Kronos_metrics.counter scope "rank_pruned_queries_total"
  let bidir = Kronos_metrics.counter scope "bidir_traversals_total"
  let digest_folds = Kronos_metrics.counter scope "digest_folds_total"
  let label_hits = Kronos_metrics.counter scope "label_hits_total"
  let label_misses = Kronos_metrics.counter scope "label_misses_total"
  let label_rebuilds = Kronos_metrics.counter scope "label_rebuilds_total"
  let live = Kronos_metrics.gauge scope "graph_live_events"
  let edges = Kronos_metrics.gauge scope "graph_edges"
  let chains = Kronos_metrics.gauge scope "graph_chains"
end

(* One commitment-chain link, recorded when an edge into this event was
   admitted (DESIGN.md §13).  Immutable once pushed; only batch rollback
   pops it again. *)
type link = {
  l_pred : Event_id.t;    (* predecessor identifier at link time *)
  l_pred_head : string;   (* predecessor chain head at link time *)
  l_pred_pos : int;       (* predecessor link count at link time *)
  l_partner : string;     (* Chain_digest.link_partner l_pred l_pred_head *)
  l_head : string;        (* this event's head after folding this link *)
}

let dummy_link =
  { l_pred = Event_id.none; l_pred_head = ""; l_pred_pos = 0;
    l_partner = ""; l_head = "" }

(* A deeply immutable copy of the graph's query-visible state, safe to
   share across domains (see [freeze]).  Flat int arrays are private copies;
   the per-slot adjacency and chain arrays are immutable and may be shared
   structurally with other frozen views of the same graph. *)
type frozen = {
  f_version : int;
  f_next_slot : int;
  f_live : int;
  f_edges : int;
  f_refcount : int array;
  f_gen : int array;
  f_rank : int array;
  f_succ : int array array;
  f_pred : int array array;
  f_digests : bool;
  f_chains : link array array;
  (* chain-decomposition index (DESIGN.md §15): flat arrays are private
     copies, the per-slot label arrays are immutable and shared
     structurally like adjacency *)
  f_chain_of : int array;
  f_chain_pos : int array;
  f_labels : int array array;
}

(* One entry of the per-edge rollback journal for the chain-decomposition
   index.  [push_edge] opens a group with [J_mark]; [remove_last_edge] pops
   the topmost group, restoring the exact pre-edge chains and labels.
   [commit_batch] (and any non-batch mutation) truncates the journal. *)
type label_undo =
  | J_mark of int * int          (* (su, sv) of the admitted edge *)
  | J_label of int * int array   (* slot, previous label array *)
  | J_assign of int * int * int  (* slot appended: slot, chain, prev tail *)
  | J_chain of int * bool        (* chain allocated: id, came from free list *)

type t = {
  mutable refcount : int array;  (* -1 marks a free slot *)
  mutable gen : int array;       (* generation of the current/next tenant *)
  mutable indeg : int array;
  mutable succ : Int_vec.t array;
  mutable pred : Int_vec.t array; (* reverse adjacency, for backward BFS *)
  free : Int_vec.t;              (* stack of reusable slots *)
  mutable next_slot : int;       (* high-water mark of ever-used slots *)
  mutable live : int;
  mutable edges : int;
  (* Topological rank index (Pearce–Kelly / Haeupler–Sen–Tarjan style):
     every edge u -> v satisfies rank.(u) < rank.(v), hence by transitivity
     u ⇝ v implies rank.(u) < rank.(v).  Ranks are sparse integers (not a
     dense permutation): fresh events take increasing ranks from
     [next_rank], and an edge insertion that violates the order relabels
     only the affected region forward of the new target.  The contrapositive
     answers reachability negatively in O(1) and bounds every traversal to
     the open rank window (rank src, rank dst). *)
  mutable rank : int array;
  mutable next_rank : int;       (* strictly above every live rank *)
  mutable visited : Sparse_set.t;
  mutable queue : int array;     (* forward BFS frontier, capacity slots *)
  mutable visited_b : Sparse_set.t;
  mutable queue_b : int array;   (* backward BFS frontier *)
  relabel_stack : Int_vec.t;     (* (slot, floor) pairs, flattened *)
  mutable traversals : int;
  mutable visited_total : int;
  mutable rank_relabels : int;
  mutable rank_pruned : int;
  mutable bidir_traversals : int;
  (* Positive reachability memo (Section 2.5 of the paper: "Kronos can
     maintain an internal cache of traversal results").  Only reachable=true
     results may be cached: monotonicity makes them stable forever, while a
     negative result can be invalidated by any later edge.  Keys carry
     generations, so slot reuse can never resurrect an entry. *)
  reach_cache : (Event_id.t * Event_id.t, unit) Hashtbl.t;
  reach_cache_capacity : int;  (* 0 disables caching *)
  mutable reach_cache_hits : int;
  (* Commitment chains (DESIGN.md §13).  Per live slot, the ordered list of
     links folded into the event's chain, one per admitted incoming edge;
     the event's commitment is the head of the last link (or its identity
     digest while the chain is empty).  Identity digests are recomputed
     from the identifier on demand — they encode (slot, gen) injectively —
     so only the links need storing. *)
  digests : bool;
  mutable chains : link Vec.t array;
  mutable digest_folds : int;
  (* Epoch counter for the multicore query plane (DESIGN.md §14): bumped on
     every mutation a read view could observe (event creation, collection,
     edge admission/rollback) and never on invisible ones (refcount moves
     that do not collect).  [dirty] tracks the slots whose per-slot arrays
     (succ/pred/chains) changed since the last [freeze], so a freeze copies
     only those and shares the rest with the previous frozen view. *)
  mutable version : int;
  dirty : Sparse_set.t;
  (* [snap_dirty] tracks slots whose {e snapshot-visible} per-slot state
     (refcount, generation, rank, adjacency, chains, chain assignment)
     changed since the last durable snapshot — a superset of [dirty]'s
     view-visible notion, because refcount moves and rank relabels matter
     to a restore even though frozen views never see them.  Consumed
     explicitly by [snapshot_written] (after the write is durable), never
     by [freeze]. *)
  snap_dirty : Sparse_set.t;
  mutable frozen_cache : frozen option;
  (* Chain-decomposition reachability index (DESIGN.md §15).  Live events
     are partitioned greedily into at most [max_chains] chains at edge
     time; every member of a chain reaches all later members (consecutive
     members are joined by a direct edge).  [labels.(s)] is a flattened,
     chain-sorted vector of (chain, pos) pairs: the {e lowest} position in
     each chain reachable from [s] (self included), so [u ⇝ v] iff
     [labels.(u)] holds an entry for [chain_of.(v)] with pos <=
     [chain_pos.(v)].  Labels are exact — kept so by merge propagation on
     edge admission and by the journal on rollback — hence both answers of
     a query are O(#chains) compares whenever the destination is assigned
     to a chain; only cap saturation forces the BFS fallback.  Label
     arrays are immutable once installed (replaced, never mutated), so
     frozen views share them structurally. *)
  max_chains : int;
  mutable chain_of : int array;   (* per slot; -1 = unassigned *)
  mutable chain_pos : int array;  (* per slot; valid when chain_of >= 0 *)
  chain_len : Int_vec.t;          (* per chain: members ever appended *)
  chain_live : Int_vec.t;         (* per chain: live members *)
  chain_tail : Int_vec.t;         (* per chain: newest member, -1 if empty *)
  free_chains : Int_vec.t;        (* fully-dead chains, reusable *)
  mutable labels : int array array;
  mutable journal : label_undo list;
  label_queue : Int_vec.t;        (* label propagation worklist *)
  mutable label_buf : int array;  (* merge scratch *)
  mutable label_hits : int;
  mutable label_misses : int;
  mutable label_rebuilds : int;
}

let max_gen = (1 lsl 22) - 1

let default_max_chains = 64

let create ?(initial_capacity = 1024) ?(traversal_cache = 0) ?(digests = true)
    ?(max_chains = default_max_chains) () =
  let cap = max initial_capacity 16 in
  {
    max_chains = max 0 max_chains;
    chain_of = Array.make cap (-1);
    chain_pos = Array.make cap 0;
    chain_len = Int_vec.create ();
    chain_live = Int_vec.create ();
    chain_tail = Int_vec.create ();
    free_chains = Int_vec.create ();
    labels = Array.make cap [||];
    journal = [];
    label_queue = Int_vec.create ();
    label_buf = Array.make 64 0;
    label_hits = 0;
    label_misses = 0;
    label_rebuilds = 0;
    reach_cache = Hashtbl.create (max 16 (min traversal_cache 4096));
    reach_cache_capacity = max 0 traversal_cache;
    reach_cache_hits = 0;
    digests;
    chains = Array.init cap (fun _ -> Vec.create ~dummy:dummy_link ());
    digest_folds = 0;
    refcount = Array.make cap (-1);
    gen = Array.make cap 0;
    indeg = Array.make cap 0;
    succ = Array.init cap (fun _ -> Int_vec.create ~capacity:2 ());
    pred = Array.init cap (fun _ -> Int_vec.create ~capacity:2 ());
    free = Int_vec.create ();
    next_slot = 0;
    live = 0;
    edges = 0;
    rank = Array.make cap 0;
    next_rank = 0;
    visited = Sparse_set.create cap;
    queue = Array.make cap 0;
    visited_b = Sparse_set.create cap;
    queue_b = Array.make cap 0;
    relabel_stack = Int_vec.create ();
    traversals = 0;
    visited_total = 0;
    rank_relabels = 0;
    rank_pruned = 0;
    bidir_traversals = 0;
    version = 0;
    dirty = Sparse_set.create cap;
    snap_dirty = Sparse_set.create cap;
    frozen_cache = None;
  }

let capacity g = Array.length g.refcount
let live_count g = g.live
let edge_count g = g.edges
let traversal_count g = g.traversals
let visited_total g = g.visited_total
let traversal_cache_hits g = g.reach_cache_hits
let rank_relabel_count g = g.rank_relabels
let rank_pruned_count g = g.rank_pruned
let bidir_traversal_count g = g.bidir_traversals
let digests_enabled g = g.digests
let digest_fold_count g = g.digest_folds
let label_hit_count g = g.label_hits
let label_miss_count g = g.label_misses
let label_rebuild_count g = g.label_rebuilds
let max_chains g = g.max_chains
let chain_count g = Int_vec.length g.chain_len - Int_vec.length g.free_chains

let grow g =
  let old = capacity g in
  let cap = 2 * old in
  let copy a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  g.refcount <- copy g.refcount (-1);
  g.gen <- copy g.gen 0;
  g.indeg <- copy g.indeg 0;
  g.rank <- copy g.rank 0;
  let grow_adj adj =
    Array.init cap (fun i ->
      if i < old then adj.(i) else Int_vec.create ~capacity:2 ())
  in
  g.succ <- grow_adj g.succ;
  g.pred <- grow_adj g.pred;
  g.chains <-
    Array.init cap (fun i ->
      if i < old then g.chains.(i) else Vec.create ~dummy:dummy_link ());
  g.chain_of <- copy g.chain_of (-1);
  g.chain_pos <- copy g.chain_pos 0;
  let labels = Array.make cap [||] in
  Array.blit g.labels 0 labels 0 old;
  g.labels <- labels;
  Sparse_set.grow g.visited cap;
  Sparse_set.grow g.visited_b cap;
  Sparse_set.grow g.dirty cap;
  Sparse_set.grow g.snap_dirty cap;
  g.queue <- Array.make cap 0;
  g.queue_b <- Array.make cap 0

let version g = g.version

(* Record a view-visible mutation of slot [s]: its per-slot arrays must be
   re-copied by the next [freeze] instead of shared with the previous one.
   Every view-visible change is also snapshot-visible. *)
let touch g s =
  Sparse_set.add g.dirty s;
  Sparse_set.add g.snap_dirty s

(* Record a snapshot-visible but view-invisible mutation of slot [s]:
   refcount moves that do not collect, and rank relabels.  These never
   force a freeze re-copy, but the next incremental snapshot must carry
   the slot. *)
let touch_snap g s = Sparse_set.add g.snap_dirty s

(* Resolve an identifier to its slot, checking liveness and generation. *)
let resolve g id =
  let s = Event_id.slot id in
  if id <> Event_id.none
     && s < g.next_slot
     && g.refcount.(s) >= 0
     && g.gen.(s) = Event_id.gen id
  then Some s
  else None

let id_of_slot g s = Event_id.make ~slot:s ~gen:g.gen.(s)

let create_event g =
  let s =
    if not (Int_vec.is_empty g.free) then Int_vec.pop g.free
    else begin
      if g.next_slot = capacity g then grow g;
      let s = g.next_slot in
      g.next_slot <- s + 1;
      s
    end
  in
  g.refcount.(s) <- 1;
  g.indeg.(s) <- 0;
  Int_vec.clear g.succ.(s);
  Int_vec.clear g.pred.(s);
  Vec.clear g.chains.(s);
  g.chain_of.(s) <- -1;
  g.labels.(s) <- [||];
  (* creation is never part of an edge batch: seal any previous journal *)
  g.journal <- [];
  (* fresh events take increasing ranks, so edges that follow creation
     order — the common case — never trigger a relabel *)
  g.rank.(s) <- g.next_rank;
  g.next_rank <- g.next_rank + 1;
  g.live <- g.live + 1;
  g.version <- g.version + 1;
  touch g s;
  Kronos_metrics.Gauge.set M.live g.live;
  id_of_slot g s

let is_live g id = resolve g id <> None

let refcount g id =
  match resolve g id with Some s -> Some g.refcount.(s) | None -> None

let acquire_ref g id =
  match resolve g id with
  | Some s ->
    g.refcount.(s) <- g.refcount.(s) + 1;
    touch_snap g s;
    true
  | None -> false

let rank g id =
  match resolve g id with Some s -> Some g.rank.(s) | None -> None

(* Reclaim the cascade of vertices reachable from slot [s] that have zero
   references and zero in-degree.  Uses the BFS queue as a work stack: safe
   because collection never runs concurrently with a traversal.  Removing
   vertices and edges only removes paths, so the rank invariant survives
   collection untouched; the freed slot keeps its stale rank until
   [create_event] overwrites it. *)
let collect g s =
  g.version <- g.version + 1;
  g.journal <- []; (* collection never runs mid-batch *)
  let stack = g.queue in
  let top = ref 0 in
  stack.(0) <- s;
  incr top;
  let collected = ref 0 in
  while !top > 0 do
    decr top;
    let u = stack.(!top) in
    g.refcount.(u) <- (-1);
    g.live <- g.live - 1;
    incr collected;
    touch g u;
    let kill w =
      g.indeg.(w) <- g.indeg.(w) - 1;
      g.edges <- g.edges - 1;
      ignore (Int_vec.remove_first g.pred.(w) u);
      touch g w;
      if g.indeg.(w) = 0 && g.refcount.(w) = 0 then begin
        stack.(!top) <- w;
        incr top
      end
    in
    Int_vec.iter kill g.succ.(u);
    Int_vec.clear g.succ.(u);
    Int_vec.clear g.pred.(u);
    (* Chain links of still-live successors keep referencing this event by
       identifier + head, so certificates through committed history stay
       checkable; only this event's own chain is dropped. *)
    Vec.clear g.chains.(u);
    (* Retire the slot from the chain-decomposition index.  Members die in
       position order (strict topological GC reclaims predecessors first),
       so a chain empties prefix-first and is recycled only once wholly
       dead; and no surviving label can point at a dead member — a label
       entry witnesses ancestorship, and ancestors are collected first. *)
    (let c = g.chain_of.(u) in
     if c >= 0 then begin
       g.chain_of.(u) <- -1;
       let remaining = Int_vec.get g.chain_live c - 1 in
       Int_vec.set g.chain_live c remaining;
       if remaining = 0 then begin
         Int_vec.set g.chain_len c 0;
         Int_vec.set g.chain_tail c (-1);
         Int_vec.push g.free_chains c
       end
     end);
    g.labels.(u) <- [||];
    (* Retire the slot permanently if its generation space is exhausted. *)
    if g.gen.(u) < max_gen then begin
      g.gen.(u) <- g.gen.(u) + 1;
      Int_vec.push g.free u
    end
  done;
  Kronos_metrics.Gauge.set M.live g.live;
  Kronos_metrics.Gauge.set M.edges g.edges;
  !collected

let release_ref g id =
  match resolve g id with
  | None -> None
  | Some s when g.refcount.(s) = 0 ->
    (* zero references: the caller holds no handle to release (the event is
       only pinned by the graph itself) — treat like a stale identifier *)
    None
  | Some s ->
    g.refcount.(s) <- g.refcount.(s) - 1;
    touch_snap g s;
    if g.refcount.(s) = 0 && g.indeg.(s) = 0 then Some (collect g s)
    else Some 0

(* ------------------------------------------------------------------ *)
(* Chain-decomposition reachability labels (DESIGN.md §15).            *)
(* ------------------------------------------------------------------ *)

(* Position of chain [c] in the flattened, chain-sorted label vector;
   [max_int] when the event reaches no member of [c].  Labels hold at most
   one entry per chain, so the scan is O(#chains) with a tiny constant. *)
let label_find lbl c =
  let n = Array.length lbl in
  let rec go i =
    if i >= n then max_int
    else
      let ci = lbl.(i) in
      if ci = c then lbl.(i + 1) else if ci > c then max_int else go (i + 2)
  in
  go 0

(* [u ⇝ v] for a label of [u] and a chain-assigned [v]: exact labels hold
   the lowest reachable position per chain, so reaching any member at or
   below [pos] decides the query in both directions. *)
let label_le lbl c pos = label_find lbl c <= pos

let ensure_label_buf g n =
  if Array.length g.label_buf < n then
    g.label_buf <- Array.make (max n (2 * Array.length g.label_buf)) 0;
  g.label_buf

(* Replace a slot's label.  The old array goes to the journal so rollback
   restores it by pointer; [touch] makes the next freeze re-share it. *)
let set_label g s lbl =
  g.journal <- J_label (s, g.labels.(s)) :: g.journal;
  g.labels.(s) <- lbl;
  touch g s

(* Pointwise-min union of [src] into slot [s]'s label.  Returns [true] iff
   the label changed (some entry decreased or appeared) — the propagation
   worklist only follows actual changes, which also bounds the cascade:
   entries decrease monotonically toward 0. *)
let merge_into g s src =
  let a = g.labels.(s) in
  let la = Array.length a and lb = Array.length src in
  if lb = 0 then false
  else begin
    let buf = ensure_label_buf g (la + lb) in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    let changed = ref false in
    while !i < la && !j < lb do
      let ca = a.(!i) and cb = src.(!j) in
      if ca < cb then begin
        buf.(!k) <- ca;
        buf.(!k + 1) <- a.(!i + 1);
        i := !i + 2;
        k := !k + 2
      end
      else if cb < ca then begin
        buf.(!k) <- cb;
        buf.(!k + 1) <- src.(!j + 1);
        j := !j + 2;
        k := !k + 2;
        changed := true
      end
      else begin
        let pa = a.(!i + 1) and pb = src.(!j + 1) in
        buf.(!k) <- ca;
        buf.(!k + 1) <-
          (if pb < pa then begin changed := true; pb end else pa);
        i := !i + 2;
        j := !j + 2;
        k := !k + 2
      end
    done;
    while !i < la do
      buf.(!k) <- a.(!i);
      buf.(!k + 1) <- a.(!i + 1);
      i := !i + 2;
      k := !k + 2
    done;
    while !j < lb do
      buf.(!k) <- src.(!j);
      buf.(!k + 1) <- src.(!j + 1);
      j := !j + 2;
      k := !k + 2;
      changed := true
    done;
    if !changed then set_label g s (Array.sub buf 0 !k);
    !changed
  end

(* Allocate a chain: reuse a wholly-dead one first, mint a new id under the
   cap, or give up (-1) once saturated. *)
let alloc_chain g =
  if not (Int_vec.is_empty g.free_chains) then begin
    let c = Int_vec.pop g.free_chains in
    g.journal <- J_chain (c, true) :: g.journal;
    c
  end
  else if Int_vec.length g.chain_len >= g.max_chains then -1
  else begin
    let c = Int_vec.length g.chain_len in
    Int_vec.push g.chain_len 0;
    Int_vec.push g.chain_live 0;
    Int_vec.push g.chain_tail (-1);
    g.journal <- J_chain (c, false) :: g.journal;
    c
  end

(* Append slot [s] to chain [c] and give it its self entry.  Only ever
   called when [s] can close the chain property: either [c]'s current tail
   has a direct edge to [s] (admitted by the caller), or [c] is empty. *)
let assign_slot g s c =
  let pos = Int_vec.get g.chain_len c in
  g.journal <- J_assign (s, c, Int_vec.get g.chain_tail c) :: g.journal;
  g.chain_of.(s) <- c;
  g.chain_pos.(s) <- pos;
  Int_vec.set g.chain_len c (pos + 1);
  Int_vec.set g.chain_live c (Int_vec.get g.chain_live c + 1);
  Int_vec.set g.chain_tail c s;
  (* self entry: min-merge is safe — [s] cannot already reach an earlier
     member of [c] (that member would reach the tail, which reaches [s],
     closing a cycle) *)
  ignore (merge_into g s [| c; pos |]);
  Kronos_metrics.Gauge.set M.chains
    (Int_vec.length g.chain_len - Int_vec.length g.free_chains)

(* Maintain the index across an admitted edge [su -> sv]: place [sv] on a
   chain if it has none (extending [su]'s chain when [su] is its tail — the
   in-creation-order common case — else opening a chain, pairing an
   unassigned [su] in), then restore label exactness by propagating every
   decreased entry backward over predecessors.  The chain-append fast path
   propagates nothing beyond [sv]'s own predecessors: every ancestor
   already reaches the chain at a lower position. *)
let label_admit g su sv =
  g.journal <- J_mark (su, sv) :: g.journal;
  let sv_assigned = ref false in
  let su_assigned = ref false in
  if g.chain_of.(sv) < 0 then begin
    let cu = g.chain_of.(su) in
    if cu >= 0 && Int_vec.get g.chain_tail cu = su then begin
      assign_slot g sv cu;
      sv_assigned := true
    end
    else begin
      let c = alloc_chain g in
      if c >= 0 then begin
        if cu < 0 then begin
          assign_slot g su c;
          su_assigned := true
        end;
        assign_slot g sv c;
        sv_assigned := true
      end
      (* saturated: [sv] stays unassigned; queries to it fall back to BFS *)
    end
  end;
  let su_changed = merge_into g su g.labels.(sv) || !su_assigned in
  let q = g.label_queue in
  Int_vec.clear q;
  (* a newly assigned [sv] may already have other predecessors (it went
     unassigned through a saturated period): all of them must learn its
     self entry, not just [su] *)
  if !sv_assigned then Int_vec.push q sv;
  if su_changed then Int_vec.push q su;
  while not (Int_vec.is_empty q) do
    let w = Int_vec.pop q in
    let lbl = g.labels.(w) in
    Int_vec.iter (fun p -> if merge_into g p lbl then Int_vec.push q p)
      g.pred.(w)
  done

(* Seal the per-edge rollback journal: the batch the edges belonged to has
   committed, [remove_last_edge] can no longer be asked to undo them. *)
let commit_batch g = g.journal <- []

(* Exact label recomputation: live slots in decreasing (rank, slot) order —
   reverse topological by the rank invariant — each taking its self entry
   plus the min-union of its direct successors' finished labels.  Exact
   labels are a pure function of (adjacency, chain assignment), which is
   why snapshots persist only the chains: every restore recomputes
   bit-identical labels. *)
let compute_labels g =
  g.label_rebuilds <- g.label_rebuilds + 1;
  Kronos_metrics.Counter.incr M.label_rebuilds;
  let n = g.next_slot in
  let order = ref [] in
  for s = 0 to n - 1 do
    if g.refcount.(s) >= 0 then order := s :: !order
  done;
  let order = Array.of_list !order in
  Array.sort
    (fun a b ->
      let c = compare g.rank.(a) g.rank.(b) in
      if c <> 0 then c else compare a b)
    order;
  for i = Array.length order - 1 downto 0 do
    let v = order.(i) in
    g.labels.(v) <- [||];
    touch g v;
    if g.chain_of.(v) >= 0 then
      ignore (merge_into g v [| g.chain_of.(v); g.chain_pos.(v) |]);
    Int_vec.iter (fun w -> ignore (merge_into g v g.labels.(w))) g.succ.(v)
  done;
  g.journal <- [] (* recomputation is never part of a batch *)

(* Deterministic full rebuild (restores of captures without a chain
   section, and the defensive out-of-protocol rollback path): canonical
   greedy chain assignment over live slots in (rank, slot) order — extend
   the first predecessor that is its chain's tail, else open a chain until
   the cap — then exact labels.  A function of adjacency and ranks alone,
   so replicas restoring the same capture agree. *)
let rebuild_label_index g =
  Int_vec.clear g.chain_len;
  Int_vec.clear g.chain_live;
  Int_vec.clear g.chain_tail;
  Int_vec.clear g.free_chains;
  g.journal <- [];
  let n = g.next_slot in
  let order = ref [] in
  for s = 0 to n - 1 do
    g.chain_of.(s) <- -1;
    if g.refcount.(s) >= 0 then order := s :: !order
  done;
  let order = Array.of_list !order in
  Array.sort
    (fun a b ->
      let c = compare g.rank.(a) g.rank.(b) in
      if c <> 0 then c else compare a b)
    order;
  Array.iter
    (fun v ->
      let c = ref (-1) in
      Int_vec.iter
        (fun p ->
          if !c < 0 then begin
            let cp = g.chain_of.(p) in
            if cp >= 0 && Int_vec.get g.chain_tail cp = p then c := cp
          end)
        g.pred.(v);
      if !c < 0 then c := alloc_chain g;
      if !c >= 0 then begin
        (* bare append: self entries come with compute_labels below *)
        let pos = Int_vec.get g.chain_len !c in
        g.chain_of.(v) <- !c;
        g.chain_pos.(v) <- pos;
        Int_vec.set g.chain_len !c (pos + 1);
        Int_vec.set g.chain_live !c (Int_vec.get g.chain_live !c + 1);
        Int_vec.set g.chain_tail !c v
      end)
    order;
  Kronos_metrics.Gauge.set M.chains
    (Int_vec.length g.chain_len - Int_vec.length g.free_chains);
  compute_labels g

(* Rank-pruned bidirectional BFS over slots; allocation-free thanks to the
   preallocated sparse sets and queues.  Degree guards make the common
   fresh-event cases O(1): a source with no outgoing edge reaches nothing, a
   destination with no incoming edge is unreachable.

   The search is level-synchronous on both sides and each round expands the
   smaller frontier.  Levels are expanded completely even once a meeting
   point is found: the visited sets then depend only on the {e sets} of
   edges, not on adjacency-list order, which keeps [visited_total]
   deterministic across snapshot restores (reverse adjacency is rebuilt in
   slot order there, losing the original interleaving).

   Work accounting: every traversal adds to [visited_total] the number of
   distinct slots inserted into a visited set, endpoints included (the
   source and destination seed their sides, fixing the historical
   undercount of the destination on found paths). *)
let reachable_slots g src dst =
  if src = dst then true
  else begin
    let rlo = g.rank.(src) and rhi = g.rank.(dst) in
    if rlo >= rhi then false
    else if Int_vec.is_empty g.succ.(src) || g.indeg.(dst) = 0 then false
    else begin
      g.traversals <- g.traversals + 1;
      Kronos_metrics.Counter.incr M.traversals;
      let vf = g.visited and vb = g.visited_b in
      Sparse_set.clear vf;
      Sparse_set.clear vb;
      Sparse_set.add vf src;
      Sparse_set.add vb dst;
      let qf = g.queue and qb = g.queue_b in
      qf.(0) <- src;
      qb.(0) <- dst;
      let fh = ref 0 and ft = ref 1 in  (* forward level = qf.[fh..ft) *)
      let bh = ref 0 and bt = ref 1 in
      let found = ref false in
      let expand_forward () =
        let lo = !fh and hi = !ft in
        fh := hi;
        for i = lo to hi - 1 do
          let visit w =
            if Sparse_set.mem vb w then found := true
            else if (not (Sparse_set.mem vf w))
                    && g.rank.(w) > rlo && g.rank.(w) < rhi
            then begin
              Sparse_set.add vf w;
              qf.(!ft) <- w;
              incr ft
            end
          in
          Int_vec.iter visit g.succ.(qf.(i))
        done
      in
      let expand_backward () =
        g.bidir_traversals <- g.bidir_traversals + 1;
        Kronos_metrics.Counter.incr M.bidir;
        let lo = !bh and hi = !bt in
        bh := hi;
        for i = lo to hi - 1 do
          let visit w =
            if Sparse_set.mem vf w then found := true
            else if (not (Sparse_set.mem vb w))
                    && g.rank.(w) > rlo && g.rank.(w) < rhi
            then begin
              Sparse_set.add vb w;
              qb.(!bt) <- w;
              incr bt
            end
          in
          Int_vec.iter visit g.pred.(qb.(i))
        done
      in
      while (not !found) && !fh < !ft && !bh < !bt do
        if !ft - !fh <= !bt - !bh then expand_forward ()
        else expand_backward ()
      done;
      let visited = Sparse_set.cardinal vf + Sparse_set.cardinal vb in
      g.visited_total <- g.visited_total + visited;
      Kronos_metrics.Counter.add M.visited visited;
      !found
    end
  end

let cache_reachable g u v su sv =
  if Hashtbl.mem g.reach_cache (u, v) then begin
    g.reach_cache_hits <- g.reach_cache_hits + 1;
    Kronos_metrics.Counter.incr M.cache_hits;
    true
  end
  else begin
    let found = reachable_slots g su sv in
    if found then begin
      (* full: drop everything rather than track recency — the memo refills
         from the hot working set almost immediately *)
      if Hashtbl.length g.reach_cache >= g.reach_cache_capacity then
        Hashtbl.reset g.reach_cache;
      Hashtbl.replace g.reach_cache (u, v) ()
    end;
    found
  end

(* A negative answer by rank comparison alone: u ⇝ v requires
   rank u < rank v, so rank u >= rank v (distinct slots) refutes it in O(1)
   without consulting the memo (which only holds positive facts).  When the
   destination sits on a chain, the label compare answers the remaining
   direction — both ways — in O(#chains); only an unassigned destination
   (chain cap saturated, or no admitted in-edge) falls back to the
   memo/BFS path. *)
let reachable_ids g u v su sv =
  if su = sv then false
  else if g.rank.(su) >= g.rank.(sv) then begin
    g.rank_pruned <- g.rank_pruned + 1;
    Kronos_metrics.Counter.incr M.rank_pruned;
    false
  end
  else begin
    let c = g.chain_of.(sv) in
    if c >= 0 then begin
      g.label_hits <- g.label_hits + 1;
      Kronos_metrics.Counter.incr M.label_hits;
      label_le g.labels.(su) c g.chain_pos.(sv)
    end
    else begin
      g.label_misses <- g.label_misses + 1;
      Kronos_metrics.Counter.incr M.label_misses;
      if g.reach_cache_capacity = 0 then reachable_slots g su sv
      else cache_reachable g u v su sv
    end
  end

(* Label-only probe for provers and planners: [Some ans] when rank or label
   decides [u ⇝ v] without traversing, [None] when only a BFS could tell.
   Deliberately counter-free — a prover consults it per candidate edge and
   would otherwise drown the query-path hit-rate signal. *)
let label_reachable g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    if su = sv then Some false
    else if g.rank.(su) >= g.rank.(sv) then Some false
    else begin
      let c = g.chain_of.(sv) in
      if c >= 0 then Some (label_le g.labels.(su) c g.chain_pos.(sv))
      else None
    end
  | (None | Some _), _ -> Some false

let reachable g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv -> reachable_ids g u v su sv
  | (None | Some _), _ -> false

(* The rank comparison eliminates at least one BFS direction of every query
   outright: at most one of e1 ⇝ e2 / e2 ⇝ e1 is compatible with the rank
   order, and with equal ranks (distinct slots) both are refuted. *)
let query g e1 e2 =
  match resolve g e1, resolve g e2 with
  | None, _ -> Error e1
  | _, None -> Error e2
  | Some s1, Some s2 ->
    if s1 = s2 then Ok Order.Same
    else begin
      let r1 = g.rank.(s1) and r2 = g.rank.(s2) in
      let prune n =
        g.rank_pruned <- g.rank_pruned + n;
        Kronos_metrics.Counter.add M.rank_pruned n
      in
      if r1 < r2 then begin
        prune 1;
        if reachable_ids g e1 e2 s1 s2 then Ok Order.Before
        else Ok Order.Concurrent
      end
      else if r2 < r1 then begin
        prune 1;
        if reachable_ids g e2 e1 s2 s1 then Ok Order.After
        else Ok Order.Concurrent
      end
      else begin
        prune 2;
        Ok Order.Concurrent
      end
    end

(* Chain head of slot [s] after its first [n] links (n = length for the
   current commitment).  n = 0 is the identity digest, recomputed from the
   identifier rather than stored. *)
let head_at_slot g s n =
  if n = 0 then Chain_digest.init (id_of_slot g s)
  else (Vec.get g.chains.(s) (n - 1)).l_head

(* Fold one commitment link for the admitted edge su -> sv: two SHA-256
   compressions (partner digest + chain fold). *)
let fold_edge g su sv =
  let pred_id = id_of_slot g su in
  let pred_pos = Vec.length g.chains.(su) in
  let pred_head = head_at_slot g su pred_pos in
  let partner = Chain_digest.link_partner pred_id pred_head in
  let head =
    Chain_digest.fold_link (head_at_slot g sv (Vec.length g.chains.(sv)))
      partner
  in
  Vec.push g.chains.(sv)
    { l_pred = pred_id; l_pred_head = pred_head; l_pred_pos = pred_pos;
      l_partner = partner; l_head = head };
  g.digest_folds <- g.digest_folds + 2;
  Kronos_metrics.Counter.add M.digest_folds 2

let push_edge g su sv =
  Int_vec.push g.succ.(su) sv;
  Int_vec.push g.pred.(sv) su;
  g.indeg.(sv) <- g.indeg.(sv) + 1;
  g.edges <- g.edges + 1;
  g.version <- g.version + 1;
  touch g su;
  touch g sv;
  if g.digests then fold_edge g su sv;
  label_admit g su sv;
  Kronos_metrics.Gauge.set M.edges g.edges

(* Restricted cycle probe for an edge su -> sv arriving with
   rank su >= rank sv: sv ⇝ su would close a cycle, and by the rank
   invariant any such path stays within rank <= rank su, so a forward BFS
   from sv bounded by that ceiling is exact.  Read-only; counts as a
   traversal (it replaces the full reachability probe the engine used to
   run before every must edge). *)
let cycle_probe g sv su =
  g.traversals <- g.traversals + 1;
  Kronos_metrics.Counter.incr M.traversals;
  let ceiling = g.rank.(su) in
  let visited = g.visited in
  Sparse_set.clear visited;
  Sparse_set.add visited sv;
  let queue = g.queue in
  queue.(0) <- sv;
  let head = ref 0 and tail = ref 1 in
  let found = ref false in
  while (not !found) && !head < !tail do
    let u = queue.(!head) in
    incr head;
    let visit w =
      if not (Sparse_set.mem visited w) then begin
        if w = su then begin
          found := true;
          (* count the discovered endpoint, mirroring the bidirectional
             search where both endpoints are seeded *)
          Sparse_set.add visited w
        end
        else if g.rank.(w) <= ceiling then begin
          Sparse_set.add visited w;
          queue.(!tail) <- w;
          incr tail
        end
      end
    in
    Int_vec.iter visit g.succ.(u)
  done;
  let visited_n = Sparse_set.cardinal visited in
  g.visited_total <- g.visited_total + visited_n;
  Kronos_metrics.Counter.add M.visited visited_n;
  !found

(* Restore the invariant after admitting an edge whose target ranked at or
   below its source: push every forward path out of [sv] strictly above
   [floor].  Depth-first on an explicit stack of (slot, floor) pairs; a slot
   is re-examined only when a later visit raises its floor, so the work is
   confined to the affected region (Pearce–Kelly's discovery set).  The
   caller has already refuted a cycle, so the cascade terminates. *)
let relabel g sv floor =
  g.rank_relabels <- g.rank_relabels + 1;
  Kronos_metrics.Counter.incr M.rank_relabels;
  let stack = g.relabel_stack in
  Int_vec.clear stack;
  Int_vec.push stack sv;
  Int_vec.push stack floor;
  while not (Int_vec.is_empty stack) do
    let floor = Int_vec.pop stack in
    let w = Int_vec.pop stack in
    if g.rank.(w) <= floor then begin
      let r = floor + 1 in
      g.rank.(w) <- r;
      touch_snap g w;
      if r >= g.next_rank then g.next_rank <- r + 1;
      Int_vec.iter
        (fun x ->
          Int_vec.push stack x;
          Int_vec.push stack r)
        g.succ.(w)
    end
  done

let try_add_edge g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    if su = sv then false
    else if g.rank.(su) < g.rank.(sv) then begin
      (* ranks already agree: v ⇝ u is impossible, no cycle, O(1) *)
      push_edge g su sv;
      true
    end
    else if cycle_probe g sv su then false
    else begin
      relabel g sv g.rank.(su);
      push_edge g su sv;
      true
    end
  | (None | Some _), _ -> invalid_arg "Graph.try_add_edge: stale event"

let add_edge g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    if su = sv then invalid_arg "Graph.add_edge: self edge";
    if g.rank.(su) < g.rank.(sv) then push_edge g su sv
    else if cycle_probe g sv su then
      invalid_arg "Graph.add_edge: edge would close a cycle"
    else begin
      relabel g sv g.rank.(su);
      push_edge g su sv
    end
  | (None | Some _), _ -> invalid_arg "Graph.add_edge: stale event"

let remove_last_edge g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    if Int_vec.is_empty g.succ.(su) || Int_vec.last g.succ.(su) <> sv then
      invalid_arg "Graph.remove_last_edge: not the last edge";
    ignore (Int_vec.pop g.succ.(su));
    ignore (Int_vec.remove_first g.pred.(sv) su);
    g.indeg.(sv) <- g.indeg.(sv) - 1;
    g.edges <- g.edges - 1;
    g.version <- g.version + 1;
    touch g su;
    touch g sv;
    (* the chain link folded for this edge is necessarily the newest one on
       [sv] (edges roll back in LIFO order within the aborting batch) *)
    if g.digests then ignore (Vec.pop g.chains.(sv));
    (* Ranks are deliberately not rolled back: removing an edge cannot
       break "u ⇝ v implies rank u < rank v", it only removes paths.  The
       relabel the edge may have caused stays — it is a valid order for the
       smaller edge set too. *)
    (* a rolled-back edge may have witnessed memoized reachability facts:
       drop the memo wholesale (rollbacks are rare) *)
    if g.reach_cache_capacity > 0 then Hashtbl.reset g.reach_cache;
    (* Labels must not over-approximate: pop this edge's journal group,
       restoring the exact pre-edge chains and label arrays.  The topmost
       group necessarily belongs to this edge (rollback is LIFO within the
       aborting batch); if the journal disagrees — a caller outside the
       batch protocol — fall back to a deterministic full rebuild. *)
    let rec undo = function
      | J_mark (a, b) :: rest when a = su && b = sv -> g.journal <- rest
      | J_label (s, old) :: rest ->
        g.labels.(s) <- old;
        touch g s;
        undo rest
      | J_assign (s, c, prev_tail) :: rest ->
        g.chain_of.(s) <- -1;
        touch_snap g s;
        Int_vec.set g.chain_len c (Int_vec.get g.chain_len c - 1);
        Int_vec.set g.chain_live c (Int_vec.get g.chain_live c - 1);
        Int_vec.set g.chain_tail c prev_tail;
        undo rest
      | J_chain (c, from_free) :: rest ->
        (if from_free then Int_vec.push g.free_chains c
         else begin
           ignore (Int_vec.pop g.chain_len);
           ignore (Int_vec.pop g.chain_live);
           ignore (Int_vec.pop g.chain_tail)
         end);
        Kronos_metrics.Gauge.set M.chains
          (Int_vec.length g.chain_len - Int_vec.length g.free_chains);
        undo rest
      | (J_mark _ :: _ | []) -> rebuild_label_index g
    in
    undo g.journal
  | (None | Some _), _ -> invalid_arg "Graph.remove_last_edge: stale event"

type chain_snapshot = {
  cs_chain_of : int array;    (* per slot; -1 = unassigned *)
  cs_chain_pos : int array;   (* per slot *)
  cs_chain_len : int array;   (* per chain *)
  cs_free_chains : int array; (* wholly-dead chains, stack order *)
}

type snapshot = {
  snap_next_slot : int;
  snap_refcount : int array;
  snap_gen : int array;
  snap_succ : int array array;
  snap_free : int array;
  snap_rank : int array option;
  snap_next_rank : int;
  snap_traversals : int;
  snap_visited_total : int;
  snap_links : (int64 * string * int) array array option;
  snap_version : int;
  snap_chains : chain_snapshot option;
}

let to_snapshot g =
  let n = g.next_slot in
  let int_vec_to_array v = Array.init (Int_vec.length v) (Int_vec.get v) in
  {
    snap_next_slot = n;
    snap_refcount = Array.sub g.refcount 0 n;
    snap_gen = Array.sub g.gen 0 n;
    snap_succ = Array.init n (fun i -> int_vec_to_array g.succ.(i));
    snap_free = int_vec_to_array g.free;
    snap_rank = Some (Array.sub g.rank 0 n);
    snap_next_rank = g.next_rank;
    snap_traversals = g.traversals;
    snap_visited_total = g.visited_total;
    snap_links =
      (if not g.digests then None
       else
         Some
           (Array.init n (fun i ->
                let c = g.chains.(i) in
                Array.init (Vec.length c) (fun j ->
                    let l = Vec.get c j in
                    (Event_id.to_int64 l.l_pred, l.l_pred_head, l.l_pred_pos)))));
    snap_version = g.version;
    snap_chains =
      Some
        {
          cs_chain_of = Array.sub g.chain_of 0 n;
          cs_chain_pos = Array.sub g.chain_pos 0 n;
          cs_chain_len = int_vec_to_array g.chain_len;
          cs_free_chains = int_vec_to_array g.free_chains;
        };
  }

(* ------------------------------------------------------------------ *)
(* Incremental snapshots (DESIGN.md §16).                              *)
(* ------------------------------------------------------------------ *)

type slot_delta = {
  sd_slot : int;
  sd_refcount : int;
  sd_gen : int;
  sd_rank : int;
  sd_succ : int array;
  sd_links : (int64 * string * int) array;
  sd_chain_of : int;
  sd_chain_pos : int;
}

type delta = {
  d_slots : slot_delta array;
  d_next_slot : int;
  d_free : int array;
  d_next_rank : int;
  d_traversals : int;
  d_visited_total : int;
  d_version : int;
  d_chain_len : int array;
  d_free_chains : int array;
  d_digests : bool;
}

let dirty_slot_count g = Sparse_set.cardinal g.snap_dirty
let snapshot_written g = Sparse_set.clear g.snap_dirty

(* Capture the slots touched since the last [snapshot_written], plus every
   small global (free stack, chain lengths, counters) wholesale.  Pure
   read: the dirty set is only cleared once the caller has made the delta
   durable. *)
let to_delta g =
  let int_vec_to_array v = Array.init (Int_vec.length v) (Int_vec.get v) in
  let slots = ref [] in
  Sparse_set.iter (fun s -> slots := s :: !slots) g.snap_dirty;
  let slots = Array.of_list !slots in
  Array.sort compare slots;
  let slot_delta s =
    {
      sd_slot = s;
      sd_refcount = g.refcount.(s);
      sd_gen = g.gen.(s);
      sd_rank = g.rank.(s);
      sd_succ = int_vec_to_array g.succ.(s);
      sd_links =
        (if not g.digests then [||]
         else
           let c = g.chains.(s) in
           Array.init (Vec.length c) (fun j ->
               let l = Vec.get c j in
               (Event_id.to_int64 l.l_pred, l.l_pred_head, l.l_pred_pos)));
      sd_chain_of = g.chain_of.(s);
      sd_chain_pos = g.chain_pos.(s);
    }
  in
  {
    d_slots = Array.map slot_delta slots;
    d_next_slot = g.next_slot;
    d_free = int_vec_to_array g.free;
    d_next_rank = g.next_rank;
    d_traversals = g.traversals;
    d_visited_total = g.visited_total;
    d_version = g.version;
    d_chain_len = int_vec_to_array g.chain_len;
    d_free_chains = int_vec_to_array g.free_chains;
    d_digests = g.digests;
  }

(* Compose a base snapshot with a delta captured later on the same engine:
   per-slot state is overlaid for the slots the delta carries, everything
   else comes from the base; globals come from the delta wholesale.  Pure
   — the result is validated like any other snapshot by [of_snapshot].
   Raises on structural mismatch (a base without ranks or chains — i.e. a
   legacy capture whose restore {e rebuilt} that state, so a delta against
   it would compose against reconstructed rather than captured values —
   or a delta that shrinks the slot space). *)
let apply_delta base d =
  let fail what = invalid_arg ("Graph.apply_delta: " ^ what) in
  let nb = base.snap_next_slot and n = d.d_next_slot in
  if n < nb then fail "delta shrinks the slot space";
  let base_rank =
    match base.snap_rank with
    | Some r -> r
    | None -> fail "base snapshot has no rank section"
  in
  let base_chains =
    match base.snap_chains with
    | Some c -> c
    | None -> fail "base snapshot has no chain section"
  in
  let base_links =
    if not d.d_digests then None
    else
      match base.snap_links with
      | Some l -> Some l
      | None -> fail "base snapshot has no digest section"
  in
  let extend a fill = Array.init n (fun i -> if i < nb then a.(i) else fill) in
  let refcount = extend base.snap_refcount (-1) in
  let gen = extend base.snap_gen 0 in
  let succ = extend base.snap_succ [||] in
  let rank = extend base_rank 0 in
  let links = Option.map (fun l -> extend l [||]) base_links in
  let chain_of = extend base_chains.cs_chain_of (-1) in
  let chain_pos = extend base_chains.cs_chain_pos 0 in
  Array.iter
    (fun sd ->
      let s = sd.sd_slot in
      if s < 0 || s >= n then fail "slot out of range";
      refcount.(s) <- sd.sd_refcount;
      gen.(s) <- sd.sd_gen;
      succ.(s) <- sd.sd_succ;
      rank.(s) <- sd.sd_rank;
      Option.iter (fun l -> l.(s) <- sd.sd_links) links;
      chain_of.(s) <- sd.sd_chain_of;
      chain_pos.(s) <- sd.sd_chain_pos)
    d.d_slots;
  {
    snap_next_slot = n;
    snap_refcount = refcount;
    snap_gen = gen;
    snap_succ = succ;
    snap_free = d.d_free;
    snap_rank = Some rank;
    snap_next_rank = d.d_next_rank;
    snap_traversals = d.d_traversals;
    snap_visited_total = d.d_visited_total;
    snap_links = links;
    snap_version = d.d_version;
    snap_chains =
      Some
        {
          cs_chain_of = chain_of;
          cs_chain_pos = chain_pos;
          cs_chain_len = d.d_chain_len;
          cs_free_chains = d.d_free_chains;
        };
  }

(* Deterministic rank reconstruction for rank-less (version-1) snapshots:
   Kahn's algorithm over the live subgraph, seeding sources in ascending
   slot order and appending newly freed vertices in adjacency order.  The
   ranks differ from the captured graph's (so traversal work may differ),
   but the invariant holds, which is all queries need. *)
let rebuild_ranks g fail =
  let n = g.next_slot in
  let indeg = Array.sub g.indeg 0 n in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if g.refcount.(s) >= 0 && indeg.(s) = 0 then Queue.add s queue
  done;
  let r = ref 0 in
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    g.rank.(s) <- !r;
    incr r;
    Int_vec.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.succ.(s)
  done;
  if !r <> g.live then fail "cyclic dependency graph";
  g.next_rank <- !r

(* Deterministic commitment reconstruction for captures without a digest
   section (pre-version-3 snapshots, or snapshots of a digest-less engine
   restored into a digest-enabled one).  Live slots are processed in
   (rank, slot) order — a topological order by the rank invariant — and each
   slot folds one link per stored predecessor, in reverse-adjacency order,
   using the predecessor's {e final} head.  The result depends only on the
   snapshot's adjacency (reverse adjacency is rebuilt in slot-iteration
   order by [of_snapshot]) and not on which valid rank assignment is in
   force: any topological order finalizes predecessors first and yields the
   same folds.  Restores of the same logical graph therefore agree on every
   commitment, whether ranks were persisted (v2) or Kahn-rebuilt (v1).

   The rebuilt chains are generally {e not} the ones the captured engine
   held — the original interleaving of edge admissions is not recorded — so
   an upgrade re-anchors commitments; DESIGN.md §13 spells this out. *)
let rebuild_chains g =
  let n = g.next_slot in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare g.rank.(a) g.rank.(b) in
      if c <> 0 then c else compare a b)
    order;
  Array.iter
    (fun v ->
      if g.refcount.(v) >= 0 then
        Int_vec.iter (fun u -> fold_edge g u v) g.pred.(v))
    order

let of_snapshot ?(initial_capacity = 1024) ?(traversal_cache = 0)
    ?(digests = true) ?(max_chains = default_max_chains) s =
  let fail what = invalid_arg ("Graph.of_snapshot: " ^ what) in
  let n = s.snap_next_slot in
  if n < 0 || n > Event_id.max_slot + 1 then fail "bad slot count";
  if Array.length s.snap_refcount <> n
     || Array.length s.snap_gen <> n
     || Array.length s.snap_succ <> n
  then fail "mismatched array lengths";
  let g =
    create ~initial_capacity:(max initial_capacity n) ~traversal_cache
      ~digests ~max_chains ()
  in
  g.next_slot <- n;
  let live = ref 0 in
  for i = 0 to n - 1 do
    let rc = s.snap_refcount.(i) and gen = s.snap_gen.(i) in
    if rc < -1 then fail "bad refcount";
    if gen < 0 || gen > max_gen then fail "bad generation";
    g.refcount.(i) <- rc;
    g.gen.(i) <- gen;
    if rc >= 0 then incr live
  done;
  g.live <- !live;
  let edges = ref 0 in
  for i = 0 to n - 1 do
    let outs = s.snap_succ.(i) in
    if Array.length outs > 0 && g.refcount.(i) < 0 then
      fail "edge out of a free slot";
    Array.iter
      (fun w ->
        if w < 0 || w >= n || g.refcount.(w) < 0 then fail "edge to a free slot";
        Int_vec.push g.succ.(i) w;
        Int_vec.push g.pred.(w) i;
        g.indeg.(w) <- g.indeg.(w) + 1;
        incr edges)
      outs
  done;
  g.edges <- !edges;
  Array.iter
    (fun f ->
      if f < 0 || f >= n || g.refcount.(f) >= 0 then fail "bad free slot";
      Int_vec.push g.free f)
    s.snap_free;
  (match s.snap_rank with
   | Some ranks ->
     if Array.length ranks <> n then fail "mismatched rank length";
     let max_rank = ref (-1) in
     for i = 0 to n - 1 do
       if ranks.(i) < 0 then fail "bad rank";
       g.rank.(i) <- ranks.(i);
       if ranks.(i) > !max_rank then max_rank := ranks.(i)
     done;
     for i = 0 to n - 1 do
       Int_vec.iter
         (fun w -> if ranks.(i) >= ranks.(w) then fail "rank invariant violated")
         g.succ.(i)
     done;
     (* a too-small next_rank would only cost extra relabels, never
        correctness, but genuine snapshots always satisfy this *)
     g.next_rank <- max s.snap_next_rank (!max_rank + 1)
   | None -> rebuild_ranks g fail);
  (if digests then
     match s.snap_links with
     | Some links ->
       if Array.length links <> n then fail "mismatched link table length";
       for v = 0 to n - 1 do
         let ls = links.(v) in
         if Array.length ls > 0 && g.refcount.(v) < 0 then
           fail "chain links on a free slot";
         Array.iter
           (fun (pred64, pred_head, pred_pos) ->
             let pred =
               try Event_id.of_int64 pred64
               with Invalid_argument _ -> fail "bad link predecessor"
             in
             if String.length pred_head <> Chain_digest.length then
               fail "bad link head length";
             if pred_pos < 0 then fail "bad link position";
             let partner = Chain_digest.link_partner pred pred_head in
             let head =
               Chain_digest.fold_link
                 (head_at_slot g v (Vec.length g.chains.(v)))
                 partner
             in
             Vec.push g.chains.(v)
               { l_pred = pred; l_pred_head = pred_head;
                 l_pred_pos = pred_pos; l_partner = partner; l_head = head };
             g.digest_folds <- g.digest_folds + 2;
             Kronos_metrics.Counter.add M.digest_folds 2)
           ls
       done
     | None -> rebuild_chains g);
  (* Chain-decomposition index.  A persisted chain section is validated
     against its own invariants (one member per position, live members a
     consecutive suffix joined by direct edges, dead chains reset and
     freed) and installed verbatim — the cap only gates {e new} chains, so
     a capture from a larger-capped engine still loads.  Captures without
     the section (format < 5, or hand-built) get the canonical rebuild.
     Labels are never persisted: exact labels are a pure function of
     adjacency + chains, recomputed identically on every restore. *)
  (match s.snap_chains with
   | None -> rebuild_label_index g
   | Some cs ->
     if Array.length cs.cs_chain_of <> n || Array.length cs.cs_chain_pos <> n
     then fail "mismatched chain index length";
     let nc = Array.length cs.cs_chain_len in
     Array.iter (fun l -> if l < 0 then fail "bad chain length")
       cs.cs_chain_len;
     let members = Array.make (max nc 1) [] in
     for i = 0 to n - 1 do
       let c = cs.cs_chain_of.(i) in
       if c < -1 || c >= nc then fail "bad chain id";
       if c >= 0 then begin
         if g.refcount.(i) < 0 then fail "chain entry on a free slot";
         let p = cs.cs_chain_pos.(i) in
         if p < 0 || p >= cs.cs_chain_len.(c) then fail "bad chain position";
         g.chain_of.(i) <- c;
         g.chain_pos.(i) <- p;
         members.(c) <- i :: members.(c)
       end
     done;
     let on_free = Array.make (max nc 1) false in
     Array.iter
       (fun c ->
         if c < 0 || c >= nc || on_free.(c) then fail "bad free chain";
         on_free.(c) <- true)
       cs.cs_free_chains;
     for c = 0 to nc - 1 do
       let ms =
         List.sort
           (fun a b -> compare cs.cs_chain_pos.(a) cs.cs_chain_pos.(b))
           members.(c)
       in
       let live = List.length ms in
       Int_vec.push g.chain_len cs.cs_chain_len.(c);
       Int_vec.push g.chain_live live;
       if live = 0 then begin
         if cs.cs_chain_len.(c) <> 0 || not on_free.(c) then
           fail "dead chain not reset";
         Int_vec.push g.chain_tail (-1)
       end
       else begin
         if on_free.(c) then fail "live chain on the free list";
         let expect = ref (cs.cs_chain_len.(c) - live) in
         let prev = ref (-1) in
         List.iter
           (fun m ->
             if cs.cs_chain_pos.(m) <> !expect then
               fail "chain positions not a suffix";
             incr expect;
             if !prev >= 0 && not (Int_vec.mem g.succ.(!prev) m) then
               fail "chain members not joined by an edge";
             prev := m)
           ms;
         Int_vec.push g.chain_tail !prev
       end
     done;
     Array.iter (fun c -> Int_vec.push g.free_chains c) cs.cs_free_chains;
     Kronos_metrics.Gauge.set M.chains
       (Int_vec.length g.chain_len - Int_vec.length g.free_chains);
     compute_labels g);
  g.traversals <- s.snap_traversals;
  g.visited_total <- s.snap_visited_total;
  (* Restored epochs must continue monotonically so a client's
     [`At_least e] demand issued before a restart is still satisfiable
     after it.  Legacy captures (pre snap_version) fall back to the rank
     allocator, a deterministic lower bound of the mutation count: epochs
     then restart from a smaller value, exactly like the documented
     traversal-statistics caveat of rank-less restores. *)
  g.version <- (if s.snap_version > 0 then s.snap_version else g.next_rank);
  (* A restored graph shares no durable base with any snapshot on disk
     (legacy restores even rebuild ranks/chains), so the first incremental
     snapshot after a restore must carry every slot. *)
  for s = 0 to n - 1 do
    Sparse_set.add g.snap_dirty s
  done;
  g

let commitment g id =
  match resolve g id with
  | Some s when g.digests -> Some (head_at_slot g s (Vec.length g.chains.(s)))
  | Some _ | None -> None

let chain_length g id =
  match resolve g id with
  | Some s when g.digests -> Some (Vec.length g.chains.(s))
  | Some _ | None -> None

let chain_link g id i =
  match resolve g id with
  | Some s when g.digests && i >= 0 && i < Vec.length g.chains.(s) ->
    Some (Vec.get g.chains.(s) i)
  | Some _ | None -> None

let head_at g id n =
  match resolve g id with
  | Some s when g.digests && n >= 0 && n <= Vec.length g.chains.(s) ->
    Some (head_at_slot g s n)
  | Some _ | None -> None

let out_degree g id =
  match resolve g id with
  | Some s -> Some (Int_vec.length g.succ.(s))
  | None -> None

let in_degree g id =
  match resolve g id with Some s -> Some g.indeg.(s) | None -> None

let successors g id =
  match resolve g id with
  | Some s -> List.map (id_of_slot g) (Int_vec.to_list g.succ.(s))
  | None -> []

let predecessors g id =
  match resolve g id with
  | Some s -> List.map (id_of_slot g) (Int_vec.to_list g.pred.(s))
  | None -> []

let iter_live g f =
  for s = 0 to g.next_slot - 1 do
    if g.refcount.(s) >= 0 then f (id_of_slot g s)
  done

let fold_edges g f init =
  let acc = ref init in
  for s = 0 to g.next_slot - 1 do
    if g.refcount.(s) >= 0 then begin
      let u = id_of_slot g s in
      Int_vec.iter (fun w -> acc := f !acc u (id_of_slot g w)) g.succ.(s)
    end
  done;
  !acc

let memory_bytes g =
  let word = Sys.word_size / 8 in
  let array_bytes a = (Array.length a + 2) * word in
  let adjacency a =
    Array.fold_left (fun acc v -> acc + Int_vec.capacity_bytes v) 0 a
  in
  array_bytes g.refcount + array_bytes g.gen + array_bytes g.indeg
  + array_bytes g.rank
  + array_bytes g.queue + array_bytes g.queue_b
  + (2 * (capacity g + 2) * word) (* succ/pred pointer arrays *)
  + adjacency g.succ + adjacency g.pred
  + Sparse_set.memory_bytes g.visited
  + Sparse_set.memory_bytes g.visited_b
  + Int_vec.capacity_bytes g.free
  + Int_vec.capacity_bytes g.relabel_stack
  (* chain-decomposition index: flat arrays + per-slot label vectors *)
  + array_bytes g.chain_of + array_bytes g.chain_pos
  + array_bytes g.label_buf
  + ((capacity g + 2) * word)
  + Array.fold_left
      (fun acc l ->
        acc + if Array.length l = 0 then 0 else (Array.length l + 2) * word)
      0 g.labels
  (* chains: pointer array + per-link record (5 fields + header) + the
     three digest strings it owns (~32 bytes + header each) *)
  + ((capacity g + 2) * word)
  + Array.fold_left
      (fun acc c -> acc + (Vec.length c * ((6 * word) + (3 * (40 + word)))))
      0 g.chains

(* ------------------------------------------------------------------ *)
(* Frozen views (DESIGN.md §14).                                       *)
(* ------------------------------------------------------------------ *)

let int_vec_array v = Array.init (Int_vec.length v) (Int_vec.get v)
let vec_array c = Array.init (Vec.length c) (Vec.get c)

(* Publish an immutable copy of the query-visible state.  Incremental: the
   flat per-slot int arrays (refcount/gen/rank) are copied wholesale — one
   memcpy each — while the per-slot succ/pred/chain arrays are re-copied
   only for slots dirtied since the previous freeze; clean slots share the
   previous frozen view's immutable arrays.  Sharing is sound because
   [frozen_cache] always holds the {e latest} freeze and [dirty] records
   exactly the slots mutated since it.  Must be called from the writer
   domain only (it consumes the dirty set and updates the cache); the
   returned value may then be read from any domain. *)
let freeze g =
  match g.frozen_cache with
  | Some f when f.f_version = g.version -> f
  | prev ->
    let n = g.next_slot in
    let f_succ = Array.make n [||] in
    let f_pred = Array.make n [||] in
    let f_chains = Array.make n [||] in
    let f_labels = Array.make n [||] in
    let copy_slot s =
      f_succ.(s) <- int_vec_array g.succ.(s);
      f_pred.(s) <- int_vec_array g.pred.(s);
      if g.digests then f_chains.(s) <- vec_array g.chains.(s);
      (* label arrays are immutable once installed: share the pointer *)
      f_labels.(s) <- g.labels.(s)
    in
    (match prev with
     | Some p ->
       let shared = min p.f_next_slot n in
       Array.blit p.f_succ 0 f_succ 0 shared;
       Array.blit p.f_pred 0 f_pred 0 shared;
       Array.blit p.f_chains 0 f_chains 0 shared;
       Array.blit p.f_labels 0 f_labels 0 shared;
       (* slots created since the previous freeze are necessarily dirty,
          so everything in [shared, n) is re-copied here too *)
       Sparse_set.iter (fun s -> if s < n then copy_slot s) g.dirty
     | None ->
       for s = 0 to n - 1 do
         copy_slot s
       done);
    Sparse_set.clear g.dirty;
    let f =
      {
        f_version = g.version;
        f_next_slot = n;
        f_live = g.live;
        f_edges = g.edges;
        f_refcount = Array.sub g.refcount 0 n;
        f_gen = Array.sub g.gen 0 n;
        f_rank = Array.sub g.rank 0 n;
        f_succ;
        f_pred;
        f_digests = g.digests;
        f_chains;
        f_chain_of = Array.sub g.chain_of 0 n;
        f_chain_pos = Array.sub g.chain_pos 0 n;
        f_labels;
      }
    in
    g.frozen_cache <- Some f;
    f

module Frozen = struct
  type g = frozen

  let version f = f.f_version
  let live_count f = f.f_live
  let edge_count f = f.f_edges
  let digests_enabled f = f.f_digests

  let resolve f id =
    let s = Event_id.slot id in
    if id <> Event_id.none
       && s < f.f_next_slot
       && f.f_refcount.(s) >= 0
       && f.f_gen.(s) = Event_id.gen id
    then Some s
    else None

  let is_live f id = resolve f id <> None

  let rank f id =
    match resolve f id with Some s -> Some f.f_rank.(s) | None -> None

  (* Per-domain reusable traversal scratch — the frozen twin of the live
     graph's preallocated sparse sets and queues.  Keyed by domain-local
     storage, so concurrent readers never share it and a query allocates
     nothing once the scratch has grown to the view's slot count.  Frozen
     queries deliberately touch no process-wide metrics counters and no
     mutable graph state: the whole read path is write-free. *)
  type scratch = {
    mutable visited : Sparse_set.t;
    mutable visited_b : Sparse_set.t;
    mutable queue : int array;
    mutable queue_b : int array;
  }

  let scratch_key =
    Domain.DLS.new_key (fun () ->
        {
          visited = Sparse_set.create 16;
          visited_b = Sparse_set.create 16;
          queue = Array.make 16 0;
          queue_b = Array.make 16 0;
        })

  let scratch_for n =
    let s = Domain.DLS.get scratch_key in
    if Array.length s.queue < n then begin
      let cap = max n (2 * Array.length s.queue) in
      Sparse_set.grow s.visited cap;
      Sparse_set.grow s.visited_b cap;
      s.queue <- Array.make cap 0;
      s.queue_b <- Array.make cap 0
    end;
    s

  (* Rank-pruned level-synchronous bidirectional BFS over the frozen
     arrays; the same algorithm as the live graph's [reachable_slots], with
     in-degree read off the immutable reverse adjacency. *)
  let reachable_slots f sc src dst =
    if src = dst then true
    else begin
      let rlo = f.f_rank.(src) and rhi = f.f_rank.(dst) in
      if rlo >= rhi then false
      else if
        Array.length f.f_succ.(src) = 0 || Array.length f.f_pred.(dst) = 0
      then false
      else begin
        let vf = sc.visited and vb = sc.visited_b in
        Sparse_set.clear vf;
        Sparse_set.clear vb;
        Sparse_set.add vf src;
        Sparse_set.add vb dst;
        let qf = sc.queue and qb = sc.queue_b in
        qf.(0) <- src;
        qb.(0) <- dst;
        let fh = ref 0 and ft = ref 1 in
        let bh = ref 0 and bt = ref 1 in
        let found = ref false in
        let expand_forward () =
          let lo = !fh and hi = !ft in
          fh := hi;
          for i = lo to hi - 1 do
            let outs = f.f_succ.(qf.(i)) in
            for k = 0 to Array.length outs - 1 do
              let w = outs.(k) in
              if Sparse_set.mem vb w then found := true
              else if
                (not (Sparse_set.mem vf w))
                && f.f_rank.(w) > rlo
                && f.f_rank.(w) < rhi
              then begin
                Sparse_set.add vf w;
                qf.(!ft) <- w;
                incr ft
              end
            done
          done
        in
        let expand_backward () =
          let lo = !bh and hi = !bt in
          bh := hi;
          for i = lo to hi - 1 do
            let ins = f.f_pred.(qb.(i)) in
            for k = 0 to Array.length ins - 1 do
              let w = ins.(k) in
              if Sparse_set.mem vf w then found := true
              else if
                (not (Sparse_set.mem vb w))
                && f.f_rank.(w) > rlo
                && f.f_rank.(w) < rhi
              then begin
                Sparse_set.add vb w;
                qb.(!bt) <- w;
                incr bt
              end
            done
          done
        in
        while (not !found) && !fh < !ft && !bh < !bt do
          if !ft - !fh <= !bt - !bh then expand_forward ()
          else expand_backward ()
        done;
        !found
      end
    end

  (* The same label fast path as the live graph's [reachable_ids]: frozen
     views carry the chain index, so reader domains answer assigned
     destinations — both polarities — by an O(#chains) compare and only
     fall back to the scratch BFS on cap saturation.  (This closes the
     PR 7 open item: frozen views used to have no positive fast path at
     all, the live reach memo being unshareable.) *)
  let reach f su sv =
    let c = f.f_chain_of.(sv) in
    if c >= 0 then label_le f.f_labels.(su) c f.f_chain_pos.(sv)
    else reachable_slots f (scratch_for f.f_next_slot) su sv

  let reachable f u v =
    match (resolve f u, resolve f v) with
    | Some su, Some sv ->
      if su = sv then false
      else if f.f_rank.(su) >= f.f_rank.(sv) then false
      else reach f su sv
    | _ -> false

  let label_reachable f u v =
    match (resolve f u, resolve f v) with
    | Some su, Some sv ->
      if su = sv then Some false
      else if f.f_rank.(su) >= f.f_rank.(sv) then Some false
      else begin
        let c = f.f_chain_of.(sv) in
        if c >= 0 then Some (label_le f.f_labels.(su) c f.f_chain_pos.(sv))
        else None
      end
    | _ -> Some false

  let query f e1 e2 =
    match (resolve f e1, resolve f e2) with
    | None, _ -> Error e1
    | _, None -> Error e2
    | Some s1, Some s2 ->
      if s1 = s2 then Ok Order.Same
      else begin
        let r1 = f.f_rank.(s1) and r2 = f.f_rank.(s2) in
        if r1 < r2 then begin
          if reach f s1 s2 then Ok Order.Before else Ok Order.Concurrent
        end
        else if r2 < r1 then begin
          if reach f s2 s1 then Ok Order.After else Ok Order.Concurrent
        end
        else Ok Order.Concurrent
      end

  let id_of_slot f s = Event_id.make ~slot:s ~gen:f.f_gen.(s)

  let head_at_slot f s n =
    if n = 0 then Chain_digest.init (id_of_slot f s)
    else f.f_chains.(s).(n - 1).l_head

  let commitment f id =
    match resolve f id with
    | Some s when f.f_digests ->
      Some (head_at_slot f s (Array.length f.f_chains.(s)))
    | Some _ | None -> None

  let chain_length f id =
    match resolve f id with
    | Some s when f.f_digests -> Some (Array.length f.f_chains.(s))
    | Some _ | None -> None

  let chain_link f id i =
    match resolve f id with
    | Some s when f.f_digests && i >= 0 && i < Array.length f.f_chains.(s) ->
      Some f.f_chains.(s).(i)
    | Some _ | None -> None

  let head_at f id n =
    match resolve f id with
    | Some s when f.f_digests && n >= 0 && n <= Array.length f.f_chains.(s) ->
      Some (head_at_slot f s n)
    | Some _ | None -> None
end
