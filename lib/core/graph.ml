(* Process-wide mirrors of the per-graph counters, for the metrics plane.
   A process may host several graphs (tests, sim benches) and the counters
   then aggregate across them; the gauges track whichever graph mutated
   last, which in kronosd is the one replica engine. *)
module M = struct
  let scope = Kronos_metrics.scope "engine"
  let traversals = Kronos_metrics.counter scope "bfs_traversals_total"
  let visited = Kronos_metrics.counter scope "bfs_visited_total"
  let cache_hits = Kronos_metrics.counter scope "traversal_cache_hits_total"
  let live = Kronos_metrics.gauge scope "graph_live_events"
  let edges = Kronos_metrics.gauge scope "graph_edges"
end

type t = {
  mutable refcount : int array;  (* -1 marks a free slot *)
  mutable gen : int array;       (* generation of the current/next tenant *)
  mutable indeg : int array;
  mutable succ : Int_vec.t array;
  free : Int_vec.t;              (* stack of reusable slots *)
  mutable next_slot : int;       (* high-water mark of ever-used slots *)
  mutable live : int;
  mutable edges : int;
  mutable visited : Sparse_set.t;
  mutable queue : int array;     (* BFS frontier, capacity = slot capacity *)
  mutable traversals : int;
  mutable visited_total : int;
  (* Positive reachability memo (Section 2.5 of the paper: "Kronos can
     maintain an internal cache of traversal results").  Only reachable=true
     results may be cached: monotonicity makes them stable forever, while a
     negative result can be invalidated by any later edge.  Keys carry
     generations, so slot reuse can never resurrect an entry. *)
  reach_cache : (Event_id.t * Event_id.t, unit) Hashtbl.t;
  reach_cache_capacity : int;  (* 0 disables caching *)
  mutable reach_cache_hits : int;
}

let max_gen = (1 lsl 22) - 1

let create ?(initial_capacity = 1024) ?(traversal_cache = 0) () =
  let cap = max initial_capacity 16 in
  {
    reach_cache = Hashtbl.create (max 16 (min traversal_cache 4096));
    reach_cache_capacity = max 0 traversal_cache;
    reach_cache_hits = 0;
    refcount = Array.make cap (-1);
    gen = Array.make cap 0;
    indeg = Array.make cap 0;
    succ = Array.init cap (fun _ -> Int_vec.create ~capacity:2 ());
    free = Int_vec.create ();
    next_slot = 0;
    live = 0;
    edges = 0;
    visited = Sparse_set.create cap;
    queue = Array.make cap 0;
    traversals = 0;
    visited_total = 0;
  }

let capacity g = Array.length g.refcount
let live_count g = g.live
let edge_count g = g.edges
let traversal_count g = g.traversals
let visited_total g = g.visited_total
let traversal_cache_hits g = g.reach_cache_hits

let grow g =
  let old = capacity g in
  let cap = 2 * old in
  let copy a fill =
    let b = Array.make cap fill in
    Array.blit a 0 b 0 old;
    b
  in
  g.refcount <- copy g.refcount (-1);
  g.gen <- copy g.gen 0;
  g.indeg <- copy g.indeg 0;
  let succ = Array.init cap (fun i ->
    if i < old then g.succ.(i) else Int_vec.create ~capacity:2 ())
  in
  g.succ <- succ;
  Sparse_set.grow g.visited cap;
  g.queue <- Array.make cap 0

(* Resolve an identifier to its slot, checking liveness and generation. *)
let resolve g id =
  let s = Event_id.slot id in
  if id <> Event_id.none
     && s < g.next_slot
     && g.refcount.(s) >= 0
     && g.gen.(s) = Event_id.gen id
  then Some s
  else None

let id_of_slot g s = Event_id.make ~slot:s ~gen:g.gen.(s)

let create_event g =
  let s =
    if not (Int_vec.is_empty g.free) then Int_vec.pop g.free
    else begin
      if g.next_slot = capacity g then grow g;
      let s = g.next_slot in
      g.next_slot <- s + 1;
      s
    end
  in
  g.refcount.(s) <- 1;
  g.indeg.(s) <- 0;
  Int_vec.clear g.succ.(s);
  g.live <- g.live + 1;
  Kronos_metrics.Gauge.set M.live g.live;
  id_of_slot g s

let is_live g id = resolve g id <> None

let refcount g id =
  match resolve g id with Some s -> Some g.refcount.(s) | None -> None

let acquire_ref g id =
  match resolve g id with
  | Some s -> g.refcount.(s) <- g.refcount.(s) + 1; true
  | None -> false

(* Reclaim the cascade of vertices reachable from slot [s] that have zero
   references and zero in-degree.  Uses the BFS queue as a work stack: safe
   because collection never runs concurrently with a traversal. *)
let collect g s =
  let stack = g.queue in
  let top = ref 0 in
  stack.(0) <- s;
  incr top;
  let collected = ref 0 in
  while !top > 0 do
    decr top;
    let u = stack.(!top) in
    g.refcount.(u) <- (-1);
    g.live <- g.live - 1;
    incr collected;
    let kill w =
      g.indeg.(w) <- g.indeg.(w) - 1;
      g.edges <- g.edges - 1;
      if g.indeg.(w) = 0 && g.refcount.(w) = 0 then begin
        stack.(!top) <- w;
        incr top
      end
    in
    Int_vec.iter kill g.succ.(u);
    Int_vec.clear g.succ.(u);
    (* Retire the slot permanently if its generation space is exhausted. *)
    if g.gen.(u) < max_gen then begin
      g.gen.(u) <- g.gen.(u) + 1;
      Int_vec.push g.free u
    end
  done;
  Kronos_metrics.Gauge.set M.live g.live;
  Kronos_metrics.Gauge.set M.edges g.edges;
  !collected

let release_ref g id =
  match resolve g id with
  | None -> None
  | Some s when g.refcount.(s) = 0 ->
    (* zero references: the caller holds no handle to release (the event is
       only pinned by the graph itself) — treat like a stale identifier *)
    None
  | Some s ->
    g.refcount.(s) <- g.refcount.(s) - 1;
    if g.refcount.(s) = 0 && g.indeg.(s) = 0 then Some (collect g s)
    else Some 0

exception Found

(* BFS over slots; allocation-free thanks to the preallocated sparse set and
   queue.  Degree guards make the common fresh-event cases O(1): a source
   with no outgoing edge reaches nothing, a destination with no incoming
   edge is unreachable. *)
let reachable_slots g src dst =
  if src = dst then true
  else if Int_vec.is_empty g.succ.(src) || g.indeg.(dst) = 0 then false
  else begin
    g.traversals <- g.traversals + 1;
    Kronos_metrics.Counter.incr M.traversals;
    let visited = g.visited in
    Sparse_set.clear visited;
    Sparse_set.add visited src;
    let queue = g.queue in
    queue.(0) <- src;
    let head = ref 0 and tail = ref 1 in
    try
      while !head < !tail do
        let u = queue.(!head) in
        incr head;
        let visit w =
          if w = dst then raise Found;
          if not (Sparse_set.mem visited w) then begin
            Sparse_set.add visited w;
            queue.(!tail) <- w;
            incr tail
          end
        in
        Int_vec.iter visit g.succ.(u)
      done;
      g.visited_total <- g.visited_total + !tail;
      Kronos_metrics.Counter.add M.visited !tail;
      false
    with Found ->
      g.visited_total <- g.visited_total + !tail;
      Kronos_metrics.Counter.add M.visited !tail;
      true
  end

let cache_reachable g u v su sv =
  if Hashtbl.mem g.reach_cache (u, v) then begin
    g.reach_cache_hits <- g.reach_cache_hits + 1;
    Kronos_metrics.Counter.incr M.cache_hits;
    true
  end
  else begin
    let found = reachable_slots g su sv in
    if found then begin
      (* full: drop everything rather than track recency — the memo refills
         from the hot working set almost immediately *)
      if Hashtbl.length g.reach_cache >= g.reach_cache_capacity then
        Hashtbl.reset g.reach_cache;
      Hashtbl.replace g.reach_cache (u, v) ()
    end;
    found
  end

let reachable_ids g u v su sv =
  if su = sv then false
  else if g.reach_cache_capacity = 0 then reachable_slots g su sv
  else cache_reachable g u v su sv

let reachable g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv -> reachable_ids g u v su sv
  | (None | Some _), _ -> false

let query g e1 e2 =
  match resolve g e1, resolve g e2 with
  | None, _ -> Error e1
  | _, None -> Error e2
  | Some s1, Some s2 ->
    if s1 = s2 then Ok Order.Same
    else if reachable_ids g e1 e2 s1 s2 then Ok Order.Before
    else if reachable_ids g e2 e1 s2 s1 then Ok Order.After
    else Ok Order.Concurrent

let add_edge g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    Int_vec.push g.succ.(su) sv;
    g.indeg.(sv) <- g.indeg.(sv) + 1;
    g.edges <- g.edges + 1;
    Kronos_metrics.Gauge.set M.edges g.edges
  | (None | Some _), _ -> invalid_arg "Graph.add_edge: stale event"

let remove_last_edge g u v =
  match resolve g u, resolve g v with
  | Some su, Some sv ->
    if Int_vec.is_empty g.succ.(su) || Int_vec.last g.succ.(su) <> sv then
      invalid_arg "Graph.remove_last_edge: not the last edge";
    ignore (Int_vec.pop g.succ.(su));
    g.indeg.(sv) <- g.indeg.(sv) - 1;
    g.edges <- g.edges - 1;
    (* a rolled-back edge may have witnessed memoized reachability facts:
       drop the memo wholesale (rollbacks are rare) *)
    if g.reach_cache_capacity > 0 then Hashtbl.reset g.reach_cache
  | (None | Some _), _ -> invalid_arg "Graph.remove_last_edge: stale event"

type snapshot = {
  snap_next_slot : int;
  snap_refcount : int array;
  snap_gen : int array;
  snap_succ : int array array;
  snap_free : int array;
  snap_traversals : int;
  snap_visited_total : int;
}

let to_snapshot g =
  let n = g.next_slot in
  let int_vec_to_array v = Array.init (Int_vec.length v) (Int_vec.get v) in
  {
    snap_next_slot = n;
    snap_refcount = Array.sub g.refcount 0 n;
    snap_gen = Array.sub g.gen 0 n;
    snap_succ = Array.init n (fun i -> int_vec_to_array g.succ.(i));
    snap_free = int_vec_to_array g.free;
    snap_traversals = g.traversals;
    snap_visited_total = g.visited_total;
  }

let of_snapshot ?(initial_capacity = 1024) ?(traversal_cache = 0) s =
  let fail what = invalid_arg ("Graph.of_snapshot: " ^ what) in
  let n = s.snap_next_slot in
  if n < 0 || n > Event_id.max_slot + 1 then fail "bad slot count";
  if Array.length s.snap_refcount <> n
     || Array.length s.snap_gen <> n
     || Array.length s.snap_succ <> n
  then fail "mismatched array lengths";
  let g = create ~initial_capacity:(max initial_capacity n) ~traversal_cache () in
  g.next_slot <- n;
  let live = ref 0 in
  for i = 0 to n - 1 do
    let rc = s.snap_refcount.(i) and gen = s.snap_gen.(i) in
    if rc < -1 then fail "bad refcount";
    if gen < 0 || gen > max_gen then fail "bad generation";
    g.refcount.(i) <- rc;
    g.gen.(i) <- gen;
    if rc >= 0 then incr live
  done;
  g.live <- !live;
  let edges = ref 0 in
  for i = 0 to n - 1 do
    let outs = s.snap_succ.(i) in
    if Array.length outs > 0 && g.refcount.(i) < 0 then
      fail "edge out of a free slot";
    Array.iter
      (fun w ->
        if w < 0 || w >= n || g.refcount.(w) < 0 then fail "edge to a free slot";
        Int_vec.push g.succ.(i) w;
        g.indeg.(w) <- g.indeg.(w) + 1;
        incr edges)
      outs
  done;
  g.edges <- !edges;
  Array.iter
    (fun f ->
      if f < 0 || f >= n || g.refcount.(f) >= 0 then fail "bad free slot";
      Int_vec.push g.free f)
    s.snap_free;
  g.traversals <- s.snap_traversals;
  g.visited_total <- s.snap_visited_total;
  g

let out_degree g id =
  match resolve g id with
  | Some s -> Some (Int_vec.length g.succ.(s))
  | None -> None

let in_degree g id =
  match resolve g id with Some s -> Some g.indeg.(s) | None -> None

let successors g id =
  match resolve g id with
  | Some s -> List.map (id_of_slot g) (Int_vec.to_list g.succ.(s))
  | None -> []

let iter_live g f =
  for s = 0 to g.next_slot - 1 do
    if g.refcount.(s) >= 0 then f (id_of_slot g s)
  done

let fold_edges g f init =
  let acc = ref init in
  for s = 0 to g.next_slot - 1 do
    if g.refcount.(s) >= 0 then begin
      let u = id_of_slot g s in
      Int_vec.iter (fun w -> acc := f !acc u (id_of_slot g w)) g.succ.(s)
    end
  done;
  !acc

let memory_bytes g =
  let word = Sys.word_size / 8 in
  let array_bytes a = (Array.length a + 2) * word in
  let adjacency =
    Array.fold_left (fun acc v -> acc + Int_vec.capacity_bytes v) 0 g.succ
  in
  array_bytes g.refcount + array_bytes g.gen + array_bytes g.indeg
  + array_bytes g.queue
  + (capacity g + 2) * word (* succ pointer array *)
  + adjacency
  + Sparse_set.memory_bytes g.visited
  + Int_vec.capacity_bytes g.free
