(** The Kronos API (Table 1 of the paper) over the event dependency graph.

    All operations are deterministic, which is what lets the service layer
    replicate an engine with a replicated state machine (Section 2.4). *)

type t

type config = {
  initial_capacity : int;  (** starting number of vertex slots (doubles) *)
  traversal_cache : int;
      (** size of the internal positive-reachability memo (Section 2.5);
          0 (the default) disables it *)
  digests : bool;
      (** maintain hash-chained event commitments (DESIGN.md §13) so
          happens-before answers can be proved; [true] by default *)
}

val default_config : config

val create : ?config:config -> unit -> t

(** {1 Event management} *)

val create_event : t -> Event_id.t
(** [create_event g] makes a fresh event with one reference held by the
    caller and returns its unique identifier. *)

val acquire_ref : t -> Event_id.t -> (unit, Order.assign_error) result

val release_ref : t -> Event_id.t -> (int, Order.assign_error) result
(** On success, the number of events garbage-collected by this release
    (strict, topological; see Section 2.3). *)

(** {1 Ordering} *)

val query_order :
  t -> (Event_id.t * Event_id.t) list ->
  (Order.relation list, Order.assign_error) result
(** Relation of each pair, in request order.  Fails atomically with
    [Unknown_event] if any argument is stale. *)

val assign_order :
  t -> Order.spec list -> (Order.outcome list, Order.assign_error) result
(** Atomically apply a batch of ordering constraints (Section 2.2), built
    with the {!Order.must_before} family of constructors.  Each pair's
    cycle check rides the graph's topological rank index
    ({!Graph.try_add_edge}): constraints that respect the committed order —
    the common case — are admitted in O(1), and the others pay one search
    bounded to the affected rank interval.  Semantics:

    - all [Must] pairs are applied before any [Prefer] pair, so a prefer can
      never block a satisfiable must;
    - if a [Must] pair contradicts the committed order (or relates an event
      to itself), the whole batch aborts with no side effects;
    - a [Prefer] pair contradicted by the committed order is reported as
      [Reversed]; a prefer of an event with itself is a no-op ([Already]);
    - a pair whose order is already implied adds no edge ([Already]).

    Outcomes are returned in request order. *)

val guarded_assign :
  t ->
  guards:(Event_id.t * Event_id.t * Order.relation) list ->
  Order.spec list ->
  (Order.outcome list, Order.assign_error) result
(** [guarded_assign t ~guards specs] applies [specs] exactly as
    {!assign_order} does, but only after every guard [(e1, e2, expected)]
    is observed to hold: the current relation of [(e1, e2)] must equal
    [expected].  Guards and batch are evaluated against the same state
    with nothing in between, so a replicated engine evaluates them
    atomically.  On a mismatch the call fails with
    [Guard_failed i] ([i] the guard's index) and has no side effects.
    This is the building block of the federation layer's two-shard
    cross-edge commit (DESIGN §12). *)

(** {1 Serialization} *)

(** Full logical state of an engine: the graph plus the API counters, so a
    restored replica reports the same {!stats} as one that never crashed.
    The encoding to bytes lives in the durability library; this type is the
    stable in-memory contract between the two. *)
type snapshot = {
  snap_graph : Graph.snapshot;
  snap_creates : int;
  snap_queries : int;
  snap_assigns : int;
  snap_aborted_batches : int;
  snap_reversals : int;
  snap_collected : int;
}

val to_snapshot : t -> snapshot

val of_snapshot : ?config:config -> snapshot -> t
(** Rebuild an engine that behaves identically to the captured one under
    any subsequent command sequence ([config] mirrors {!create}; the
    traversal memo restarts cold).
    @raise Invalid_argument on an internally inconsistent snapshot. *)

(** {1 Introspection} *)

val graph : t -> Graph.t
(** The underlying dependency graph (read-only use expected). *)

val live_events : t -> int
val edges : t -> int
val memory_bytes : t -> int

val commitment : t -> Event_id.t -> string option
(** The event's commitment-chain head ({!Graph.commitment}); [None] when
    the identifier is stale or the engine runs with [digests = false]. *)

type stats = {
  creates : int;
  queries : int;       (** individual pairs queried *)
  assigns : int;       (** individual pairs assigned *)
  aborted_batches : int;
  reversals : int;
  collected : int;     (** events reclaimed by GC *)
  traversals : int;    (** BFS runs *)
  visited : int;       (** total vertices visited by BFS *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
