(** The Kronos API (Table 1 of the paper) over the event dependency graph.

    All operations are deterministic, which is what lets the service layer
    replicate an engine with a replicated state machine (Section 2.4). *)

type t

type config = {
  initial_capacity : int;  (** starting number of vertex slots (doubles) *)
  traversal_cache : int;
      (** size of the internal positive-reachability memo (Section 2.5);
          0 (the default) disables it *)
  digests : bool;
      (** maintain hash-chained event commitments (DESIGN.md §13) so
          happens-before answers can be proved; [true] by default *)
  max_chains : int;
      (** cap on the graph's chain-decomposition reachability index
          (DESIGN.md §15); 64 by default, 0 disables it.  Queries whose
          destination is off every chain fall back to the BFS and count as
          {!label_misses}. *)
}

val default_config : config

val create : ?config:config -> unit -> t

(** {1 Event management} *)

val create_event : t -> Event_id.t
(** [create_event g] makes a fresh event with one reference held by the
    caller and returns its unique identifier. *)

val acquire_ref : t -> Event_id.t -> (unit, Order.assign_error) result

val release_ref : t -> Event_id.t -> (int, Order.assign_error) result
(** On success, the number of events garbage-collected by this release
    (strict, topological; see Section 2.3). *)

(** {1 Ordering} *)

val query_order :
  t -> (Event_id.t * Event_id.t) list ->
  (Order.relation list, Order.assign_error) result
(** Relation of each pair, in request order.  Fails atomically with
    [Unknown_event] if any argument is stale. *)

val assign_order :
  t -> Order.spec list -> (Order.outcome list, Order.assign_error) result
(** Atomically apply a batch of ordering constraints (Section 2.2), built
    with the {!Order.must_before} family of constructors.  Each pair's
    cycle check rides the graph's topological rank index
    ({!Graph.try_add_edge}): constraints that respect the committed order —
    the common case — are admitted in O(1), and the others pay one search
    bounded to the affected rank interval.  Semantics:

    - all [Must] pairs are applied before any [Prefer] pair, so a prefer can
      never block a satisfiable must;
    - if a [Must] pair contradicts the committed order (or relates an event
      to itself), the whole batch aborts with no side effects;
    - a [Prefer] pair contradicted by the committed order is reported as
      [Reversed]; a prefer of an event with itself is a no-op ([Already]);
    - a pair whose order is already implied adds no edge ([Already]).

    Outcomes are returned in request order. *)

val guarded_assign :
  t ->
  guards:(Event_id.t * Event_id.t * Order.relation) list ->
  Order.spec list ->
  (Order.outcome list, Order.assign_error) result
(** [guarded_assign t ~guards specs] applies [specs] exactly as
    {!assign_order} does, but only after every guard [(e1, e2, expected)]
    is observed to hold: the current relation of [(e1, e2)] must equal
    [expected].  Guards and batch are evaluated against the same state
    with nothing in between, so a replicated engine evaluates them
    atomically.  On a mismatch the call fails with
    [Guard_failed i] ([i] the guard's index) and has no side effects.
    This is the building block of the federation layer's two-shard
    cross-edge commit (DESIGN §12). *)

(** {1 Serialization} *)

(** Full logical state of an engine: the graph plus the API counters, so a
    restored replica reports the same {!stats} as one that never crashed.
    The encoding to bytes lives in the durability library; this type is the
    stable in-memory contract between the two. *)
type snapshot = {
  snap_graph : Graph.snapshot;
  snap_creates : int;
  snap_queries : int;
  snap_assigns : int;
  snap_aborted_batches : int;
  snap_reversals : int;
  snap_collected : int;
}

val to_snapshot : t -> snapshot

val of_snapshot : ?config:config -> snapshot -> t
(** Rebuild an engine that behaves identically to the captured one under
    any subsequent command sequence ([config] mirrors {!create}; the
    traversal memo restarts cold).
    @raise Invalid_argument on an internally inconsistent snapshot. *)

(** Incremental counterpart of {!snapshot} (DESIGN.md §16): the graph's
    dirty-slot delta plus the engine counters captured absolutely.
    Composing the base snapshot with the delta ({!apply_delta}) restores
    the same engine {!to_snapshot} would have captured. *)
type delta = {
  delta_graph : Graph.delta;
  delta_creates : int;
  delta_queries : int;
  delta_assigns : int;
  delta_aborted_batches : int;
  delta_reversals : int;
  delta_collected : int;
}

val to_delta : t -> delta
(** Capture the state changed since the last {!snapshot_written}.  Pure
    read; see {!Graph.to_delta}. *)

val apply_delta : snapshot -> delta -> snapshot
(** Overlay a delta on the base snapshot it was captured against.
    @raise Invalid_argument when the base cannot structurally carry a
    delta (see {!Graph.apply_delta}). *)

val snapshot_written : t -> unit
(** Clear the snapshot dirty set — call after a full or delta capture has
    been made durable. *)

val dirty_slot_count : t -> int
(** Slots the next {!to_delta} would carry. *)

(** {1 Read views}

    The engine's entire read path goes through {!View.t} (DESIGN.md §14).
    A view is either {e live} — reading the engine's own graph directly,
    zero publication cost, valid only on the domain that owns the engine —
    or {e frozen} — a deeply immutable, epoch-stamped copy that any domain
    may query concurrently without synchronization.  Single-threaded
    callers use {!current_view}; the multicore query plane calls
    {!publish} from the writer domain and hands the frozen view to reader
    domains. *)

module View : sig
  type t

  val epoch : t -> int64
  (** The graph mutation version this view reflects.  Epochs are
      monotonic: a higher epoch sees a superset of the committed order
      (monotonicity, paper §2.5), which is what makes answering from a
      slightly stale view safe. *)

  val is_live : t -> Event_id.t -> bool
  val rank : t -> Event_id.t -> int option

  val query :
    t -> Event_id.t -> Event_id.t -> (Order.relation, Event_id.t) result
  (** Relation of one pair ({!Graph.query} semantics).  On a frozen view
      this runs entirely over immutable arrays with per-domain scratch:
      no locks, no counters, no allocation once warm. *)

  val query_order :
    t ->
    (Event_id.t * Event_id.t) list ->
    (Order.relation list, Order.assign_error) result
  (** Batch form with the engine's atomic staleness contract.  On a live
      view this is exactly {!Engine.query_order} (counters included); on a
      frozen view it updates nothing. *)

  val reachable : t -> Event_id.t -> Event_id.t -> bool

  val label_reachable : t -> Event_id.t -> Event_id.t -> bool option
  (** Index-only reachability: [Some ans] when the rank or chain-label
      compare decides ({!Graph.label_reachable}), [None] when only a BFS
      could.  Counter-free; the certify prover uses it to skip
      predecessors that provably cannot sit on a source path. *)

  val digests_enabled : t -> bool
  val commitment : t -> Event_id.t -> string option
  val chain_length : t -> Event_id.t -> int option
  val chain_link : t -> Event_id.t -> int -> Graph.link option
  val head_at : t -> Event_id.t -> int -> string option
  (** Commitment-chain accessors, the certify prover's working set; all
      answer [None] when digests are disabled. *)

  val live_events : t -> int
  val edges : t -> int
end

val current_view : t -> View.t
(** A live view of this engine: always reflects the latest state, costs
    nothing to obtain, and must only be used from the domain that owns
    the engine. *)

val publish : t -> View.t
(** Freeze the current state into an immutable view ({!Graph.freeze}:
    incremental, sharing clean slots with the previous publication) and
    return it.  Safe to hand to other domains; returns the cached view
    unchanged when no mutation happened since the last call. *)

val epoch : t -> int64
(** Current mutation version — the epoch the next {!publish} would
    carry, and the epoch stamped on write replies so clients can demand
    read-your-writes ([`At_least]) from the query plane. *)

(** {1 Introspection} *)

val graph : t -> Graph.t
(** The underlying dependency graph.  {b Write-side use only} (durability,
    federation portals): query paths must go through {!View}. *)

val live_events : t -> int
val edges : t -> int
val memory_bytes : t -> int

val commitment : t -> Event_id.t -> string option
(** The event's commitment-chain head ({!Graph.commitment}); [None] when
    the identifier is stale or the engine runs with [digests = false]. *)

val label_hits : t -> int
(** Reachability probes answered by the chain-label compare alone (surfaced
    to the metrics plane as [engine.label_hits_total]). *)

val label_misses : t -> int
(** Probes that fell back to the memo/BFS path ([engine.label_misses_total]).
    A high miss share means the workload's breadth defeats the chain cap —
    raise {!config.max_chains}. *)

val label_rebuilds : t -> int
(** Full deterministic label recomputations ([engine.label_rebuilds_total]):
    one per snapshot restore, plus any defensive rebuild. *)

val chain_count : t -> int
(** Chains currently holding live events (gauge [engine.graph_chains]). *)

type stats = {
  creates : int;
  queries : int;       (** individual pairs queried *)
  assigns : int;       (** individual pairs assigned *)
  aborted_batches : int;
  reversals : int;
  collected : int;     (** events reclaimed by GC *)
  traversals : int;    (** BFS runs *)
  visited : int;       (** total vertices visited by BFS *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
