(** Vocabulary types for the Kronos ordering API (Table 1 of the paper). *)

(** Result of a [query_order] on a pair [(e1, e2)]. *)
type relation =
  | Before      (** e1 happens before e2. *)
  | After       (** e2 happens before e1. *)
  | Concurrent  (** no path either way: the application may pick. *)
  | Same        (** e1 and e2 are the same event. *)

(** How hard a requested ordering constraint is (Section 2.2). *)
type kind =
  | Must    (** abort the whole batch if the constraint cannot hold *)
  | Prefer  (** accept a reversal if prior constraints force it *)

(** Per-pair outcome of a successful [assign_order] batch. *)
type outcome =
  | Applied   (** a new happens-before edge was recorded *)
  | Already   (** the requested order was already implied; nothing added *)
  | Reversed  (** prefer only: the opposite order was already committed *)

(** Why an [assign_order] batch was aborted (no side effects occurred). *)
type assign_error =
  | Must_violated of int
      (** index (in the request list) of the [Must] pair whose requested
          order contradicts the existing graph *)
  | Must_self of int
      (** index of a [Must] pair relating an event to itself *)
  | Unknown_event of Event_id.t
      (** an argument does not name a live event *)
  | Guard_failed of int
      (** index of the guard pair of a guarded batch whose observed
          relation no longer matches the expected one (see
          [Engine.guarded_assign]) *)

type direction =
  | Happens_before  (** left operand precedes right operand *)
  | Happens_after   (** right operand precedes left operand *)

(** One requested constraint in an [assign_order] batch, relating [left]
    to [right].  Build specs with the smart constructors below rather
    than record literals — [Order.must_before a b] reads as "a must
    happen before b". *)
type spec = {
  left : Event_id.t;
  direction : direction;
  kind : kind;
  right : Event_id.t;
}

val constrain :
  kind:kind -> direction:direction -> Event_id.t -> Event_id.t -> spec
(** [constrain ~kind ~direction a b] is the generic constructor behind the
    four readable forms below. *)

val must_before : Event_id.t -> Event_id.t -> spec
(** [must_before a b]: [a] must happen before [b]; the batch aborts if the
    graph already implies the opposite. *)

val must_after : Event_id.t -> Event_id.t -> spec
(** [must_after a b]: [a] must happen after [b]. *)

val prefer_before : Event_id.t -> Event_id.t -> spec
(** [prefer_before a b]: order [a] before [b] unless prior constraints
    force the reverse, in which case the outcome is [Reversed]. *)

val prefer_after : Event_id.t -> Event_id.t -> spec
(** [prefer_after a b]: order [a] after [b], accepting a reversal. *)

val flip_relation : relation -> relation
(** [flip_relation r] is the relation of [(e2, e1)] given that of [(e1, e2)]. *)

val relation_equal : relation -> relation -> bool
val kind_equal : kind -> kind -> bool
val outcome_equal : outcome -> outcome -> bool
val spec_equal : spec -> spec -> bool
val assign_error_equal : assign_error -> assign_error -> bool

val pp_relation : Format.formatter -> relation -> unit
val pp_kind : Format.formatter -> kind -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_assign_error : Format.formatter -> assign_error -> unit
val pp_direction : Format.formatter -> direction -> unit
val pp_spec : Format.formatter -> spec -> unit
