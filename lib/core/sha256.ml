(* SHA-256 over native ints.  Words live in the low 32 bits of an OCaml
   int (we require a 64-bit platform, as the rest of the engine already
   does); [mask] truncates after additions.  Keeping everything in
   immediate ints avoids the Int32 boxing that would otherwise dominate
   the per-edge commitment fold. *)

let mask = 0xffffffff

let k = [|
  0x428a2f98; 0x71374491; 0xb5c0fbcf; 0xe9b5dba5;
  0x3956c25b; 0x59f111f1; 0x923f82a4; 0xab1c5ed5;
  0xd807aa98; 0x12835b01; 0x243185be; 0x550c7dc3;
  0x72be5d74; 0x80deb1fe; 0x9bdc06a7; 0xc19bf174;
  0xe49b69c1; 0xefbe4786; 0x0fc19dc6; 0x240ca1cc;
  0x2de92c6f; 0x4a7484aa; 0x5cb0a9dc; 0x76f988da;
  0x983e5152; 0xa831c66d; 0xb00327c8; 0xbf597fc7;
  0xc6e00bf3; 0xd5a79147; 0x06ca6351; 0x14292967;
  0x27b70a85; 0x2e1b2138; 0x4d2c6dfc; 0x53380d13;
  0x650a7354; 0x766a0abb; 0x81c2c92e; 0x92722c85;
  0xa2bfe8a1; 0xa81a664b; 0xc24b8b70; 0xc76c51a3;
  0xd192e819; 0xd6990624; 0xf40e3585; 0x106aa070;
  0x19a4c116; 0x1e376c08; 0x2748774c; 0x34b0bcb5;
  0x391c0cb3; 0x4ed8aa4a; 0x5b9cca4f; 0x682e6ff3;
  0x748f82ee; 0x78a5636f; 0x84c87814; 0x8cc70208;
  0x90befffa; 0xa4506ceb; 0xbef9a3f7; 0xc67178f2;
|]

let iv = [|
  0x6a09e667; 0xbb67ae85; 0x3c6ef372; 0xa54ff53a;
  0x510e527f; 0x9b05688c; 0x1f83d9ab; 0x5be0cd19;
|]

let digest_length = 32

let rotr x n = ((x lsr n) lor (x lsl (32 - n))) land mask

(* One compression round over the 64-byte block at [off] in [s], updating
   the state array [h] in place.  [w] is a scratch schedule of 64 ints. *)
let compress h w (s : string) off =
  (* all indices below are statically within [w] (64), [h] (8), [k] (64)
     and the 64-byte block at [off] the callers validated, so unsafe
     accesses are sound; the bounds checks were ~25% of the round loop *)
  for i = 0 to 15 do
    let j = off + (i * 4) in
    Array.unsafe_set w i
      ((Char.code (String.unsafe_get s j) lsl 24)
      lor (Char.code (String.unsafe_get s (j + 1)) lsl 16)
      lor (Char.code (String.unsafe_get s (j + 2)) lsl 8)
      lor Char.code (String.unsafe_get s (j + 3)))
  done;
  for i = 16 to 63 do
    let x = Array.unsafe_get w (i - 15) and y = Array.unsafe_get w (i - 2) in
    let s0 = rotr x 7 lxor rotr x 18 lxor (x lsr 3) in
    let s1 = rotr y 17 lxor rotr y 19 lxor (y lsr 10) in
    Array.unsafe_set w i
      ((Array.unsafe_get w (i - 16) + s0 + Array.unsafe_get w (i - 7) + s1)
      land mask)
  done;
  let a = ref h.(0) and b = ref h.(1) and c = ref h.(2) and d = ref h.(3) in
  let e = ref h.(4) and f = ref h.(5) and g = ref h.(6) and hh = ref h.(7) in
  for i = 0 to 63 do
    let s1 = rotr !e 6 lxor rotr !e 11 lxor rotr !e 25 in
    let ch = (!e land !f) lxor (lnot !e land !g) in
    let t1 =
      (!hh + s1 + ch + Array.unsafe_get k i + Array.unsafe_get w i) land mask
    in
    let s0 = rotr !a 2 lxor rotr !a 13 lxor rotr !a 22 in
    let maj = (!a land !b) lxor (!a land !c) lxor (!b land !c) in
    let t2 = (s0 + maj) land mask in
    hh := !g;
    g := !f;
    f := !e;
    e := (!d + t1) land mask;
    d := !c;
    c := !b;
    b := !a;
    a := (t1 + t2) land mask
  done;
  h.(0) <- (h.(0) + !a) land mask;
  h.(1) <- (h.(1) + !b) land mask;
  h.(2) <- (h.(2) + !c) land mask;
  h.(3) <- (h.(3) + !d) land mask;
  h.(4) <- (h.(4) + !e) land mask;
  h.(5) <- (h.(5) + !f) land mask;
  h.(6) <- (h.(6) + !g) land mask;
  h.(7) <- (h.(7) + !hh) land mask

let state_to_string h =
  let out = Bytes.create digest_length in
  for i = 0 to 7 do
    let v = h.(i) in
    Bytes.set out (i * 4) (Char.chr ((v lsr 24) land 0xff));
    Bytes.set out ((i * 4) + 1) (Char.chr ((v lsr 16) land 0xff));
    Bytes.set out ((i * 4) + 2) (Char.chr ((v lsr 8) land 0xff));
    Bytes.set out ((i * 4) + 3) (Char.chr (v land 0xff))
  done;
  Bytes.unsafe_to_string out

(* Per-domain scratch: state, schedule and a one-block staging buffer.
   Domain-local (rather than global with a single-writer caveat) because
   certificate verification folds links on whatever domain the client or a
   query-pool worker happens to run on, concurrently with the writer.  The
   32-byte result string is the only allocation left on the hot paths
   (the per-edge [compress_pair] fold and the one-block [digest_string]
   of a 52-byte link partner). *)
type scratch = { h : int array; w : int array; block : Bytes.t }

let scratch_key =
  Domain.DLS.new_key (fun () ->
      { h = Array.make 8 0; w = Array.make 64 0; block = Bytes.make 64 '\000' })

let digest_string msg =
  let len = String.length msg in
  let s = Domain.DLS.get scratch_key in
  Array.blit iv 0 s.h 0 8;
  if len <= 55 then begin
    (* single padded block: message, 0x80, zeros, 16 bits of bit length
       (len * 8 < 448 always fits) *)
    Bytes.fill s.block 0 64 '\000';
    Bytes.blit_string msg 0 s.block 0 len;
    Bytes.set s.block len '\x80';
    Bytes.set_uint16_be s.block 62 (len * 8);
    compress s.h s.w (Bytes.unsafe_to_string s.block) 0;
    state_to_string s.h
  end
  else begin
    (* padded length: message + 0x80 + zeros + 64-bit bit length *)
    let total = ((len + 8) / 64 * 64) + 64 in
    let buf = Bytes.make total '\000' in
    Bytes.blit_string msg 0 buf 0 len;
    Bytes.set buf len '\x80';
    let bits = len * 8 in
    for i = 0 to 7 do
      Bytes.set buf (total - 1 - i) (Char.chr ((bits lsr (8 * i)) land 0xff))
    done;
    let padded = Bytes.unsafe_to_string buf in
    let blocks = total / 64 in
    for b = 0 to blocks - 1 do
      compress s.h s.w padded (b * 64)
    done;
    state_to_string s.h
  end

let compress_pair a b =
  if String.length a <> digest_length || String.length b <> digest_length then
    invalid_arg "Sha256.compress_pair: arguments must be 32 bytes";
  let s = Domain.DLS.get scratch_key in
  Bytes.blit_string a 0 s.block 0 digest_length;
  Bytes.blit_string b 0 s.block digest_length digest_length;
  Array.blit iv 0 s.h 0 8;
  compress s.h s.w (Bytes.unsafe_to_string s.block) 0;
  state_to_string s.h

let hex s =
  let out = Bytes.create (2 * String.length s) in
  String.iteri
    (fun i c ->
      let v = Char.code c in
      let d n = "0123456789abcdef".[n] in
      Bytes.set out (2 * i) (d (v lsr 4));
      Bytes.set out ((2 * i) + 1) (d (v land 0xf)))
    s;
  Bytes.unsafe_to_string out
