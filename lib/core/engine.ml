(* Process-wide counters for the metrics plane, aggregated across all
   engines the process hosts (a kronosd process hosts exactly one). *)
module M = struct
  let scope = Kronos_metrics.scope "engine"
  let creates = Kronos_metrics.counter scope "events_created_total"
  let collected = Kronos_metrics.counter scope "events_collected_total"
  let queries = Kronos_metrics.counter scope "queries_total"
  let assigns = Kronos_metrics.counter scope "assigns_total"
  let aborted = Kronos_metrics.counter scope "aborted_batches_total"
  let reversals = Kronos_metrics.counter scope "reversals_total"
end

type config = {
  initial_capacity : int;
  traversal_cache : int;
  digests : bool;
  max_chains : int;
}

let default_config =
  { initial_capacity = 1024; traversal_cache = 0; digests = true;
    max_chains = 64 }

type t = {
  g : Graph.t;
  mutable creates : int;
  mutable queries : int;
  mutable assigns : int;
  mutable aborted_batches : int;
  mutable reversals : int;
  mutable collected : int;
}

let create ?(config = default_config) () =
  { g = Graph.create ~initial_capacity:config.initial_capacity
      ~traversal_cache:config.traversal_cache ~digests:config.digests
      ~max_chains:config.max_chains ();
    creates = 0; queries = 0; assigns = 0; aborted_batches = 0;
    reversals = 0; collected = 0 }

let graph t = t.g

let create_event t =
  t.creates <- t.creates + 1;
  Kronos_metrics.Counter.incr M.creates;
  Graph.create_event t.g

let acquire_ref t e =
  if Graph.acquire_ref t.g e then Ok () else Error (Order.Unknown_event e)

let release_ref t e =
  match Graph.release_ref t.g e with
  | Some n ->
    t.collected <- t.collected + n;
    Kronos_metrics.Counter.add M.collected n;
    Ok n
  | None -> Error (Order.Unknown_event e)

let query_order t pairs =
  let rec check = function
    | [] -> None
    | (e1, e2) :: rest ->
      if not (Graph.is_live t.g e1) then Some e1
      else if not (Graph.is_live t.g e2) then Some e2
      else check rest
  in
  match check pairs with
  | Some e -> Error (Order.Unknown_event e)
  | None ->
    let answer (e1, e2) =
      t.queries <- t.queries + 1;
      Kronos_metrics.Counter.incr M.queries;
      match Graph.query t.g e1 e2 with
      | Ok r -> r
      | Error _ -> assert false (* all arguments were checked live *)
    in
    Ok (List.map answer pairs)

(* A normalized constraint: [before] precedes [after]. *)
type pending = {
  index : int;
  before : Event_id.t;
  after : Event_id.t;
  kind : Order.kind;
}

let normalize index (s : Order.spec) =
  match s.direction with
  | Order.Happens_before ->
    { index; before = s.left; after = s.right; kind = s.kind }
  | Order.Happens_after ->
    { index; before = s.right; after = s.left; kind = s.kind }

let assign_order t requests =
  let n = List.length requests in
  let pending = List.mapi normalize requests in
  let stale =
    List.find_opt
      (fun p ->
        not (Graph.is_live t.g p.before) || not (Graph.is_live t.g p.after))
      pending
  in
  match stale with
  | Some p ->
    let e = if Graph.is_live t.g p.before then p.after else p.before in
    Error (Order.Unknown_event e)
  | None ->
    let musts = List.filter (fun p -> p.kind = Order.Must) pending in
    let prefers = List.filter (fun p -> p.kind = Order.Prefer) pending in
    let outcomes = Array.make n Order.Already in
    (* Edges added by this batch, most recent first, for rollback. *)
    let added = ref [] in
    let rollback () =
      List.iter (fun (u, v) -> Graph.remove_last_edge t.g u v) !added;
      Graph.commit_batch t.g;
      t.aborted_batches <- t.aborted_batches + 1;
      Kronos_metrics.Counter.incr M.aborted
    in
    (* The rank index folds the cycle check into edge insertion: when the
       ranks already agree it is O(1), otherwise the bounded relabel search
       detects [after ⇝ before] itself — no separate full reachability
       probe per constraint.  A [false] return is exactly the old
       "contradicts the committed order" case. *)
    let try_apply_edge p =
      if Graph.try_add_edge t.g p.before p.after then begin
        added := (p.before, p.after) :: !added;
        outcomes.(p.index) <- Order.Applied;
        true
      end
      else false
    in
    let rec apply_musts = function
      | [] -> Ok ()
      | p :: rest ->
        t.assigns <- t.assigns + 1;
        Kronos_metrics.Counter.incr M.assigns;
        if Event_id.equal p.before p.after then begin
          rollback ();
          Error (Order.Must_self p.index)
        end
        else if Graph.reachable t.g p.before p.after then begin
          outcomes.(p.index) <- Order.Already;
          apply_musts rest
        end
        else if try_apply_edge p then apply_musts rest
        else begin
          rollback ();
          Error (Order.Must_violated p.index)
        end
    in
    let apply_prefer p =
      t.assigns <- t.assigns + 1;
      Kronos_metrics.Counter.incr M.assigns;
      if Event_id.equal p.before p.after then
        outcomes.(p.index) <- Order.Already
      else if Graph.reachable t.g p.before p.after then
        outcomes.(p.index) <- Order.Already
      else if not (try_apply_edge p) then begin
        t.reversals <- t.reversals + 1;
        Kronos_metrics.Counter.incr M.reversals;
        outcomes.(p.index) <- Order.Reversed
      end
    in
    (match apply_musts musts with
     | Error e -> Error e
     | Ok () ->
       List.iter apply_prefer prefers;
       (* the batch is final: seal the graph's per-edge rollback journal *)
       Graph.commit_batch t.g;
       Ok (Array.to_list outcomes))

(* Guards and batch evaluate against the same engine state: the state
   machine applies commands one at a time, so nothing can interleave
   between the guard checks and the constraint batch.  This is the
   primitive the federation layer's two-shard cross-edge commit rides:
   the second shard's apply re-validates the relations the router probed,
   closing the window in which a concurrent assign could have changed
   them. *)
let guarded_assign t ~guards specs =
  let rec check i = function
    | [] -> Ok ()
    | (e1, e2, expected) :: rest ->
      if not (Graph.is_live t.g e1) then Error (Order.Unknown_event e1)
      else if not (Graph.is_live t.g e2) then Error (Order.Unknown_event e2)
      else begin
        t.queries <- t.queries + 1;
        Kronos_metrics.Counter.incr M.queries;
        match Graph.query t.g e1 e2 with
        | Ok r when Order.relation_equal r expected -> check (i + 1) rest
        | Ok _ -> Error (Order.Guard_failed i)
        | Error _ -> assert false (* both arguments were checked live *)
      end
  in
  match check 0 guards with
  | Error e ->
    t.aborted_batches <- t.aborted_batches + 1;
    Kronos_metrics.Counter.incr M.aborted;
    Error e
  | Ok () -> assign_order t specs

type snapshot = {
  snap_graph : Graph.snapshot;
  snap_creates : int;
  snap_queries : int;
  snap_assigns : int;
  snap_aborted_batches : int;
  snap_reversals : int;
  snap_collected : int;
}

let to_snapshot t =
  {
    snap_graph = Graph.to_snapshot t.g;
    snap_creates = t.creates;
    snap_queries = t.queries;
    snap_assigns = t.assigns;
    snap_aborted_batches = t.aborted_batches;
    snap_reversals = t.reversals;
    snap_collected = t.collected;
  }

let of_snapshot ?(config = default_config) s =
  {
    g =
      Graph.of_snapshot ~initial_capacity:config.initial_capacity
        ~traversal_cache:config.traversal_cache ~digests:config.digests
        ~max_chains:config.max_chains s.snap_graph;
    creates = s.snap_creates;
    queries = s.snap_queries;
    assigns = s.snap_assigns;
    aborted_batches = s.snap_aborted_batches;
    reversals = s.snap_reversals;
    collected = s.snap_collected;
  }

(* Incremental snapshots (DESIGN.md §16): the graph delta plus the
   engine's own counters captured absolutely — they are six ints, cheaper
   to carry wholesale than to diff. *)
type delta = {
  delta_graph : Graph.delta;
  delta_creates : int;
  delta_queries : int;
  delta_assigns : int;
  delta_aborted_batches : int;
  delta_reversals : int;
  delta_collected : int;
}

let to_delta t =
  {
    delta_graph = Graph.to_delta t.g;
    delta_creates = t.creates;
    delta_queries = t.queries;
    delta_assigns = t.assigns;
    delta_aborted_batches = t.aborted_batches;
    delta_reversals = t.reversals;
    delta_collected = t.collected;
  }

let apply_delta s d =
  {
    snap_graph = Graph.apply_delta s.snap_graph d.delta_graph;
    snap_creates = d.delta_creates;
    snap_queries = d.delta_queries;
    snap_assigns = d.delta_assigns;
    snap_aborted_batches = d.delta_aborted_batches;
    snap_reversals = d.delta_reversals;
    snap_collected = d.delta_collected;
  }

let snapshot_written t = Graph.snapshot_written t.g
let dirty_slot_count t = Graph.dirty_slot_count t.g

let live_events t = Graph.live_count t.g
let edges t = Graph.edge_count t.g
let memory_bytes t = Graph.memory_bytes t.g
let commitment t e = Graph.commitment t.g e
let label_hits t = Graph.label_hit_count t.g
let label_misses t = Graph.label_miss_count t.g
let label_rebuilds t = Graph.label_rebuild_count t.g
let chain_count t = Graph.chain_count t.g

type stats = {
  creates : int;
  queries : int;
  assigns : int;
  aborted_batches : int;
  reversals : int;
  collected : int;
  traversals : int;
  visited : int;
}

let stats (t : t) =
  {
    creates = t.creates;
    queries = t.queries;
    assigns = t.assigns;
    aborted_batches = t.aborted_batches;
    reversals = t.reversals;
    collected = t.collected;
    traversals = Graph.traversal_count t.g;
    visited = Graph.visited_total t.g;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>creates=%d queries=%d assigns=%d aborted=%d reversals=%d@ \
     collected=%d traversals=%d visited=%d@]"
    s.creates s.queries s.assigns s.aborted_batches s.reversals s.collected
    s.traversals s.visited

(* ------------------------------------------------------------------ *)
(* Read views (DESIGN.md §14).                                         *)
(* ------------------------------------------------------------------ *)

let epoch t = Int64.of_int (Graph.version t.g)

(* A [Live] view reads the engine's own graph directly — zero publication
   cost, single-domain only, and queries keep feeding the engine's
   counters exactly as before.  A [Frozen] view is a deeply immutable
   snapshot safe to read from any domain; its queries touch no mutable
   state at all (no counters, no caches). *)
type view = Live of t | Frozen of Graph.Frozen.g

let current_view t = Live t

let publish t = Frozen (Graph.freeze t.g)

module View = struct
  type t = view

  let epoch = function
    | Live e -> Int64.of_int (Graph.version e.g)
    | Frozen f -> Int64.of_int (Graph.Frozen.version f)

  let is_live v id =
    match v with
    | Live e -> Graph.is_live e.g id
    | Frozen f -> Graph.Frozen.is_live f id

  let rank v id =
    match v with
    | Live e -> Graph.rank e.g id
    | Frozen f -> Graph.Frozen.rank f id

  let query v e1 e2 =
    match v with
    | Live e -> Graph.query e.g e1 e2
    | Frozen f -> Graph.Frozen.query f e1 e2

  let reachable v u w =
    match v with
    | Live e -> Graph.reachable e.g u w
    | Frozen f -> Graph.Frozen.reachable f u w

  let label_reachable v u w =
    match v with
    | Live e -> Graph.label_reachable e.g u w
    | Frozen f -> Graph.Frozen.label_reachable f u w

  let query_order v pairs =
    match v with
    | Live e -> query_order e pairs
    | Frozen f ->
      let rec check = function
        | [] -> None
        | (e1, e2) :: rest ->
          if not (Graph.Frozen.is_live f e1) then Some e1
          else if not (Graph.Frozen.is_live f e2) then Some e2
          else check rest
      in
      (match check pairs with
       | Some e -> Error (Order.Unknown_event e)
       | None ->
         let answer (e1, e2) =
           match Graph.Frozen.query f e1 e2 with
           | Ok r -> r
           | Error _ -> assert false (* all arguments were checked live *)
         in
         Ok (List.map answer pairs))

  let digests_enabled = function
    | Live e -> Graph.digests_enabled e.g
    | Frozen f -> Graph.Frozen.digests_enabled f

  let commitment v id =
    match v with
    | Live e -> Graph.commitment e.g id
    | Frozen f -> Graph.Frozen.commitment f id

  let chain_length v id =
    match v with
    | Live e -> Graph.chain_length e.g id
    | Frozen f -> Graph.Frozen.chain_length f id

  let chain_link v id i =
    match v with
    | Live e -> Graph.chain_link e.g id i
    | Frozen f -> Graph.Frozen.chain_link f id i

  let head_at v id n =
    match v with
    | Live e -> Graph.head_at e.g id n
    | Frozen f -> Graph.Frozen.head_at f id n

  let live_events = function
    | Live e -> Graph.live_count e.g
    | Frozen f -> Graph.Frozen.live_count f

  let edges = function
    | Live e -> Graph.edge_count e.g
    | Frozen f -> Graph.Frozen.edge_count f
end
