(** The event commitment scheme shared by the graph (which maintains the
    chains) and the certify library (whose verifier recomputes them with no
    graph access).  DESIGN.md §13 documents the construction; in short:

    - every event starts from an {e identity digest} [init e] that binds its
      identifier injectively (no hashing needed: distinct events get
      distinct 32-byte encodings by construction);
    - admitting an edge [u -> v] folds one {e link} into [v]'s chain:
      [head' v = fold_link (head v) (link_partner (id u) (head u))], where
      [head u] is [u]'s chain head {e at that moment};
    - an event's {e commitment} is its current chain head.

    [link_partner] hashes the predecessor's identifier together with its
    head, so a certificate step authenticates {e which} event was linked,
    not just an anonymous digest; [fold_link] is a single application of
    the SHA-256 compression function (collision-resistant, one compression
    per edge). *)

val length : int
(** Digest size in bytes (32). *)

val init : Event_id.t -> string
(** Identity digest of a fresh event: an injective 32-byte encoding of the
    identifier under a domain tag.  Two distinct events can never share it,
    and no [fold_link]/[link_partner] output can collide with it short of a
    second preimage (outputs of the hash hitting the tagged sparse encoding
    space). *)

val link_partner : Event_id.t -> string -> string
(** [link_partner u head_u] is the digest folded into a successor's chain
    when an edge out of [u] is admitted while [u]'s chain head is [head_u]:
    [SHA-256(tag || id u || head_u)] (one compression). *)

val fold_link : string -> string -> string
(** [fold_link head partner] is the chain head after folding one link:
    a single SHA-256 compression of the 64-byte block [head || partner]. *)

val fold : string -> string list -> string
(** [fold head partners] folds a list of link partners in order. *)

val equal : string -> string -> bool
val pp : Format.formatter -> string -> unit
(** Short (8-hex-digit) rendering for logs and error messages. *)

val to_hex : string -> string
