(** The event dependency graph (Section 2 of the paper).

    Vertices are events; a directed edge [u -> v] records that [u] happens
    before [v].  The structure maintains the paper's two invariants:

    - {b coherency}: the graph is acyclic — an edge is only added after a
      reachability check shows it cannot close a cycle;
    - {b monotonicity}: no public operation removes a path; edges disappear
      only when their source vertex is garbage collected, at which point no
      client-visible traversal can start from it.

    Slots are reused after collection; identifiers carry a generation so
    stale identifiers are detected rather than silently re-bound.

    All memory needed to traverse (visited sparse set, BFS queue) is
    preallocated and grows with the vertex capacity, so queries allocate
    nothing. *)

type t

val create : ?initial_capacity:int -> ?traversal_cache:int -> unit -> t
(** [create ()] is an empty graph.  [initial_capacity] (default 1024) sizes
    the initial slot arrays; they double on demand.

    [traversal_cache] (default 0 = off) bounds an internal memo of
    {e positive} reachability results (Section 2.5 of the paper): a
    [u ->* v] fact is stable forever by monotonicity, so it may be cached;
    negative results never are.  Entries key on full identifiers
    (slot + generation), so garbage collection cannot resurrect them. *)

(** {1 Events and references} *)

val create_event : t -> Event_id.t
(** Allocate a new event with reference count 1. *)

val is_live : t -> Event_id.t -> bool

val refcount : t -> Event_id.t -> int option
(** [None] when the identifier does not name a live event. *)

val acquire_ref : t -> Event_id.t -> bool
(** Increment the reference count.  Returns [false] (and does nothing) when
    the identifier is stale. *)

val release_ref : t -> Event_id.t -> int option
(** Decrement the reference count and run strict garbage collection from this
    vertex.  Returns the number of events collected (0 when the event stays),
    or [None] when the identifier is stale or its reference count is already
    zero (no handle to release).

    Collection is topological: a vertex is reclaimed when its reference count
    is zero and every vertex ordered before it has been reclaimed (in-degree
    zero).  Reclaiming it removes its outgoing edges, which may cascade. *)

(** {1 Ordering} *)

val query : t -> Event_id.t -> Event_id.t -> (Order.relation, Event_id.t) result
(** [query g e1 e2] finds the committed relation between two events by BFS.
    [Error e] reports a stale/unknown identifier. *)

val reachable : t -> Event_id.t -> Event_id.t -> bool
(** [reachable g u v] is [true] iff a happens-before path [u ->* v] exists.
    Returns [false] on stale identifiers and when [u = v]. *)

val add_edge : t -> Event_id.t -> Event_id.t -> unit
(** [add_edge g u v] unconditionally records [u -> v].  {b Caller must have
    established} that [v] is live, [u] is live, [u <> v] and [v ->* u] does
    not hold; used by {!Engine} which performs those checks (and may roll the
    edge back with {!remove_last_edge} while aborting an atomic batch). *)

val remove_last_edge : t -> Event_id.t -> Event_id.t -> unit
(** Roll back the most recent [add_edge g u v].  Only valid in LIFO order on
    edges added by the current (not yet exposed) batch.
    @raise Invalid_argument if the last edge out of [u] is not [v]. *)

(** {1 Serialization} *)

(** A self-contained copy of the graph's logical state, for the durability
    layer.  It captures everything that affects future behaviour:

    - adjacency lists in {e insertion order} (BFS visits successors in that
      order, so traversal statistics stay deterministic after a restore);
    - the free-slot stack in order (slot reuse by [create_event] is LIFO);
    - per-slot generations, including those of free slots, so restored
      identifiers resolve exactly as before and stale ones stay stale;
    - traversal counters, so work accounting continues rather than resets.

    In-degrees, live/edge counts and the traversal memo are reconstructed
    (the memo restarts cold: it is a cache, not state). *)
type snapshot = {
  snap_next_slot : int;          (** high-water mark of ever-used slots *)
  snap_refcount : int array;     (** per slot; -1 marks a free slot *)
  snap_gen : int array;          (** per slot *)
  snap_succ : int array array;   (** successor slots, insertion order *)
  snap_free : int array;         (** free stack, bottom to top *)
  snap_traversals : int;
  snap_visited_total : int;
}

val to_snapshot : t -> snapshot
(** Deep copy; the snapshot does not alias the graph's arrays. *)

val of_snapshot :
  ?initial_capacity:int -> ?traversal_cache:int -> snapshot -> t
(** Rebuild a graph behaviourally identical to the one captured.  The
    options mirror {!create}; capacity is raised to fit the snapshot.
    @raise Invalid_argument if the snapshot is internally inconsistent
    (mismatched array lengths, edges to free slots, out-of-range values). *)

(** {1 Introspection} *)

val live_count : t -> int
val edge_count : t -> int
val capacity : t -> int

val out_degree : t -> Event_id.t -> int option
val in_degree : t -> Event_id.t -> int option

val successors : t -> Event_id.t -> Event_id.t list
(** Direct happens-after neighbours; [[]] for stale identifiers. *)

val iter_live : t -> (Event_id.t -> unit) -> unit

val fold_edges : t -> ('a -> Event_id.t -> Event_id.t -> 'a) -> 'a -> 'a

val memory_bytes : t -> int
(** Approximate resident footprint of all internal arrays, in bytes. *)

val traversal_count : t -> int
(** Number of BFS traversals performed so far. *)

val visited_total : t -> int
(** Total vertices visited across all traversals (work accounting). *)

val traversal_cache_hits : t -> int
(** Queries answered from the positive-reachability memo. *)
