(** The event dependency graph (Section 2 of the paper).

    Vertices are events; a directed edge [u -> v] records that [u] happens
    before [v].  The structure maintains the paper's two invariants:

    - {b coherency}: the graph is acyclic — an edge is only admitted after a
      check shows it cannot close a cycle;
    - {b monotonicity}: no public operation removes a path; edges disappear
      only when their source vertex is garbage collected, at which point no
      client-visible traversal can start from it.

    Slots are reused after collection; identifiers carry a generation so
    stale identifiers are detected rather than silently re-bound.

    {b Topological rank index.}  Every slot carries a persistent integer
    rank maintained incrementally (Pearce–Kelly / Haeupler–Sen–Tarjan
    style) under the invariant: [u ⇝ v] implies [rank u < rank v].  Edges
    that respect the current order — the common case, since fresh events
    take increasing ranks — cost O(1); an out-of-order edge triggers a
    relabel confined to the affected region, and the same bounded search
    doubles as the cycle check.  Queries exploit the contrapositive:
    [rank u >= rank v] refutes [u ⇝ v] in O(1), which eliminates at least
    one BFS direction of every {!query}, and the remaining traversal is a
    bidirectional BFS pruned to the open rank window.  The rank index
    survives slot reuse, garbage collection, {!remove_last_edge} rollback
    and snapshot round-trips.

    {b Chain-decomposition labels.}  On top of the ranks, live events are
    partitioned greedily into at most [max_chains] chains (DESIGN.md §15):
    every chain member reaches all later members, and each slot carries an
    exact label — per chain, the lowest position it reaches — so when the
    query destination sits on a chain, {e both} the positive and the
    negative answer are an O(#chains) compare.  Labels are maintained
    incrementally at edge admission, restored exactly by rollback, survive
    GC slot reuse, and are rebuilt deterministically on snapshot restore;
    only chain-cap saturation falls back to the BFS (counted by
    {!label_miss_count}).

    All memory needed to traverse (visited sparse sets, BFS queues) is
    preallocated and grows with the vertex capacity, so queries allocate
    nothing. *)

type t

val create :
  ?initial_capacity:int -> ?traversal_cache:int -> ?digests:bool ->
  ?max_chains:int -> unit -> t
(** [create ()] is an empty graph.  [initial_capacity] (default 1024) sizes
    the initial slot arrays; they double on demand.

    [max_chains] (default 64) caps the chain-decomposition reachability
    index.  Wholly-dead chains are recycled, so the cap bounds concurrent
    breadth, not history; events admitted while every chain is occupied
    stay unassigned and queries to them fall back to the BFS.  [0]
    disables the label index entirely.

    [traversal_cache] (default 0 = off) bounds an internal memo of
    {e positive} reachability results (Section 2.5 of the paper): a
    [u ->* v] fact is stable forever by monotonicity, so it may be cached;
    negative results never are.  Entries key on full identifiers
    (slot + generation), so garbage collection cannot resurrect them.
    Rank pruning runs {e before} the memo: a rank-refuted pair never pays
    the hash lookup.

    [digests] (default [true]) maintains hash-chained event commitments
    alongside the graph (DESIGN.md §13): admitting an edge folds one link —
    two SHA-256 compressions — into the target's chain, and an event's
    {!commitment} is its current chain head.  The certify library proves
    happens-before facts against these commitments.  Disabling trades
    verifiability for the fold cost. *)

(** {1 Events and references} *)

val create_event : t -> Event_id.t
(** Allocate a new event with reference count 1.  The event takes a fresh
    topological rank above every existing one, so ordering events in
    creation order never relabels. *)

val is_live : t -> Event_id.t -> bool

val refcount : t -> Event_id.t -> int option
(** [None] when the identifier does not name a live event. *)

val acquire_ref : t -> Event_id.t -> bool
(** Increment the reference count.  Returns [false] (and does nothing) when
    the identifier is stale. *)

val release_ref : t -> Event_id.t -> int option
(** Decrement the reference count and run strict garbage collection from this
    vertex.  Returns the number of events collected (0 when the event stays),
    or [None] when the identifier is stale or its reference count is already
    zero (no handle to release).

    Collection is topological: a vertex is reclaimed when its reference count
    is zero and every vertex ordered before it has been reclaimed (in-degree
    zero).  Reclaiming it removes its outgoing edges, which may cascade. *)

(** {1 Ordering} *)

val query : t -> Event_id.t -> Event_id.t -> (Order.relation, Event_id.t) result
(** [query g e1 e2] finds the committed relation between two events.  The
    rank comparison answers at least one direction in O(1); the other (if
    compatible) runs one rank-pruned bidirectional BFS.  [Error e] reports a
    stale/unknown identifier. *)

val reachable : t -> Event_id.t -> Event_id.t -> bool
(** [reachable g u v] is [true] iff a happens-before path [u ->* v] exists.
    Returns [false] on stale identifiers and when [u = v]. *)

val label_reachable : t -> Event_id.t -> Event_id.t -> bool option
(** [label_reachable g u v] answers [reachable g u v] from the rank and
    chain-label indexes alone: [Some ans] in O(#chains) worst case, [None]
    when only a traversal could tell (the destination has no chain).
    Touches no counters — safe for provers to consult per candidate edge
    without distorting the query-path hit rate. *)

val rank : t -> Event_id.t -> int option
(** The event's current topological rank ([None] when stale).  Ranks only
    promise [u ⇝ v] implies [rank u < rank v]; they are sparse, change on
    relabels, and carry no meaning beyond the relative order. *)

val try_add_edge : t -> Event_id.t -> Event_id.t -> bool
(** [try_add_edge g u v] records [u -> v] and returns [true], unless the
    edge would close a cycle ([v ->* u], or [u = v]) in which case the graph
    is left untouched and the result is [false].  The cycle check is O(1)
    when [rank u < rank v]; otherwise it is a forward search from [v]
    bounded by [rank u], which then doubles as the relabel's frontier.
    @raise Invalid_argument if either identifier is stale. *)

val add_edge : t -> Event_id.t -> Event_id.t -> unit
(** [add_edge g u v] records [u -> v].  {b Caller must have established}
    that [u <> v] and [v ->* u] does not hold; the rank index re-checks
    cheaply and raises on contract violations instead of corrupting the
    graph.  Used by {!Engine}, which may roll the edge back with
    {!remove_last_edge} while aborting an atomic batch.
    @raise Invalid_argument on stale identifiers, self edges, or an edge
    that would close a cycle. *)

val remove_last_edge : t -> Event_id.t -> Event_id.t -> unit
(** Roll back the most recent [add_edge g u v].  Only valid in LIFO order on
    edges added by the current (not yet exposed) batch.  Any relabel the
    edge caused is kept: removing an edge only removes paths, so the rank
    invariant cannot break.  Chain labels {e are} rolled back exactly (an
    over-approximate label would corrupt negative answers): each admitted
    edge journals its chain and label changes until {!commit_batch}, and
    rollback pops the journal.
    @raise Invalid_argument if the last edge out of [u] is not [v]. *)

val commit_batch : t -> unit
(** Seal the chain-label rollback journal: the edges added since the last
    seal are final and {!remove_last_edge} will no longer be asked to undo
    them.  The engine calls this at every batch boundary; event creation
    and collection seal implicitly.  Calling it is never required for
    correctness of queries — only for bounding journal memory and keeping
    rollback O(changed slots). *)

(** {1 Commitment chains}

    Maintained when {!create} was given [~digests:true] (the default); all
    accessors below answer [None] otherwise, and on stale identifiers. *)

(** One link of an event's commitment chain, recorded when an edge into it
    was admitted.  [l_partner = Chain_digest.link_partner l_pred l_pred_head]
    and [l_head = Chain_digest.fold_link previous_head l_partner] are cached
    so provers never re-hash. *)
type link = private {
  l_pred : Event_id.t;   (** predecessor identifier at link time *)
  l_pred_head : string;  (** predecessor chain head at link time *)
  l_pred_pos : int;      (** predecessor link count at link time *)
  l_partner : string;
  l_head : string;
}

val digests_enabled : t -> bool

val commitment : t -> Event_id.t -> string option
(** The event's current chain head: its identity digest while no edge has
    been admitted into it, else the head after the newest link. *)

val chain_length : t -> Event_id.t -> int option
(** Number of links folded so far (= edges admitted into the event and not
    rolled back). *)

val chain_link : t -> Event_id.t -> int -> link option
(** [chain_link g e i] is the event's [i]-th link (0-based), [None] when out
    of range. *)

val head_at : t -> Event_id.t -> int -> string option
(** [head_at g e n] is the chain head after the first [n] links
    ([0 <= n <= chain_length]); [head_at g e 0] is the identity digest. *)

val digest_fold_count : t -> int
(** SHA-256 compressions spent maintaining chains (2 per admitted edge,
    including folds replayed by snapshot restore). *)

(** {1 Serialization} *)

(** A self-contained copy of the graph's logical state, for the durability
    layer.  It captures everything that affects future behaviour:

    - adjacency lists in {e insertion order} (searches visit successors in
      that order, so traversal statistics stay deterministic after a
      restore);
    - the free-slot stack in order (slot reuse by [create_event] is LIFO);
    - per-slot generations, including those of free slots, so restored
      identifiers resolve exactly as before and stale ones stay stale;
    - per-slot topological ranks and the rank allocator, so restored
      engines prune and relabel exactly as the captured one would
      ([snap_rank = None] marks a legacy rank-less capture: ranks are then
      rebuilt deterministically with Kahn's algorithm, preserving query
      answers but not necessarily traversal statistics);
    - traversal counters, so work accounting continues rather than resets.

    In-degrees, reverse adjacency, live/edge counts and the traversal memo
    are reconstructed (the memo restarts cold: it is a cache, not state). *)

(** The chain-decomposition assignment (snapshot format v5).  Labels are
    deliberately absent: exact labels are a pure function of adjacency +
    chains, recomputed identically on every restore. *)
type chain_snapshot = {
  cs_chain_of : int array;    (** per slot; -1 = unassigned *)
  cs_chain_pos : int array;   (** per slot; valid when assigned *)
  cs_chain_len : int array;   (** per chain: members ever appended *)
  cs_free_chains : int array; (** wholly-dead chains, stack order *)
}

type snapshot = {
  snap_next_slot : int;          (** high-water mark of ever-used slots *)
  snap_refcount : int array;     (** per slot; -1 marks a free slot *)
  snap_gen : int array;          (** per slot *)
  snap_succ : int array array;   (** successor slots, insertion order *)
  snap_free : int array;         (** free stack, bottom to top *)
  snap_rank : int array option;  (** per slot; [None] for legacy captures *)
  snap_next_rank : int;          (** rank allocator high-water mark *)
  snap_traversals : int;
  snap_visited_total : int;
  snap_links : (int64 * string * int) array array option;
  (** per-slot commitment-chain links as
      [(predecessor id, predecessor head, predecessor position)] triples;
      partners and heads are refolded on restore.  [None] marks a capture
      without a digest section (legacy version, or digests disabled):
      chains are then rebuilt deterministically from adjacency — see
      {!of_snapshot}. *)
  snap_version : int;
  (** the graph {!version} at capture time, so the view epoch continues
      monotonically across restarts.  [0] marks a legacy capture (snapshot
      format < 4): restore then seeds the version from the rank allocator,
      which is deterministic across replicas but not continuous with the
      captured engine's epoch. *)
  snap_chains : chain_snapshot option;
  (** the chain-decomposition assignment; [None] marks a legacy capture
      (format < 5): chains are then rebuilt canonically — live slots in
      (rank, slot) order, each extending the first predecessor that is its
      chain's tail — so replicas restoring the same capture agree, though
      the assignment generally differs from the captured engine's (and so
      may the post-restore hit rate, never an answer). *)
}

val to_snapshot : t -> snapshot
(** Deep copy; the snapshot does not alias the graph's arrays.
    [snap_rank] and [snap_chains] are always [Some _]; [snap_links] is
    [Some _] iff digests are enabled. *)

val of_snapshot :
  ?initial_capacity:int -> ?traversal_cache:int -> ?digests:bool ->
  ?max_chains:int -> snapshot -> t
(** Rebuild a graph behaviourally identical to the one captured.  The
    options mirror {!create}; capacity is raised to fit the snapshot.

    With [~digests:true] (default) and [snap_links = None] — a legacy
    capture upgraded in place — commitment chains are rebuilt canonically:
    live slots in (rank, slot) order, one link per stored predecessor in
    reverse-adjacency order, each fold using the predecessor's final head.
    The rebuild is a function of the snapshot's adjacency alone, so every
    upgrade of the same logical graph agrees on every commitment (whether
    ranks were persisted or reconstructed); it does {e not} reproduce the
    captured engine's original chains, whose admission interleaving the
    snapshot never recorded.
    @raise Invalid_argument if the snapshot is internally inconsistent
    (mismatched array lengths, edges to free slots, out-of-range values,
    ranks violating the edge invariant, a cyclic edge set, or malformed
    chain links). *)

(** {1 Incremental snapshots}

    The graph tracks the slots whose snapshot-visible state changed since
    the last durable snapshot in a dedicated dirty set — a superset of the
    freeze set, because refcount moves and rank relabels matter to a
    restore even though frozen views never observe them.  {!to_delta}
    captures exactly those slots plus every small global; composing the
    previous full snapshot with the delta ({!apply_delta}) yields a
    snapshot bit-equal in behaviour to {!to_snapshot} of the same graph.
    The set is consumed only by an explicit {!snapshot_written} — called
    {e after} the capture is durable, so a failed write never loses
    dirtiness. *)

(** Per-slot section of a delta: the slot's complete snapshot-visible
    state at capture time (free slots appear with [sd_refcount = -1]). *)
type slot_delta = {
  sd_slot : int;
  sd_refcount : int;
  sd_gen : int;
  sd_rank : int;
  sd_succ : int array;
  sd_links : (int64 * string * int) array;  (** empty when digests are off *)
  sd_chain_of : int;
  sd_chain_pos : int;
}

(** A delta against the graph state as of the last {!snapshot_written}:
    dirty slots in ascending order, plus the globals (free stack, rank
    allocator, chain table, counters) captured wholesale — they are small
    and churn too fast to diff. *)
type delta = {
  d_slots : slot_delta array;   (** ascending [sd_slot] order *)
  d_next_slot : int;
  d_free : int array;
  d_next_rank : int;
  d_traversals : int;
  d_visited_total : int;
  d_version : int;
  d_chain_len : int array;
  d_free_chains : int array;
  d_digests : bool;
}

val to_delta : t -> delta
(** Capture the slots dirtied since the last {!snapshot_written}.  Pure
    read — the dirty set survives until {!snapshot_written}. *)

val apply_delta : snapshot -> delta -> snapshot
(** Overlay a delta on the base snapshot it was captured against.  Pure;
    the composed snapshot is validated by {!of_snapshot} like any other.
    @raise Invalid_argument when the base structurally cannot carry the
    delta: no rank/chain/digest section (a legacy capture whose restore
    rebuilt that state), or a delta whose slot space is smaller than the
    base's. *)

val snapshot_written : t -> unit
(** Mark the current state durably captured: clear the snapshot dirty set
    so the next {!to_delta} starts from here.  Call only after the write
    (full or delta) has been made durable. *)

val dirty_slot_count : t -> int
(** Slots the next {!to_delta} would carry. *)

(** {1 Introspection} *)

val live_count : t -> int
val edge_count : t -> int
val capacity : t -> int

val out_degree : t -> Event_id.t -> int option
val in_degree : t -> Event_id.t -> int option

val successors : t -> Event_id.t -> Event_id.t list
(** Direct happens-after neighbours; [[]] for stale identifiers. *)

val predecessors : t -> Event_id.t -> Event_id.t list
(** Direct happens-before neighbours; [[]] for stale identifiers.  Order is
    unspecified (it is perturbed by collection and snapshot restore). *)

val iter_live : t -> (Event_id.t -> unit) -> unit

val fold_edges : t -> ('a -> Event_id.t -> Event_id.t -> 'a) -> 'a -> 'a

val memory_bytes : t -> int
(** Approximate resident footprint of all internal arrays, in bytes. *)

val traversal_count : t -> int
(** Number of graph traversals performed so far (bidirectional searches and
    bounded cycle probes; rank-refuted answers never traverse). *)

val visited_total : t -> int
(** Total vertices visited across all traversals (work accounting): every
    distinct slot inserted into a visited set, endpoints included. *)

val traversal_cache_hits : t -> int
(** Queries answered from the positive-reachability memo. *)

val rank_relabel_count : t -> int
(** Edge insertions that triggered an affected-region relabel. *)

val rank_pruned_count : t -> int
(** Reachability directions refuted by rank comparison alone (no
    traversal). *)

val bidir_traversal_count : t -> int
(** Backward frontier expansions performed by bidirectional searches. *)

val label_hit_count : t -> int
(** Reachability probes answered by the chain-label compare alone (no
    traversal, no memo). *)

val label_miss_count : t -> int
(** Probes that passed the rank filter but found the destination off every
    chain (cap saturation, or no admitted in-edge) and fell back to the
    memo/BFS path. *)

val label_rebuild_count : t -> int
(** Full deterministic label recomputations (snapshot restores, and the
    defensive out-of-protocol rollback path). *)

val max_chains : t -> int
(** The chain cap this graph was created with. *)

val chain_count : t -> int
(** Chains currently holding at least one live event. *)

(** {1 Frozen views}

    A {!Frozen.g} is a deeply immutable copy of the query-visible state —
    liveness, generations, ranks, adjacency in both directions, and
    commitment chains — stamped with the graph {!version} at capture time.
    It shares nothing mutable with the live graph, so it may be read from
    any domain without synchronization while the writer domain keeps
    mutating the original (DESIGN.md §14). *)

val version : t -> int
(** Monotonic mutation counter, bumped once per view-visible change:
    event creation, collection, edge admission, edge rollback.  Reference
    count changes that do not collect, and internal rank relabels, are
    invisible to views and do not bump it.  This is the epoch stamped on
    frozen views and surfaced in wire replies. *)

module Frozen : sig
  type g
  (** An immutable snapshot of the query-visible graph state.  Values of
      this type are never mutated after {!val:freeze} returns, so they are
      safe to share across domains; reclamation is the garbage collector's
      (a view dies when the last domain drops its reference). *)

  val version : g -> int
  val live_count : g -> int
  val edge_count : g -> int
  val digests_enabled : g -> bool
  val is_live : g -> Event_id.t -> bool
  val rank : g -> Event_id.t -> int option

  val query : g -> Event_id.t -> Event_id.t -> (Order.relation, Event_id.t) result
  (** Same contract as the live {!val:query}, evaluated against the frozen
      state: rank comparison refutes one direction in O(1), and the
      remaining direction is answered by the frozen chain-label compare
      whenever the destination sits on a chain, falling back to a
      rank-pruned bidirectional BFS only on label misses.  Traversal
      scratch (sparse visited sets, queues) is kept in domain-local
      storage and reused, so concurrent queries from different domains
      share no mutable state and allocate nothing once warm.  Frozen
      queries update no counters and no caches. *)

  val reachable : g -> Event_id.t -> Event_id.t -> bool

  val label_reachable : g -> Event_id.t -> Event_id.t -> bool option
  (** The frozen twin of the top-level {!val:label_reachable}: index-only
      answer, [None] when only a BFS could tell. *)

  val commitment : g -> Event_id.t -> string option
  val chain_length : g -> Event_id.t -> int option
  val chain_link : g -> Event_id.t -> int -> link option
  val head_at : g -> Event_id.t -> int -> string option
  (** Chain accessors mirror the live graph's; all answer [None] when the
      view was frozen with digests disabled. *)
end

val freeze : t -> Frozen.g
(** Capture the current query-visible state as an immutable view.
    Incremental: flat per-slot arrays (refcounts, generations, ranks) are
    copied wholesale, while adjacency and chain arrays are re-copied only
    for slots mutated since the previous freeze — clean slots share the
    previous view's immutable arrays structurally.  When nothing changed
    since the last call, the cached view is returned as-is.  Must be
    called from the domain that owns the graph (the writer); the result
    may be handed to any domain. *)
