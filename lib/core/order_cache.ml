type key = Event_id.t * Event_id.t

type node = {
  key : key;
  mutable rel : Order.relation;  (* relation of the normalized pair *)
  mutable prev : node;           (* intrusive LRU list; self-linked when out *)
  mutable next : node;
}

type t = {
  table : (key, node) Hashtbl.t;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable size : int;
  capacity : int;
  prefill_fanout : int;
  (* adjacency over cached stable edges: afters e = events known after e *)
  afters : (Event_id.t, Event_id.t list) Hashtbl.t;
  befores : (Event_id.t, Event_id.t list) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable prefills : int;
  mutable evictions : int;
}

let create ?(prefill_fanout = 16) ~capacity () =
  if capacity <= 0 then invalid_arg "Order_cache.create: capacity";
  {
    table = Hashtbl.create (min capacity 4096);
    head = None;
    tail = None;
    size = 0;
    capacity;
    prefill_fanout;
    afters = Hashtbl.create 256;
    befores = Hashtbl.create 256;
    hits = 0;
    misses = 0;
    prefills = 0;
    evictions = 0;
  }

let size t = t.size
let capacity t = t.capacity
let hits t = t.hits
let misses t = t.misses
let prefills t = t.prefills
let evictions t = t.evictions

type stats = {
  stat_size : int;
  stat_capacity : int;
  stat_hits : int;
  stat_misses : int;
  stat_prefills : int;
  stat_evictions : int;
}

let stats t =
  {
    stat_size = t.size;
    stat_capacity = t.capacity;
    stat_hits = t.hits;
    stat_misses = t.misses;
    stat_prefills = t.prefills;
    stat_evictions = t.evictions;
  }

let hit_rate s =
  let total = s.stat_hits + s.stat_misses in
  if total = 0 then 0.0 else float_of_int s.stat_hits /. float_of_int total

(* Normalize so the smaller identifier comes first; the stored relation is
   expressed for the normalized pair. *)
let normalize e1 e2 rel =
  if Event_id.compare e1 e2 <= 0 then (e1, e2), rel
  else (e2, e1), Order.flip_relation rel

let unlink t node =
  let was_head = match t.head with Some h -> h == node | None -> false in
  let was_tail = match t.tail with Some l -> l == node | None -> false in
  if node.prev != node then node.prev.next <- node.next;
  if node.next != node then node.next.prev <- node.prev;
  if was_head then t.head <- (if node.next == node then None else Some node.next);
  if was_tail then t.tail <- (if node.prev == node then None else Some node.prev);
  node.prev <- node;
  node.next <- node

let push_front t node =
  (match t.head with
   | Some h ->
     node.next <- h;
     h.prev <- node
   | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  (match t.head with Some h when h == node -> () | _ ->
    unlink t node;
    push_front t node)

let adj_remove table k v =
  match Hashtbl.find_opt table k with
  | None -> ()
  | Some vs ->
    let vs = List.filter (fun x -> not (Event_id.equal x v)) vs in
    if vs = [] then Hashtbl.remove table k else Hashtbl.replace table k vs

let adj_add table k v =
  let vs = Option.value ~default:[] (Hashtbl.find_opt table k) in
  if not (List.exists (Event_id.equal v) vs) then
    Hashtbl.replace table k (v :: vs)

(* Every cached Before edge (a, b) with a before b is indexed both ways. *)
let index_edge t a b = adj_add t.afters a b; adj_add t.befores b a

let unindex_node t node =
  let a, b = node.key in
  match node.rel with
  | Order.Before -> adj_remove t.afters a b; adj_remove t.befores b a
  | Order.After -> adj_remove t.afters b a; adj_remove t.befores a b
  | Order.Same | Order.Concurrent -> ()

let evict t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    unindex_node t node;
    t.size <- t.size - 1;
    t.evictions <- t.evictions + 1

(* Insert a stable [before -> after] fact; when [hop] is true, also pre-fill
   one transitive hop in each direction (never recursively, so a single
   service answer costs at most 2 * fanout extra entries). *)
let rec insert_stable t ~hop before after =
  if not (Event_id.equal before after) then begin
    let key, rel = normalize before after Order.Before in
    match Hashtbl.find_opt t.table key with
    | Some node -> node.rel <- rel; touch t node
    | None ->
      if t.size >= t.capacity then evict t;
      let rec node = { key; rel; prev = node; next = node } in
      Hashtbl.replace t.table key node;
      push_front t node;
      t.size <- t.size + 1;
      index_edge t before after;
      if hop then prefill t before after
  end

and prefill t before after =
  let take limit xs =
    let rec loop n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: loop (n - 1) rest
    in
    loop limit xs
  in
  let forward = take t.prefill_fanout
      (Option.value ~default:[] (Hashtbl.find_opt t.afters after))
  and backward = take t.prefill_fanout
      (Option.value ~default:[] (Hashtbl.find_opt t.befores before))
  in
  let fill b a =
    let key, _ = normalize b a Order.Before in
    if not (Hashtbl.mem t.table key) && not (Event_id.equal b a) then begin
      t.prefills <- t.prefills + 1;
      insert_stable t ~hop:false b a
    end
  in
  List.iter (fun w -> fill before w) forward;
  List.iter (fun u -> fill u after) backward

let insert t e1 e2 rel =
  match (rel : Order.relation) with
  | Concurrent -> ()
  | Same -> ()
  | Before -> insert_stable t ~hop:true e1 e2
  | After -> insert_stable t ~hop:true e2 e1

let find t e1 e2 =
  if Event_id.equal e1 e2 then Some Order.Same
  else begin
    let key, _ = normalize e1 e2 Order.Before in
    match Hashtbl.find_opt t.table key with
    | Some node ->
      touch t node;
      t.hits <- t.hits + 1;
      let rel = node.rel in
      Some (if Event_id.compare e1 e2 <= 0 then rel else Order.flip_relation rel)
    | None ->
      t.misses <- t.misses + 1;
      None
  end

let clear t =
  Hashtbl.reset t.table;
  Hashtbl.reset t.afters;
  Hashtbl.reset t.befores;
  t.head <- None;
  t.tail <- None;
  t.size <- 0
