(** Client-side LRU cache of pairwise event orders (Section 3.2).

    The monotonicity invariant makes [Before]/[After]/[Same] answers stable
    forever, so they may be cached and shared freely.  [Concurrent] answers
    are {e not} stable (a later [assign_order] can order the pair) and are
    rejected by {!insert}.

    On insertion of [u -> v] the cache pre-fills one transitive hop in each
    direction: for every cached [v -> w] it also records [u -> w], and for
    every cached [t -> u] it records [t -> v], saving future service calls. *)

type t

val create : ?prefill_fanout:int -> capacity:int -> unit -> t
(** [capacity] bounds the number of cached pairs (LRU eviction).
    [prefill_fanout] (default 16) bounds how many transitive pre-fills a
    single insertion may generate per direction. *)

val find : t -> Event_id.t -> Event_id.t -> Order.relation option
(** Cached relation of [(e1, e2)], if any.  Refreshes recency. *)

val insert : t -> Event_id.t -> Event_id.t -> Order.relation -> unit
(** Record a stable relation.  [Concurrent] insertions are ignored. *)

val size : t -> int
val capacity : t -> int

val hits : t -> int
val misses : t -> int
(** {!find} outcome counters. *)

val prefills : t -> int
(** Number of entries added by transitive pre-fill. *)

val evictions : t -> int
(** Number of entries dropped by LRU eviction (capacity pressure). *)

(** One consistent reading of all cache counters, for stats reporting. *)
type stats = {
  stat_size : int;
  stat_capacity : int;
  stat_hits : int;
  stat_misses : int;
  stat_prefills : int;
  stat_evictions : int;
}

val stats : t -> stats

val hit_rate : stats -> float
(** Fraction of {!find} calls answered by the cache; [0.] before any
    lookup. *)

val clear : t -> unit
