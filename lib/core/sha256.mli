(** Pure-OCaml SHA-256 (FIPS 180-4).

    The implementation works on native [int]s (all words are masked to 32
    bits), so hashing allocates nothing beyond the result string and runs
    fast enough to sit on the engine's edge-admission hot path.

    Besides the standard full hash, {!compress_pair} exposes a single
    application of the SHA-256 compression function to two 32-byte digests
    (one 64-byte block, standard IV, no padding).  That is the primitive the
    event commitment chains fold links with: collision resistance of the
    compression function is all the chain construction needs, and one
    compression per edge is half the cost of a padded two-block hash. *)

val digest_length : int
(** 32. *)

val digest_string : string -> string
(** Full SHA-256 of a string, as 32 raw bytes. *)

val compress_pair : string -> string -> string
(** [compress_pair a b] is one application of the SHA-256 compression
    function to the 64-byte block [a ^ b], starting from the standard IV.
    Both arguments must be exactly 32 bytes.
    @raise Invalid_argument otherwise. *)

val hex : string -> string
(** Lowercase hex rendering of a raw digest. *)
