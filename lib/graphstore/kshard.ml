open Kronos
module Net = Kronos_simnet.Net
module Client = Kronos_service.Client

type vertex_state = {
  mutable versions : (Event_id.t * G_msg.vop) list;  (* newest first *)
  mutable last : Event_id.t option;  (* most recent op's event *)
}

type work =
  | Update of {
      client : Net.addr;
      req_id : int;
      event : Event_id.t;
      vertex : int;
      op : G_msg.vop;
    }
  | Query of {
      client : Net.addr;
      req_id : int;
      event : Event_id.t;
      vertices : int list;
    }

type t = {
  net : G_msg.msg Net.t;
  addr : Net.addr;
  kronos : Client.t;
  cache : Order_cache.t;
  service : Kronos_simnet.Service_queue.t option;
  cost : G_msg.request -> float;
  vertices : (int, vertex_state) Hashtbl.t;
  mutable pending : work list;           (* arrival order, oldest first *)
  in_flight : (int, unit) Hashtbl.t;     (* vertices of ops being processed *)
  mutable operations : int;
  mutable vertex_touches : int;
  mutable kronos_batches : int;
  mutable fast_path_ops : int;
  mutable reversals : int;
}

let addr t = t.addr
let operations t = t.operations
let vertex_touches t = t.vertex_touches
let kronos_batches t = t.kronos_batches
let fast_path_ops t = t.fast_path_ops
let reversals t = t.reversals

let vertex_state t v =
  match Hashtbl.find_opt t.vertices v with
  | Some vs -> vs
  | None ->
    let vs = { versions = []; last = None } in
    Hashtbl.replace t.vertices v vs;
    vs

(* Adjacency from a version list (newest first), including only entries for
   which [visible] holds. *)
let fold_adjacency versions visible =
  let module IS = Set.Make (Int) in
  let apply acc (event, op) =
    if not (visible event) then acc
    else
      match (op : G_msg.vop) with
      | G_msg.Add_vertex -> acc
      | G_msg.Add_edge w -> IS.add w acc
      | G_msg.Remove_edge w -> IS.remove w acc
  in
  IS.elements (List.fold_left apply IS.empty (List.rev versions))

let adjacency_now t v =
  match Hashtbl.find_opt t.vertices v with
  | None -> []
  | Some vs -> fold_adjacency vs.versions (fun _ -> true)

let preload t ~vertex ~neighbors ~event =
  let vs = vertex_state t vertex in
  vs.versions <-
    List.rev_append (List.rev_map (fun w -> (event, G_msg.Add_edge w)) neighbors)
      vs.versions;
  vs.last <- Some event

let version_events t v =
  match Hashtbl.find_opt t.vertices v with
  | None -> []
  | Some vs -> List.rev_map fst vs.versions

let respond t ~client ~req_id body =
  Net.send t.net ~src:t.addr ~dst:client (G_msg.Response { req_id; body })

(* Entry is masked for event [e] iff the cache knows it is ordered after
   [e]; unknown (concurrent) entries stay visible — only operations the
   timeline places after the query are omitted (Section 3.2). *)
let known_after t entry_event e =
  match Order_cache.find t.cache e entry_event with
  | Some Order.Before -> true
  | Some (Order.After | Order.Concurrent | Order.Same) | None -> false

(* Insert a reversed update before every version entry known to be ordered
   after it. *)
let insert_version t vs event op =
  let rec place = function
    | entry :: rest when known_after t (fst entry) event -> entry :: place rest
    | l -> (event, op) :: l
  in
  vs.versions <- place vs.versions

(* Resolve the order of [e] against each vertex's most recent event.  Pairs
   the cache already knows cost nothing; the rest go to Kronos as one
   batched prefer call.  [k] receives, per input vertex, [`After_last]
   (normal: e follows the vertex's history) or [`Reversed]. *)
let resolve_orders t e touched k =
  let classify v =
    let vs = vertex_state t v in
    match vs.last with
    | None -> (v, `After_last)
    | Some prev when Event_id.equal prev e -> (v, `After_last)
    | Some prev -> (
        match Order_cache.find t.cache prev e with
        | Some Order.Before -> (v, `After_last)
        | Some Order.After -> (v, `Reversed)
        | Some (Order.Concurrent | Order.Same) | None -> (v, `Unknown prev))
  in
  let classified = List.map classify touched in
  let unknown =
    List.filter_map
      (fun (v, c) -> match c with `Unknown prev -> Some (v, prev) | _ -> None)
      classified
  in
  if unknown = [] then begin
    t.fast_path_ops <- t.fast_path_ops + 1;
    k (List.map (fun (v, c) -> (v, if c = `Reversed then `Reversed else `After_last))
         classified)
  end
  else begin
    t.kronos_batches <- t.kronos_batches + 1;
    (* one batch, deduplicated by predecessor event *)
    let uniq_prevs =
      List.sort_uniq Event_id.compare (List.map snd unknown)
    in
    let reqs =
      List.map (fun prev -> Order.prefer_before prev e) uniq_prevs
    in
    Client.assign_order t.kronos reqs (fun result ->
        let outcome_of prev =
          match result with
          | Error _ -> `After_last (* stale event collected elsewhere: treat as free *)
          | Ok outcomes -> (
              match
                List.find_opt
                  (fun (p, _) -> Event_id.equal p prev)
                  (List.combine uniq_prevs outcomes)
              with
              | Some (_, Order.Reversed) -> `Reversed
              | Some (_, (Order.Applied | Order.Already)) | None -> `After_last)
        in
        k
          (List.map
             (fun (v, c) ->
               match c with
               | `Unknown prev -> (v, outcome_of prev)
               | `Reversed -> (v, `Reversed)
               | `After_last -> (v, `After_last))
             classified))
  end

let process_update t ~client ~req_id ~event ~vertex ~op k =
  resolve_orders t event [ vertex ] (fun resolution ->
      let vs = vertex_state t vertex in
      (match resolution with
       | [ (_, `After_last) ] ->
         vs.versions <- (event, op) :: vs.versions;
         vs.last <- Some event
       | [ (_, `Reversed) ] ->
         t.reversals <- t.reversals + 1;
         insert_version t vs event op
       | _ -> assert false);
      respond t ~client ~req_id G_msg.K_update_done;
      k ())

let process_query t ~client ~req_id ~event ~vertices k =
  resolve_orders t event vertices (fun resolution ->
      let answer (v, how) =
        let vs = vertex_state t v in
        let neighbors =
          match how with
          | `After_last ->
            (* the query is ordered after the vertex's whole history *)
            vs.last <- Some event;
            fold_adjacency vs.versions (fun _ -> true)
          | `Reversed ->
            t.reversals <- t.reversals + 1;
            fold_adjacency vs.versions (fun entry -> not (known_after t entry event))
        in
        (v, neighbors)
      in
      respond t ~client ~req_id (G_msg.K_neighbors_are (List.map answer resolution));
      k ())

let vertices_of = function
  | Update { vertex; _ } -> [ vertex ]
  | Query { vertices; _ } -> vertices

(* Start every queued operation whose vertices are all idle, preserving
   arrival order per vertex (an operation also shadows its vertices for
   later queued operations).  Operations on disjoint vertices overlap, so a
   Kronos round trip for one vertex never stalls the whole shard. *)
let rec pump t =
  let blocked = Hashtbl.create 8 in
  let to_start = ref [] in
  let still_queued = ref [] in
  List.iter
    (fun w ->
      let vs = vertices_of w in
      let busy =
        List.exists
          (fun v -> Hashtbl.mem t.in_flight v || Hashtbl.mem blocked v)
          vs
      in
      List.iter (fun v -> Hashtbl.replace blocked v ()) vs;
      if busy then still_queued := w :: !still_queued
      else begin
        List.iter (fun v -> Hashtbl.replace t.in_flight v ()) vs;
        to_start := w :: !to_start
      end)
    t.pending;
  t.pending <- List.rev !still_queued;
  List.iter (start t) (List.rev !to_start)

and start t w =
  t.operations <- t.operations + 1;
  t.vertex_touches <- t.vertex_touches + List.length (vertices_of w);
  let finish () =
    List.iter (Hashtbl.remove t.in_flight) (vertices_of w);
    pump t
  in
  match w with
  | Update { client; req_id; event; vertex; op } ->
    process_update t ~client ~req_id ~event ~vertex ~op finish
  | Query { client; req_id; event; vertices } ->
    process_query t ~client ~req_id ~event ~vertices finish

let handle t ~src:_ msg =
  match (msg : G_msg.msg) with
  | G_msg.Response _ -> ()
  | G_msg.Request { client; req_id; body } ->
    (match body with
     | G_msg.K_update { event; vertex; op } ->
       t.pending <- t.pending @ [ Update { client; req_id; event; vertex; op } ]
     | G_msg.K_neighbors { event; vertices } ->
       t.pending <- t.pending @ [ Query { client; req_id; event; vertices } ]
     | G_msg.L_lock _ | G_msg.L_unlock_all _ | G_msg.L_update _
     | G_msg.L_neighbors _ ->
       invalid_arg "Kshard: lock-protocol message sent to a KronoGraph shard");
    pump t

let create ~net ~addr ~kronos ?cost () =
  let cache =
    match Client.cache kronos with
    | Some cache -> cache
    | None -> invalid_arg "Kshard.create: kronos client must have caching enabled"
  in
  let service =
    match cost with
    | Some _ -> Some (Kronos_simnet.Service_queue.create (Net.sim net))
    | None -> None
  in
  let t =
    {
      net;
      addr;
      kronos;
      cache;
      service;
      cost = Option.value ~default:(fun _ -> 0.0) cost;
      vertices = Hashtbl.create 4096;
      pending = [];
      in_flight = Hashtbl.create 64;
      operations = 0;
      vertex_touches = 0;
      kronos_batches = 0;
      fast_path_ops = 0;
      reversals = 0;
    }
  in
  let deliver ~src msg =
    match t.service with
    | None -> handle t ~src msg
    | Some queue ->
      let cost =
        match (msg : G_msg.msg) with
        | G_msg.Request { body; _ } -> t.cost body
        | G_msg.Response _ -> 0.0
      in
      Kronos_simnet.Service_queue.submit_fixed queue ~cost (fun () ->
          handle t ~src msg)
  in
  Net.register net addr deliver;
  t
