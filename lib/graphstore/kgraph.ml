module Net = Kronos_simnet.Net
module Client = Kronos_service.Client

type t = {
  net : G_msg.msg Net.t;
  addr : Net.addr;
  kronos : Client.t;
  shards : Net.addr array;
  mutable next_req : int;
  pending : (int, G_msg.response -> unit) Hashtbl.t;
  mutable queries : int;
  mutable updates : int;
}

let queries t = t.queries
let updates t = t.updates

let handle t ~src:_ msg =
  match (msg : G_msg.msg) with
  | G_msg.Request _ -> ()
  | G_msg.Response { req_id; body } -> (
      match Hashtbl.find_opt t.pending req_id with
      | Some callback ->
        Hashtbl.remove t.pending req_id;
        callback body
      | None -> ())

let create ~net ~addr ~kronos ~shards () =
  let t =
    { net; addr; kronos; shards; next_req = 0; pending = Hashtbl.create 64;
      queries = 0; updates = 0 }
  in
  Net.register net addr (fun ~src msg -> handle t ~src msg);
  t

let request t ~shard body callback =
  t.next_req <- t.next_req + 1;
  Hashtbl.replace t.pending t.next_req callback;
  Net.send t.net ~src:t.addr ~dst:shard
    (G_msg.Request { client = t.addr; req_id = t.next_req; body })

let shard_of t v = t.shards.(v mod Array.length t.shards)

(* Without a ?timeout the Kronos client retries until it succeeds. *)
let with_event t k =
  Client.create_event t.kronos (function
    | Ok event -> k event
    | Error _ -> assert false)

(* Apply one vertex-local mutation on each affected shard under a shared
   event, completing when every shard confirmed. *)
let send_updates t event ops k =
  let remaining = ref (List.length ops) in
  List.iter
    (fun (vertex, op) ->
      request t ~shard:(shard_of t vertex)
        (G_msg.K_update { event; vertex; op })
        (fun _ ->
          decr remaining;
          if !remaining = 0 then k ()))
    ops

let update t ops k =
  t.updates <- t.updates + 1;
  with_event t (fun event -> send_updates t event ops k)

let add_vertex t v k = update t [ (v, G_msg.Add_vertex) ] k

let batch_update t ops k = update t ops k

let add_friendship t u v k =
  update t [ (u, G_msg.Add_edge v); (v, G_msg.Add_edge u) ] k

let remove_friendship t u v k =
  update t [ (u, G_msg.Remove_edge v); (v, G_msg.Remove_edge u) ] k

(* Fetch adjacency of a vertex set at a given query event: one batched
   request per shard touched. *)
let fetch_neighbors t event vertices k =
  let by_shard = Hashtbl.create 8 in
  List.iter
    (fun v ->
      let s = v mod Array.length t.shards in
      Hashtbl.replace by_shard s
        (v :: Option.value ~default:[] (Hashtbl.find_opt by_shard s)))
    vertices;
  let groups = Hashtbl.fold (fun s vs acc -> (s, vs) :: acc) by_shard [] in
  let remaining = ref (List.length groups) in
  let collected = ref [] in
  if groups = [] then k []
  else
    List.iter
      (fun (s, vs) ->
        request t ~shard:t.shards.(s)
          (G_msg.K_neighbors { event; vertices = vs })
          (function
            | G_msg.K_neighbors_are answers ->
              collected := answers @ !collected;
              decr remaining;
              if !remaining = 0 then k !collected
            | _ -> invalid_arg "Kgraph: unexpected response"))
      groups

let neighbors t v k =
  t.queries <- t.queries + 1;
  with_event t (fun event ->
      fetch_neighbors t event [ v ] (fun answers ->
          k (match answers with [ (_, ns) ] -> ns | _ -> [])))

let recommend t v k =
  t.queries <- t.queries + 1;
  with_event t (fun event ->
      fetch_neighbors t event [ v ] (fun answers ->
          let friends = match answers with [ (_, ns) ] -> ns | _ -> [] in
          if friends = [] then k None
          else
            fetch_neighbors t event friends (fun hop2 ->
                let module IM = Map.Make (Int) in
                let friend_set = List.sort_uniq Int.compare friends in
                let is_friend w = List.mem w friend_set in
                let counts =
                  List.fold_left
                    (fun acc (_, ns) ->
                      List.fold_left
                        (fun acc w ->
                          if w = v || is_friend w then acc
                          else
                            IM.update w
                              (fun c -> Some (1 + Option.value ~default:0 c))
                              acc)
                        acc ns)
                    IM.empty hop2
                in
                let best =
                  IM.fold
                    (fun w c best ->
                      match best with
                      | Some (_, bc) when bc >= c -> best
                      | _ -> Some (w, c))
                    counts None
                in
                k (Option.map fst best))))
