open Kronos
open Kronos_wire
module Event_loop = Kronos_transport.Event_loop

(* All instruments are registered here, at module load on the main domain:
   the registry's hash table is not synchronized, so domains must never
   cause a registration.  Each per-domain counter is written only by the
   domain that owns it; the loop thread owns the gauges.  Scrapes from the
   loop thread may read a worker's counter mid-increment and miss the
   latest tick — benign for monitoring. *)
module M = struct
  let scope = Kronos_metrics.scope "query_pool"
  let domains = Kronos_metrics.gauge scope "query_domains"
  let view_epoch = Kronos_metrics.gauge scope "view_epoch"
  let publishes = Kronos_metrics.counter scope "view_publish_total"
  let offloaded = Kronos_metrics.counter scope "offloaded_total"
  let declined = Kronos_metrics.counter scope "declined_total"

  let answered d =
    Kronos_metrics.counter scope
      ~labels:[ ("domain", string_of_int d) ]
      "answered_total"

  let memo_hits d =
    Kronos_metrics.counter scope
      ~labels:[ ("domain", string_of_int d) ]
      "memo_hits_total"

  let queue_depth d =
    Kronos_metrics.gauge scope
      ~labels:[ ("domain", string_of_int d) ]
      "queue_depth"
end

type job = { j_req : Message.request; j_reply : string -> unit }

(* Per-worker positive-answer memo: a direct-mapped table keyed by
   (epoch, pair).  A frozen view is immutable, so a pair answered under an
   epoch answers identically forever under that epoch — the epoch in the
   key is the invalidation: a new published view changes the epoch and
   every old entry silently stops matching.  Owned exclusively by its
   worker domain; only [Ok] relations are stored, so the atomic staleness
   contract replays exactly on a hit. *)
let memo_size = 512

type worker = {
  w_index : int;
  w_mutex : Mutex.t;
  w_cond : Condition.t;
  w_queue : job Queue.t;
  w_answered : Kronos_metrics.Counter.t;
  w_memo_hit : Kronos_metrics.Counter.t;
  w_depth : Kronos_metrics.Gauge.t;
  w_memo_epoch : int64 array;
  w_memo_e1 : Event_id.t array;
  w_memo_e2 : Event_id.t array;
  w_memo_rel : Order.relation array;
  mutable w_submitted : int; (* loop thread only *)
  mutable w_completed : int; (* loop thread only *)
}

let memo_slot e1 e2 =
  let a = Int64.to_int (Event_id.to_int64 e1) * 0x9e3779b1 in
  let b = Int64.to_int (Event_id.to_int64 e2) * 0x85ebca77 in
  let h = a lxor b in
  (h lxor (h lsr 16)) land (memo_size - 1)

let memo_find w epoch e1 e2 =
  let i = memo_slot e1 e2 in
  if
    Int64.equal w.w_memo_epoch.(i) epoch
    && Event_id.equal w.w_memo_e1.(i) e1
    && Event_id.equal w.w_memo_e2.(i) e2
  then Some w.w_memo_rel.(i)
  else None

let memo_store w epoch e1 e2 rel =
  let i = memo_slot e1 e2 in
  w.w_memo_epoch.(i) <- epoch;
  w.w_memo_e1.(i) <- e1;
  w.w_memo_e2.(i) <- e2;
  w.w_memo_rel.(i) <- rel

(* Answer a pair list through the memo: if every pair hits, no view work at
   all; otherwise one view call, then populate.  (Errors are not cached —
   the view call is the canonical rejection path.) *)
let memo_query w view pairs =
  let epoch = Engine.View.epoch view in
  let rec hits acc = function
    | [] -> Some (List.rev acc)
    | (a, b) :: rest -> (
      match memo_find w epoch a b with
      | Some r -> hits (r :: acc) rest
      | None -> None)
  in
  match hits [] pairs with
  | Some rels ->
    Kronos_metrics.Counter.incr w.w_memo_hit;
    Ok rels
  | None -> (
    match Engine.View.query_order view pairs with
    | Ok rels as ok ->
      List.iter2 (fun (a, b) r -> memo_store w epoch a b r) pairs rels;
      ok
    | Error _ as e -> e)

type t = {
  loop : Event_loop.t;
  workers : worker array;
  view : Engine.View.t option Atomic.t;
  mutable engine : (unit -> Engine.t) option; (* loop thread only *)
  mutable last_epoch : int64;                 (* loop thread only *)
  mutable publish_tick : int;                 (* loop thread only *)
  stopping : bool Atomic.t;
  mutable joined : bool;
  comp_mutex : Mutex.t;
  completions : (int * (string -> unit) * string) Queue.t;
  mutable handles : unit Domain.t list;
}

let domains t = Array.length t.workers

(* Worker side.  The query path is write-free on shared state: the view is
   immutable, the BFS scratch is domain-local ([Graph.Frozen]'s DLS), the
   memo above is worker-private, and no process-wide counter is touched
   except this worker's own [answered_total]/[memo_hits_total].  The one
   exception is [Query_proof]: the certify prover bumps its own counters,
   so concurrent provers may lose increments — monitoring noise, never a
   safety issue (documented in DESIGN.md §14). *)
let answer w view req =
  let response =
    match (req : Message.request) with
    | Message.Query_order pairs -> (
      match memo_query w view pairs with
      | Ok rels -> Message.Orders rels
      | Error err -> Message.Rejected err)
    | Message.Query_order_at { min_epoch = _; pairs } -> (
      (* answer at whatever epoch we have; the stamp lets the client
         detect staleness and escalate to the tail *)
      match memo_query w view pairs with
      | Ok rels ->
        Message.Orders_at { epoch = Engine.View.epoch view; rels }
      | Error err -> Message.Rejected err)
    | Message.Query_proof (e1, e2) -> (
      match Engine.View.query_order view [ (e1, e2) ] with
      | Error err -> Message.Rejected err
      | Ok [ relation ] ->
        let cert =
          match relation with
          | Order.Before ->
            Kronos_certify.Prover.prove view ~source:e1 ~target:e2
          | Order.After ->
            Kronos_certify.Prover.prove view ~source:e2 ~target:e1
          | Order.Concurrent | Order.Same -> None
        in
        Message.Proof_is { relation; cert }
      | Ok _ -> assert false)
    | Message.Create_event | Message.Acquire_ref _ | Message.Release_ref _
    | Message.Assign_order _ | Message.Assign_order_at _
    | Message.Guarded_assign _ ->
      assert false (* offload never enqueues writes *)
  in
  Message.encode_response response

let complete t w reply resp =
  Mutex.lock t.comp_mutex;
  Queue.add (w.w_index, reply, resp) t.completions;
  Mutex.unlock t.comp_mutex;
  Event_loop.notify t.loop

let rec worker_loop t w =
  Mutex.lock w.w_mutex;
  while Queue.is_empty w.w_queue && not (Atomic.get t.stopping) do
    Condition.wait w.w_cond w.w_mutex
  done;
  if Queue.is_empty w.w_queue then Mutex.unlock w.w_mutex (* stopping *)
  else begin
    let job = Queue.pop w.w_queue in
    Mutex.unlock w.w_mutex;
    let view =
      match Atomic.get t.view with
      | Some v -> v
      | None -> assert false (* offload publishes before enqueueing *)
    in
    Kronos_metrics.Counter.incr w.w_answered;
    complete t w job.j_reply (answer w view job.j_req);
    worker_loop t w
  end

(* Loop-thread side. *)

let drain t () =
  let rec next () =
    Mutex.lock t.comp_mutex;
    let item =
      if Queue.is_empty t.completions then None else Some (Queue.pop t.completions)
    in
    Mutex.unlock t.comp_mutex;
    match item with
    | None -> ()
    | Some (wi, reply, resp) ->
      let w = t.workers.(wi) in
      w.w_completed <- w.w_completed + 1;
      Kronos_metrics.Gauge.set w.w_depth (w.w_submitted - w.w_completed);
      reply resp;
      next ()
  in
  next ()

let create ~loop ~domains () =
  let n = max 1 domains in
  let workers =
    Array.init n (fun i ->
        {
          w_index = i;
          w_mutex = Mutex.create ();
          w_cond = Condition.create ();
          w_queue = Queue.create ();
          w_answered = M.answered i;
          w_memo_hit = M.memo_hits i;
          w_depth = M.queue_depth i;
          w_memo_epoch = Array.make memo_size (-1L);
          w_memo_e1 = Array.make memo_size Event_id.none;
          w_memo_e2 = Array.make memo_size Event_id.none;
          w_memo_rel = Array.make memo_size Order.Same;
          w_submitted = 0;
          w_completed = 0;
        })
  in
  let t =
    {
      loop;
      workers;
      view = Atomic.make None;
      engine = None;
      last_epoch = -1L;
      publish_tick = -1;
      stopping = Atomic.make false;
      joined = false;
      comp_mutex = Mutex.create ();
      completions = Queue.create ();
      handles = [];
    }
  in
  Kronos_metrics.Gauge.set M.domains n;
  Event_loop.on_notify loop (drain t);
  t.handles <-
    Array.to_list
      (Array.map (fun w -> Domain.spawn (fun () -> worker_loop t w)) workers);
  t

let attach t ~engine = t.engine <- Some engine

let publish t engine =
  let v = Engine.publish engine in
  let e = Engine.View.epoch v in
  if e <> t.last_epoch then begin
    t.last_epoch <- e;
    Kronos_metrics.Counter.incr M.publishes;
    Kronos_metrics.Gauge.set M.view_epoch (Int64.to_int e)
  end;
  Atomic.set t.view (Some v)

let offload t ~client ~cmd ~reply =
  if Atomic.get t.stopping then false
  else
    match t.engine with
    | None -> false
    | Some engine -> (
      match Message.decode_request cmd with
      | exception Codec.Decode_error _ ->
        (* let the synchronous path produce the canonical rejection *)
        false
      | Message.Create_event | Message.Acquire_ref _ | Message.Release_ref _
      | Message.Assign_order _ | Message.Assign_order_at _
      | Message.Guarded_assign _ ->
        Kronos_metrics.Counter.incr M.declined;
        false
      | (Message.Query_order _ | Message.Query_order_at _
        | Message.Query_proof _) as req ->
        (* Publish at most once per event-loop iteration: re-freezing on
           every offloaded read made interleaved write/read workloads pay
           the freeze's O(live slots) flat-array copy per request.  One
           view per tick is fresh enough — an ack must cross a select
           round before the client that received it can have a follow-up
           query dispatched, so every write acked before this iteration
           began is already in the engine we freeze here.  The one caller
           that can outrun that argument is an [`At_least] demand raced
           onto an already-ready connection: an explicit [min_epoch] above
           the published view's epoch forces a mid-tick re-publish (a
           no-op freeze when nothing actually changed), so a demanding
           query never observes this amortization. *)
        let tick = Event_loop.ticks t.loop in
        let behind_demand =
          match Atomic.get t.view with
          | None -> true
          | Some v -> (
            match req with
            | Message.Query_order_at { min_epoch; _ } ->
              Engine.View.epoch v < min_epoch
            | _ -> false)
        in
        if tick <> t.publish_tick || behind_demand then begin
          publish t (engine ());
          t.publish_tick <- tick
        end;
        let w = t.workers.(client mod Array.length t.workers) in
        w.w_submitted <- w.w_submitted + 1;
        Kronos_metrics.Gauge.set w.w_depth (w.w_submitted - w.w_completed);
        Kronos_metrics.Counter.incr M.offloaded;
        Mutex.lock w.w_mutex;
        Queue.add { j_req = req; j_reply = reply } w.w_queue;
        Condition.signal w.w_cond;
        Mutex.unlock w.w_mutex;
        true)

let stop t =
  if not t.joined then begin
    t.joined <- true;
    Atomic.set t.stopping true;
    Array.iter
      (fun w ->
        Mutex.lock w.w_mutex;
        Condition.broadcast w.w_cond;
        Mutex.unlock w.w_mutex)
      t.workers;
    List.iter Domain.join t.handles;
    t.handles <- [];
    (* deliver completions the workers produced while draining *)
    drain t ()
  end
