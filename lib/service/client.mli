(** Typed Kronos client over the replicated service.

    The client implements the optimizations of Sections 2.5 and 3.2 of the
    paper:

    - {b order caching}: stable answers ([Before]/[After]) are kept in an
      LRU {!Kronos.Order_cache} with transitive pre-fill, so repeated
      queries cost no network round trip;
    - {b apportioned reads}: with [stale:true], [query_order] is served by a
      randomly chosen replica.  Monotonicity makes ordered answers from a
      stale replica definitive; only pairs the stale replica reports as
      [Concurrent] are re-validated at the tail.

    All operations are asynchronous: callbacks fire when the round trips
    complete.  Callbacks may fire synchronously when the cache answers every
    pair.

    Every operation takes an optional per-call [?timeout] (seconds).
    Without one, the proxy retries forever and the callback eventually
    receives [Ok _] or [Error (Error.Rejected _)]; with one, the callback
    receives [Error Error.Timeout] once the deadline passes without a
    reply.  A stale query that needs tail revalidation applies the timeout
    to each of its two round trips.

    All operations fail with the service-wide {!Error.t}. *)

open Kronos

type t

val create :
  net:Kronos_replication.Chain.msg Kronos_transport.Transport.t ->
  addr:Kronos_transport.Transport.addr ->
  coordinator:Kronos_transport.Transport.addr ->
  ?cache_capacity:int ->
  ?request_timeout:float ->
  unit ->
  t
(** [cache_capacity] (default 65536) bounds the order cache; 0 disables
    caching entirely (used by the cache ablation benchmark).
    [request_timeout] is the {e retransmission} interval, not a deadline;
    per-call deadlines are the [?timeout] arguments below. *)

val create_event :
  t -> ?timeout:float -> ((Event_id.t, Error.t) result -> unit) -> unit

val acquire_ref :
  t -> ?timeout:float -> Event_id.t -> ((unit, Error.t) result -> unit) -> unit

val release_ref :
  t -> ?timeout:float -> Event_id.t -> ((int, Error.t) result -> unit) -> unit

val query_order :
  t ->
  ?timeout:float ->
  ?stale:bool ->
  ?revalidate:bool ->
  ?consistency:[ `Latest | `At_least of int64 ] ->
  (Event_id.t * Event_id.t) list ->
  ((Order.relation list, Error.t) result -> unit) ->
  unit
(** [stale] (default false) picks a random replica and — when [revalidate]
    (default true) — re-checks concurrent answers at the tail.  Disable
    revalidation only when the caller knows replicas cannot be behind (e.g.
    a read-only phase), as in the paper's scalability experiment.

    [consistency] (default [`Latest]) is the view-epoch demand
    (DESIGN.md §14).  [`At_least e] sends the epoch-stamped wire message;
    if the answering replica's view is older than [e], the client retries
    once at the tail — which applied the write that produced [e], so
    cannot be behind it.  Pass [`At_least (last_epoch t)] after an
    {!assign_order} ack for read-your-writes.  Cached answers are served
    regardless of the demand: cache entries are stable facts, true at
    every later epoch (monotonicity). *)

val query_order_e :
  t ->
  ?timeout:float ->
  ?stale:bool ->
  ?consistency:[ `Latest | `At_least of int64 ] ->
  (Event_id.t * Event_id.t) list ->
  ((Order.relation list * int64, Error.t) result -> unit) ->
  unit
(** Like {!query_order} but cache-{e bypassing} and epoch-{e reporting}:
    every pair is sent to the service and the callback also receives the
    exact view epoch the answers reflect (0 only when talking to a server
    predating epoch stamps).  Answers still populate the cache.  This is
    what [kronos_cli query] prints. *)

val assign_order :
  t ->
  ?timeout:float ->
  Order.spec list ->
  ((Order.outcome list, Error.t) result -> unit) ->
  unit
(** Atomic ordering batch, applied by the replicated state machine; build
    the specs with {!Order.must_before} and friends.  On success, every
    applied or implied pair is inserted into the local order cache.

    The batch is sent with the epoch-stamped wire encoding so the ack
    advances {!last_epoch}; a server predating epoch stamps rejects that
    tag as unparseable (applying nothing), in which case the client
    transparently retries the batch once with the legacy encoding and
    keeps using it for the rest of its life — mixed-version clusters and
    rolling upgrades keep writing, at the cost that such acks carry no
    epoch (so [`At_least (last_epoch t)] demands only up to the newest
    epoch some stamped reply did report). *)

val guarded_assign :
  t ->
  ?timeout:float ->
  guards:(Event_id.t * Event_id.t * Order.relation) list ->
  Order.spec list ->
  ((Order.outcome list, Error.t) result -> unit) ->
  unit
(** {!assign_order} preceded by atomically evaluated guards: the batch
    applies only if every guard pair still has the expected relation,
    otherwise it fails with [Rejected (Guard_failed i)] and no side
    effects.  The federation router uses this to commit cross-shard
    edges without a window for concurrent contradicting assigns. *)

val query_verified :
  t ->
  ?timeout:float ->
  ?stale:bool ->
  Event_id.t ->
  Event_id.t ->
  ((Order.relation * Kronos_certify.Certificate.t option, Error.t) result ->
   unit) ->
  unit
(** Verified read (DESIGN.md §13): query one pair and, when the answer is
    ordered, ask the server for a happens-before certificate, which is
    checked locally with {!Kronos_certify.Verifier.verify} before the
    callback fires.  A certificate that fails verification (or names
    different endpoints than the query) fails the call with
    [Error.Proof_invalid] — the relation claimed by the server is {e not}
    reported.

    On success every edge of the verified path is inserted into the order
    cache (it is an authenticated stable fact), so one verified read
    pre-fills the whole chain of events it crossed.

    [Ok (relation, None)] means the server answered without a proof:
    either the relation is [Concurrent]/[Same] (nothing to prove), or it
    holds but is not provable from the hash chains (see
    {!Kronos_certify.Prover}); the answer is then exactly as trustworthy
    as a plain {!query_order}.  Callers needing cross-answer tamper
    evidence should feed returned certificates to
    {!Kronos_certify.Audit}. *)

(** {1 Introspection} *)

val cache : t -> Order_cache.t option

val cache_stats : t -> Order_cache.stats option
(** Counters of the client-side order cache ([None] when caching is
    disabled). *)

val server_queries : t -> int
(** Number of [query_order] requests actually sent to the service (cache
    hits excluded) — the "operations requiring a Kronos traversal" metric
    the paper reports for KronoGraph. *)

val stale_revalidations : t -> int
(** Pairs a stale replica answered [Concurrent] that were re-validated at
    the tail. *)

val last_epoch : t -> int64
(** Highest view epoch observed in any epoch-stamped reply ({!assign_order}
    acks, {!query_order_e}, [`At_least] queries); 0 before the first one.
    [`At_least (last_epoch t)] demands read-your-writes. *)

val epoch_retries : t -> int
(** Queries re-sent to the tail because a stale replica's view was behind
    the demanded epoch. *)
