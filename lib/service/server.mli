(** Kronos as a replicated service.

    Each replica hosts a deterministic {!Kronos.Engine} and applies wire
    commands to it; because every API call is deterministic, replicas stay
    identical under chain replication (Section 2.4 of the paper).

    With a {!durability} option, every replica additionally keeps a local
    write-ahead log of applied commands and periodic engine snapshots
    (see [kronos_durability]), so a crashed replica can be restarted from
    its own disk with {!restart_replica} instead of requiring a full state
    transfer from a live peer. *)

open Kronos
module Durability = Kronos_durability

val apply : Engine.t -> string -> string
(** [apply engine cmd] decodes a {!Kronos_wire.Message.request}, executes it
    on [engine] and returns the encoded response.  Malformed commands yield
    an encoded [Rejected] response rather than raising. *)

(** Amortized incremental snapshotting (DESIGN.md §16).  With a policy,
    snapshots trigger on WAL bytes accumulated since the last one (so the
    trigger tracks write volume, not command count) and between full
    snapshots the replica writes {e deltas} — only the slots dirtied
    since the previous capture — keeping both snapshot cost and restart
    cost bounded as history grows.  Every [max_delta_chain] deltas (and
    always first after a recovery or state-transfer install) a full
    snapshot re-anchors the chain, and {!Durability.Snapshot.compact}
    retires the files it covers. *)
type snapshot_policy = {
  wal_bytes_per_snapshot : int;  (** snapshot once this many WAL bytes accrue *)
  max_delta_chain : int;  (** deltas between full snapshots; 0 = fulls only *)
}

val snapshot_policy :
  ?wal_bytes_per_snapshot:int -> ?max_delta_chain:int -> unit ->
  snapshot_policy
(** Defaults: 4 MiB of WAL per snapshot, at most 8 deltas per chain. *)

(** Per-cluster durability configuration. *)
type durability = {
  storage_of : Kronos_transport.Transport.addr -> Durability.Storage.t;
      (** each replica's private storage directory; must return the {e
          same} storage for the same address across restarts *)
  wal_config : Durability.Wal.config;
  snapshot_every : int;  (** snapshot + truncate the log every N commands *)
  snapshots_kept : int;  (** old snapshots retained as fallbacks *)
  policy : snapshot_policy option;
      (** when set, replaces the command-count trigger with the WAL-bytes
          trigger and enables incremental snapshots + compaction *)
}

val durability :
  ?wal_config:Durability.Wal.config ->
  ?snapshot_every:int ->
  ?snapshots_kept:int ->
  ?policy:snapshot_policy ->
  storage_of:(Kronos_transport.Transport.addr -> Durability.Storage.t) ->
  unit ->
  durability
(** Defaults: {!Durability.Wal.default_config}, snapshot every 1024
    commands, 2 snapshots kept, no incremental policy. *)

(** A running replicated Kronos deployment over any transport.

    Engines are held by reference: installing a state-transfer snapshot or
    recovering after a restart replaces a replica's engine wholesale. *)
type cluster = {
  net : Kronos_replication.Chain.msg Kronos_transport.Transport.t;
  coordinator : Kronos_replication.Chain.Coordinator.t;
  mutable replicas : (Kronos_replication.Chain.Replica.t * Engine.t ref) list;
  dur : durability option;
  engine_config : Engine.config option;
  service : [ `Fixed of float | `Measured of float ] option;
}

val start_node :
  net:Kronos_replication.Chain.msg Kronos_transport.Transport.t ->
  addr:Kronos_transport.Transport.addr ->
  ?engine_config:Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  ?durability:durability ->
  ?query_pool:Query_pool.t ->
  unit ->
  Kronos_replication.Chain.Replica.t * Engine.t ref
(** Start a single engine-backed replica without a coordinator or cluster
    handle — the building block for hosting one replica per process (see
    [kronosd]).  The caller wires it into a chain with
    {!Kronos_replication.Chain.Replica.announce_join}.  With [durability]
    the replica recovers from its storage first, exactly as in {!deploy}.
    With [query_pool] the replica's local reads are offloaded to reader
    domains over published engine views ({!Query_pool}, DESIGN.md §14);
    the pool follows the engine cell across snapshot installs and
    restarts. *)

val deploy :
  net:Kronos_replication.Chain.msg Kronos_transport.Transport.t ->
  coordinator:Kronos_transport.Transport.addr ->
  replicas:Kronos_transport.Transport.addr list ->
  ?engine_config:Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  ?durability:durability ->
  ?ping_interval:float ->
  ?failure_timeout:float ->
  unit ->
  cluster
(** Start one engine-backed replica per address plus the coordinator.
    [service] models replica CPU capacity (see
    {!Kronos_replication.Chain.Replica.create}); [`Measured scale] charges
    the real wall-clock cost of each engine call as virtual busy time, so
    throughput experiments reflect genuine graph-traversal work.

    With [durability], each replica first {e recovers} from its storage
    (newest snapshot + WAL suffix), then logs every applied command; a
    redeploy over existing storage therefore resumes rather than restarts
    from scratch. *)

val crash : cluster -> Kronos_transport.Transport.addr -> unit
(** Crash the replica with the given address (no-op if absent).  Its
    storage — if any — survives for {!restart_replica}. *)

val join :
  cluster ->
  Kronos_transport.Transport.addr ->
  ?engine_config:Engine.config ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  unit ->
  unit
(** Start a fresh engine-backed replica and integrate it at the tail (in a
    durable cluster it gets its own storage via [storage_of] and recovers
    from it first, so "fresh" storage must be empty). *)

val restart_replica :
  cluster ->
  Kronos_transport.Transport.addr ->
  ?service:[ `Fixed of float | `Measured of float ] ->
  unit ->
  unit
(** Restart a crashed replica of a durable cluster from its local storage:
    recover the engine (snapshot + WAL replay), re-register on the network
    and rejoin the chain at the tail.  The join announces the recovered
    sequence number, so the predecessor ships only the missing log tail
    (or a snapshot, if that range was already truncated) rather than the
    full history.
    @raise Invalid_argument if the cluster has no durability layer, the
    address was never part of it, or the replica is still registered. *)

val engine_of : cluster -> Kronos_transport.Transport.addr -> Engine.t option
(** Direct handle on a replica's current engine, for tests and
    experiments. *)

val replica_of :
  cluster -> Kronos_transport.Transport.addr -> Kronos_replication.Chain.Replica.t option
