(** The multicore query plane (DESIGN.md §14): a pool of reader domains
    answering read-only requests against epoch-published immutable
    {!Kronos.Engine.View} values, while the event-loop thread stays the
    single writer.

    Life cycle: {!create} spawns the domains before any engine exists
    (so all metrics instruments are registered from the main domain);
    {!attach} then connects the pool to the replica's engine cell, and
    the replica's [read_async] hook feeds it via {!offload}.

    Data flow per request: [offload] (on the loop thread) decodes the
    command once, publishes the engine's current view — an incremental
    {!Kronos.Graph.freeze}, at most once per event-loop iteration plus a
    forced refresh whenever a request demands an epoch newer than the
    published view — into an atomic slot, and enqueues the job on the
    worker owning the connection
    (connections are sharded [client mod domains], which keeps replies
    per-connection FIFO and epochs per-connection monotonic).  The worker
    answers against the latest view with zero locks on the query path and
    per-domain reusable traversal scratch, pushes the encoded response on
    a completion queue and wakes the loop ({!Kronos_transport.Event_loop.notify});
    the loop thread drains completions and sends the replies. *)

type t

val create : loop:Kronos_transport.Event_loop.t -> domains:int -> unit -> t
(** Spawn [domains] reader domains (at least 1).  Must be called from the
    main domain before the process starts serving.  Registers the
    [query_pool] metrics scope: [query_domains], [view_epoch],
    [view_publish_total], per-domain [answered_total{domain=i}] and
    [queue_depth{domain=i}]. *)

val attach : t -> engine:(unit -> Kronos.Engine.t) -> unit
(** Connect the pool to the engine it publishes views of.  The thunk is
    re-read on every publish, so a replica whose engine cell is replaced
    (snapshot install, restart) publishes the current engine's state from
    the next view onwards.  Until [attach] is called, {!offload} declines
    every request. *)

val offload :
  t -> client:int -> cmd:string -> reply:(string -> unit) -> bool
(** [offload t ~client ~cmd ~reply] takes ownership of a read-only
    command and returns [true]; [reply] will be called exactly once, on
    the event-loop thread, with the encoded response.  Returns [false] —
    caller must serve synchronously — for writes, malformed commands, or
    before {!attach}.  Must be called from the event-loop thread (it
    freezes the engine). *)

val domains : t -> int

val stop : t -> unit
(** Drain and join the reader domains.  Jobs already queued are answered
    and their completions delivered on the next loop iterations;
    subsequent {!offload} calls return [false].  Idempotent. *)
