(** The single error surface of the Kronos service layer.

    Every client-facing operation fails with exactly one of these cases;
    the transport/replication stack below only ever reports [`Timeout]
    (see {!Kronos_replication.Proxy}), which {!of_proxy} lifts here.  This
    module replaces the ad-hoc error types the client and proxy used to
    declare separately. *)

type t =
  | Rejected of Kronos.Order.assign_error
      (** the replicated state machine refused the operation *)
  | Timeout  (** the per-call deadline expired without a reply *)
  | Proof_invalid of string
      (** a verified read received a certificate that fails verification —
          the server's answer was {e not} accepted (byzantine or corrupted
          replica) *)

val equal : t -> t -> bool

val of_proxy : [ `Timeout ] -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
