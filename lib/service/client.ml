open Kronos
open Kronos_wire
module Proxy = Kronos_replication.Proxy

module M = struct
  let scope = Kronos_metrics.scope "client"
  let hits = Kronos_metrics.counter scope "cache_hits_total"
  let misses = Kronos_metrics.counter scope "cache_misses_total"
  let revalidations = Kronos_metrics.counter scope "stale_revalidations_total"

  let op_seconds op =
    Kronos_metrics.histogram scope ~labels:[ ("op", op) ] "op_seconds"

  let create_event = op_seconds "create_event"
  let acquire_ref = op_seconds "acquire_ref"
  let release_ref = op_seconds "release_ref"
  let query_order = op_seconds "query_order"
  let query_verified = op_seconds "query_verified"
  let assign_order = op_seconds "assign_order"
  let proofs_checked = Kronos_metrics.counter scope "proofs_checked_total"
  let proofs_rejected = Kronos_metrics.counter scope "proofs_rejected_total"
  let proof_prefills = Kronos_metrics.counter scope "proof_prefill_edges_total"
end

(* Wrap a callback so the wall-clock time until it fires lands in [h].
   With metrics disabled the callback is returned untouched — no clock
   read, no closure on the hot path. *)
let timed h k =
  if Kronos_metrics.enabled () then begin
    let t0 = Unix.gettimeofday () in
    fun r ->
      Kronos_metrics.Histogram.observe h (Unix.gettimeofday () -. t0);
      k r
  end
  else k

type t = {
  proxy : Proxy.t;
  cache : Order_cache.t option;
  mutable server_queries : int;
  mutable stale_revalidations : int;
  mutable last_epoch : int64;
      (* highest view epoch observed in any epoch-stamped reply; what
         [`At_least (last_epoch t)] demands for read-your-writes *)
  mutable epoch_retries : int;
  mutable assign_compat : bool;
      (* the server rejected the epoch-stamped assign tag as unparseable
         (pre-epoch release): speak legacy [Assign_order] from now on *)
}

let create ~net ~addr ~coordinator ?(cache_capacity = 65536) ?request_timeout () =
  let proxy = Proxy.create ~net ~addr ~coordinator ?request_timeout () in
  let cache =
    if cache_capacity > 0 then Some (Order_cache.create ~capacity:cache_capacity ())
    else None
  in
  { proxy; cache; server_queries = 0; stale_revalidations = 0;
    last_epoch = 0L; epoch_retries = 0; assign_compat = false }

let cache t = t.cache
let cache_stats t = Option.map Order_cache.stats t.cache
let server_queries t = t.server_queries
let stale_revalidations t = t.stale_revalidations
let last_epoch t = t.last_epoch
let epoch_retries t = t.epoch_retries

let note_epoch t e = if e > t.last_epoch then t.last_epoch <- e

let unexpected = Error.Rejected (Order.Unknown_event Event_id.none)

(* Lift a proxy response into a decoded message for [k], translating
   transport-level timeouts into the unified {!Error.t}. *)
let decoded k = function
  | Error (`Timeout as e) -> k (Error (Error.of_proxy e))
  | Ok resp -> k (Ok (Message.decode_response resp))

let create_event t ?timeout callback =
  let callback = timed M.create_event callback in
  Proxy.write t.proxy ?timeout (Message.encode_request Message.Create_event)
    (decoded (function
      | Ok (Message.Event_created e) -> callback (Ok e)
      | Ok _ -> invalid_arg "Client.create_event: unexpected response"
      | Error e -> callback (Error e)))

let acquire_ref t ?timeout e callback =
  let callback = timed M.acquire_ref callback in
  Proxy.write t.proxy ?timeout (Message.encode_request (Message.Acquire_ref e))
    (decoded (function
      | Ok Message.Ref_acquired -> callback (Ok ())
      | Ok (Message.Rejected err) -> callback (Error (Error.Rejected err))
      | Ok _ -> callback (Error unexpected)
      | Error e -> callback (Error e)))

let release_ref t ?timeout e callback =
  let callback = timed M.release_ref callback in
  Proxy.write t.proxy ?timeout (Message.encode_request (Message.Release_ref e))
    (decoded (function
      | Ok (Message.Ref_released n) -> callback (Ok n)
      | Ok (Message.Rejected err) -> callback (Error (Error.Rejected err))
      | Ok _ -> callback (Error unexpected)
      | Error e -> callback (Error e)))

let cache_find t e1 e2 =
  match t.cache with None -> None | Some c -> Order_cache.find c e1 e2

let cache_insert t e1 e2 rel =
  match t.cache with None -> () | Some c -> Order_cache.insert c e1 e2 rel

(* Issue one query to the service for [pairs]; [target] selects the
   replica.  Without [min_epoch] this is a plain [Query_order]; with it,
   an epoch-stamped [Query_order_at], and a reply from a replica whose
   view is behind the demanded epoch is retried once at the tail — the
   tail applied the write that produced the demand, so it can never be
   behind it (DESIGN.md §14).  The callback receives the relations plus
   the reply epoch (0 when the server answered the legacy message). *)
let rec send_query t ?timeout ?min_epoch ~target pairs callback =
  t.server_queries <- t.server_queries + 1;
  let request =
    match min_epoch with
    | None -> Message.Query_order pairs
    | Some e -> Message.Query_order_at { min_epoch = e; pairs }
  in
  Proxy.read t.proxy ?timeout ~target
    (Message.encode_request request)
    (decoded (function
      | Ok (Message.Orders rels) -> callback (Ok (rels, 0L))
      | Ok (Message.Orders_at { epoch; rels }) ->
        note_epoch t epoch;
        (match min_epoch with
         | Some e when epoch < e && target <> Proxy.Tail ->
           t.epoch_retries <- t.epoch_retries + 1;
           send_query t ?timeout ?min_epoch ~target:Proxy.Tail pairs callback
         | _ -> callback (Ok (rels, epoch)))
      | Ok (Message.Rejected err) -> callback (Error (Error.Rejected err))
      | Ok _ -> callback (Error unexpected)
      | Error e -> callback (Error e)))

let query_order t ?timeout ?(stale = false) ?(revalidate = true)
    ?(consistency = `Latest) pairs callback =
  let callback = timed M.query_order callback in
  let min_epoch =
    match consistency with `Latest -> None | `At_least e -> Some e
  in
  (* Resolve from the cache first. *)
  let n = List.length pairs in
  let answers = Array.make n None in
  let misses =
    List.concat
      (List.mapi
         (fun i (e1, e2) ->
           match cache_find t e1 e2 with
           | Some rel ->
             answers.(i) <- Some rel;
             []
           | None -> [ (i, (e1, e2)) ])
         pairs)
  in
  Kronos_metrics.Counter.add M.hits (n - List.length misses);
  Kronos_metrics.Counter.add M.misses (List.length misses);
  let finish () =
    let rels =
      Array.to_list answers
      |> List.map (function Some r -> r | None -> assert false)
    in
    callback (Ok rels)
  in
  let record (i, (e1, e2)) rel =
    answers.(i) <- Some rel;
    cache_insert t e1 e2 rel
  in
  match misses with
  | [] -> finish ()
  | _ ->
    let miss_pairs = List.map snd misses in
    let target = if stale then Proxy.Any else Proxy.Tail in
    send_query t ?timeout ?min_epoch ~target miss_pairs (fun result ->
        match result with
        | Error err -> callback (Error err)
        | Ok (rels, _epoch) ->
          let answered = List.combine misses rels in
          if (not stale) || not revalidate then begin
            List.iter
              (fun ((m, rel) : (int * (Event_id.t * Event_id.t)) * Order.relation) ->
                match rel with
                | Order.Concurrent when stale ->
                  (* unvalidated concurrent answer: report, do not cache *)
                  answers.(fst m) <- Some rel
                | _ -> record m rel)
              answered;
            finish ()
          end
          else begin
            (* Ordered answers from a stale replica are definitive; only
               Concurrent needs tail validation (Section 2.5). *)
            let unresolved =
              List.filter_map
                (fun (m, rel) ->
                  match (rel : Order.relation) with
                  | Concurrent -> Some m
                  | Before | After | Same ->
                    record m rel;
                    None)
                answered
            in
            match unresolved with
            | [] -> finish ()
            | _ ->
              t.stale_revalidations <- t.stale_revalidations + List.length unresolved;
              Kronos_metrics.Counter.add M.revalidations (List.length unresolved);
              send_query t ?timeout ?min_epoch ~target:Proxy.Tail
                (List.map snd unresolved)
                (fun result ->
                  match result with
                  | Error err -> callback (Error err)
                  | Ok (rels, _epoch) ->
                    List.iter2 (fun m rel -> record m rel) unresolved rels;
                    finish ())
          end)

(* Cache-bypassing epoch-stamped query: every pair goes to the service,
   and the callback learns the exact view epoch the answers reflect.
   Answers still feed the cache (they are facts at that epoch, and stable
   ones stay true forever). *)
let query_order_e t ?timeout ?(stale = false) ?(consistency = `Latest) pairs
    callback =
  let callback = timed M.query_order callback in
  let min_epoch =
    match consistency with `Latest -> Some 0L | `At_least e -> Some e
  in
  let target = if stale then Proxy.Any else Proxy.Tail in
  send_query t ?timeout ?min_epoch ~target pairs (fun result ->
      match result with
      | Error err -> callback (Error err)
      | Ok (rels, epoch) ->
        List.iter2
          (fun (e1, e2) rel ->
            match (rel : Order.relation) with
            | Before | After | Same -> cache_insert t e1 e2 rel
            | Concurrent -> ())
          pairs rels;
        callback (Ok (rels, epoch)))

(* A verified certificate authenticates every edge on its path, not just
   the queried endpoints: each one becomes a free stable cache entry, and
   the cache's own transitive pre-fill multiplies them further. *)
let prefill_from_cert t (cert : Kronos_certify.Certificate.t) =
  let edges = Kronos_certify.Certificate.path_edges cert in
  Kronos_metrics.Counter.add M.proof_prefills (List.length edges);
  List.iter (fun (pred, event) -> cache_insert t pred event Order.Before) edges

let query_verified t ?timeout ?(stale = false) e1 e2 callback =
  let callback = timed M.query_verified callback in
  let target = if stale then Proxy.Any else Proxy.Tail in
  t.server_queries <- t.server_queries + 1;
  Proxy.read t.proxy ?timeout ~target
    (Message.encode_request (Message.Query_proof (e1, e2)))
    (decoded (function
      | Ok (Message.Proof_is { relation; cert }) ->
        (match cert with
         | None ->
           (* unproved: fall back to plain-query trust rules — ordered
              answers are definitive even from a stale replica, an
              unvalidated Concurrent is reported but not cached *)
           (match relation with
            | Order.Before | Order.After | Order.Same ->
              cache_insert t e1 e2 relation
            | Order.Concurrent -> ());
           callback (Ok (relation, None))
         | Some c ->
           Kronos_metrics.Counter.incr M.proofs_checked;
           let endpoints_ok =
             match relation with
             | Order.Before ->
               Event_id.equal c.source e1 && Event_id.equal c.target e2
             | Order.After ->
               Event_id.equal c.source e2 && Event_id.equal c.target e1
             | Order.Concurrent | Order.Same -> false
           in
           if not endpoints_ok then begin
             Kronos_metrics.Counter.incr M.proofs_rejected;
             callback
               (Error
                  (Error.Proof_invalid
                     "certificate endpoints do not match the query"))
           end
           else begin
             match Kronos_certify.Verifier.verify c with
             | Error m ->
               Kronos_metrics.Counter.incr M.proofs_rejected;
               callback (Error (Error.Proof_invalid m))
             | Ok () ->
               cache_insert t e1 e2 relation;
               prefill_from_cert t c;
               callback (Ok (relation, Some c))
           end)
      | Ok (Message.Rejected err) -> callback (Error (Error.Rejected err))
      | Ok _ -> callback (Error unexpected)
      | Error e -> callback (Error e)))

(* Every pair of a successful batch now has a committed order we can
   cache: Applied/Already mean the requested direction holds; Reversed
   means the opposite one does. *)
let cache_outcomes t specs outs =
  List.iter2
    (fun (s : Order.spec) out ->
      let before, after =
        match s.direction with
        | Order.Happens_before -> (s.left, s.right)
        | Order.Happens_after -> (s.right, s.left)
      in
      match (out : Order.outcome) with
      | Applied | Already ->
        if not (Event_id.equal before after) then
          cache_insert t before after Order.Before
      | Reversed -> cache_insert t after before Order.Before)
    specs outs

(* The canonical rejection an old server sends for a request whose tag its
   decoder does not know (its [apply] maps [Decode_error] to
   [Rejected (Unknown_event none)]); a genuine unknown-event rejection
   names the offending id, which is never [none] for a batch the client
   itself encoded from live ids. *)
let rejected_as_unparseable = function
  | Order.Unknown_event e -> Event_id.equal e Event_id.none
  | Order.Must_violated _ | Order.Must_self _ | Order.Guard_failed _ -> false

let send_assign t ?timeout ?on_old_server request specs callback =
  Proxy.write t.proxy ?timeout (Message.encode_request request)
    (decoded (function
      | Ok (Message.Outcomes outs) ->
        cache_outcomes t specs outs;
        callback (Ok outs)
      | Ok (Message.Outcomes_at { epoch; outs }) ->
        (* the ack's epoch covers this batch: a subsequent
           [`At_least (last_epoch t)] query reads its own writes *)
        note_epoch t epoch;
        cache_outcomes t specs outs;
        callback (Ok outs)
      | Ok (Message.Rejected err) -> (
        match on_old_server with
        | Some retry when rejected_as_unparseable err -> retry ()
        | _ -> callback (Error (Error.Rejected err)))
      | Ok _ -> callback (Error unexpected)
      | Error e -> callback (Error e)))

(* Prefer the epoch-stamped assign so the ack carries the view epoch, but
   degrade gracefully in a mixed-version cluster: a server predating the
   tag rejects it as unparseable (and applies nothing), so we retry the
   same batch once with the legacy encoding and stay on it for the rest of
   this client's life.  The only false positive is a batch that really
   names [Event_id.none] — the legacy retry then draws the identical
   rejection, costing one extra round trip before the same error. *)
let assign_order t ?timeout specs callback =
  let callback = timed M.assign_order callback in
  if t.assign_compat then
    send_assign t ?timeout (Message.Assign_order specs) specs callback
  else
    send_assign t ?timeout (Message.Assign_order_at specs) specs callback
      ~on_old_server:(fun () ->
        t.assign_compat <- true;
        send_assign t ?timeout (Message.Assign_order specs) specs callback)

let guarded_assign t ?timeout ~guards specs callback =
  let callback = timed M.assign_order callback in
  send_assign t ?timeout (Message.Guarded_assign { guards; specs }) specs
    callback
