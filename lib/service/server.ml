open Kronos
open Kronos_wire
module Transport = Kronos_transport.Transport
module Chain = Kronos_replication.Chain
module Durability = Kronos_durability

module M = struct
  let scope = Kronos_metrics.scope "server"

  let op_metrics op =
    ( Kronos_metrics.counter scope ~labels:[ ("op", op) ] "ops_total",
      Kronos_metrics.histogram scope ~labels:[ ("op", op) ] "apply_seconds" )

  let create_event = op_metrics "create_event"
  let acquire_ref = op_metrics "acquire_ref"
  let release_ref = op_metrics "release_ref"
  let query_order = op_metrics "query_order"
  let query_proof = op_metrics "query_proof"
  let assign_order = op_metrics "assign_order"
  let guarded_assign = op_metrics "guarded_assign"
  let malformed = Kronos_metrics.counter scope "malformed_requests_total"
end

let apply engine cmd =
  let timed (ops, hist) f =
    Kronos_metrics.Counter.incr ops;
    if Kronos_metrics.enabled () then begin
      let t0 = Unix.gettimeofday () in
      let r = f () in
      Kronos_metrics.Histogram.observe hist (Unix.gettimeofday () -. t0);
      r
    end
    else f ()
  in
  let response =
    match Message.decode_request cmd with
    | exception Codec.Decode_error _ ->
      (* a malformed command can never name a live event *)
      Kronos_metrics.Counter.incr M.malformed;
      Message.Rejected (Order.Unknown_event Event_id.none)
    | Message.Create_event ->
      timed M.create_event (fun () ->
          Message.Event_created (Engine.create_event engine))
    | Message.Acquire_ref e ->
      timed M.acquire_ref (fun () ->
          match Engine.acquire_ref engine e with
          | Ok () -> Message.Ref_acquired
          | Error err -> Message.Rejected err)
    | Message.Release_ref e ->
      timed M.release_ref (fun () ->
          match Engine.release_ref engine e with
          | Ok n -> Message.Ref_released n
          | Error err -> Message.Rejected err)
    | Message.Query_order pairs ->
      timed M.query_order (fun () ->
          match Engine.query_order engine pairs with
          | Ok rels -> Message.Orders rels
          | Error err -> Message.Rejected err)
    | Message.Query_proof (e1, e2) ->
      timed M.query_proof (fun () ->
          match Engine.query_order engine [ (e1, e2) ] with
          | Error err -> Message.Rejected err
          | Ok [ relation ] ->
            let g = Engine.current_view engine in
            let cert =
              match relation with
              | Order.Before ->
                Kronos_certify.Prover.prove g ~source:e1 ~target:e2
              | Order.After ->
                Kronos_certify.Prover.prove g ~source:e2 ~target:e1
              | Order.Concurrent | Order.Same -> None
            in
            Message.Proof_is { relation; cert }
          | Ok _ -> assert false (* one pair in, one relation out *))
    | Message.Assign_order reqs ->
      timed M.assign_order (fun () ->
          match Engine.assign_order engine reqs with
          | Ok outs -> Message.Outcomes outs
          | Error err -> Message.Rejected err)
    | Message.Guarded_assign { guards; specs } ->
      timed M.guarded_assign (fun () ->
          match Engine.guarded_assign engine ~guards specs with
          | Ok outs -> Message.Outcomes outs
          | Error err -> Message.Rejected err)
    | Message.Query_order_at { min_epoch = _; pairs } ->
      (* [min_epoch] is advisory: the live engine is the freshest state
         this replica has, so it answers regardless and the stamped epoch
         lets the client detect and escalate staleness *)
      timed M.query_order (fun () ->
          match Engine.query_order engine pairs with
          | Ok rels -> Message.Orders_at { epoch = Engine.epoch engine; rels }
          | Error err -> Message.Rejected err)
    | Message.Assign_order_at reqs ->
      (* the reply epoch is replicated state (every replica encodes its own
         answer), which is why the epoch must be deterministic across
         replicas: it is the graph mutation version, persisted in
         snapshots *)
      timed M.assign_order (fun () ->
          match Engine.assign_order engine reqs with
          | Ok outs -> Message.Outcomes_at { epoch = Engine.epoch engine; outs }
          | Error err -> Message.Rejected err)
  in
  Message.encode_response response

(* Amortized snapshotting (DESIGN.md §16): instead of a full snapshot
   every N commands, trigger on WAL bytes accumulated since the last
   snapshot and write {e incremental} deltas between full snapshots, so a
   busy replica's snapshot cost tracks its write rate, not its history. *)
type snapshot_policy = {
  wal_bytes_per_snapshot : int;
  max_delta_chain : int;
}

let snapshot_policy ?(wal_bytes_per_snapshot = 4 * 1024 * 1024)
    ?(max_delta_chain = 8) () =
  if wal_bytes_per_snapshot < 1 then
    invalid_arg "Server.snapshot_policy: wal_bytes_per_snapshot";
  if max_delta_chain < 0 then
    invalid_arg "Server.snapshot_policy: max_delta_chain";
  { wal_bytes_per_snapshot; max_delta_chain }

type durability = {
  storage_of : Transport.addr -> Durability.Storage.t;
  wal_config : Durability.Wal.config;
  snapshot_every : int;
  snapshots_kept : int;
  policy : snapshot_policy option;
}

let durability ?(wal_config = Durability.Wal.default_config)
    ?(snapshot_every = 1024) ?(snapshots_kept = 2) ?policy ~storage_of () =
  if snapshot_every < 1 then invalid_arg "Server.durability: snapshot_every";
  { storage_of; wal_config; snapshot_every; snapshots_kept; policy }

type cluster = {
  net : Chain.msg Transport.t;
  coordinator : Chain.Coordinator.t;
  mutable replicas : (Chain.Replica.t * Engine.t ref) list;
  dur : durability option;
  engine_config : Engine.config option;
  service : [ `Fixed of float | `Measured of float ] option;
}

(* Wire a query pool to a replica's engine cell: attach (so views are
   published from whatever engine currently occupies the cell — snapshot
   installs and restarts swap it) and return the replica's [read_async]
   hook. *)
let read_async_of query_pool engine =
  Option.map
    (fun pool ->
      Query_pool.attach pool ~engine:(fun () -> !engine);
      fun ~client ~req_id:_ ~cmd ~reply ->
        Query_pool.offload pool ~client ~cmd ~reply)
    query_pool

let start_replica ~net ~addr ~engine_config ~service ~query_pool =
  let engine = ref (Engine.create ?config:engine_config ()) in
  let replica =
    Chain.Replica.create ~net ~addr
      ~apply:(fun cmd -> apply !engine cmd)
      ?read_async:(read_async_of query_pool engine)
      ~config:{ Chain.version = 0; chain = [] } ?service ()
  in
  (replica, engine)

(* A durable replica first recovers from its storage (snapshot + WAL
   suffix), then runs with persistence hooks: log each applied command,
   group-commit per message, snapshot every [snapshot_every] commands and
   truncate the log segments the snapshot covers. *)
let start_durable_replica ~net ~addr ~engine_config ~service ~query_pool d =
  let storage = d.storage_of addr in
  let replayed = ref [] in
  let outcome =
    Durability.Recovery.run ?engine_config ~wal_config:d.wal_config
      ~replay:(fun engine (r : Durability.Wal.record) ->
        let client, req_id, cmd = Chain.decode_entry_payload r.payload in
        let resp = apply engine cmd in
        replayed := (r.seq, client, req_id, cmd, resp) :: !replayed)
      storage
  in
  let engine = ref outcome.Durability.Recovery.engine in
  let wal = outcome.Durability.Recovery.wal in
  let last_snap = ref outcome.Durability.Recovery.snapshot_seq in
  (* Incremental-snapshot bookkeeping.  [last_full = 0] forces the first
     policy-triggered snapshot after {e any} recovery or install to be a
     full one: a delta may only base on a snapshot this process wrote
     after the dirty set was last cleared, never on whatever (possibly
     legacy-format, possibly rebuilt) state recovery restored. *)
  let last_full = ref 0 in
  let deltas_since_full = ref 0 in
  let bytes_mark = ref (Durability.Wal.logged_bytes wal) in
  let write_snapshot ~upto =
    (match d.policy with
     | Some p when !last_full > 0 && !deltas_since_full < p.max_delta_chain ->
       Durability.Snapshot.write_delta storage ~base_seq:!last_snap ~seq:upto
         !engine;
       incr deltas_since_full
     | _ ->
       Durability.Snapshot.write storage ~seq:upto !engine;
       last_full := upto;
       deltas_since_full := 0);
    (* the capture is durable (tmp -> sync -> rename): only now may the
       dirty set restart, and only now may covered files be retired *)
    Engine.snapshot_written !engine;
    last_snap := upto;
    bytes_mark := Durability.Wal.logged_bytes wal;
    Durability.Wal.truncate_before wal ~seq:upto;
    match d.policy with
    | Some _ ->
      ignore (Durability.Snapshot.compact storage ~keep:d.snapshots_kept)
    | None -> Durability.Snapshot.truncate_old storage ~keep:d.snapshots_kept
  in
  let persist =
    {
      Chain.Replica.log_entry =
        (fun ~seq ~client ~req_id ~cmd ->
          Durability.Wal.append wal ~seq
            ~payload:(Chain.encode_entry_payload ~client ~req_id ~cmd));
      commit =
        (fun ~upto ->
          Durability.Wal.flush wal;
          let due =
            match d.policy with
            | Some p ->
              Durability.Wal.logged_bytes wal - !bytes_mark
              >= p.wal_bytes_per_snapshot
            | None -> upto - !last_snap >= d.snapshot_every
          in
          if due && upto > !last_snap then write_snapshot ~upto);
      snapshot = (fun () -> Durability.Snapshot.load_chain_bytes storage);
      tail =
        (fun ~since ->
          Option.map
            (List.map (fun (r : Durability.Wal.record) ->
                 let client, req_id, cmd =
                   Chain.decode_entry_payload r.payload
                 in
                 (r.seq, client, req_id, cmd)))
            (Durability.Wal.read_from wal ~since));
      install =
        (fun ~seq snapshot ->
          let _, snap = Durability.Snapshot.decode snapshot in
          engine := Engine.of_snapshot ?config:engine_config snap;
          (* persist the received snapshot: it is this replica's new
             recovery baseline, and its own log below [seq] is stale.
             The received bytes may be an older format, so the next
             policy snapshot must be full ([last_full] stays 0). *)
          Durability.Snapshot.write_bytes storage ~seq snapshot;
          last_snap := seq;
          last_full := 0;
          deltas_since_full := 0;
          bytes_mark := Durability.Wal.logged_bytes wal;
          Durability.Wal.truncate_before wal ~seq);
    }
  in
  let replica =
    Chain.Replica.create ~net ~addr
      ~apply:(fun cmd -> apply !engine cmd)
      ?read_async:(read_async_of query_pool engine)
      ~config:{ Chain.version = 0; chain = [] } ?service ~persist ()
  in
  if outcome.Durability.Recovery.next_seq > 1 then
    Chain.Replica.restore replica
      ~last_applied:(outcome.Durability.Recovery.next_seq - 1)
      ~entries:(List.rev !replayed);
  (replica, engine)

let start ~net ~addr ~engine_config ~service ?query_pool dur =
  match dur with
  | Some d ->
    start_durable_replica ~net ~addr ~engine_config ~service ~query_pool d
  | None -> start_replica ~net ~addr ~engine_config ~service ~query_pool

let start_node ~net ~addr ?engine_config ?service ?durability ?query_pool () =
  start ~net ~addr ~engine_config ~service ?query_pool durability

let deploy ~net ~coordinator ~replicas ?engine_config ?service ?durability
    ?(ping_interval = 0.2) ?(failure_timeout = 1.0) () =
  let started =
    List.map
      (fun addr -> start ~net ~addr ~engine_config ~service durability)
      replicas
  in
  let coordinator =
    Chain.Coordinator.create ~net ~addr:coordinator ~chain:replicas
      ~ping_interval ~failure_timeout ()
  in
  { net; coordinator; replicas = started; dur = durability; engine_config;
    service }

let replica_of cluster addr =
  List.find_map
    (fun (replica, _) ->
      if Chain.Replica.addr replica = addr then Some replica else None)
    cluster.replicas

let crash cluster addr =
  match replica_of cluster addr with
  | Some replica -> Chain.Replica.crash replica
  | None -> ()

let join cluster addr ?engine_config ?service () =
  let engine_config =
    match engine_config with Some _ -> engine_config | None -> cluster.engine_config
  in
  let service = match service with Some _ -> service | None -> cluster.service in
  let replica, engine =
    start ~net:cluster.net ~addr ~engine_config ~service cluster.dur
  in
  Chain.Coordinator.join cluster.coordinator replica;
  cluster.replicas <- cluster.replicas @ [ (replica, engine) ]

let restart_replica cluster addr ?service () =
  (match cluster.dur with
   | None -> invalid_arg "Server.restart_replica: cluster has no durability"
   | Some _ -> ());
  if Transport.is_registered cluster.net addr then
    invalid_arg "Server.restart_replica: replica still running";
  if replica_of cluster addr = None then
    invalid_arg "Server.restart_replica: unknown replica";
  let service = match service with Some _ -> service | None -> cluster.service in
  let replica, engine =
    start ~net:cluster.net ~addr ~engine_config:cluster.engine_config ~service
      cluster.dur
  in
  cluster.replicas <-
    List.filter (fun (r, _) -> Chain.Replica.addr r <> addr) cluster.replicas
    @ [ (replica, engine) ];
  Chain.Coordinator.join cluster.coordinator replica

let engine_of cluster addr =
  List.find_map
    (fun (replica, engine) ->
      if Chain.Replica.addr replica = addr then Some !engine else None)
    cluster.replicas
