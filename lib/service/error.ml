type t = Rejected of Kronos.Order.assign_error | Timeout

let equal a b =
  match (a, b) with
  | Rejected e, Rejected f -> Kronos.Order.assign_error_equal e f
  | Timeout, Timeout -> true
  | (Rejected _ | Timeout), _ -> false

let of_proxy `Timeout = Timeout

let pp ppf = function
  | Rejected err -> Kronos.Order.pp_assign_error ppf err
  | Timeout -> Format.pp_print_string ppf "timeout"

let to_string e = Format.asprintf "%a" pp e
