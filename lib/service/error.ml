type t =
  | Rejected of Kronos.Order.assign_error
  | Timeout
  | Proof_invalid of string

let equal a b =
  match (a, b) with
  | Rejected e, Rejected f -> Kronos.Order.assign_error_equal e f
  | Timeout, Timeout -> true
  | Proof_invalid m, Proof_invalid n -> String.equal m n
  | (Rejected _ | Timeout | Proof_invalid _), _ -> false

let of_proxy `Timeout = Timeout

let pp ppf = function
  | Rejected err -> Kronos.Order.pp_assign_error ppf err
  | Timeout -> Format.pp_print_string ppf "timeout"
  | Proof_invalid m -> Format.fprintf ppf "proof invalid: %s" m

let to_string e = Format.asprintf "%a" pp e
