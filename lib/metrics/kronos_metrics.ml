(* One process-wide flag gates every recording operation: with it off the
   instruments are a no-op sink and instrumented code runs bit-identically
   to uninstrumented code (the deterministic benches depend on that). *)
let on = ref true

let set_enabled v = on := v
let enabled () = !on

module Counter = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let incr c = if !on then c.v <- c.v + 1
  let add c n = if !on then c.v <- c.v + n
  let value c = c.v
end

module Gauge = struct
  type t = { mutable v : int }

  let make () = { v = 0 }
  let set g n = if !on then g.v <- n
  let add g n = if !on then g.v <- g.v + n
  let value g = g.v
end

module Histogram = struct
  (* Power-of-two buckets: bucket [i] holds values in
     [2^(i-31), 2^(i-30)) seconds, clamped at both ends.  48 buckets cover
     ~0.5 ns up to 2^17 s (~36 hours) — any latency the system can emit. *)
  let bucket_count = 48

  let bucket_of v =
    if v <= 0. then 0
    else begin
      (* frexp v = (m, e) with v = m * 2^e, m in [0.5, 1): v < 2^e. *)
      let e = snd (Float.frexp v) in
      let i = e + 30 in
      if i < 0 then 0 else if i >= bucket_count then bucket_count - 1 else i
    end

  let bucket_upper i = Float.ldexp 1.0 (i - 30)

  (* Geometric midpoint of a bucket's bounds — the quantile representative. *)
  let representative i = bucket_upper i *. 0.7071067811865476

  type t = {
    buckets : int array;
    mutable count : int;
    mutable sum : float;
    mutable max : float;
  }

  let make () = { buckets = Array.make bucket_count 0; count = 0; sum = 0.; max = 0. }

  let observe h v =
    if !on then begin
      let i = bucket_of v in
      h.buckets.(i) <- h.buckets.(i) + 1;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if v > h.max then h.max <- v
    end

  let count h = h.count
  let sum h = h.sum
  let max_value h = h.max

  let quantile h q =
    if h.count = 0 then 0.
    else if q >= 1. then h.max
    else begin
      let rank = q *. float_of_int h.count in
      let rec go i cum =
        if i >= bucket_count - 1 then h.max
        else
          let cum = cum + h.buckets.(i) in
          if float_of_int cum >= rank && cum > 0 then
            Float.min (representative i) h.max
          else go (i + 1) cum
      in
      go 0 0
    end

  let reset h =
    Array.fill h.buckets 0 bucket_count 0;
    h.count <- 0;
    h.sum <- 0.;
    h.max <- 0.
end

(* {1 Registry} *)

type scope = string

let scope name = name

type value =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type entry = { base : string; labels : (string * string) list; value : value }

let registry : (string, entry) Hashtbl.t = Hashtbl.create 64

let render_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let series base labels = base ^ render_labels labels

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let find_or_add scope_ labels name wrap unwrap make =
  let base = "kronos_" ^ scope_ ^ "_" ^ name in
  let key = series base labels in
  match Hashtbl.find_opt registry key with
  | Some entry -> (
      match unwrap entry.value with
      | Some v -> v
      | None ->
        invalid_arg
          (Printf.sprintf "Kronos_metrics: %s already registered as a %s" key
             (kind_name entry.value)))
  | None ->
    let v = make () in
    Hashtbl.replace registry key { base; labels; value = wrap v };
    v

let counter scope_ ?(labels = []) name =
  find_or_add scope_ labels name
    (fun c -> C c)
    (function C c -> Some c | G _ | H _ -> None)
    Counter.make

let gauge scope_ ?(labels = []) name =
  find_or_add scope_ labels name
    (fun g -> G g)
    (function G g -> Some g | C _ | H _ -> None)
    Gauge.make

let histogram scope_ ?(labels = []) name =
  find_or_add scope_ labels name
    (fun h -> H h)
    (function H h -> Some h | C _ | G _ -> None)
    Histogram.make

(* {1 Export} *)

let quantiles = [ 0.5; 0.9; 0.99 ]

let quantile_label q =
  if Float.is_integer q then Printf.sprintf "%.0f" q else Printf.sprintf "%g" q

let sorted_entries () =
  Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let histogram_samples base labels h =
  List.map
    (fun q ->
      ( series base (labels @ [ ("quantile", quantile_label q) ]),
        Histogram.quantile h q ))
    quantiles
  @ [
      (series (base ^ "_count") labels, float_of_int (Histogram.count h));
      (series (base ^ "_sum") labels, Histogram.sum h);
      (series (base ^ "_max") labels, Histogram.max_value h);
    ]

let samples () =
  sorted_entries ()
  |> List.concat_map (fun (key, entry) ->
         match entry.value with
         | C c -> [ (key, float_of_int (Counter.value c)) ]
         | G g -> [ (key, float_of_int (Gauge.value g)) ]
         | H h -> histogram_samples entry.base entry.labels h)
  (* flattening histograms breaks key order (base{q=..} vs base_count) *)
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let render () =
  let b = Buffer.create 4096 in
  let typed = Hashtbl.create 32 in
  List.iter
    (fun (key, entry) ->
      if not (Hashtbl.mem typed entry.base) then begin
        Hashtbl.replace typed entry.base ();
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" entry.base
             (match entry.value with
              | C _ -> "counter"
              | G _ -> "gauge"
              | H _ -> "summary"))
      end;
      match entry.value with
      | C c -> Buffer.add_string b (Printf.sprintf "%s %d\n" key (Counter.value c))
      | G g -> Buffer.add_string b (Printf.sprintf "%s %d\n" key (Gauge.value g))
      | H h ->
        List.iter
          (fun (name, v) -> Buffer.add_string b (Printf.sprintf "%s %.9g\n" name v))
          (histogram_samples entry.base entry.labels h))
    (sorted_entries ());
  Buffer.contents b

let reset () =
  Hashtbl.iter
    (fun _ entry ->
      match entry.value with
      | C c -> c.Counter.v <- 0
      | G g -> g.Gauge.v <- 0
      | H h -> Histogram.reset h)
    registry
