(** Process-wide observability primitives: allocation-light counters,
    gauges and fixed-bucket log-scale latency histograms, organized in a
    registry of named scopes and exported either as a Prometheus-style text
    page or as flat [(name, value)] samples for the chain's [Stats] RPC.

    Design constraints (DESIGN.md §10):

    - {b allocation-light}: a counter is one mutable int, a histogram one
      preallocated int array; recording never allocates on the hot path;
    - {b compiled-in but switchable}: every recording operation is gated on
      a single process-wide flag ({!set_enabled}).  With the flag off, the
      sink is a no-op and instrumented code behaves bit-identically to
      uninstrumented code — the deterministic simulation benches rely on
      this, and the [bench micro] ablation measures the residual cost of
      the gate itself (<5% on the query hot path);
    - {b process-wide}: one implicit registry per process.  [kronosd]
      serves it over the [Stats] admin RPC and [--metrics-addr]; tests and
      benches may also use unregistered metrics ({!Counter.make} etc.)
      that never appear in the exposition. *)

val set_enabled : bool -> unit
(** Switch every metric in the process between recording and the no-op
    sink.  Enabled by default.  Disabling does not clear accumulated
    values; see {!reset}. *)

val enabled : unit -> bool

(** {1 Instruments} *)

module Counter : sig
  type t

  val make : unit -> t
  (** A free-standing (unregistered) counter; {!val-counter} registers one. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val make : unit -> t
  val set : t -> int -> unit
  val add : t -> int -> unit
  val value : t -> int
end

(** Latency histogram over seconds, with fixed power-of-two buckets from
    below a nanosecond to ~36 hours.  Quantiles are extracted from bucket
    counts, so they carry at most a factor-[sqrt 2] relative error — ample
    for p50/p90/p99 reporting — while [max] is exact. *)
module Histogram : sig
  type t

  val make : unit -> t
  val observe : t -> float -> unit
  (** Record a value in seconds.  Negative and zero values land in the
      lowest bucket. *)

  val count : t -> int
  val sum : t -> float

  val max_value : t -> float
  (** Largest value observed (exact); 0 before the first observation. *)

  val quantile : t -> float -> float
  (** [quantile h q] for [q] in [0, 1]: an estimate of the [q]-quantile,
      clamped to [max_value]; [q >= 1] returns the exact maximum. *)

  (** {2 Bucket geometry (exposed for tests)} *)

  val bucket_count : int

  val bucket_of : float -> int
  (** Index of the bucket a value falls into. *)

  val bucket_upper : int -> float
  (** Exclusive upper bound of bucket [i]; values in bucket [i] lie in
      [[bucket_upper i /. 2., bucket_upper i)]. *)
end

(** {1 Registry} *)

type scope
(** A named scope: metrics registered under scope [s] with name [n] are
    exported as [kronos_<s>_<n>]. *)

val scope : string -> scope

val counter : scope -> ?labels:(string * string) list -> string -> Counter.t
(** Register (or retrieve) the counter [kronos_<scope>_<name>{labels}].
    Re-registering the same name and labels returns the same counter.
    @raise Invalid_argument if the name is already registered as a
    different kind of instrument. *)

val gauge : scope -> ?labels:(string * string) list -> string -> Gauge.t
val histogram : scope -> ?labels:(string * string) list -> string -> Histogram.t

(** {1 Export} *)

val quantiles : float list
(** The quantile levels flattened into {!samples} and {!render}:
    [[0.5; 0.9; 0.99]] (plus the exact max as [quantile="1"]). *)

val samples : unit -> (string * float) list
(** Flat snapshot of the registry, sorted by name: counters and gauges as
    [(name{labels}, value)]; each histogram as its {!quantiles} (with a
    [quantile] label), then [_count], [_sum] and [_max] series.  This is
    the payload of the chain's [Stats_is] message. *)

val render : unit -> string
(** Prometheus-style text exposition ([name{label="v"} value] lines with
    [# TYPE] comments), served by [kronosd --metrics-addr]. *)

val reset : unit -> unit
(** Zero every registered metric (for tests and ablations). *)
