open Kronos
module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net

type alarm_msg =
  | Fire of { cycle : int; event : Event_id.t }
  | Fire_out of { cycle : int; event : Event_id.t }

type machine_msg = { event : Event_id.t; running : bool }

type outcome = {
  machine_running_at_end : bool;
  ordering_correct : bool;
  stops_issued : int;
  starts_issued : int;
}

let alarm_addr = 0
let fail_safe_addr = 1
let machine_addr = 2

let run ~seed ~cycles =
  if cycles < 1 then invalid_arg "Fail_safe.run: need at least one cycle";
  let sim = Sim.create ~seed () in
  let alarm_net =
    Net.create ~fifo:false
      ~latency:{ Net.base = 1e-3; jitter = 40e-3; drop = 0.0 }
      sim
  in
  let machine_net =
    Net.create ~fifo:false
      ~latency:{ Net.base = 1e-3; jitter = 40e-3; drop = 0.0 }
      sim
  in
  let engine = Engine.create () in
  (* machine: last-ordered-wins command application (as in Shop_floor) *)
  let running = ref true in
  let last_applied = ref None in
  let machine (cmd : machine_msg) =
    let stale =
      match !last_applied with
      | None -> false
      | Some prev -> (
          match Engine.query_order engine [ (prev, cmd.event) ] with
          | Ok [ Order.Before ] -> false
          | Ok _ | Error _ -> true)
    in
    if not stale then begin
      running := cmd.running;
      last_applied := Some cmd.event
    end
  in
  Net.register machine_net machine_addr (fun ~src:_ cmd -> machine cmd);
  (* fail-safe: reacts to alarm reports, issuing machine commands coupled
     purely through the event dependency graph *)
  let stops = ref 0 in
  let starts = ref 0 in
  let stop_events = Hashtbl.create 16 in   (* cycle -> stop event *)
  let start_events = Hashtbl.create 16 in  (* cycle -> start event *)
  let fire_events = Hashtbl.create 16 in
  let out_events = Hashtbl.create 16 in
  let pending_outs = Hashtbl.create 16 in  (* outs that raced their fire *)
  let must before after =
    match
      Engine.assign_order engine [ Order.must_before before after ]
    with
    | Ok _ -> ()
    | Error _ -> assert false
  in
  (* The fail-safe also chains its own commands: the machine must apply
     them in issue order even when cycles interleave on the wire. *)
  let prev_command = ref None in
  let chain_command event =
    (match !prev_command with Some prev -> must prev event | None -> ());
    prev_command := Some event
  in
  let handle_fire cycle event =
    Hashtbl.replace fire_events cycle event;
    let stop = Engine.create_event engine in
    must event stop;
    chain_command stop;
    Hashtbl.replace stop_events cycle stop;
    incr stops;
    Net.send machine_net ~src:fail_safe_addr ~dst:machine_addr
      { event = stop; running = false }
  in
  let handle_out cycle event =
    Hashtbl.replace out_events cycle event;
    let stop = Hashtbl.find stop_events cycle in
    (* order this cycle's stop before the fire-out, then start after it *)
    must stop event;
    let start = Engine.create_event engine in
    must event start;
    chain_command start;
    Hashtbl.replace start_events cycle start;
    incr starts;
    Net.send machine_net ~src:fail_safe_addr ~dst:machine_addr
      { event = start; running = true }
  in
  let fail_safe msg =
    match msg with
    | Fire { cycle; event } ->
      handle_fire cycle event;
      (match Hashtbl.find_opt pending_outs cycle with
       | Some out ->
         Hashtbl.remove pending_outs cycle;
         handle_out cycle out
       | None -> ())
    | Fire_out { cycle; event } ->
      if Hashtbl.mem stop_events cycle then handle_out cycle event
      else Hashtbl.replace pending_outs cycle event
  in
  Net.register alarm_net fail_safe_addr (fun ~src:_ msg -> fail_safe msg);
  (* the alarm: [cycles] fire / fire-out pairs *)
  for cycle = 0 to cycles - 1 do
    ignore
      (Sim.schedule sim ~delay:(float_of_int cycle *. 100e-3) (fun () ->
           let fire = Engine.create_event engine in
           Net.send alarm_net ~src:alarm_addr ~dst:fail_safe_addr
             (Fire { cycle; event = fire });
           ignore
             (Sim.schedule sim ~delay:20e-3 (fun () ->
                  let out = Engine.create_event engine in
                  must fire out;
                  Net.send alarm_net ~src:alarm_addr ~dst:fail_safe_addr
                    (Fire_out { cycle; event = out })))))
  done;
  Sim.run sim;
  (* audit: fire -> stop -> fire-out -> start for every cycle *)
  let ordered a b =
    match Engine.query_order engine [ (a, b) ] with
    | Ok [ Order.Before ] -> true
    | Ok _ | Error _ -> false
  in
  let ordering_correct = ref true in
  for cycle = 0 to cycles - 1 do
    match
      ( Hashtbl.find_opt fire_events cycle,
        Hashtbl.find_opt stop_events cycle,
        Hashtbl.find_opt out_events cycle,
        Hashtbl.find_opt start_events cycle )
    with
    | Some f, Some s, Some o, Some st ->
      if not (ordered f s && ordered s o && ordered o st) then
        ordering_correct := false
    | _ -> ordering_correct := false
  done;
  {
    machine_running_at_end = !running;
    ordering_correct = !ordering_correct;
    stops_issued = !stops;
    starts_issued = !starts;
  }

let correct outcome =
  outcome.machine_running_at_end && outcome.ordering_correct
