open Kronos
module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net

type report =
  | Fire of { location : int; event : Event_id.t }
  | Fire_out of { location : int; event : Event_id.t }

type outcome = {
  burning_truth : int;
  burning_believed : int;
  misattributions : int;
}

let sensor_addr = 0
let monitor_addr = 1

let run ~kronos ~seed ~locations ~rounds =
  if locations < 1 || rounds < 1 then invalid_arg "Fire_alarm.run: bad parameters";
  let sim = Sim.create ~seed () in
  let net =
    Net.create ~fifo:false
      ~latency:{ Net.base = 1e-3; jitter = 80e-3; drop = 0.0 }
      sim
  in
  let engine = Engine.create () in
  (* monitor state: per location, fires seen and fire-outs seen *)
  let fires : (int, Event_id.t list) Hashtbl.t = Hashtbl.create 16 in
  let outs : (int, Event_id.t list) Hashtbl.t = Hashtbl.create 16 in
  (* baseline state: per location, whether a fire is believed burning; a
     FIRE-OUT clears the flag no matter which fire it really referred to —
     the CATOCS misattribution *)
  let believed = Hashtbl.create 16 in
  let misattributions = ref 0 in
  let add table location e =
    Hashtbl.replace table location
      (e :: Option.value ~default:[] (Hashtbl.find_opt table location))
  in
  let monitor report =
    match report with
    | Fire { location; event } ->
      add fires location event;
      Hashtbl.replace believed location true
    | Fire_out { location; event } ->
      add outs location event;
      Hashtbl.replace believed location false
  in
  Net.register net monitor_addr (fun ~src:_ r -> monitor r);
  (* sensors: per location, [rounds] fire / fire-out cycles; odd locations
     keep their last fire burning *)
  let truth_burning = ref 0 in
  for location = 0 to locations - 1 do
    let keep_last_burning = location mod 2 = 1 in
    if keep_last_burning then incr truth_burning;
    for round = 0 to rounds - 1 do
      let at = (float_of_int round *. 30e-3) +. (float_of_int location *. 3e-3) in
      ignore
        (Sim.schedule sim ~delay:at (fun () ->
             let fire_event = Engine.create_event engine in
             Net.send net ~src:sensor_addr ~dst:monitor_addr
               (Fire { location; event = fire_event });
             let last_round = round = rounds - 1 in
             if not (last_round && keep_last_burning) then
               ignore
                 (Sim.schedule sim ~delay:10e-3 (fun () ->
                      let out_event = Engine.create_event engine in
                      (match
                         Engine.assign_order engine
                           [ Order.must_before fire_event out_event ]
                       with
                       | Ok _ -> ()
                       | Error _ -> assert false);
                      Net.send net ~src:sensor_addr ~dst:monitor_addr
                        (Fire_out { location; event = out_event })))))
    done
  done;
  Sim.run sim;
  (* attribution audit (Kronos mode): every fire-out must be ordered after
     exactly one fire at its location — the isolated-pair structure the
     paper describes *)
  if kronos then
    Hashtbl.iter
      (fun location out_events ->
        let fire_events =
          Option.value ~default:[] (Hashtbl.find_opt fires location)
        in
        List.iter
          (fun o ->
            let matching =
              List.filter
                (fun f ->
                  match Engine.query_order engine [ (f, o) ] with
                  | Ok [ Order.Before ] -> true
                  | Ok _ | Error _ -> false)
                fire_events
            in
            if List.length matching <> 1 then incr misattributions)
          out_events)
      outs;
  (* the Kronos monitor derives its belief from the event graph: a fire
     burns iff no fire-out is ordered after it *)
  let burning_believed =
    if kronos then begin
      let count = ref 0 in
      Hashtbl.iter
        (fun location fire_events ->
          let out_events = Option.value ~default:[] (Hashtbl.find_opt outs location) in
          List.iter
            (fun f ->
              let extinguished =
                List.exists
                  (fun o ->
                    match Engine.query_order engine [ (f, o) ] with
                    | Ok [ Order.Before ] -> true
                    | Ok _ | Error _ -> false)
                  out_events
              in
              if not extinguished then incr count)
            fire_events)
        fires;
      !count
    end
    else Hashtbl.fold (fun _ b acc -> if b then acc + 1 else acc) believed 0
  in
  {
    burning_truth = !truth_burning;
    burning_believed;
    misattributions = !misattributions;
  }

let correct outcome = outcome.burning_truth = outcome.burning_believed
