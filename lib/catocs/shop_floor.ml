open Kronos
module Sim = Kronos_simnet.Sim
module Net = Kronos_simnet.Net

type machine_state = Running | Stopped

type outcome = {
  final_state : machine_state;
  expected_state : machine_state;
  commands_discarded : int;
  reordered_deliveries : int;
}

type command = { index : int; event : Event_id.t; target : machine_state }

let control_addr = 0
let machine_addr = 1

let run ~kronos ~seed ~commands =
  if commands < 1 then invalid_arg "Shop_floor.run: need at least one command";
  let sim = Sim.create ~seed () in
  (* an unordered channel: no FIFO, lots of jitter *)
  let net =
    Net.create ~fifo:false
      ~latency:{ Net.base = 1e-3; jitter = 50e-3; drop = 0.0 }
      sim
  in
  let engine = Engine.create () in
  let state = ref Stopped in
  let last_applied = ref None in
  let last_index = ref (-1) in
  let discarded = ref 0 in
  let reordered = ref 0 in
  let apply cmd =
    if cmd.index < !last_index then incr reordered;
    last_index := max !last_index cmd.index;
    if kronos then begin
      (* apply only commands ordered after the last applied one *)
      let stale =
        match !last_applied with
        | None -> false
        | Some prev -> (
            match Engine.query_order engine [ (prev, cmd.event) ] with
            | Ok [ Order.Before ] -> false
            | Ok _ | Error _ -> true)
      in
      if stale then incr discarded
      else begin
        state := cmd.target;
        last_applied := Some cmd.event
      end
    end
    else state := cmd.target
  in
  Net.register net machine_addr (fun ~src:_ cmd -> apply cmd);
  (* the control unit issues alternating commands, each must-ordered after
     the previous one, spaced closely enough that the channel reorders *)
  let prev_event = ref None in
  for i = 0 to commands - 1 do
    ignore
      (Sim.schedule sim ~delay:(float_of_int i *. 5e-3) (fun () ->
           let event = Engine.create_event engine in
           (match !prev_event with
            | Some prev ->
              (match
                 Engine.assign_order engine [ Order.must_before prev event ]
               with
               | Ok _ -> ()
               | Error _ -> assert false)
            | None -> ());
           prev_event := Some event;
           let target = if i mod 2 = 0 then Running else Stopped in
           Net.send net ~src:control_addr ~dst:machine_addr
             { index = i; event; target }))
  done;
  Sim.run sim;
  let expected_state = if (commands - 1) mod 2 = 0 then Running else Stopped in
  {
    final_state = !state;
    expected_state;
    commands_discarded = !discarded;
    reordered_deliveries = !reordered;
  }

let correct outcome = outcome.final_state = outcome.expected_state
