(** {!Transport} over the deterministic simulated network.

    Sends, timers and randomness all go through the simulator that owns
    the wrapped {!Kronos_simnet.Net}, so a system built on the resulting
    transport stays fully reproducible under a fixed seed. *)

val of_net : 'm Kronos_simnet.Net.t -> 'm Transport.t
(** The adapter draws one RNG stream (split from the simulator's root RNG
    at wrap time) that is shared by everything using this transport
    value. *)
