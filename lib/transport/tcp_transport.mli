(** Real TCP implementation of {!Transport}: a single-threaded runtime on
    an {!Event_loop} with non-blocking sockets and length-prefixed framing
    ({!Kronos_wire.Frame}).

    {b Addressing.}  Transport addresses stay small integers.  Each
    runtime owns the addresses registered on it and a {e peer table}
    mapping remote addresses to [host:port] endpoints ({!add_peer}).  In
    addition, every established connection announces the sender's local
    addresses (a HELLO frame) and every delivered message names its source
    address, so return routes are {e learned}: a client that dials the
    replicas needs no listener of its own for replies to find it.

    {b Connections.}  Outgoing connections are pooled per endpoint.
    Partial reads are reassembled per connection; short writes keep their
    offset and resume on writability.  A failed or broken peer connection
    reconnects with exponential backoff (a frame half-written when the
    connection died is discarded — the receiver lost its reassembly state
    with the connection, so no torn frame is ever delivered).  Connections
    idle longer than [idle_timeout] are closed and re-dialed on demand.

    {b Backpressure.}  Each connection's write queue is capped at
    [max_buffer] bytes; sends beyond the cap are counted in {!dropped}
    and discarded, which the chain protocol absorbs by retransmission.

    Delivery is at-most-once and unordered across reconnects — exactly
    the contract the replication layer assumes of {!Transport.send}. *)

type config = {
  max_frame : int;  (** reject inbound frames larger than this *)
  max_buffer : int;  (** per-connection write-queue cap, bytes *)
  backoff_min : float;  (** first reconnect delay *)
  backoff_max : float;  (** reconnect delay ceiling *)
  idle_timeout : float;  (** close idle connections after this; 0 = never *)
}

val default_config : config
(** 16 MiB frames, 16 MiB buffers, 50 ms — 5 s backoff, 60 s idle. *)

type 'm t

val create :
  loop:Event_loop.t ->
  encode:('m -> string) ->
  decode:(string -> 'm) ->
  ?config:config ->
  unit ->
  'm t
(** [decode] must raise {!Kronos_wire.Codec.Decode_error} on malformed
    bytes; a connection delivering undecodable frames is dropped. *)

val listen : 'm t -> ?host:string -> port:int -> unit -> int
(** Bind and listen ([SO_REUSEADDR]); [port = 0] picks an ephemeral port.
    Returns the actual port. *)

val add_peer : 'm t -> Transport.addr -> host:string -> port:int -> unit
(** Route messages for [addr] to the runtime listening at [host:port].
    Several addresses may share one endpoint (a daemon hosting a replica
    and the coordinator). *)

val connect_peers : 'm t -> unit
(** Eagerly dial every peer endpoint, announcing the local addresses.
    Clients call this so that replicas they never dialed (e.g. the chain
    tail, which sends the replies) learn a return route. *)

val transport : 'm t -> 'm Transport.t
(** The abstraction the replication/service layers consume.  [sim] is
    [None]; timers run on the event loop; [send] to a locally registered
    address short-circuits through the loop (never re-entrantly). *)

val shutdown : 'm t -> unit
(** Graceful: stop listening, try briefly to flush pending write queues,
    close every connection, cancel housekeeping timers.  Idempotent. *)

(** {1 Introspection} *)

val sent : 'm t -> int
val delivered : 'm t -> int
val dropped : 'm t -> int
val connections : 'm t -> int
val reconnects : 'm t -> int
