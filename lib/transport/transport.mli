(** Transport abstraction: the message-passing surface the replication and
    service layers are written against.

    A transport delivers typed messages between integer addresses and
    provides the wall (or virtual) clock and timers of the world it lives
    in.  Two implementations exist:

    - {!Sim_transport} adapts the deterministic simulated network
      ({!Kronos_simnet.Net}), preserving reproducible simulation;
    - {!Tcp_transport} is a real single-threaded TCP runtime (non-blocking
      sockets on a {!Event_loop}, length-prefixed framing, reconnection).

    The same replica, coordinator, proxy and client code runs unchanged
    over either.  Sends are asynchronous and unreliable by contract — the
    chain protocol already tolerates loss via retransmission and
    deduplication — so the TCP implementation is free to drop messages
    when a peer is unreachable or a connection buffer is full. *)

type addr = int
(** Endpoint identity.  Address-to-socket mapping is a property of the
    concrete transport (the simulated network needs none; TCP keeps a peer
    table and learns return routes from inbound connections). *)

type timer
(** Cancellable handle for {!schedule} and {!every}. *)

type 'm t = {
  send : src:addr -> dst:addr -> 'm -> unit;
  register : addr -> (src:addr -> 'm -> unit) -> unit;
  unregister : addr -> unit;
  is_registered : addr -> bool;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> timer;
  every : period:float -> (unit -> unit) -> timer;
  random_int : int -> int;
  sim : Kronos_simnet.Sim.t option;
      (** The simulator when this transport is simulated; [None] over real
          sockets.  Only simulation-specific features (service-time
          modelling) need it. *)
}

(** {1 Call-through helpers} *)

val send : 'm t -> src:addr -> dst:addr -> 'm -> unit
val register : 'm t -> addr -> (src:addr -> 'm -> unit) -> unit
val unregister : 'm t -> addr -> unit
val is_registered : 'm t -> addr -> bool
val now : 'm t -> float
val schedule : 'm t -> delay:float -> (unit -> unit) -> timer
val every : 'm t -> period:float -> (unit -> unit) -> timer
val random_int : 'm t -> int -> int
val sim : 'm t -> Kronos_simnet.Sim.t option

val cancel : timer -> unit
(** Cancelling twice is harmless. *)

val make_timer : (unit -> unit) -> timer
(** Wrap a cancellation action (for transport implementors). *)
