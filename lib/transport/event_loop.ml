module Heap = Kronos_simnet.Heap

type timer = { mutable cancelled : bool; mutable action : unit -> unit }

type watcher = {
  mutable on_read : (unit -> unit) option;
  mutable on_write : (unit -> unit) option;
}

type t = {
  heap : timer Heap.t;
  fds : (Unix.file_descr, watcher) Hashtbl.t;
  mutable seq : int;
  mutable live : int;
  (* Self-pipe (DESIGN.md §14): [notify] — callable from any domain —
     writes one byte to [wake_w], which makes the select (or the idle
     sleep, since [wake_r] is always in the read set) return promptly;
     the loop thread drains the pipe and runs the [on_notify] callbacks.
     [notified] dedupes writes so a burst of completions costs one byte. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  notified : bool Atomic.t;
  wake_buf : Bytes.t;
  mutable notify_callbacks : (unit -> unit) list;
  mutable ticks : int;
}

let drain_wake t () =
  (try
     while Unix.read t.wake_r t.wake_buf 0 (Bytes.length t.wake_buf) > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error (Unix.EINTR, _, _) -> ());
  (* Clear the latch only once the pipe is empty.  Clearing it before the
     drain lost wakeups: a notify racing the reads above would set the
     flag and write a byte that the same drain then consumed, leaving the
     latch set over an empty pipe — after which every later notify skipped
     its write and the loop slept through completions until stop.  With
     this order a notify that lands after the clear writes a fresh byte
     (waking the next round), and one that lands before it had its
     completion enqueued before calling notify, so the callbacks below
     pick it up. *)
  Atomic.set t.notified false;
  List.iter (fun f -> f ()) t.notify_callbacks

let create () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    { heap = Heap.create (); fds = Hashtbl.create 16; seq = 0; live = 0;
      wake_r; wake_w; notified = Atomic.make false;
      wake_buf = Bytes.create 64; notify_callbacks = []; ticks = 0 }
  in
  t

let rec write_wake t =
  try ignore (Unix.write t.wake_w t.wake_buf 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    (* pipe full: the loop is already guaranteed to wake *)
    ()
  | Unix.Unix_error (Unix.EINTR, _, _) ->
    (* the latch is already set, so no other notify will retry for us:
       the byte must land or the wakeup is lost *)
    write_wake t

let notify t =
  if not (Atomic.exchange t.notified true) then write_wake t

let on_notify t f = t.notify_callbacks <- t.notify_callbacks @ [ f ]

let now _t = Unix.gettimeofday ()

let pending_timers t = t.live

let schedule t ~delay action =
  let timer = { cancelled = false; action } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.heap ~time:(now t +. max 0.0 delay) ~seq:t.seq timer;
  timer

let cancel timer =
  if not timer.cancelled then begin
    timer.cancelled <- true;
    timer.action <- ignore
  end

let every t ~period action =
  if period <= 0.0 then invalid_arg "Event_loop.every: period must be positive";
  let handle = { cancelled = false; action = ignore } in
  let rec tick () =
    if not handle.cancelled then begin
      action ();
      if not handle.cancelled then ignore (schedule t ~delay:period tick)
    end
  in
  ignore (schedule t ~delay:period tick);
  handle

let watcher t fd =
  match Hashtbl.find_opt t.fds fd with
  | Some w -> w
  | None ->
    let w = { on_read = None; on_write = None } in
    Hashtbl.replace t.fds fd w;
    w

let watch_read t fd f = (watcher t fd).on_read <- Some f
let watch_write t fd f = (watcher t fd).on_write <- Some f

let drop_if_empty t fd w =
  if w.on_read = None && w.on_write = None then Hashtbl.remove t.fds fd

let unwatch_read t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> ()
  | Some w ->
    w.on_read <- None;
    drop_if_empty t fd w

let unwatch_write t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> ()
  | Some w ->
    w.on_write <- None;
    drop_if_empty t fd w

let forget t fd = Hashtbl.remove t.fds fd

(* Run every timer due as of one clock sample.  A due timer that schedules
   another immediately-due timer yields to the next select round rather
   than starving it. *)
let run_due_timers t =
  let cutoff = now t in
  let rec loop () =
    match Heap.peek_time t.heap with
    | Some time when time <= cutoff -> (
        match Heap.pop t.heap with
        | Some (_, _, timer) ->
          t.live <- t.live - 1;
          if not timer.cancelled then timer.action ();
          loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ()

let ticks t = t.ticks

let run_once t ?(max_wait = 0.05) () =
  t.ticks <- t.ticks + 1;
  let timeout =
    match Heap.peek_time t.heap with
    | Some time -> max 0.0 (min max_wait (time -. now t))
    | None -> max 0.0 max_wait
  in
  (* the self-pipe read end is always selected, so the loop never sleeps
     blind: a cross-domain [notify] interrupts both a busy select and the
     idle wait (before the pipe existed, an fd-less loop slept the whole
     timer interval regardless of completions) *)
  let reads =
    Hashtbl.fold
      (fun fd w acc -> if w.on_read <> None then fd :: acc else acc)
      t.fds [ t.wake_r ]
  in
  let writes =
    Hashtbl.fold (fun fd w acc -> if w.on_write <> None then fd :: acc else acc) t.fds []
  in
  let ready_r, ready_w =
    match Unix.select reads writes [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
  in
  (* A callback may unwatch or forget descriptors later in the ready list;
     re-check the table before each dispatch. *)
  List.iter
    (fun fd ->
      if fd = t.wake_r then drain_wake t ()
      else
        match Hashtbl.find_opt t.fds fd with
        | Some { on_read = Some f; _ } -> f ()
        | Some _ | None -> ())
    ready_r;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.fds fd with
      | Some { on_write = Some f; _ } -> f ()
      | Some _ | None -> ())
    ready_w;
  run_due_timers t

let run_for t duration =
  let deadline = now t +. duration in
  while now t < deadline do
    run_once t ~max_wait:(min 0.05 (deadline -. now t)) ()
  done

let run_until t ?deadline pred =
  let expired () = match deadline with Some d -> now t >= d | None -> false in
  while (not (pred ())) && not (expired ()) do
    run_once t ()
  done;
  pred ()

let run_forever t ~stop =
  while not (stop ()) do
    run_once t ()
  done
