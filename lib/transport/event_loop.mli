(** Single-threaded real-time reactor: file-descriptor readiness callbacks
    plus a timer heap, driven by [Unix.select].

    This is the wall-clock twin of {!Kronos_simnet.Sim}: the same
    schedule/every/cancel surface, but time is [Unix.gettimeofday] and
    "runnable" means a socket is ready.  One loop can host any number of
    {!Tcp_transport} values (kronosd runs a replica and optionally the
    coordinator on one loop; the loopback tests run a whole cluster plus
    clients on one). *)

type t

val create : unit -> t

val now : t -> float
(** Wall-clock seconds ([Unix.gettimeofday]). *)

(** {1 Timers} *)

type timer

val schedule : t -> delay:float -> (unit -> unit) -> timer
val every : t -> period:float -> (unit -> unit) -> timer

val cancel : timer -> unit
(** Idempotent; cancelling from inside the timer's own action is allowed
    (and for [every], stops the recurrence). *)

val pending_timers : t -> int

(** {1 File descriptors}

    At most one read and one write callback per descriptor; re-watching
    replaces the callback.  A descriptor must be {!forget}ed before it is
    closed, or the next [select] will fail with [EBADF]. *)

val watch_read : t -> Unix.file_descr -> (unit -> unit) -> unit
val watch_write : t -> Unix.file_descr -> (unit -> unit) -> unit
val unwatch_read : t -> Unix.file_descr -> unit
val unwatch_write : t -> Unix.file_descr -> unit

val forget : t -> Unix.file_descr -> unit
(** Drop both callbacks for the descriptor. *)

(** {1 Cross-domain wakeup}

    The loop owns a self-pipe whose read end is always in the select set,
    so it never waits blind — this also fixes the historical idle path
    where an fd-less loop slept the full timer interval no matter what. *)

val notify : t -> unit
(** Wake the loop promptly.  Safe to call from any domain (the only
    operation on this type that is); coalesces — any number of calls
    between two loop iterations cost one pipe byte and one wakeup. *)

val on_notify : t -> (unit -> unit) -> unit
(** Register a callback run (on the loop's own thread) every time the
    loop wakes from a {!notify}.  Callbacks run in registration order and
    must themselves be cheap; typical use is draining a completion queue
    filled by other domains. *)

(** {1 Driving} *)

val run_once : t -> ?max_wait:float -> unit -> unit
(** One iteration: wait (at most [max_wait], default 0.05 s, clamped down
    to the next timer deadline) for readiness, dispatch ready callbacks,
    then run due timers. *)

val ticks : t -> int
(** Number of {!run_once} iterations started so far (0 before the first).
    Loop-thread only.  Callbacks running inside iteration [n] observe
    [ticks t = n]; per-tick amortizations (e.g. the query pool's
    publish-at-most-once-per-iteration) key off this. *)

val run_for : t -> float -> unit
(** Iterate for a wall-clock duration. *)

val run_until : t -> ?deadline:float -> (unit -> bool) -> bool
(** Iterate until the predicate holds; [false] on deadline (absolute
    wall-clock time) instead.  Without a deadline, runs until the
    predicate holds. *)

val run_forever : t -> stop:(unit -> bool) -> unit
(** Iterate until [stop ()] — the daemon main loop. *)
