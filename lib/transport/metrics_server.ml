type t = {
  loop : Event_loop.t;
  fd : Unix.file_descr;
  port : int;
  mutable closed : bool;
}

(* Stream one rendered page to an accepted client, then close.  The page
   is snapshotted at accept time, so a slow reader sees a consistent
   snapshot while the registry keeps moving. *)
let serve t fd =
  let page = Kronos_metrics.render () in
  let off = ref 0 in
  let finish () =
    Event_loop.forget t.loop fd;
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let rec write_some () =
    if !off >= String.length page then finish ()
    else
      match Unix.write_substring fd page !off (String.length page - !off) with
      | n ->
        off := !off + n;
        write_some ()
      | exception
          Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        ->
        Event_loop.watch_write t.loop fd (fun () ->
            Event_loop.unwatch_write t.loop fd;
            write_some ())
      | exception Unix.Unix_error _ -> finish ()
  in
  write_some ()

let on_acceptable t =
  let rec accept_loop () =
    match Unix.accept t.fd with
    | fd, _peer ->
      Unix.set_nonblock fd;
      serve t fd;
      accept_loop ()
    | exception
        Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> ()
  in
  accept_loop ()

let start ~loop ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 16;
  let port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t = { loop; fd; port; closed = false } in
  Event_loop.watch_read loop fd (fun () -> on_acceptable t);
  t

let port t = t.port

let stop t =
  if not t.closed then begin
    t.closed <- true;
    Event_loop.forget t.loop t.fd;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
