open Kronos_simnet

let of_net net =
  let sim = Net.sim net in
  let rng = Rng.split (Sim.rng sim) in
  {
    Transport.send = (fun ~src ~dst m -> Net.send net ~src ~dst m);
    register = (fun a h -> Net.register net a h);
    unregister = (fun a -> Net.unregister net a);
    is_registered = (fun a -> Net.is_registered net a);
    now = (fun () -> Sim.now sim);
    schedule =
      (fun ~delay f ->
        let timer = Sim.schedule sim ~delay f in
        Transport.make_timer (fun () -> Sim.cancel timer));
    every =
      (fun ~period f ->
        let timer = Sim.every sim ~period f in
        Transport.make_timer (fun () -> Sim.cancel timer));
    random_int = (fun n -> Rng.int rng n);
    sim = Some sim;
  }
