type addr = int

type timer = { cancel : unit -> unit }

type 'm t = {
  send : src:addr -> dst:addr -> 'm -> unit;
  register : addr -> (src:addr -> 'm -> unit) -> unit;
  unregister : addr -> unit;
  is_registered : addr -> bool;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> timer;
  every : period:float -> (unit -> unit) -> timer;
  random_int : int -> int;
  sim : Kronos_simnet.Sim.t option;
}

let send t ~src ~dst m = t.send ~src ~dst m
let register t a h = t.register a h
let unregister t a = t.unregister a
let is_registered t a = t.is_registered a
let now t = t.now ()
let schedule t ~delay f = t.schedule ~delay f
let every t ~period f = t.every ~period f
let random_int t n = t.random_int n
let sim t = t.sim

let cancel timer = timer.cancel ()
let make_timer cancel = { cancel }
