(** One-shot TCP exposition of the process-wide metrics registry.

    Each accepted connection receives the current
    [Kronos_metrics.render ()] text page and is closed — the protocol a
    plain [nc host port] (or any Prometheus-style scraper pointed at a raw
    TCP endpoint) can consume.  Serving runs entirely on the shared
    {!Event_loop}, so a slow scraper never blocks the daemon. *)

type t

val start : loop:Event_loop.t -> ?host:string -> port:int -> unit -> t
(** Bind and listen on [host:port] (default host 127.0.0.1; port 0 picks
    an ephemeral port, see {!port}).
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The actually bound port. *)

val stop : t -> unit
(** Close the listener.  Idempotent; in-flight responses finish. *)
