open Kronos_wire

let log_src = Logs.Src.create "kronos.tcp" ~doc:"TCP transport runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

module M = struct
  let scope = Kronos_metrics.scope "transport"
  let bytes_in = Kronos_metrics.counter scope "bytes_in_total"
  let bytes_out = Kronos_metrics.counter scope "bytes_out_total"
  let frames = Kronos_metrics.counter scope "frames_decoded_total"
  let sent = Kronos_metrics.counter scope "messages_sent_total"
  let delivered = Kronos_metrics.counter scope "messages_delivered_total"
  let dropped = Kronos_metrics.counter scope "messages_dropped_total"
  let reconnects = Kronos_metrics.counter scope "reconnect_attempts_total"
  let connections = Kronos_metrics.gauge scope "connections_up"
  let queue_bytes = Kronos_metrics.gauge scope "write_queue_bytes"
end

type config = {
  max_frame : int;
  max_buffer : int;
  backoff_min : float;
  backoff_max : float;
  idle_timeout : float;
}

let default_config =
  {
    max_frame = Frame.max_frame;
    max_buffer = 16 * 1024 * 1024;
    backoff_min = 0.05;
    backoff_max = 5.0;
    idle_timeout = 60.0;
  }

type endpoint = string * int

(* One TCP connection, inbound or outbound.  [endpoint] is [Some] for
   outbound (dialed) connections, which reconnect on failure; inbound
   connections just die. *)
type conn = {
  mutable fd : Unix.file_descr option;
  ep : endpoint option;
  mutable state : [ `Connecting | `Up | `Down ];
  mutable out : string Queue.t;  (* whole frames, head partially written *)
  mutable out_bytes : int;
  mutable head_off : int;  (* bytes of the head frame already written *)
  mutable reasm : Frame.Reassembler.t;
  mutable backoff : float;
  mutable last_activity : float;
  mutable retry : Event_loop.timer option;
}

type 'm t = {
  loop : Event_loop.t;
  encode : 'm -> string;
  decode : string -> 'm;
  cfg : config;
  handlers : (int, src:int -> 'm -> unit) Hashtbl.t;
  peers : (int, endpoint) Hashtbl.t;
  conns : (endpoint, conn) Hashtbl.t;  (* outbound pool *)
  mutable inbound : conn list;
  learned : (int, conn) Hashtbl.t;  (* return routes *)
  mutable listeners : Unix.file_descr list;
  rand : Random.State.t;
  mutable housekeeper : Event_loop.timer option;
  mutable closed : bool;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable reconnects : int;
}

let sent t = t.sent
let delivered t = t.delivered
let dropped t = t.dropped
let reconnects t = t.reconnects

let connections t =
  Hashtbl.fold (fun _ c n -> if c.state = `Up then n + 1 else n) t.conns 0
  + List.length (List.filter (fun c -> c.state = `Up) t.inbound)

(* The gauges mirror sums over live connections; recomputing on each state
   change keeps them correct through torn frames, shutdowns and redials at
   a cost of O(#connections), which is the (small) mesh size. *)
let update_gauges t =
  if Kronos_metrics.enabled () then begin
    Kronos_metrics.Gauge.set M.connections (connections t);
    let queued =
      Hashtbl.fold (fun _ c n -> n + c.out_bytes) t.conns 0
      + List.fold_left (fun n c -> n + c.out_bytes) 0 t.inbound
    in
    Kronos_metrics.Gauge.set M.queue_bytes queued
  end

(* {1 Envelope framing}

   Every frame payload is either a HELLO announcing the sender's local
   addresses, or a routed message [src -> dst]. *)

let hello_tag = 0
let msg_tag = 1

let encode_hello addrs =
  let b = Codec.encoder () in
  Codec.put_u8 b hello_tag;
  Codec.put_list b (fun b a -> Codec.put_i64 b (Int64.of_int a)) addrs;
  Frame.encode (Codec.to_string b)

let encode_msg ~src ~dst body =
  let b = Codec.encoder () in
  Codec.put_u8 b msg_tag;
  Codec.put_i64 b (Int64.of_int src);
  Codec.put_i64 b (Int64.of_int dst);
  Codec.put_string b body;
  Frame.encode (Codec.to_string b)

type envelope =
  | Hello of int list
  | Msg of { src : int; dst : int; body : string }

let decode_envelope payload =
  let d = Codec.decoder payload in
  let env =
    match Codec.get_u8 d with
    | tag when tag = hello_tag ->
      Hello (Codec.get_list d (fun d -> Int64.to_int (Codec.get_i64 d)))
    | tag when tag = msg_tag ->
      let src = Int64.to_int (Codec.get_i64 d) in
      let dst = Int64.to_int (Codec.get_i64 d) in
      let body = Codec.get_string d in
      Msg { src; dst; body }
    | tag -> raise (Codec.Decode_error (Printf.sprintf "bad envelope tag %d" tag))
  in
  Codec.expect_end d;
  env

(* {1 Connection plumbing} *)

let sockaddr_of (host, port) = Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let close_fd t conn =
  match conn.fd with
  | None -> ()
  | Some fd ->
    Event_loop.forget t.loop fd;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    conn.fd <- None

let cancel_retry conn =
  match conn.retry with
  | Some timer ->
    Event_loop.cancel timer;
    conn.retry <- None
  | None -> ()

let hello_bytes t = encode_hello (Hashtbl.fold (fun a _ acc -> a :: acc) t.handlers [])

let rec flush t conn =
  match (conn.fd, Queue.peek_opt conn.out) with
  | None, _ | _, None -> (
      match conn.fd with
      | Some fd -> Event_loop.unwatch_write t.loop fd
      | None -> ())
  | Some fd, Some frame -> (
      let len = String.length frame - conn.head_off in
      match Unix.write_substring fd frame conn.head_off len with
      | n ->
        conn.last_activity <- Event_loop.now t.loop;
        Kronos_metrics.Counter.add M.bytes_out n;
        if n = len then begin
          ignore (Queue.pop conn.out);
          conn.out_bytes <- conn.out_bytes - String.length frame;
          conn.head_off <- 0;
          update_gauges t;
          flush t conn
        end
        else
          (* short write: keep the offset, resume on next writability *)
          conn.head_off <- conn.head_off + n
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (err, _, _) ->
        Log.debug (fun m -> m "write failed: %s" (Unix.error_message err));
        conn_down t conn)

(* Tear a connection down.  Outbound (dialed) connections schedule a
   reconnect with exponential backoff when [redial]; inbound ones are
   dropped entirely.  A half-written head frame is discarded: its prefix
   died with the receiver's per-connection reassembler. *)
and conn_down ?(redial = true) t conn =
  close_fd t conn;
  conn.state <- `Down;
  conn.reasm <- Frame.Reassembler.create ~max_frame:t.cfg.max_frame ();
  if conn.head_off > 0 then begin
    (match Queue.pop conn.out with
     | torn -> conn.out_bytes <- conn.out_bytes - String.length torn
     | exception Queue.Empty -> ());
    conn.head_off <- 0
  end;
  (match conn.ep with
  | Some _ when redial && not t.closed ->
    if conn.retry = None then begin
      let delay = conn.backoff in
      conn.backoff <- min t.cfg.backoff_max (conn.backoff *. 2.0);
      conn.retry <-
        Some
          (Event_loop.schedule t.loop ~delay (fun () ->
               conn.retry <- None;
               if conn.state = `Down && not t.closed then start_connect t conn))
    end
  | Some _ | None ->
    t.inbound <- List.filter (fun c -> c != conn) t.inbound);
  update_gauges t

and on_readable t conn =
  match conn.fd with
  | None -> ()
  | Some fd -> (
      let buf = Bytes.create 65536 in
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> conn_down t conn (* EOF *)
      | n -> (
          conn.last_activity <- Event_loop.now t.loop;
          Kronos_metrics.Counter.add M.bytes_in n;
          match Frame.Reassembler.feed conn.reasm (Bytes.sub_string buf 0 n) with
          | frames ->
            Kronos_metrics.Counter.add M.frames (List.length frames);
            List.iter (handle_frame t conn) frames
          | exception Codec.Decode_error reason ->
            Log.warn (fun m -> m "closing connection on bad frame: %s" reason);
            conn_down ~redial:false t conn)
      | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
        ->
        ()
      | exception Unix.Unix_error (err, _, _) ->
        Log.debug (fun m -> m "read failed: %s" (Unix.error_message err));
        conn_down t conn)

and handle_frame t conn payload =
  match decode_envelope payload with
  | Hello addrs -> List.iter (fun a -> Hashtbl.replace t.learned a conn) addrs
  | Msg { src; dst; body } -> (
      Hashtbl.replace t.learned src conn;
      match Hashtbl.find_opt t.handlers dst with
      | Some handler -> (
          match t.decode body with
          | msg ->
            t.delivered <- t.delivered + 1;
            Kronos_metrics.Counter.incr M.delivered;
            handler ~src msg
          | exception Codec.Decode_error reason ->
            Log.warn (fun m -> m "undecodable message for %d: %s" dst reason);
            t.dropped <- t.dropped + 1;
            Kronos_metrics.Counter.incr M.dropped)
      | None ->
        t.dropped <- t.dropped + 1;
        Kronos_metrics.Counter.incr M.dropped)
  | exception Codec.Decode_error reason ->
    Log.warn (fun m -> m "closing connection on bad envelope: %s" reason);
    conn_down ~redial:false t conn

and on_connected t conn =
  match conn.fd with
  | None -> ()
  | Some fd ->
    conn.state <- `Up;
    conn.backoff <- t.cfg.backoff_min;
    conn.last_activity <- Event_loop.now t.loop;
    (* HELLO must precede any queued traffic so the receiver can route
       replies before it processes the first request *)
    let hello = hello_bytes t in
    let q = Queue.create () in
    Queue.push hello q;
    conn.out_bytes <- conn.out_bytes + String.length hello;
    Queue.transfer conn.out q;
    conn.out <- q;
    Event_loop.watch_read t.loop fd (fun () -> on_readable t conn);
    Event_loop.watch_write t.loop fd (fun () -> flush t conn);
    update_gauges t;
    flush t conn

and start_connect t conn =
  match conn.ep with
  | None -> ()
  | Some ep -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      conn.fd <- Some fd;
      conn.state <- `Connecting;
      match Unix.connect fd (sockaddr_of ep) with
      | () -> on_connected t conn
      | exception Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) ->
        Event_loop.watch_write t.loop fd (fun () ->
            Event_loop.unwatch_write t.loop fd;
            match Unix.getsockopt_error fd with
            | None ->
              t.reconnects <- t.reconnects + 1;
              Kronos_metrics.Counter.incr M.reconnects;
              on_connected t conn
            | Some err ->
              Log.debug (fun m ->
                  m "connect to %s:%d failed: %s" (fst ep) (snd ep)
                    (Unix.error_message err));
              conn_down t conn)
      | exception Unix.Unix_error (err, _, _) ->
        Log.debug (fun m ->
            m "connect to %s:%d failed: %s" (fst ep) (snd ep)
              (Unix.error_message err));
        conn_down t conn)

let conn_to t ep =
  match Hashtbl.find_opt t.conns ep with
  | Some conn -> conn
  | None ->
    let conn =
      {
        fd = None;
        ep = Some ep;
        state = `Down;
        out = Queue.create ();
        out_bytes = 0;
        head_off = 0;
        reasm = Frame.Reassembler.create ~max_frame:t.cfg.max_frame ();
        backoff = t.cfg.backoff_min;
        last_activity = Event_loop.now t.loop;
        retry = None;
      }
    in
    Hashtbl.replace t.conns ep conn;
    start_connect t conn;
    conn

let enqueue t conn frame =
  if conn.out_bytes + String.length frame > t.cfg.max_buffer then begin
    (* backpressure: shed load, retransmission recovers *)
    t.dropped <- t.dropped + 1;
    Kronos_metrics.Counter.incr M.dropped
  end
  else begin
    Queue.push frame conn.out;
    conn.out_bytes <- conn.out_bytes + String.length frame;
    update_gauges t;
    match (conn.state, conn.fd) with
    | `Up, Some fd -> Event_loop.watch_write t.loop fd (fun () -> flush t conn)
    | `Connecting, _ -> ()
    | `Down, _ -> if conn.retry = None then start_connect t conn
    | `Up, None -> ()
  end

let route t dst =
  match Hashtbl.find_opt t.peers dst with
  | Some ep -> Some (conn_to t ep)
  | None -> (
      match Hashtbl.find_opt t.learned dst with
      | Some conn when conn.state <> `Down || conn.ep <> None -> Some conn
      | Some _ | None -> None)

let deliver_local t ~src ~dst msg =
  match Hashtbl.find_opt t.handlers dst with
  | Some handler ->
    t.delivered <- t.delivered + 1;
    Kronos_metrics.Counter.incr M.delivered;
    handler ~src msg
  | None ->
    t.dropped <- t.dropped + 1;
    Kronos_metrics.Counter.incr M.dropped

let send t ~src ~dst msg =
  t.sent <- t.sent + 1;
  Kronos_metrics.Counter.incr M.sent;
  if t.closed then begin
    t.dropped <- t.dropped + 1;
    Kronos_metrics.Counter.incr M.dropped
  end
  else if Hashtbl.mem t.handlers dst then
    (* local short-circuit, deferred through the loop so a handler never
       runs inside the sender's stack frame *)
    ignore
      (Event_loop.schedule t.loop ~delay:0.0 (fun () -> deliver_local t ~src ~dst msg))
  else
    match route t dst with
    | Some conn -> enqueue t conn (encode_msg ~src ~dst (t.encode msg))
    | None ->
      t.dropped <- t.dropped + 1;
      Kronos_metrics.Counter.incr M.dropped

(* {1 Listening} *)

let on_acceptable t listener =
  let rec accept_loop () =
    match Unix.accept listener with
    | fd, _peer ->
      Unix.set_nonblock fd;
      (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
      let conn =
        {
          fd = Some fd;
          ep = None;
          state = `Up;
          out = Queue.create ();
          out_bytes = 0;
          head_off = 0;
          reasm = Frame.Reassembler.create ~max_frame:t.cfg.max_frame ();
          backoff = t.cfg.backoff_min;
          last_activity = Event_loop.now t.loop;
          retry = None;
        }
      in
      t.inbound <- conn :: t.inbound;
      (* announce our addresses on the accepted side too, so both ends
         learn return routes regardless of who dialed *)
      enqueue t conn (hello_bytes t);
      Event_loop.watch_read t.loop fd (fun () -> on_readable t conn);
      accept_loop ()
    | exception Unix.Unix_error ((Unix.EWOULDBLOCK | Unix.EAGAIN | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error (err, _, _) ->
      Log.warn (fun m -> m "accept failed: %s" (Unix.error_message err))
  in
  accept_loop ()

let listen t ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.set_nonblock fd;
  Unix.bind fd (sockaddr_of (host, port));
  Unix.listen fd 128;
  t.listeners <- fd :: t.listeners;
  Event_loop.watch_read t.loop fd (fun () -> on_acceptable t fd);
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, actual) -> actual
  | Unix.ADDR_UNIX _ -> port

let add_peer t addr ~host ~port = Hashtbl.replace t.peers addr (host, port)

let connect_peers t =
  Hashtbl.iter (fun _ ep -> ignore (conn_to t ep)) t.peers

(* {1 Housekeeping: idle connections} *)

let sweep_idle t =
  if t.cfg.idle_timeout > 0.0 then begin
    let cutoff = Event_loop.now t.loop -. t.cfg.idle_timeout in
    let idle conn =
      conn.state = `Up && Queue.is_empty conn.out && conn.last_activity < cutoff
    in
    Hashtbl.iter
      (fun _ conn -> if idle conn then conn_down ~redial:false t conn)
      t.conns;
    List.iter (fun conn -> if idle conn then conn_down ~redial:false t conn) t.inbound
  end

(* {1 Lifecycle} *)

let create ~loop ~encode ~decode ?(config = default_config) () =
  (* a peer resetting a connection mid-write must not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let t =
    {
      loop;
      encode;
      decode;
      cfg = config;
      handlers = Hashtbl.create 16;
      peers = Hashtbl.create 16;
      conns = Hashtbl.create 16;
      inbound = [];
      learned = Hashtbl.create 16;
      listeners = [];
      rand = Random.State.make [| 0x6b726f6e; 0x6f737463 |];
      housekeeper = None;
      closed = false;
      sent = 0;
      delivered = 0;
      dropped = 0;
      reconnects = 0;
    }
  in
  if config.idle_timeout > 0.0 then
    t.housekeeper <-
      Some
        (Event_loop.every loop ~period:(config.idle_timeout /. 2.0) (fun () ->
             sweep_idle t));
  t

(* Give each connection a short synchronous chance to drain its write
   queue before closing: graceful shutdown flushes acknowledged work
   without blocking the daemon for more than [grace] seconds in total. *)
let drain ~grace t conn =
  match conn.fd with
  | None -> ()
  | Some fd ->
    let deadline = Unix.gettimeofday () +. grace in
    (try
       while
         (not (Queue.is_empty conn.out)) && Unix.gettimeofday () < deadline
       do
         match Unix.select [] [ fd ] [] (deadline -. Unix.gettimeofday ()) with
         | _, [ _ ], _ -> flush t conn
         | _ -> raise Exit
       done
     with _ -> ())

let shutdown t =
  if not t.closed then begin
    t.closed <- true;
    List.iter
      (fun fd ->
        Event_loop.forget t.loop fd;
        try Unix.close fd with Unix.Unix_error _ -> ())
      t.listeners;
    t.listeners <- [];
    (match t.housekeeper with
     | Some timer ->
       Event_loop.cancel timer;
       t.housekeeper <- None
     | None -> ());
    let close_conn conn =
      cancel_retry conn;
      if conn.state = `Up then drain ~grace:0.2 t conn;
      close_fd t conn;
      conn.state <- `Down
    in
    Hashtbl.iter (fun _ conn -> close_conn conn) t.conns;
    List.iter close_conn t.inbound;
    Hashtbl.reset t.conns;
    Hashtbl.reset t.learned;
    t.inbound <- [];
    update_gauges t
  end

let transport t =
  {
    Transport.send = (fun ~src ~dst m -> send t ~src ~dst m);
    register = (fun a h -> Hashtbl.replace t.handlers a h);
    unregister = (fun a -> Hashtbl.remove t.handlers a);
    is_registered = (fun a -> Hashtbl.mem t.handlers a);
    now = (fun () -> Event_loop.now t.loop);
    schedule =
      (fun ~delay f ->
        let timer = Event_loop.schedule t.loop ~delay f in
        Transport.make_timer (fun () -> Event_loop.cancel timer));
    every =
      (fun ~period f ->
        let timer = Event_loop.every t.loop ~period f in
        Transport.make_timer (fun () -> Event_loop.cancel timer));
    random_int = (fun n -> Random.State.int t.rand n);
    sim = None;
  }
