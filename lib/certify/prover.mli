(** Server-side certificate construction (DESIGN.md §13).

    [prove v ~source ~target] searches the committed graph — through an
    {!Engine.View.t}, so proofs can be generated from a live engine or
    from a frozen view on a reader domain (DESIGN.md §14) — for a
    {e commitment-closed} happens-before path [source ⇝ target] and, when
    one exists, packages it as a {!Certificate.t} that
    {!Verifier.verify_against} accepts for the two events' current
    commitments.

    [None] does {b not} refute the relation.  It is returned when digests
    are disabled, an endpoint is stale, the relation does not hold — or
    when it holds but no path is visible through the hash chains: an edge
    admitted into an upstream event {e after} its downstream link was
    folded is invisible to the downstream commitment, and a path through a
    since-collected event has lost that event's chain.  Callers should
    treat [None] as "true but unproved" whenever the plain query answered
    [Before].

    The search is a backward walk over chain links from [target], pruned to
    the open rank window ([Engine.View.rank]), tracking per event the
    largest usable chain prefix; cost is proportional to the links
    examined, all pre-hashed (no SHA-256 is computed while proving). *)

open Kronos

val prove :
  Engine.View.t ->
  source:Event_id.t ->
  target:Event_id.t ->
  Certificate.t option
