(** Client-side commitment pinning: tamper evidence across answers.

    A single verified certificate authenticates a path relative to the
    endpoint commitments {e the server presented}.  A byzantine replica
    that rewrites history can still answer consistently with its rewritten
    chains — what it cannot do is keep its commitments equal to the ones it
    presented before the rewrite (that would be a hash collision).  An
    audit log therefore {e pins} the first commitment observed for every
    event and flags any later answer that presents a different one. *)

open Kronos

type t

type conflict = {
  event : Event_id.t;
  pinned : string;    (** commitment recorded earlier *)
  observed : string;  (** commitment presented now *)
}

val create : unit -> t

val pin : t -> Event_id.t -> string -> (unit, conflict) result
(** Record the event's commitment; succeed silently when it matches the
    existing pin, report a {!conflict} (and count it) when it does not.
    Conflicting pins are kept as first recorded — the original is the
    evidence. *)

val check : t -> Certificate.t ->
  (unit, [ `Conflict of conflict | `Invalid of string ]) result
(** Pin both endpoint commitments, then {!Verifier.verify}.  [`Conflict]
    is tamper evidence (history rewritten since an earlier answer);
    [`Invalid] means the certificate itself does not check. *)

val pinned : t -> Event_id.t -> string option
val pin_count : t -> int
val conflict_count : t -> int

val pp_conflict : Format.formatter -> conflict -> unit
