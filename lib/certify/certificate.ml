open Kronos

type step = {
  event : Event_id.t;
  pred : Event_id.t;
  pre : string;
  pred_head : string;
  suffix : string list;
}

type t = {
  source : Event_id.t;
  target : Event_id.t;
  source_commit : string;
  target_commit : string;
  steps : step list;
  source_suffix : string list;
}

let path_length c = List.length c.steps

let path_edges c =
  List.map (fun s -> (s.pred, s.event)) c.steps

(* Wire encoding.  The certificate travels inside wire messages but the
   wire library depends on this one, so the encoding is hand-rolled here:
   a 4-byte magic, fixed-width big-endian integers, raw digests.  Digest
   lists carry a u32 count (chains can outgrow u16 in long-lived graphs). *)

let magic = "KCT1"
let dlen = Chain_digest.length
let max_list = 1 lsl 20 (* sanity bound on decoded list lengths *)

let buf_add_i64 b v =
  let s = Bytes.create 8 in
  Bytes.set_int64_be s 0 v;
  Buffer.add_bytes b s

let buf_add_u32 b v =
  let s = Bytes.create 4 in
  Bytes.set_int32_be s 0 (Int32.of_int v);
  Buffer.add_bytes b s

let buf_add_digest b d =
  assert (String.length d = dlen);
  Buffer.add_string b d

let encode c =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  buf_add_i64 b (Event_id.to_int64 c.source);
  buf_add_i64 b (Event_id.to_int64 c.target);
  buf_add_digest b c.source_commit;
  buf_add_digest b c.target_commit;
  buf_add_u32 b (List.length c.steps);
  List.iter
    (fun s ->
      buf_add_i64 b (Event_id.to_int64 s.event);
      buf_add_i64 b (Event_id.to_int64 s.pred);
      buf_add_digest b s.pre;
      buf_add_digest b s.pred_head;
      buf_add_u32 b (List.length s.suffix);
      List.iter (buf_add_digest b) s.suffix)
    c.steps;
  buf_add_u32 b (List.length c.source_suffix);
  List.iter (buf_add_digest b) c.source_suffix;
  Buffer.contents b

exception Bad of string

let decode s =
  let pos = ref 0 in
  let len = String.length s in
  let need n what = if len - !pos < n then raise (Bad ("truncated " ^ what)) in
  let get_i64 what =
    need 8 what;
    let v = String.get_int64_be s !pos in
    pos := !pos + 8;
    v
  in
  let get_u32 what =
    need 4 what;
    let v = Int32.to_int (String.get_int32_be s !pos) land 0xffffffff in
    pos := !pos + 4;
    if v > max_list then raise (Bad ("oversized " ^ what));
    v
  in
  let get_digest what =
    need dlen what;
    let v = String.sub s !pos dlen in
    pos := !pos + dlen;
    v
  in
  let get_id what =
    try Event_id.of_int64 (get_i64 what)
    with Invalid_argument _ -> raise (Bad ("bad identifier in " ^ what))
  in
  let get_digests what =
    let n = get_u32 what in
    List.init n (fun _ -> get_digest what)
  in
  try
    need 4 "magic";
    if String.sub s 0 4 <> magic then raise (Bad "bad magic");
    pos := 4;
    let source = get_id "source" in
    let target = get_id "target" in
    let source_commit = get_digest "source commitment" in
    let target_commit = get_digest "target commitment" in
    let nsteps = get_u32 "step count" in
    let steps =
      List.init nsteps (fun _ ->
          let event = get_id "step event" in
          let pred = get_id "step predecessor" in
          let pre = get_digest "step pre-head" in
          let pred_head = get_digest "step predecessor head" in
          let suffix = get_digests "step suffix" in
          { event; pred; pre; pred_head; suffix })
    in
    let source_suffix = get_digests "source suffix" in
    if !pos <> len then raise (Bad "trailing bytes");
    Ok { source; target; source_commit; target_commit; steps; source_suffix }
  with Bad what -> Error ("Certificate.decode: " ^ what)

let pp ppf c =
  Format.fprintf ppf "@[<v>certificate %a => %a (%d steps)@ source %a@ target %a@]"
    Event_id.pp c.source Event_id.pp c.target (path_length c)
    Chain_digest.pp c.source_commit Chain_digest.pp c.target_commit
