open Kronos

module M = struct
  let scope = Kronos_metrics.scope "certify"
  let conflicts = Kronos_metrics.counter scope "audit_conflicts_total"
end

type conflict = {
  event : Event_id.t;
  pinned : string;
  observed : string;
}

type t = {
  pins : (Event_id.t, string) Hashtbl.t;
  mutable conflicts : int;
}

let create () = { pins = Hashtbl.create 64; conflicts = 0 }

let pinned t e = Hashtbl.find_opt t.pins e

let pin_count t = Hashtbl.length t.pins

let conflict_count t = t.conflicts

let pin t e commit =
  match Hashtbl.find_opt t.pins e with
  | None ->
    Hashtbl.replace t.pins e commit;
    Ok ()
  | Some prev when Chain_digest.equal prev commit -> Ok ()
  | Some prev ->
    t.conflicts <- t.conflicts + 1;
    Kronos_metrics.Counter.incr M.conflicts;
    Error { event = e; pinned = prev; observed = commit }

let check t (c : Certificate.t) =
  (* Pin endpoints first: a replica that rewrote history presents a
     commitment that disagrees with one recorded earlier, and the pin
     conflict is the tamper evidence — even when the certificate itself is
     internally consistent with the rewritten chains. *)
  match pin t c.source c.source_commit with
  | Error conflict -> Error (`Conflict conflict)
  | Ok () ->
    (match pin t c.target c.target_commit with
     | Error conflict -> Error (`Conflict conflict)
     | Ok () ->
       (match Verifier.verify c with
        | Ok () -> Ok ()
        | Error m -> Error (`Invalid m)))

let pp_conflict ppf c =
  Format.fprintf ppf
    "commitment for %a changed: pinned %a, now presented as %a"
    Event_id.pp c.event Chain_digest.pp c.pinned Chain_digest.pp c.observed
