(** Happens-before certificates (DESIGN.md §13).

    A certificate is a self-contained proof that [source ⇝ target] holds in
    the committed event graph, checkable by {!Verifier.verify} against the
    two endpoint commitments alone — no graph access, no trust in the
    server that produced it.

    The proof walks a happens-before path top-down.  Each {!step} opens one
    event's commitment chain: it exhibits the chain head just before the
    path link was folded ([pre]), the path predecessor and its head at link
    time ([pred], [pred_head]), and the partner digests folded after the
    path link ([suffix]) up to the {e anchor} — the value the verifier has
    already authenticated for this event (the target's commitment for the
    first step, the previous step's [pred_head] for the rest).  The final
    anchor is a historic head of [source]; [source_suffix] folds it forward
    to [source]'s commitment, tying the path to the second endpoint. *)

open Kronos

type step = {
  event : Event_id.t;   (** the event whose chain this step opens *)
  pred : Event_id.t;    (** path predecessor linked into [event] *)
  pre : string;         (** [event]'s chain head before the path link *)
  pred_head : string;   (** [pred]'s chain head at link time *)
  suffix : string list; (** partners folded after the path link, up to the
                            anchor *)
}

type t = {
  source : Event_id.t;
  target : Event_id.t;
  source_commit : string;  (** [source]'s commitment the proof ties to *)
  target_commit : string;  (** [target]'s commitment the proof starts from *)
  steps : step list;       (** top-down: the first step opens [target] *)
  source_suffix : string list;
      (** partners folding the last anchor into [source_commit] *)
}

val path_length : t -> int
(** Number of edges on the proven path. *)

val path_edges : t -> (Event_id.t * Event_id.t) list
(** The path's edges as [(pred, event)] pairs, top-down.  Authenticated
    only after {!Verifier.verify} succeeds. *)

val encode : t -> string
(** Self-describing binary encoding (magic, big-endian integers, raw
    digests); stable across versions of the wire protocol. *)

val decode : string -> (t, string) result
(** Inverse of {!encode}; rejects truncated, oversized or trailing input.
    Decoding checks shape only — {!Verifier.verify} checks truth. *)

val pp : Format.formatter -> t -> unit
