open Kronos

module M = struct
  let scope = Kronos_metrics.scope "certify"
  let ok = Kronos_metrics.counter scope "verify_ok_total"
  let rejected = Kronos_metrics.counter scope "verify_rejected_total"
  let folds = Kronos_metrics.counter scope "verify_folds_total"
  let path_len = Kronos_metrics.histogram scope "verified_path_edges"
end

let dlen = Chain_digest.length

let fail fmt = Format.kasprintf (fun m -> Error m) fmt

let well_formed (c : Certificate.t) =
  let bad_digest d = String.length d <> dlen in
  if bad_digest c.source_commit || bad_digest c.target_commit then
    fail "malformed endpoint commitment"
  else if c.steps = [] then fail "empty path"
  else if
    List.exists
      (fun (s : Certificate.step) ->
        bad_digest s.pre || bad_digest s.pred_head
        || List.exists bad_digest s.suffix)
      c.steps
    || List.exists bad_digest c.source_suffix
  then fail "malformed digest"
  else Ok ()

(* Check that the steps form a contiguous top-down path from [target] to
   [source]: the first step opens the target, each later step opens the
   previous step's predecessor, and the last predecessor is the source. *)
let rec check_linkage (c : Certificate.t) expected = function
  | [] ->
    if Event_id.equal expected c.source then Ok ()
    else fail "path does not end at the source"
  | (s : Certificate.step) :: rest ->
    if not (Event_id.equal s.event expected) then
      fail "path step opens the wrong event"
    else check_linkage c s.pred rest

(* Fold one step's chain opening and check it reproduces [anchor]; on
   success the step's [pred_head] becomes the next anchor.  Every value on
   the authenticated side flows from the endpoint commitments through
   SHA-256 folds, so producing a different opening for the same anchor is a
   collision. *)
let check_step (s : Certificate.step) anchor =
  let partner = Chain_digest.link_partner s.pred s.pred_head in
  let folded = Chain_digest.fold (Chain_digest.fold_link s.pre partner) s.suffix in
  Kronos_metrics.Counter.add M.folds (2 + List.length s.suffix);
  if Chain_digest.equal folded anchor then Ok s.pred_head
  else fail "step for %a does not reproduce its anchor" Event_id.pp s.event

let verify (c : Certificate.t) =
  let result =
    match well_formed c with
    | Error _ as e -> e
    | Ok () ->
      if Event_id.equal c.source c.target then fail "source equals target"
      else begin
        match check_linkage c c.target c.steps with
        | Error _ as e -> e
        | Ok () ->
          let rec fold_steps anchor = function
            | [] ->
              (* the last anchor is a historic head of the source; tie it to
                 the source's commitment *)
              let commit = Chain_digest.fold anchor c.source_suffix in
              Kronos_metrics.Counter.add M.folds (List.length c.source_suffix);
              if Chain_digest.equal commit c.source_commit then Ok ()
              else fail "source suffix does not reproduce the commitment"
            | s :: rest ->
              (match check_step s anchor with
               | Ok next -> fold_steps next rest
               | Error _ as e -> e)
          in
          fold_steps c.target_commit c.steps
      end
  in
  (match result with
   | Ok () ->
     Kronos_metrics.Counter.incr M.ok;
     Kronos_metrics.Histogram.observe M.path_len
       (float_of_int (Certificate.path_length c))
   | Error _ -> Kronos_metrics.Counter.incr M.rejected);
  result

let verify_against ~source_commit ~target_commit (c : Certificate.t) =
  if not (Chain_digest.equal c.source_commit source_commit) then begin
    Kronos_metrics.Counter.incr M.rejected;
    fail "source commitment mismatch (expected %a, certificate has %a)"
      Chain_digest.pp source_commit Chain_digest.pp c.source_commit
  end
  else if not (Chain_digest.equal c.target_commit target_commit) then begin
    Kronos_metrics.Counter.incr M.rejected;
    fail "target commitment mismatch (expected %a, certificate has %a)"
      Chain_digest.pp target_commit Chain_digest.pp c.target_commit
  end
  else verify c
