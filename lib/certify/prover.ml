open Kronos

module M = struct
  let scope = Kronos_metrics.scope "certify"
  let proved = Kronos_metrics.counter scope "proofs_generated_total"
  let unproved = Kronos_metrics.counter scope "proofs_unproved_total"
  let visited = Kronos_metrics.counter scope "prover_visited_total"
end

(* Bound-tracking backward search (DESIGN.md §13).

   A path [source -> ... -> target] is provable only when it is
   {e commitment-closed}: walking it top-down, each event's path link must
   have been folded before the chain position the step above anchored —
   the anchor for event [e] is [e]'s head at position [l_pred_pos] of the
   link above, so only [e]'s links at indices [< l_pred_pos] can be opened
   under it.  (Edges admitted into an upstream event after its downstream
   link was folded are invisible to the downstream commitment; such paths
   exist in the graph but not in the hash chains.)

   The search therefore tracks, per reached event, the best (largest)
   {e bound}: the number of its links usable under some anchor chain back
   to the target.  The target starts with its full chain; following link
   [j < bound e] of [e] reaches [l_pred] with bound [l_pred_pos].  A later
   visit that improves an event's bound re-queues it — more links become
   usable.  Reaching the source with any bound completes: the source's
   chain only grows, so folding its suffix from the recorded position
   forward always lands on the current commitment. *)

type reached = {
  mutable bound : int;               (* best usable prefix of the chain *)
  mutable via : Event_id.t;          (* successor that set the bound *)
  mutable via_link : int;            (* link index of [via] followed *)
  mutable processed : int;           (* links already expanded, -1 if never *)
}

let prove g ~source ~target =
  if not (Engine.View.digests_enabled g) then None
  else
    match
      ( Engine.View.rank g source, Engine.View.rank g target,
        Engine.View.chain_length g target )
    with
    | Some rs, Some rt, Some tlen
      when rs < rt && not (Event_id.equal source target) ->
      let best : (Event_id.t, reached) Hashtbl.t = Hashtbl.create 64 in
      let queue = Queue.create () in
      let start =
        { bound = tlen; via = Event_id.none; via_link = -1; processed = -1 }
      in
      Hashtbl.replace best target start;
      Queue.add target queue;
      let found = ref false in
      let visited = ref 0 in
      while (not !found) && not (Queue.is_empty queue) do
        let e = Queue.pop queue in
        let r = Hashtbl.find best e in
        if r.processed < r.bound then begin
          let from = max r.processed 0 in
          r.processed <- r.bound;
          let j = ref from in
          while (not !found) && !j < r.bound do
            (match Engine.View.chain_link g e !j with
             | None -> ()
             | Some l ->
               incr visited;
               let p = l.Graph.l_pred in
               if Event_id.equal p source then begin
                 (* reach the source directly; bound = link position *)
                 let upd =
                   match Hashtbl.find_opt best p with
                   | Some u -> u
                   | None ->
                     let u =
                       { bound = -1; via = Event_id.none; via_link = -1;
                         processed = 0 }
                     in
                     Hashtbl.replace best p u;
                     u
                 in
                 upd.bound <- l.Graph.l_pred_pos;
                 upd.via <- e;
                 upd.via_link <- !j;
                 found := true
               end
               else begin
                 match Engine.View.rank g p with
                 | Some rp
                   when rp > rs && rp < rt
                        && Engine.View.label_reachable g source p
                           <> Some false ->
                   let improve u =
                     u.bound <- l.Graph.l_pred_pos;
                     u.via <- e;
                     u.via_link <- !j;
                     Queue.add p queue
                   in
                   (match Hashtbl.find_opt best p with
                    | None ->
                      let u =
                        { bound = -1; via = Event_id.none; via_link = -1;
                          processed = -1 }
                      in
                      Hashtbl.replace best p u;
                      improve u
                    | Some u when l.Graph.l_pred_pos > u.bound -> improve u
                    | Some _ -> ())
                 | Some _ | None -> ()
                 (* pruned: outside the rank window, refuted by the chain
                    labels (the source provably cannot reach it, so no
                    source path runs through it), or collected — its own
                    chain is gone, so the path cannot continue through it *)
               end);
            incr j
          done
        end
      done;
      Kronos_metrics.Counter.add M.visited !visited;
      if not !found then begin
        Kronos_metrics.Counter.incr M.unproved;
        None
      end
      else begin
        (* Backtrack source -> target: each hop prepends the successor whose
           chain the step opens, so the accumulated list comes out top-down
           (the target's step first). *)
        let rec collect acc e =
          if Event_id.equal e target then acc
          else
            let r = Hashtbl.find best e in
            collect ((r.via, r.via_link) :: acc) r.via
        in
        let opened = collect [] source in
        let partner_suffix e lo hi =
          (* partners of links [lo..hi-1] of [e], in fold order *)
          List.init (hi - lo) (fun k ->
              match Engine.View.chain_link g e (lo + k) with
              | Some l -> l.Graph.l_partner
              | None -> assert false (* indices below the live chain length *))
        in
        let steps =
          List.map
            (fun (e, j) ->
              let l =
                match Engine.View.chain_link g e j with
                | Some l -> l
                | None -> assert false
              in
              let bound = (Hashtbl.find best e).bound in
              let pre =
                match Engine.View.head_at g e j with
                | Some h -> h
                | None -> assert false
              in
              { Certificate.event = e; pred = l.Graph.l_pred; pre;
                pred_head = l.Graph.l_pred_head;
                suffix = partner_suffix e (j + 1) bound })
            opened
        in
        let source_pos = (Hashtbl.find best source).bound in
        let source_len =
          match Engine.View.chain_length g source with
          | Some n -> n
          | None -> assert false
        in
        let commit e =
          match Engine.View.commitment g e with
          | Some c -> c
          | None -> assert false
        in
        Kronos_metrics.Counter.incr M.proved;
        Some
          { Certificate.source; target;
            source_commit = commit source;
            target_commit = commit target;
            steps;
            source_suffix = partner_suffix source source_pos source_len }
      end
    | _ -> None
