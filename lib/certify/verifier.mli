(** Certificate verification with no graph access (DESIGN.md §13).

    The verifier recomputes the commitment-chain folds a certificate
    exhibits and accepts iff every step reproduces its anchor.  Soundness
    rests on the collision resistance of the SHA-256 compression function:
    accepting a certificate for a pair the committed graph never ordered
    requires a collision along one of the folds.  Completeness is
    deliberately partial — the prover answers [None] for true facts whose
    path is not commitment-closed — so rejection here means the {e proof}
    is wrong, never that the relation is. *)

val verify : Certificate.t -> (unit, string) result
(** Structural and cryptographic check of the certificate against the
    endpoint commitments {e it carries}.  Use {!verify_against} when the
    commitments are known from elsewhere (a pinned audit log, a previous
    answer); a bare [verify] trusts the certificate's own endpoints and
    therefore only authenticates the path {e relative to them}. *)

val verify_against :
  source_commit:string -> target_commit:string ->
  Certificate.t -> (unit, string) result
(** {!verify}, but first require the certificate's endpoint commitments to
    equal externally-known values. *)
