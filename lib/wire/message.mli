(** Wire-level messages of the Kronos service: one request constructor per
    API call (Table 1 of the paper) and the matching responses.

    Encodings are self-delimiting, so messages can be concatenated inside a
    framed transport stream (see {!Frame}). *)

open Kronos

type request =
  | Create_event
  | Acquire_ref of Event_id.t
  | Release_ref of Event_id.t
  | Query_order of (Event_id.t * Event_id.t) list
  | Assign_order of Order.spec list
  | Guarded_assign of {
      guards : (Event_id.t * Event_id.t * Order.relation) list;
      specs : Order.spec list;
    }
      (** atomically check that each guard pair currently has the expected
          relation, then apply [specs] as one {!Assign_order} batch; any
          mismatch rejects with [Order.Guard_failed] and no side effects
          (the federation layer's cross-shard commit primitive) *)
  | Query_proof of (Event_id.t * Event_id.t)
      (** like a one-pair {!Query_order}, but when the answer is
          [Before]/[After] the server also attempts a happens-before
          certificate the client can check against the endpoint
          commitments alone (DESIGN.md §13) *)
  | Query_order_at of {
      min_epoch : int64;
      pairs : (Event_id.t * Event_id.t) list;
    }
      (** epoch-aware {!Query_order} (DESIGN.md §14): the reply is an
          {!Orders_at} carrying the view epoch it was answered at.
          [min_epoch] is the client's consistency demand — a server whose
          view is older answers anyway (its epoch exposes the staleness)
          and the client escalates to a fresher replica *)
  | Assign_order_at of Order.spec list
      (** {!Assign_order} whose reply ({!Outcomes_at}) carries the
          post-apply epoch, so the caller can demand read-your-writes
          ([`At_least]) from subsequent queries *)

type response =
  | Event_created of Event_id.t
  | Ref_acquired
  | Ref_released of int   (** number of events garbage-collected *)
  | Orders of Order.relation list
  | Outcomes of Order.outcome list
  | Rejected of Order.assign_error
  | Proof_is of {
      relation : Order.relation;
      cert : Kronos_certify.Certificate.t option;
    }
      (** answer to {!Query_proof}; [cert = None] when the relation is
          [Concurrent]/[Same], when digests are disabled, or when the
          relation holds but no commitment-closed path exists ("true but
          unproved" — see {!Kronos_certify.Prover}) *)
  | Orders_at of { epoch : int64; rels : Order.relation list }
      (** answer to {!Query_order_at}: the relations plus the view epoch
          they were computed against *)
  | Outcomes_at of { epoch : int64; outs : Order.outcome list }
      (** answer to {!Assign_order_at}: the outcomes plus the engine epoch
          after the batch applied (deterministic, so replicas agree) *)

val encode_request : request -> string
val decode_request : string -> request
(** @raise Codec.Decode_error on malformed input. *)

val encode_response : response -> string
val decode_response : string -> response
(** @raise Codec.Decode_error on malformed input. *)

val request_equal : request -> request -> bool
val response_equal : response -> response -> bool

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit

val is_read_only : request -> bool
(** [true] for requests that never mutate the event dependency graph
    ({!Query_order}, {!Query_proof}, {!Query_order_at}); these may be
    served by stale replicas (Section 2.5). *)
