open Kronos

type request =
  | Create_event
  | Acquire_ref of Event_id.t
  | Release_ref of Event_id.t
  | Query_order of (Event_id.t * Event_id.t) list
  | Assign_order of Order.spec list
  | Guarded_assign of {
      guards : (Event_id.t * Event_id.t * Order.relation) list;
      specs : Order.spec list;
    }
  | Query_proof of (Event_id.t * Event_id.t)
  | Query_order_at of {
      min_epoch : int64;
      pairs : (Event_id.t * Event_id.t) list;
    }
  | Assign_order_at of Order.spec list

type response =
  | Event_created of Event_id.t
  | Ref_acquired
  | Ref_released of int
  | Orders of Order.relation list
  | Outcomes of Order.outcome list
  | Rejected of Order.assign_error
  | Proof_is of {
      relation : Order.relation;
      cert : Kronos_certify.Certificate.t option;
    }
  | Orders_at of { epoch : int64; rels : Order.relation list }
  | Outcomes_at of { epoch : int64; outs : Order.outcome list }

let put_event b e = Codec.put_i64 b (Event_id.to_int64 e)

let get_event d =
  let raw = Codec.get_i64 d in
  match Event_id.of_int64 raw with
  | id -> id
  | exception Invalid_argument _ ->
    raise (Codec.Decode_error (Printf.sprintf "bad event id %Ld" raw))

let put_direction b = function
  | Order.Happens_before -> Codec.put_u8 b 0
  | Order.Happens_after -> Codec.put_u8 b 1

let get_direction d =
  match Codec.get_u8 d with
  | 0 -> Order.Happens_before
  | 1 -> Order.Happens_after
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad direction %d" n))

let put_kind b = function
  | Order.Must -> Codec.put_u8 b 0
  | Order.Prefer -> Codec.put_u8 b 1

let get_kind d =
  match Codec.get_u8 d with
  | 0 -> Order.Must
  | 1 -> Order.Prefer
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad kind %d" n))

let put_relation b = function
  | Order.Before -> Codec.put_u8 b 0
  | Order.After -> Codec.put_u8 b 1
  | Order.Concurrent -> Codec.put_u8 b 2
  | Order.Same -> Codec.put_u8 b 3

let get_relation d =
  match Codec.get_u8 d with
  | 0 -> Order.Before
  | 1 -> Order.After
  | 2 -> Order.Concurrent
  | 3 -> Order.Same
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad relation %d" n))

let put_outcome b = function
  | Order.Applied -> Codec.put_u8 b 0
  | Order.Already -> Codec.put_u8 b 1
  | Order.Reversed -> Codec.put_u8 b 2

let get_outcome d =
  match Codec.get_u8 d with
  | 0 -> Order.Applied
  | 1 -> Order.Already
  | 2 -> Order.Reversed
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad outcome %d" n))

let put_error b = function
  | Order.Must_violated i -> Codec.put_u8 b 0; Codec.put_u32 b i
  | Order.Must_self i -> Codec.put_u8 b 1; Codec.put_u32 b i
  | Order.Unknown_event e -> Codec.put_u8 b 2; put_event b e
  | Order.Guard_failed i -> Codec.put_u8 b 3; Codec.put_u32 b i

let get_error d =
  match Codec.get_u8 d with
  | 0 -> Order.Must_violated (Codec.get_u32 d)
  | 1 -> Order.Must_self (Codec.get_u32 d)
  | 2 -> Order.Unknown_event (get_event d)
  | 3 -> Order.Guard_failed (Codec.get_u32 d)
  | n -> raise (Codec.Decode_error (Printf.sprintf "bad error tag %d" n))

let put_spec b (s : Order.spec) =
  put_event b s.left;
  put_direction b s.direction;
  put_kind b s.kind;
  put_event b s.right

let get_spec d =
  let left = get_event d in
  let direction = get_direction d in
  let kind = get_kind d in
  let right = get_event d in
  { Order.left; direction; kind; right }

let encode_request r =
  let b = Codec.encoder () in
  (match r with
   | Create_event -> Codec.put_u8 b 0
   | Acquire_ref e -> Codec.put_u8 b 1; put_event b e
   | Release_ref e -> Codec.put_u8 b 2; put_event b e
   | Query_order pairs ->
     Codec.put_u8 b 3;
     Codec.put_list b (fun b (e1, e2) -> put_event b e1; put_event b e2) pairs
   | Assign_order reqs ->
     Codec.put_u8 b 4;
     (* field order matches the pre-[Order.spec] tuple encoding byte for
        byte, so the wire format is unchanged *)
     Codec.put_list b put_spec reqs
   | Guarded_assign { guards; specs } ->
     Codec.put_u8 b 5;
     Codec.put_list b
       (fun b (e1, e2, rel) ->
         put_event b e1;
         put_event b e2;
         put_relation b rel)
       guards;
     Codec.put_list b put_spec specs
   | Query_proof (e1, e2) ->
     Codec.put_u8 b 6;
     put_event b e1;
     put_event b e2
   | Query_order_at { min_epoch; pairs } ->
     Codec.put_u8 b 7;
     Codec.put_i64 b min_epoch;
     Codec.put_list b (fun b (e1, e2) -> put_event b e1; put_event b e2) pairs
   | Assign_order_at reqs ->
     Codec.put_u8 b 8;
     Codec.put_list b put_spec reqs);
  Codec.to_string b

let decode_request s =
  let d = Codec.decoder s in
  let r =
    match Codec.get_u8 d with
    | 0 -> Create_event
    | 1 -> Acquire_ref (get_event d)
    | 2 -> Release_ref (get_event d)
    | 3 ->
      Query_order
        (Codec.get_list d (fun d ->
             let e1 = get_event d in
             let e2 = get_event d in
             (e1, e2)))
    | 4 -> Assign_order (Codec.get_list d get_spec)
    | 5 ->
      let guards =
        Codec.get_list d (fun d ->
            let e1 = get_event d in
            let e2 = get_event d in
            let rel = get_relation d in
            (e1, e2, rel))
      in
      let specs = Codec.get_list d get_spec in
      Guarded_assign { guards; specs }
    | 6 ->
      let e1 = get_event d in
      let e2 = get_event d in
      Query_proof (e1, e2)
    | 7 ->
      let min_epoch = Codec.get_i64 d in
      let pairs =
        Codec.get_list d (fun d ->
            let e1 = get_event d in
            let e2 = get_event d in
            (e1, e2))
      in
      Query_order_at { min_epoch; pairs }
    | 8 -> Assign_order_at (Codec.get_list d get_spec)
    | n -> raise (Codec.Decode_error (Printf.sprintf "bad request tag %d" n))
  in
  Codec.expect_end d;
  r

let encode_response r =
  let b = Codec.encoder () in
  (match r with
   | Event_created e -> Codec.put_u8 b 0; put_event b e
   | Ref_acquired -> Codec.put_u8 b 1
   | Ref_released n -> Codec.put_u8 b 2; Codec.put_u32 b n
   | Orders rels -> Codec.put_u8 b 3; Codec.put_list b put_relation rels
   | Outcomes outs -> Codec.put_u8 b 4; Codec.put_list b put_outcome outs
   | Rejected e -> Codec.put_u8 b 5; put_error b e
   | Proof_is { relation; cert } ->
     Codec.put_u8 b 6;
     put_relation b relation;
     (match cert with
      | None -> Codec.put_bool b false
      | Some c ->
        Codec.put_bool b true;
        (* the certificate carries its own self-describing encoding; the
           wire layer only frames it as an opaque string *)
        Codec.put_string b (Kronos_certify.Certificate.encode c))
   | Orders_at { epoch; rels } ->
     Codec.put_u8 b 7;
     Codec.put_i64 b epoch;
     Codec.put_list b put_relation rels
   | Outcomes_at { epoch; outs } ->
     Codec.put_u8 b 8;
     Codec.put_i64 b epoch;
     Codec.put_list b put_outcome outs);
  Codec.to_string b

let decode_response s =
  let d = Codec.decoder s in
  let r =
    match Codec.get_u8 d with
    | 0 -> Event_created (get_event d)
    | 1 -> Ref_acquired
    | 2 -> Ref_released (Codec.get_u32 d)
    | 3 -> Orders (Codec.get_list d get_relation)
    | 4 -> Outcomes (Codec.get_list d get_outcome)
    | 5 -> Rejected (get_error d)
    | 6 ->
      let relation = get_relation d in
      let cert =
        if not (Codec.get_bool d) then None
        else
          match Kronos_certify.Certificate.decode (Codec.get_string d) with
          | Ok c -> Some c
          | Error m -> raise (Codec.Decode_error m)
      in
      Proof_is { relation; cert }
    | 7 ->
      let epoch = Codec.get_i64 d in
      let rels = Codec.get_list d get_relation in
      Orders_at { epoch; rels }
    | 8 ->
      let epoch = Codec.get_i64 d in
      let outs = Codec.get_list d get_outcome in
      Outcomes_at { epoch; outs }
    | n -> raise (Codec.Decode_error (Printf.sprintf "bad response tag %d" n))
  in
  Codec.expect_end d;
  r

let request_equal a b = encode_request a = encode_request b
let response_equal a b = encode_response a = encode_response b

let pp_request ppf = function
  | Create_event -> Format.pp_print_string ppf "create_event"
  | Acquire_ref e -> Format.fprintf ppf "acquire_ref(%a)" Event_id.pp e
  | Release_ref e -> Format.fprintf ppf "release_ref(%a)" Event_id.pp e
  | Query_order pairs -> Format.fprintf ppf "query_order(%d pairs)" (List.length pairs)
  | Assign_order reqs -> Format.fprintf ppf "assign_order(%d pairs)" (List.length reqs)
  | Guarded_assign { guards; specs } ->
    Format.fprintf ppf "guarded_assign(%d guards, %d pairs)"
      (List.length guards) (List.length specs)
  | Query_proof (e1, e2) ->
    Format.fprintf ppf "query_proof(%a, %a)" Event_id.pp e1 Event_id.pp e2
  | Query_order_at { min_epoch; pairs } ->
    Format.fprintf ppf "query_order_at(>=%Ld, %d pairs)" min_epoch
      (List.length pairs)
  | Assign_order_at reqs ->
    Format.fprintf ppf "assign_order_at(%d pairs)" (List.length reqs)

let pp_response ppf = function
  | Event_created e -> Format.fprintf ppf "event_created(%a)" Event_id.pp e
  | Ref_acquired -> Format.pp_print_string ppf "ref_acquired"
  | Ref_released n -> Format.fprintf ppf "ref_released(%d collected)" n
  | Orders rels ->
    Format.fprintf ppf "orders(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Order.pp_relation)
      rels
  | Outcomes outs ->
    Format.fprintf ppf "outcomes(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Order.pp_outcome)
      outs
  | Rejected e -> Format.fprintf ppf "rejected(%a)" Order.pp_assign_error e
  | Proof_is { relation; cert } ->
    Format.fprintf ppf "proof_is(%a, %s)" Order.pp_relation relation
      (match cert with
       | Some c ->
         Printf.sprintf "%d-step certificate"
           (Kronos_certify.Certificate.path_length c)
       | None -> "no certificate")
  | Orders_at { epoch; rels } ->
    Format.fprintf ppf "orders_at(@%Ld, %a)" epoch
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Order.pp_relation)
      rels
  | Outcomes_at { epoch; outs } ->
    Format.fprintf ppf "outcomes_at(@%Ld, %a)" epoch
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Order.pp_outcome)
      outs

let is_read_only = function
  | Query_order _ | Query_proof _ | Query_order_at _ -> true
  | Create_event | Acquire_ref _ | Release_ref _ | Assign_order _
  | Assign_order_at _ | Guarded_assign _ ->
    false
