(** Length-prefixed message framing for byte-stream transports.

    A frame is a u32 big-endian length followed by that many payload bytes.
    {!Reassembler} incrementally consumes arbitrary chunk boundaries and
    yields complete payloads, as a real TCP receive loop would. *)

val encode : string -> string
(** [encode payload] is the framed bytes. *)

val max_frame : int
(** Maximum accepted payload size (16 MiB); larger frames are rejected to
    bound memory under malformed input. *)

module Reassembler : sig
  type t

  val create : ?max_frame:int -> unit -> t
  (** [max_frame] (default {!max_frame}) bounds accepted payload sizes. *)

  val feed : t -> string -> string list
  (** [feed t chunk] appends [chunk] to the internal buffer and returns the
      payloads of all frames completed by it, in order.
      @raise Codec.Decode_error if a frame announces more than the
      reassembler's [max_frame] bytes. *)

  val pending_bytes : t -> int
  (** Bytes buffered towards an incomplete frame. *)
end
