let max_frame = 16 * 1024 * 1024

let encode payload =
  let b = Codec.encoder () in
  Codec.put_u32 b (String.length payload);
  Buffer.add_string b payload;
  Codec.to_string b

module Reassembler = struct
  type t = { mutable buf : string; limit : int }

  let create ?(max_frame = max_frame) () = { buf = ""; limit = max_frame }

  let pending_bytes t = String.length t.buf

  let feed t chunk =
    t.buf <- t.buf ^ chunk;
    let rec extract acc =
      if String.length t.buf < 4 then List.rev acc
      else begin
        let d = Codec.decoder t.buf in
        let len = Codec.get_u32 d in
        if len > t.limit then
          raise (Codec.Decode_error (Printf.sprintf "frame too large: %d" len));
        if String.length t.buf < 4 + len then List.rev acc
        else begin
          let payload = String.sub t.buf 4 len in
          t.buf <- String.sub t.buf (4 + len) (String.length t.buf - 4 - len);
          extract (payload :: acc)
        end
      end
    in
    extract []
end
