(** Consistent-hash ring: keys are mapped to shard ids so that membership
    changes move only the keys of the affected arc.

    This generalizes the kvstore's fixed modulo router
    ([Kronos_kvstore.Router]): [shard_of ~shards key] remaps almost every
    key when [shards] changes, while a consistent-hash ring with [v]
    virtual nodes per shard remaps an expected [K/N] of [K] keys when the
    [N]th shard joins (property-tested in [test_federation]).

    The hash is a fixed 64-bit mix (splitmix64), not [Hashtbl.hash], so
    every process of a federation — routers, daemons, tests — agrees on
    placement regardless of OCaml version or flambda settings. *)

type t

val create : ?vnodes:int -> int list -> t
(** [create ~vnodes shards] builds a ring with [vnodes] virtual points per
    shard (default 64).  Shard ids must be distinct and non-negative.
    @raise Invalid_argument on an empty or duplicated shard list. *)

val add : t -> int -> t
(** Ring with one more shard; the original is unchanged (persistent).
    @raise Invalid_argument if the shard is already a member. *)

val remove : t -> int -> t
(** @raise Invalid_argument if absent, or removing the last shard. *)

val shards : t -> int list
(** Member shard ids, ascending. *)

val size : t -> int

val lookup : t -> int64 -> int
(** Owning shard of a 64-bit key: the first virtual point clockwise of the
    key's hash. *)

val lookup_string : t -> string -> int

val hash64 : int64 -> int64
(** The mix function (exposed for tests and for stable derived keys). *)
