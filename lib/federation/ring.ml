(* splitmix64 finalizer: a strong, allocation-free 64-bit mix that is
   identical in every process (unlike [Hashtbl.hash], whose result is
   version-dependent for boxed values). *)
let hash64 x =
  let open Int64 in
  let z = add x 0x9e3779b97f4a7c15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash_string s =
  (* FNV-1a over the bytes, then the 64-bit finalizer. *)
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  hash64 !h

type t = {
  vnodes : int;
  members : int list;  (* ascending *)
  (* virtual points sorted by position; lookup binary-searches this *)
  points : (int64 * int) array;
}

let point_of shard replica =
  hash64 (Int64.logor (Int64.shift_left (Int64.of_int shard) 20) (Int64.of_int replica))

(* Unsigned comparison: points are raw 64-bit hashes. *)
let ucompare a b = Int64.unsigned_compare a b

let build vnodes members =
  let points =
    Array.init
      (List.length members * vnodes)
      (fun i ->
        let shard = List.nth members (i / vnodes) in
        (point_of shard (i mod vnodes), shard))
  in
  Array.sort (fun (a, sa) (b, sb) ->
      match ucompare a b with 0 -> Int.compare sa sb | c -> c)
    points;
  { vnodes; members; points }

let create ?(vnodes = 64) shards =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes must be positive";
  if shards = [] then invalid_arg "Ring.create: no shards";
  List.iter
    (fun s -> if s < 0 then invalid_arg "Ring.create: negative shard id")
    shards;
  let sorted = List.sort_uniq Int.compare shards in
  if List.length sorted <> List.length shards then
    invalid_arg "Ring.create: duplicate shard id";
  build vnodes sorted

let shards t = t.members
let size t = List.length t.members

let add t shard =
  if List.mem shard t.members then invalid_arg "Ring.add: already a member";
  if shard < 0 then invalid_arg "Ring.add: negative shard id";
  build t.vnodes (List.sort Int.compare (shard :: t.members))

let remove t shard =
  if not (List.mem shard t.members) then invalid_arg "Ring.remove: not a member";
  match List.filter (fun s -> s <> shard) t.members with
  | [] -> invalid_arg "Ring.remove: cannot empty the ring"
  | rest -> build t.vnodes rest

let lookup t key =
  let h = hash64 key in
  let points = t.points in
  let n = Array.length points in
  (* first point with position >= h, wrapping to 0 *)
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if ucompare (fst points.(mid)) h < 0 then lo := mid + 1 else hi := mid
  done;
  snd points.(if !lo = n then 0 else !lo)

let lookup_string t key =
  let h = hash_string key in
  (* [lookup] hashes again, which is fine: the double mix is still a
     uniform point on the ring. *)
  lookup t h
