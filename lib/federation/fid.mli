(** Federated event identifiers: a shard id paired with that shard's local
    {!Kronos.Event_id}.

    Local event ids use all 62 payload bits of an OCaml int, so the shard
    cannot be packed into the same word; a federated id is the explicit
    pair, printed as ["SHARD/LOCAL"] (e.g. ["2/4194305"]) in the CLI. *)

open Kronos

type t = { shard : int; id : Event_id.t }

val make : shard:int -> Event_id.t -> t
(** @raise Invalid_argument on a negative shard. *)

val shard : t -> int
val id : t -> Event_id.t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Stable textual form ["SHARD/INT64"], parseable by {!of_string}. *)

val of_string : string -> t option

val placement_key : t -> int64
(** 64-bit key mixing shard and local id, for ring lookups and hashing. *)

val pp : Format.formatter -> t -> unit
